(* Tests for lib/obs: histogram bucket-edge semantics, deterministic
   counter merges under the domain pool, well-formed trace JSONL from pool
   workers, and the contract that enabling telemetry never changes the
   bits the inference computes. *)

module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Pool = Parallel.Pool

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let vec_bits_equal v1 v2 =
  Array.length v1 = Array.length v2 && Array.for_all2 bits_equal v1 v2

(* --- histograms -------------------------------------------------------- *)

let test_histogram_bucket_edges () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.; 2.; 4. |] "h_seconds" in
  (* Prometheus inclusive-le: an observation equal to an edge lands in
     that edge's bucket; above the last edge goes to the +Inf overflow *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.5 ];
  Alcotest.(check (array int))
    "per-bucket counts" [| 2; 2; 1; 1 |]
    (Obs.Metrics.histogram_counts h);
  Alcotest.(check int) "total count" 6 (Obs.Metrics.histogram_count h);
  Alcotest.(check bool) "sum" true
    (abs_float (Obs.Metrics.histogram_sum h -. 13.5) < 1e-12)

let test_histogram_rejects_bad_buckets () =
  let reg = Obs.Metrics.create () in
  Alcotest.check_raises "non-increasing edges"
    (Invalid_argument
       "Obs.Metrics.histogram: bucket edges must be strictly increasing")
    (fun () -> ignore (Obs.Metrics.histogram reg ~buckets:[| 1.; 1. |] "bad"))

let test_registration_idempotent () =
  let reg = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter reg "shared_total" in
  let c2 = Obs.Metrics.counter reg "shared_total" in
  Obs.Metrics.incr c1;
  Obs.Metrics.incr c2;
  Alcotest.(check int) "same underlying cells" 2 (Obs.Metrics.counter_value c1);
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument
       "Obs.Metrics: \"shared_total\" registered with another type")
    (fun () -> ignore (Obs.Metrics.gauge reg "shared_total"))

let test_disabled_probes_are_inert () =
  let reg = Obs.Metrics.create ~on:false () in
  let c = Obs.Metrics.counter reg "quiet_total" in
  let h = Obs.Metrics.histogram reg "quiet_seconds" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h)

(* --- deterministic merges under the pool ------------------------------- *)

let test_counter_merge_across_jobs () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "work_total" in
  let h = Obs.Metrics.histogram reg "work_seconds" in
  List.iter
    (fun jobs ->
      Obs.Metrics.reset reg;
      Pool.parallel_for ~jobs ~min_block:16 ~n:5000 (fun i ->
          Obs.Metrics.incr c;
          if i land 1023 = 0 then Obs.Metrics.observe h 1e-4);
      (* sharded integer cells merge by summation: the merged value is
         independent of which domain ran which block *)
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d counter" jobs)
        5000
        (Obs.Metrics.counter_value c);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d histogram count" jobs)
        5
        (Obs.Metrics.histogram_count h))
    [ 1; 2; 4 ]

(* --- trace JSONL from pool workers ------------------------------------- *)

(* minimal structural validity: a single-line JSON object, braces and
   brackets balanced outside strings, quotes closed, escapes consumed *)
let json_object_well_formed line =
  let n = String.length line in
  let s =
    if n > 0 && line.[n - 1] = ',' then String.sub line 0 (n - 1) else line
  in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then false
  else begin
    let depth = ref 0 and in_str = ref false and esc = ref false in
    let ok = ref true in
    String.iter
      (fun ch ->
        if !esc then esc := false
        else if !in_str then begin
          match ch with
          | '\\' -> esc := true
          | '"' -> in_str := false
          | _ -> ()
        end
        else
          match ch with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
              decr depth;
              if !depth < 0 then ok := false
          | _ -> ())
      s;
    !ok && !depth = 0 && (not !in_str) && not !esc
  end

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* pull an integer field out of one event line; enough of a parser for
   the fixed shapes Trace.emit produces *)
let field_int line key =
  let marker = Printf.sprintf "\"%s\": " key in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length line then
      Alcotest.failf "field %s missing in %s" key line
    else if String.sub line i ml = marker then i + ml
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < String.length line
    && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

let test_pool_spans_well_formed_jsonl () =
  let tr = Obs.Trace.default in
  let sink, lines = Obs.Sink.memory () in
  Obs.Trace.set_sink tr (Some sink);
  Obs.Trace.with_span tr "outer" (fun () ->
      Pool.for_blocks ~jobs:2 4 (fun b ->
          Obs.Trace.with_span tr "inner"
            ~args:[ ("block", Obs.Field.Int b) ]
            (fun () -> ignore (Sys.opaque_identity (b * b)))));
  Obs.Trace.close tr;
  let ls = lines () in
  (match ls with
  | opening :: _ -> Alcotest.(check string) "array opening" "[" opening
  | [] -> Alcotest.fail "empty trace");
  let events = List.tl ls in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "well-formed event %s" l)
        true (json_object_well_formed l))
    events;
  let named name = List.filter (contains ~needle:("\"name\": \"" ^ name ^ "\"")) events in
  (* 1 outer + 4 inner + 4 pool.task wrappers *)
  Alcotest.(check int) "one outer span" 1 (List.length (named "outer"));
  Alcotest.(check int) "inner span per block" 4 (List.length (named "inner"));
  Alcotest.(check int) "pool.task span per block" 4
    (List.length (named "pool.task"));
  (* nesting: whatever domain each inner span ran on, its time range is
     contained in the outer span's range *)
  let outer = List.hd (named "outer") in
  let o_ts = field_int outer "ts" and o_dur = field_int outer "dur" in
  List.iter
    (fun l ->
      let ts = field_int l "ts" and dur = field_int l "dur" in
      Alcotest.(check bool) "starts inside outer" true (ts >= o_ts);
      Alcotest.(check bool) "ends inside outer" true
        (ts + dur <= o_ts + o_dur))
    (named "inner")

(* --- telemetry never changes the inference ----------------------------- *)

let random_campaign seed =
  let rng = Rng.create seed in
  let n = 120 + (seed mod 80) in
  let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:13 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:12 in
  (r, y_learn, target.Netsim.Snapshot.y)

let prop_inference_bits_unchanged_by_obs =
  QCheck.Test.make ~count:4
    ~name:"inference bit-identical with telemetry enabled vs disabled"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, y_now = random_campaign seed in
      let reg = Obs.Metrics.default in
      Obs.Metrics.disable reg;
      let off = Core.Lia.infer ~r ~y_learn ~y_now () in
      Obs.Metrics.reset reg;
      Obs.Metrics.enable reg;
      let trace_sink, _ = Obs.Sink.memory () in
      Obs.Trace.set_sink Obs.Trace.default (Some trace_sink);
      let log_sink, _ = Obs.Sink.memory () in
      Obs.Logger.set_sink Obs.Logger.default (Some log_sink);
      Obs.Logger.set_level Obs.Logger.default (Some Obs.Logger.Debug);
      let on = Core.Lia.infer ~r ~y_learn ~y_now () in
      Obs.Logger.set_level Obs.Logger.default None;
      Obs.Logger.set_sink Obs.Logger.default None;
      Obs.Trace.close Obs.Trace.default;
      Obs.Metrics.disable reg;
      Obs.Metrics.reset reg;
      vec_bits_equal off.Core.Lia.loss_rates on.Core.Lia.loss_rates
      && off.Core.Lia.kept = on.Core.Lia.kept)

(* --- histogram quantiles ------------------------------------------------ *)

let test_histogram_quantile () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.; 2.; 4. |] "q_seconds" in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Obs.Metrics.histogram_quantile h 0.5));
  (* 10 observations in (0,1], 10 in (1,2]: the median sits exactly at
     the shared edge, p75 interpolates halfway into the second bucket *)
  for _ = 1 to 10 do
    Obs.Metrics.observe h 0.5;
    Obs.Metrics.observe h 1.5
  done;
  let close msg want got = Alcotest.(check bool) msg true (abs_float (want -. got) < 1e-9) in
  close "p50 at bucket edge" 1.0 (Obs.Metrics.histogram_quantile h 0.5);
  close "p75 interpolated" 1.5 (Obs.Metrics.histogram_quantile h 0.75);
  close "p100 upper edge" 2.0 (Obs.Metrics.histogram_quantile h 1.0);
  (* overflow bucket clamps to the largest finite edge *)
  Obs.Metrics.observe h 100.;
  close "overflow clamped" 4.0 (Obs.Metrics.histogram_quantile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.Metrics.histogram_quantile: q outside [0, 1]")
    (fun () -> ignore (Obs.Metrics.histogram_quantile h 1.5))

(* --- flight recorder ---------------------------------------------------- *)

let test_recorder_drop_oldest () =
  let rec_ = Obs.Recorder.create ~capacity:4 () in
  Obs.Recorder.enable rec_;
  for i = 0 to 9 do
    Obs.Recorder.record rec_ ~kind:"instant"
      ~fields:[ ("i", Obs.Field.Int i) ]
      "tick"
  done;
  Alcotest.(check int) "recorded counts everything" 10
    (Obs.Recorder.recorded rec_);
  Alcotest.(check int) "dropped the overflow" 6 (Obs.Recorder.dropped rec_);
  let evs = Obs.Recorder.events rec_ in
  Alcotest.(check int) "kept exactly capacity" 4 (List.length evs);
  (* drop-oldest: survivors are the last 4, in order *)
  Alcotest.(check (list int))
    "newest survive in order" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.Recorder.seq) evs);
  Obs.Recorder.reset rec_;
  Alcotest.(check int) "reset empties" 0
    (List.length (Obs.Recorder.events rec_))

let prop_recorder_ring_semantics =
  QCheck.Test.make ~count:50 ~name:"recorder ring keeps the newest tail"
    QCheck.(pair (int_range 1 32) (int_range 0 100))
    (fun (capacity, n) ->
      let rec_ = Obs.Recorder.create ~capacity () in
      Obs.Recorder.enable rec_;
      for i = 0 to n - 1 do
        Obs.Recorder.record rec_ ~kind:"instant"
          ~fields:[ ("i", Obs.Field.Int i) ]
          "tick"
      done;
      let evs = Obs.Recorder.events rec_ in
      let kept = min n capacity in
      Obs.Recorder.recorded rec_ = n
      && Obs.Recorder.dropped rec_ = max 0 (n - capacity)
      && List.length evs = kept
      && List.map (fun e -> e.Obs.Recorder.seq) evs
         = List.init kept (fun k -> n - kept + k))

let prop_recorder_merge_jobs_invariant =
  QCheck.Test.make ~count:20
    ~name:"recorder event multiset invariant across jobs"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let runs =
        List.map
          (fun jobs ->
            let rec_ = Obs.Recorder.create () in
            Obs.Recorder.enable rec_;
            Pool.parallel_for ~jobs ~min_block:16 ~n:(200 + (seed mod 100))
              (fun i ->
                Obs.Recorder.record rec_ ~kind:"work"
                  ~fields:[ ("i", Obs.Field.Int i) ]
                  "block");
            Obs.Recorder.events rec_
            |> List.map (fun e ->
                   ( e.Obs.Recorder.kind,
                     e.Obs.Recorder.name,
                     e.Obs.Recorder.fields ))
            |> List.sort compare)
          [ 1; 2; 4 ]
      in
      match runs with
      | [ a; b; c ] -> a = b && a = c
      | _ -> false)

(* the recorder-off vs recorder-on bit-identity contract, exercised
   through the cgls path so the per-iteration solver probes fire *)
let prop_inference_bits_unchanged_by_recorder =
  QCheck.Test.make ~count:4
    ~name:"inference bit-identical with recorder + convergence on vs off"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, y_now = random_campaign seed in
      let solver =
        Core.Lia.Cgls
          {
            tol = 1e-10;
            max_iter = None;
            sample = None;
            precond = Core.Variance_estimator.Pc_jacobi;
          }
      in
      Obs.Recorder.disable Obs.Recorder.default;
      let off = Core.Lia.infer ~solver ~r ~y_learn ~y_now () in
      Obs.Recorder.enable Obs.Recorder.default;
      let conv_sink, _ = Obs.Sink.memory () in
      Obs.Convergence.set_sink Obs.Convergence.default (Some conv_sink);
      let on = Core.Lia.infer ~solver ~r ~y_learn ~y_now () in
      Obs.Convergence.set_sink Obs.Convergence.default None;
      Obs.Recorder.disable Obs.Recorder.default;
      Obs.Recorder.reset Obs.Recorder.default;
      vec_bits_equal off.Core.Lia.loss_rates on.Core.Lia.loss_rates
      && off.Core.Lia.kept = on.Core.Lia.kept)

(* --- convergence stream ------------------------------------------------- *)

(* every line is one well-formed JSON object; iteration indices within a
   solve id are strictly increasing from 1 *)
let prop_convergence_jsonl_well_formed =
  QCheck.Test.make ~count:10 ~name:"convergence JSONL well-formed"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, y_now = random_campaign seed in
      let solver =
        Core.Lia.Cgls
          {
            tol = 1e-10;
            max_iter = None;
            sample = None;
            precond = Core.Variance_estimator.Pc_none;
          }
      in
      let sink, lines = Obs.Sink.memory () in
      Obs.Convergence.set_sink Obs.Convergence.default (Some sink);
      ignore (Core.Lia.infer ~solver ~r ~y_learn ~y_now ());
      Obs.Convergence.set_sink Obs.Convergence.default None;
      let ls = lines () in
      let last_iter = Hashtbl.create 8 in
      ls <> []
      && List.for_all
           (fun line ->
             json_object_well_formed line
             &&
             match Obs.Json.of_string_opt line with
             | None -> false
             | Some json -> (
                 let get k f = Option.bind (Obs.Json.member k json) f in
                 match
                   ( get "solver" Obs.Json.to_string_opt,
                     get "solve" Obs.Json.to_int_opt,
                     get "iteration" Obs.Json.to_int_opt,
                     get "relres" Obs.Json.to_float_opt )
                 with
                 | Some _, Some solve, Some iteration, Some relres ->
                     let prev =
                       Option.value ~default:0 (Hashtbl.find_opt last_iter solve)
                     in
                     Hashtbl.replace last_iter solve iteration;
                     iteration = prev + 1 && relres >= 0.
                 | _ -> false))
           ls)

(* --- report rendering --------------------------------------------------- *)

let test_report_renders_sections () =
  let recorder =
    String.concat "\n"
      [
        {|{"kind": "recorder_dump", "reason": "nonconvergence", "events": 4, "dropped": 0, "capacity": 4096}|};
        {|{"kind": "span_end", "name": "plan.solve", "domain": 0, "seq": 1, "ts_us": 10, "args": {"dur_us": 250, "alloc_words": 1000}}|};
        {|{"kind": "solver_iter", "name": "cgls", "domain": 0, "seq": 2, "ts_us": 11, "args": {"solve": 1, "iteration": 1, "relres": 0.25, "phase": "phase2", "precond": "none", "warm": false}}|};
        {|{"kind": "solver_done", "name": "cgls", "domain": 0, "seq": 3, "ts_us": 12, "args": {"solve": 1, "iterations": 1, "relres": 0.25, "converged": false, "phase": "phase2", "precond": "none", "warm": false}}|};
        {|{"kind": "verdict", "name": "lia.verdict", "domain": 0, "seq": 4, "ts_us": 13, "args": {"health": "degraded", "summary": "degraded (kept 8/10)"}}|};
      ]
  in
  let out = Obs.Report.render ~recorder () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true
        (contains ~needle out))
    [
      "reason=nonconvergence";
      "Per-phase profile";
      "plan.solve";
      "Convergence";
      "phase2";
      "2.500e-01";
      "NO";
      "Residual tail";
      "verdict: degraded";
    ];
  Alcotest.(check bool) "empty inputs say so" true
    (contains ~needle:"no telemetry"
       (Obs.Report.render ~recorder:"not json at all" ()))

(* --- metric naming convention ------------------------------------------- *)

let test_metric_names_conform () =
  (* force every metric-registering module to link so its top-level
     registrations land in the default registry before the scan *)
  let touch : 'a. 'a -> unit = fun x -> ignore (Sys.opaque_identity x) in
  touch Core.Monitor.create;
  touch Core.Quarantine.scrub;
  touch Core.Plan.make;
  touch Core.Covariance.sigma_star;
  touch Core.Augmented.build;
  touch Core.Variance_estimator.estimate;
  touch Linalg.Conjugate_gradient.solve;
  touch Pool.get;
  let prefixes = [ "lia_"; "pool_"; "plan_" ] in
  let conforms name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p)
      prefixes
  in
  let offenders =
    List.filter
      (fun n -> not (conforms n))
      (Obs.Metrics.names Obs.Metrics.default)
  in
  Alcotest.(check (list string))
    "every registered metric is lia_/pool_/plan_-prefixed" [] offenders

(* --- dump format ------------------------------------------------------- *)

let test_dump_prometheus_shape () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"things done" "things_total" in
  let h = Obs.Metrics.histogram reg ~buckets:[| 0.1; 1. |] "lat_seconds" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 0.05;
  Obs.Metrics.observe h 5.0;
  let d = Obs.Metrics.dump reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump has %S" needle) true
        (contains ~needle d))
    [
      "# HELP things_total things done";
      "# TYPE things_total counter";
      "things_total 1";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      (* cumulative: +Inf counts every observation *)
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
    ]

let metrics_tests =
  [
    Alcotest.test_case "histogram: inclusive bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "histogram: bad buckets rejected" `Quick
      test_histogram_rejects_bad_buckets;
    Alcotest.test_case "registration idempotent by name" `Quick
      test_registration_idempotent;
    Alcotest.test_case "disabled probes are inert" `Quick
      test_disabled_probes_are_inert;
    Alcotest.test_case "counter merge jobs-invariant" `Quick
      test_counter_merge_across_jobs;
    Alcotest.test_case "dump: Prometheus text shape" `Quick
      test_dump_prometheus_shape;
    Alcotest.test_case "histogram quantile interpolation" `Quick
      test_histogram_quantile;
    Alcotest.test_case "metric names conform to lia_/pool_/plan_" `Quick
      test_metric_names_conform;
  ]

let trace_tests =
  [
    Alcotest.test_case "pool spans emit well-formed JSONL" `Quick
      test_pool_spans_well_formed_jsonl;
  ]

let recorder_tests =
  Alcotest.test_case "ring drops oldest, keeps newest" `Quick
    test_recorder_drop_oldest
  :: Alcotest.test_case "report renders all sections" `Quick
       test_report_renders_sections
  :: List.map QCheck_alcotest.to_alcotest
       [
         prop_recorder_ring_semantics;
         prop_recorder_merge_jobs_invariant;
         prop_convergence_jsonl_well_formed;
       ]

let invariance_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_inference_bits_unchanged_by_obs;
      prop_inference_bits_unchanged_by_recorder;
    ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("trace", trace_tests);
      ("recorder", recorder_tests);
      ("invariance", invariance_tests);
    ]
