(* Tests for lib/obs: histogram bucket-edge semantics, deterministic
   counter merges under the domain pool, well-formed trace JSONL from pool
   workers, and the contract that enabling telemetry never changes the
   bits the inference computes. *)

module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Pool = Parallel.Pool

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let vec_bits_equal v1 v2 =
  Array.length v1 = Array.length v2 && Array.for_all2 bits_equal v1 v2

(* --- histograms -------------------------------------------------------- *)

let test_histogram_bucket_edges () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.; 2.; 4. |] "h_seconds" in
  (* Prometheus inclusive-le: an observation equal to an edge lands in
     that edge's bucket; above the last edge goes to the +Inf overflow *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.5 ];
  Alcotest.(check (array int))
    "per-bucket counts" [| 2; 2; 1; 1 |]
    (Obs.Metrics.histogram_counts h);
  Alcotest.(check int) "total count" 6 (Obs.Metrics.histogram_count h);
  Alcotest.(check bool) "sum" true
    (abs_float (Obs.Metrics.histogram_sum h -. 13.5) < 1e-12)

let test_histogram_rejects_bad_buckets () =
  let reg = Obs.Metrics.create () in
  Alcotest.check_raises "non-increasing edges"
    (Invalid_argument
       "Obs.Metrics.histogram: bucket edges must be strictly increasing")
    (fun () -> ignore (Obs.Metrics.histogram reg ~buckets:[| 1.; 1. |] "bad"))

let test_registration_idempotent () =
  let reg = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter reg "shared_total" in
  let c2 = Obs.Metrics.counter reg "shared_total" in
  Obs.Metrics.incr c1;
  Obs.Metrics.incr c2;
  Alcotest.(check int) "same underlying cells" 2 (Obs.Metrics.counter_value c1);
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument
       "Obs.Metrics: \"shared_total\" registered with another type")
    (fun () -> ignore (Obs.Metrics.gauge reg "shared_total"))

let test_disabled_probes_are_inert () =
  let reg = Obs.Metrics.create ~on:false () in
  let c = Obs.Metrics.counter reg "quiet_total" in
  let h = Obs.Metrics.histogram reg "quiet_seconds" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h)

(* --- deterministic merges under the pool ------------------------------- *)

let test_counter_merge_across_jobs () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "work_total" in
  let h = Obs.Metrics.histogram reg "work_seconds" in
  List.iter
    (fun jobs ->
      Obs.Metrics.reset reg;
      Pool.parallel_for ~jobs ~min_block:16 ~n:5000 (fun i ->
          Obs.Metrics.incr c;
          if i land 1023 = 0 then Obs.Metrics.observe h 1e-4);
      (* sharded integer cells merge by summation: the merged value is
         independent of which domain ran which block *)
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d counter" jobs)
        5000
        (Obs.Metrics.counter_value c);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d histogram count" jobs)
        5
        (Obs.Metrics.histogram_count h))
    [ 1; 2; 4 ]

(* --- trace JSONL from pool workers ------------------------------------- *)

(* minimal structural validity: a single-line JSON object, braces and
   brackets balanced outside strings, quotes closed, escapes consumed *)
let json_object_well_formed line =
  let n = String.length line in
  let s =
    if n > 0 && line.[n - 1] = ',' then String.sub line 0 (n - 1) else line
  in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then false
  else begin
    let depth = ref 0 and in_str = ref false and esc = ref false in
    let ok = ref true in
    String.iter
      (fun ch ->
        if !esc then esc := false
        else if !in_str then begin
          match ch with
          | '\\' -> esc := true
          | '"' -> in_str := false
          | _ -> ()
        end
        else
          match ch with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
              decr depth;
              if !depth < 0 then ok := false
          | _ -> ())
      s;
    !ok && !depth = 0 && (not !in_str) && not !esc
  end

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* pull an integer field out of one event line; enough of a parser for
   the fixed shapes Trace.emit produces *)
let field_int line key =
  let marker = Printf.sprintf "\"%s\": " key in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length line then
      Alcotest.failf "field %s missing in %s" key line
    else if String.sub line i ml = marker then i + ml
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < String.length line
    && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

let test_pool_spans_well_formed_jsonl () =
  let tr = Obs.Trace.default in
  let sink, lines = Obs.Sink.memory () in
  Obs.Trace.set_sink tr (Some sink);
  Obs.Trace.with_span tr "outer" (fun () ->
      Pool.for_blocks ~jobs:2 4 (fun b ->
          Obs.Trace.with_span tr "inner"
            ~args:[ ("block", Obs.Field.Int b) ]
            (fun () -> ignore (Sys.opaque_identity (b * b)))));
  Obs.Trace.close tr;
  let ls = lines () in
  (match ls with
  | opening :: _ -> Alcotest.(check string) "array opening" "[" opening
  | [] -> Alcotest.fail "empty trace");
  let events = List.tl ls in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "well-formed event %s" l)
        true (json_object_well_formed l))
    events;
  let named name = List.filter (contains ~needle:("\"name\": \"" ^ name ^ "\"")) events in
  (* 1 outer + 4 inner + 4 pool.task wrappers *)
  Alcotest.(check int) "one outer span" 1 (List.length (named "outer"));
  Alcotest.(check int) "inner span per block" 4 (List.length (named "inner"));
  Alcotest.(check int) "pool.task span per block" 4
    (List.length (named "pool.task"));
  (* nesting: whatever domain each inner span ran on, its time range is
     contained in the outer span's range *)
  let outer = List.hd (named "outer") in
  let o_ts = field_int outer "ts" and o_dur = field_int outer "dur" in
  List.iter
    (fun l ->
      let ts = field_int l "ts" and dur = field_int l "dur" in
      Alcotest.(check bool) "starts inside outer" true (ts >= o_ts);
      Alcotest.(check bool) "ends inside outer" true
        (ts + dur <= o_ts + o_dur))
    (named "inner")

(* --- telemetry never changes the inference ----------------------------- *)

let random_campaign seed =
  let rng = Rng.create seed in
  let n = 120 + (seed mod 80) in
  let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:13 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:12 in
  (r, y_learn, target.Netsim.Snapshot.y)

let prop_inference_bits_unchanged_by_obs =
  QCheck.Test.make ~count:4
    ~name:"inference bit-identical with telemetry enabled vs disabled"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, y_now = random_campaign seed in
      let reg = Obs.Metrics.default in
      Obs.Metrics.disable reg;
      let off = Core.Lia.infer ~r ~y_learn ~y_now () in
      Obs.Metrics.reset reg;
      Obs.Metrics.enable reg;
      let trace_sink, _ = Obs.Sink.memory () in
      Obs.Trace.set_sink Obs.Trace.default (Some trace_sink);
      let log_sink, _ = Obs.Sink.memory () in
      Obs.Logger.set_sink Obs.Logger.default (Some log_sink);
      Obs.Logger.set_level Obs.Logger.default (Some Obs.Logger.Debug);
      let on = Core.Lia.infer ~r ~y_learn ~y_now () in
      Obs.Logger.set_level Obs.Logger.default None;
      Obs.Logger.set_sink Obs.Logger.default None;
      Obs.Trace.close Obs.Trace.default;
      Obs.Metrics.disable reg;
      Obs.Metrics.reset reg;
      vec_bits_equal off.Core.Lia.loss_rates on.Core.Lia.loss_rates
      && off.Core.Lia.kept = on.Core.Lia.kept)

(* --- dump format ------------------------------------------------------- *)

let test_dump_prometheus_shape () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"things done" "things_total" in
  let h = Obs.Metrics.histogram reg ~buckets:[| 0.1; 1. |] "lat_seconds" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 0.05;
  Obs.Metrics.observe h 5.0;
  let d = Obs.Metrics.dump reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump has %S" needle) true
        (contains ~needle d))
    [
      "# HELP things_total things done";
      "# TYPE things_total counter";
      "things_total 1";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"0.1\"} 1";
      (* cumulative: +Inf counts every observation *)
      "lat_seconds_bucket{le=\"+Inf\"} 2";
      "lat_seconds_count 2";
    ]

let metrics_tests =
  [
    Alcotest.test_case "histogram: inclusive bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "histogram: bad buckets rejected" `Quick
      test_histogram_rejects_bad_buckets;
    Alcotest.test_case "registration idempotent by name" `Quick
      test_registration_idempotent;
    Alcotest.test_case "disabled probes are inert" `Quick
      test_disabled_probes_are_inert;
    Alcotest.test_case "counter merge jobs-invariant" `Quick
      test_counter_merge_across_jobs;
    Alcotest.test_case "dump: Prometheus text shape" `Quick
      test_dump_prometheus_shape;
  ]

let trace_tests =
  [
    Alcotest.test_case "pool spans emit well-formed JSONL" `Quick
      test_pool_spans_well_formed_jsonl;
  ]

let invariance_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_inference_bits_unchanged_by_obs ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("trace", trace_tests);
      ("invariance", invariance_tests);
    ]
