Cross-validation scenario runner: a 2x2 grid (two topology families x
two fault alternatives), two seeds, all nine registered backends on
identical simulated data. The table is a deterministic function of the
grid and the seed list.

  $ lia_cli crossval --grid "family=tree,planetlab;size=12;fault=none|seed=3,drop=0.2,miss=0.1" --seeds 1,2 --snapshots 12 -o cells.jsonl
  == tree/12 llrd1-calibrated fault=none (2 seeds) ==
  estimator   status                abs.mean   abs.max  errf.med      dr     fpr  note
  minc        clean:2                 0.0052    0.0444    1.0000    1.00    0.00  gammas approximated from unicast snapshots
  em          clean:2                 0.0000    0.0004    1.0000    1.00    0.00  8 sweeps; 2 sweeps
  mils        clean:2                 0.0069    0.0473    1.0000    1.00    0.00  granularity 1.78; granularity 1.75
  scfs        clean:2                      -         -         -    1.00    0.00  
  clink       clean:2                      -         -         -    1.00    0.00  
  fourier     clean:2                 0.0002    0.0009    1.0000    1.00    0.00  
  plan        skipped:2                    -         -         -       -       -  skipped(needs caller-supplied link variances)
  lia-dense   clean:1,degraded:1      0.0002    0.0009    1.0000    1.00    0.00  degraded (kept 9/11 snapshots (quarantined 2: 2 duplicate); 0 missing cells, 0 corrupt cells; pairs used 14/14, min overlap 9; target: 0 missing, 0 corrupt)
  lia-cgls    clean:1,degraded:1      0.0002    0.0009    1.0000    1.00    0.00  degraded (kept 9/11 snapshots (quarantined 2: 2 duplicate); 0 missing cells, 0 corrupt cells; pairs used 14/14, min overlap 9; target: 0 missing, 0 corrupt)
  
  == tree/12 llrd1-calibrated fault=seed=3,drop=0.2,miss=0.1 (2 seeds) ==
  estimator   status                abs.mean   abs.max  errf.med      dr     fpr  note
  minc        clean:2                 0.0058    0.0479    1.0000    1.00    0.00  gammas approximated from unicast snapshots
  em          degraded:2              0.0015    0.0100    1.0000    1.00    0.67  target: 1 invalid paths excluded; 8 sweeps; target: 2 invalid paths excluded; 2 sweeps
  mils        degraded:2              0.0069    0.0473    1.0000    1.00    0.00  target: 1 invalid paths excluded; granularity 1.88; target: 2 invalid paths excluded; granularity 1.83
  scfs        degraded:2                   -         -         -    1.00    0.00  target: 1 invalid paths excluded; target: 2 invalid paths excluded
  clink       degraded:2                   -         -         -    1.00    0.00  target: 1 invalid paths excluded; target: 2 invalid paths excluded
  fourier     clean:2                 0.0002    0.0010    1.0000    1.00    0.00  
  plan        skipped:2                    -         -         -       -       -  skipped(needs caller-supplied link variances)
  lia-dense   degraded:2              0.0002    0.0010    1.0000    1.00    0.00  degraded (kept 10/10 snapshots; 14 missing cells, 0 corrupt cells; pairs used 18/18, min overlap 5; target: 1 missing, 0 corrupt); degraded (kept 8/8 snapshots; 10 missing cells, 0 corrupt cells; pairs used 14/14, min overlap 4; target: 2 missing, 0 corrupt)
  lia-cgls    degraded:2              0.0002    0.0010    1.0000    1.00    0.00  degraded (kept 10/10 snapshots; 14 missing cells, 0 corrupt cells; pairs used 18/18, min overlap 5; target: 1 missing, 0 corrupt); degraded (kept 8/8 snapshots; 10 missing cells, 0 corrupt cells; pairs used 14/14, min overlap 4; target: 2 missing, 0 corrupt)
  
  == planetlab/12 llrd1-calibrated fault=none (2 seeds) ==
  estimator   status                abs.mean   abs.max  errf.med      dr     fpr  note
  minc        skipped:2                    -         -         -       -       -  skipped(not a single-beacon tree)
  em          clean:2                 0.0125    0.1864    1.0000    0.89    0.52  14 sweeps; 30 sweeps
  mils        clean:2                 0.0153    0.1521    1.0000    1.00    0.68  granularity 4.55; granularity 4.44
  scfs        clean:2                      -         -         -    0.68    0.11  
  clink       clean:2                      -         -         -    0.71    0.14  
  fourier     skipped:2                    -         -         -       -       -  skipped(not a single-beacon tree)
  plan        skipped:2                    -         -         -       -       -  skipped(needs caller-supplied link variances)
  lia-dense   clean:2                 0.0036    0.1115    1.0000    0.88    0.11  
  lia-cgls    clean:2                 0.0036    0.1115    1.0000    0.88    0.11  
  
  == planetlab/12 llrd1-calibrated fault=seed=3,drop=0.2,miss=0.1 (2 seeds) ==
  estimator   status                abs.mean   abs.max  errf.med      dr     fpr  note
  minc        skipped:2                    -         -         -       -       -  skipped(not a single-beacon tree)
  em          degraded:2              0.0135    0.1865    1.0000    0.89    0.62  target: 14 invalid paths excluded; 16 sweeps; target: 14 invalid paths excluded; 31 sweeps
  mils        degraded:2              0.0154    0.1615    1.0000    0.88    0.70  target: 14 invalid paths excluded; granularity 4.54; target: 14 invalid paths excluded; granularity 4.47
  scfs        degraded:2                   -         -         -    0.59    0.15  target: 14 invalid paths excluded
  clink       degraded:2                   -         -         -    0.59    0.19  target: 14 invalid paths excluded
  fourier     skipped:2                    -         -         -       -       -  skipped(not a single-beacon tree)
  plan        skipped:2                    -         -         -       -       -  skipped(needs caller-supplied link variances)
  lia-dense   degraded:2              0.0062    0.2035    1.0000    0.56    0.12  degraded (kept 10/10 snapshots; 148 missing cells, 0 corrupt cells; pairs used 1454/1454, min overlap 4; target: 14 missing, 0 corrupt); degraded (kept 10/10 snapshots; 148 missing cells, 0 corrupt cells; pairs used 1456/1456, min overlap 4; target: 14 missing, 0 corrupt)
  lia-cgls    degraded:2              0.0062    0.2035    1.0000    0.56    0.12  degraded (kept 10/10 snapshots; 148 missing cells, 0 corrupt cells; pairs used 1454/1454, min overlap 4; target: 14 missing, 0 corrupt); degraded (kept 10/10 snapshots; 148 missing cells, 0 corrupt cells; pairs used 1456/1456, min overlap 4; target: 14 missing, 0 corrupt)
  
  wrote cells.jsonl: 72 cells

The JSONL sidecar carries one record per (scenario, estimator) cell:
4 scenarios x 9 estimators x 2 seeds = 72 cells.

  $ wc -l < cells.jsonl
  72

Reruns are byte-identical and the worker count never leaks into the
output:

  $ lia_cli crossval --grid "family=tree,planetlab;size=12;fault=none|seed=3,drop=0.2,miss=0.1" --seeds 1,2 --snapshots 12 -j 1 > j1.txt
  $ lia_cli crossval --grid "family=tree,planetlab;size=12;fault=none|seed=3,drop=0.2,miss=0.1" --seeds 1,2 --snapshots 12 -j 4 > j4.txt
  $ lia_cli crossval --grid "family=tree,planetlab;size=12;fault=none|seed=3,drop=0.2,miss=0.1" --seeds 1,2 --snapshots 12 -j 1 > j1b.txt
  $ diff j1.txt j4.txt
  $ diff j1.txt j1b.txt

A subset of backends can be selected by name:

  $ lia_cli crossval --estimators lia-dense,em --grid "family=tree;size=12" --seeds 1 --snapshots 12
  == tree/12 llrd1-calibrated fault=none (1 seed) ==
  estimator   status                abs.mean   abs.max  errf.med      dr     fpr  note
  lia-dense   clean:1                 0.0001    0.0008    1.0000    1.00    0.00  
  em          clean:1                 0.0001    0.0008    1.0000    1.00    0.00  8 sweeps
  

An unknown estimator is a usage error (exit 2), listing the registry:

  $ lia_cli crossval --estimators bogus --grid "family=tree;size=12" --seeds 1
  lia_cli: unknown estimator "bogus" (known: minc, em, mils, scfs, clink, fourier, plan, lia-dense, lia-cgls)
  [2]

So is an unknown grid axis:

  $ lia_cli crossval --grid "flavour=tree" --seeds 1
  lia_cli: unknown grid axis "flavour" (expected family, size, model, or fault)
  [2]
