(* A dedicated property-test suite for the end-to-end invariants of the
   system: LIA output well-formedness, simulator conservation laws,
   augmented-matrix algebra, serialization round-trips on random
   topologies, and Gilbert-chain stationarity across its parameter
   range. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Rng = Nstats.Rng
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator

let random_tree_trial = Generators.random_tree_trial

(* --- LIA output invariants ------------------------------------------------ *)

let prop_lia_output_well_formed =
  QCheck.Test.make ~count:12 ~name:"LIA: rates in range, kept/removed partition"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, target = random_tree_trial seed in
      let res = Core.Lia.infer ~r ~y_learn ~y_now:target.Snapshot.y () in
      let nc = Sparse.cols r in
      let seen = Array.make nc 0 in
      Array.iter (fun j -> seen.(j) <- seen.(j) + 1) res.Core.Lia.kept;
      Array.iter (fun j -> seen.(j) <- seen.(j) + 1) res.Core.Lia.removed;
      Array.for_all (fun c -> c = 1) seen
      && Array.for_all (fun t -> t > 0. && t <= 1.) res.Core.Lia.transmission
      && Array.for_all (fun l -> l >= 0. && l < 1.) res.Core.Lia.loss_rates
      && Array.for_all (fun v -> v >= 0.) res.Core.Lia.variances
      && Array.for_all
           (fun j -> res.Core.Lia.loss_rates.(j) = 0.)
           res.Core.Lia.removed)

let prop_lia_kept_descending_variance =
  QCheck.Test.make ~count:12 ~name:"LIA: kept columns in descending variance order"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn, target = random_tree_trial seed in
      let res = Core.Lia.infer ~r ~y_learn ~y_now:target.Snapshot.y () in
      let v = res.Core.Lia.variances in
      let rec descending = function
        | a :: (b :: _ as rest) -> v.(a) >= v.(b) && descending rest
        | _ -> true
      in
      descending (Array.to_list res.Core.Lia.kept))

(* --- Simulator conservation ------------------------------------------------ *)

let prop_snapshot_conservation =
  QCheck.Test.make ~count:20 ~name:"snapshot: received <= S and y = log(rx/S)"
    QCheck.(pair (int_range 1 5000) (int_range 50 400))
    (fun (seed, probes) ->
      let rng = Rng.create seed in
      let tb = Topology.Tree_gen.generate rng ~nodes:40 ~max_branching:4 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        { (Snapshot.default_config Lossmodel.Loss_model.llrd1) with
          Snapshot.probes }
      in
      let statuses = Snapshot.draw_statuses rng config ~links:(Sparse.cols r) in
      let s = Snapshot.generate rng config ~congested:statuses r in
      let ok = ref true in
      Array.iteri
        (fun i rx ->
          if rx < 0 || rx > probes then ok := false;
          let expected =
            log (Float.max 0.5 (float_of_int rx) /. float_of_int probes)
          in
          if Float.abs (expected -. s.Snapshot.y.(i)) > 1e-12 then ok := false)
        s.Snapshot.received;
      !ok
      && Array.for_all (fun x -> x >= 0. && x <= 1.) s.Snapshot.realized
      && Array.for_all (fun x -> x >= 0. && x <= 1.) s.Snapshot.loss_rates)

let prop_shared_chain_dominance =
  QCheck.Test.make ~count:20
    ~name:"snapshot: a path cannot deliver more than its worst link allows"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let tb = Topology.Tree_gen.generate rng ~nodes:40 ~max_branching:4 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config = Snapshot.default_config Lossmodel.Loss_model.llrd1 in
      let statuses = Snapshot.draw_statuses rng config ~links:(Sparse.cols r) in
      let s = Snapshot.generate rng config ~congested:statuses r in
      let ok = ref true in
      for i = 0 to Sparse.rows r - 1 do
        let min_link_trans =
          Array.fold_left
            (fun acc j -> Float.min acc (1. -. s.Snapshot.realized.(j)))
            1. (Sparse.row r i)
        in
        let path_trans = float_of_int s.Snapshot.received.(i) /. 1000. in
        if path_trans > min_link_trans +. 1e-9 then ok := false
      done;
      !ok)

(* --- Augmented matrix algebra ----------------------------------------------- *)

let prop_augmented_row_count =
  QCheck.Test.make ~count:30 ~name:"augmented: row count and diagonal rows"
    QCheck.(int_range 1 2000)
    (fun seed ->
      let rng = Rng.create seed in
      let tb = Topology.Tree_gen.generate rng ~nodes:(20 + (seed mod 40)) ~max_branching:4 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let a = Core.Augmented.build r in
      let np = Sparse.rows r in
      Sparse.rows a = np * (np + 1) / 2
      && Array.for_all
           (fun i ->
             Sparse.row a (Core.Augmented.row_index ~np ~i ~j:i) = Sparse.row r i)
           (Array.init np (fun i -> i)))

let prop_row_product_symmetric =
  QCheck.Test.make ~count:100 ~name:"row product is symmetric and idempotent"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 10) (int_range 0 20))
              (list_of_size (QCheck.Gen.int_range 0 10) (int_range 0 20)))
    (fun (l1, l2) ->
      let mk l = Array.of_list (List.sort_uniq compare l) in
      let r1 = mk l1 and r2 = mk l2 in
      Sparse.row_product r1 r2 = Sparse.row_product r2 r1
      && Sparse.row_product r1 r1 = r1)

(* --- Serialization round-trips on random topologies -------------------------- *)

let prop_serial_roundtrip_random =
  QCheck.Test.make ~count:15 ~name:"testbed serialization round-trips"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let tb =
        if seed mod 2 = 0 then Topology.Tree_gen.generate rng ~nodes:40 ~max_branching:5 ()
        else Topology.Waxman.generate rng ~nodes:40 ~hosts:6 ()
      in
      let tb' = Topology.Serial.of_string (Topology.Serial.to_string tb) in
      let r = (Topology.Testbed.routing tb).Topology.Routing.matrix in
      let r' = (Topology.Testbed.routing tb').Topology.Routing.matrix in
      Sparse.equal r r')

(* --- Gilbert stationarity across parameters ----------------------------------- *)

let prop_gilbert_mean_rate =
  QCheck.Test.make ~count:15 ~name:"gilbert: realized rate matches target"
    QCheck.(pair (float_range 0.01 0.5) (float_range 0. 0.8))
    (fun (rate, stay_bad) ->
      let rng = Rng.create 99 in
      let chain = Lossmodel.Gilbert.make ~stay_bad ~loss_rate:rate () in
      let total = ref 0 in
      let steps = 2000 and reps = 40 in
      for _ = 1 to reps do
        total := !total + Lossmodel.Gilbert.losses rng chain ~steps
      done;
      let realized = float_of_int !total /. float_of_int (steps * reps) in
      Float.abs (realized -. rate) < 0.05 +. (0.2 *. rate))

(* --- Variance estimation invariance ------------------------------------------- *)

let prop_variance_estimate_scale =
  QCheck.Test.make ~count:10
    ~name:"variance estimator: scaling Y by c scales v by c^2"
    QCheck.(pair (int_range 1 3000) (float_range 0.5 3.))
    (fun (seed, c) ->
      (* drop_negative off: near-zero covariances may flip sign under
         scaled floating point and change the dropped row set, which is
         correct behaviour but breaks exact linearity *)
      let r, y_learn, _ = random_tree_trial seed in
      let v1 =
        Core.Variance_estimator.estimate_streaming ~drop_negative:false ~r
          ~y:y_learn ()
      in
      let m = Matrix.rows y_learn and np = Matrix.cols y_learn in
      let scaled = Matrix.init m np (fun l i -> c *. Matrix.get y_learn l i) in
      let v2 =
        Core.Variance_estimator.estimate_streaming ~drop_negative:false ~r
          ~y:scaled ()
      in
      let ok = ref true in
      Array.iteri
        (fun k v ->
          let expected = c *. c *. v in
          if Float.abs (v2.(k) -. expected) > 1e-6 *. (1. +. expected) then
            ok := false)
        v1;
      !ok)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lia_output_well_formed;
      prop_lia_kept_descending_variance;
      prop_snapshot_conservation;
      prop_shared_chain_dominance;
      prop_augmented_row_count;
      prop_row_product_symmetric;
      prop_serial_roundtrip_random;
      prop_gilbert_mean_rate;
      prop_variance_estimate_scale;
    ]

let () = Alcotest.run "properties" [ ("system-invariants", properties) ]
