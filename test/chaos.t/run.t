Fault injection is seeded and deterministic: the same --fault-spec on the
same campaign produces the same faulted file and the same health verdict,
run after run.

  $ lia_cli gen --kind tree --nodes 60 --seed 4 -o chaos.tb
  wrote chaos.tb: graph: 60 nodes (52 hosts), 59 edges, 1 beacons, 51 destinations; 51 paths x 59 virtual links
  $ lia_cli sim --testbed chaos.tb --snapshots 12 --seed 5 -o clean.meas
  wrote clean.meas: 12 snapshots x 51 paths
  $ lia_cli sim --testbed chaos.tb --snapshots 12 --seed 5 \
  >   --fault-spec seed=7,drop=0.1,miss=0.05,oor=0.02,dup=0.1 -o faulty.meas
  wrote faulty.meas: 10 snapshots x 51 paths
  fault injection: cells 46 (miss 34, oor 12), dropped 2
  $ lia_cli sim --testbed chaos.tb --snapshots 12 --seed 5 \
  >   --fault-spec seed=7,drop=0.1,miss=0.05,oor=0.02,dup=0.1 -o faulty2.meas
  wrote faulty2.meas: 10 snapshots x 51 paths
  fault injection: cells 46 (miss 34, oor 12), dropped 2
  $ cmp faulty.meas faulty2.meas

The explicit empty spec is a no-op: the output file is byte-identical to
the fault-free campaign.

  $ lia_cli sim --testbed chaos.tb --snapshots 12 --seed 5 --fault-spec none -o none.meas
  wrote none.meas: 12 snapshots x 51 paths
  $ cmp clean.meas none.meas

Quarantine-aware inference degrades gracefully on the faulted file: a
typed health verdict bounds what was lost, the estimates stay finite, and
the quarantine counters land in the metrics dump.

  $ lia_cli infer --testbed chaos.tb --measurements faulty.meas --top 2 --metrics chaos-metrics.txt
  learned variances from 9 snapshots
  health: degraded (kept 9/9 snapshots; 38 missing cells, 10 corrupt cells; pairs used 311/311, min overlap 4; target: 1 missing, 1 corrupt)
  kept 19 columns, eliminated 40; 9 links above tl = 0.002
  link   loss rate   variance    verdict    edges
  24     0.15420     6.981e-03   CONGESTED  24 (intra-AS)
  2      0.13100     2.088e-03   CONGESTED  2 (intra-AS)
  $ grep "^lia_quarantine_cells_total\|^lia_degraded_total\|^lia_ingest_dropped_snapshots" chaos-metrics.txt
  lia_quarantine_cells_total 11
  lia_ingest_dropped_snapshots 0
  lia_degraded_total 1

Faults can also be injected at ingest, without rewriting the file. Too
little usable signal is a refusal, not a wrong answer: exit code 3.

  $ lia_cli infer --testbed chaos.tb --measurements clean.meas --fault-spec seed=3,miss=0.9
  fault injection: cells 554 (miss 554)
  health: refused (0 usable learning snapshots after quarantine (need at least 2))
  [3]

Host churn mid-window degrades; a routing shift (T.1/T.2 violation)
leaves the cells valid, so the verdict stays clean while the chaos suite
pins that the estimates remain finite and deterministic.

  $ lia_cli infer --testbed chaos.tb --measurements clean.meas --fault-spec seed=3,churn=2@0.5 | head -2
  fault injection: churned hosts 2
  learned variances from 11 snapshots

Strict loading guards every non-quarantine path: a NaN cell in a serving
file is a one-line file:line diagnostic and exit 2.

  $ { head -1 clean.meas; printf 'nan '; sed -n 2p clean.meas | cut -d' ' -f2-; sed -n 3,13p clean.meas; } > nan.meas
  $ lia_cli validate --testbed chaos.tb --measurements nan.meas --epsilon 0.01
  lia_cli: nan.meas:2: missing measurement (NaN) "nan"
  [2]

  $ lia_cli infer --testbed chaos.tb --measurements clean.meas --snapshots nan.meas
  lia_cli: nan.meas:2: missing measurement (NaN) "nan"
  [2]

Fault injection composes with the default diagnosis mode only.

  $ lia_cli infer --testbed chaos.tb --measurements clean.meas --snapshots clean.meas --fault-spec seed=1,miss=0.1
  lia_cli: --fault-spec is not supported with --snapshots
  [2]

A malformed spec is rejected by the argument parser.

  $ lia_cli infer --testbed chaos.tb --measurements clean.meas --fault-spec wibble=1 2>&1 | head -3
  lia_cli: option '--fault-spec': unknown fault key "wibble"
  Usage: lia_cli infer [OPTION]…
  Try 'lia_cli infer --help' or 'lia_cli --help' for more information.
