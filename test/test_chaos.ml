(* Chaos suite: deterministic fault injection end to end.

   The contracts under test, in order:
   - fault-off is the seed pipeline, bit for bit;
   - the injected fault schedule is a pure function of the spec and the
     matrix shape (same seed, same faults), and the quarantine report and
     estimates are identical for every jobs value;
   - repairing the input recovers the never-faulted output bit for bit;
   - every fault kind ends in exactly one of: clean (bit-identical to
     Lia.infer), typed Degraded with finite estimates, or typed Refused —
     never an escaped exception, never NaN in the loss rates;
   - the degraded solve is still the Plan pipeline (regression pin);
   - the monitor never serves a stale cached variance vector across
     host-churn evictions, and rejects unusable snapshots at ingest. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Faults = Netsim.Faults
module Lia = Core.Lia
module Plan = Core.Plan
module Quarantine = Core.Quarantine
module Monitor = Core.Monitor
module G = Generators

let result_bits_equal (a : Lia.result) (b : Lia.result) =
  G.vec_bits_equal a.Lia.variances b.Lia.variances
  && G.vec_bits_equal a.Lia.transmission b.Lia.transmission
  && G.vec_bits_equal a.Lia.loss_rates b.Lia.loss_rates
  && a.Lia.kept = b.Lia.kept
  && a.Lia.removed = b.Lia.removed

let health_equal a b =
  match (a, b) with
  | Lia.Clean, Lia.Clean -> true
  | Lia.Degraded d1, Lia.Degraded d2 ->
      d1.Lia.quarantine = d2.Lia.quarantine
      && d1.Lia.ess = d2.Lia.ess
      && d1.Lia.target_missing = d2.Lia.target_missing
      && d1.Lia.target_corrupt = d2.Lia.target_corrupt
  | Lia.Refused r1, Lia.Refused r2 -> String.equal r1 r2
  | _ -> false

let checked_equal (a : Lia.checked) (b : Lia.checked) =
  health_equal a.Lia.health b.Lia.health
  &&
  match (a.Lia.result, b.Lia.result) with
  | None, None -> true
  | Some ra, Some rb -> result_bits_equal ra rb
  | _ -> false

let result_finite (r : Lia.result) =
  Array.for_all Float.is_finite r.Lia.loss_rates
  && Array.for_all Float.is_finite r.Lia.variances
  && Array.for_all Float.is_finite r.Lia.transmission

(* --- (a) fault off = seed pipeline --------------------------------------- *)

let prop_fault_off_is_seed_pipeline =
  QCheck.Test.make ~count:10
    ~name:"chaos: fault-spec none = seed pipeline, bit for bit" G.seed_arb
    (fun seed ->
      let r, y_learn, target = G.random_tree_trial seed in
      let y', schedule = Faults.apply Faults.none y_learn in
      let checked =
        Lia.infer_checked ~r ~y_learn:y' ~y_now:target.Netsim.Snapshot.y ()
      in
      let baseline = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
      G.matrix_bits_equal y_learn y'
      && schedule = []
      && checked.Lia.health = Lia.Clean
      && match checked.Lia.result with
         | Some res -> result_bits_equal res baseline
         | None -> false)

(* --- (b) same seed, same schedule; jobs-invariant verdicts ----------------- *)

let prop_same_spec_same_faults =
  QCheck.Test.make ~count:10
    ~name:"chaos: same spec applied twice yields identical faults" G.seed_arb
    (fun seed ->
      let _, y_learn, _ = G.random_tree_trial seed in
      let spec = G.random_fault_spec seed in
      let y1, s1 = Faults.apply spec y_learn in
      let y2, s2 = Faults.apply spec y_learn in
      G.matrix_bits_equal y1 y2 && s1 = s2)

let prop_verdict_jobs_invariant =
  QCheck.Test.make ~count:8
    ~name:"chaos: health verdict and estimates identical for jobs in {1,2,4}"
    G.seed_arb
    (fun seed ->
      let r, y_learn, target = G.random_tree_trial seed in
      let spec = G.random_fault_spec seed in
      let y, _ = Faults.apply spec y_learn in
      let run jobs =
        Lia.infer_checked ~jobs ~r ~y_learn:y ~y_now:target.Netsim.Snapshot.y ()
      in
      let c1 = run 1 in
      checked_equal c1 (run 2) && checked_equal c1 (run 4))

(* --- (c) repaired input recovers bit-identically --------------------------- *)

let prop_repair_recovers =
  QCheck.Test.make ~count:8
    ~name:"chaos: repaired input recovers the never-faulted output" G.seed_arb
    (fun seed ->
      let r, y_learn, target = G.random_tree_trial seed in
      let y_now = target.Netsim.Snapshot.y in
      let before = Lia.infer_checked ~r ~y_learn ~y_now () in
      (* fault-laden run in between: must not perturb any state the
         pipeline reads on the next call *)
      let faulted, _ = Faults.apply (G.random_fault_spec seed) y_learn in
      let _ = Lia.infer_checked ~r ~y_learn:faulted ~y_now () in
      let after = Lia.infer_checked ~r ~y_learn ~y_now () in
      checked_equal before after)

(* --- trichotomy: every fault kind ends in a typed outcome ------------------ *)

let fault_kinds =
  [
    "drop=0.5"; "miss=0.3"; "nan=0.2"; "oor=0.2"; "neg=0.2"; "dup=0.5";
    "churn=2@0.5"; "route_shift=0.5"; "drop=0.9,miss=0.9"; "miss=1";
  ]

let prop_trichotomy =
  QCheck.Test.make ~count:6
    ~name:
      "chaos: every fault kind is clean (= Lia.infer), Degraded+finite, or \
       Refused — never an escaped exception"
    G.seed_arb
    (fun seed ->
      let r, y_learn, target = G.random_tree_trial seed in
      let y_now = target.Netsim.Snapshot.y in
      List.for_all
        (fun kind ->
          let spec =
            match Faults.parse (Printf.sprintf "seed=%d,%s" seed kind) with
            | Ok t -> t
            | Error msg -> failwith msg
          in
          let y, _ = Faults.apply spec y_learn in
          match Lia.infer_checked ~r ~y_learn:y ~y_now () with
          | exception e ->
              QCheck.Test.fail_reportf "fault %s escaped: %s" kind
                (Printexc.to_string e)
          | { Lia.health = Lia.Clean; result = Some res } ->
              result_bits_equal res (Lia.infer ~r ~y_learn:y ~y_now ())
          | { Lia.health = Lia.Degraded _; result = Some res } ->
              result_finite res
          | { Lia.health = Lia.Refused _; result = None } -> true
          | _ -> false)
        fault_kinds)

(* --- regression: the degraded solve is still the Plan pipeline ------------- *)

let prop_degraded_solve_is_plan =
  QCheck.Test.make ~count:8
    ~name:"chaos: infer_checked = scrub + ESS estimate + Plan.solve, bit for bit"
    G.seed_arb
    (fun seed ->
      let r, y_learn, target = G.random_tree_trial seed in
      let spec =
        match Faults.parse (Printf.sprintf "seed=%d,miss=0.15,oor=0.05" seed) with
        | Ok t -> t
        | Error msg -> failwith msg
      in
      let y, _ = Faults.apply spec y_learn in
      let y_now = target.Netsim.Snapshot.y in
      match Lia.infer_checked ~r ~y_learn:y ~y_now () with
      | { Lia.result = None; _ } -> true (* refusals pinned elsewhere *)
      | { Lia.result = Some res; _ } ->
          let scrubbed, _ = Quarantine.scrub y in
          let variances, _ =
            Core.Variance_estimator.estimate_streaming_ess ~r ~y:scrubbed ()
          in
          (* the simulator's target snapshot is always valid, so the
             checked path must take the plain full-plan solve *)
          let oracle = Plan.solve (Plan.make ~r ~variances ()) y_now in
          result_bits_equal res oracle)

let test_degraded_target_solves_valid_rows () =
  (* an invalid target cell must be excluded from the Phase-2 system, not
     propagated: the solve runs on the valid paths only *)
  let r, y_learn, target = G.random_tree_trial 7 in
  let y_now = Array.copy target.Netsim.Snapshot.y in
  y_now.(0) <- Float.nan;
  y_now.(1) <- 0.25 (* corrupt: positive log success rate *);
  match Lia.infer_checked ~r ~y_learn ~y_now () with
  | { Lia.health = Lia.Degraded d; result = Some res } ->
      Alcotest.(check int) "missing counted" 1 d.Lia.target_missing;
      Alcotest.(check int) "corrupt counted" 1 d.Lia.target_corrupt;
      Alcotest.(check bool) "estimates finite" true (result_finite res)
  | { Lia.health = h; _ } ->
      Alcotest.failf "expected Degraded, got %s" (Lia.health_label h)

(* --- monitor: churn-safe caching and validating ingest --------------------- *)

let test_monitor_churn_never_serves_stale_variances () =
  let r, y_learn, _ = G.random_tree_trial 11 in
  let np = Sparse.rows r in
  let t = Monitor.create ~r ~window:5 in
  for l = 0 to 4 do
    Monitor.observe t (Matrix.row y_learn l)
  done;
  let v_before = Array.copy (Monitor.variances t) in
  (* host churn: the next snapshot arrives with two hosts dark; it is
     accepted degraded and evicts the oldest window entry *)
  let churned = Array.copy (Matrix.row y_learn 5) in
  churned.(0) <- Float.nan;
  churned.(np - 1) <- Float.nan;
  (match Monitor.observe_checked t churned with
  | Monitor.Accepted_degraded { missing = 2; corrupt = 0 } -> ()
  | o -> Alcotest.failf "unexpected ingest verdict: %s" (Monitor.observation_to_string o));
  Alcotest.(check int) "window stays full" 5 (Monitor.size t);
  let v_after = Monitor.variances t in
  let fresh =
    Core.Variance_estimator.estimate_streaming ~r ~y:(Monitor.window_matrix t) ()
  in
  Alcotest.(check bool) "served variances are fresh, bit for bit" true
    (G.vec_bits_equal v_after fresh);
  Alcotest.(check bool) "stale pre-churn vector was not served" false
    (G.vec_bits_equal v_after v_before)

let test_monitor_rejects_unusable_snapshots () =
  let r, y_learn, _ = G.random_tree_trial 13 in
  let np = Sparse.rows r in
  let t = Monitor.create ~r ~window:4 in
  Monitor.observe t (Matrix.row y_learn 0);
  (match Monitor.observe_checked t (Array.make np Float.nan) with
  | Monitor.Rejected Quarantine.All_missing -> ()
  | o -> Alcotest.failf "all-NaN snapshot: %s" (Monitor.observation_to_string o));
  (let bad = Array.copy (Matrix.row y_learn 1) in
   Array.fill bad 0 (np - (np / 4)) Float.nan;
   match Monitor.observe_checked t bad with
   | Monitor.Rejected (Quarantine.Excess_missing _) -> ()
   | o -> Alcotest.failf "mostly-NaN snapshot: %s" (Monitor.observation_to_string o));
  Alcotest.(check int) "rejected snapshots never enter the window" 1
    (Monitor.size t)

let test_monitor_infer_checked_refuses_short_window () =
  let r, y_learn, _ = G.random_tree_trial 17 in
  let t = Monitor.create ~r ~window:4 in
  Monitor.observe t (Matrix.row y_learn 0);
  match Monitor.infer_checked t ~y_now:(Matrix.row y_learn 1) with
  | { Lia.health = Lia.Refused _; result = None } -> ()
  | { Lia.health = h; _ } ->
      Alcotest.failf "expected Refused, got %s" (Lia.health_label h)

(* --- quarantine unit pins --------------------------------------------------- *)

let test_quarantine_reasons () =
  let y =
    Matrix.of_arrays
      [|
        [| -0.1; -0.2; -0.3; -0.4 |];
        [| Float.nan; Float.nan; Float.nan; Float.nan |];
        [| Float.nan; Float.nan; Float.nan; -0.4 |];
        [| -0.1; -0.2; -0.3; -0.4 |];
        [| -0.1; 0.7; -0.3; -0.4 |];
      |]
  in
  let scrubbed, rep = Quarantine.scrub y in
  Alcotest.(check int) "rows kept" 2 (Matrix.rows scrubbed);
  Alcotest.(check bool) "kept indices" true (rep.Quarantine.kept = [| 0; 4 |]);
  Alcotest.(check int) "corrupt cells counted" 1 rep.Quarantine.corrupt_cells;
  let reasons = List.map snd rep.Quarantine.quarantined in
  Alcotest.(check bool) "all-missing flagged" true
    (List.mem Quarantine.All_missing reasons);
  Alcotest.(check bool) "excess-missing flagged" true
    (List.exists
       (function Quarantine.Excess_missing _ -> true | _ -> false)
       reasons);
  Alcotest.(check bool) "duplicate flagged with original index" true
    (List.mem (Quarantine.Duplicate_of 0) reasons)

let test_ess_complete_matrix () =
  let r, y_learn, _ = G.random_tree_trial 23 in
  let m = Matrix.rows y_learn in
  let v1 = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
  let v2, ess = Core.Variance_estimator.estimate_streaming_ess ~r ~y:y_learn () in
  Alcotest.(check bool) "same variances" true (G.vec_bits_equal v1 v2);
  Alcotest.(check int) "no pair skipped" ess.Core.Variance_estimator.pairs_total
    ess.Core.Variance_estimator.pairs_used;
  Alcotest.(check int) "full overlap" m ess.Core.Variance_estimator.samples_min

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fault_off_is_seed_pipeline;
      prop_same_spec_same_faults;
      prop_verdict_jobs_invariant;
      prop_repair_recovers;
      prop_trichotomy;
      prop_degraded_solve_is_plan;
    ]

let units =
  [
    Alcotest.test_case "degraded target solves valid rows" `Quick
      test_degraded_target_solves_valid_rows;
    Alcotest.test_case "monitor: churn never serves stale variances" `Quick
      test_monitor_churn_never_serves_stale_variances;
    Alcotest.test_case "monitor: unusable snapshots rejected" `Quick
      test_monitor_rejects_unusable_snapshots;
    Alcotest.test_case "monitor: short window refuses" `Quick
      test_monitor_infer_checked_refuses_short_window;
    Alcotest.test_case "quarantine: reasons and precedence" `Quick
      test_quarantine_reasons;
    Alcotest.test_case "ess: complete matrix accounting" `Quick
      test_ess_complete_matrix;
  ]

let () = Alcotest.run "chaos" [ ("fault-injection", properties); ("units", units) ]
