(* Property tests for the factor-once serving path: Plan.solve must be
   bit-for-bit the seed per-call pipeline (rank reduction + fresh dense QR
   per measurement), Plan.solve_batch must agree row-wise with Plan.solve
   for every jobs value, and the pool-parallel QR factorization itself
   must be jobs-invariant. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Qr = Linalg.Qr
module Rng = Nstats.Rng

let bits_equal = Generators.bits_equal
let vec_bits_equal = Generators.vec_bits_equal
let matrix_bits_equal = Generators.matrix_bits_equal
let random_instance = Generators.random_instance

(* The seed implementation of Lia.infer_with_variances, frozen here as the
   oracle: everything recomputed per call, sequential QR. *)
let seed_phase2 ~r ~variances ~y_now =
  let nc = Sparse.cols r in
  let { Core.Rank_reduction.kept; removed } =
    Core.Rank_reduction.eliminate r variances
  in
  let r_star = Sparse.dense_cols r kept in
  let x_star = Qr.solve ~jobs:1 r_star y_now in
  let transmission = Array.make nc 1. in
  Array.iteri
    (fun k j -> transmission.(j) <- Float.min 1. (exp x_star.(k)))
    kept;
  let loss_rates = Array.map (fun t -> 1. -. t) transmission in
  (transmission, loss_rates, kept, removed)

let prop_plan_solve_matches_seed =
  QCheck.Test.make ~count:20
    ~name:"Plan.solve: bit-for-bit = seed per-call pipeline"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, variances, y = random_instance seed in
      let plan = Core.Plan.make ~r ~variances () in
      let y_now = Matrix.row y 0 in
      let res = Core.Plan.solve plan y_now in
      let transmission, loss_rates, kept, removed =
        seed_phase2 ~r ~variances ~y_now
      in
      vec_bits_equal transmission res.Core.Plan.transmission
      && vec_bits_equal loss_rates res.Core.Plan.loss_rates
      && kept = res.Core.Plan.kept
      && removed = res.Core.Plan.removed
      && vec_bits_equal variances res.Core.Plan.variances)

let prop_infer_with_variances_matches_plan =
  QCheck.Test.make ~count:10
    ~name:"Lia.infer_with_variances: still the seed pipeline"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, variances, y = random_instance seed in
      let y_now = Matrix.row y 0 in
      let res = Core.Lia.infer_with_variances ~r ~variances ~y_now in
      let transmission, loss_rates, _, _ = seed_phase2 ~r ~variances ~y_now in
      vec_bits_equal transmission res.Core.Lia.transmission
      && vec_bits_equal loss_rates res.Core.Lia.loss_rates)

let prop_solve_batch_matches_solve =
  QCheck.Test.make ~count:20
    ~name:"Plan.solve_batch: row l = Plan.solve on snapshot l, jobs in {1,2,4}"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, variances, y = random_instance seed in
      let plan = Core.Plan.make ~r ~variances () in
      let singles =
        Array.init (Matrix.rows y) (fun l -> Core.Plan.solve plan (Matrix.row y l))
      in
      List.for_all
        (fun jobs ->
          let batch = Core.Plan.solve_batch ~jobs plan y in
          Array.length batch = Array.length singles
          && Array.for_all2
               (fun (b : Core.Plan.result) (s : Core.Plan.result) ->
                 vec_bits_equal b.Core.Plan.transmission s.Core.Plan.transmission
                 && vec_bits_equal b.Core.Plan.loss_rates s.Core.Plan.loss_rates)
               batch singles)
        [ 1; 2; 4 ])

let random_dense = Generators.random_dense

let prop_parallel_qr_jobs_invariant =
  QCheck.Test.make ~count:30
    ~name:"Qr.factorize(+pivoted): jobs in {2,4} bit-for-bit = jobs 1"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let a = random_dense seed in
      let f1 = Qr.factorize ~jobs:1 a and p1 = Qr.factorize_pivoted ~jobs:1 a in
      List.for_all
        (fun jobs ->
          let f = Qr.factorize ~jobs a and p = Qr.factorize_pivoted ~jobs a in
          matrix_bits_equal (Qr.r f1) (Qr.r f)
          && matrix_bits_equal (Qr.r p1) (Qr.r p)
          && Qr.pivots p1 = Qr.pivots p)
        [ 2; 4 ])

let prop_least_squares_batch_matches_columns =
  QCheck.Test.make ~count:30
    ~name:"Qr.least_squares_batch: column c = least_squares on column c"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let a = random_dense seed in
      let rng = Rng.create (seed + 77) in
      let nrhs = 1 + (seed mod 13) in
      let b =
        Matrix.init (Matrix.rows a) nrhs (fun _ _ -> Rng.uniform rng (-1.) 1.)
      in
      let f = Qr.factorize a in
      match Qr.least_squares_batch f b with
      | x ->
          let ok = ref (Matrix.rows x = Matrix.cols a && Matrix.cols x = nrhs) in
          for c = 0 to nrhs - 1 do
            if not (vec_bits_equal (Qr.least_squares f (Matrix.col b c)) (Matrix.col x c))
            then ok := false
          done;
          !ok
      | exception Failure _ ->
          (* near-singular draw: the per-column path must refuse too *)
          (match Qr.least_squares f (Matrix.col b 0) with
          | _ -> false
          | exception Failure _ -> true))

(* --- unit tests: rtol plumbing and the unsafe accessors ----------------- *)

let test_solve_r_rtol () =
  (* diag(1, 1e-20): far below the default 1e-13 relative cutoff *)
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1e-20 |] |] in
  let f = Qr.factorize a in
  (match Qr.solve_r f [| 1.; 1e-20 |] with
  | _ -> Alcotest.fail "expected singular failure at the default rtol"
  | exception Failure _ -> ());
  let x = Qr.solve_r ~rtol:1e-25 f [| 1.; 1e-20 |] in
  (* solve_r consumes the already-transformed RHS, so check the residual
     of the triangular system rather than hard-coding a solution *)
  let rf = Qr.r f in
  let resid i c = Float.abs ((Matrix.get rf i 0 *. x.(0)) +. (Matrix.get rf i 1 *. x.(1)) -. c) in
  Alcotest.(check bool) "loosened rtol solves" true
    (resid 0 1. < 1e-9 && resid 1 1e-20 < 1e-9);
  (* the same knob reaches solve and least_squares *)
  (match Qr.solve a [| 1.; 1e-20 |] with
  | _ -> Alcotest.fail "expected singular failure through solve"
  | exception Failure _ -> ());
  let x = Qr.solve ~rtol:1e-25 a [| 1.; 1e-20 |] in
  Alcotest.(check bool) "solve ~rtol" true (Float.abs (x.(0) -. 1.) < 1e-9)

let test_unsafe_accessors_match_safe () =
  let m = Matrix.init 4 7 (fun i j -> float_of_int ((i * 7) + j)) in
  let ok = ref true in
  for i = 0 to 3 do
    for j = 0 to 6 do
      if not (bits_equal (Matrix.get m i j) (Matrix.unsafe_get m i j)) then
        ok := false
    done
  done;
  Alcotest.(check bool) "unsafe_get = get" true !ok;
  Matrix.unsafe_set m 2 3 99.;
  Alcotest.(check (float 0.)) "unsafe_set visible to get" 99. (Matrix.get m 2 3)

let test_cols_index_matches_get () =
  let s =
    Sparse.create ~cols:5 [| [| 0; 2 |]; [| 2; 4 |]; [||]; [| 0; 1; 2; 3; 4 |] |]
  in
  let index = Sparse.cols_index s in
  Alcotest.(check int) "one entry per column" 5 (Array.length index);
  for j = 0 to 4 do
    let expected =
      Array.of_list
        (List.filter (fun i -> Sparse.get s i j) [ 0; 1; 2; 3 ])
    in
    Alcotest.(check (array int))
      (Printf.sprintf "column %d" j)
      expected index.(j)
  done

let unit_tests =
  [
    Alcotest.test_case "qr: solve_r/least_squares/solve honour rtol" `Quick
      test_solve_r_rtol;
    Alcotest.test_case "matrix: unsafe accessors match safe ones" `Quick
      test_unsafe_accessors_match_safe;
    Alcotest.test_case "sparse: cols_index agrees with get" `Quick
      test_cols_index_matches_get;
  ]

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_plan_solve_matches_seed;
      prop_infer_with_variances_matches_plan;
      prop_solve_batch_matches_solve;
      prop_parallel_qr_jobs_invariant;
      prop_least_squares_batch_matches_columns;
    ]

let () =
  Alcotest.run "plan" [ ("serving-path", properties); ("units", unit_tests) ]
