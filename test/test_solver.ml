(* Property tests for the matrix-free iterative solve path: the implicit
   augmented operator must agree with the materialized matrix, CGLS must
   agree with the dense oracles to solver tolerance, the end-to-end
   --solver cgls pipeline must track the dense pipeline on clean and
   faulted input, and everything must be bit-for-bit jobs-invariant. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Qr = Linalg.Qr
module Lsqr = Linalg.Lsqr
module Rng = Nstats.Rng
module Augmented = Core.Augmented
module VE = Core.Variance_estimator

let vec_bits_equal = Generators.vec_bits_equal

let close ?(rtol = 1e-6) ?(atol = 1e-8) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         Float.abs (x -. y)
         <= atol +. (rtol *. Float.max (Float.abs x) (Float.abs y)))
       a b

(* small routing matrix + random dense vectors driven by one seed *)
let routing_of_seed seed =
  let r, _, _ = Generators.random_instance seed in
  r

let random_vec rng n = Array.init n (fun _ -> Rng.uniform rng (-1.) 1.)

(* --- implicit operator vs materialized matrix --------------------------- *)

let prop_matfree_matches_build =
  QCheck.Test.make ~count:25
    ~name:"Augmented.matfree: products match the materialized matrix"
    Generators.seed_arb
    (fun seed ->
      let r = routing_of_seed seed in
      let rng = Rng.create (seed + 17) in
      let a = Augmented.build r in
      let explicit = Lsqr.of_sparse a in
      let implicit = Augmented.matfree r in
      implicit.Lsqr.rows = Sparse.rows a
      && implicit.Lsqr.cols = Sparse.cols a
      && begin
           let v = random_vec rng implicit.Lsqr.cols in
           let w = random_vec rng implicit.Lsqr.rows in
           close ~rtol:1e-12 ~atol:1e-12
             (explicit.Lsqr.apply v) (implicit.Lsqr.apply v)
           && close ~rtol:1e-12 ~atol:1e-12
                (explicit.Lsqr.apply_t w) (implicit.Lsqr.apply_t w)
         end)

let prop_matfree_jobs_invariant =
  QCheck.Test.make ~count:15
    ~name:"Augmented.matfree: bit-for-bit identical for jobs in {1,2,4}"
    Generators.seed_arb
    (fun seed ->
      let r = routing_of_seed seed in
      let rng = Rng.create (seed + 31) in
      let op1 = Augmented.matfree ~jobs:1 r in
      let v = random_vec rng op1.Lsqr.cols in
      let w = random_vec rng op1.Lsqr.rows in
      let y1 = op1.Lsqr.apply v and x1 = op1.Lsqr.apply_t w in
      List.for_all
        (fun jobs ->
          let op = Augmented.matfree ~jobs r in
          vec_bits_equal y1 (op.Lsqr.apply v)
          && vec_bits_equal x1 (op.Lsqr.apply_t w))
        [ 2; 4 ])

let prop_mask_is_row_deletion =
  QCheck.Test.make ~count:15
    ~name:"Augmented.matfree mask: = zeroing the dead rows, bit-for-bit"
    Generators.seed_arb
    (fun seed ->
      let r = routing_of_seed seed in
      let np = Sparse.rows r in
      let nrows = Augmented.row_count ~np in
      let rng = Rng.create (seed + 43) in
      let mask =
        Bytes.init nrows (fun _ -> if Rng.bool rng 0.7 then '\001' else '\000')
      in
      let plain = Augmented.matfree r in
      let masked = Augmented.matfree ~mask r in
      let v = random_vec rng plain.Lsqr.cols in
      let w = random_vec rng nrows in
      (* apply: a dead row's entry is 0, every live row is untouched *)
      let y = plain.Lsqr.apply v in
      Array.iteri (fun k _ -> if Bytes.get mask k = '\000' then y.(k) <- 0.) y;
      (* apply_t: dead rows contribute nothing, so zeroing their weights
         in the unmasked operator runs the same float ops *)
      let w0 = Array.copy w in
      Array.iteri (fun k _ -> if Bytes.get mask k = '\000' then w0.(k) <- 0.) w0;
      vec_bits_equal y (masked.Lsqr.apply v)
      && vec_bits_equal (plain.Lsqr.apply_t w0) (masked.Lsqr.apply_t w))

let prop_column_counts_exact =
  QCheck.Test.make ~count:15
    ~name:"Augmented.matfree_column_counts: exact diag(AtA) of the live rows"
    Generators.seed_arb
    (fun seed ->
      let r = routing_of_seed seed in
      let a = Augmented.build r in
      let nc = Sparse.cols a in
      let expected = Array.make nc 0. in
      for k = 0 to Sparse.rows a - 1 do
        Array.iter (fun j -> expected.(j) <- expected.(j) +. 1.) (Sparse.row a k)
      done;
      vec_bits_equal expected (Augmented.matfree_column_counts r))

(* --- hierarchical decomposition: AS partition + block preconditioner ---- *)

(* a transit-stub instance carries real AS labels, so the partition has
   several intra-AS groups plus a border group *)
let ts_instance seed =
  let rng = Rng.create seed in
  let hosts = 5 + (seed mod 5) in
  let tb = Topology.Transit_stub.generate rng ~hosts () in
  let red = Topology.Testbed.routing tb in
  (tb, red)

let ts_campaign seed =
  let tb, red = ts_instance seed in
  let r = red.Topology.Routing.matrix in
  let rng = Rng.create (seed + 101) in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:12 in
  let y_learn, _ = Netsim.Simulator.split_learning run ~learning:11 in
  (tb, red, r, y_learn)

let prop_permuted_operator_matches =
  QCheck.Test.make ~count:20
    ~name:
      "Sparse.permute_cols: the AS-permuted augmented operator is the \
       original up to the column scatter (1e-12)"
    Generators.seed_arb
    (fun seed ->
      let tb, red = ts_instance seed in
      let r = red.Topology.Routing.matrix in
      let part = Topology.Partition.by_as tb.Topology.Testbed.graph red in
      let order = Topology.Partition.order part in
      let rp = Sparse.permute_cols r order in
      let op = Augmented.matfree r in
      let opp = Augmented.matfree rp in
      let rng = Rng.create (seed + 53) in
      let v = random_vec rng (Sparse.cols r) in
      let w = random_vec rng op.Lsqr.rows in
      (* column k of the permuted operator is column order.(k) of the
         original, so gathering v gives the same row products *)
      let vp = Array.map (fun j -> v.(j)) order in
      let sp = opp.Lsqr.apply_t w in
      let s_scattered = Array.make (Sparse.cols r) 0. in
      Array.iteri (fun k j -> s_scattered.(j) <- sp.(k)) order;
      close ~rtol:1e-12 ~atol:1e-12 (op.Lsqr.apply v) (opp.Lsqr.apply vp)
      && close ~rtol:1e-12 ~atol:1e-12 (op.Lsqr.apply_t w) s_scattered)

(* dense Gram block of a column subset, for driving Precond.block_jacobi
   from a dense test matrix *)
let gram_block_dense m idx =
  let k = Array.length idx in
  Matrix.init k k (fun a b ->
      let s = ref 0. in
      for i = 0 to Matrix.rows m - 1 do
        s := !s +. (Matrix.get m i idx.(a) *. Matrix.get m i idx.(b))
      done;
      !s)

(* split 0..n-1 into contiguous groups with seeded cut points *)
let random_groups rng n =
  let rec cuts acc lo =
    if lo >= n then List.rev acc
    else begin
      let len = 1 + Rng.int rng (max 1 (n / 3)) in
      let hi = min n (lo + len) in
      cuts (Array.init (hi - lo) (fun k -> lo + k) :: acc) hi
    end
  in
  Array.of_list (cuts [] 0)

let prop_precond_cgls_matches_qr =
  QCheck.Test.make ~count:20
    ~name:
      "Lsqr.cgls ?precond: jacobi and block-jacobi leave the minimizer on \
       the dense QR solution"
    Generators.seed_arb
    (fun seed ->
      let m = Generators.random_dense seed in
      let rng = Rng.create (seed + 59) in
      let b = random_vec rng (Matrix.rows m) in
      let exact = Qr.solve m b in
      let op = Lsqr.of_dense m in
      let n = op.Lsqr.cols in
      let counts =
        Array.init n (fun j ->
            let s = ref 0. in
            for i = 0 to Matrix.rows m - 1 do
              s := !s +. (Matrix.get m i j ** 2.)
            done;
            !s)
      in
      let groups = random_groups rng n in
      let blocks = Array.map (fun idx -> (idx, gram_block_dense m idx)) groups in
      List.for_all
        (fun pc ->
          let x, stats = Lsqr.cgls ~tol:1e-13 ~precond:pc op b in
          stats.Linalg.Conjugate_gradient.converged && close ~rtol:1e-6 exact x)
        [
          Linalg.Precond.jacobi counts;
          Linalg.Precond.block_jacobi ~cols:n blocks;
        ])

let prop_block_jacobi_jobs_invariant =
  QCheck.Test.make ~count:8
    ~name:
      "Pc_block_jacobi: estimates bit-identical for jobs in {1,2,4} \
       (transit-stub AS partition)"
    Generators.seed_arb
    (fun seed ->
      let tb, red, r, y_learn = ts_campaign seed in
      let part = Topology.Partition.by_as tb.Topology.Testbed.graph red in
      let groups = Topology.Partition.group_cols part in
      let options =
        {
          VE.default_matfree_options with
          VE.mf_precond = VE.Pc_block_jacobi groups;
        }
      in
      let v1, _, _ =
        VE.estimate_matfree_ess ~options ~jobs:1 ~r ~y:y_learn ()
      in
      List.for_all
        (fun jobs ->
          let v, _, _ =
            VE.estimate_matfree_ess ~options ~jobs ~r ~y:y_learn ()
          in
          vec_bits_equal v1 v)
        [ 2; 4 ])

(* --- tiling covers the triangle exactly once ---------------------------- *)

let test_tile_bounds_cover_triangle () =
  List.iter
    (fun (tile, np) ->
      let seen = Hashtbl.create 64 in
      let ntiles = Parallel.Chunk.tile_count ~tile ~np in
      for t = 0 to ntiles - 1 do
        let (ilo, ihi), (jlo, jhi) = Parallel.Chunk.tile_bounds ~tile ~np t in
        for i = ilo to ihi - 1 do
          for j = max i jlo to jhi - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "pair (%d,%d) seen once (tile=%d np=%d)" i j tile np)
              false
              (Hashtbl.mem seen (i, j));
            Hashtbl.add seen (i, j) ()
          done
        done
      done;
      Alcotest.(check int)
        (Printf.sprintf "pair count (tile=%d np=%d)" tile np)
        (np * (np + 1) / 2)
        (Hashtbl.length seen))
    [ (1, 1); (1, 7); (3, 7); (3, 12); (5, 5); (7, 3); (256, 40); (4, 0) ]

(* --- CGLS vs dense QR ---------------------------------------------------- *)

let prop_cgls_matches_qr =
  QCheck.Test.make ~count:25
    ~name:"Lsqr.cgls: least-squares solution matches dense QR"
    Generators.seed_arb
    (fun seed ->
      let m = Generators.random_dense seed in
      let rng = Rng.create (seed + 7) in
      let b = random_vec rng (Matrix.rows m) in
      let exact = Qr.solve m b in
      let x, stats = Lsqr.cgls ~tol:1e-13 (Lsqr.of_dense m) b in
      stats.Linalg.Conjugate_gradient.converged && close ~rtol:1e-6 exact x)

let prop_scaled_columns_unchanged_minimizer =
  QCheck.Test.make ~count:15
    ~name:"Lsqr.scaled_columns: preconditioning leaves the minimizer alone"
    Generators.seed_arb
    (fun seed ->
      let m = Generators.random_dense seed in
      let rng = Rng.create (seed + 11) in
      let b = random_vec rng (Matrix.rows m) in
      let op = Lsqr.of_dense m in
      let w = Array.init op.Lsqr.cols (fun _ -> Rng.uniform rng 0.3 3.) in
      let plain, _ = Lsqr.cgls ~tol:1e-13 op b in
      let z, _ = Lsqr.cgls ~tol:1e-13 (Lsqr.scaled_columns op w) b in
      close ~rtol:1e-6 plain (Array.mapi (fun i zi -> w.(i) *. zi) z))

(* --- matrix-free estimator vs streaming oracle --------------------------- *)

(* Tight parity needs a unique minimizer: with every pair row kept, the
   full augmented matrix has full column rank (Theorem 1), so streaming
   (normal equations) and CGLS converge to the same point. The
   drop-negative rule can cost column rank, in which case the two solvers
   return different — equally valid — pseudo-solutions; that regime is
   covered by the weaker property below. *)
let prop_matfree_estimator_matches_streaming =
  QCheck.Test.make ~count:15
    ~name:
      "estimate_matfree_ess: variances and ess match the streaming path \
       (full-rank regime)"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, _ = Generators.random_tree_trial seed in
      let v_ref, ess_ref =
        VE.estimate_streaming_ess ~drop_negative:false ~clamp:false ~r
          ~y:y_learn ()
      in
      let options =
        {
          VE.default_matfree_options with
          VE.tol = 1e-14;
          mf_drop_negative = false;
          mf_clamp = false;
        }
      in
      let v, ess, stats = VE.estimate_matfree_ess ~options ~r ~y:y_learn () in
      stats.Linalg.Conjugate_gradient.converged
      && ess = ess_ref
      && close ~rtol:1e-6 v_ref v)

let prop_matfree_estimator_default_options_sane =
  QCheck.Test.make ~count:15
    ~name:
      "estimate_matfree_ess: default options keep ess accounting and \
       finiteness of the streaming path"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, _ = Generators.random_tree_trial seed in
      let v_ref, ess_ref = VE.estimate_streaming_ess ~r ~y:y_learn () in
      let v, ess, _ = VE.estimate_matfree_ess ~r ~y:y_learn () in
      ess = ess_ref
      && Array.length v = Array.length v_ref
      && Array.for_all (fun x -> Float.is_finite x && x >= 0.) v)

let prop_matfree_estimator_jobs_invariant =
  QCheck.Test.make ~count:10
    ~name:"estimate_matfree_ess: bit-for-bit identical for jobs in {1,2,4}"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, _ = Generators.random_tree_trial seed in
      let v1, ess1, _ = VE.estimate_matfree_ess ~jobs:1 ~r ~y:y_learn () in
      List.for_all
        (fun jobs ->
          let v, ess, _ = VE.estimate_matfree_ess ~jobs ~r ~y:y_learn () in
          vec_bits_equal v1 v && ess = ess1)
        [ 2; 4 ])

let prop_full_sample_is_identity =
  QCheck.Test.make ~count:10
    ~name:"sample = 1.0: bit-for-bit the unsampled matrix-free estimate"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, _ = Generators.random_tree_trial seed in
      let np = Sparse.rows r in
      Bytes.for_all
        (fun c -> c = '\001')
        (Augmented.sample_mask ~np ~fraction:1.0 ~seed)
      && begin
           let options =
             { VE.default_matfree_options with VE.sample = Some (1.0, seed) }
           in
           let v_full, ess_full, _ = VE.estimate_matfree_ess ~r ~y:y_learn () in
           let v, ess, _ = VE.estimate_matfree_ess ~options ~r ~y:y_learn () in
           vec_bits_equal v_full v && ess = ess_full
         end)

(* --- end-to-end: Lia with --solver cgls vs dense ------------------------- *)

let prop_infer_cgls_matches_dense =
  QCheck.Test.make ~count:12
    ~name:
      "Lia.infer solver:cgls: loss rates track the dense pipeline (full-rank \
       regime)"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, target = Generators.random_tree_trial seed in
      let estimator =
        { VE.default_options with VE.drop_negative = false; clamp = false }
      in
      let solver =
        Core.Lia.Cgls { tol = 1e-14; max_iter = None; sample = None; precond = Core.Variance_estimator.Pc_jacobi }
      in
      let dense =
        Core.Lia.infer ~estimator ~r ~y_learn ~y_now:target.Netsim.Snapshot.y ()
      in
      let cgls =
        Core.Lia.infer ~estimator ~solver ~r ~y_learn
          ~y_now:target.Netsim.Snapshot.y ()
      in
      (* kept is chosen greedily in estimated-variance order, so
         solver-tolerance differences can elect a different (equally
         valid) basis on near-ties — the estimates are what must agree *)
      close ~rtol:1e-6 dense.Core.Lia.variances cgls.Core.Lia.variances
      && close ~rtol:1e-6 dense.Core.Lia.loss_rates cgls.Core.Lia.loss_rates)

let prop_checked_cgls_verdict_parity =
  QCheck.Test.make ~count:12
    ~name:
      "Lia.infer_checked solver:cgls: same verdict as dense on faulted input, \
       jobs in {1,2,4}"
    Generators.seed_arb
    (fun seed ->
      let r, y_learn, target = Generators.random_tree_trial seed in
      let spec = Generators.random_fault_spec seed in
      let y_learn, _ = Netsim.Faults.apply spec y_learn in
      let dense = Core.Lia.infer_checked ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
      let check jobs =
        let c =
          Core.Lia.infer_checked ~solver:Core.Lia.default_cgls ~jobs ~r ~y_learn
            ~y_now:target.Netsim.Snapshot.y ()
        in
        Core.Lia.health_label c.Core.Lia.health
        = Core.Lia.health_label dense.Core.Lia.health
        && Option.is_some c.Core.Lia.result
           = Option.is_some dense.Core.Lia.result
        && (match c.Core.Lia.result with
           | None -> true
           | Some res ->
               Array.for_all Float.is_finite res.Core.Lia.loss_rates
               && Array.for_all Float.is_finite res.Core.Lia.variances)
      in
      List.for_all check [ 1; 2; 4 ])

(* --- Plan Cgls backend --------------------------------------------------- *)

let prop_plan_cgls_matches_dense_qr =
  QCheck.Test.make ~count:15
    ~name:"Plan backend Cgls: solves track Dense_qr to solver tolerance"
    Generators.seed_arb
    (fun seed ->
      let r, variances, y = Generators.random_instance seed in
      let y_now = Matrix.row y 0 in
      let dense = Core.Plan.solve (Core.Plan.make ~r ~variances ()) y_now in
      let backend = Core.Plan.Cgls { tol = 1e-12; max_iter = None; precond = Core.Variance_estimator.Pc_none } in
      let plan = Core.Plan.make ~backend ~r ~variances () in
      let it = Core.Plan.solve plan y_now in
      Core.Plan.backend plan = backend
      && close ~rtol:1e-6 dense.Core.Plan.loss_rates it.Core.Plan.loss_rates
      && dense.Core.Plan.kept = it.Core.Plan.kept)

let prop_plan_cgls_batch_matches_solve =
  QCheck.Test.make ~count:12
    ~name:"Plan backend Cgls: solve_batch row = solve, bit-for-bit, jobs in {1,2,4}"
    Generators.seed_arb
    (fun seed ->
      let r, variances, y = Generators.random_instance seed in
      let backend = Core.Plan.Cgls { tol = 1e-12; max_iter = None; precond = Core.Variance_estimator.Pc_none } in
      let plan = Core.Plan.make ~backend ~r ~variances () in
      let singles =
        Array.init (Matrix.rows y) (fun l -> Core.Plan.solve plan (Matrix.row y l))
      in
      List.for_all
        (fun jobs ->
          let batch = Core.Plan.solve_batch ~jobs plan y in
          Array.length batch = Array.length singles
          && Array.for_all2
               (fun (b : Core.Plan.result) (s : Core.Plan.result) ->
                 vec_bits_equal b.Core.Plan.loss_rates s.Core.Plan.loss_rates
                 && vec_bits_equal b.Core.Plan.transmission
                      s.Core.Plan.transmission)
               batch singles)
        [ 1; 2; 4 ])

(* --- nonconvergence reporting -------------------------------------------- *)

let test_cgls_nonconvergence_reported () =
  let m = Generators.random_dense 97 in
  let rng = Rng.create 97 in
  let b = random_vec rng (Matrix.rows m) in
  let _, stats = Lsqr.cgls ~tol:1e-15 ~max_iter:1 (Lsqr.of_dense m) b in
  Alcotest.(check bool) "starved solve did not converge" false
    stats.Linalg.Conjugate_gradient.converged;
  Alcotest.(check int) "one iteration ran" 1
    stats.Linalg.Conjugate_gradient.iterations;
  Alcotest.(check bool) "relative residual is positive" true
    (stats.Linalg.Conjugate_gradient.relative_residual > 0.)

(* the nan pin: a zero-norm rhs (or one annihilated by the transpose)
   historically produced relative_residual = 0/0 = nan; the guard pins
   the whole stats record to a clean converged zero *)
let test_cgls_zero_rhs () =
  let r = routing_of_seed 5 in
  let op = Lsqr.of_sparse r in
  let b = Vector.zeros op.Lsqr.rows in
  let x, stats = Lsqr.cgls op b in
  Alcotest.(check bool) "solution is exactly zero" true
    (Array.for_all (fun v -> v = 0.) x);
  Alcotest.(check int) "no iterations spent" 0
    stats.Linalg.Conjugate_gradient.iterations;
  Alcotest.(check bool) "reported converged" true
    stats.Linalg.Conjugate_gradient.converged;
  Alcotest.(check (float 0.)) "relative residual pinned to 0, not nan" 0.
    stats.Linalg.Conjugate_gradient.relative_residual;
  (* same guard on the warm-started path: x0 must come back unchanged *)
  let x0 = Array.init op.Lsqr.cols (fun i -> float_of_int i) in
  let x', stats' = Lsqr.cgls ~x0 op b in
  Alcotest.(check bool) "warm start over zero rhs returns zeros" true
    (Array.for_all (fun v -> v = 0.) x');
  Alcotest.(check bool) "warm-start relative residual is finite" false
    (Float.is_nan stats'.Linalg.Conjugate_gradient.relative_residual)

let test_sample_mask_fraction () =
  let np = 60 in
  let n = Augmented.row_count ~np in
  let count mask =
    let c = ref 0 in
    Bytes.iter (fun b -> if b = '\001' then incr c) mask;
    !c
  in
  let half = Augmented.sample_mask ~np ~fraction:0.5 ~seed:3 in
  Alcotest.(check bool) "same seed, same mask" true
    (Bytes.equal half (Augmented.sample_mask ~np ~fraction:0.5 ~seed:3));
  Alcotest.(check bool) "fraction 0.5 keeps roughly half" true
    (abs ((2 * count half) - n) < n / 4);
  Alcotest.(check int) "fraction 0 keeps nothing" 0
    (count (Augmented.sample_mask ~np ~fraction:0. ~seed:3))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matfree_matches_build;
      prop_matfree_jobs_invariant;
      prop_mask_is_row_deletion;
      prop_column_counts_exact;
      prop_cgls_matches_qr;
      prop_scaled_columns_unchanged_minimizer;
      prop_matfree_estimator_matches_streaming;
      prop_matfree_estimator_default_options_sane;
      prop_matfree_estimator_jobs_invariant;
      prop_full_sample_is_identity;
      prop_infer_cgls_matches_dense;
      prop_checked_cgls_verdict_parity;
      prop_plan_cgls_matches_dense_qr;
      prop_plan_cgls_batch_matches_solve;
      prop_permuted_operator_matches;
      prop_precond_cgls_matches_qr;
      prop_block_jacobi_jobs_invariant;
    ]

let unit_tests =
  [
    Alcotest.test_case "tile_bounds covers the pair triangle exactly once"
      `Quick test_tile_bounds_cover_triangle;
    Alcotest.test_case "cgls reports nonconvergence" `Quick
      test_cgls_nonconvergence_reported;
    Alcotest.test_case "cgls zero rhs: converged, residual 0, never nan" `Quick
      test_cgls_zero_rhs;
    Alcotest.test_case "sample_mask is seeded and honours the fraction" `Quick
      test_sample_mask_fraction;
  ]

let () =
  Alcotest.run "solver" [ ("matrix-free", properties); ("units", unit_tests) ]
