The full CLI workflow is deterministic given seeds: generate a testbed,
simulate a campaign, run LIA, and audit the deployment.

  $ lia_cli gen --kind tree --nodes 60 --seed 4 -o run.tb
  wrote run.tb: graph: 60 nodes (52 hosts), 59 edges, 1 beacons, 51 destinations; 51 paths x 59 virtual links

  $ lia_cli sim --testbed run.tb --snapshots 12 --seed 5 -o run.meas
  wrote run.meas: 12 snapshots x 51 paths

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4
  learned variances from 11 snapshots
  health: clean
  kept 29 columns, eliminated 30; 8 links above tl = 0.002
  link   loss rate   variance    verdict    edges
  24     0.15420     5.702e-03   CONGESTED  24 (intra-AS)
  2      0.13100     2.599e-03   CONGESTED  2 (intra-AS)
  7      0.12842     2.191e-03   CONGESTED  7 (intra-AS)
  35     0.12800     1.669e-03   CONGESTED  35 (intra-AS)

The covariance and normal-equation kernels run on a domain pool sized by
--jobs (default: the machine's recommended domain count, capped at 8).
Results are bit-for-bit identical for every --jobs value, so the parallel
run reproduces the sequential report exactly.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 2
  learned variances from 11 snapshots
  health: clean
  kept 29 columns, eliminated 30; 8 links above tl = 0.002
  link   loss rate   variance    verdict    edges
  24     0.15420     5.702e-03   CONGESTED  24 (intra-AS)
  2      0.13100     2.599e-03   CONGESTED  2 (intra-AS)
  7      0.12842     2.191e-03   CONGESTED  7 (intra-AS)
  35     0.12800     1.669e-03   CONGESTED  35 (intra-AS)

  $ lia_cli infer --testbed run.tb --measurements run.meas --jobs 0
  lia_cli: --jobs must be at least 1
  [2]

Serving mode: --snapshots diagnoses a whole measurement file through one
inference plan (variances learnt once, routing matrix rank-reduced and
QR-factored once, then every snapshot solved by back-substitution).

  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas
  learned variances from 12 snapshots
  plan: kept 30 columns, eliminated 29; serving 12 snapshots
  snapshot  congested  max loss    lossiest link
  0         7          0.19360     7
  1         8          0.18193     24
  2         9          0.17849     30
  3         10         0.19809     30
  4         12         0.17100     35
  5         9          0.18353     30
  6         7          0.21500     18
  7         9          0.17000     35
  8         7          0.16411     2
  9         8          0.19111     2
  10        8          0.20434     24
  11        8          0.15420     24

The batched solve parallelizes over right-hand sides but stays
bit-for-bit identical for every --jobs value.

  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas --jobs 2
  learned variances from 12 snapshots
  plan: kept 30 columns, eliminated 29; serving 12 snapshots
  snapshot  congested  max loss    lossiest link
  0         7          0.19360     7
  1         8          0.18193     24
  2         9          0.17849     30
  3         10         0.19809     30
  4         12         0.17100     35
  5         9          0.18353     30
  6         7          0.21500     18
  7         9          0.17000     35
  8         7          0.16411     2
  9         8          0.19111     2
  10        8          0.20434     24
  11        8          0.15420     24

Telemetry: --metrics writes a Prometheus text snapshot on exit, --trace
streams Chrome trace events (load the file in chrome://tracing or
Perfetto), and --log-level enables structured progress logs on stderr.
The report itself is unchanged by any of the three flags.

  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas > plain.txt
  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas \
  >   --metrics m.txt --trace t.jsonl --log-level info > report.txt 2> err.log
  $ diff plain.txt report.txt
  $ cat err.log
  [info ] loaded testbed file=run.tb paths=51 links=59
  [info ] learned variances snapshots=12
  [info ] built inference plan rank=30 deleted=29
  [info ] served snapshot batch snapshots=12

The dump covers the pool, the phase-1 kernels, and the serving plan;
gauges like the plan rank are exact, so they appear verbatim.

  $ grep -c "^pool_queue_wait_seconds_count" m.txt
  1
  $ grep -c "^lia_phase1_kernel_seconds_count" m.txt
  1
  $ grep -c "^plan_solve_snapshot_seconds_count" m.txt
  1
  $ grep "^plan_rank" m.txt
  plan_rank 30
  $ grep "^lia_pairs_total" m.txt
  lia_pairs_total 1326

The trace is a Chrome trace-event array: an opening bracket, then one
complete event per line, among them the plan's batch-solve span.

  $ sed -n 1p t.jsonl
  [
  $ grep -c "\"name\": \"plan.solve_batch\"" t.jsonl
  1

A ragged serving file is refused with the offending line and the width
the header promised.

  $ { head -3 run.meas; sed -n 4p run.meas | cut -d' ' -f1-50; sed -n 5,13p run.meas; } > bad.meas
  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots bad.meas
  lia_cli: bad.meas:4: expected 51 columns, got 50
  [2]

  $ lia_cli check --testbed run.tb
  assumptions on 51 measured paths:
    every link covered by a path                  ok
    no route fluttering (T.2)                     ok
    single path per beacon/destination pair       ok
  reduced routing matrix: 51 paths x 59 virtual links
  link variances: IDENTIFIABLE (Theorem 1 premise holds)
  probe schedule (40B/10ms trains, 100 KB/s cap): 3 rounds, 30 s per snapshot sweep

Validation needs at least three snapshots and reports eq. (11) consistency.

  $ lia_cli validate --testbed run.tb --measurements run.meas --epsilon 0.01 | cut -d'(' -f2
  88.5%) at epsilon 0.01

Malformed inputs fail cleanly.

  $ lia_cli infer --testbed run.tb --measurements run.tb
  lia_cli: run.tb:1: missing "netloss-measurements 1 <snapshots> <paths>" header
  [2]
