(* Tests for the EM/MLE first-moment baseline, the bootstrap confidence
   intervals, and cross-checks between the variance estimation paths. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Rng = Nstats.Rng
module Em = Core.Em_tomography
module VE = Core.Variance_estimator
module Ci = Core.Variance_ci

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* --- EM / MLE --------------------------------------------------------- *)

let test_em_single_link_exact () =
  (* one path over one link: the MLE is the empirical rate k/S *)
  let r = Sparse.create ~cols:1 [| [| 0 |] |] in
  let result = Em.estimate r ~delivered:[| 900 |] ~probes:1000 in
  close ~tol:1e-3 "MLE = k/S" 0.9 result.Em.transmission.(0)

let test_em_disjoint_links_exact () =
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let result = Em.estimate r ~delivered:[| 500; 999 |] ~probes:1000 in
  close ~tol:1e-3 "link 0" 0.5 result.Em.transmission.(0);
  close ~tol:1e-3 "link 1" 0.999 result.Em.transmission.(1)

let test_em_chain_product_right () =
  (* two links in series observed by one path: only the product is
     determined; the MLE must reproduce it even though the split is
     arbitrary *)
  let r = Sparse.create ~cols:2 [| [| 0; 1 |] |] in
  let result = Em.estimate r ~delivered:[| 810 |] ~probes:1000 in
  close ~tol:1e-3 "product = 0.81"
    0.81
    (result.Em.transmission.(0) *. result.Em.transmission.(1))

let test_em_likelihood_increases () =
  let rng = Rng.create 3 in
  let tb = Topology.Tree_gen.generate rng ~nodes:60 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let statuses = Netsim.Snapshot.draw_statuses rng config ~links:(Sparse.cols r) in
  let snap = Netsim.Snapshot.generate rng config ~congested:statuses r in
  let delivered = snap.Netsim.Snapshot.received in
  let start = Array.make (Sparse.cols r) 0.99 in
  let ll0 = Em.log_likelihood r ~delivered ~probes:1000 start in
  let result = Em.estimate r ~delivered ~probes:1000 in
  Alcotest.(check bool) "likelihood improved" true (result.Em.log_likelihood >= ll0);
  Array.iter
    (fun t -> Alcotest.(check bool) "rate in (0,1)" true (t > 0. && t < 1.))
    result.Em.transmission

let test_em_underdetermined_vs_lia () =
  (* the headline comparison: on a tree campaign, LIA's per-link errors
     beat the first-moment MLE's (which cannot place the loss within a
     path) *)
  let rng = Rng.create 7 in
  let tb = Topology.Tree_gen.generate rng ~nodes:150 ~max_branching:6 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:31 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:30 in
  let lia = Core.Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  let em =
    Em.estimate r ~delivered:target.Netsim.Snapshot.received ~probes:1000
  in
  let em_loss = Array.map (fun t -> 1. -. t) em.Em.transmission in
  let err v =
    Nstats.Descriptive.mean
      (Core.Metrics.absolute_errors ~actual:target.Netsim.Snapshot.realized
         ~inferred:v)
  in
  Alcotest.(check bool) "LIA at least as accurate" true
    (err lia.Core.Lia.loss_rates <= err em_loss +. 1e-9)

let test_em_validation () =
  Alcotest.check_raises "bad delivery count"
    (Invalid_argument "Em_tomography.estimate: delivery count out of range")
    (fun () ->
      ignore
        (Em.estimate
           (Sparse.create ~cols:1 [| [| 0 |] |])
           ~delivered:[| 2000 |] ~probes:1000))

(* --- Variance estimation cross-checks ---------------------------------- *)

let test_streaming_equals_explicit_a () =
  let rng = Rng.create 11 in
  let tb = Topology.Tree_gen.generate rng ~nodes:80 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:25 in
  let y = run.Netsim.Simulator.y in
  let streaming = VE.estimate_streaming ~r ~y () in
  (* explicit A + normal equations, same drop-negative convention *)
  let a = Core.Augmented.build r in
  let sigma = Core.Covariance.sigma_star y in
  let explicit = VE.solve ~a ~sigma_star:sigma () in
  Alcotest.(check bool) "same solution" true
    (Vector.approx_equal ~tol:1e-6 streaming explicit)

(* --- Bootstrap confidence intervals ------------------------------------- *)

let ci_setup () =
  let rng = Rng.create 13 in
  let tb = Topology.Tree_gen.generate rng ~nodes:80 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:40 in
  (rng, r, run.Netsim.Simulator.y, run.Netsim.Simulator.snapshots.(0))

let test_ci_contains_estimate () =
  let rng, r, y, _ = ci_setup () in
  let intervals = Ci.bootstrap ~replicates:30 rng ~r ~y in
  Array.iter
    (fun iv ->
      Alcotest.(check bool) "lo <= hi" true (iv.Ci.lo <= iv.Ci.hi);
      Alcotest.(check bool) "bounds sane" true (iv.Ci.lo >= 0.))
    intervals

let test_ci_congested_links_nonzero () =
  let rng, r, y, snap0 = ci_setup () in
  let intervals = Ci.bootstrap ~replicates:30 rng ~r ~y in
  (* statically congested links should have clearly positive variance *)
  Array.iteri
    (fun k c ->
      if c then
        Alcotest.(check bool) "congested lower bound positive" true
          (intervals.(k).Ci.lo > 0.))
    snap0.Netsim.Snapshot.congested

let test_ci_stable_ranking () =
  (* controlled case: three single-link paths, one link far noisier than
     the rest — its top-1 ranking must be provably separated, while a
     top-2 cut through the two near-identical quiet links must not be *)
  let rng = Rng.create 17 in
  let r = Sparse.create ~cols:3 [| [| 0 |]; [| 1 |]; [| 2 |] |] in
  let m = 60 in
  let y =
    Matrix.init m 3 (fun _ i ->
        let sd = if i = 0 then 1.0 else 0.01 in
        sd *. Rng.gaussian rng)
  in
  let intervals = Ci.bootstrap ~replicates:60 rng ~r ~y in
  Alcotest.(check bool) "loud link separated" true
    (Ci.stable_ranking intervals ~top:1);
  Alcotest.(check bool) "cut through twins not separated" false
    (Ci.stable_ranking intervals ~top:2)

let test_ci_validation () =
  let rng, r, y, _ = ci_setup () in
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Variance_ci.bootstrap: confidence out of (0,1)")
    (fun () -> ignore (Ci.bootstrap ~confidence:2. rng ~r ~y))

(* --- golden cross-estimator consistency -------------------------------- *)

module Estimator = Core.Estimator
module Measurement = Core.Measurement

(* One clean, identifiable tree campaign shared by the golden checks:
   every registry backend must be capable on it (variances are supplied
   so even [plan] runs) and must recover the final snapshot's realized
   losses within its documented golden bound. *)
let golden_campaign () =
  let rng = Rng.create 21 in
  let tb = Topology.Tree_gen.generate rng ~nodes:60 ~max_branching:4 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:41 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:40 in
  let lia = Core.Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  let input =
    Measurement.make ~routing:red ~variances:lia.Core.Lia.variances ~r ~y_learn
      ~y_now:target.Netsim.Snapshot.y ()
  in
  (input, target)

let test_golden_registry () =
  let input, target = golden_campaign () in
  let threshold = 0.01 in
  let actual_rates = target.Netsim.Snapshot.realized in
  let actual = Array.map (fun q -> q > threshold) actual_rates in
  List.iter
    (fun (e : Estimator.t) ->
      (match Estimator.check e input with
      | Ok () -> ()
      | Error reason ->
          Alcotest.failf "%s not capable on the golden tree: %s"
            e.Estimator.name reason);
      match e.Estimator.estimate ~threshold input with
      | Error reason -> Alcotest.failf "%s skipped: %s" e.Estimator.name reason
      | Ok out -> (
          Alcotest.(check string)
            (e.Estimator.name ^ " health") "clean" out.Estimator.health;
          match e.Estimator.golden with
          | Estimator.Abs_err tol -> (
              match out.Estimator.loss_rates with
              | None ->
                  Alcotest.failf "%s: rate backend returned no rates"
                    e.Estimator.name
              | Some rates ->
                  let mean =
                    Nstats.Descriptive.mean
                      (Core.Metrics.absolute_errors ~actual:actual_rates
                         ~inferred:rates)
                  in
                  if mean > tol then
                    Alcotest.failf "%s mean abs error %.4f exceeds %.4f"
                      e.Estimator.name mean tol)
          | Estimator.Detection { min_dr; max_fpr } -> (
              match out.Estimator.verdicts with
              | None ->
                  Alcotest.failf "%s: no verdicts returned" e.Estimator.name
              | Some verdicts ->
                  let loc = Core.Metrics.location ~actual ~inferred:verdicts in
                  if loc.Core.Metrics.dr < min_dr then
                    Alcotest.failf "%s detection rate %.2f below %.2f"
                      e.Estimator.name loc.Core.Metrics.dr min_dr;
                  if loc.Core.Metrics.fpr > max_fpr then
                    Alcotest.failf "%s false-positive rate %.2f above %.2f"
                      e.Estimator.name loc.Core.Metrics.fpr max_fpr)))
    Estimator.all

let test_registry_names () =
  Alcotest.(check (list string))
    "registry order"
    [
      "minc";
      "em";
      "mils";
      "scfs";
      "clink";
      "fourier";
      "plan";
      "lia-dense";
      "lia-cgls";
    ]
    Estimator.names;
  Alcotest.(check bool) "find hit" true (Estimator.find "lia-dense" <> None);
  Alcotest.(check bool) "find miss" true (Estimator.find "bogus" = None)

(* --- adapter bit-identity (qcheck) -------------------------------------- *)

let adapter name =
  match Estimator.find name with
  | Some e -> e
  | None -> Alcotest.failf "estimator %s missing from registry" name

let adapter_rates name input =
  match (adapter name).Estimator.estimate ~threshold:0.01 input with
  | Ok { Estimator.loss_rates = Some rates; _ } -> rates
  | Ok _ -> Alcotest.failf "%s returned no rates" name
  | Error reason -> Alcotest.failf "%s skipped: %s" name reason

let trial_input seed =
  let r, y_learn, target = Generators.random_tree_trial seed in
  Measurement.make ~r ~y_learn ~y_now:target.Netsim.Snapshot.y ()

let prop_em_wrapper_bit_identical =
  QCheck.Test.make ~count:12 ~name:"estimate_input = estimate (bit-for-bit)"
    Generators.seed_arb (fun seed ->
      let input = trial_input seed in
      let via_input = Em.estimate_input input in
      let direct =
        Em.estimate input.Measurement.r
          ~delivered:(Measurement.delivered input)
          ~probes:input.Measurement.probes
      in
      Generators.vec_bits_equal via_input.Em.transmission
        direct.Em.transmission
      && via_input.Em.sweeps = direct.Em.sweeps)

let prop_em_adapter_bit_identical =
  QCheck.Test.make ~count:12 ~name:"em adapter = direct module call"
    Generators.seed_arb (fun seed ->
      let input = trial_input seed in
      let direct = Em.estimate_input input in
      Generators.vec_bits_equal
        (adapter_rates "em" input)
        (Array.map (fun t -> 1. -. t) direct.Em.transmission))

let prop_mils_adapter_bit_identical =
  QCheck.Test.make ~count:12 ~name:"mils adapter = direct module call"
    Generators.seed_arb (fun seed ->
      let input = trial_input seed in
      let direct = Core.Mils.estimate input in
      Generators.vec_bits_equal
        (adapter_rates "mils" input)
        direct.Core.Mils.loss_rates)

let prop_lia_adapter_bit_identical =
  QCheck.Test.make ~count:10 ~name:"lia-dense adapter = infer_checked"
    Generators.seed_arb (fun seed ->
      let input = trial_input seed in
      let checked =
        Core.Lia.infer_checked ~solver:Core.Lia.Dense ~r:input.Measurement.r
          ~y_learn:input.Measurement.y_learn ~y_now:input.Measurement.y_now ()
      in
      match checked.Core.Lia.result with
      | None -> false
      | Some direct ->
          Generators.vec_bits_equal
            (adapter_rates "lia-dense" input)
            direct.Core.Lia.loss_rates)

let prop_scfs_adapter_bit_identical =
  QCheck.Test.make ~count:12 ~name:"scfs adapter = direct module call"
    Generators.seed_arb (fun seed ->
      let input = trial_input seed in
      let threshold = 0.01 in
      let bad =
        Core.Scfs.classify_paths input.Measurement.r
          ~y_now:input.Measurement.y_now ~threshold
      in
      let direct = Core.Scfs.infer input.Measurement.r ~bad_paths:bad in
      match (adapter "scfs").Estimator.estimate ~threshold input with
      | Ok { Estimator.verdicts = Some v; _ } -> v = direct
      | _ -> false)

let () =
  Alcotest.run "estimators"
    [
      ( "em",
        [
          Alcotest.test_case "single link exact" `Quick test_em_single_link_exact;
          Alcotest.test_case "disjoint links exact" `Quick test_em_disjoint_links_exact;
          Alcotest.test_case "chain product" `Quick test_em_chain_product_right;
          Alcotest.test_case "likelihood increases" `Quick test_em_likelihood_increases;
          Alcotest.test_case "underdetermined vs LIA" `Slow
            test_em_underdetermined_vs_lia;
          Alcotest.test_case "validation" `Quick test_em_validation;
        ] );
      ( "variance-estimation",
        [
          Alcotest.test_case "streaming = explicit A" `Quick
            test_streaming_equals_explicit_a;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "interval sanity" `Slow test_ci_contains_estimate;
          Alcotest.test_case "congested nonzero" `Slow test_ci_congested_links_nonzero;
          Alcotest.test_case "stable ranking" `Slow test_ci_stable_ranking;
          Alcotest.test_case "validation" `Quick test_ci_validation;
        ] );
      ( "golden-registry",
        [
          Alcotest.test_case "every backend within its bound" `Slow
            test_golden_registry;
          Alcotest.test_case "registry names" `Quick test_registry_names;
        ] );
      ( "adapter-identity",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_em_wrapper_bit_identical;
            prop_em_adapter_bit_identical;
            prop_mils_adapter_bit_identical;
            prop_lia_adapter_bit_identical;
            prop_scfs_adapter_bit_identical;
          ] );
    ]
