(* Round-trip tests for the text serialization of testbeds and
   measurement campaigns. *)

module Graph = Topology.Graph
module Testbed = Topology.Testbed
module Serial = Topology.Serial
module Trace_io = Netsim.Trace_io
module Matrix = Linalg.Matrix

let tmp_file suffix = Filename.temp_file "netloss_test" suffix

let sample_testbed seed =
  let rng = Nstats.Rng.create seed in
  Topology.Overlay.planetlab_like rng ~hosts:8 ~ases:4 ~routers_per_as:4 ()

let testbed_equal a b =
  Graph.node_count a.Testbed.graph = Graph.node_count b.Testbed.graph
  && Graph.edge_count a.Testbed.graph = Graph.edge_count b.Testbed.graph
  && a.Testbed.beacons = b.Testbed.beacons
  && a.Testbed.destinations = b.Testbed.destinations
  && Array.for_all2
       (fun (x : Graph.node) (y : Graph.node) -> x = y)
       (Graph.nodes a.Testbed.graph)
       (Graph.nodes b.Testbed.graph)
  && Array.for_all2
       (fun (x : Graph.edge) (y : Graph.edge) -> x = y)
       (Graph.edges a.Testbed.graph)
       (Graph.edges b.Testbed.graph)

let test_testbed_roundtrip_string () =
  let tb = sample_testbed 3 in
  let tb' = Serial.of_string (Serial.to_string tb) in
  Alcotest.(check bool) "roundtrip equal" true (testbed_equal tb tb')

let test_testbed_roundtrip_file () =
  let tb = sample_testbed 5 in
  let path = tmp_file ".tb" in
  Serial.save path tb;
  let tb' = Serial.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip equal" true (testbed_equal tb tb')

let test_testbed_comments_and_blanks () =
  let tb = sample_testbed 7 in
  let s = "# a comment\n\n" ^ Serial.to_string tb ^ "\n# trailing\n" in
  let tb' = Serial.of_string s in
  Alcotest.(check bool) "comments ignored" true (testbed_equal tb tb')

let test_testbed_malformed () =
  let check_fails name s =
    match Serial.of_string s with
    | _ -> Alcotest.failf "%s: expected failure" name
    | exception Failure _ -> ()
  in
  check_fails "no header" "node 0 host 0\n";
  check_fails "bad kind" "netloss-testbed 1\nnode 0 alien 0\n";
  check_fails "sparse ids"
    "netloss-testbed 1\nnode 0 host 0\nnode 2 host 0\nbeacon 0\ndest 2\n";
  check_fails "garbage" "netloss-testbed 1\nwhatever\n"

let test_testbed_routing_stable_across_roundtrip () =
  (* the reduced routing matrix must be identical after serialization *)
  let tb = sample_testbed 9 in
  let tb' = Serial.of_string (Serial.to_string tb) in
  let r = (Testbed.routing tb).Topology.Routing.matrix in
  let r' = (Testbed.routing tb').Topology.Routing.matrix in
  Alcotest.(check bool) "same routing matrix" true (Linalg.Sparse.equal r r')

let test_measurements_roundtrip () =
  let y =
    Matrix.init 7 13 (fun l i ->
        -.(1.5 +. sin (float_of_int ((l * 13) + i))) /. 3.)
  in
  let y' = Trace_io.of_string (Trace_io.to_string y) in
  Alcotest.(check bool) "exact roundtrip" true (Matrix.approx_equal ~tol:0. y y')

let test_measurements_file_roundtrip () =
  let y = Matrix.init 3 4 (fun l i -> float_of_int (l - i - 3) *. 0.125) in
  let path = tmp_file ".meas" in
  Trace_io.save path y;
  let y' = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Matrix.approx_equal ~tol:0. y y')

let test_measurements_malformed () =
  let check_fails name s =
    match Trace_io.of_string s with
    | _ -> Alcotest.failf "%s: expected failure" name
    | exception Failure _ -> ()
  in
  check_fails "empty" "";
  check_fails "bad header" "nonsense 1 2 3\n0.1 0.2\n";
  check_fails "row count" "netloss-measurements 1 2 2\n-0.1 -0.2\n";
  check_fails "column count" "netloss-measurements 1 1 3\n-0.1 -0.2\n";
  (* value validation: a measurement is a log success rate, so NaN,
     non-finite, and positive entries are corrupt under strict loading *)
  check_fails "nan cell" "netloss-measurements 1 1 2\nnan -0.2\n";
  check_fails "inf cell" "netloss-measurements 1 1 2\n-0.1 -inf\n";
  check_fails "positive cell" "netloss-measurements 1 1 2\n-0.1 0.2\n"

let test_measurements_strict_diagnostics () =
  (* the diagnostic must point at the offending file:line *)
  match
    Trace_io.of_string ~path:"faulty.meas"
      "netloss-measurements 1 2 2\n-0.1 -0.2\nnan -0.4\n"
  with
  | _ -> Alcotest.fail "expected failure on NaN cell"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic %S names file:line" msg)
        true
        (String.length msg >= 14 && String.sub msg 0 14 = "faulty.meas:3:")

let test_measurements_permissive () =
  (* ~strict:false lets quarantine-aware ingest read fault-laden files *)
  let s = "netloss-measurements 1 1 3\nnan 0.5 -0.25\n" in
  let y = Trace_io.of_string ~strict:false s in
  Alcotest.(check bool) "nan preserved" true (Float.is_nan (Matrix.get y 0 0));
  Alcotest.(check (float 0.)) "positive preserved" 0.5 (Matrix.get y 0 1);
  Alcotest.(check (float 0.)) "valid preserved" (-0.25) (Matrix.get y 0 2);
  match Trace_io.of_string ~strict:false "netloss-measurements 1 1 2\n-0.1\n" with
  | _ -> Alcotest.fail "permissive loading must still reject ragged rows"
  | exception Failure _ -> ()

let test_measurements_preserve_negatives_and_zero () =
  let y = Matrix.of_arrays [| [| -0.5; 0.; -1e-9 |] |] in
  let y' = Trace_io.of_string (Trace_io.to_string y) in
  Alcotest.(check bool) "signs preserved" true (Matrix.approx_equal ~tol:0. y y')

let prop_measurement_roundtrip =
  QCheck.Test.make ~count:50 ~name:"measurement roundtrip is exact"
    QCheck.(
      pair (int_range 1 6)
        (pair (int_range 1 6) (list_of_size (QCheck.Gen.return 36) (float_range (-10.) 0.))))
    (fun (m, (np, cells)) ->
      let cells = Array.of_list cells in
      let y = Matrix.init m np (fun l i -> cells.(((l * np) + i) mod 36)) in
      Matrix.approx_equal ~tol:0. y (Trace_io.of_string (Trace_io.to_string y)))

let () =
  Alcotest.run "io"
    [
      ( "testbed",
        [
          Alcotest.test_case "string roundtrip" `Quick test_testbed_roundtrip_string;
          Alcotest.test_case "file roundtrip" `Quick test_testbed_roundtrip_file;
          Alcotest.test_case "comments and blanks" `Quick
            test_testbed_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_testbed_malformed;
          Alcotest.test_case "routing stable" `Quick
            test_testbed_routing_stable_across_roundtrip;
        ] );
      ( "measurements",
        [
          Alcotest.test_case "string roundtrip" `Quick test_measurements_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_measurements_file_roundtrip;
          Alcotest.test_case "malformed" `Quick test_measurements_malformed;
          Alcotest.test_case "strict diagnostics" `Quick
            test_measurements_strict_diagnostics;
          Alcotest.test_case "permissive loading" `Quick
            test_measurements_permissive;
          Alcotest.test_case "negatives and zero" `Quick
            test_measurements_preserve_negatives_and_zero;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_measurement_roundtrip ]);
    ]
