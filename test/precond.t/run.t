The --precond flag picks the CGLS preconditioner: none (raw), jacobi
(column scaling, the default), or block-jacobi (per-AS Cholesky blocks
over the --partition grouping). A transit-stub topology carries real AS
labels, so the AS partition is non-trivial here.

  $ lia_cli gen --kind transit-stub --hosts 10 --seed 4 -o p.tb
  wrote p.tb: graph: 226 nodes (10 hosts), 504 edges, 10 beacons, 10 destinations; 90 paths x 36 virtual links

  $ lia_cli sim --testbed p.tb --snapshots 12 --seed 5 -o p.meas
  wrote p.meas: 12 snapshots x 90 paths

All three preconditioners agree with the dense oracle on the report.
(The threshold is moved off the default so a link sitting exactly on tl
cannot let solver-tolerance noise flip its verdict.)

  $ lia_cli infer --testbed p.tb --measurements p.meas --top 4 --threshold 0.01 --solver dense > dense.txt
  $ lia_cli infer --testbed p.tb --measurements p.meas --top 4 --threshold 0.01 --solver cgls --precond none > pc_none.txt
  $ lia_cli infer --testbed p.tb --measurements p.meas --top 4 --threshold 0.01 --solver cgls --precond jacobi > pc_jacobi.txt
  $ lia_cli infer --testbed p.tb --measurements p.meas --top 4 --threshold 0.01 --solver cgls --precond block-jacobi --partition as > pc_block.txt
  $ diff dense.txt pc_none.txt
  $ diff dense.txt pc_jacobi.txt
  $ diff dense.txt pc_block.txt
  $ cat pc_block.txt
  learned variances from 11 snapshots
  health: clean
  kept 21 columns, eliminated 15; 7 links above tl = 0.01
  link   loss rate   variance    verdict    edges
  35     0.20125     1.761e-03   CONGESTED  390 (intra-AS)
  7      0.18538     2.364e-03   CONGESTED  28 (inter-AS)
  24     0.17859     2.805e-03   CONGESTED  277,377 (inter-AS)
  18     0.17646     1.822e-03   CONGESTED  137,140 (intra-AS)

The hierarchical path is bit-for-bit jobs-invariant: the per-AS blocks
factor independently, so the worker count never reaches the bits.

  $ lia_cli infer --testbed p.tb --measurements p.meas --top 4 --threshold 0.01 --solver cgls --precond block-jacobi --jobs 4 > pc_block4.txt
  $ diff pc_block.txt pc_block4.txt

Parity survives faulted input: the quarantine-aware checked pipeline
reaches the same degraded verdict and the same report under either
solver.

  $ lia_cli sim --testbed p.tb --snapshots 12 --seed 5 --fault-spec "seed=9,miss=0.05,nan=0.02,dup=0.05" -o pf.meas
  wrote pf.meas: 12 snapshots x 90 paths
  fault injection: cells 88 (miss 66, nan 22)
  $ lia_cli infer --testbed p.tb --measurements pf.meas --top 4 --threshold 0.01 --solver dense > f_dense.txt
  $ lia_cli infer --testbed p.tb --measurements pf.meas --top 4 --threshold 0.01 --solver cgls --precond block-jacobi > f_block.txt
  $ diff f_dense.txt f_block.txt
  $ head -2 f_block.txt
  learned variances from 11 snapshots
  health: degraded (kept 11/11 snapshots; 81 missing cells, 0 corrupt cells; pairs used 1350/1350, min overlap 6; target: 4 missing, 0 corrupt)

Serving mode accepts the same preconditioner, and --warm-start chains
the snapshot solves off each other; the stopping rule still references
the cold start, so the table matches the cold batch.

  $ lia_cli infer --testbed p.tb --measurements p.meas --snapshots p.meas --threshold 0.01 --solver cgls --precond block-jacobi > serve_cold.txt
  $ lia_cli infer --testbed p.tb --measurements p.meas --snapshots p.meas --threshold 0.01 --solver cgls --precond block-jacobi --warm-start > serve_warm.txt
  $ diff serve_cold.txt serve_warm.txt
  $ head -2 serve_warm.txt
  learned variances from 12 snapshots
  plan: kept 23 columns, eliminated 13; serving 12 snapshots

Unknown flag values are data errors (exit 2), not silent fallbacks —
including a bad --partition under a preconditioner that would never
consult it.

  $ lia_cli infer --testbed p.tb --measurements p.meas --solver cgls --precond ilu
  lia_cli: unknown preconditioner "ilu" (expected "none", "jacobi", or "block-jacobi")
  [2]
  $ lia_cli infer --testbed p.tb --measurements p.meas --solver dense --partition metis
  lia_cli: unknown partition scheme "metis" (expected "as")
  [2]

--warm-start only means something for iterative batch serving.

  $ lia_cli infer --testbed p.tb --measurements p.meas --solver cgls --warm-start
  lia_cli: --warm-start requires --snapshots
  [2]
  $ lia_cli infer --testbed p.tb --measurements p.meas --snapshots p.meas --solver dense --warm-start
  lia_cli: --warm-start requires --solver cgls
  [2]
