(* Shared qcheck generators and bit-level equality helpers for the test
   suites. Linked into every test executable (no top-level effects):
   keep construction here, assertions in the suites. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator

(* --- bit-level equality -------------------------------------------------- *)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let vec_bits_equal v1 v2 =
  Array.length v1 = Array.length v2 && Array.for_all2 bits_equal v1 v2

let matrix_bits_equal m1 m2 =
  Matrix.rows m1 = Matrix.rows m2
  && Matrix.cols m1 = Matrix.cols m2
  && begin
       let ok = ref true in
       for i = 0 to Matrix.rows m1 - 1 do
         for j = 0 to Matrix.cols m1 - 1 do
           if not (bits_equal (Matrix.get m1 i j) (Matrix.get m2 i j)) then
             ok := false
         done
       done;
       !ok
     end

(* --- random problem instances ------------------------------------------- *)

let seed_arb = QCheck.int_range 1 5000
(** The common "seed drives everything" qcheck input. *)

(* Random tree topology + a simulated campaign: 12 snapshots, learn on
   the first 11, diagnose the last. *)
let random_tree_trial seed =
  let rng = Rng.create seed in
  let n = 30 + (seed mod 120) in
  let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Simulator.run rng config r ~count:12 in
  let y_learn, target = Simulator.split_learning run ~learning:11 in
  (r, y_learn, target)

(* Random tree (odd seeds: Waxman mesh) + synthetic variances and log
   measurements; for linear-algebraic identities where no simulator
   campaign is needed. *)
let random_instance seed =
  let rng = Rng.create seed in
  let tb =
    if seed mod 2 = 0 then
      Topology.Tree_gen.generate rng ~nodes:(30 + (seed mod 80)) ~max_branching:5 ()
    else Topology.Waxman.generate rng ~nodes:40 ~hosts:(5 + (seed mod 5)) ()
  in
  let r = (Topology.Testbed.routing tb).Topology.Routing.matrix in
  let nc = Sparse.cols r and np = Sparse.rows r in
  let variances = Array.init nc (fun _ -> Rng.uniform rng 1e-6 1e-2) in
  let y = Matrix.init (5 + (seed mod 7)) np (fun _ _ -> -.Rng.uniform rng 0. 0.5) in
  (r, variances, y)

(* Random well-conditioned dense tall matrix for QR-level properties. *)
let random_dense seed =
  let rng = Rng.create seed in
  let m = 10 + (seed mod 40) in
  let n = 3 + (seed mod (max 1 (m - 3))) in
  Matrix.init m n (fun _ _ -> Rng.uniform rng (-2.) 2.)

(* Random fault specs for chaos properties: seeds drive every clause, so
   the same qcheck seed reproduces the same fault schedule. *)
let random_fault_spec seed =
  let rng = Rng.create (seed * 2 + 1) in
  let p rng scale = if Rng.bool rng 0.5 then Rng.uniform rng 0. scale else 0. in
  let clauses =
    [
      Printf.sprintf "seed=%d" (1 + (seed mod 1000));
      Printf.sprintf "drop=%g" (p rng 0.2);
      Printf.sprintf "miss=%g" (p rng 0.1);
      Printf.sprintf "nan=%g" (p rng 0.05);
      Printf.sprintf "oor=%g" (p rng 0.05);
      Printf.sprintf "neg=%g" (p rng 0.05);
      Printf.sprintf "dup=%g" (p rng 0.2);
    ]
    @ (if Rng.bool rng 0.5 then
         [ Printf.sprintf "churn=%d@%g" (1 + (seed mod 3)) (Rng.uniform rng 0.3 0.9) ]
       else [])
    @ if Rng.bool rng 0.5 then [ Printf.sprintf "route_shift=%g" (Rng.uniform rng 0.2 0.8) ]
      else []
  in
  let spec = String.concat "," clauses in
  match Netsim.Faults.parse spec with
  | Ok t -> t
  | Error msg -> failwith (Printf.sprintf "generator produced bad spec %S: %s" spec msg)
