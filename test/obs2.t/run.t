Observability v2: the flight recorder keeps the recent event tail in
memory and dumps it as JSONL on non-convergence, refusal, and exit; the
convergence stream logs every solver iteration; and the report
subcommand turns those files into one operator-readable page. Jobs is
pinned to 1 so the recorded event set is machine-independent.

  $ lia_cli gen --kind tree --nodes 60 --seed 4 -o run.tb
  wrote run.tb: graph: 60 nodes (52 hosts), 59 edges, 1 beacons, 51 destinations; 51 paths x 59 virtual links

  $ lia_cli sim --testbed run.tb --snapshots 12 --seed 5 -o run.meas
  wrote run.meas: 12 snapshots x 51 paths

A starved iteration budget (--cgls-max-iter 5) leaves both solves short
of tolerance. The run still serves its best iterate, and the recorder
auto-dumps.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 1 \
  >   --solver cgls --cgls-max-iter 5 --flight-recorder fr.jsonl \
  >   --convergence conv.jsonl --metrics m.txt > starved.txt
  $ grep "^health:" starved.txt
  health: clean

Telemetry never changes the estimates: the same starved run without any
of it is bit-for-bit identical.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 1 \
  >   --solver cgls --cgls-max-iter 5 > plain.txt
  $ diff starved.txt plain.txt

The dump is one header line plus one JSONL event per line: five
solver_iter events per starved solve, span begin/end pairs with GC
words attributed to each span, and the health verdict.

  $ head -1 fr.jsonl | grep -o '"kind": "recorder_dump"'
  "kind": "recorder_dump"
  $ grep -c '"kind": "solver_iter"' fr.jsonl
  10
  $ grep -c '"kind": "verdict"' fr.jsonl
  1
  $ grep '"kind": "span_end"' fr.jsonl | grep -c '"alloc_words"'
  4

The convergence stream carries the same iterations as flat JSONL with
solve context; residuals decrease monotonically here.

  $ wc -l < conv.jsonl
  10
  $ head -2 conv.jsonl
  {"solver": "cgls", "solve": 1, "iteration": 1, "relres": 0.243128430348, "phase": "phase1", "precond": "jacobi", "warm": false}
  {"solver": "cgls", "solve": 1, "iteration": 2, "relres": 0.142440827742, "phase": "phase1", "precond": "jacobi", "warm": false}

report renders the per-phase wall/alloc profile (names are
deterministic, times are not), the per-solve convergence table, the
residual tail of the first non-converged solve, and the health verdict.

  $ lia_cli report --recorder fr.jsonl --metrics m.txt --tail 3 > page.txt
  $ sed -n '/^Per-phase/,/^$/p' page.txt | awk 'NR > 3 && NF { print $1 }' | sort
  lia.infer_checked
  plan.build
  plan.solve
  variance_estimator.estimate_matfree
  $ sed -n '/^Convergence/,/^$/p' page.txt | grep .
  Convergence
  -----------
  solver solve  phase    precond       warm   iters  final_relres converged
  cgls   1      phase1   jacobi        cold       5     1.205e-02 NO
  cgls   2      phase2   none          cold       5     6.411e-03 NO

  $ sed -n '/^Residual tail/,/^$/p' page.txt | grep .
  Residual tail (cgls solve 1, last 3 of 5 iterations)
  ----------------------------------------------------
    iter        relres
       3     4.325e-02
       4     1.801e-02
       5     1.205e-02

  $ sed -n '/^Health/,/^$/p' page.txt | grep .
  Health
  ------
  verdict: clean
  nonconverged solves: 2


A refused run dumps too, with the refusal verdict on record.

  $ lia_cli infer --testbed run.tb --measurements run.meas --jobs 1 \
  >   --fault-spec seed=1,miss=0.95 --flight-recorder refused.jsonl > refused.txt
  [3]
  $ grep '"kind": "verdict"' refused.jsonl | grep -o '"health": "refused"'
  "health": "refused"
  $ lia_cli report --recorder refused.jsonl | grep "^verdict:"
  verdict: refused — refused (0 usable learning snapshots after quarantine (need at least 2))

report without any input is a usage error (exit 2).

  $ lia_cli report
  lia_cli: report needs at least one input (--recorder, --trace, --metrics, or --convergence)
  [2]

--metrics - writes the dump to stdout instead of a file named "-", and
--trace - streams trace events to stderr.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 1 \
  >   --metrics - | grep -c "^lia_quarantine_rows_total 0"
  1
  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 1 \
  >   --trace - 2>trace.err >/dev/null
  $ head -1 trace.err
  [
  $ grep -c '"name": "lia.infer_checked"' trace.err
  1
  $ test ! -e ./-

--convergence - streams iteration lines to stderr.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --jobs 1 \
  >   --solver cgls --cgls-max-iter 2 --convergence - 2>conv.err >/dev/null
  $ head -1 conv.err
  {"solver": "cgls", "solve": 1, "iteration": 1, "relres": 0.243128430348, "phase": "phase1", "precond": "jacobi", "warm": false}
