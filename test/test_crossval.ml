(* Tests for the cross-validation scenario runner: grid parsing, the
   determinism contracts (jobs invariance, seed reproducibility), and
   the fault-matrix property that injected faults surface as typed
   health outcomes, never as exception escapes. *)

module Crossval = Core.Crossval
module Estimator = Core.Estimator
module Faults = Netsim.Faults

(* --- grid parsing ------------------------------------------------------- *)

let test_parse_defaults () =
  match Crossval.parse_grid "" with
  | Error msg -> Alcotest.failf "empty grid rejected: %s" msg
  | Ok g ->
      Alcotest.(check (list string))
        "families" [ "tree"; "planetlab" ] g.Crossval.families;
      Alcotest.(check (list int)) "sizes" [ 15 ] g.Crossval.sizes;
      Alcotest.(check (list string))
        "models" [ "llrd1-calibrated" ] g.Crossval.models;
      Alcotest.(check int) "faults" 1 (List.length g.Crossval.faults)

let test_parse_axes () =
  match
    Crossval.parse_grid
      "family=tree;size=10,20;model=llrd1,internet;fault=none|drop=0.2,seed=7"
  with
  | Error msg -> Alcotest.failf "grid rejected: %s" msg
  | Ok g ->
      Alcotest.(check (list string)) "families" [ "tree" ] g.Crossval.families;
      Alcotest.(check (list int)) "sizes" [ 10; 20 ] g.Crossval.sizes;
      Alcotest.(check (list string))
        "models" [ "llrd1"; "internet" ] g.Crossval.models;
      Alcotest.(check int) "fault alternatives" 2 (List.length g.Crossval.faults);
      Alcotest.(check bool)
        "first fault is none" true
        (Faults.is_none (List.nth g.Crossval.faults 0));
      Alcotest.(check bool)
        "second fault carries clauses" false
        (Faults.is_none (List.nth g.Crossval.faults 1))

let test_parse_rejects () =
  let rejected s =
    match Crossval.parse_grid s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unknown family" true (rejected "family=moebius");
  Alcotest.(check bool) "unknown model" true (rejected "model=bogus");
  Alcotest.(check bool) "unknown axis" true (rejected "flavour=tree");
  Alcotest.(check bool) "size below 2" true (rejected "size=1");
  Alcotest.(check bool) "malformed size" true (rejected "size=ten");
  Alcotest.(check bool) "empty axis" true (rejected "family=");
  Alcotest.(check bool) "bad fault" true (rejected "fault=warp=0.5");
  Alcotest.(check bool) "missing =" true (rejected "family tree")

let test_scenarios_order () =
  match Crossval.parse_grid "family=tree,planetlab;size=10,12" with
  | Error msg -> Alcotest.failf "grid rejected: %s" msg
  | Ok g ->
      let scen = Crossval.scenarios g ~seeds:[ 5; 6 ] in
      Alcotest.(check int) "count = product" 8 (List.length scen);
      let coords =
        List.map
          (fun s -> (s.Crossval.family, s.Crossval.size, s.Crossval.seed))
          scen
      in
      Alcotest.(check bool)
        "fixed nesting order (family, size, seed)" true
        (coords
        = [
            ("tree", 10, 5);
            ("tree", 10, 6);
            ("tree", 12, 5);
            ("tree", 12, 6);
            ("planetlab", 10, 5);
            ("planetlab", 10, 6);
            ("planetlab", 12, 5);
            ("planetlab", 12, 6);
          ])

(* --- determinism contracts ---------------------------------------------- *)

let tiny_scenarios ?(fault = Faults.none) () =
  let grid =
    {
      Crossval.families = [ "tree" ];
      sizes = [ 12 ];
      models = [ "llrd1-calibrated" ];
      faults = [ fault ];
    }
  in
  Crossval.scenarios grid ~seeds:[ 1; 2 ]

(* strip the telemetry fields, keeping everything the determinism
   contract covers *)
let deterministic_view cells =
  Array.map
    (fun c -> (c.Crossval.scenario, c.Crossval.estimator, c.Crossval.outcome))
    cells

let test_jobs_invariance () =
  let scenarios = tiny_scenarios () in
  let run jobs =
    Crossval.run ~jobs ~snapshots:10 ~estimators:Estimator.all ~scenarios ()
  in
  let base = run 1 in
  let view = deterministic_view base in
  List.iter
    (fun jobs ->
      let cells = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "outcomes bit-identical at jobs=%d" jobs)
        true
        (deterministic_view cells = view);
      Alcotest.(check string)
        (Printf.sprintf "render byte-identical at jobs=%d" jobs)
        (Crossval.render base) (Crossval.render cells))
    [ 2; 4 ]

let test_seed_reproducibility () =
  let scenarios = tiny_scenarios () in
  let run () =
    Crossval.run ~jobs:2 ~snapshots:10 ~estimators:Estimator.all ~scenarios ()
  in
  Alcotest.(check bool)
    "rerun outcomes bit-identical" true
    (deterministic_view (run ()) = deterministic_view (run ()))

let test_render_shape () =
  let scenarios = tiny_scenarios () in
  let cells =
    Crossval.run ~jobs:2 ~snapshots:10 ~estimators:Estimator.all ~scenarios ()
  in
  Alcotest.(check int)
    "one cell per scenario x estimator"
    (List.length scenarios * List.length Estimator.all)
    (Array.length cells);
  let table = Crossval.render cells in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " row present") true (contains table name))
    Estimator.names;
  (* the variance-serving backend has no variances here: typed skip *)
  Alcotest.(check bool)
    "plan skipped, not crashed" true
    (contains table "skipped(needs caller-supplied link variances)");
  (* JSONL: one parseable object per cell, telemetry always present *)
  let lines =
    String.split_on_char '\n' (Crossval.to_jsonl cells)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one JSONL line per cell" (Array.length cells)
    (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string_opt line with
      | None -> Alcotest.failf "unparseable JSONL line: %s" line
      | Some json ->
          Alcotest.(check bool)
            "wall_s present" true
            (Obs.Json.member "wall_s" json <> None);
          Alcotest.(check bool)
            "estimator present" true
            (Obs.Json.member "estimator" json <> None))
    lines

(* --- the fault matrix --------------------------------------------------- *)

(* Whatever the injected fault, every cell lands as a typed outcome with
   a recognized health label, and the whole run is reproducible. *)
let prop_fault_matrix_typed_outcomes =
  QCheck.Test.make ~count:8 ~name:"faulted cells are typed and reproducible"
    Generators.seed_arb (fun seed ->
      let fault = Generators.random_fault_spec seed in
      let scenarios =
        [
          {
            Crossval.family = "tree";
            size = 12;
            model = "llrd1-calibrated";
            fault;
            seed;
          };
        ]
      in
      let estimators =
        List.filter_map Estimator.find
          [ "minc"; "em"; "mils"; "scfs"; "clink"; "fourier"; "lia-dense" ]
      in
      let run () = Crossval.run ~jobs:2 ~snapshots:10 ~estimators ~scenarios () in
      let cells = run () in
      Array.for_all
        (fun c ->
          match c.Crossval.outcome with
          | Crossval.Scored { health; _ } ->
              List.mem health [ "clean"; "degraded" ]
          | Crossval.Refused reason | Crossval.Skipped reason ->
              String.length reason > 0)
        cells
      && deterministic_view (run ()) = deterministic_view cells)

let () =
  Alcotest.run "crossval"
    [
      ( "grid",
        [
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "axes" `Quick test_parse_axes;
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "scenario order" `Quick test_scenarios_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance;
          Alcotest.test_case "seed reproducibility" `Slow
            test_seed_reproducibility;
          Alcotest.test_case "render shape" `Slow test_render_shape;
        ] );
      ( "fault-matrix",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fault_matrix_typed_outcomes ] );
    ]
