(* Tests for the lib/parallel domain pool and the determinism contract of
   the parallel kernels: for every [jobs] value the covariance,
   normal-equation, and augmented-matrix kernels must return bit-for-bit
   the same result as the sequential run. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Pool = Parallel.Pool
module Chunk = Parallel.Chunk

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let vec_bits_equal v1 v2 =
  Array.length v1 = Array.length v2 && Array.for_all2 bits_equal v1 v2

let matrix_bits_equal m1 m2 =
  Matrix.rows m1 = Matrix.rows m2
  && Matrix.cols m1 = Matrix.cols m2
  && begin
       let ok = ref true in
       for i = 0 to Matrix.rows m1 - 1 do
         for j = 0 to Matrix.cols m1 - 1 do
           if not (bits_equal (Matrix.get m1 i j) (Matrix.get m2 i j)) then
             ok := false
         done
       done;
       !ok
     end

(* --- Chunk ------------------------------------------------------------ *)

let test_block_count () =
  Alcotest.(check int) "zero items" 0 (Chunk.block_count 0);
  Alcotest.(check int) "below cutoff" 1 (Chunk.block_count 2047);
  Alcotest.(check int) "scales with size" 4 (Chunk.block_count (4 * 2048));
  Alcotest.(check int) "capped" 64 (Chunk.block_count 1_000_000);
  Alcotest.(check int) "custom knobs" 3
    (Chunk.block_count ~min_block:10 ~max_blocks:3 1000)

let test_ranges_tile () =
  List.iter
    (fun (blocks, n) ->
      let covered = Array.make n 0 in
      let prev_hi = ref 0 in
      for b = 0 to blocks - 1 do
        let lo, hi = Chunk.range ~blocks ~n b in
        Alcotest.(check int) "contiguous" !prev_hi lo;
        prev_hi := hi;
        for i = lo to hi - 1 do
          covered.(i) <- covered.(i) + 1
        done
      done;
      Alcotest.(check int) "ends at n" n !prev_hi;
      Alcotest.(check bool) "each index once" true
        (Array.for_all (fun c -> c = 1) covered))
    [ (1, 5); (3, 10); (7, 7); (4, 1023) ]

let test_iter_pairs_matches_row_index () =
  let np = 9 in
  let total = np * (np + 1) / 2 in
  let seen = ref [] in
  Chunk.iter_pairs ~np ~lo:0 ~hi:total (fun k i j -> seen := (k, i, j) :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "visits all pairs" total (List.length seen);
  List.iter
    (fun (k, i, j) ->
      Alcotest.(check int) "k = row_index" (Core.Augmented.row_index ~np ~i ~j) k;
      let i', j' = Core.Augmented.row_pair ~np k in
      Alcotest.(check (pair int int)) "pair = row_pair" (i', j') (i, j))
    seen;
  (* a strict sub-range starts mid-triangle *)
  let sub = ref [] in
  Chunk.iter_pairs ~np ~lo:17 ~hi:23 (fun k i j -> sub := (k, i, j) :: !sub);
  List.iter
    (fun (k, i, j) ->
      Alcotest.(check int) "sub-range k" (Core.Augmented.row_index ~np ~i ~j) k)
    (List.rev !sub);
  Alcotest.(check int) "sub-range size" 6 (List.length !sub)

(* --- Pool ------------------------------------------------------------- *)

let test_parallel_for_squares () =
  let n = 1000 in
  let out = Array.make n 0 in
  Pool.parallel_for ~jobs:4 ~min_block:16 ~n (fun i -> out.(i) <- i * i);
  Alcotest.(check bool) "all squares" true
    (Array.for_all (fun b -> b) (Array.mapi (fun i x -> x = i * i) out))

let test_map_reduce_deterministic () =
  (* the reduction is deliberately non-associative so any deviation from
     block-index order would change the bits *)
  let map b = 1. /. float_of_int (b + 1) in
  let reduce acc x = (acc *. 0.75) +. x in
  let run jobs = Pool.map_reduce ~jobs ~blocks:37 ~map ~reduce ~init:0. in
  let seq = run 1 in
  Alcotest.(check bool) "jobs=2 same bits" true (bits_equal seq (run 2));
  Alcotest.(check bool) "jobs=4 same bits" true (bits_equal seq (run 4));
  (* and the sequential run is the plain left fold *)
  let expected = ref 0. in
  for b = 0 to 36 do
    expected := reduce !expected (map b)
  done;
  Alcotest.(check bool) "matches left fold" true (bits_equal !expected seq)

let test_exception_propagates () =
  Alcotest.check_raises "worker exception reaches caller" (Failure "boom")
    (fun () ->
      Pool.parallel_for ~jobs:4 ~min_block:1 ~n:64 (fun i ->
          if i = 37 then failwith "boom"))

let test_first_exception_wins () =
  (* one failing index per block: the lowest-numbered failure is reported,
     whatever order the blocks actually ran in *)
  try
    Pool.parallel_for ~jobs:4 ~min_block:1 ~n:64 (fun i ->
        if i = 11 then failwith "low" else if i = 53 then failwith "high");
    Alcotest.fail "expected an exception"
  with Failure msg -> Alcotest.(check string) "lowest block's exception" "low" msg

let test_pool_reuse_across_calls () =
  let sum n jobs =
    Pool.map_reduce ~jobs ~blocks:n
      ~map:(fun b -> b)
      ~reduce:( + ) ~init:0
  in
  (* same shared pool serves repeated and differently-shaped calls *)
  Alcotest.(check int) "first use" 190 (sum 20 3);
  Alcotest.(check int) "second use" 190 (sum 20 3);
  Alcotest.(check int) "third use, other shape" 4950 (sum 100 3)

let test_explicit_pool_shutdown () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  let out = Array.make 32 0 in
  Pool.for_blocks ~pool 32 (fun b -> out.(b) <- b + 1);
  Alcotest.(check bool) "ran" true (Array.for_all (fun x -> x > 0) out);
  Pool.for_blocks ~pool 32 (fun b -> out.(b) <- b + 2);
  Alcotest.(check bool) "reusable" true (Array.for_all (fun x -> x > 1) out);
  Pool.shutdown pool;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Parallel.Pool: pool has been shut down") (fun () ->
      Pool.for_blocks ~pool 32 (fun _ -> ()))

let test_pool_stats () =
  let pool = Pool.create ~jobs:2 in
  let s0 = Pool.stats pool in
  Alcotest.(check int) "fresh tasks" 0 s0.Pool.tasks_run;
  Alcotest.(check int) "fresh blocks" 0 s0.Pool.blocks_scheduled;
  Alcotest.(check int) "fresh fallbacks" 0 s0.Pool.sequential_fallbacks;
  Pool.for_blocks ~pool 8 (fun _ -> ());
  Pool.for_blocks ~pool 5 (fun _ -> ());
  let s = Pool.stats pool in
  Alcotest.(check int) "every block became a task" 13 s.Pool.tasks_run;
  Alcotest.(check int) "blocks scheduled" 13 s.Pool.blocks_scheduled;
  Alcotest.(check int) "no fallbacks yet" 0 s.Pool.sequential_fallbacks;
  (* a single block degrades to an inline run and is counted as such *)
  Pool.for_blocks ~pool 1 (fun _ -> ());
  let s = Pool.stats pool in
  Alcotest.(check int) "fallback counted" 1 s.Pool.sequential_fallbacks;
  Alcotest.(check int) "no task for the inline run" 13 s.Pool.tasks_run;
  Pool.shutdown pool

let test_nested_calls_safe () =
  let n = 8 in
  let out = Array.make n 0 in
  Pool.for_blocks ~jobs:2 n (fun b ->
      (* the inner section must degrade to sequential instead of
         deadlocking the two-domain pool *)
      let acc = Atomic.make 0 in
      Pool.parallel_for ~jobs:2 ~min_block:1 ~n:10 (fun i ->
          ignore (Atomic.fetch_and_add acc i));
      out.(b) <- Atomic.get acc);
  Alcotest.(check bool) "nested sums correct" true
    (Array.for_all (fun x -> x = 45) out)

let test_buffers_reused () =
  let made = ref 0 in
  let bufs =
    Pool.Buffers.create (fun () ->
        incr made;
        Array.make 4 0.)
  in
  let b1 = Pool.Buffers.borrow bufs in
  Pool.Buffers.return bufs b1;
  let b2 = Pool.Buffers.borrow bufs in
  Alcotest.(check bool) "returned buffer is reused" true (b1 == b2);
  Alcotest.(check int) "one allocation" 1 !made;
  Alcotest.(check int) "all tracks creations" 1 (List.length (Pool.Buffers.all bufs))

(* --- parallel kernels are bit-for-bit sequential ---------------------- *)

let random_campaign seed =
  let rng = Rng.create seed in
  let n = 150 + (seed mod 100) in
  let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:13 in
  let y_learn, _ = Netsim.Simulator.split_learning run ~learning:12 in
  (r, y_learn)

let prop_estimate_streaming_jobs_invariant =
  QCheck.Test.make ~count:6
    ~name:"estimate_streaming: jobs in {2,4} bit-for-bit = jobs 1"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, y_learn = random_campaign seed in
      let v1 =
        Core.Variance_estimator.estimate_streaming ~jobs:1 ~r ~y:y_learn ()
      in
      List.for_all
        (fun jobs ->
          let v =
            Core.Variance_estimator.estimate_streaming ~jobs ~r ~y:y_learn ()
          in
          vec_bits_equal v1 v)
        [ 2; 4 ])

let prop_covariance_matrix_jobs_invariant =
  QCheck.Test.make ~count:6
    ~name:"covariance_matrix: jobs in {2,4} bit-for-bit = jobs 1"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let _, y_learn = random_campaign seed in
      let s1 = Nstats.Descriptive.covariance_matrix ~jobs:1 y_learn in
      List.for_all
        (fun jobs ->
          matrix_bits_equal s1 (Nstats.Descriptive.covariance_matrix ~jobs y_learn))
        [ 2; 4 ])

let prop_normal_matrix_jobs_invariant =
  QCheck.Test.make ~count:6
    ~name:"normal_matrix + Augmented.build: jobs in {2,4} = jobs 1"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r, _ = random_campaign seed in
      let a1 = Core.Augmented.build ~jobs:1 r in
      let g1 = Sparse.normal_matrix ~jobs:1 a1 in
      List.for_all
        (fun jobs ->
          let a = Core.Augmented.build ~jobs r in
          Sparse.equal a1 a && matrix_bits_equal g1 (Sparse.normal_matrix ~jobs a))
        [ 2; 4 ])

(* the pre-refactor covariance_matrix: center the full m×p matrix, then
   Gram — kept here as the oracle for the column-wise kernel *)
let covariance_matrix_oracle obs =
  let m = Matrix.rows obs and p = Matrix.cols obs in
  let mu = Nstats.Descriptive.mean_vector obs in
  let centered = Matrix.init m p (fun i j -> Matrix.get obs i j -. mu.(j)) in
  Matrix.scale (1. /. float_of_int (m - 1)) (Matrix.gram centered)

let prop_covariance_matrix_matches_oracle =
  QCheck.Test.make ~count:8
    ~name:"covariance_matrix: column-wise kernel matches dense oracle"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = 8 + (seed mod 20) and p = 5 + (seed mod 30) in
      let y = Matrix.init m p (fun _ _ -> Rng.uniform rng (-1.) 1.) in
      let fast = Nstats.Descriptive.covariance_matrix y in
      Matrix.approx_equal ~tol:1e-12 (covariance_matrix_oracle y) fast)

let pool_tests =
  [
    Alcotest.test_case "chunk: block_count heuristic" `Quick test_block_count;
    Alcotest.test_case "chunk: ranges tile [0,n)" `Quick test_ranges_tile;
    Alcotest.test_case "chunk: iter_pairs = Augmented.row_index" `Quick
      test_iter_pairs_matches_row_index;
    Alcotest.test_case "pool: parallel_for" `Quick test_parallel_for_squares;
    Alcotest.test_case "pool: map_reduce deterministic order" `Quick
      test_map_reduce_deterministic;
    Alcotest.test_case "pool: exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "pool: lowest block exception wins" `Quick
      test_first_exception_wins;
    Alcotest.test_case "pool: shared pool reused across calls" `Quick
      test_pool_reuse_across_calls;
    Alcotest.test_case "pool: explicit create/shutdown" `Quick
      test_explicit_pool_shutdown;
    Alcotest.test_case "pool: stats counts tasks and fallbacks" `Quick
      test_pool_stats;
    Alcotest.test_case "pool: nested sections are safe" `Quick
      test_nested_calls_safe;
    Alcotest.test_case "pool: accumulation buffers reused" `Quick
      test_buffers_reused;
  ]

let determinism_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_estimate_streaming_jobs_invariant;
      prop_covariance_matrix_jobs_invariant;
      prop_normal_matrix_jobs_invariant;
      prop_covariance_matrix_matches_oracle;
    ]

let () =
  Alcotest.run "parallel"
    [ ("pool", pool_tests); ("determinism", determinism_tests) ]
