The --solver flag selects the linear-algebra path: dense (materialized
systems, Householder QR) or cgls (matrix-free iterative). Both diagnose
the same campaign; auto currently means dense.

  $ lia_cli gen --kind tree --nodes 60 --seed 4 -o run.tb
  wrote run.tb: graph: 60 nodes (52 hosts), 59 edges, 1 beacons, 51 destinations; 51 paths x 59 virtual links

  $ lia_cli sim --testbed run.tb --snapshots 12 --seed 5 -o run.meas
  wrote run.meas: 12 snapshots x 51 paths

The two solvers agree on the report (CGLS converges to well below the
display precision) and cgls is bit-for-bit jobs-invariant.

  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --solver dense > dense.txt
  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --solver cgls > cgls.txt
  $ diff dense.txt cgls.txt
  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4 --solver cgls --jobs 2 > cgls2.txt
  $ diff cgls.txt cgls2.txt
  $ cat cgls.txt
  learned variances from 11 snapshots
  health: clean
  kept 29 columns, eliminated 30; 8 links above tl = 0.002
  link   loss rate   variance    verdict    edges
  24     0.15420     5.702e-03   CONGESTED  24 (intra-AS)
  2      0.13100     2.599e-03   CONGESTED  2 (intra-AS)
  7      0.12842     2.191e-03   CONGESTED  7 (intra-AS)
  35     0.12800     1.669e-03   CONGESTED  35 (intra-AS)

The metrics dump names the iterative-solver counters: iterations spent
in CGLS, and solves that stopped before reaching tolerance (none here).

  $ lia_cli infer --testbed run.tb --measurements run.meas --solver cgls --metrics m.txt > /dev/null
  $ grep "^# TYPE lia_cgls_iterations" m.txt
  # TYPE lia_cgls_iterations counter
  $ awk '$1 == "lia_cgls_iterations" { print ($2 > 0) ? "positive" : "zero" }' m.txt
  positive
  $ grep "^lia_solver_nonconverged_total" m.txt
  lia_solver_nonconverged_total 0

Starving the iteration budget is reported, not hidden: the run still
completes (CGLS returns its best iterate) and the counter records it.

  $ lia_cli infer --testbed run.tb --measurements run.meas --solver cgls \
  >   --cgls-max-iter 1 --metrics starved.txt > /dev/null
  $ grep "^lia_solver_nonconverged_total" starved.txt
  lia_solver_nonconverged_total 2

Serving mode builds the plan on the chosen backend; the snapshot table
matches the dense plan. (The threshold is moved off the default: a link
whose loss rate sits exactly on tl would let solver-tolerance noise flip
its verdict.)

  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas --threshold 0.01 --solver dense > serve_dense.txt
  $ lia_cli infer --testbed run.tb --measurements run.meas --snapshots run.meas --threshold 0.01 --solver cgls > serve_cgls.txt
  $ diff serve_dense.txt serve_cgls.txt
  $ head -2 serve_cgls.txt
  learned variances from 12 snapshots
  plan: kept 30 columns, eliminated 29; serving 12 snapshots

Bad solver arguments fail cleanly: an unknown solver is a usage error
(exit 124), a non-positive tolerance a data error (exit 2).

  $ lia_cli infer --testbed run.tb --measurements run.meas --solver lu 2>&1 | grep -o "invalid value 'lu'"
  invalid value 'lu'
  $ lia_cli infer --testbed run.tb --measurements run.meas --solver lu 2>/dev/null; echo "exit $?"
  exit 124
  $ lia_cli infer --testbed run.tb --measurements run.meas --solver cgls --cgls-tol 0
  lia_cli: Lsqr.cgls: non-positive tolerance
  [2]
