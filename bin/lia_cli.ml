(* netloss — command-line front end to the LIA tomography library.

   Typical session:
     lia_cli gen --kind planetlab --hosts 30 --seed 1 -o pl.tb
     lia_cli sim --testbed pl.tb --snapshots 51 --seed 2 -o pl.meas
     lia_cli infer --testbed pl.tb --measurements pl.meas
     lia_cli validate --testbed pl.tb --measurements pl.meas --epsilon 0.005 *)

open Cmdliner

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator

let routing_of_testbed tb = Topology.Testbed.routing tb

(* --- shared arguments ------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let testbed_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "testbed" ] ~docv:"FILE" ~doc:"Testbed file (from $(b,gen)).")

let measurements_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "y"; "measurements" ] ~docv:"FILE"
        ~doc:"Measurement file (from $(b,sim)).")

(* Raised after the health verdict has been printed; mapped to exit 3 in
   [main] so refusals are distinguishable from data errors (exit 2). *)
exception Refusal

let fault_conv =
  let parse s =
    match Netsim.Faults.parse s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Netsim.Faults.to_string t))

let fault_spec_arg =
  Arg.(
    value
    & opt fault_conv Netsim.Faults.none
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Seeded deterministic fault injection, e.g. \
           $(b,seed=7,drop=0.1,miss=0.05,oor=0.01,churn=2\\@0.5). Clauses: \
           $(b,seed=N), $(b,drop=P), $(b,miss=P), $(b,nan=P), $(b,oor=P), \
           $(b,neg=P), $(b,dup=P), $(b,churn=K\\@F), $(b,route_shift=F), \
           $(b,none). Same spec, same input: bit-identical faults.")

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for the covariance and normal-equation kernels (default: \
           the machine's recommended domain count, capped at 8). Results are \
           bit-for-bit identical for every value; $(b,--jobs 1) disables the \
           pool.")

(* --- solver selection --------------------------------------------------- *)

let solver_arg =
  let choices = [ ("auto", `Auto); ("dense", `Dense); ("cgls", `Cgls) ] in
  Arg.(
    value
    & opt (enum choices) `Auto
    & info [ "solver" ] ~docv:"S"
        ~doc:
          "Linear-algebra path: $(b,dense) materializes the systems and \
           factorizes (exact; fastest on small and medium testbeds), \
           $(b,cgls) is matrix-free iterative (memory stays near the \
           non-zeros; the only path that scales past a few thousand paths). \
           $(b,auto) (default) currently means $(b,dense).")

let cgls_tol_arg =
  Arg.(
    value & opt float 1e-10
    & info [ "cgls-tol" ] ~docv:"TOL"
        ~doc:"CGLS relative tolerance on the normal-equations residual.")

let cgls_max_iter_arg =
  Arg.(
    value & opt int 0
    & info [ "cgls-max-iter" ] ~docv:"N"
        ~doc:"CGLS iteration cap; $(b,0) (default) means twice the unknowns.")

(* [--precond] and [--partition] are validated here rather than through
   a cmdliner enum so an unknown value reports through the standard
   data-error path (exit 2), like every other semantic failure *)
let precond_arg =
  Arg.(
    value & opt string "jacobi"
    & info [ "precond" ] ~docv:"P"
        ~doc:
          "CGLS preconditioner: $(b,none), $(b,jacobi) (default; column \
           equalization), or $(b,block-jacobi) (hierarchical: per-partition \
           Cholesky blocks of the Gram matrix, the AS-sharded solve path). \
           Ignored by the dense solver.")

let partition_arg =
  Arg.(
    value & opt string "as"
    & info [ "partition" ] ~docv:"SCHEME"
        ~doc:
          "Column partition behind $(b,--precond block-jacobi): $(b,as) \
           (default) groups virtual links by autonomous system, with \
           AS-boundary links in a border group.")

let precond_spec_of ~precond ~partition ~graph ~red =
  (* validate the partition scheme up front, even when the chosen
     preconditioner ends up not consulting it — a typo should never be
     silently accepted *)
  if partition <> "as" then
    failwith
      (Printf.sprintf "unknown partition scheme %S (expected \"as\")" partition);
  let groups () =
    Topology.Partition.group_cols (Topology.Partition.by_as graph red)
  in
  match precond with
  | "none" -> Core.Variance_estimator.Pc_none
  | "jacobi" -> Core.Variance_estimator.Pc_jacobi
  | "block-jacobi" -> Core.Variance_estimator.Pc_block_jacobi (groups ())
  | other ->
      failwith
        (Printf.sprintf
           "unknown preconditioner %S (expected \"none\", \"jacobi\", or \
            \"block-jacobi\")"
           other)

let solver_of ~solver ~cgls_tol ~cgls_max_iter ~precond =
  match solver with
  | `Auto | `Dense -> Core.Lia.Dense
  | `Cgls ->
      Core.Lia.Cgls
        {
          tol = cgls_tol;
          max_iter = (if cgls_max_iter <= 0 then None else Some cgls_max_iter);
          sample = None;
          precond;
        }

(* --- telemetry (lib/obs) ---------------------------------------------- *)

type obs_config = {
  trace : string option;
  metrics : string option;
  convergence : string option;
  recorder : string option;
  log_level : Obs.Logger.level option;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write Chrome trace-event JSONL (pool-worker, kernel, and \
             plan-solve spans) to $(i,FILE); load it in chrome://tracing or \
             ui.perfetto.dev. $(i,FILE) $(b,-) writes to stderr.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Enable the metrics registry and write a Prometheus-style text \
             dump (pool queue-wait, phase-1 kernel, and per-snapshot solve \
             histograms, plus counters and gauges) to $(i,FILE) on exit. \
             $(i,FILE) $(b,-) writes to stdout.")
  in
  let convergence =
    Arg.(
      value
      & opt (some string) None
      & info [ "convergence" ] ~docv:"FILE"
          ~doc:
            "Stream per-iteration solver convergence JSONL (solve id, \
             iteration, relative residual, phase/preconditioner/warm \
             context) to $(i,FILE); feed it to $(b,report --convergence). \
             $(i,FILE) $(b,-) writes to stderr.")
  in
  let recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Enable the in-memory flight recorder (recent spans, solver \
             iterations, quarantine and health verdicts) and dump it to \
             $(i,FILE) as JSONL on non-convergence, refusal, and exit; \
             read it back with $(b,report --recorder).")
  in
  let log_level =
    let level_conv =
      let parse s =
        match Obs.Logger.level_of_string s with
        | Ok l -> Ok l
        | Error msg -> Error (`Msg msg)
      in
      let print ppf = function
        | None -> Format.pp_print_string ppf "off"
        | Some l -> Format.pp_print_string ppf (Obs.Logger.level_name l)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt level_conv None
      & info [ "log-level" ] ~docv:"LVL"
          ~doc:
            "Structured-log verbosity on stderr: $(b,off) (default), \
             $(b,error), $(b,warn), $(b,info), or $(b,debug).")
  in
  Term.(
    const (fun trace metrics convergence recorder log_level ->
        { trace; metrics; convergence; recorder; log_level })
    $ trace $ metrics $ convergence $ recorder $ log_level)

(* "-" selects a standard stream instead of a file literally named "-":
   line-oriented streams (trace, convergence) go to stderr so they never
   interleave with result output on stdout; the metrics dump — written
   once, on exit — goes to stdout. *)
let line_sink path =
  if path = "-" then Obs.Sink.stderr_lines () else Obs.Sink.file path

(* Install the requested sinks, run, and dump/close on the way out (also
   on failure, so a crashed serving run still leaves its telemetry). *)
let with_obs cfg f =
  Obs.Logger.set_level Obs.Logger.default cfg.log_level;
  Option.iter
    (fun path -> Obs.Trace.set_sink Obs.Trace.default (Some (line_sink path)))
    cfg.trace;
  Option.iter
    (fun path ->
      Obs.Convergence.set_sink Obs.Convergence.default (Some (line_sink path)))
    cfg.convergence;
  Option.iter
    (fun path ->
      Obs.Recorder.enable Obs.Recorder.default;
      if path <> "-" then
        Obs.Recorder.set_dump_path Obs.Recorder.default (Some path))
    cfg.recorder;
  if cfg.metrics <> None then Obs.Metrics.enable Obs.Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          let dump = Obs.Metrics.dump Obs.Metrics.default in
          (if path = "-" then print_string dump
           else begin
             let oc = open_out path in
             output_string oc dump;
             close_out oc
           end);
          Obs.Metrics.disable Obs.Metrics.default)
        cfg.metrics;
      (* "-" has nowhere persistent for an exit dump: write it to stderr
         here instead of registering a dump path *)
      (match cfg.recorder with
      | Some "-" ->
          Obs.Recorder.dump Obs.Recorder.default ~reason:"exit"
            (Obs.Sink.stderr_lines ())
      | _ -> ());
      Obs.Convergence.close Obs.Convergence.default;
      Obs.Trace.close Obs.Trace.default)
    f

let model_conv =
  let parse = function
    | "llrd1" -> Ok Lossmodel.Loss_model.llrd1
    | "llrd1-calibrated" -> Ok Lossmodel.Loss_model.llrd1_calibrated
    | "llrd2" -> Ok Lossmodel.Loss_model.llrd2
    | "internet" -> Ok Lossmodel.Loss_model.internet
    | s -> Error (`Msg (Printf.sprintf "unknown loss model %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf m.Lossmodel.Loss_model.name)

let dynamics_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "static" ] -> Ok Simulator.Static
    | [ "iid" ] -> Ok Simulator.Iid
    | [ "markov"; stay ] -> (
        try Ok (Simulator.Markov (float_of_string stay))
        with Failure _ -> Error (`Msg "markov:<stay> expects a float"))
    | [ "hetero"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ stay; active ] -> (
            try
              Ok
                (Simulator.Hetero
                   { stay = float_of_string stay; active = float_of_string active })
            with Failure _ -> Error (`Msg "hetero:<stay>,<active> expects floats"))
        | _ -> Error (`Msg "hetero:<stay>,<active>"))
    | _ -> Error (`Msg (Printf.sprintf "unknown dynamics %S" s))
  in
  let print ppf = function
    | Simulator.Static -> Format.pp_print_string ppf "static"
    | Simulator.Iid -> Format.pp_print_string ppf "iid"
    | Simulator.Markov s -> Format.fprintf ppf "markov:%g" s
    | Simulator.Hetero { stay; active } -> Format.fprintf ppf "hetero:%g,%g" stay active
  in
  Arg.conv (parse, print)

(* --- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let kind =
    Arg.(
      value
      & opt string "planetlab"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Topology family: $(b,tree), $(b,waxman), $(b,ba), $(b,hier-td), \
             $(b,hier-bu), $(b,planetlab), $(b,dimes), $(b,transit-stub).")
  in
  let nodes =
    Arg.(value & opt int 1000 & info [ "nodes" ] ~docv:"N" ~doc:"Core size.")
  in
  let hosts =
    Arg.(value & opt int 30 & info [ "hosts" ] ~docv:"H" ~doc:"End-host count.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output testbed file.")
  in
  let run kind nodes hosts seed output =
    let rng = Nstats.Rng.create seed in
    let tb =
      match kind with
      | "tree" -> Topology.Tree_gen.generate rng ~nodes ~max_branching:10 ()
      | "waxman" -> Topology.Waxman.generate rng ~nodes ~hosts ()
      | "ba" -> Topology.Barabasi_albert.generate rng ~nodes ~hosts ()
      | "hier-td" ->
          Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Top_down
            ~ases:(max 2 (nodes / 40)) ~routers_per_as:12 ~hosts
      | "hier-bu" ->
          Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Bottom_up
            ~ases:(max 2 (nodes / 40)) ~routers_per_as:12 ~hosts
      | "planetlab" -> Topology.Overlay.planetlab_like rng ~hosts ()
      | "transit-stub" -> Topology.Transit_stub.generate rng ~hosts ()
      | "dimes" -> Topology.Overlay.dimes_like rng ~hosts ()
      | other -> failwith (Printf.sprintf "unknown topology kind %S" other)
    in
    Topology.Serial.save output tb;
    let red = routing_of_testbed tb in
    Printf.printf "wrote %s: %s; %d paths x %d virtual links\n" output
      (Format.asprintf "%a" Topology.Testbed.pp tb)
      (Sparse.rows red.Topology.Routing.matrix)
      (Sparse.cols red.Topology.Routing.matrix)
  in
  let term = Term.(const run $ kind $ nodes $ hosts $ seed_arg $ output) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a topology and write a testbed file.") term

(* --- sim ---------------------------------------------------------------- *)

let sim_cmd =
  let snapshots =
    Arg.(value & opt int 51 & info [ "snapshots" ] ~docv:"M" ~doc:"Snapshot count.")
  in
  let probes =
    Arg.(value & opt int 1000 & info [ "probes" ] ~docv:"S" ~doc:"Probes per snapshot.")
  in
  let congestion =
    Arg.(
      value & opt float 0.1
      & info [ "congestion" ] ~docv:"P" ~doc:"Congested-link probability p.")
  in
  let model =
    Arg.(
      value
      & opt model_conv Lossmodel.Loss_model.llrd1_calibrated
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Loss model: $(b,llrd1), $(b,llrd1-calibrated), $(b,llrd2), \
             $(b,internet).")
  in
  let dynamics =
    Arg.(
      value
      & opt dynamics_conv Simulator.Static
      & info [ "dynamics" ] ~docv:"DYN"
          ~doc:
            "Congestion dynamics: $(b,static), $(b,iid), $(b,markov:STAY), \
             $(b,hetero:STAY,ACTIVE).")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output measurement file.")
  in
  let truth =
    Arg.(
      value
      & opt (some string) None
      & info [ "truth" ] ~docv:"FILE"
          ~doc:"Also write the final snapshot's true link loss rates.")
  in
  let run testbed snapshots probes congestion model dynamics fault_spec seed
      output truth =
    let tb = Topology.Serial.load testbed in
    let red = routing_of_testbed tb in
    let r = red.Topology.Routing.matrix in
    let rng = Nstats.Rng.create seed in
    let config =
      { (Snapshot.default_config model) with
        Snapshot.probes; congestion_prob = congestion }
    in
    let run_result = Simulator.run ~dynamics rng config r ~count:snapshots in
    let y, fault_schedule = Netsim.Faults.apply fault_spec run_result.Simulator.y in
    Netsim.Trace_io.save output y;
    Printf.printf "wrote %s: %d snapshots x %d paths\n" output (Matrix.rows y)
      (Sparse.rows r);
    if not (Netsim.Faults.is_none fault_spec) then
      Printf.printf "fault injection: %s\n" (Netsim.Faults.summary fault_schedule);
    Option.iter
      (fun path ->
        let last = run_result.Simulator.snapshots.(snapshots - 1) in
        let oc = open_out path in
        Array.iteri
          (fun k rate ->
            Printf.fprintf oc "%d %.8f %s\n" k rate
              (if last.Snapshot.congested.(k) then "congested" else "good"))
          last.Snapshot.realized;
        close_out oc;
        Printf.printf "wrote %s: true link states of the final snapshot\n" path)
      truth
  in
  let term =
    Term.(
      const run $ testbed_arg $ snapshots $ probes $ congestion $ model $ dynamics
      $ fault_spec_arg $ seed_arg $ output $ truth)
  in
  Cmd.v (Cmd.info "sim" ~doc:"Simulate a measurement campaign on a testbed.") term

(* --- infer --------------------------------------------------------------- *)

let infer_cmd =
  let threshold =
    Arg.(
      value & opt float 0.002
      & info [ "threshold" ] ~docv:"TL" ~doc:"Congestion threshold tl.")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"K" ~doc:"Print only the K lossiest links.")
  in
  let snapshots_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "snapshots" ] ~docv:"FILE"
          ~doc:
            "Repeated-inference mode: learn variances from every snapshot of \
             $(b,--measurements), build one factor-once inference plan, and \
             solve each snapshot row of $(i,FILE) through it (one line per \
             snapshot instead of the full link table).")
  in
  let warm_start_arg =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "With $(b,--snapshots) and $(b,--solver cgls): start each \
             snapshot's CGLS run from the previous snapshot's solution \
             (sequential chain; saves most iterations when consecutive \
             snapshots are similar). Results match the cold batch within \
             solver tolerance.")
  in
  let run testbed measurements snapshots fault_spec threshold top jobs solver
      cgls_tol cgls_max_iter precond partition warm_start obs_cfg =
    with_obs obs_cfg @@ fun () ->
    let log = Obs.Logger.default in
    let tb = Topology.Serial.load testbed in
    let red = routing_of_testbed tb in
    let r = red.Topology.Routing.matrix in
    let precond =
      precond_spec_of ~precond ~partition ~graph:tb.Topology.Testbed.graph ~red
    in
    let solver = solver_of ~solver ~cgls_tol ~cgls_max_iter ~precond in
    Obs.Logger.info log "loaded testbed"
      ~fields:
        [
          ("file", Obs.Field.Str testbed);
          ("paths", Obs.Field.Int (Sparse.rows r));
          ("links", Obs.Field.Int (Sparse.cols r));
        ];
    if jobs < 1 then failwith "--jobs must be at least 1";
    match snapshots with
    | None ->
        if warm_start then failwith "--warm-start requires --snapshots";
        (* The default diagnosis path is quarantine-aware: it loads
           permissively and reports a typed health verdict, so a file
           written by [sim --fault-spec] (or a ragged real-world
           collector) degrades gracefully instead of crashing or
           silently producing NaN loss rates. *)
        let y = Netsim.Trace_io.load ~strict:false measurements in
        if Matrix.cols y <> Sparse.rows r then
          failwith "measurement width does not match the testbed's path count";
        let y, fault_schedule = Netsim.Faults.apply fault_spec y in
        if not (Netsim.Faults.is_none fault_spec) then
          Printf.printf "fault injection: %s\n"
            (Netsim.Faults.summary fault_schedule);
        let m = Matrix.rows y - 1 in
        if m < 2 then
          failwith "need at least 3 snapshots (m >= 2 learning + 1 target)";
        let y_learn = Matrix.init m (Matrix.cols y) (fun l i -> Matrix.get y l i) in
        let y_now = Matrix.row y m in
        let checked = Core.Lia.infer_checked ~solver ~jobs ~r ~y_learn ~y_now () in
        (match checked.Core.Lia.result with
        | None ->
            Printf.printf "health: %s\n"
              (Core.Lia.health_summary checked.Core.Lia.health);
            raise Refusal
        | Some result ->
            Printf.printf "learned variances from %d snapshots\n" m;
            Printf.printf "health: %s\n"
              (Core.Lia.health_summary checked.Core.Lia.health);
            print_string
              (Core.Report.table
                 ~options:
                   { Core.Report.default_options with Core.Report.threshold; top }
                 ~graph:tb.Topology.Testbed.graph ~routing:red result))
    | Some file ->
        if not (Netsim.Faults.is_none fault_spec) then
          failwith "--fault-spec is not supported with --snapshots";
        let y = Netsim.Trace_io.load measurements in
        if Matrix.cols y <> Sparse.rows r then
          failwith "measurement width does not match the testbed's path count";
        if Matrix.rows y < 2 then
          failwith "need at least 2 learning snapshots to learn variances";
        let variances =
          match solver with
          | Core.Lia.Dense -> Core.Variance_estimator.estimate ~jobs ~r ~y ()
          | Core.Lia.Cgls { tol; max_iter; sample; precond } ->
              let options =
                {
                  Core.Variance_estimator.default_matfree_options with
                  Core.Variance_estimator.tol;
                  max_iter;
                  sample;
                  mf_precond = precond;
                }
              in
              let v, _, stats =
                Core.Variance_estimator.estimate_matfree_ess ~options ~jobs ~r
                  ~y ()
              in
              Obs.Logger.info log "matrix-free phase 1 converged"
                ~fields:
                  [
                    ( "iterations",
                      Obs.Field.Int stats.Linalg.Conjugate_gradient.iterations );
                    ( "relative_residual",
                      Obs.Field.Float
                        stats.Linalg.Conjugate_gradient.relative_residual );
                  ];
              v
        in
        Obs.Logger.info log "learned variances"
          ~fields:[ ("snapshots", Obs.Field.Int (Matrix.rows y)) ];
        let backend =
          match solver with
          | Core.Lia.Dense -> Core.Plan.Dense_qr
          | Core.Lia.Cgls { tol; max_iter; precond; _ } ->
              (* only the hierarchical preconditioner carries over to the
                 phase-2 system (mirrors Lia's backend translation) *)
              let precond =
                match precond with
                | Core.Variance_estimator.Pc_block_jacobi _ as p -> p
                | _ -> Core.Variance_estimator.Pc_none
              in
              Core.Plan.Cgls { tol; max_iter; precond }
        in
        let plan = Core.Lia.Plan.make ~jobs ~backend ~r ~variances () in
        Obs.Logger.info log "built inference plan"
          ~fields:
            [
              ("rank", Obs.Field.Int (Core.Plan.rank plan));
              ("deleted", Obs.Field.Int (Sparse.cols r - Core.Plan.rank plan));
            ];
        let ys = Netsim.Trace_io.load file in
        if Matrix.cols ys <> Sparse.rows r then
          failwith "snapshot width does not match the testbed's path count";
        if warm_start && backend = Core.Plan.Dense_qr then
          failwith "--warm-start requires --solver cgls";
        let results = Core.Lia.Plan.solve_batch ~jobs ~warm_start plan ys in
        Obs.Logger.info log "served snapshot batch"
          ~fields:[ ("snapshots", Obs.Field.Int (Array.length results)) ];
        Printf.printf "learned variances from %d snapshots\n" (Matrix.rows y);
        Printf.printf "plan: kept %d columns, eliminated %d; serving %d snapshots\n"
          (Core.Plan.rank plan)
          (Sparse.cols r - Core.Plan.rank plan)
          (Array.length results);
        Printf.printf "%-9s %-10s %-11s %s\n" "snapshot" "congested" "max loss"
          "lossiest link";
        Array.iteri
          (fun l res ->
            let congested = Core.Lia.congested res ~threshold in
            let count =
              Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 congested
            in
            let worst = Linalg.Vector.max_index res.Core.Lia.loss_rates in
            Printf.printf "%-9d %-10d %-11.5f %d\n" l count
              res.Core.Lia.loss_rates.(worst) worst)
          results
  in
  let term =
    Term.(
      const run $ testbed_arg $ measurements_arg $ snapshots_arg $ fault_spec_arg
      $ threshold $ top $ jobs_arg $ solver_arg $ cgls_tol_arg $ cgls_max_iter_arg
      $ precond_arg $ partition_arg $ warm_start_arg $ obs_term)
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Run LIA: learn variances on all but the last snapshot, infer link \
          loss rates on the last. With $(b,--snapshots), learn variances \
          once, then serve every snapshot of the file through a single \
          factor-once inference plan.")
    term

(* --- validate ------------------------------------------------------------- *)

let validate_cmd =
  let epsilon =
    Arg.(
      value & opt float 0.005
      & info [ "epsilon" ] ~docv:"EPS" ~doc:"Tolerance of eq. (11).")
  in
  let run testbed measurements epsilon seed =
    let tb = Topology.Serial.load testbed in
    let red = routing_of_testbed tb in
    let r = red.Topology.Routing.matrix in
    let y = Netsim.Trace_io.load measurements in
    let m = Matrix.rows y - 1 in
    if m < 2 then failwith "need at least 3 snapshots";
    let y_learn = Matrix.init m (Matrix.cols y) (fun l i -> Matrix.get y l i) in
    let y_now = Matrix.row y m in
    let rng = Nstats.Rng.create seed in
    let report =
      Core.Validation.cross_validate rng ~r ~y_learn ~y_now ~epsilon
    in
    Printf.printf "consistent validation paths: %d / %d (%.1f%%) at epsilon %g\n"
      report.Core.Validation.consistent report.Core.Validation.total
      (100. *. report.Core.Validation.fraction)
      epsilon
  in
  let term = Term.(const run $ testbed_arg $ measurements_arg $ epsilon $ seed_arg) in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Cross-validate inferred rates on held-out paths (eq. 11).")
    term

(* --- check ---------------------------------------------------------------- *)

let check_cmd =
  let run testbed =
    let tb = Topology.Serial.load testbed in
    let paths =
      Topology.Routing.paths_between tb.Topology.Testbed.graph
        ~beacons:tb.Topology.Testbed.beacons
        ~destinations:tb.Topology.Testbed.destinations
    in
    Printf.printf "assumptions on %d measured paths:\n" (Array.length paths);
    List.iter
      (fun (label, ok) ->
        Printf.printf "  %-45s %s\n" label (if ok then "ok" else "VIOLATED"))
      (Core.Identifiability.assumptions_report tb.Topology.Testbed.graph paths);
    let red = routing_of_testbed tb in
    let r = red.Topology.Routing.matrix in
    Printf.printf "reduced routing matrix: %d paths x %d virtual links\n"
      (Sparse.rows r) (Sparse.cols r);
    (match Core.Identifiability.check r with
    | Core.Identifiability.Identifiable ->
        Printf.printf "link variances: IDENTIFIABLE (Theorem 1 premise holds)\n"
    | Core.Identifiability.Dependent deps ->
        Printf.printf "link variances NOT identifiable; entangled columns: %s\n"
          (String.concat ", " (List.map string_of_int deps)));
    let rng = Nstats.Rng.create 0 in
    let schedule = Netsim.Schedule.build rng Netsim.Schedule.default_config red in
    Printf.printf
      "probe schedule (40B/10ms trains, 100 KB/s cap): %d rounds, %.0f s per \
       snapshot sweep\n"
      (Array.length schedule.Netsim.Schedule.rounds)
      schedule.Netsim.Schedule.snapshot_seconds
  in
  let term = Term.(const run $ testbed_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check a testbed's measurement assumptions, variance \
          identifiability, and probing cost.")
    term

(* --- report ---------------------------------------------------------------- *)

let report_cmd =
  let input name ~doc =
    Arg.(value & opt (some file) None & info [ name ] ~docv:"FILE" ~doc)
  in
  let recorder_arg =
    input "recorder"
      ~doc:"Flight-recorder JSONL dump written by $(b,--flight-recorder)."
  in
  let trace_arg =
    input "trace" ~doc:"Chrome trace-event JSONL written by $(b,--trace)."
  in
  let metrics_arg =
    input "metrics" ~doc:"Prometheus text dump written by $(b,--metrics)."
  in
  let convergence_arg =
    input "convergence"
      ~doc:"Per-iteration solver JSONL written by $(b,--convergence)."
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"Show the N slowest individual spans.")
  in
  let tail_arg =
    Arg.(
      value & opt int 8
      & info [ "tail" ] ~docv:"N"
          ~doc:"Show the last N per-iteration residuals of the focus solve.")
  in
  let read path = In_channel.with_open_text path In_channel.input_all in
  let run recorder trace metrics convergence top tail =
    if recorder = None && trace = None && metrics = None && convergence = None
    then
      failwith
        "report needs at least one input (--recorder, --trace, --metrics, or \
         --convergence)";
    print_string
      (Obs.Report.render
         ?recorder:(Option.map read recorder)
         ?trace:(Option.map read trace)
         ?metrics:(Option.map read metrics)
         ?convergence:(Option.map read convergence)
         ~top ~tail ())
  in
  let term =
    Term.(
      const run $ recorder_arg $ trace_arg $ metrics_arg $ convergence_arg
      $ top_arg $ tail_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the telemetry of a previous run (flight-recorder dump, \
          trace, metrics, convergence stream) as one page: per-phase \
          wall/alloc profile, slowest spans, a per-solve convergence table \
          with the residual tail, and the health verdict with quarantine \
          counts.")
    term

(* --- crossval --------------------------------------------------------------- *)

let crossval_cmd =
  let grid_arg =
    Arg.(
      value & opt string ""
      & info [ "grid" ] ~docv:"GRID"
          ~doc:
            "Scenario grid: semicolon-separated axes with comma-separated \
             values, e.g. \
             $(b,family=tree,planetlab;size=15,30;model=llrd1;fault=none|drop=0.2,seed=7). \
             Fault alternatives are $(b,|)-separated (specs contain commas). \
             Omitted axes keep their defaults \
             ($(b,family=tree,planetlab;size=15;model=llrd1-calibrated;fault=none)).")
  in
  let seeds_arg =
    Arg.(
      value & opt string "1,2"
      & info [ "seeds" ] ~docv:"SEEDS"
          ~doc:
            "Comma-separated scenario seeds; every grid point runs once per \
             seed and the report aggregates across them. Same seeds, same \
             grid: byte-identical report.")
  in
  let estimators_arg =
    Arg.(
      value & opt string "all"
      & info [ "estimators" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated backend names from the registry (or $(b,all)): \
             $(b,minc), $(b,em), $(b,mils), $(b,scfs), $(b,clink), \
             $(b,fourier), $(b,plan), $(b,lia-dense), $(b,lia-cgls).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Also write one JSON object per (scenario, estimator) cell — \
             including the wall-time and allocation telemetry the text table \
             omits — to $(i,FILE).")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.01
      & info [ "threshold" ] ~docv:"TL"
          ~doc:
            "Lossy-link threshold for both ground truth and detection \
             scoring (the paper's 1%).")
  in
  let snapshots_arg =
    Arg.(
      value & opt int 40
      & info [ "snapshots" ] ~docv:"M"
          ~doc:"Campaign length per scenario, including the target snapshot.")
  in
  let probes_arg =
    Arg.(
      value & opt int 1000
      & info [ "probes" ] ~docv:"S" ~doc:"Probes per snapshot.")
  in
  let timing_arg =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Append mean wall-time and allocation columns to the table. Off \
             by default so the report stays byte-identical across reruns; \
             the $(b,--out) JSONL always carries both.")
  in
  let run grid seeds estimators out threshold snapshots probes timing jobs obs
      =
    with_obs obs (fun () ->
        let grid =
          match Core.Crossval.parse_grid grid with
          | Ok g -> g
          | Error msg -> failwith msg
        in
        let seeds =
          String.split_on_char ',' seeds
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some n -> n
                 | None -> failwith (Printf.sprintf "malformed seed %S" s))
        in
        if seeds = [] then failwith "no seeds given";
        let ests =
          if estimators = "all" then Core.Estimator.all
          else
            String.split_on_char ',' estimators
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map (fun name ->
                   match Core.Estimator.find name with
                   | Some e -> e
                   | None ->
                       failwith
                         (Printf.sprintf "unknown estimator %S (known: %s)"
                            name
                            (String.concat ", " Core.Estimator.names)))
        in
        if ests = [] then failwith "no estimators selected";
        let scenarios = Core.Crossval.scenarios grid ~seeds in
        let cells =
          Core.Crossval.run ~jobs ~threshold ~snapshots ~probes
            ~estimators:ests ~scenarios ()
        in
        print_string (Core.Crossval.render ~timing cells);
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Core.Crossval.to_jsonl cells);
            close_out oc;
            Printf.printf "wrote %s: %d cells\n" path (Array.length cells))
          out)
  in
  let term =
    Term.(
      const run $ grid_arg $ seeds_arg $ estimators_arg $ out_arg
      $ threshold_arg $ snapshots_arg $ probes_arg $ timing_arg $ jobs_arg
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "crossval"
       ~doc:
         "Cross-validate every capable estimator backend on identical \
          simulated (and optionally fault-injected) scenarios and render a \
          Table-1-style comparison grid.")
    term

let main =
  let doc = "network loss tomography with second-order statistics (LIA)" in
  Cmd.group (Cmd.info "lia_cli" ~doc)
    [
      gen_cmd;
      sim_cmd;
      infer_cmd;
      validate_cmd;
      check_cmd;
      report_cmd;
      crossval_cmd;
    ]

let () =
  match Cmd.eval_value ~catch:false main with
  | Ok _ -> ()
  | Error _ -> exit 124
  | exception Refusal -> exit 3
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Printf.eprintf "lia_cli: %s\n" msg;
      exit 2
