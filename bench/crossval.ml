(* crossval-smoke: a tiny scenario matrix (one tree family, clean and
   faulted alternatives, two seeds) pushed through the full estimator
   registry, asserting the runner's contracts: one typed outcome per
   cell, no exception escapes, and a render that is invariant under the
   worker count. Wired into the [crossval-smoke] dune alias so the
   registry adapters and the scenario runner cannot rot.

   crossval-grid: a larger grid timed per estimator; its aggregates are
   the source of the "crossval_grid" section of BENCH_timing.json. *)

module Crossval = Core.Crossval
module Estimator = Core.Estimator
module Faults = Netsim.Faults

let parse_fault s =
  match Faults.parse s with
  | Ok t -> t
  | Error msg -> failwith (Printf.sprintf "crossval bench: %s" msg)

let grid_or_fail s =
  match Crossval.parse_grid s with
  | Ok g -> g
  | Error msg -> failwith (Printf.sprintf "crossval bench: %s" msg)

let run_smoke () =
  Exp_common.header "crossval smoke (scenario matrix x estimator registry)";
  let grid =
    {
      Crossval.families = [ "tree"; "planetlab" ];
      sizes = [ 12 ];
      models = [ "llrd1-calibrated" ];
      faults = [ Faults.none; parse_fault "seed=3,drop=0.2,miss=0.1" ];
    }
  in
  let scenarios = Crossval.scenarios grid ~seeds:[ 1; 2 ] in
  let run jobs =
    Crossval.run ~jobs ~snapshots:10 ~estimators:Estimator.all ~scenarios ()
  in
  let cells = run 2 in
  let expected = List.length scenarios * List.length Estimator.all in
  if Array.length cells <> expected then
    failwith
      (Printf.sprintf "crossval-smoke: %d cells, expected %d"
         (Array.length cells) expected);
  (* the acceptance trichotomy on every cell: a recognized health label
     or a non-empty skip/refusal reason, never an escape *)
  Array.iter
    (fun c ->
      match c.Crossval.outcome with
      | Crossval.Scored { health; _ } ->
          if not (List.mem health [ "clean"; "degraded" ]) then
            failwith
              (Printf.sprintf "crossval-smoke: unrecognized health %S in %s/%s"
                 health
                 (Crossval.scenario_label c.Crossval.scenario)
                 c.Crossval.estimator)
      | Crossval.Refused reason | Crossval.Skipped reason ->
          if reason = "" then
            failwith
              (Printf.sprintf "crossval-smoke: empty reason in %s/%s"
                 (Crossval.scenario_label c.Crossval.scenario)
                 c.Crossval.estimator))
    cells;
  (* worker-count invariance of the rendered table *)
  if Crossval.render cells <> Crossval.render (run 1) then
    failwith "crossval-smoke: render differs between jobs=2 and jobs=1";
  print_string (Crossval.render cells);
  let count pred = Array.fold_left (fun a c -> if pred c then a + 1 else a) 0 cells in
  let scored =
    count (fun c ->
        match c.Crossval.outcome with Crossval.Scored _ -> true | _ -> false)
  in
  let skipped =
    count (fun c ->
        match c.Crossval.outcome with Crossval.Skipped _ -> true | _ -> false)
  in
  Exp_common.note
    "%d cells: %d scored, %d skipped, %d refused; table jobs-invariant"
    (Array.length cells) scored skipped
    (Array.length cells - scored - skipped)

(* Per-estimator aggregates over a moderate grid; prints the JSON object
   recorded as BENCH_timing.json "crossval_grid". *)
let run_grid () =
  Exp_common.header "crossval grid (per-estimator cost/accuracy aggregates)";
  let grid =
    grid_or_fail
      "family=tree,planetlab;size=16;fault=none|seed=3,drop=0.2,miss=0.1"
  in
  let scenarios = Crossval.scenarios grid ~seeds:[ 1; 2; 3; 4 ] in
  let cells =
    Crossval.run ~snapshots:40 ~estimators:Estimator.all ~scenarios ()
  in
  print_string (Crossval.render ~timing:true cells);
  let agg name =
    let mine =
      Array.to_list cells
      |> List.filter (fun c -> c.Crossval.estimator = name)
    in
    let scored =
      List.filter_map
        (fun c ->
          match c.Crossval.outcome with
          | Crossval.Scored { score; _ } -> Some (c, score)
          | _ -> None)
        mine
    in
    let mean f xs =
      match xs with
      | [] -> None
      | _ ->
          Some (List.fold_left (fun a x -> a +. f x) 0. xs
                /. float_of_int (List.length xs))
    in
    let wall = mean (fun (c, _) -> c.Crossval.wall_s) scored in
    let alloc = mean (fun (c, _) -> c.Crossval.alloc_words) scored in
    let abs_err =
      mean (fun x -> x)
        (List.filter_map (fun (_, s) -> s.Crossval.abs_mean) scored)
    in
    (name, List.length mine, List.length scored, wall, alloc, abs_err)
  in
  let opt fmt = function Some v -> Printf.sprintf fmt v | None -> "null" in
  Printf.printf "\n  \"crossval_grid\": {\n";
  Printf.printf
    "    \"grid\": \"family=tree,planetlab;size=16;fault=none|seed=3,drop=0.2,miss=0.1\",\n";
  Printf.printf "    \"seeds\": 4, \"snapshots\": 40,\n";
  Printf.printf "    \"estimators\": [\n";
  let lines =
    List.map
      (fun name ->
        let name, cells, scored, wall, alloc, abs_err = agg name in
        Printf.sprintf
          "      {\"name\": %S, \"cells\": %d, \"scored\": %d, \
           \"mean_wall_s\": %s, \"mean_alloc_words\": %s, \"mean_abs_err\": %s}"
          name cells scored
          (opt "%.6f" wall) (opt "%.0f" alloc) (opt "%.6f" abs_err))
      Estimator.names
  in
  print_string (String.concat ",\n" lines);
  Printf.printf "\n    ]\n  }\n"
