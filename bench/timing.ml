(* Section 6.4: running times, as Bechamel micro-benchmarks.

   Paper (Matlab, 2 GHz Pentium 4): solving the first-order system is
   milliseconds, solving (9) ~10x longer, the inference runs in under a
   second once A is known; computing A took up to an hour (they only do it
   once). Our OCaml pipeline is measured per phase below, including the
   method ablation (streaming normal equations vs dense QR). *)

open Bechamel
open Toolkit

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

let make_inputs () =
  let rng = Nstats.Rng.create 4242 in
  let tb = Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4 ~max_branching:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:51 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
  let variances = Core.Variance_estimator.estimate ~r ~y:y_learn () in
  (r, y_learn, target, variances)

let tests (r, y_learn, target, variances) =
  let y_now = target.Netsim.Snapshot.y in
  let kept = (Core.Rank_reduction.eliminate r variances).Core.Rank_reduction.kept in
  let r_star = Sparse.dense_cols r kept in
  (* ablation inputs: the same normal-equation system solved two ways *)
  let a = Core.Augmented.build r in
  let gram = Sparse.normal_matrix a in
  let rhs = Sparse.normal_rhs a (Core.Covariance.sigma_star y_learn) in
  Test.make_grouped ~name:"lia"
    [
      Test.make ~name:"build-A" (Staged.stage (fun () -> Core.Augmented.build r));
      Test.make ~name:"variances-streaming"
        (Staged.stage (fun () ->
             Core.Variance_estimator.estimate_streaming ~r ~y:y_learn ()));
      Test.make ~name:"rank-reduction"
        (Staged.stage (fun () -> Core.Rank_reduction.eliminate r variances));
      Test.make ~name:"solve-eq9"
        (Staged.stage (fun () -> Linalg.Qr.solve r_star y_now));
      Test.make ~name:"phase2-full"
        (Staged.stage (fun () ->
             Core.Lia.infer_with_variances ~r ~variances ~y_now));
      Test.make ~name:"plan-build"
        (Staged.stage (fun () -> Core.Plan.make ~r ~variances ()));
      Test.make ~name:"plan-solve"
        (Staged.stage
           (let plan = Core.Plan.make ~r ~variances () in
            fun () -> Core.Plan.solve plan y_now));
      Test.make ~name:"normal-solve-cholesky"
        (Staged.stage (fun () ->
             Linalg.Cholesky.solve_vec
               (Linalg.Cholesky.factorize_regularized gram)
               rhs));
      Test.make ~name:"normal-solve-cg"
        (Staged.stage (fun () ->
             Linalg.Conjugate_gradient.solve ~tol:1e-8 gram rhs));
    ]

let run () =
  Exp_common.header "Section 6.4: running times (1000-node tree, m = 50)";
  let inputs = make_inputs () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests inputs) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  Exp_common.row "%-30s %-14s" "phase" "time/run";
  List.iter
    (fun name ->
      let t = Hashtbl.find results name in
      match Analyze.OLS.estimates t with
      | Some [ ns ] ->
          let human =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Exp_common.row "%-30s %-14s" name human
      | _ -> Exp_common.row "%-30s (no estimate)" name)
    names;
  Exp_common.note
    "paper: inference in under a second; A computed once (up to an hour in Matlab)";
  (* scalability sweep: the Section 6.4 claim that the moment system of
     networks with thousands of nodes solves in seconds *)
  Exp_common.subheader "scalability of the variance solve (PlanetLab-like)";
  Exp_common.row "%-8s %-8s %-8s %-12s %-12s" "hosts" "paths" "links"
    "learn (s)" "phase2 (s)";
  List.iter
    (fun hosts ->
      let rng = Nstats.Rng.create (9000 + hosts) in
      let tb = Topology.Overlay.planetlab_like rng ~hosts () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      let run = Netsim.Simulator.run rng config r ~count:51 in
      let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
      let t0 = Unix.gettimeofday () in
      let v = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
      let t_learn = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      ignore
        (Core.Lia.infer_with_variances ~r ~variances:v
           ~y_now:target.Netsim.Snapshot.y);
      let t_phase2 = Unix.gettimeofday () -. t0 in
      Exp_common.row "%-8d %-8d %-8d %-12.2f %-12.2f" hosts (Sparse.rows r)
        (Sparse.cols r) t_learn t_phase2)
    [ 10; 20; 30; 45 ];
  Exp_common.note
    "the 45-host overlay spans ~1400 routers; the whole inference stays in seconds"

(* --- multicore jobs sweep -> BENCH_timing.json ------------------------- *)

(* Wall-clock of the three parallel kernels for jobs in {1, 2, 4, 8} over
   growing PlanetLab-like overlays, written as machine-readable JSON so
   later PRs have a perf trajectory to compare against. The kernels are
   bit-for-bit jobs-invariant, so only time varies. *)

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let kernels ~r ~y_learn ~a =
  [
    ( "estimate_streaming",
      fun jobs ->
        ignore (Core.Variance_estimator.estimate_streaming ~jobs ~r ~y:y_learn ()) );
    ( "covariance_matrix",
      fun jobs -> ignore (Nstats.Descriptive.covariance_matrix ~jobs y_learn) );
    ("augmented_build", fun jobs -> ignore (Core.Augmented.build ~jobs r));
    ("normal_matrix", fun jobs -> ignore (Sparse.normal_matrix ~jobs a));
  ]

(* Factor-once serving path: one Plan.make + Plan.solve_batch over
   [plan_snapshots] measurement rows, against the same rows pushed one by
   one through the historical per-call pipeline (rank reduction + fresh
   QR each time). Also asserts the jobs-invariance contract on the
   batch's loss rates before recording anything. *)
let plan_stats ~jobs_list ~reps ~r ~variances ~ys =
  let m = Linalg.Matrix.rows ys in
  let t_build = time_best ~reps (fun () -> ignore (Core.Plan.make ~r ~variances ())) in
  let plan = Core.Plan.make ~r ~variances () in
  let t_batch = time_best ~reps (fun () -> ignore (Core.Plan.solve_batch plan ys)) in
  let t_indep =
    time_best ~reps:1 (fun () ->
        for l = 0 to m - 1 do
          ignore
            (Core.Lia.infer_with_variances ~r ~variances
               ~y_now:(Linalg.Matrix.row ys l))
        done)
  in
  let reference = Core.Plan.solve_batch ~jobs:1 plan ys in
  List.iter
    (fun jobs ->
      let got = Core.Plan.solve_batch ~jobs plan ys in
      Array.iteri
        (fun l res ->
          let ok =
            Array.for_all2
              (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
              reference.(l).Core.Plan.loss_rates res.Core.Plan.loss_rates
          in
          if not ok then
            failwith
              (Printf.sprintf
                 "plan: jobs=%d loss rates differ from jobs=1 on snapshot %d"
                 jobs l))
        got)
    jobs_list;
  (t_build, t_batch, t_indep)

let sweep ~out ~jobs_list ~reps ~snapshots ~plan_snapshots ~hosts_list () =
  Exp_common.header "multicore jobs sweep (PlanetLab-like overlays)";
  Exp_common.note "host recommended domain count: %d"
    (Domain.recommended_domain_count ());
  (* spawn every pool up front so domain startup never lands in a timing *)
  List.iter
    (fun jobs -> if jobs > 1 then ignore (Parallel.Pool.get ~jobs))
    jobs_list;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"bench\": \"lia-parallel-kernels\",\n";
  Printf.bprintf buf
    "  \"generated\": \"dune exec bench/main.exe -- timing-sweep\",\n";
  Printf.bprintf buf "  \"host_recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.bprintf buf "  \"jobs_swept\": [%s],\n"
    (String.concat ", " (List.map string_of_int jobs_list));
  Printf.bprintf buf "  \"topologies\": [\n";
  List.iteri
    (fun ti hosts ->
      let rng = Nstats.Rng.create (7100 + hosts) in
      let tb = Topology.Overlay.planetlab_like rng ~hosts () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
      let y_learn, _ = Netsim.Simulator.split_learning run ~learning:snapshots in
      let a = Core.Augmented.build r in
      Exp_common.subheader
        (Printf.sprintf "%d hosts: %d paths x %d links, m = %d" hosts
           (Sparse.rows r) (Sparse.cols r) snapshots);
      Exp_common.row "%-22s %-6s %-12s %-10s" "kernel" "jobs" "seconds"
        "speedup";
      if ti > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "    {\n      \"kind\": \"planetlab-like\",\n      \"hosts\": %d,\n\
        \      \"paths\": %d,\n      \"links\": %d,\n      \"snapshots\": %d,\n\
        \      \"kernels\": [\n"
        hosts (Sparse.rows r) (Sparse.cols r) snapshots;
      List.iteri
        (fun ki (name, kernel) ->
          let times =
            List.map (fun jobs -> (jobs, time_best ~reps (fun () -> kernel jobs))) jobs_list
          in
          let t1 =
            match List.assoc_opt 1 times with
            | Some t -> t
            | None -> snd (List.hd times)
          in
          if ki > 0 then Buffer.add_string buf ",\n";
          Printf.bprintf buf
            "        {\n          \"name\": %S,\n          \"runs\": [" name;
          List.iteri
            (fun ji (jobs, t) ->
              Exp_common.row "%-22s %-6d %-12.4f %-10.2f" name jobs t (t1 /. t);
              if ji > 0 then Buffer.add_string buf ", ";
              Printf.bprintf buf
                "{\"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_jobs1\": %.3f}"
                jobs t (t1 /. t))
            times;
          Buffer.add_string buf "]\n        }")
        (kernels ~r ~y_learn ~a);
      Buffer.add_string buf "\n      ],\n";
      (* factor-once plan vs per-call Lia.infer_with_variances *)
      let variances = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
      let ys =
        (Netsim.Simulator.run (Nstats.Rng.create (7700 + hosts)) config r
           ~count:plan_snapshots)
          .Netsim.Simulator.y
      in
      let t_build, t_batch, t_indep =
        plan_stats ~jobs_list ~reps ~r ~variances ~ys
      in
      let t_plan = t_build +. t_batch in
      let speedup = t_indep /. t_plan in
      Exp_common.row "%-22s %-6s %-12s %-10s" "plan (factor once)" "-"
        (Printf.sprintf "%.4f" t_plan)
        (Printf.sprintf "%.1fx" speedup);
      Exp_common.note
        "plan: build %.2f ms + %d solves at %.1f us each = %.2f ms; %d \
         per-call infers = %.2f ms (%.1fx, bit-identical outputs for jobs in \
         {%s})"
        (1e3 *. t_build) plan_snapshots
        (1e6 *. t_batch /. float_of_int plan_snapshots)
        (1e3 *. t_plan) plan_snapshots (1e3 *. t_indep) speedup
        (String.concat ", " (List.map string_of_int jobs_list));
      Printf.bprintf buf
        "      \"plan\": {\n\
        \        \"snapshots\": %d,\n\
        \        \"plan_build_ms\": %.4f,\n\
        \        \"solve_per_snapshot_us\": %.3f,\n\
        \        \"plan_total_ms\": %.4f,\n\
        \        \"independent_infer_ms\": %.4f,\n\
        \        \"amortized_speedup_vs_infer\": %.2f\n\
        \      }\n    }"
        plan_snapshots (1e3 *. t_build)
        (1e6 *. t_batch /. float_of_int plan_snapshots)
        (1e3 *. t_plan) (1e3 *. t_indep) speedup)
    hosts_list;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Exp_common.note "wrote %s" out

let run_sweep () =
  sweep ~out:"BENCH_timing.json" ~jobs_list:[ 1; 2; 4; 8 ] ~reps:3 ~snapshots:50
    ~plan_snapshots:100 ~hosts_list:[ 12; 20; 32 ] ()

(* tiny sizes, wired into the [bench-smoke] dune alias (and through it into
   the default test tree) so the sweep and its JSON writer cannot rot *)
let run_smoke () =
  sweep ~out:"bench_smoke.json" ~jobs_list:[ 1; 2 ] ~reps:1 ~snapshots:8
    ~plan_snapshots:10 ~hosts_list:[ 6 ] ()
