(* Section 6.4: running times, as Bechamel micro-benchmarks.

   Paper (Matlab, 2 GHz Pentium 4): solving the first-order system is
   milliseconds, solving (9) ~10x longer, the inference runs in under a
   second once A is known; computing A took up to an hour (they only do it
   once). Our OCaml pipeline is measured per phase below, including the
   method ablation (streaming normal equations vs dense QR). *)

open Bechamel
open Toolkit

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

let make_inputs () =
  let rng = Nstats.Rng.create 4242 in
  let tb = Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4 ~max_branching:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:51 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
  let variances = Core.Variance_estimator.estimate ~r ~y:y_learn () in
  (r, y_learn, target, variances)

let tests (r, y_learn, target, variances) =
  let y_now = target.Netsim.Snapshot.y in
  let kept = (Core.Rank_reduction.eliminate r variances).Core.Rank_reduction.kept in
  let r_star = Sparse.dense_cols r kept in
  (* ablation inputs: the same normal-equation system solved two ways *)
  let a = Core.Augmented.build r in
  let gram = Sparse.normal_matrix a in
  let rhs = Sparse.normal_rhs a (Core.Covariance.sigma_star y_learn) in
  Test.make_grouped ~name:"lia"
    [
      Test.make ~name:"build-A" (Staged.stage (fun () -> Core.Augmented.build r));
      Test.make ~name:"variances-streaming"
        (Staged.stage (fun () ->
             Core.Variance_estimator.estimate_streaming ~r ~y:y_learn ()));
      Test.make ~name:"rank-reduction"
        (Staged.stage (fun () -> Core.Rank_reduction.eliminate r variances));
      Test.make ~name:"solve-eq9"
        (Staged.stage (fun () -> Linalg.Qr.solve r_star y_now));
      Test.make ~name:"phase2-full"
        (Staged.stage (fun () ->
             Core.Lia.infer_with_variances ~r ~variances ~y_now));
      Test.make ~name:"plan-build"
        (Staged.stage (fun () -> Core.Plan.make ~r ~variances ()));
      Test.make ~name:"plan-solve"
        (Staged.stage
           (let plan = Core.Plan.make ~r ~variances () in
            fun () -> Core.Plan.solve plan y_now));
      Test.make ~name:"normal-solve-cholesky"
        (Staged.stage (fun () ->
             Linalg.Cholesky.solve_vec
               (Linalg.Cholesky.factorize_regularized gram)
               rhs));
      Test.make ~name:"normal-solve-cg"
        (Staged.stage (fun () ->
             Linalg.Conjugate_gradient.solve ~tol:1e-8 gram rhs));
    ]

let run () =
  Exp_common.header "Section 6.4: running times (1000-node tree, m = 50)";
  let inputs = make_inputs () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests inputs) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  Exp_common.row "%-30s %-14s" "phase" "time/run";
  List.iter
    (fun name ->
      let t = Hashtbl.find results name in
      match Analyze.OLS.estimates t with
      | Some [ ns ] ->
          let human =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Exp_common.row "%-30s %-14s" name human
      | _ -> Exp_common.row "%-30s (no estimate)" name)
    names;
  Exp_common.note
    "paper: inference in under a second; A computed once (up to an hour in Matlab)";
  (* scalability sweep: the Section 6.4 claim that the moment system of
     networks with thousands of nodes solves in seconds *)
  Exp_common.subheader "scalability of the variance solve (PlanetLab-like)";
  Exp_common.row "%-8s %-8s %-8s %-12s %-12s" "hosts" "paths" "links"
    "learn (s)" "phase2 (s)";
  List.iter
    (fun hosts ->
      let rng = Nstats.Rng.create (9000 + hosts) in
      let tb = Topology.Overlay.planetlab_like rng ~hosts () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      let run = Netsim.Simulator.run rng config r ~count:51 in
      let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
      let t0 = Unix.gettimeofday () in
      let v = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
      let t_learn = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      ignore
        (Core.Lia.infer_with_variances ~r ~variances:v
           ~y_now:target.Netsim.Snapshot.y);
      let t_phase2 = Unix.gettimeofday () -. t0 in
      Exp_common.row "%-8d %-8d %-8d %-12.2f %-12.2f" hosts (Sparse.rows r)
        (Sparse.cols r) t_learn t_phase2)
    [ 10; 20; 30; 45 ];
  Exp_common.note
    "the 45-host overlay spans ~1400 routers; the whole inference stays in seconds"

(* --- multicore jobs sweep -> BENCH_timing.json ------------------------- *)

(* Wall-clock of the three parallel kernels for jobs in {1, 2, 4, 8} over
   growing PlanetLab-like overlays, written as machine-readable JSON so
   later PRs have a perf trajectory to compare against. The kernels are
   bit-for-bit jobs-invariant, so only time varies. *)

(* the bench shares lib/obs's clock, so wall-clock numbers here and
   histogram observations in the metrics registry come from one source *)
let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Obs.Clock.now_ns () in
    f ();
    best := Float.min !best (Obs.Clock.seconds_since t0)
  done;
  !best

let kernels ~r ~y_learn ~a =
  [
    ( "estimate_streaming",
      fun jobs ->
        ignore (Core.Variance_estimator.estimate_streaming ~jobs ~r ~y:y_learn ()) );
    ( "covariance_matrix",
      fun jobs -> ignore (Nstats.Descriptive.covariance_matrix ~jobs y_learn) );
    ("augmented_build", fun jobs -> ignore (Core.Augmented.build ~jobs r));
    ("normal_matrix", fun jobs -> ignore (Sparse.normal_matrix ~jobs a));
  ]

(* Factor-once serving path: one Plan.make + Plan.solve_batch over
   [plan_snapshots] measurement rows, against the same rows pushed one by
   one through the historical per-call pipeline (rank reduction + fresh
   QR each time). Also asserts the jobs-invariance contract on the
   batch's loss rates before recording anything. *)
let plan_stats ~jobs_list ~reps ~r ~variances ~ys =
  let m = Linalg.Matrix.rows ys in
  let t_build = time_best ~reps (fun () -> ignore (Core.Plan.make ~r ~variances ())) in
  let plan = Core.Plan.make ~r ~variances () in
  (* the timed batch runs with the metrics registry enabled and the
     per-snapshot figure is read back from its histogram, so the JSON and
     an operator's --metrics dump can never disagree about this number *)
  let reg = Obs.Metrics.default in
  let h_solve = Obs.Metrics.histogram reg "plan_solve_snapshot_seconds" in
  Obs.Metrics.reset reg;
  Obs.Metrics.enable reg;
  let t_batch = time_best ~reps (fun () -> ignore (Core.Plan.solve_batch plan ys)) in
  Obs.Metrics.disable reg;
  let solve_per_snapshot_s =
    Obs.Metrics.histogram_sum h_solve
    /. float_of_int (max 1 (Obs.Metrics.histogram_count h_solve))
  in
  Obs.Metrics.reset reg;
  let t_indep =
    time_best ~reps:1 (fun () ->
        for l = 0 to m - 1 do
          ignore
            (Core.Lia.infer_with_variances ~r ~variances
               ~y_now:(Linalg.Matrix.row ys l))
        done)
  in
  let reference = Core.Plan.solve_batch ~jobs:1 plan ys in
  List.iter
    (fun jobs ->
      let got = Core.Plan.solve_batch ~jobs plan ys in
      Array.iteri
        (fun l res ->
          let ok =
            Array.for_all2
              (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
              reference.(l).Core.Plan.loss_rates res.Core.Plan.loss_rates
          in
          if not ok then
            failwith
              (Printf.sprintf
                 "plan: jobs=%d loss rates differ from jobs=1 on snapshot %d"
                 jobs l))
        got)
    jobs_list;
  (t_build, t_batch, t_indep, solve_per_snapshot_s)

(* Tentpole acceptance: probes compiled into the kernels must be ~free
   when the registry is disabled and cheap when fully enabled (metrics on,
   trace streaming to a sink). Measured on the sweep's largest overlay;
   target < 2% enabled-vs-disabled. *)
let obs_overhead ~reps ~r ~y_learn =
  let reg = Obs.Metrics.default in
  let kernel () =
    ignore (Core.Variance_estimator.estimate_streaming ~r ~y:y_learn ())
  in
  Obs.Metrics.disable reg;
  kernel ();
  let t_off = time_best ~reps kernel in
  Obs.Metrics.reset reg;
  Obs.Metrics.enable reg;
  Obs.Trace.set_sink Obs.Trace.default (Some (Obs.Sink.file Filename.null));
  (* one warm-up run per configuration so one-time costs (first span's
     formatting path, sink buffers) don't masquerade as per-call overhead *)
  kernel ();
  let t_on = time_best ~reps kernel in
  Obs.Trace.close Obs.Trace.default;
  Obs.Metrics.disable reg;
  Obs.Metrics.reset reg;
  (t_off, t_on)

(* Chaos acceptance: the checked pipeline (quarantine scrub, pairwise
   ESS guard, health verdict) must cost ~nothing over the unchecked
   Lia.infer on clean input — both run the same phase-1 kernel, so only
   the scrub and verdict assembly are extra. Measured on the sweep's
   largest overlay; target < 2%. *)
let chaos_overhead ~reps ~r ~y_learn ~y_now =
  let t_plain =
    time_best ~reps (fun () -> ignore (Core.Lia.infer ~r ~y_learn ~y_now ()))
  in
  let t_checked =
    time_best ~reps (fun () ->
        ignore (Core.Lia.infer_checked ~r ~y_learn ~y_now ()))
  in
  (t_plain, t_checked)

(* Observability-v2 acceptance: flight recorder + convergence stream +
   metrics all enabled at once must cost < 2% over all-off on the
   matrix-free estimator — the kernel whose inner CGLS loop fires the
   per-iteration probes. Measured on the sweep's largest overlay. *)
let obs2_overhead ~reps ~r ~y_learn =
  let reg = Obs.Metrics.default in
  let kernel () =
    ignore (Core.Variance_estimator.estimate_matfree_ess ~r ~y:y_learn ())
  in
  Obs.Metrics.disable reg;
  Obs.Recorder.disable Obs.Recorder.default;
  Obs.Convergence.set_sink Obs.Convergence.default None;
  kernel ();
  let t_off = time_best ~reps kernel in
  Obs.Metrics.reset reg;
  Obs.Metrics.enable reg;
  Obs.Recorder.reset Obs.Recorder.default;
  Obs.Recorder.enable Obs.Recorder.default;
  Obs.Convergence.set_sink Obs.Convergence.default
    (Some (Obs.Sink.file Filename.null));
  kernel ();
  let t_on = time_best ~reps kernel in
  Obs.Convergence.set_sink Obs.Convergence.default None;
  Obs.Recorder.disable Obs.Recorder.default;
  Obs.Recorder.reset Obs.Recorder.default;
  Obs.Metrics.disable reg;
  Obs.Metrics.reset reg;
  (t_off, t_on)

let sweep ?(extra_json = "") ~out ~jobs_list ~reps ~snapshots ~plan_snapshots
    ~hosts_list () =
  Exp_common.header "multicore jobs sweep (PlanetLab-like overlays)";
  Exp_common.note "host recommended domain count: %d"
    (Domain.recommended_domain_count ());
  let cpus = Exp_common.host_cpus () in
  let advisory = cpus <= 1 in
  if advisory then
    Exp_common.note
      "host has %d CPU: jobs-sweep speedups are advisory (they measure \
       scheduling overhead, not parallelism)"
      cpus;
  (* spawn every pool up front so domain startup never lands in a timing *)
  List.iter
    (fun jobs -> if jobs > 1 then ignore (Parallel.Pool.get ~jobs))
    jobs_list;
  let buf = Buffer.create 4096 in
  let obs_json = ref "" in
  let obs2_json = ref "" in
  let chaos_json = ref "" in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"bench\": \"lia-parallel-kernels\",\n";
  Printf.bprintf buf
    "  \"generated\": \"dune exec bench/main.exe -- timing-sweep\",\n";
  Printf.bprintf buf "  \"host_recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.bprintf buf "  \"host_cpus\": %d,\n" cpus;
  Printf.bprintf buf "  \"jobs_speedups_advisory\": %b,\n" advisory;
  Printf.bprintf buf "  \"jobs_swept\": [%s],\n"
    (String.concat ", " (List.map string_of_int jobs_list));
  Printf.bprintf buf "  \"topologies\": [\n";
  List.iteri
    (fun ti hosts ->
      let rng = Nstats.Rng.create (7100 + hosts) in
      let tb = Topology.Overlay.planetlab_like rng ~hosts () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
      let y_learn, target =
        Netsim.Simulator.split_learning run ~learning:snapshots
      in
      let y_now = target.Netsim.Snapshot.y in
      let a = Core.Augmented.build r in
      Exp_common.subheader
        (Printf.sprintf "%d hosts: %d paths x %d links, m = %d" hosts
           (Sparse.rows r) (Sparse.cols r) snapshots);
      Exp_common.row "%-22s %-6s %-12s %-10s" "kernel" "jobs" "seconds"
        "speedup";
      if ti > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "    {\n      \"kind\": \"planetlab-like\",\n      \"hosts\": %d,\n\
        \      \"paths\": %d,\n      \"links\": %d,\n      \"snapshots\": %d,\n\
        \      \"kernels\": [\n"
        hosts (Sparse.rows r) (Sparse.cols r) snapshots;
      List.iteri
        (fun ki (name, kernel) ->
          let times =
            List.map (fun jobs -> (jobs, time_best ~reps (fun () -> kernel jobs))) jobs_list
          in
          let t1 =
            match List.assoc_opt 1 times with
            | Some t -> t
            | None -> snd (List.hd times)
          in
          if ki > 0 then Buffer.add_string buf ",\n";
          Printf.bprintf buf
            "        {\n          \"name\": %S,\n          \"runs\": [" name;
          List.iteri
            (fun ji (jobs, t) ->
              Exp_common.row "%-22s %-6d %-12.4f %-10.2f" name jobs t (t1 /. t);
              if ji > 0 then Buffer.add_string buf ", ";
              Printf.bprintf buf
                "{\"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_jobs1\": \
                 %.3f, \"advisory\": %b}"
                jobs t (t1 /. t) advisory)
            times;
          Buffer.add_string buf "]\n        }")
        (kernels ~r ~y_learn ~a);
      Buffer.add_string buf "\n      ],\n";
      (* factor-once plan vs per-call Lia.infer_with_variances *)
      let variances = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
      let ys =
        (Netsim.Simulator.run (Nstats.Rng.create (7700 + hosts)) config r
           ~count:plan_snapshots)
          .Netsim.Simulator.y
      in
      let t_build, t_batch, t_indep, solve_s =
        plan_stats ~jobs_list ~reps ~r ~variances ~ys
      in
      let t_plan = t_build +. t_batch in
      let speedup = t_indep /. t_plan in
      Exp_common.row "%-22s %-6s %-12s %-10s" "plan (factor once)" "-"
        (Printf.sprintf "%.4f" t_plan)
        (Printf.sprintf "%.1fx" speedup);
      Exp_common.note
        "plan: build %.2f ms + %d solves at %.1f us each = %.2f ms; %d \
         per-call infers = %.2f ms (%.1fx, bit-identical outputs for jobs in \
         {%s})"
        (1e3 *. t_build) plan_snapshots (1e6 *. solve_s) (1e3 *. t_plan)
        plan_snapshots (1e3 *. t_indep) speedup
        (String.concat ", " (List.map string_of_int jobs_list));
      Printf.bprintf buf
        "      \"plan\": {\n\
        \        \"snapshots\": %d,\n\
        \        \"plan_build_ms\": %.4f,\n\
        \        \"solve_per_snapshot_us\": %.3f,\n\
        \        \"plan_total_ms\": %.4f,\n\
        \        \"independent_infer_ms\": %.4f,\n\
        \        \"amortized_speedup_vs_infer\": %.2f\n\
        \      }\n    }"
        plan_snapshots (1e3 *. t_build) (1e6 *. solve_s) (1e3 *. t_plan)
        (1e3 *. t_indep) speedup;
      (* instrumentation overhead, measured once on the largest overlay *)
      if ti = List.length hosts_list - 1 then begin
        let t_off, t_on = obs_overhead ~reps ~r ~y_learn in
        let pct = 100. *. (t_on -. t_off) /. t_off in
        Exp_common.note
          "obs overhead (estimate_streaming, %d hosts): disabled %.4f s, \
           enabled %.4f s (%+.2f%%, target < 2%%)"
          hosts t_off t_on pct;
        obs_json :=
          Printf.sprintf
            "  \"obs_overhead\": {\n\
            \    \"kernel\": \"estimate_streaming\",\n\
            \    \"hosts\": %d,\n\
            \    \"reps\": %d,\n\
            \    \"disabled_seconds\": %.6f,\n\
            \    \"enabled_seconds\": %.6f,\n\
            \    \"overhead_pct\": %.3f,\n\
            \    \"target_pct\": 2.0\n\
            \  },\n"
            hosts reps t_off t_on pct;
        (* observability-v2 overhead on the same overlay: recorder +
           convergence stream + metrics vs all-off, on the CGLS kernel *)
        let t2_off, t2_on = obs2_overhead ~reps ~r ~y_learn in
        let pct2 = 100. *. (t2_on -. t2_off) /. t2_off in
        Exp_common.note
          "obs2 overhead (estimate_matfree_ess, %d hosts): disabled %.4f s, \
           recorder+convergence+metrics %.4f s (%+.2f%%, target < 2%%)"
          hosts t2_off t2_on pct2;
        obs2_json :=
          Printf.sprintf
            "  \"obs2_overhead\": {\n\
            \    \"kernel\": \"estimate_matfree_ess\",\n\
            \    \"enabled\": \"recorder+convergence+metrics\",\n\
            \    \"hosts\": %d,\n\
            \    \"reps\": %d,\n\
            \    \"disabled_seconds\": %.6f,\n\
            \    \"enabled_seconds\": %.6f,\n\
            \    \"overhead_pct\": %.3f,\n\
            \    \"target_pct\": 2.0\n\
            \  },\n"
            hosts reps t2_off t2_on pct2;
        (* fault-tolerance overhead on the same overlay: checked vs
           unchecked end-to-end inference on clean input *)
        let t_plain, t_checked = chaos_overhead ~reps ~r ~y_learn ~y_now in
        let cpct = 100. *. (t_checked -. t_plain) /. t_plain in
        Exp_common.note
          "chaos overhead (infer_checked vs infer, %d hosts): plain %.4f s, \
           checked %.4f s (%+.2f%%, target < 2%%)"
          hosts t_plain t_checked cpct;
        chaos_json :=
          Printf.sprintf
            "  \"chaos_overhead\": {\n\
            \    \"kernel\": \"infer_checked_vs_infer\",\n\
            \    \"hosts\": %d,\n\
            \    \"reps\": %d,\n\
            \    \"infer_seconds\": %.6f,\n\
            \    \"infer_checked_seconds\": %.6f,\n\
            \    \"overhead_pct\": %.3f,\n\
            \    \"target_pct\": 2.0\n\
            \  },\n"
            hosts reps t_plain t_checked cpct
      end)
    hosts_list;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf !obs_json;
  Buffer.add_string buf !obs2_json;
  Buffer.add_string buf !chaos_json;
  Buffer.add_string buf extra_json;
  Printf.bprintf buf "  \"solve_per_snapshot_source\": \"%s\"\n}\n"
    "plan_solve_snapshot_seconds histogram (metrics registry)";
  let oc = open_out out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Exp_common.note "wrote %s" out

let run_sweep () =
  (* the solver and preconditioner crossovers run first so their JSON
     sections ride along in the same BENCH_timing.json *)
  let solver_json =
    Solver.crossover ~reps:3 ~snapshots:50 ~hosts_list:[ 8; 12; 16; 24; 32 ]
      ~dense_qr_max_paths:300 ~accept_hosts:46 ()
  in
  let precond_json =
    Solver.precond_crossover ~reps:3 ~snapshots:50 ~hosts_list:[ 16; 24; 40 ] ()
  in
  let warm_json = Solver.warm_start_section ~snapshots:50 ~hosts:24 () in
  sweep
    ~extra_json:
      (Printf.sprintf
         "  \"solver_crossover\": %s,\n\
         \  \"precond_crossover\": %s,\n\
         \  \"warm_start\": %s,\n"
         solver_json precond_json warm_json)
    ~out:"BENCH_timing.json" ~jobs_list:[ 1; 2; 4; 8 ] ~reps:3 ~snapshots:50
    ~plan_snapshots:100 ~hosts_list:[ 12; 20; 32 ] ()

(* tiny sizes, wired into the [bench-smoke] dune alias (and through it into
   the default test tree) so the sweep and its JSON writer cannot rot *)
let run_smoke () =
  sweep ~out:"bench_smoke.json" ~jobs_list:[ 1; 2 ] ~reps:1 ~snapshots:8
    ~plan_snapshots:10 ~hosts_list:[ 6 ] ()

(* end-to-end telemetry smoke: run the pipeline on a small overlay with the
   registry enabled, the tracer writing to a scratch file, and the logger on
   a memory sink, then assert the expected probes actually fired. Wired into
   the [obs-smoke] dune alias so the probe inventory cannot silently rot. *)
let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let run_obs_smoke () =
  Exp_common.header "telemetry smoke (probes fire end to end)";
  let reg = Obs.Metrics.default in
  Obs.Metrics.reset reg;
  Obs.Metrics.enable reg;
  let trace_file = Filename.temp_file "obs_smoke" ".jsonl" in
  Obs.Trace.set_sink Obs.Trace.default (Some (Obs.Sink.file trace_file));
  let log_sink, log_lines = Obs.Sink.memory () in
  Obs.Logger.set_sink Obs.Logger.default (Some log_sink);
  Obs.Logger.set_level Obs.Logger.default (Some Obs.Logger.Info);
  let rng = Nstats.Rng.create 1207 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:21 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:20 in
  let variances = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
  let plan = Core.Plan.make ~r ~variances () in
  ignore (Core.Plan.solve plan target.Netsim.Snapshot.y);
  Obs.Logger.info Obs.Logger.default "obs smoke pipeline done"
    ~fields:[ ("hosts", Obs.Field.Int 8) ];
  Obs.Logger.set_level Obs.Logger.default None;
  Obs.Logger.set_sink Obs.Logger.default None;
  Obs.Trace.close Obs.Trace.default;
  Obs.Metrics.disable reg;
  let dump = Obs.Metrics.dump reg in
  let expect_metric name =
    let h = Obs.Metrics.histogram reg name in
    if Obs.Metrics.histogram_count h = 0 then
      failwith (Printf.sprintf "obs-smoke: no observations in %s" name);
    if not (contains ~needle:(name ^ "_count") dump) then
      failwith (Printf.sprintf "obs-smoke: %s missing from dump" name)
  in
  List.iter expect_metric
    [
      "lia_phase1_kernel_seconds";
      "plan_build_seconds";
      "plan_solve_snapshot_seconds";
    ];
  let pairs = Obs.Metrics.counter reg "lia_pairs_total" in
  if Obs.Metrics.counter_value pairs = 0 then
    failwith "obs-smoke: lia_pairs_total never incremented";
  let ic = open_in trace_file in
  let n_lines = ref 0 and first = ref "" in
  (try
     while true do
       let l = input_line ic in
       if !n_lines = 0 then first := l;
       incr n_lines
     done
   with End_of_file -> close_in ic);
  Sys.remove trace_file;
  if !first <> "[" then failwith "obs-smoke: trace does not open with [";
  if !n_lines < 4 then failwith "obs-smoke: too few trace events";
  if List.length (log_lines ()) < 1 then failwith "obs-smoke: no log lines";
  Obs.Metrics.reset reg;
  Exp_common.row "%-28s %s" "metric names in dump"
    (string_of_int (List.length (Obs.Metrics.names reg)));
  Exp_common.row "%-28s %d" "trace event lines" (!n_lines - 1);
  Exp_common.note "registry, tracer, and logger sinks all live; probes fired"

(* Observability-v2 smoke: the flight recorder, the convergence stream,
   and the report renderer exercised in-process on a starved matrix-free
   solve, asserting the per-iteration probes fire and the report page
   renders every section. Wired into the [obs2-smoke] dune alias. *)
let run_obs2_smoke () =
  Exp_common.header "observability-v2 smoke (recorder, convergence, report)";
  let reg = Obs.Metrics.default in
  let rcd = Obs.Recorder.default in
  Obs.Metrics.reset reg;
  Obs.Metrics.enable reg;
  Obs.Recorder.reset rcd;
  Obs.Recorder.enable rcd;
  let conv_sink, conv_lines = Obs.Sink.memory () in
  Obs.Convergence.set_sink Obs.Convergence.default (Some conv_sink);
  let rng = Nstats.Rng.create 2209 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:20 in
  let y_learn, _ = Netsim.Simulator.split_learning run ~learning:19 in
  let starved =
    {
      Core.Variance_estimator.default_matfree_options with
      Core.Variance_estimator.max_iter = Some 4;
    }
  in
  let _, _, st =
    Core.Variance_estimator.estimate_matfree_ess ~options:starved ~r
      ~y:y_learn ()
  in
  if st.Linalg.Conjugate_gradient.converged then
    failwith "obs2-smoke: expected the starved solve not to converge";
  Obs.Convergence.set_sink Obs.Convergence.default None;
  let metrics_dump = Obs.Metrics.dump reg in
  Obs.Metrics.disable reg;
  let events = Obs.Recorder.events rcd in
  let count kind =
    List.length (List.filter (fun e -> e.Obs.Recorder.kind = kind) events)
  in
  let iters = count "solver_iter" in
  if iters < 4 then
    failwith
      (Printf.sprintf "obs2-smoke: %d solver_iter events, expected >= 4" iters);
  if count "solver_done" < 1 then
    failwith "obs2-smoke: no solver_done event recorded";
  if count "span_end" < 1 then
    failwith "obs2-smoke: no span_end event recorded";
  let conv = conv_lines () in
  if List.length conv <> iters then
    failwith
      (Printf.sprintf
         "obs2-smoke: %d convergence lines but %d solver_iter events"
         (List.length conv) iters);
  List.iter
    (fun line ->
      match Obs.Json.of_string_opt line with
      | None -> failwith ("obs2-smoke: unparseable convergence line: " ^ line)
      | Some j -> (
          match Option.bind (Obs.Json.member "relres" j) Obs.Json.to_float_opt with
          | Some rr when rr >= 0. -> ()
          | _ -> failwith "obs2-smoke: convergence line without valid relres"))
    conv;
  let relres = Obs.Metrics.histogram reg "lia_cgls_relres" in
  if Obs.Metrics.histogram_count relres <> iters then
    failwith "obs2-smoke: lia_cgls_relres count does not match iterations";
  let dump_sink, dump_lines = Obs.Sink.memory () in
  Obs.Recorder.dump rcd ~reason:"smoke" dump_sink;
  Obs.Recorder.disable rcd;
  Obs.Recorder.reset rcd;
  Obs.Metrics.reset reg;
  let page =
    Obs.Report.render
      ~recorder:(String.concat "\n" (dump_lines ()))
      ~metrics:metrics_dump
      ~convergence:(String.concat "\n" conv)
      ()
  in
  List.iter
    (fun needle ->
      if not (contains ~needle page) then
        failwith (Printf.sprintf "obs2-smoke: report misses %S" needle))
    [ "Per-phase profile"; "Convergence"; "Residual tail"; "Health"; "NO" ];
  Exp_common.row "%-28s %d" "recorder events" (List.length events);
  Exp_common.row "%-28s %d" "solver iterations" iters;
  Exp_common.row "%-28s %d" "convergence lines" (List.length conv);
  Exp_common.note "recorder, convergence stream, and report all live"
