(* Solver crossover: matrix-free CGLS vs materialized-A solves.

   Phase 1 solves the augmented system A v = sigma_star whose row count
   is n_p(n_p+1)/2 — the n_p² wall. Three ways through it:

     - dense-qr : materialize A as a dense matrix and run Householder QR
       (the textbook solve, and the oracle the qcheck suite tests
       against). O(pairs · n_c²) flops and O(pairs · n_c) memory.
     - dense    : materialize A sparse and solve the normal equations
       (the [--solver dense] production path). O(pairs · nnz_row²) work,
       O(pairs · nnz_row) memory for A itself.
     - cgls     : never materialize A — matrix-free CGLS over cache-
       blocked tiles of the routing matrix ([--solver cgls]).
       O(iters · pairs · path-length) work, O(n_p + n_c) extra memory.

   The sweep times each while affordable, validates cgls against the
   dense-qr oracle in the full-rank regime (drop-negative off, so
   Theorem 1 gives a unique minimizer) at 1e-6 relative error, and
   finishes with the acceptance point: a ≥2000-path overlay that cgls
   completes end to end while the dense-qr matrix alone would not fit in
   memory on most hosts. Its JSON lands in BENCH_timing.json under
   "solver_crossover" (see Timing.run_sweep). *)

module Sparse = Linalg.Sparse
module VE = Core.Variance_estimator
module CG = Linalg.Conjugate_gradient

let time_best ~reps f =
  let best = ref infinity and out = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let x = f () in
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t;
    out := Some x
  done;
  (!best, Option.get !out)

(* worst per-entry relative difference, ignoring entries of [a] below
   [floor] (a zero reference makes relative error meaningless) *)
let worst_rel_diff ?(floor = 1e-9) a b =
  let worst = ref 0. in
  Array.iteri
    (fun k x ->
      if Float.abs x > floor then begin
        let d = Float.abs (x -. b.(k)) /. Float.abs x in
        if d > !worst then worst := d
      end)
    a;
  !worst

(* relative L2 error — the standard sketching metric; per-entry worst
   relative error is meaningless here because near-zero variances make
   the denominator vanish *)
let l2_rel_err reference v =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun k x ->
      let d = v.(k) -. x in
      num := !num +. (d *. d);
      den := !den +. (x *. x))
    reference;
  sqrt (!num /. Float.max 1e-300 !den)

let make_campaign ~hosts ~snapshots =
  let rng = Nstats.Rng.create (7100 + hosts) in
  let tb = Topology.Overlay.planetlab_like rng ~hosts () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:snapshots in
  (r, y_learn, target)

(* The parity regime: drop-negative off keeps every row of A, so the
   system has full column rank (Theorem 1) and both solvers converge to
   the same unique minimizer; tol 1e-14 puts CGLS well below the 1e-6
   comparison bound. *)
let full_rank_mf =
  {
    VE.default_matfree_options with
    VE.tol = 1e-14;
    mf_drop_negative = false;
    mf_clamp = false;
  }

let full_rank_dqr =
  { VE.method_ = VE.Dense_qr; drop_negative = false; clamp = false }

let rel_err_bound = 1e-6

let crossover ~reps ~snapshots ~hosts_list ~dense_qr_max_paths ~accept_hosts ()
    =
  Exp_common.header "solver crossover: matrix-free CGLS vs materialized A";
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n\
    \    \"validated_against\": \"dense QR oracle, full-rank regime \
     (drop_negative off), cgls tol 1e-14\",\n\
    \    \"rel_err_bound\": %g,\n\
    \    \"topologies\": [\n"
    rel_err_bound;
  Exp_common.row "%-6s %-7s %-9s %-11s %-11s %-9s %-11s %-10s" "hosts" "paths"
    "pairs" "dense (s)" "cgls (s)" "iters" "dqr (s)" "relerr";
  (* largest measured dense-qr point, for projecting the acceptance cost *)
  let dqr_ref = ref None in
  List.iteri
    (fun ti hosts ->
      let r, y_learn, _ = make_campaign ~hosts ~snapshots in
      let np = Sparse.rows r and nc = Sparse.cols r in
      let pairs = np * (np + 1) / 2 in
      let t_cgls, (_, _, stats) =
        time_best ~reps (fun () -> VE.estimate_matfree_ess ~r ~y:y_learn ())
      in
      let t_dense, _ =
        time_best ~reps (fun () -> VE.estimate ~r ~y:y_learn ())
      in
      let dqr =
        if np <= dense_qr_max_paths then begin
          let _, (v_mf, _, _) =
            time_best ~reps:1 (fun () ->
                VE.estimate_matfree_ess ~options:full_rank_mf ~r ~y:y_learn ())
          in
          let t_dqr, v_dqr =
            time_best ~reps:1 (fun () ->
                VE.estimate ~options:full_rank_dqr ~r ~y:y_learn ())
          in
          let err = worst_rel_diff v_dqr v_mf in
          if err > rel_err_bound then
            failwith
              (Printf.sprintf
                 "solver crossover: cgls vs dense-qr rel err %.2e > %g at %d \
                  hosts"
                 err rel_err_bound hosts);
          dqr_ref := Some (t_dqr, pairs, nc);
          Some (t_dqr, err)
        end
        else None
      in
      (match dqr with
      | Some (t_dqr, err) ->
          Exp_common.row "%-6d %-7d %-9d %-11.4f %-11.4f %-9d %-11.2f %-10.1e"
            hosts np pairs t_dense t_cgls stats.CG.iterations t_dqr err
      | None ->
          Exp_common.row "%-6d %-7d %-9d %-11.4f %-11.4f %-9d %-11s %-10s"
            hosts np pairs t_dense t_cgls stats.CG.iterations "-" "-");
      if ti > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "      {\"hosts\": %d, \"paths\": %d, \"links\": %d, \"pairs\": %d, \
         \"dense_normal_seconds\": %.6f, \"cgls_seconds\": %.6f, \
         \"cgls_iterations\": %d"
        hosts np nc pairs t_dense t_cgls stats.CG.iterations;
      (match dqr with
      | Some (t_dqr, err) ->
          Printf.bprintf buf
            ", \"dense_qr_seconds\": %.6f, \"cgls_vs_dense_qr_rel_err\": %.3e}"
            t_dqr err
      | None -> Buffer.add_string buf "}"))
    hosts_list;
  Buffer.add_string buf "\n    ],\n";
  Exp_common.note
    "dqr measured only while the dense A fits comfortably; relerr is cgls vs \
     the dense-qr oracle in the full-rank regime (bound %.0e)"
    rel_err_bound;
  (* --- acceptance: a >= 2000-path overlay, matrix-free only ------------ *)
  Exp_common.subheader "acceptance point (matrix-free only)";
  let r, y_learn, target = make_campaign ~hosts:accept_hosts ~snapshots in
  let np = Sparse.rows r and nc = Sparse.cols r in
  let pairs = np * (np + 1) / 2 in
  let t_e2e, result =
    time_best ~reps:1 (fun () ->
        Core.Lia.infer ~solver:Core.Lia.default_cgls ~r ~y_learn
          ~y_now:target.Netsim.Snapshot.y ())
  in
  if not (Array.for_all Float.is_finite result.Core.Lia.loss_rates) then
    failwith "solver crossover: non-finite loss rates at the acceptance point";
  let dense_a_gb = float_of_int pairs *. float_of_int nc *. 8. /. 1e9 in
  let projected_dqr_s =
    (* scale the largest measured dense-qr point by the Householder flop
       count 2 · rows · cols² *)
    match !dqr_ref with
    | None -> Float.nan
    | Some (t, p0, c0) ->
        t
        *. (float_of_int pairs /. float_of_int p0)
        *. ((float_of_int nc /. float_of_int c0) ** 2.)
  in
  Exp_common.row "%-6d %-7d %-9d cgls end-to-end %.2f s" accept_hosts np pairs
    t_e2e;
  Exp_common.note
    "dense-qr there would need a %.1f GB matrix and ~%.0f s (projected); \
     cgls used O(paths + links) extra memory"
    dense_a_gb projected_dqr_s;
  Printf.bprintf buf
    "    \"acceptance\": {\"hosts\": %d, \"paths\": %d, \"links\": %d, \
     \"pairs\": %d, \"cgls_end_to_end_seconds\": %.6f, \"dense_qr_projected\": \
     {\"matrix_gb\": %.1f, \"seconds\": %.1f, \"projected\": true}},\n"
    accept_hosts np nc pairs t_e2e dense_a_gb projected_dqr_s;
  (* --- sketch: seeded row subsampling, error vs time ------------------- *)
  Exp_common.subheader "sketch: seeded row subsampling (error vs time)";
  let sk_hosts = 24 and sk_seed = 421 in
  let r, y_learn, _ = make_campaign ~hosts:sk_hosts ~snapshots in
  let run_fraction fraction =
    let options =
      { VE.default_matfree_options with VE.sample = Some (fraction, sk_seed) }
    in
    time_best ~reps (fun () ->
        VE.estimate_matfree_ess ~options ~r ~y:y_learn ())
  in
  let _, (v_full, _, _) =
    time_best ~reps:1 (fun () -> VE.estimate_matfree_ess ~r ~y:y_learn ())
  in
  Exp_common.row "%-10s %-11s %-9s %-14s %-12s" "fraction" "seconds" "iters"
    "l2 relerr" "max relerr";
  Printf.bprintf buf
    "    \"sketch\": {\"hosts\": %d, \"seed\": %d, \"fractions\": [" sk_hosts
    sk_seed;
  List.iteri
    (fun fi fraction ->
      let t, (v, _, stats) = run_fraction fraction in
      let l2 = l2_rel_err v_full v and worst = worst_rel_diff v_full v in
      if not (Array.for_all Float.is_finite v) then
        failwith "solver sketch: non-finite variance estimate";
      Exp_common.row "%-10.2f %-11.4f %-9d %-14.2e %-12.2e" fraction t
        stats.CG.iterations l2 worst;
      if fi > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{\"fraction\": %.2f, \"seconds\": %.6f, \"iterations\": %d, \
         \"l2_rel_err_vs_full\": %.3e, \"max_rel_err_vs_full\": %.3e}"
        fraction t stats.CG.iterations l2 worst)
    [ 1.0; 0.5; 0.25; 0.1 ];
  Buffer.add_string buf "]}\n  }";
  Exp_common.note
    "sampling keeps a seeded deterministic subset of the pair rows; the \
     fraction-1.0 row is the exactness check (relerr 0 by construction)";
  Buffer.contents buf

let run_crossover () =
  ignore
    (crossover ~reps:3 ~snapshots:50 ~hosts_list:[ 8; 12; 16; 24; 32 ]
       ~dense_qr_max_paths:300 ~accept_hosts:46 ())

(* --- solver smoke: wired into the default test tree -------------------- *)

(* Tiny-size assertions that the crossover's claims cannot silently rot:
   cgls/dense-qr parity in the full-rank regime, bit-for-bit jobs
   invariance, seeded sketch determinism, and honest non-convergence
   reporting when the iteration budget is starved. *)
let run_smoke () =
  Exp_common.header "solver smoke (matrix-free contracts)";
  let r, y_learn, target = make_campaign ~hosts:6 ~snapshots:8 in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         a b
  in
  (* parity against the dense-qr oracle *)
  let v_mf, _, stats =
    VE.estimate_matfree_ess ~options:full_rank_mf ~r ~y:y_learn ()
  in
  let v_dqr = VE.estimate ~options:full_rank_dqr ~r ~y:y_learn () in
  let err = worst_rel_diff v_dqr v_mf in
  if err > rel_err_bound then
    failwith (Printf.sprintf "solver-smoke: parity rel err %.2e" err);
  if not stats.CG.converged then failwith "solver-smoke: cgls did not converge";
  Exp_common.row "%-34s %.1e" "cgls vs dense-qr rel err" err;
  (* bit-for-bit jobs invariance *)
  let v1, _, _ = VE.estimate_matfree_ess ~jobs:1 ~r ~y:y_learn () in
  let v2, _, _ = VE.estimate_matfree_ess ~jobs:2 ~r ~y:y_learn () in
  if not (bits_equal v1 v2) then
    failwith "solver-smoke: jobs=2 differs from jobs=1";
  Exp_common.row "%-34s %s" "jobs {1,2} invariance" "bit-for-bit";
  (* seeded sketch determinism *)
  let sk =
    { VE.default_matfree_options with VE.sample = Some (0.5, 99) }
  in
  let s1, _, _ = VE.estimate_matfree_ess ~options:sk ~r ~y:y_learn () in
  let s2, _, _ = VE.estimate_matfree_ess ~options:sk ~r ~y:y_learn () in
  if not (bits_equal s1 s2) then
    failwith "solver-smoke: sketch not deterministic for a fixed seed";
  if not (Array.for_all Float.is_finite s1) then
    failwith "solver-smoke: sketch produced non-finite estimates";
  Exp_common.row "%-34s %s" "sketch (fraction 0.5, seeded)" "deterministic";
  (* starved budget: still completes, reports non-convergence *)
  let starved =
    { VE.default_matfree_options with VE.max_iter = Some 1 }
  in
  let v_starved, _, st = VE.estimate_matfree_ess ~options:starved ~r ~y:y_learn () in
  if st.CG.converged then failwith "solver-smoke: starved run claims convergence";
  if not (Array.for_all Float.is_finite v_starved) then
    failwith "solver-smoke: starved run produced non-finite estimates";
  Exp_common.row "%-34s iters=%d relres=%.1e" "starved (max_iter=1) reported"
    st.CG.iterations st.CG.relative_residual;
  (* the cgls plan backend serves the target snapshot *)
  let res =
    Core.Lia.infer ~solver:Core.Lia.default_cgls ~r ~y_learn
      ~y_now:target.Netsim.Snapshot.y ()
  in
  if not (Array.for_all Float.is_finite res.Core.Lia.loss_rates) then
    failwith "solver-smoke: non-finite loss rates from the cgls backend";
  Exp_common.note "matrix-free contracts hold end to end"
