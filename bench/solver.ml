(* Solver crossover: matrix-free CGLS vs materialized-A solves.

   Phase 1 solves the augmented system A v = sigma_star whose row count
   is n_p(n_p+1)/2 — the n_p² wall. Three ways through it:

     - dense-qr : materialize A as a dense matrix and run Householder QR
       (the textbook solve, and the oracle the qcheck suite tests
       against). O(pairs · n_c²) flops and O(pairs · n_c) memory.
     - dense    : materialize A sparse and solve the normal equations
       (the [--solver dense] production path). O(pairs · nnz_row²) work,
       O(pairs · nnz_row) memory for A itself.
     - cgls     : never materialize A — matrix-free CGLS over cache-
       blocked tiles of the routing matrix ([--solver cgls]).
       O(iters · pairs · path-length) work, O(n_p + n_c) extra memory.

   The sweep times each while affordable, validates cgls against the
   dense-qr oracle in the full-rank regime (drop-negative off, so
   Theorem 1 gives a unique minimizer) at 1e-6 relative error, and
   finishes with the acceptance point: a ≥2000-path overlay that cgls
   completes end to end while the dense-qr matrix alone would not fit in
   memory on most hosts. Its JSON lands in BENCH_timing.json under
   "solver_crossover" (see Timing.run_sweep). *)

module Sparse = Linalg.Sparse
module VE = Core.Variance_estimator
module CG = Linalg.Conjugate_gradient

let time_best ~reps f =
  let best = ref infinity and out = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let x = f () in
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t;
    out := Some x
  done;
  (!best, Option.get !out)

(* worst per-entry relative difference, ignoring entries of [a] below
   [floor] (a zero reference makes relative error meaningless) *)
let worst_rel_diff ?(floor = 1e-9) a b =
  let worst = ref 0. in
  Array.iteri
    (fun k x ->
      if Float.abs x > floor then begin
        let d = Float.abs (x -. b.(k)) /. Float.abs x in
        if d > !worst then worst := d
      end)
    a;
  !worst

(* relative L2 error — the standard sketching metric; per-entry worst
   relative error is meaningless here because near-zero variances make
   the denominator vanish *)
let l2_rel_err reference v =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun k x ->
      let d = v.(k) -. x in
      num := !num +. (d *. d);
      den := !den +. (x *. x))
    reference;
  sqrt (!num /. Float.max 1e-300 !den)

(* same registry handle the solvers record into; the registry returns
   the existing counter for a same-typed name *)
let m_cgls_iters =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"CGLS iterations run by the matrix-free solvers"
    "lia_cgls_iterations"

(* run [f] with metrics on, returning its result and the CGLS
   iterations it recorded *)
let with_cgls_iters f =
  let was_enabled = Obs.Metrics.enabled Obs.Metrics.default in
  Obs.Metrics.enable Obs.Metrics.default;
  let before = Obs.Metrics.counter_value m_cgls_iters in
  let out = f () in
  let iters = Obs.Metrics.counter_value m_cgls_iters - before in
  if not was_enabled then Obs.Metrics.disable Obs.Metrics.default;
  (out, iters)

let make_campaign ~hosts ~snapshots =
  let rng = Nstats.Rng.create (7100 + hosts) in
  let tb = Topology.Overlay.planetlab_like rng ~hosts () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:snapshots in
  (r, y_learn, target)

(* The parity regime: drop-negative off keeps every row of A, so the
   system has full column rank (Theorem 1) and both solvers converge to
   the same unique minimizer; tol 1e-14 puts CGLS well below the 1e-6
   comparison bound. *)
let full_rank_mf =
  {
    VE.default_matfree_options with
    VE.tol = 1e-14;
    mf_drop_negative = false;
    mf_clamp = false;
  }

let full_rank_dqr =
  { VE.method_ = VE.Dense_qr; drop_negative = false; clamp = false }

let rel_err_bound = 1e-6

let crossover ~reps ~snapshots ~hosts_list ~dense_qr_max_paths ~accept_hosts ()
    =
  Exp_common.header "solver crossover: matrix-free CGLS vs materialized A";
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n\
    \    \"validated_against\": \"dense QR oracle, full-rank regime \
     (drop_negative off), cgls tol 1e-14\",\n\
    \    \"rel_err_bound\": %g,\n\
    \    \"topologies\": [\n"
    rel_err_bound;
  Exp_common.row "%-6s %-7s %-9s %-11s %-11s %-9s %-11s %-10s" "hosts" "paths"
    "pairs" "dense (s)" "cgls (s)" "iters" "dqr (s)" "relerr";
  (* largest measured dense-qr point, for projecting the acceptance cost *)
  let dqr_ref = ref None in
  List.iteri
    (fun ti hosts ->
      let r, y_learn, _ = make_campaign ~hosts ~snapshots in
      let np = Sparse.rows r and nc = Sparse.cols r in
      let pairs = np * (np + 1) / 2 in
      let t_cgls, (_, _, stats) =
        time_best ~reps (fun () -> VE.estimate_matfree_ess ~r ~y:y_learn ())
      in
      let t_dense, _ =
        time_best ~reps (fun () -> VE.estimate ~r ~y:y_learn ())
      in
      let dqr =
        if np <= dense_qr_max_paths then begin
          let _, (v_mf, _, _) =
            time_best ~reps:1 (fun () ->
                VE.estimate_matfree_ess ~options:full_rank_mf ~r ~y:y_learn ())
          in
          let t_dqr, v_dqr =
            time_best ~reps:1 (fun () ->
                VE.estimate ~options:full_rank_dqr ~r ~y:y_learn ())
          in
          let err = worst_rel_diff v_dqr v_mf in
          if err > rel_err_bound then
            failwith
              (Printf.sprintf
                 "solver crossover: cgls vs dense-qr rel err %.2e > %g at %d \
                  hosts"
                 err rel_err_bound hosts);
          dqr_ref := Some (t_dqr, pairs, nc);
          Some (t_dqr, err)
        end
        else None
      in
      (match dqr with
      | Some (t_dqr, err) ->
          Exp_common.row "%-6d %-7d %-9d %-11.4f %-11.4f %-9d %-11.2f %-10.1e"
            hosts np pairs t_dense t_cgls stats.CG.iterations t_dqr err
      | None ->
          Exp_common.row "%-6d %-7d %-9d %-11.4f %-11.4f %-9d %-11s %-10s"
            hosts np pairs t_dense t_cgls stats.CG.iterations "-" "-");
      if ti > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "      {\"hosts\": %d, \"paths\": %d, \"links\": %d, \"pairs\": %d, \
         \"dense_normal_seconds\": %.6f, \"cgls_seconds\": %.6f, \
         \"cgls_iterations\": %d"
        hosts np nc pairs t_dense t_cgls stats.CG.iterations;
      (match dqr with
      | Some (t_dqr, err) ->
          Printf.bprintf buf
            ", \"dense_qr_seconds\": %.6f, \"cgls_vs_dense_qr_rel_err\": %.3e}"
            t_dqr err
      | None -> Buffer.add_string buf "}"))
    hosts_list;
  Buffer.add_string buf "\n    ],\n";
  Exp_common.note
    "dqr measured only while the dense A fits comfortably; relerr is cgls vs \
     the dense-qr oracle in the full-rank regime (bound %.0e)"
    rel_err_bound;
  (* --- acceptance: a >= 2000-path overlay, matrix-free only ------------ *)
  Exp_common.subheader "acceptance point (matrix-free only)";
  let r, y_learn, target = make_campaign ~hosts:accept_hosts ~snapshots in
  let np = Sparse.rows r and nc = Sparse.cols r in
  let pairs = np * (np + 1) / 2 in
  let t_e2e, (result, it_e2e) =
    time_best ~reps:1 (fun () ->
        with_cgls_iters (fun () ->
            Core.Lia.infer ~solver:Core.Lia.default_cgls ~r ~y_learn
              ~y_now:target.Netsim.Snapshot.y ()))
  in
  if not (Array.for_all Float.is_finite result.Core.Lia.loss_rates) then
    failwith "solver crossover: non-finite loss rates at the acceptance point";
  let dense_a_gb = float_of_int pairs *. float_of_int nc *. 8. /. 1e9 in
  let projected_dqr_s =
    (* scale the largest measured dense-qr point by the Householder flop
       count 2 · rows · cols² *)
    match !dqr_ref with
    | None -> Float.nan
    | Some (t, p0, c0) ->
        t
        *. (float_of_int pairs /. float_of_int p0)
        *. ((float_of_int nc /. float_of_int c0) ** 2.)
  in
  Exp_common.row "%-6d %-7d %-9d cgls end-to-end %.2f s (%d iterations)"
    accept_hosts np pairs t_e2e it_e2e;
  Exp_common.note
    "dense-qr there would need a %.1f GB matrix and ~%.0f s (projected); \
     cgls used O(paths + links) extra memory"
    dense_a_gb projected_dqr_s;
  Printf.bprintf buf
    "    \"acceptance\": {\"hosts\": %d, \"paths\": %d, \"links\": %d, \
     \"pairs\": %d, \"cgls_end_to_end_seconds\": %.6f, \"cgls_iterations\": \
     %d, \"dense_qr_projected\": {\"matrix_gb\": %.1f, \"seconds\": %.1f, \
     \"projected\": true}},\n"
    accept_hosts np nc pairs t_e2e it_e2e dense_a_gb projected_dqr_s;
  (* --- sketch: seeded row subsampling, error vs time ------------------- *)
  Exp_common.subheader "sketch: seeded row subsampling (error vs time)";
  let sk_hosts = 24 and sk_seed = 421 in
  let r, y_learn, _ = make_campaign ~hosts:sk_hosts ~snapshots in
  let run_fraction fraction =
    let options =
      { VE.default_matfree_options with VE.sample = Some (fraction, sk_seed) }
    in
    time_best ~reps (fun () ->
        VE.estimate_matfree_ess ~options ~r ~y:y_learn ())
  in
  let _, (v_full, _, _) =
    time_best ~reps:1 (fun () -> VE.estimate_matfree_ess ~r ~y:y_learn ())
  in
  Exp_common.row "%-10s %-11s %-9s %-14s %-12s" "fraction" "seconds" "iters"
    "l2 relerr" "max relerr";
  Printf.bprintf buf
    "    \"sketch\": {\"hosts\": %d, \"seed\": %d, \"fractions\": [" sk_hosts
    sk_seed;
  List.iteri
    (fun fi fraction ->
      let t, (v, _, stats) = run_fraction fraction in
      let l2 = l2_rel_err v_full v and worst = worst_rel_diff v_full v in
      if not (Array.for_all Float.is_finite v) then
        failwith "solver sketch: non-finite variance estimate";
      Exp_common.row "%-10.2f %-11.4f %-9d %-14.2e %-12.2e" fraction t
        stats.CG.iterations l2 worst;
      if fi > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{\"fraction\": %.2f, \"seconds\": %.6f, \"iterations\": %d, \
         \"l2_rel_err_vs_full\": %.3e, \"max_rel_err_vs_full\": %.3e}"
        fraction t stats.CG.iterations l2 worst)
    [ 1.0; 0.5; 0.25; 0.1 ];
  Buffer.add_string buf "]}\n  }";
  Exp_common.note
    "sampling keeps a seeded deterministic subset of the pair rows; the \
     fraction-1.0 row is the exactness check (relerr 0 by construction)";
  Buffer.contents buf

let run_crossover () =
  ignore
    (crossover ~reps:3 ~snapshots:50 ~hosts_list:[ 8; 12; 16; 24; 32 ]
       ~dense_qr_max_paths:300 ~accept_hosts:46 ())

(* --- preconditioner crossover: hierarchical AS-sharded CGLS ------------- *)

(* Transit–stub campaign with deep stubs: the intra-stub tails make path
   lengths — and with them the augmented column counts — wildly skewed
   (a backbone virtual link sits in most pair rows, a stub-tail link in
   a handful), which is the regime where plain Jacobi column scaling
   stops helping and the AS-block structure pays. *)
let make_ts_campaign ~hosts ~snapshots () =
  let rng = Nstats.Rng.create (9200 + hosts) in
  let tb =
    Topology.Transit_stub.generate rng ~transit_domains:2 ~transit_size:4
      ~stubs_per_transit_node:2 ~stub_size:8 ~hosts ()
  in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:snapshots in
  (tb, red, r, y_learn, target)

let precond_tol = 1e-8

let precond_opts pc =
  { VE.default_matfree_options with VE.tol = precond_tol; mf_precond = pc }

(* iteration ratio the hierarchical preconditioner must clear vs plain
   Jacobi on the designated skewed instance (acceptance criterion) *)
let block_vs_jacobi_min_ratio = 2.

let precond_crossover ~reps ~snapshots ~hosts_list () =
  Exp_common.header
    "precond crossover: none vs jacobi vs block-jacobi (AS-sharded), tol 1e-8";
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n\
    \    \"topology\": \"transit-stub, 2x4 transit, deep stubs (skewed path \
     lengths)\",\n\
    \    \"tol\": %g,\n\
    \    \"iterations_are_host_independent\": true,\n\
    \    \"instances\": [\n"
    precond_tol;
  Exp_common.row "%-6s %-7s %-7s %-8s %-24s %-24s %-24s" "hosts" "paths"
    "links" "blocks" "none (iters, s)" "jacobi (iters, s)" "block-jacobi (iters, s)";
  let last_ratio = ref 0. in
  List.iteri
    (fun ti hosts ->
      let tb, red, r, y_learn, _ = make_ts_campaign ~hosts ~snapshots () in
      let part = Topology.Partition.by_as tb.Topology.Testbed.graph red in
      let groups = Topology.Partition.group_cols part in
      let nblocks = Array.length groups in
      let np = Sparse.rows r and nc = Sparse.cols r in
      let run pc =
        let t, (v, _, stats) =
          time_best ~reps (fun () ->
              VE.estimate_matfree_ess ~options:(precond_opts pc) ~r ~y:y_learn ())
        in
        if not (Array.for_all Float.is_finite v) then
          failwith "precond crossover: non-finite variance estimate";
        if not stats.CG.converged then
          failwith "precond crossover: cgls did not converge";
        (t, v, stats.CG.iterations)
      in
      let t_none, v_none, it_none = run VE.Pc_none in
      let t_jac, v_jac, it_jac = run VE.Pc_jacobi in
      let t_blk, v_blk, it_blk = run (VE.Pc_block_jacobi groups) in
      (* all three minimize the same least-squares problem: at tol 1e-8
         the estimates must agree far better than the sampling noise *)
      let err_jac = l2_rel_err v_none v_jac
      and err_blk = l2_rel_err v_none v_blk in
      if err_jac > 1e-4 || err_blk > 1e-4 then
        failwith
          (Printf.sprintf
             "precond crossover: preconditioners disagree (jacobi %.1e, \
              block %.1e)"
             err_jac err_blk);
      last_ratio := float_of_int it_jac /. float_of_int (max 1 it_blk);
      Exp_common.row "%-6d %-7d %-7d %-8d %6d  %-14.4f %6d  %-14.4f %6d  %-14.4f"
        hosts np nc nblocks it_none t_none it_jac t_jac it_blk t_blk;
      if ti > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "      {\"hosts\": %d, \"paths\": %d, \"links\": %d, \"blocks\": %d, \
         \"border_links\": %d, \"none\": {\"cgls_iterations\": %d, \
         \"seconds\": %.6f}, \"jacobi\": {\"cgls_iterations\": %d, \
         \"seconds\": %.6f}, \"block_jacobi\": {\"cgls_iterations\": %d, \
         \"seconds\": %.6f}, \"jacobi_over_block_iters\": %.2f}"
        hosts np nc nblocks
        (Topology.Partition.border_cols part)
        it_none t_none it_jac t_jac it_blk t_blk !last_ratio)
    hosts_list;
  Printf.bprintf buf "\n    ],\n    \"block_vs_jacobi_min_ratio\": %.1f\n  }"
    block_vs_jacobi_min_ratio;
  Exp_common.note
    "block-jacobi factors one Cholesky block per AS (border last) through \
     the pool; iterations are bit-for-bit jobs-invariant and \
     host-independent";
  if !last_ratio < block_vs_jacobi_min_ratio then
    failwith
      (Printf.sprintf
         "precond crossover: block-jacobi only %.2fx fewer iterations than \
          jacobi on the acceptance instance (need >= %.1fx)"
         !last_ratio block_vs_jacobi_min_ratio);
  Buffer.contents buf

(* --- warm-start batch serving: iteration savings ------------------------ *)

let warm_start_section ~snapshots ~hosts () =
  Exp_common.header "warm-start CGLS batch serving (snapshot chain)";
  let rng = Nstats.Rng.create (9300 + hosts) in
  let tb =
    Topology.Transit_stub.generate rng ~transit_domains:2 ~transit_size:4
      ~stubs_per_transit_node:2 ~stub_size:8 ~hosts ()
  in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  (* the quiet-network serving regime (heavy probing, sparse
     congestion): consecutive snapshots genuinely resemble each other,
     which is what a warm start can exploit. The headroom is bounded
     either way — rank reduction keeps exactly the high-variance
     (congested) columns, whose loss rates are redrawn every snapshot,
     so the chained solutions never collapse onto each other. *)
  let config =
    {
      (Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated)
      with
      Netsim.Snapshot.probes = 100000;
      congestion_prob = 0.03;
    }
  in
  let run = Netsim.Simulator.run rng config r ~count:(snapshots + 1) in
  let y_learn, _ = Netsim.Simulator.split_learning run ~learning:snapshots in
  let v, _, _ =
    VE.estimate_matfree_ess ~options:(precond_opts VE.Pc_jacobi) ~r ~y:y_learn ()
  in
  (* serving tolerance: at 1e-10 the small reduced system runs CGLS to
     finite termination (~rank iterations) from any start; 1e-6 is the
     regime where the convergence rate — and hence the warm start —
     governs the count *)
  let serve_tol = 1e-6 in
  let plan =
    Core.Plan.make
      ~backend:
        (Core.Plan.Cgls { tol = serve_tol; max_iter = None; precond = VE.Pc_none })
      ~r ~variances:v ()
  in
  let t_cold, (res_cold, it_cold) =
    time_best ~reps:1 (fun () ->
        with_cgls_iters (fun () -> Core.Plan.solve_batch plan y_learn))
  in
  let t_warm, (res_warm, it_warm) =
    time_best ~reps:1 (fun () ->
        with_cgls_iters (fun () ->
            Core.Plan.solve_batch ~warm_start:true plan y_learn))
  in
  (* warm starts may only move results within solver tolerance *)
  Array.iteri
    (fun l (cold : Core.Plan.result) ->
      let warm = res_warm.(l) in
      let err = l2_rel_err cold.Core.Plan.transmission warm.Core.Plan.transmission in
      if err > 100. *. serve_tol then
        failwith
          (Printf.sprintf "warm start: snapshot %d drifted %.1e from cold" l err))
    res_cold;
  let m = Array.length res_cold in
  Exp_common.row "%-22s %-11s %-9s" "mode" "iters" "seconds";
  Exp_common.row "%-22s %-11d %-9.4f" "cold (independent)" it_cold t_cold;
  Exp_common.row "%-22s %-11d %-9.4f" "warm (chained)" it_warm t_warm;
  Exp_common.note
    "%d snapshots; warm chain saved %.0f%% of the CGLS iterations (results \
     agree within solver tolerance)"
    m
    (100. *. (1. -. (float_of_int it_warm /. float_of_int (max 1 it_cold))));
  Printf.sprintf
    "{\"hosts\": %d, \"snapshots\": %d, \"cold\": {\"cgls_iterations\": %d, \
     \"seconds\": %.6f}, \"warm\": {\"cgls_iterations\": %d, \"seconds\": \
     %.6f}, \"iteration_savings\": %.3f}"
    hosts m it_cold t_cold it_warm t_warm
    (1. -. (float_of_int it_warm /. float_of_int (max 1 it_cold)))

let run_precond_crossover () =
  ignore (precond_crossover ~reps:3 ~snapshots:50 ~hosts_list:[ 16; 24; 40 ] ());
  ignore (warm_start_section ~snapshots:50 ~hosts:24 ())

(* precond smoke: a small transit-stub instance end-to-end through the
   three report paths — dense, raw cgls, and cgls + AS-sharded
   block-jacobi — asserting the reports agree. Wired into the default
   [dune runtest] tree via the [precond-smoke] alias. *)
let run_precond_smoke () =
  Exp_common.header "precond smoke (hierarchical solve parity)";
  let tb, red, r, y_learn, target = make_ts_campaign ~hosts:8 ~snapshots:12 () in
  let part = Topology.Partition.by_as tb.Topology.Testbed.graph red in
  let groups = Topology.Partition.group_cols part in
  let y_now = target.Netsim.Snapshot.y in
  let infer solver = Core.Lia.infer ~solver ~r ~y_learn ~y_now () in
  let res_dense = infer Core.Lia.Dense in
  let cgls precond =
    Core.Lia.Cgls { tol = 1e-12; max_iter = None; sample = None; precond }
  in
  let res_cgls = infer (cgls VE.Pc_jacobi) in
  let res_blk = infer (cgls (VE.Pc_block_jacobi groups)) in
  let check name a b =
    let err = worst_rel_diff a.Core.Lia.loss_rates b.Core.Lia.loss_rates in
    if err > rel_err_bound then
      failwith (Printf.sprintf "precond-smoke: %s rel err %.2e" name err);
    if not (Array.for_all Float.is_finite b.Core.Lia.loss_rates) then
      failwith (Printf.sprintf "precond-smoke: %s non-finite" name);
    Exp_common.row "%-34s %.1e" (name ^ " rel err") err
  in
  check "cgls vs dense" res_dense res_cgls;
  check "cgls+block-jacobi vs dense" res_dense res_blk;
  (* block factorization must be bit-for-bit jobs-invariant *)
  let opts = precond_opts (VE.Pc_block_jacobi groups) in
  let v1, _, _ = VE.estimate_matfree_ess ~options:opts ~jobs:1 ~r ~y:y_learn () in
  let v2, _, _ = VE.estimate_matfree_ess ~options:opts ~jobs:4 ~r ~y:y_learn () in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         a b
  in
  if not (bits_equal v1 v2) then
    failwith "precond-smoke: block-jacobi jobs=4 differs from jobs=1";
  Exp_common.row "%-34s %s" "block-jacobi jobs {1,4}" "bit-for-bit";
  Exp_common.note "%d AS blocks (border %d cols) over %d links"
    (Array.length groups)
    (Topology.Partition.border_cols part)
    (Sparse.cols r)

(* --- solver smoke: wired into the default test tree -------------------- *)

(* Tiny-size assertions that the crossover's claims cannot silently rot:
   cgls/dense-qr parity in the full-rank regime, bit-for-bit jobs
   invariance, seeded sketch determinism, and honest non-convergence
   reporting when the iteration budget is starved. *)
let run_smoke () =
  Exp_common.header "solver smoke (matrix-free contracts)";
  let r, y_learn, target = make_campaign ~hosts:6 ~snapshots:8 in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         a b
  in
  (* parity against the dense-qr oracle *)
  let v_mf, _, stats =
    VE.estimate_matfree_ess ~options:full_rank_mf ~r ~y:y_learn ()
  in
  let v_dqr = VE.estimate ~options:full_rank_dqr ~r ~y:y_learn () in
  let err = worst_rel_diff v_dqr v_mf in
  if err > rel_err_bound then
    failwith (Printf.sprintf "solver-smoke: parity rel err %.2e" err);
  if not stats.CG.converged then failwith "solver-smoke: cgls did not converge";
  Exp_common.row "%-34s %.1e" "cgls vs dense-qr rel err" err;
  (* bit-for-bit jobs invariance *)
  let v1, _, _ = VE.estimate_matfree_ess ~jobs:1 ~r ~y:y_learn () in
  let v2, _, _ = VE.estimate_matfree_ess ~jobs:2 ~r ~y:y_learn () in
  if not (bits_equal v1 v2) then
    failwith "solver-smoke: jobs=2 differs from jobs=1";
  Exp_common.row "%-34s %s" "jobs {1,2} invariance" "bit-for-bit";
  (* seeded sketch determinism *)
  let sk =
    { VE.default_matfree_options with VE.sample = Some (0.5, 99) }
  in
  let s1, _, _ = VE.estimate_matfree_ess ~options:sk ~r ~y:y_learn () in
  let s2, _, _ = VE.estimate_matfree_ess ~options:sk ~r ~y:y_learn () in
  if not (bits_equal s1 s2) then
    failwith "solver-smoke: sketch not deterministic for a fixed seed";
  if not (Array.for_all Float.is_finite s1) then
    failwith "solver-smoke: sketch produced non-finite estimates";
  Exp_common.row "%-34s %s" "sketch (fraction 0.5, seeded)" "deterministic";
  (* starved budget: still completes, reports non-convergence *)
  let starved =
    { VE.default_matfree_options with VE.max_iter = Some 1 }
  in
  let v_starved, _, st = VE.estimate_matfree_ess ~options:starved ~r ~y:y_learn () in
  if st.CG.converged then failwith "solver-smoke: starved run claims convergence";
  if not (Array.for_all Float.is_finite v_starved) then
    failwith "solver-smoke: starved run produced non-finite estimates";
  Exp_common.row "%-34s iters=%d relres=%.1e" "starved (max_iter=1) reported"
    st.CG.iterations st.CG.relative_residual;
  (* the cgls plan backend serves the target snapshot *)
  let res =
    Core.Lia.infer ~solver:Core.Lia.default_cgls ~r ~y_learn
      ~y_now:target.Netsim.Snapshot.y ()
  in
  if not (Array.for_all Float.is_finite res.Core.Lia.loss_rates) then
    failwith "solver-smoke: non-finite loss rates from the cgls backend";
  Exp_common.note "matrix-free contracts hold end to end"
