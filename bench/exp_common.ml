(* Shared machinery for the experiment harness: one-trial runners,
   multi-run averaging, and paper-style table printing. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Metrics = Core.Metrics

type trial = {
  r : Sparse.t;
  routing : Topology.Routing.reduced;
  testbed : Topology.Testbed.t;
  y_learn : Matrix.t;
  target : Snapshot.t;
  result : Core.Lia.result;
}

(* Run one full campaign + inference on a testbed. *)
let run_trial ?(dynamics = Simulator.Static) ?(config_of = fun c -> c) ~seed ~m
    testbed =
  let rng = Rng.create seed in
  let routing = Topology.Testbed.routing testbed in
  let r = routing.Topology.Routing.matrix in
  let config = config_of (Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated) in
  let run = Simulator.run ~dynamics rng config r ~count:(m + 1) in
  let y_learn, target = Simulator.split_learning run ~learning:m in
  let result = Core.Lia.infer ~r ~y_learn ~y_now:target.Snapshot.y () in
  { r; routing; testbed; y_learn; target; result }

(* DR/FPR against the drawn congestion statuses (the paper's ground
   truth). A link whose status is good but whose bursty realization
   genuinely dropped more than [threshold] of the probes is not counted as
   a false positive: the inference correctly reported what the link did
   during the snapshot. *)
let location_of_trial ?(threshold = 0.002) t =
  let inferred = Core.Lia.congested t.result ~threshold in
  let honest =
    Array.mapi
      (fun k f ->
        f
        && ((not t.target.Snapshot.congested.(k))
           && t.target.Snapshot.realized.(k) > threshold))
      inferred
  in
  let inferred = Array.mapi (fun k f -> f && not honest.(k)) inferred in
  Metrics.location ~actual:t.target.Snapshot.congested ~inferred

(* Congested-to-kept-columns ratio of Figure 7. *)
let congested_vs_kept t =
  let ncong =
    Array.fold_left (fun a c -> if c then a + 1 else a) 0 t.target.Snapshot.congested
  in
  (ncong, Array.length t.result.Core.Lia.kept)

let absolute_errors t =
  Metrics.absolute_errors ~actual:t.target.Snapshot.realized
    ~inferred:t.result.Core.Lia.loss_rates

let error_factors t =
  Metrics.error_factors ~actual:t.target.Snapshot.realized
    ~inferred:t.result.Core.Lia.loss_rates ()

(* Error samples restricted to the actually-congested links — the links
   whose loss rates LIA determines (Table 2 / Figure 6 convention: on the
   others the inferred rate is the 0 approximation by construction). *)
let congested_subset t errs =
  let out = ref [] in
  Array.iteri
    (fun k c -> if c then out := errs.(k) :: !out)
    t.target.Snapshot.congested;
  !out

let congested_absolute_errors t = congested_subset t (absolute_errors t)

let congested_error_factors t = congested_subset t (error_factors t)

let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

(* Fixed per-experiment seed streams so every experiment is reproducible
   independently of the others. *)
let seeds ~base n = Array.init n (fun k -> base + (k * 7919))

(* CPU availability for honest speedup reporting: on a 1-CPU host a jobs
   sweep measures scheduling overhead, not parallelism, so its speedups
   are recorded as advisory. *)
let host_cpus () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> close_in ic);
    if !n > 0 then !n else Domain.recommended_domain_count ()
  with Sys_error _ -> Domain.recommended_domain_count ()

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let note fmt = Printf.printf ("   " ^^ fmt ^^ "\n")

let row fmt = Printf.printf (fmt ^^ "\n")

let pct x = 100. *. x
