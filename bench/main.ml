(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Sections 6 and 7). With no argument it runs everything;
   otherwise pass experiment ids (fig3 fig5 fig6 tab2 fig7 fig8 fig9 tab3
   duration timing ablations). See DESIGN.md for the per-experiment
   index and EXPERIMENTS.md for paper-vs-measured numbers. *)

let experiments =
  [
    ("fig3", Fig3.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("tab2", Tab2.run);
    ("fig7", Tab2.run_fig7);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("tab3", Tab3.run);
    ("duration", Tab3.run);
    ("timing", Timing.run);
    ("timing-sweep", Timing.run_sweep);
    ("timing-smoke", Timing.run_smoke);
    ("obs-smoke", Timing.run_obs_smoke);
    ("obs2-smoke", Timing.run_obs2_smoke);
    ("chaos-smoke", Chaos.run_smoke);
    ("solver-smoke", Solver.run_smoke);
    ("solver-crossover", Solver.run_crossover);
    ("precond-crossover", Solver.run_precond_crossover);
    ("precond-smoke", Solver.run_precond_smoke);
    ("crossval-smoke", Crossval.run_smoke);
    ("crossval-grid", Crossval.run_grid);
    ("ablations", Ablations.run);
    ("delay", Ext_delay.run);
    ("baselines", Baselines.run);
    ("dual", Dual.run);
  ]

let run_all () =
  Fig3.run ();
  Fig5.run ();
  Fig6.run ();
  Tab2.run_both ();
  Fig8.run ();
  Fig9.run ();
  Tab3.run ();
  Baselines.run ();
  Dual.run ();
  Ext_delay.run ();
  Ablations.run ();
  Timing.run ()

let () =
  match Array.to_list Sys.argv with
  | [] | [ _ ] ->
      let t0 = Unix.gettimeofday () in
      run_all ();
      Printf.printf "\nall experiments completed in %.1f s\n"
        (Unix.gettimeofday () -. t0)
  | _ :: names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
