(* chaos-smoke: an 8-seed fault matrix pushed through the checked
   pipeline on a small overlay. One seed per fault kind (plus a
   kitchen-sink mix), asserting the acceptance trichotomy on every run:
   clean verdicts must be bit-for-bit the unchecked pipeline, degraded
   verdicts must carry finite estimates, refusals must carry no result —
   and nothing may escape as an exception. Wired into the [chaos-smoke]
   dune alias so the fault injector and the degradation ladder cannot
   rot. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Faults = Netsim.Faults
module Lia = Core.Lia

let fault_matrix =
  [
    (1, "drop=0.25");
    (2, "miss=0.95");
    (3, "nan=0.1");
    (4, "oor=0.1");
    (5, "neg=0.1");
    (6, "dup=0.3");
    (7, "churn=2@0.4,route_shift=0.6");
    (8, "drop=0.15,miss=0.08,nan=0.03,oor=0.03,neg=0.02,dup=0.1,churn=1@0.5");
  ]

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let result_matches (a : Lia.result) (b : Lia.result) =
  Array.for_all2 bits_equal a.Lia.loss_rates b.Lia.loss_rates
  && Array.for_all2 bits_equal a.Lia.variances b.Lia.variances

let result_finite (r : Lia.result) =
  Array.for_all Float.is_finite r.Lia.loss_rates
  && Array.for_all Float.is_finite r.Lia.variances

let run_smoke () =
  Exp_common.header "chaos smoke (8-seed fault matrix, checked pipeline)";
  let rng = Nstats.Rng.create 2026 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:13 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:12 in
  let y_now = target.Netsim.Snapshot.y in
  Exp_common.row "%-6s %-58s %-10s %s" "seed" "spec" "health" "checked";
  List.iter
    (fun (seed, kinds) ->
      let spec_str = Printf.sprintf "seed=%d,%s" seed kinds in
      let spec =
        match Faults.parse spec_str with
        | Ok t -> t
        | Error msg -> failwith (Printf.sprintf "chaos-smoke: %s" msg)
      in
      let y, schedule = Faults.apply spec y_learn in
      let checked =
        try Lia.infer_checked ~r ~y_learn:y ~y_now ()
        with e ->
          failwith
            (Printf.sprintf "chaos-smoke: %s escaped with %s" spec_str
               (Printexc.to_string e))
      in
      let verdict =
        match checked with
        | { Lia.health = Lia.Clean; result = Some res } ->
            if not (result_matches res (Lia.infer ~r ~y_learn:y ~y_now ())) then
              failwith
                (Printf.sprintf "chaos-smoke: %s clean but differs from infer"
                   spec_str);
            "= Lia.infer bit-for-bit"
        | { Lia.health = Lia.Degraded _; result = Some res } ->
            if not (result_finite res) then
              failwith
                (Printf.sprintf "chaos-smoke: %s degraded with non-finite \
                                 estimates" spec_str);
            "finite estimates"
        | { Lia.health = Lia.Refused _; result = None } -> "no result served"
        | _ -> failwith (Printf.sprintf "chaos-smoke: %s malformed verdict" spec_str)
      in
      ignore schedule;
      Exp_common.row "%-6d %-58s %-10s %s" seed kinds
        (Lia.health_label checked.Lia.health)
        verdict)
    fault_matrix;
  (* determinism across the matrix: re-running the worst seed reproduces
     the schedule and the verdict exactly *)
  let spec =
    match Faults.parse "seed=8,drop=0.15,miss=0.08,dup=0.1,churn=1@0.5" with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let y1, s1 = Faults.apply spec y_learn in
  let y2, s2 = Faults.apply spec y_learn in
  if s1 <> s2 then failwith "chaos-smoke: schedules differ across runs";
  let c1 = Lia.infer_checked ~r ~y_learn:y1 ~y_now () in
  let c2 = Lia.infer_checked ~r ~y_learn:y2 ~y_now () in
  if Lia.health_summary c1.Lia.health <> Lia.health_summary c2.Lia.health then
    failwith "chaos-smoke: verdicts differ across runs";
  Exp_common.note
    "all 8 fault seeds landed in a typed outcome; schedules and verdicts \
     reproduce bit-for-bit"
