(* Tests for the statistics substrate: RNG determinism and distribution
   sanity, online accumulators, descriptive statistics, ECDF, histogram. *)

module Rng = Nstats.Rng
module Online = Nstats.Online
module D = Nstats.Descriptive
module Ecdf = Nstats.Ecdf
module Histogram = Nstats.Histogram

let check_float = Alcotest.(check (float 1e-9))

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.uint64 a) (Rng.uint64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 a = Rng.uint64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.uint64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.uint64 a) (Rng.uint64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 a = Rng.uint64 b then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 4)

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.create 13 in
  let acc = Online.create () in
  for _ = 1 to 100_000 do
    Online.add acc (Rng.float rng)
  done;
  close ~tol:0.01 "uniform mean" 0.5 (Online.mean acc);
  close ~tol:0.01 "uniform variance" (1. /. 12.) (Online.variance acc)

let test_rng_int_uniform () =
  let rng = Rng.create 17 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int rng 10 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      close ~tol:0.01 "each bucket ~10%" 0.1 (float_of_int c /. float_of_int n))
    counts

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n = 0" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_bool_bias () =
  let rng = Rng.create 19 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool rng 0.3 then incr hits
  done;
  close ~tol:0.01 "bernoulli 0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_geometric_mean () =
  let rng = Rng.create 23 in
  let acc = Online.create () in
  let p = 0.25 in
  for _ = 1 to 50_000 do
    Online.add acc (float_of_int (Rng.geometric rng p))
  done;
  (* failures before success: mean (1-p)/p = 3 *)
  close ~tol:0.1 "geometric mean" 3. (Online.mean acc)

let test_rng_geometric_certain () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "p=1 gives 0" 0 (Rng.geometric rng 1.)

let test_rng_binomial_moments () =
  let rng = Rng.create 29 in
  let check n p =
    let acc = Online.create () in
    for _ = 1 to 20_000 do
      Online.add acc (float_of_int (Rng.binomial rng n p))
    done;
    let nf = float_of_int n in
    close ~tol:(0.05 *. nf *. p) "binomial mean" (nf *. p) (Online.mean acc);
    close
      ~tol:(0.15 *. nf *. p *. (1. -. p))
      "binomial variance"
      (nf *. p *. (1. -. p))
      (Online.variance acc)
  in
  check 10 0.3;
  (* large-n regime exercises the normal approximation *)
  check 1000 0.1

let test_rng_binomial_edges () =
  let rng = Rng.create 31 in
  Alcotest.(check int) "p=0" 0 (Rng.binomial rng 100 0.);
  Alcotest.(check int) "p=1" 100 (Rng.binomial rng 100 1.);
  Alcotest.(check int) "n=0" 0 (Rng.binomial rng 0 0.5);
  for _ = 1 to 1000 do
    let x = Rng.binomial rng 50 0.5 in
    Alcotest.(check bool) "in range" true (x >= 0 && x <= 50)
  done

let test_rng_exponential () =
  let rng = Rng.create 37 in
  let acc = Online.create () in
  for _ = 1 to 50_000 do
    Online.add acc (Rng.exponential rng 2.)
  done;
  close ~tol:0.02 "exponential mean 1/rate" 0.5 (Online.mean acc)

let test_rng_gaussian () =
  let rng = Rng.create 41 in
  let acc = Online.create () in
  for _ = 1 to 100_000 do
    Online.add acc (Rng.gaussian rng)
  done;
  close ~tol:0.02 "gaussian mean" 0. (Online.mean acc);
  close ~tol:0.03 "gaussian variance" 1. (Online.variance acc)

let test_rng_pareto_support () =
  let rng = Rng.create 43 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "pareto >= xmin" true (Rng.pareto rng 2.5 1.5 >= 1.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 47 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 53 in
  let s = Rng.sample_without_replacement rng 10 20 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.length sorted = 10 &&
    Array.for_all (fun x -> x >= 0 && x < 20) sorted in
  let rec no_dup i = i >= 9 || (sorted.(i) <> sorted.(i + 1) && no_dup (i + 1)) in
  Alcotest.(check bool) "distinct and in range" true (distinct && no_dup 0)

(* --- Online ------------------------------------------------------------- *)

let test_online_matches_batch () =
  let xs = [| 3.1; -2.; 0.5; 8.; 8.; -1.25 |] in
  let acc = Online.create () in
  Array.iter (Online.add acc) xs;
  check_float "mean" (D.mean xs) (Online.mean acc);
  close ~tol:1e-9 "variance" (D.variance xs) (Online.variance acc)

let test_online_empty () =
  let acc = Online.create () in
  check_float "mean empty" 0. (Online.mean acc);
  check_float "variance empty" 0. (Online.variance acc);
  Alcotest.(check int) "count" 0 (Online.count acc)

let test_online_single () =
  let acc = Online.create () in
  Online.add acc 5.;
  check_float "variance of one" 0. (Online.variance acc);
  check_float "population variance of one" 0. (Online.variance_population acc)

let test_online_merge () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i)) in
  let a = Online.create () and b = Online.create () and whole = Online.create () in
  Array.iteri (fun i x ->
      Online.add whole x;
      Online.add (if i < 30 then a else b) x)
    xs;
  let merged = Online.merge a b in
  close ~tol:1e-9 "merged mean" (Online.mean whole) (Online.mean merged);
  close ~tol:1e-9 "merged variance" (Online.variance whole) (Online.variance merged)

let test_online_cov_matches_batch () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] and ys = [| 2.; 1.; 4.; 3.; 6. |] in
  let acc = Online.Cov.create () in
  Array.iteri (fun i x -> Online.Cov.add acc x ys.(i)) xs;
  close ~tol:1e-9 "covariance" (D.covariance xs ys) (Online.Cov.covariance acc);
  close ~tol:1e-9 "correlation" (D.correlation xs ys) (Online.Cov.correlation acc)

let test_online_cov_degenerate () =
  let acc = Online.Cov.create () in
  Online.Cov.add acc 1. 1.;
  check_float "cov of one pair" 0. (Online.Cov.covariance acc);
  let const = Online.Cov.create () in
  Online.Cov.add const 1. 5.;
  Online.Cov.add const 1. 7.;
  check_float "correlation with constant margin" 0. (Online.Cov.correlation const)

(* --- Descriptive -------------------------------------------------------- *)

let test_descriptive_basic () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (D.mean xs);
  close ~tol:1e-9 "variance" (32. /. 7.) (D.variance xs);
  check_float "min" 2. (D.minimum xs);
  check_float "max" 9. (D.maximum xs);
  check_float "median" 4.5 (D.median xs)

let test_descriptive_quantile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "q0" 1. (D.quantile xs 0.);
  check_float "q1" 4. (D.quantile xs 1.);
  check_float "q0.5 interpolates" 2.5 (D.quantile xs 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Descriptive.quantile: q out of [0,1]") (fun () ->
      ignore (D.quantile xs 1.5))

let test_descriptive_quantile_unsorted () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "median of unsorted" 2.5 (D.median xs)

let test_descriptive_covariance_sign () =
  let xs = [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "positive with itself" true (D.covariance xs xs > 0.);
  let neg = D.covariance xs [| 3.; 2.; 1. |] in
  Alcotest.(check bool) "negative when anti-aligned" true (neg < 0.);
  check_float "correlation bound" (-1.) (D.correlation xs [| 3.; 2.; 1. |])

let test_spearman () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  (* any monotone transform has rank correlation exactly 1 *)
  let ys = Array.map (fun x -> exp x) xs in
  check_float "monotone" 1. (D.spearman xs ys);
  check_float "anti-monotone" (-1.) (D.spearman xs (Array.map (fun x -> -.x) ys));
  (* ties handled via mid-ranks: still well-defined and bounded *)
  let tied = [| 1.; 1.; 2.; 2.; 3. |] in
  let s = D.spearman tied [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check bool) "ties bounded" true (s > 0.8 && s <= 1.)

let test_covariance_matrix () =
  (* 3 observations of 2 variables *)
  let obs = Linalg.Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let sigma = D.covariance_matrix obs in
  check_float "var x" 1. (Linalg.Matrix.get sigma 0 0);
  check_float "var y" 4. (Linalg.Matrix.get sigma 1 1);
  check_float "cov xy" 2. (Linalg.Matrix.get sigma 0 1);
  Alcotest.(check bool) "symmetric" true (Linalg.Matrix.is_symmetric sigma)

let test_mean_vector () =
  let obs = Linalg.Matrix.of_arrays [| [| 1.; 10. |]; [| 3.; 30. |] |] in
  Alcotest.(check bool) "mean vector" true
    (Linalg.Vector.approx_equal [| 2.; 20. |] (D.mean_vector obs))

(* --- Ecdf --------------------------------------------------------------- *)

let test_ecdf_eval () =
  let e = Ecdf.of_sample [| 1.; 2.; 2.; 3. |] in
  check_float "below support" 0. (Ecdf.eval e 0.);
  check_float "at 1" 0.25 (Ecdf.eval e 1.);
  check_float "at 2" 0.75 (Ecdf.eval e 2.);
  check_float "at 2.5" 0.75 (Ecdf.eval e 2.5);
  check_float "at max" 1. (Ecdf.eval e 3.);
  check_float "above support" 1. (Ecdf.eval e 100.)

let test_ecdf_inverse () =
  let e = Ecdf.of_sample [| 10.; 20.; 30.; 40. |] in
  check_float "q 0.25" 10. (Ecdf.inverse e 0.25);
  check_float "q 0.5" 20. (Ecdf.inverse e 0.5);
  check_float "q 1.0" 40. (Ecdf.inverse e 1.0)

let test_ecdf_curve () =
  let e = Ecdf.of_sample (Array.init 100 (fun i -> float_of_int i)) in
  let curve = Ecdf.curve ~points:11 e in
  Alcotest.(check int) "points" 11 (List.length curve);
  let x0, f0 = List.hd curve in
  check_float "starts at min" 0. x0;
  close ~tol:0.02 "F at min" 0.01 f0;
  let xn, fn = List.nth curve 10 in
  check_float "ends at max" 99. xn;
  check_float "F at max" 1. fn

let test_ecdf_monotone () =
  let e = Ecdf.of_sample [| 5.; 1.; 3.; 3.; 2. |] in
  let prev = ref (-1.) in
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "monotone" true (f >= !prev);
      prev := f)
    (Ecdf.curve ~points:30 e)

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 9.99;
  Histogram.add h 5.;
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "bin 5" 1 (Histogram.bin_count h 5);
  Alcotest.(check int) "total" 3 (Histogram.count h)

let test_histogram_saturation () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Histogram.add h (-5.);
  Histogram.add h 42.;
  Alcotest.(check int) "low edge" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "high edge" 1 (Histogram.bin_count h 3)

let test_histogram_normalized () =
  let h = Histogram.create ~lo:0. ~hi:2. ~bins:2 in
  Histogram.add h 0.5;
  Histogram.add h 0.7;
  Histogram.add h 1.5;
  let n = Histogram.normalized h in
  close ~tol:1e-9 "bin 0 freq" (2. /. 3.) n.(0);
  close ~tol:1e-9 "bin 1 freq" (1. /. 3.) n.(1)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:1. ~hi:3. ~bins:2 in
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin 1 lo" 2. lo;
  check_float "bin 1 hi" 3. hi

(* --- Asciiplot ------------------------------------------------------------ *)

let test_plot_renders_points () =
  let c = Nstats.Asciiplot.create ~width:20 ~height:8 () in
  Nstats.Asciiplot.scatter c [ (0., 0.); (1., 1.) ];
  let out = Nstats.Asciiplot.render c in
  Alcotest.(check bool) "contains marks" true (String.contains out '*');
  Alcotest.(check bool) "frame present" true (String.contains out '\xe2' || String.contains out '|')

let test_plot_empty_canvas () =
  let c = Nstats.Asciiplot.create () in
  let out = Nstats.Asciiplot.render c in
  Alcotest.(check bool) "renders" true (String.length out > 0);
  Alcotest.(check bool) "no marks" true (not (String.contains out '*'))

let test_plot_too_small () =
  Alcotest.check_raises "tiny canvas"
    (Invalid_argument "Asciiplot.create: canvas too small") (fun () ->
      ignore (Nstats.Asciiplot.create ~width:2 ~height:2 ()))

let test_plot_cdf_shape () =
  let e = Ecdf.of_sample (Array.init 100 float_of_int) in
  let out = Nstats.Asciiplot.plot_cdf e in
  Alcotest.(check bool) "renders a curve" true (String.contains out '+')

let test_plot_series_multiple_marks () =
  let out =
    Nstats.Asciiplot.plot_series
      [ ('a', [ (0., 0.); (10., 5.) ]); ('b', [ (0., 5.); (10., 0.) ]) ]
  in
  Alcotest.(check bool) "mark a" true (String.contains out 'a');
  Alcotest.(check bool) "mark b" true (String.contains out 'b')

(* --- Properties ---------------------------------------------------------- *)

let prop_quantile_within_range =
  QCheck.Test.make ~count:200 ~name:"quantile lies within sample range"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 40) (float_range (-50.) 50.))
              (float_range 0. 1.))
    (fun (xs, q) ->
      let v = D.quantile xs q in
      v >= D.minimum xs && v <= D.maximum xs)

let prop_online_equals_batch =
  QCheck.Test.make ~count:200 ~name:"online variance equals batch variance"
    QCheck.(array_of_size (QCheck.Gen.int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let acc = Online.create () in
      Array.iter (Online.add acc) xs;
      Float.abs (Online.variance acc -. D.variance xs) < 1e-6)

let prop_ecdf_bounds =
  QCheck.Test.make ~count:200 ~name:"ecdf eval in [0,1]"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 30) (float_range (-10.) 10.))
              (float_range (-20.) 20.))
    (fun (xs, x) ->
      let f = Ecdf.eval (Ecdf.of_sample xs) x in
      f >= 0. && f <= 1.)

let prop_binomial_range =
  QCheck.Test.make ~count:200 ~name:"binomial result within [0,n]"
    QCheck.(triple small_nat (float_range 0. 1.) int)
    (fun (n, p, seed) ->
      let rng = Rng.create seed in
      let x = Rng.binomial rng n p in
      x >= 0 && x <= n)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_quantile_within_range; prop_online_equals_batch; prop_ecdf_bounds;
      prop_binomial_range ]

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float moments" `Quick test_rng_float_mean;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "geometric certain" `Quick test_rng_geometric_certain;
          Alcotest.test_case "binomial moments" `Slow test_rng_binomial_moments;
          Alcotest.test_case "binomial edges" `Quick test_rng_binomial_edges;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          Alcotest.test_case "gaussian" `Quick test_rng_gaussian;
          Alcotest.test_case "pareto support" `Quick test_rng_pareto_support;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches batch" `Quick test_online_matches_batch;
          Alcotest.test_case "empty" `Quick test_online_empty;
          Alcotest.test_case "single" `Quick test_online_single;
          Alcotest.test_case "merge" `Quick test_online_merge;
          Alcotest.test_case "cov matches batch" `Quick test_online_cov_matches_batch;
          Alcotest.test_case "cov degenerate" `Quick test_online_cov_degenerate;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "basic" `Quick test_descriptive_basic;
          Alcotest.test_case "quantile" `Quick test_descriptive_quantile;
          Alcotest.test_case "quantile unsorted" `Quick test_descriptive_quantile_unsorted;
          Alcotest.test_case "covariance sign" `Quick test_descriptive_covariance_sign;
          Alcotest.test_case "spearman" `Quick test_spearman;
          Alcotest.test_case "covariance matrix" `Quick test_covariance_matrix;
          Alcotest.test_case "mean vector" `Quick test_mean_vector;
        ] );
      ( "ecdf",
        [
          Alcotest.test_case "eval" `Quick test_ecdf_eval;
          Alcotest.test_case "inverse" `Quick test_ecdf_inverse;
          Alcotest.test_case "curve" `Quick test_ecdf_curve;
          Alcotest.test_case "monotone" `Quick test_ecdf_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "saturation" `Quick test_histogram_saturation;
          Alcotest.test_case "normalized" `Quick test_histogram_normalized;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
        ] );
      ( "asciiplot",
        [
          Alcotest.test_case "renders points" `Quick test_plot_renders_points;
          Alcotest.test_case "empty canvas" `Quick test_plot_empty_canvas;
          Alcotest.test_case "too small" `Quick test_plot_too_small;
          Alcotest.test_case "cdf shape" `Quick test_plot_cdf_shape;
          Alcotest.test_case "series marks" `Quick test_plot_series_multiple_marks;
        ] );
      ("properties", properties);
    ]
