test/test_dual.mli:
