test/test_properties.ml: Alcotest Array Core Float Linalg List Lossmodel Netsim Nstats QCheck QCheck_alcotest Topology
