test/test_linalg.ml: Alcotest Array Cholesky Conjugate_gradient Float Gen Linalg List Matrix Ortho QCheck QCheck_alcotest Qr Sparse Vector
