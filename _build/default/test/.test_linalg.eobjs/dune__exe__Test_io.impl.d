test/test_io.ml: Alcotest Array Filename Linalg Netsim Nstats QCheck QCheck_alcotest Sys Topology
