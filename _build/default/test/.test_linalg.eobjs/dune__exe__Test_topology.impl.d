test/test_topology.ml: Alcotest Array Core Float Hashtbl Linalg List Nstats Option QCheck QCheck_alcotest Topology
