test/test_lossmodel.ml: Alcotest List Lossmodel Nstats QCheck QCheck_alcotest
