test/test_multicast.ml: Alcotest Array Core Float Linalg List Lossmodel Netsim Nstats Printf QCheck QCheck_alcotest Topology
