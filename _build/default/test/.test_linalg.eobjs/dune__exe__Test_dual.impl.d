test/test_dual.ml: Alcotest Array Core Float Linalg List Nstats Topology
