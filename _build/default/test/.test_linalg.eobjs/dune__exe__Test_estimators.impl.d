test/test_estimators.ml: Alcotest Array Core Linalg Lossmodel Netsim Nstats Topology
