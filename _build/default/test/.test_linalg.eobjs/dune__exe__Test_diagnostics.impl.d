test/test_diagnostics.ml: Alcotest Array Core Hashtbl Linalg List Lossmodel Netsim Nstats Option String Topology
