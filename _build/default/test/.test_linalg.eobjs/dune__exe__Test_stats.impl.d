test/test_stats.ml: Alcotest Array Float Linalg List Nstats QCheck QCheck_alcotest String
