test/test_extensions.ml: Alcotest Array Core Float Linalg List Lossmodel Netsim Nstats QCheck QCheck_alcotest Topology
