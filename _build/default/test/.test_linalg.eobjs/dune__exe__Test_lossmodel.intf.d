test/test_lossmodel.mli:
