test/test_netsim.ml: Alcotest Array Float Linalg List Lossmodel Netsim Nstats QCheck QCheck_alcotest
