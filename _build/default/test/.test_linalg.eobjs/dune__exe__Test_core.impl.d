test/test_core.ml: Alcotest Array Core Format Linalg List Lossmodel Netsim Nstats QCheck QCheck_alcotest Topology
