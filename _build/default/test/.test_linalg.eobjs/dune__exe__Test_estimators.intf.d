test/test_estimators.mli:
