(* Tests for the EM/MLE first-moment baseline, the bootstrap confidence
   intervals, and cross-checks between the variance estimation paths. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Rng = Nstats.Rng
module Em = Core.Em_tomography
module VE = Core.Variance_estimator
module Ci = Core.Variance_ci

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* --- EM / MLE --------------------------------------------------------- *)

let test_em_single_link_exact () =
  (* one path over one link: the MLE is the empirical rate k/S *)
  let r = Sparse.create ~cols:1 [| [| 0 |] |] in
  let result = Em.estimate r ~delivered:[| 900 |] ~probes:1000 in
  close ~tol:1e-3 "MLE = k/S" 0.9 result.Em.transmission.(0)

let test_em_disjoint_links_exact () =
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let result = Em.estimate r ~delivered:[| 500; 999 |] ~probes:1000 in
  close ~tol:1e-3 "link 0" 0.5 result.Em.transmission.(0);
  close ~tol:1e-3 "link 1" 0.999 result.Em.transmission.(1)

let test_em_chain_product_right () =
  (* two links in series observed by one path: only the product is
     determined; the MLE must reproduce it even though the split is
     arbitrary *)
  let r = Sparse.create ~cols:2 [| [| 0; 1 |] |] in
  let result = Em.estimate r ~delivered:[| 810 |] ~probes:1000 in
  close ~tol:1e-3 "product = 0.81"
    0.81
    (result.Em.transmission.(0) *. result.Em.transmission.(1))

let test_em_likelihood_increases () =
  let rng = Rng.create 3 in
  let tb = Topology.Tree_gen.generate rng ~nodes:60 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let statuses = Netsim.Snapshot.draw_statuses rng config ~links:(Sparse.cols r) in
  let snap = Netsim.Snapshot.generate rng config ~congested:statuses r in
  let delivered = snap.Netsim.Snapshot.received in
  let start = Array.make (Sparse.cols r) 0.99 in
  let ll0 = Em.log_likelihood r ~delivered ~probes:1000 start in
  let result = Em.estimate r ~delivered ~probes:1000 in
  Alcotest.(check bool) "likelihood improved" true (result.Em.log_likelihood >= ll0);
  Array.iter
    (fun t -> Alcotest.(check bool) "rate in (0,1)" true (t > 0. && t < 1.))
    result.Em.transmission

let test_em_underdetermined_vs_lia () =
  (* the headline comparison: on a tree campaign, LIA's per-link errors
     beat the first-moment MLE's (which cannot place the loss within a
     path) *)
  let rng = Rng.create 7 in
  let tb = Topology.Tree_gen.generate rng ~nodes:150 ~max_branching:6 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:31 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:30 in
  let lia = Core.Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  let em =
    Em.estimate r ~delivered:target.Netsim.Snapshot.received ~probes:1000
  in
  let em_loss = Array.map (fun t -> 1. -. t) em.Em.transmission in
  let err v =
    Nstats.Descriptive.mean
      (Core.Metrics.absolute_errors ~actual:target.Netsim.Snapshot.realized
         ~inferred:v)
  in
  Alcotest.(check bool) "LIA at least as accurate" true
    (err lia.Core.Lia.loss_rates <= err em_loss +. 1e-9)

let test_em_validation () =
  Alcotest.check_raises "bad delivery count"
    (Invalid_argument "Em_tomography.estimate: delivery count out of range")
    (fun () ->
      ignore
        (Em.estimate
           (Sparse.create ~cols:1 [| [| 0 |] |])
           ~delivered:[| 2000 |] ~probes:1000))

(* --- Variance estimation cross-checks ---------------------------------- *)

let test_streaming_equals_explicit_a () =
  let rng = Rng.create 11 in
  let tb = Topology.Tree_gen.generate rng ~nodes:80 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:25 in
  let y = run.Netsim.Simulator.y in
  let streaming = VE.estimate_streaming ~r ~y () in
  (* explicit A + normal equations, same drop-negative convention *)
  let a = Core.Augmented.build r in
  let sigma = Core.Covariance.sigma_star y in
  let explicit = VE.solve ~a ~sigma_star:sigma () in
  Alcotest.(check bool) "same solution" true
    (Vector.approx_equal ~tol:1e-6 streaming explicit)

(* --- Bootstrap confidence intervals ------------------------------------- *)

let ci_setup () =
  let rng = Rng.create 13 in
  let tb = Topology.Tree_gen.generate rng ~nodes:80 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:40 in
  (rng, r, run.Netsim.Simulator.y, run.Netsim.Simulator.snapshots.(0))

let test_ci_contains_estimate () =
  let rng, r, y, _ = ci_setup () in
  let intervals = Ci.bootstrap ~replicates:30 rng ~r ~y in
  Array.iter
    (fun iv ->
      Alcotest.(check bool) "lo <= hi" true (iv.Ci.lo <= iv.Ci.hi);
      Alcotest.(check bool) "bounds sane" true (iv.Ci.lo >= 0.))
    intervals

let test_ci_congested_links_nonzero () =
  let rng, r, y, snap0 = ci_setup () in
  let intervals = Ci.bootstrap ~replicates:30 rng ~r ~y in
  (* statically congested links should have clearly positive variance *)
  Array.iteri
    (fun k c ->
      if c then
        Alcotest.(check bool) "congested lower bound positive" true
          (intervals.(k).Ci.lo > 0.))
    snap0.Netsim.Snapshot.congested

let test_ci_stable_ranking () =
  (* controlled case: three single-link paths, one link far noisier than
     the rest — its top-1 ranking must be provably separated, while a
     top-2 cut through the two near-identical quiet links must not be *)
  let rng = Rng.create 17 in
  let r = Sparse.create ~cols:3 [| [| 0 |]; [| 1 |]; [| 2 |] |] in
  let m = 60 in
  let y =
    Matrix.init m 3 (fun _ i ->
        let sd = if i = 0 then 1.0 else 0.01 in
        sd *. Rng.gaussian rng)
  in
  let intervals = Ci.bootstrap ~replicates:60 rng ~r ~y in
  Alcotest.(check bool) "loud link separated" true
    (Ci.stable_ranking intervals ~top:1);
  Alcotest.(check bool) "cut through twins not separated" false
    (Ci.stable_ranking intervals ~top:2)

let test_ci_validation () =
  let rng, r, y, _ = ci_setup () in
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Variance_ci.bootstrap: confidence out of (0,1)")
    (fun () -> ignore (Ci.bootstrap ~confidence:2. rng ~r ~y))

let () =
  Alcotest.run "estimators"
    [
      ( "em",
        [
          Alcotest.test_case "single link exact" `Quick test_em_single_link_exact;
          Alcotest.test_case "disjoint links exact" `Quick test_em_disjoint_links_exact;
          Alcotest.test_case "chain product" `Quick test_em_chain_product_right;
          Alcotest.test_case "likelihood increases" `Quick test_em_likelihood_increases;
          Alcotest.test_case "underdetermined vs LIA" `Slow
            test_em_underdetermined_vs_lia;
          Alcotest.test_case "validation" `Quick test_em_validation;
        ] );
      ( "variance-estimation",
        [
          Alcotest.test_case "streaming = explicit A" `Quick
            test_streaming_equals_explicit_a;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "interval sanity" `Slow test_ci_contains_estimate;
          Alcotest.test_case "congested nonzero" `Slow test_ci_congested_links_nonzero;
          Alcotest.test_case "stable ranking" `Slow test_ci_stable_ranking;
          Alcotest.test_case "validation" `Quick test_ci_validation;
        ] );
    ]
