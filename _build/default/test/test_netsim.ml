(* Tests for the interval utilities and the snapshot/campaign simulator. *)

module Rng = Nstats.Rng
module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Intervals = Netsim.Intervals
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Loss_model = Lossmodel.Loss_model

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* A small fixed routing matrix: 3 paths over 4 links. *)
let r3 = Sparse.create ~cols:4 [| [| 0; 1 |]; [| 0; 2 |]; [| 2; 3 |] |]

let config ?(fidelity = Snapshot.Packet_level) ?(p = 0.5) ?(probes = 1000) () =
  { (Snapshot.default_config Loss_model.llrd1) with
    Snapshot.fidelity; congestion_prob = p; probes }

(* --- Intervals ------------------------------------------------------------ *)

let test_intervals_union () =
  Alcotest.(check (list (pair int int))) "overlapping merge" [ (0, 5) ]
    (Intervals.union [ [ (0, 3) ]; [ (2, 5) ] ]);
  Alcotest.(check (list (pair int int))) "adjacent merge" [ (0, 4) ]
    (Intervals.union [ [ (0, 2) ]; [ (2, 4) ] ]);
  Alcotest.(check (list (pair int int))) "disjoint kept" [ (0, 1); (3, 4) ]
    (Intervals.union [ [ (0, 1) ]; [ (3, 4) ] ]);
  Alcotest.(check (list (pair int int))) "empty dropped" [ (1, 2) ]
    (Intervals.union [ [ (1, 2); (5, 5) ]; [] ])

let test_intervals_lengths () =
  Alcotest.(check int) "total" 5 (Intervals.total_length [ (0, 2); (4, 7) ]);
  Alcotest.(check int) "union length" 5
    (Intervals.union_length [ [ (0, 3) ]; [ (2, 5) ] ]);
  Alcotest.(check int) "complement" 95
    (Intervals.complement_length ~steps:100 [ [ (0, 3) ]; [ (2, 5) ] ]);
  Alcotest.(check int) "complement clips" 90
    (Intervals.complement_length ~steps:100 [ [ (-5, 5); (95, 200) ] ])

let test_intervals_empty () =
  Alcotest.(check int) "empty union" 0 (Intervals.union_length []);
  Alcotest.(check int) "full complement" 10 (Intervals.complement_length ~steps:10 [])

(* --- Snapshot ---------------------------------------------------------------- *)

let test_snapshot_dimensions () =
  let rng = Rng.create 1 in
  let cfg = config () in
  let statuses = Snapshot.draw_statuses rng cfg ~links:4 in
  let s = Snapshot.generate rng cfg ~congested:statuses r3 in
  Alcotest.(check int) "loss rates per link" 4 (Array.length s.Snapshot.loss_rates);
  Alcotest.(check int) "realized per link" 4 (Array.length s.Snapshot.realized);
  Alcotest.(check int) "received per path" 3 (Array.length s.Snapshot.received);
  Alcotest.(check int) "y per path" 3 (Array.length s.Snapshot.y)

let test_snapshot_rates_respect_statuses () =
  let rng = Rng.create 3 in
  let cfg = config () in
  let statuses = [| true; false; true; false |] in
  for _ = 1 to 50 do
    let s = Snapshot.generate rng cfg ~congested:statuses r3 in
    Array.iteri
      (fun k rate ->
        if statuses.(k) then
          Alcotest.(check bool) "congested rate high" true (rate >= 0.05 && rate <= 0.2)
        else Alcotest.(check bool) "good rate low" true (rate >= 0. && rate <= 0.002))
      s.Snapshot.loss_rates
  done

let test_snapshot_received_bounds () =
  let rng = Rng.create 5 in
  List.iter
    (fun fidelity ->
      let cfg = config ~fidelity () in
      let statuses = Snapshot.draw_statuses rng cfg ~links:4 in
      let s = Snapshot.generate rng cfg ~congested:statuses r3 in
      Array.iter
        (fun rx -> Alcotest.(check bool) "0 <= rx <= S" true (rx >= 0 && rx <= 1000))
        s.Snapshot.received;
      Array.iter
        (fun y -> Alcotest.(check bool) "y finite and <= 0" true
            (Float.is_finite y && y <= 0.))
        s.Snapshot.y)
    [ Snapshot.Packet_level; Snapshot.Packet_per_path; Snapshot.Flow_level ]

let test_snapshot_no_loss_when_all_good_rate_zero () =
  let rng = Rng.create 7 in
  let model =
    Loss_model.custom ~name:"lossless" ~good:(0., 0.) ~congested:(0.5, 0.5)
      ~threshold:0.1
  in
  let cfg = { (config ()) with Snapshot.model; congestion_prob = 0. } in
  let statuses = Array.make 4 false in
  let s = Snapshot.generate rng cfg ~congested:statuses r3 in
  Array.iter (fun rx -> Alcotest.(check int) "all probes arrive" 1000 rx)
    s.Snapshot.received;
  Array.iter (fun y -> close "y = 0" 0. y) s.Snapshot.y

let test_snapshot_shared_fidelity_consistency () =
  (* With shared chains, two paths crossing exactly the same single lossy
     link must measure exactly the same number of received probes. *)
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 0 |]; [| 1 |] |] in
  let rng = Rng.create 9 in
  let cfg = config ~p:1. () in
  let s = Snapshot.generate rng cfg ~congested:[| true; true |] r in
  Alcotest.(check int) "same link, same measurement"
    s.Snapshot.received.(0) s.Snapshot.received.(1)

let test_snapshot_realized_matches_received () =
  (* single-link paths: received = S * (1 - realized) exactly under shared
     packet fidelity *)
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let rng = Rng.create 11 in
  let cfg = config ~p:1. () in
  let s = Snapshot.generate rng cfg ~congested:[| true; true |] r in
  Array.iteri
    (fun i rx ->
      close ~tol:1e-9 "received consistent with realized"
        (1000. *. (1. -. s.Snapshot.realized.(i)))
        (float_of_int rx))
    s.Snapshot.received

let test_snapshot_status_length_check () =
  let rng = Rng.create 13 in
  let cfg = config () in
  Alcotest.check_raises "bad status vector"
    (Invalid_argument "Snapshot.generate: status vector length mismatch")
    (fun () -> ignore (Snapshot.generate rng cfg ~congested:[| true |] r3))

let test_snapshot_y_clamped_at_total_loss () =
  let rng = Rng.create 15 in
  let model =
    Loss_model.custom ~name:"killer" ~good:(0., 0.) ~congested:(1., 1.)
      ~threshold:0.5
  in
  let cfg = { (config ()) with Snapshot.model } in
  let s = Snapshot.generate rng cfg ~congested:[| true; true; true; true |] r3 in
  Array.iter
    (fun y -> Alcotest.(check bool) "finite despite total loss" true
        (Float.is_finite y))
    s.Snapshot.y

(* --- Simulator ------------------------------------------------------------------ *)

let test_simulator_run_shape () =
  let rng = Rng.create 17 in
  let run = Simulator.run rng (config ()) r3 ~count:10 in
  Alcotest.(check int) "snapshots" 10 (Array.length run.Simulator.snapshots);
  Alcotest.(check int) "y rows" 10 (Matrix.rows run.Simulator.y);
  Alcotest.(check int) "y cols" 3 (Matrix.cols run.Simulator.y)

let test_simulator_static_statuses () =
  let rng = Rng.create 19 in
  let run = Simulator.run ~dynamics:Simulator.Static rng (config ()) r3 ~count:8 in
  let first = run.Simulator.snapshots.(0).Snapshot.congested in
  Array.iter
    (fun (s : Snapshot.t) ->
      Alcotest.(check (array bool)) "statuses fixed" first s.Snapshot.congested)
    run.Simulator.snapshots

let test_simulator_iid_statuses_vary () =
  let rng = Rng.create 21 in
  let r_many = Sparse.create ~cols:50
      (Array.init 50 (fun i -> [| i |])) in
  let run = Simulator.run ~dynamics:Simulator.Iid rng (config ()) r_many ~count:6 in
  let first = run.Simulator.snapshots.(0).Snapshot.congested in
  let any_change =
    Array.exists
      (fun (s : Snapshot.t) -> s.Snapshot.congested <> first)
      run.Simulator.snapshots
  in
  Alcotest.(check bool) "iid statuses change" true any_change

let test_simulator_markov_stationary () =
  let rng = Rng.create 23 in
  let links = 400 in
  let r_many = Sparse.create ~cols:links (Array.init links (fun i -> [| i |])) in
  let cfg = config ~p:0.2 ~probes:10 () in
  let run =
    Simulator.run ~dynamics:(Simulator.Markov 0.7) rng cfg r_many ~count:50
  in
  (* long-run congestion fraction should hover near p = 0.2 *)
  let total = ref 0 in
  Array.iter
    (fun (s : Snapshot.t) ->
      Array.iter (fun c -> if c then incr total) s.Snapshot.congested)
    run.Simulator.snapshots;
  let frac = float_of_int !total /. float_of_int (links * 50) in
  close ~tol:0.03 "stationary congestion fraction" 0.2 frac

let test_split_learning () =
  let rng = Rng.create 25 in
  let run = Simulator.run rng (config ()) r3 ~count:11 in
  let y_learn, target = Simulator.split_learning run ~learning:10 in
  Alcotest.(check int) "learning rows" 10 (Matrix.rows y_learn);
  Alcotest.(check bool) "target is the 11th snapshot" true
    (target == run.Simulator.snapshots.(10));
  Alcotest.check_raises "learning too large"
    (Invalid_argument "Simulator.split_learning: need 0 < learning < count")
    (fun () -> ignore (Simulator.split_learning run ~learning:11))

let test_mean_variance_per_path () =
  let rng = Rng.create 27 in
  let run = Simulator.run rng (config ~p:0.5 ()) r3 ~count:40 in
  let mv = Simulator.mean_variance_per_path run in
  Alcotest.(check int) "per path" 3 (Array.length mv);
  Array.iter
    (fun (m, v) ->
      Alcotest.(check bool) "mean in [0,1]" true (m >= 0. && m <= 1.);
      Alcotest.(check bool) "variance non-negative" true (v >= 0.))
    mv

let test_monotone_mean_variance () =
  (* Assumption S.3: on average, paths with higher mean loss have higher
     loss variance. Check rank correlation is positive on a static mix of
     congested and good links. *)
  let rng = Rng.create 29 in
  let links = 40 in
  let r = Sparse.create ~cols:links (Array.init links (fun i -> [| i |])) in
  let run = Simulator.run rng (config ~p:0.3 ()) r ~count:60 in
  let mv = Simulator.mean_variance_per_path run in
  let means = Array.map fst mv and vars = Array.map snd mv in
  Alcotest.(check bool) "mean-variance positively correlated" true
    (Nstats.Descriptive.correlation means vars > 0.5)

(* --- Properties -------------------------------------------------------------- *)

let prop_union_length_bounded =
  QCheck.Test.make ~count:200 ~name:"union length <= sum of lengths"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 6)
              (list_of_size (QCheck.Gen.int_range 0 5)
                 (pair (int_range 0 50) (int_range 0 50))))
    (fun raw ->
      let ls = List.map (List.map (fun (a, b) -> (min a b, max a b))) raw in
      let sum =
        List.fold_left (fun acc l -> acc + Intervals.total_length l) 0 ls
      in
      Intervals.union_length ls <= sum)

let prop_complement_plus_union =
  QCheck.Test.make ~count:200 ~name:"complement + clipped union = steps"
    QCheck.(pair (int_range 1 100)
              (list_of_size (QCheck.Gen.int_range 0 5)
                 (pair (int_range 0 99) (int_range 1 40))))
    (fun (steps, raw) ->
      let ls = [ List.map (fun (a, len) -> (a, a + len)) raw ] in
      let clipped =
        Intervals.union ls
        |> List.map (fun (a, b) -> (max 0 a, min steps b))
        |> List.filter (fun (a, b) -> b > a)
      in
      Intervals.complement_length ~steps ls + Intervals.total_length clipped = steps)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_length_bounded; prop_complement_plus_union ]

let () =
  Alcotest.run "netsim"
    [
      ( "intervals",
        [
          Alcotest.test_case "union" `Quick test_intervals_union;
          Alcotest.test_case "lengths" `Quick test_intervals_lengths;
          Alcotest.test_case "empty" `Quick test_intervals_empty;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "dimensions" `Quick test_snapshot_dimensions;
          Alcotest.test_case "rates respect statuses" `Quick
            test_snapshot_rates_respect_statuses;
          Alcotest.test_case "received bounds" `Quick test_snapshot_received_bounds;
          Alcotest.test_case "lossless network" `Quick
            test_snapshot_no_loss_when_all_good_rate_zero;
          Alcotest.test_case "shared fidelity consistency" `Quick
            test_snapshot_shared_fidelity_consistency;
          Alcotest.test_case "realized matches received" `Quick
            test_snapshot_realized_matches_received;
          Alcotest.test_case "status length check" `Quick
            test_snapshot_status_length_check;
          Alcotest.test_case "total loss clamped" `Quick
            test_snapshot_y_clamped_at_total_loss;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "run shape" `Quick test_simulator_run_shape;
          Alcotest.test_case "static statuses" `Quick test_simulator_static_statuses;
          Alcotest.test_case "iid statuses vary" `Quick test_simulator_iid_statuses_vary;
          Alcotest.test_case "markov stationary" `Slow test_simulator_markov_stationary;
          Alcotest.test_case "split learning" `Quick test_split_learning;
          Alcotest.test_case "mean/variance per path" `Quick
            test_mean_variance_per_path;
          Alcotest.test_case "monotone mean-variance (S.3)" `Slow
            test_monotone_mean_variance;
        ] );
      ("properties", properties);
    ]
