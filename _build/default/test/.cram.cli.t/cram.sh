  $ lia_cli gen --kind tree --nodes 60 --seed 4 -o run.tb
  $ lia_cli sim --testbed run.tb --snapshots 12 --seed 5 -o run.meas
  $ lia_cli infer --testbed run.tb --measurements run.meas --top 4
  $ lia_cli check --testbed run.tb
  $ lia_cli validate --testbed run.tb --measurements run.meas --epsilon 0.01 | cut -d'(' -f2
  $ lia_cli infer --testbed run.tb --measurements run.tb
