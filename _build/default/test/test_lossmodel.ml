(* Tests for the LLRD loss models and the Gilbert / Bernoulli loss
   processes. *)

module Rng = Nstats.Rng
module Loss_model = Lossmodel.Loss_model
module Gilbert = Lossmodel.Gilbert
module Bernoulli = Lossmodel.Bernoulli

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* --- Loss_model ---------------------------------------------------------- *)

let test_llrd1_ranges () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let g = Loss_model.draw_good rng Loss_model.llrd1 in
    Alcotest.(check bool) "good in [0,0.002]" true (g >= 0. && g <= 0.002);
    let c = Loss_model.draw_congested rng Loss_model.llrd1 in
    Alcotest.(check bool) "congested in [0.05,0.2]" true (c >= 0.05 && c <= 0.2)
  done

let test_llrd2_ranges () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let c = Loss_model.draw_congested rng Loss_model.llrd2 in
    Alcotest.(check bool) "congested in [0.002,1]" true (c >= 0.002 && c <= 1.)
  done

let test_threshold_classification () =
  Alcotest.(check bool) "below threshold" false
    (Loss_model.is_congested Loss_model.llrd1 0.001);
  Alcotest.(check bool) "above threshold" true
    (Loss_model.is_congested Loss_model.llrd1 0.01);
  Alcotest.(check bool) "at threshold" false
    (Loss_model.is_congested Loss_model.llrd1 0.002)

let test_custom_validation () =
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Loss_model.custom: inverted range") (fun () ->
      ignore
        (Loss_model.custom ~name:"bad" ~good:(0.5, 0.1) ~congested:(0.5, 0.9)
           ~threshold:0.2));
  Alcotest.check_raises "rate above 1"
    (Invalid_argument "Loss_model.custom: rates must lie in [0,1]") (fun () ->
      ignore
        (Loss_model.custom ~name:"bad" ~good:(0., 0.1) ~congested:(0.5, 1.5)
           ~threshold:0.2))

(* --- Gilbert -------------------------------------------------------------- *)

let test_gilbert_stationary () =
  let g = Gilbert.make ~loss_rate:0.1 () in
  close ~tol:1e-9 "stationary matches target" 0.1 (Gilbert.stationary_bad g);
  let g2 = Gilbert.make ~loss_rate:0. () in
  close "zero rate" 0. (Gilbert.stationary_bad g2)

let test_gilbert_defaults () =
  let g = Gilbert.make ~loss_rate:0.1 () in
  close ~tol:1e-9 "stay_bad is 0.35" 0.35 g.Gilbert.stay_bad;
  (* to_bad = 0.65 * 0.1 / 0.9 *)
  close ~tol:1e-9 "to_bad formula" (0.65 *. 0.1 /. 0.9) g.Gilbert.to_bad

let test_gilbert_clamped () =
  (* extreme rates clamp to_bad at 1; realized rate saturates below target *)
  let g = Gilbert.make ~loss_rate:0.99 () in
  Alcotest.(check bool) "clamped" true (g.Gilbert.to_bad <= 1.);
  Alcotest.(check bool) "still very lossy" true (Gilbert.stationary_bad g > 0.5)

let test_gilbert_invalid () =
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Gilbert.make: loss rate out of [0,1]") (fun () ->
      ignore (Gilbert.make ~loss_rate:1.5 ()));
  Alcotest.check_raises "stay_bad out of range"
    (Invalid_argument "Gilbert.make: stay_bad out of [0,1)") (fun () ->
      ignore (Gilbert.make ~stay_bad:1. ~loss_rate:0.5 ()))

let test_gilbert_intervals_valid () =
  let rng = Rng.create 11 in
  let g = Gilbert.make ~loss_rate:0.2 () in
  for _ = 1 to 50 do
    let ivs = Gilbert.bad_intervals rng g ~steps:500 in
    let rec check_sorted prev = function
      | [] -> true
      | (a, b) :: rest -> a >= prev && b > a && b <= 500 && check_sorted b rest
    in
    Alcotest.(check bool) "disjoint, ordered, in range" true (check_sorted 0 ivs)
  done

let test_gilbert_loss_count_mean () =
  let rng = Rng.create 13 in
  let g = Gilbert.make ~loss_rate:0.1 () in
  let acc = Nstats.Online.create () in
  for _ = 1 to 3000 do
    Nstats.Online.add acc (float_of_int (Gilbert.losses rng g ~steps:1000))
  done;
  close ~tol:3. "mean losses ~ rate * steps" 100. (Nstats.Online.mean acc)

let test_gilbert_burstiness () =
  (* Gilbert losses must be over-dispersed relative to Bernoulli: this is
     the property that gives congested links their high variance. *)
  let rng = Rng.create 17 in
  let g = Gilbert.make ~loss_rate:0.1 () in
  let gil = Nstats.Online.create () and ber = Nstats.Online.create () in
  for _ = 1 to 3000 do
    Nstats.Online.add gil (float_of_int (Gilbert.losses rng g ~steps:1000));
    Nstats.Online.add ber (float_of_int (Bernoulli.losses rng ~rate:0.1 ~steps:1000))
  done;
  Alcotest.(check bool) "gilbert over-dispersed" true
    (Nstats.Online.variance gil > 1.3 *. Nstats.Online.variance ber)

let test_gilbert_zero_and_full () =
  let rng = Rng.create 19 in
  let z = Gilbert.make ~loss_rate:0. () in
  Alcotest.(check int) "no losses at rate 0" 0 (Gilbert.losses rng z ~steps:1000);
  Alcotest.(check (list (pair int int))) "no intervals" []
    (Gilbert.bad_intervals rng z ~steps:100)

(* --- Bernoulli -------------------------------------------------------------- *)

let test_bernoulli_mean () =
  let rng = Rng.create 23 in
  let acc = Nstats.Online.create () in
  for _ = 1 to 3000 do
    Nstats.Online.add acc (float_of_int (Bernoulli.losses rng ~rate:0.05 ~steps:1000))
  done;
  close ~tol:1.5 "mean" 50. (Nstats.Online.mean acc)

let test_bernoulli_intervals_match_rate () =
  let rng = Rng.create 29 in
  let acc = Nstats.Online.create () in
  for _ = 1 to 2000 do
    let ivs = Bernoulli.bad_intervals rng ~rate:0.05 ~steps:1000 in
    let losses = List.fold_left (fun a (x, y) -> a + y - x) 0 ivs in
    Nstats.Online.add acc (float_of_int losses)
  done;
  close ~tol:1.5 "interval mass matches rate" 50. (Nstats.Online.mean acc);
  (* Bernoulli interval counts must match binomial variance (independence) *)
  close ~tol:8. "binomial variance" (1000. *. 0.05 *. 0.95)
    (Nstats.Online.variance acc)

let test_bernoulli_edges () =
  let rng = Rng.create 31 in
  Alcotest.(check int) "rate 0" 0 (Bernoulli.losses rng ~rate:0. ~steps:100);
  Alcotest.(check int) "rate 1" 100 (Bernoulli.losses rng ~rate:1. ~steps:100);
  Alcotest.(check (list (pair int int))) "rate 1 single interval" [ (0, 100) ]
    (Bernoulli.bad_intervals rng ~rate:1. ~steps:100)

(* --- Properties ---------------------------------------------------------------- *)

let prop_gilbert_intervals_disjoint =
  QCheck.Test.make ~count:200 ~name:"gilbert intervals disjoint and bounded"
    QCheck.(pair (float_range 0.001 0.9) (int_range 1 500))
    (fun (rate, steps) ->
      let rng = Rng.create (steps * 31) in
      let g = Gilbert.make ~loss_rate:rate () in
      let ivs = Gilbert.bad_intervals rng g ~steps in
      let rec ok prev = function
        | [] -> true
        | (a, b) :: rest -> a >= prev && b > a && b <= steps && ok b rest
      in
      ok 0 ivs)

let prop_bernoulli_counts_in_range =
  QCheck.Test.make ~count:200 ~name:"bernoulli losses within [0, steps]"
    QCheck.(pair (float_range 0. 1.) (int_range 0 300))
    (fun (rate, steps) ->
      let rng = Rng.create (steps + 1) in
      let l = Bernoulli.losses rng ~rate ~steps in
      l >= 0 && l <= steps)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_gilbert_intervals_disjoint; prop_bernoulli_counts_in_range ]

let () =
  Alcotest.run "lossmodel"
    [
      ( "loss_model",
        [
          Alcotest.test_case "llrd1 ranges" `Quick test_llrd1_ranges;
          Alcotest.test_case "llrd2 ranges" `Quick test_llrd2_ranges;
          Alcotest.test_case "threshold" `Quick test_threshold_classification;
          Alcotest.test_case "custom validation" `Quick test_custom_validation;
        ] );
      ( "gilbert",
        [
          Alcotest.test_case "stationary" `Quick test_gilbert_stationary;
          Alcotest.test_case "defaults" `Quick test_gilbert_defaults;
          Alcotest.test_case "clamped" `Quick test_gilbert_clamped;
          Alcotest.test_case "invalid" `Quick test_gilbert_invalid;
          Alcotest.test_case "interval validity" `Quick test_gilbert_intervals_valid;
          Alcotest.test_case "loss count mean" `Slow test_gilbert_loss_count_mean;
          Alcotest.test_case "burstiness" `Slow test_gilbert_burstiness;
          Alcotest.test_case "zero and full" `Quick test_gilbert_zero_and_full;
        ] );
      ( "bernoulli",
        [
          Alcotest.test_case "mean" `Slow test_bernoulli_mean;
          Alcotest.test_case "intervals match rate" `Slow
            test_bernoulli_intervals_match_rate;
          Alcotest.test_case "edges" `Quick test_bernoulli_edges;
        ] );
      ("properties", properties);
    ]
