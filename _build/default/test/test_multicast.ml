(* Tests for the multicast probe simulator and the MINC estimator (the
   Table 1 multicast family). *)

module Sparse = Linalg.Sparse
module Rng = Nstats.Rng
module Graph = Topology.Graph
module Testbed = Topology.Testbed
module Snapshot = Netsim.Snapshot
module Multicast = Netsim.Multicast
module Minc = Core.Minc

let close ?(tol = 1e-9) msg expected got = Alcotest.(check (float tol)) msg expected got

(* Figure 1 testbed: beacon 0, destinations 2 4 5; virtual links
   0:(0-1) 1:(1-2) 2:(1-3) 3:(3-4) 4:(3-5). *)
let fig1_routing () =
  let nodes =
    Array.init 6 (fun i ->
        { Graph.id = i;
          kind = (if i = 0 || i = 2 || i = 4 || i = 5 then Graph.Host else Graph.Router);
          as_id = 0 })
  in
  let graph = Graph.create ~nodes ~edges:[| (0, 1); (1, 2); (1, 3); (3, 4); (3, 5) |] in
  Testbed.routing { Testbed.graph; beacons = [| 0 |]; destinations = [| 2; 4; 5 |] }

(* Analytic gamma for independent per-probe losses with transmission t:
   A_k = prod of t along root path; leaves gamma = A; internal
   gamma_k = A_k * (1 - prod_c (1 - gamma_c / A_k)). *)
let analytic_gamma (tree : Multicast.tree) t =
  let nc = Array.length t in
  let a = Array.make nc 0. in
  Array.iter
    (fun v ->
      let up = if tree.Multicast.parent.(v) < 0 then 1. else a.(tree.Multicast.parent.(v)) in
      a.(v) <- up *. t.(v))
    tree.Multicast.order;
  let gamma = Array.make nc 0. in
  for k = nc - 1 downto 0 do
    let v = tree.Multicast.order.(k) in
    let kids = tree.Multicast.children.(v) in
    if Array.length kids = 0 then gamma.(v) <- a.(v)
    else begin
      let miss =
        Array.fold_left (fun acc c -> acc *. (1. -. (gamma.(c) /. a.(v)))) 1. kids
      in
      gamma.(v) <- a.(v) *. (1. -. miss)
    end
  done;
  (a, gamma)

let test_tree_structure () =
  let red = fig1_routing () in
  let tree = Multicast.tree_of_routing red in
  (* exactly one root *)
  let roots =
    Array.to_list tree.Multicast.parent |> List.filter (fun p -> p = -1)
  in
  Alcotest.(check int) "single root" 1 (List.length roots);
  (* the root has two children, one of which has two children *)
  let root = tree.Multicast.order.(0) in
  Alcotest.(check int) "root fan-out" 2 (Array.length tree.Multicast.children.(root));
  let grandchildren =
    Array.fold_left
      (fun acc c -> acc + Array.length tree.Multicast.children.(c))
      0 tree.Multicast.children.(root)
  in
  Alcotest.(check int) "grandchildren" 2 grandchildren;
  (* every path ends at a distinct leaf link *)
  let leaves = Array.to_list tree.Multicast.leaf_of_path in
  Alcotest.(check int) "three leaves" 3 (List.length (List.sort_uniq compare leaves))

let test_tree_rejects_mesh () =
  let rng = Rng.create 3 in
  let tb = Topology.Waxman.generate rng ~nodes:40 ~hosts:6 () in
  let red = Testbed.routing tb in
  match Multicast.tree_of_routing red with
  | _ -> Alcotest.fail "mesh accepted as tree"
  | exception Invalid_argument _ -> ()

let test_minc_inverts_analytic_gamma () =
  let red = fig1_routing () in
  let tree = Multicast.tree_of_routing red in
  let t_true = [| 0.9; 0.95; 0.85; 0.8; 0.99 |] in
  let _, gamma = analytic_gamma tree t_true in
  let result = Minc.infer tree ~gamma in
  Array.iteri
    (fun v t ->
      close ~tol:1e-6 (Printf.sprintf "link %d" v) t result.Minc.transmission.(v))
    t_true

let test_minc_on_simulated_bernoulli () =
  (* large S, Bernoulli process: the estimator converges on the realized
     rates *)
  let red = fig1_routing () in
  let tree = Multicast.tree_of_routing red in
  let rng = Rng.create 5 in
  let config =
    { (Snapshot.default_config Lossmodel.Loss_model.llrd1) with
      Snapshot.process = Snapshot.Bernoulli; probes = 50_000 }
  in
  let congested = [| true; false; true; false; false |] in
  let obs = Multicast.observe rng config ~congested tree in
  let result = Minc.infer tree ~gamma:obs.Multicast.gamma in
  Array.iteri
    (fun v realized ->
      close ~tol:0.02
        (Printf.sprintf "link %d rate" v)
        (1. -. realized)
        result.Minc.transmission.(v))
    obs.Multicast.realized

let test_observe_consistency () =
  let red = fig1_routing () in
  let tree = Multicast.tree_of_routing red in
  let rng = Rng.create 7 in
  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1 in
  let congested = [| false; true; false; false; true |] in
  let obs = Multicast.observe rng config ~congested tree in
  (* gamma of an ancestor is at least the gamma of any descendant *)
  Array.iteri
    (fun v p ->
      if p >= 0 then
        Alcotest.(check bool) "gamma monotone up the tree" true
          (obs.Multicast.gamma.(p) >= obs.Multicast.gamma.(v) -. 1e-12))
    tree.Multicast.parent;
  (* per-path received counts match the leaf-link gamma (each leaf is a
     single destination) *)
  Array.iteri
    (fun i leaf ->
      close ~tol:1e-9 "leaf gamma = received fraction"
        (float_of_int obs.Multicast.received.(i) /. 1000.)
        obs.Multicast.gamma.(leaf))
    tree.Multicast.leaf_of_path

let test_minc_campaign_locates_congestion () =
  let rng = Rng.create 11 in
  let tb = Topology.Tree_gen.generate rng ~nodes:200 ~max_branching:6 () in
  let red = Testbed.routing tb in
  let tree = Multicast.tree_of_routing red in
  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let nc = Sparse.cols red.Topology.Routing.matrix in
  let congested = Snapshot.draw_statuses rng config ~links:nc in
  (* average gammas over a short campaign, then locate congestion *)
  let gammas =
    Array.init 10 (fun _ ->
        (Multicast.observe rng config ~congested tree).Multicast.gamma)
  in
  let result = Minc.infer_average tree ~gammas in
  let inferred = Array.map (fun t -> 1. -. t > 0.002) result.Minc.transmission in
  let loc = Core.Metrics.location ~actual:congested ~inferred in
  Alcotest.(check bool) "multicast DR high" true (loc.Core.Metrics.dr > 0.9)

let prop_minc_roundtrip =
  QCheck.Test.make ~count:25 ~name:"MINC inverts analytic gammas on random trees"
    QCheck.(int_range 20 100)
    (fun n ->
      let rng = Rng.create (n * 37) in
      let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
      let red = Testbed.routing tb in
      let tree = Multicast.tree_of_routing red in
      let nc = Array.length tree.Multicast.parent in
      let t_true =
        Array.init nc (fun k -> 0.7 +. (0.29 *. float_of_int ((k * 13) mod 17) /. 17.))
      in
      let _, gamma = analytic_gamma tree t_true in
      let result = Minc.infer tree ~gamma in
      let ok = ref true in
      Array.iteri
        (fun v t ->
          if Float.abs (t -. result.Minc.transmission.(v)) > 1e-5 then ok := false)
        t_true;
      !ok)

let () =
  Alcotest.run "multicast"
    [
      ( "tree",
        [
          Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "rejects mesh" `Quick test_tree_rejects_mesh;
        ] );
      ( "minc",
        [
          Alcotest.test_case "inverts analytic gamma" `Quick
            test_minc_inverts_analytic_gamma;
          Alcotest.test_case "simulated bernoulli" `Slow
            test_minc_on_simulated_bernoulli;
          Alcotest.test_case "observe consistency" `Quick test_observe_consistency;
          Alcotest.test_case "campaign locates congestion" `Slow
            test_minc_campaign_locates_congestion;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_minc_roundtrip ]);
    ]
