(* Tests for the comparison methods of Table 1 (CLINK, MILS) and the
   Section 8 extensions (delay tomography, anomaly detection, streaming
   monitor). *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Rng = Nstats.Rng
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Delay = Netsim.Delay
module Clink = Core.Clink
module Mils = Core.Mils
module Delay_lia = Core.Delay_lia
module Anomaly = Core.Anomaly
module Monitor = Core.Monitor

let close ?(tol = 1e-9) msg expected got = Alcotest.(check (float tol)) msg expected got

(* paper Figure 1 routing matrix: 3 paths, 5 links *)
let r_fig1 = Sparse.create ~cols:5 [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 0; 2; 4 |] |]

(* two-beacon mesh of Figure 2 style: adds reverse-direction beacon *)
let tree_setup seed =
  let rng = Rng.create seed in
  let tb = Topology.Tree_gen.generate rng ~nodes:300 ~max_branching:8 () in
  let red = Topology.Testbed.routing tb in
  (rng, red.Topology.Routing.matrix)

(* --- CLINK ------------------------------------------------------------- *)

let test_clink_learn_probabilities () =
  (* single-link paths: good fraction maps directly to p_k *)
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let model = Clink.learn ~r ~good_fraction:[| 0.9; 0.5 |] in
  close ~tol:1e-6 "p0" 0.1 model.Clink.congestion_prob.(0);
  close ~tol:1e-6 "p1" 0.5 model.Clink.congestion_prob.(1)

let test_clink_prior_breaks_ties () =
  (* one bad path over two candidate links; the habitually-congested link
     gets blamed *)
  let r = Sparse.create ~cols:2 [| [| 0; 1 |] |] in
  let model = { Clink.congestion_prob = [| 0.01; 0.6 |] } in
  let verdict = Clink.infer model r ~bad_paths:[| true |] in
  Alcotest.(check (array bool)) "blames the likely link" [| false; true |] verdict

let test_clink_good_paths_exonerate () =
  let model = { Clink.congestion_prob = Array.make 5 0.5 } in
  let verdict = Clink.infer model r_fig1 ~bad_paths:[| false; true; true |] in
  Alcotest.(check bool) "link on good path clean" false verdict.(0);
  Alcotest.(check bool) "link on good path clean" false verdict.(1)

let test_clink_good_fractions () =
  let r = Sparse.create ~cols:1 [| [| 0 |] |] in
  let y = Matrix.of_arrays [| [| log 0.999 |]; [| log 0.8 |]; [| log 0.9999 |] |] in
  let gf = Clink.good_fractions y ~r ~threshold:0.002 in
  close ~tol:1e-9 "two of three good" (2. /. 3.) gf.(0)

let test_clink_beats_scfs_with_history () =
  (* Same trial: CLINK's learnt prior should not be worse than SCFS's
     uniform prior on average. Run a static campaign where one specific
     link is chronically congested. *)
  let rng, r = tree_setup 71 in
  let config =
    Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Simulator.run rng config r ~count:41 in
  let y_learn, target = Simulator.split_learning run ~learning:40 in
  let gf = Clink.good_fractions y_learn ~r ~threshold:0.002 in
  let model = Clink.learn ~r ~good_fraction:gf in
  let bad_paths =
    Core.Scfs.classify_paths r ~y_now:target.Snapshot.y ~threshold:0.002
  in
  let clink_verdict = Clink.infer model r ~bad_paths in
  let scfs_verdict = Core.Scfs.infer r ~bad_paths in
  let actual = target.Snapshot.congested in
  let c = Core.Metrics.location ~actual ~inferred:clink_verdict in
  let s = Core.Metrics.location ~actual ~inferred:scfs_verdict in
  Alcotest.(check bool) "clink detects at least as well" true
    (c.Core.Metrics.dr >= s.Core.Metrics.dr -. 0.15)

(* --- MILS ------------------------------------------------------------------- *)

let test_mils_identifiable_rows () =
  let t = Mils.prepare r_fig1 in
  for i = 0 to 2 do
    Alcotest.(check bool) "full rows identifiable" true
      (Mils.identifiable t (Sparse.row r_fig1 i))
  done

let test_mils_single_links_not_identifiable () =
  let t = Mils.prepare r_fig1 in
  (* rank(R) = 3 < 5: no single link of the figure-1 tree is identifiable *)
  for j = 0 to 4 do
    Alcotest.(check bool) "single link not identifiable" false
      (Mils.identifiable t [| j |])
  done

let test_mils_decompose_fig1 () =
  let t = Mils.prepare r_fig1 in
  let segments = Mils.decompose t in
  (* each path is its own minimal identifiable sequence here *)
  Array.iteri
    (fun i segs ->
      Alcotest.(check int) "one segment" 1 (List.length segs);
      Alcotest.(check (array int)) "segment is the path" (Sparse.row r_fig1 i)
        (List.hd segs))
    segments

let test_mils_finer_with_more_beacons () =
  (* with a second beacon probing the shared subtree directly, finer
     segments become identifiable *)
  let r2 =
    Sparse.create ~cols:5
      [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 0; 2; 4 |]; [| 3 |]; [| 2; 4 |] |]
  in
  let t = Mils.prepare r2 in
  Alcotest.(check bool) "link 3 now identifiable" true (Mils.identifiable t [| 3 |]);
  let segs = Mils.decompose_path t [| 0; 2; 3 |] in
  Alcotest.(check bool) "path splits into >= 2 segments" true (List.length segs >= 2)

let test_mils_rates_exact_on_identifiable () =
  let r2 =
    Sparse.create ~cols:3 [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 1; 2 |]; [| 1 |] |]
  in
  let t = Mils.prepare r2 in
  let trans = [| 0.9; 0.8; 0.95 |] in
  let y =
    Array.init 4 (fun i ->
        Array.fold_left (fun acc j -> acc +. log trans.(j)) 0. (Sparse.row r2 i))
  in
  let segs = Mils.decompose t in
  let rates = Mils.segment_loss_rates t ~y_now:y segs in
  List.iter
    (fun (seg, rate) ->
      let expected =
        1. -. Array.fold_left (fun acc j -> acc *. trans.(j)) 1. seg
      in
      close ~tol:1e-6 "aggregate rate" expected rate)
    rates

let test_mils_average_length () =
  let segs = [| [ [| 0; 1 |]; [| 2 |] ]; [ [| 3; 4; 5 |] ] |] in
  close "avg" 2. (Mils.average_length segs)

(* --- Delay tomography ---------------------------------------------------------- *)

let test_delay_snapshot_additive () =
  let rng = Rng.create 81 in
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 0; 1 |] |] in
  let config = { Delay.default_config with Delay.jitter = 0. } in
  let network = Delay.make_network rng config ~links:2 in
  let snap = Delay.generate rng config network ~congested:[| true; false |] r in
  let expected0 = network.Delay.propagation.(0) +. snap.Delay.queueing.(0) in
  close ~tol:1e-9 "path 0 = link 0" expected0 snap.Delay.y.(0);
  close ~tol:1e-9 "path 1 adds link 1"
    (expected0 +. network.Delay.propagation.(1) +. snap.Delay.queueing.(1))
    snap.Delay.y.(1)

let test_delay_queueing_ranges () =
  let rng = Rng.create 83 in
  let r = Sparse.create ~cols:3 [| [| 0; 1; 2 |] |] in
  let config = Delay.default_config in
  let network = Delay.make_network rng config ~links:3 in
  for _ = 1 to 20 do
    let snap = Delay.generate rng config network ~congested:[| true; false; true |] r in
    Alcotest.(check bool) "congested queues heavily" true
      (snap.Delay.queueing.(0) >= 20. && snap.Delay.queueing.(2) >= 20.);
    Alcotest.(check bool) "good barely queues" true (snap.Delay.queueing.(1) <= 0.3)
  done

let test_delay_lia_end_to_end () =
  let rng, r = tree_setup 85 in
  let config = Delay.default_config in
  let network = Delay.make_network rng config ~links:(Sparse.cols r) in
  let snaps, y = Delay.run rng config network r ~count:51 in
  let y_learn = Matrix.init 50 (Sparse.rows r) (fun l i -> Matrix.get y l i) in
  let target = snaps.(50) in
  let result = Delay_lia.infer ~r ~y_learn ~y_now:target.Delay.y in
  let inferred = Delay_lia.congested result ~threshold:10. in
  let loc = Core.Metrics.location ~actual:target.Delay.congested ~inferred in
  Alcotest.(check bool) "delay DR high" true (loc.Core.Metrics.dr > 0.85);
  Alcotest.(check bool) "delay FPR low" true (loc.Core.Metrics.fpr < 0.25);
  (* queueing estimates of detected links within a few ms *)
  Array.iteri
    (fun k c ->
      if c && inferred.(k) then
        Alcotest.(check bool) "queueing magnitude right" true
          (Float.abs (result.Delay_lia.queueing.(k) -. target.Delay.queueing.(k))
          < 10.))
    target.Delay.congested

let test_delay_baselines () =
  let y = Matrix.of_arrays [| [| 5.; 2. |]; [| 3.; 4. |]; [| 7.; 1. |] |] in
  Alcotest.(check bool) "per-path minimum" true
    (Vector.approx_equal [| 3.; 1. |] (Delay_lia.baselines y))

(* --- Anomaly detection ------------------------------------------------------------ *)

let test_anomaly_learn_baseline () =
  let y = Matrix.of_arrays [| [| -0.1; -0.2 |]; [| -0.1; -0.4 |]; [| -0.1; -0.3 |] |] in
  let model = Anomaly.learn y in
  close ~tol:1e-9 "mean path 0" (-0.1) model.Anomaly.mean.(0);
  close ~tol:1e-9 "mean path 1" (-0.3) model.Anomaly.mean.(1);
  close ~tol:1e-9 "std floor applies" 1e-4 model.Anomaly.std.(0);
  close ~tol:1e-9 "std path 1" 0.1 model.Anomaly.std.(1)

let test_anomaly_detects_degradation () =
  let y = Matrix.of_arrays [| [| -0.1; -0.2 |]; [| -0.12; -0.22 |]; [| -0.11; -0.18 |] |] in
  let model = Anomaly.learn y in
  let anomalous = Anomaly.anomalous_paths model ~y_now:[| -0.5; -0.2 |] in
  Alcotest.(check (array bool)) "path 0 anomalous only" [| true; false |] anomalous;
  (* improvement is not an anomaly *)
  let better = Anomaly.anomalous_paths model ~y_now:[| -0.01; -0.2 |] in
  Alcotest.(check (array bool)) "improvement ignored" [| false; false |] better

let test_anomaly_localization () =
  (* both subtree paths degrade: the shared link is the suspect *)
  let model =
    Anomaly.learn
      (Matrix.of_arrays
         [| [| -0.01; -0.01; -0.01 |]; [| -0.012; -0.011; -0.012 |] |])
  in
  let _, links =
    Anomaly.detect model ~r:r_fig1 ~y_now:[| -0.011; -0.4; -0.42 |]
  in
  Alcotest.(check (array bool)) "shared link suspected"
    [| false; false; true; false; false |] links

let test_anomaly_end_to_end () =
  (* learn a quiet baseline, then congest one previously-quiet link *)
  let rng, r = tree_setup 91 in
  let config =
    { (Snapshot.default_config Lossmodel.Loss_model.internet) with
      Snapshot.congestion_prob = 0. }
  in
  let run = Simulator.run rng config r ~count:20 in
  let model = Anomaly.learn run.Simulator.y in
  (* craft an attacked snapshot: links all good except one *)
  let statuses = Array.make (Sparse.cols r) false in
  statuses.(Sparse.cols r / 2) <- true;
  let snap = Snapshot.generate rng config ~congested:statuses r in
  let anomalous, links = Anomaly.detect model ~r ~y_now:snap.Snapshot.y in
  let n_anom = Array.fold_left (fun a b -> if b then a + 1 else a) 0 anomalous in
  Alcotest.(check bool) "some paths anomalous" true (n_anom > 0);
  Alcotest.(check bool) "the congested link is a suspect" true
    links.(Sparse.cols r / 2)

(* --- Monitor ------------------------------------------------------------------------ *)

let test_monitor_window () =
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let m = Monitor.create ~r ~window:3 in
  Alcotest.(check bool) "not ready" false (Monitor.ready m);
  Monitor.observe m [| -0.1; -0.2 |];
  Monitor.observe m [| -0.1; -0.2 |];
  Monitor.observe m [| -0.1; -0.2 |];
  Alcotest.(check bool) "ready" true (Monitor.ready m);
  Monitor.observe m [| -0.3; -0.4 |];
  Alcotest.(check int) "window capped" 3 (Monitor.size m);
  let w = Monitor.window_matrix m in
  close ~tol:1e-9 "oldest evicted" (-0.1) (Matrix.get w 0 0);
  close ~tol:1e-9 "newest kept" (-0.3) (Matrix.get w 2 0)

let test_monitor_matches_batch_inference () =
  let rng, r = tree_setup 95 in
  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Simulator.run rng config r ~count:31 in
  let y_learn, target = Simulator.split_learning run ~learning:30 in
  let mon = Monitor.create ~r ~window:30 in
  for l = 0 to 29 do
    Monitor.observe mon (Matrix.row y_learn l)
  done;
  let streamed = Monitor.infer mon ~y_now:target.Snapshot.y in
  let batch = Core.Lia.infer ~r ~y_learn ~y_now:target.Snapshot.y () in
  Alcotest.(check bool) "same loss rates" true
    (Vector.approx_equal ~tol:1e-12 streamed.Core.Lia.loss_rates
       batch.Core.Lia.loss_rates)

let test_monitor_cache_invalidation () =
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let m = Monitor.create ~r ~window:2 in
  Monitor.observe m [| -0.1; -0.2 |];
  Monitor.observe m [| -0.3; -0.1 |];
  let v1 = Monitor.variances m in
  Monitor.observe m [| -0.9; -0.1 |];
  let v2 = Monitor.variances m in
  Alcotest.(check bool) "variances refreshed" false
    (Vector.approx_equal ~tol:1e-12 v1 v2)

let test_monitor_errors () =
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  Alcotest.check_raises "window too small"
    (Invalid_argument "Monitor.create: window < 2") (fun () ->
      ignore (Monitor.create ~r ~window:1));
  let m = Monitor.create ~r ~window:2 in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Monitor.observe: measurement length mismatch") (fun () ->
      Monitor.observe m [| 1. |])

(* --- Properties ------------------------------------------------------------------------ *)

let prop_mils_segments_partition =
  QCheck.Test.make ~count:20 ~name:"MILS segments partition each path"
    QCheck.(int_range 10 60)
    (fun n ->
      let rng = Rng.create (n * 23) in
      let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:4 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let t = Mils.prepare r in
      let segs = Mils.decompose t in
      Array.for_all
        (fun i ->
          let row = Sparse.row r i in
          let flat = Array.concat (segs.(i)) in
          flat = row)
        (Array.init (Sparse.rows r) (fun i -> i)))

let prop_clink_probabilities_in_range =
  QCheck.Test.make ~count:50 ~name:"CLINK probabilities stay in (0,1)"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (float_range 0. 1.))
    (fun fractions ->
      let np = List.length fractions in
      let r = Sparse.create ~cols:np (Array.init np (fun i -> [| i |])) in
      let model = Clink.learn ~r ~good_fraction:(Array.of_list fractions) in
      Array.for_all (fun p -> p > 0. && p < 1.) model.Clink.congestion_prob)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mils_segments_partition; prop_clink_probabilities_in_range ]

let () =
  Alcotest.run "extensions"
    [
      ( "clink",
        [
          Alcotest.test_case "learn probabilities" `Quick test_clink_learn_probabilities;
          Alcotest.test_case "prior breaks ties" `Quick test_clink_prior_breaks_ties;
          Alcotest.test_case "good paths exonerate" `Quick test_clink_good_paths_exonerate;
          Alcotest.test_case "good fractions" `Quick test_clink_good_fractions;
          Alcotest.test_case "history helps vs SCFS" `Slow
            test_clink_beats_scfs_with_history;
        ] );
      ( "mils",
        [
          Alcotest.test_case "rows identifiable" `Quick test_mils_identifiable_rows;
          Alcotest.test_case "single links not identifiable" `Quick
            test_mils_single_links_not_identifiable;
          Alcotest.test_case "figure 1 decomposition" `Quick test_mils_decompose_fig1;
          Alcotest.test_case "finer with more beacons" `Quick
            test_mils_finer_with_more_beacons;
          Alcotest.test_case "rates exact on identifiable" `Quick
            test_mils_rates_exact_on_identifiable;
          Alcotest.test_case "average length" `Quick test_mils_average_length;
        ] );
      ( "delay",
        [
          Alcotest.test_case "snapshot additive" `Quick test_delay_snapshot_additive;
          Alcotest.test_case "queueing ranges" `Quick test_delay_queueing_ranges;
          Alcotest.test_case "baselines" `Quick test_delay_baselines;
          Alcotest.test_case "end to end" `Slow test_delay_lia_end_to_end;
        ] );
      ( "anomaly",
        [
          Alcotest.test_case "learn baseline" `Quick test_anomaly_learn_baseline;
          Alcotest.test_case "detects degradation" `Quick test_anomaly_detects_degradation;
          Alcotest.test_case "localization" `Quick test_anomaly_localization;
          Alcotest.test_case "end to end" `Slow test_anomaly_end_to_end;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "window" `Quick test_monitor_window;
          Alcotest.test_case "matches batch" `Slow test_monitor_matches_batch_inference;
          Alcotest.test_case "cache invalidation" `Quick test_monitor_cache_invalidation;
          Alcotest.test_case "errors" `Quick test_monitor_errors;
        ] );
      ("properties", properties);
    ]
