(* Tests for the deployment diagnostics (identifiability checker), the
   probe scheduler, and the report writer. *)

module Sparse = Linalg.Sparse
module Rng = Nstats.Rng
module Identifiability = Core.Identifiability
module Schedule = Netsim.Schedule
module Report = Core.Report

let r_fig1 = Sparse.create ~cols:5 [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 0; 2; 4 |] |]

(* --- Identifiability --------------------------------------------------- *)

let test_fig1_identifiable () =
  Alcotest.(check bool) "figure 1 identifiable" true
    (Identifiability.is_identifiable r_fig1)

let test_random_topologies_identifiable () =
  (* Theorem 1: any alias-reduced shortest-path deployment passes *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let tb = Topology.Waxman.generate rng ~nodes:60 ~hosts:8 () in
      let red = Topology.Testbed.routing tb in
      Alcotest.(check bool) "mesh identifiable" true
        (Identifiability.is_identifiable red.Topology.Routing.matrix))
    [ 1; 2; 3 ]

let test_duplicate_columns_not_identifiable () =
  (* two alias links that were NOT grouped: identical columns *)
  let r = Sparse.create ~cols:3 [| [| 0; 1; 2 |]; [| 1; 2 |] |] in
  match Identifiability.check r with
  | Identifiability.Identifiable -> Alcotest.fail "should be dependent"
  | Identifiability.Dependent deps ->
      Alcotest.(check bool) "reports an entangled alias link" true
        (List.mem 1 deps || List.mem 2 deps)

let test_empty_matrix () =
  let r = Sparse.create ~cols:0 [||] in
  Alcotest.(check bool) "vacuously identifiable" true
    (Identifiability.is_identifiable r)

let test_assumptions_report () =
  let nodes =
    Array.init 4 (fun i ->
        { Topology.Graph.id = i;
          kind =
            (if i = 0 || i = 3 then Topology.Graph.Host else Topology.Graph.Router);
          as_id = 0 })
  in
  let graph =
    Topology.Graph.create ~nodes ~edges:[| (0, 1); (1, 3); (1, 2) |]
  in
  let p = Topology.Path.make ~graph ~nodes:[| 0; 1; 3 |] in
  let report = Identifiability.assumptions_report graph [| p |] in
  Alcotest.(check bool) "uncovered link detected" true
    (List.assoc "every link covered by a path" report = false);
  Alcotest.(check bool) "no fluttering" true
    (List.assoc "no route fluttering (T.2)" report);
  Alcotest.(check bool) "unique pairs" true
    (List.assoc "single path per beacon/destination pair" report);
  let dup = Identifiability.assumptions_report graph [| p; p |] in
  Alcotest.(check bool) "duplicate pair flagged" false
    (List.assoc "single path per beacon/destination pair" dup)

(* --- Schedule ------------------------------------------------------------- *)

let sample_routing seed hosts =
  let rng = Rng.create seed in
  let tb = Topology.Overlay.planetlab_like rng ~hosts ~ases:6 ~routers_per_as:4 () in
  Topology.Testbed.routing tb

let test_schedule_quota () =
  (* 40 B every 10 ms = 4000 B/s per train; 100 KB/s caps at 25 trains *)
  Alcotest.(check int) "paper quota" 25
    (Schedule.concurrent_paths_per_beacon Schedule.default_config)

let test_schedule_covers_all_paths_once () =
  let red = sample_routing 11 10 in
  let rng = Rng.create 13 in
  let s = Schedule.build rng Schedule.default_config red in
  let np = Array.length red.Topology.Routing.paths in
  let seen = Array.make np 0 in
  Array.iter
    (fun round -> Array.iter (fun idx -> seen.(idx) <- seen.(idx) + 1) round)
    s.Schedule.rounds;
  Alcotest.(check bool) "each path exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

let test_schedule_respects_quota () =
  let red = sample_routing 17 10 in
  let rng = Rng.create 19 in
  let config = { Schedule.default_config with Schedule.rate_limit_bytes_per_s = 8000. } in
  let quota = Schedule.concurrent_paths_per_beacon config in
  Alcotest.(check int) "tight quota" 2 quota;
  let s = Schedule.build rng config red in
  Array.iter
    (fun round ->
      let per_beacon = Hashtbl.create 8 in
      Array.iter
        (fun idx ->
          let b = red.Topology.Routing.paths.(idx).Topology.Path.src in
          Hashtbl.replace per_beacon b
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_beacon b)))
        round;
      Hashtbl.iter
        (fun _ c -> Alcotest.(check bool) "quota respected" true (c <= quota))
        per_beacon)
    s.Schedule.rounds

let test_schedule_duration () =
  let red = sample_routing 23 10 in
  let rng = Rng.create 29 in
  let s = Schedule.build rng Schedule.default_config red in
  (* each round lasts S * 10ms = 10 s *)
  Alcotest.(check (float 1e-9)) "snapshot duration"
    (10. *. float_of_int (Array.length s.Schedule.rounds))
    s.Schedule.snapshot_seconds

let test_schedule_bandwidth_capped () =
  let red = sample_routing 31 10 in
  let rng = Rng.create 37 in
  let s = Schedule.build rng Schedule.default_config red in
  List.iter
    (fun (_, bw) ->
      Alcotest.(check bool) "within the cap" true
        (bw <= Schedule.default_config.Schedule.rate_limit_bytes_per_s +. 1e-9))
    s.Schedule.beacon_bandwidth

let test_schedule_invalid_rate () =
  let red = sample_routing 41 6 in
  let rng = Rng.create 43 in
  let config = { Schedule.default_config with Schedule.rate_limit_bytes_per_s = 100. } in
  Alcotest.check_raises "rate too small"
    (Invalid_argument "Schedule.build: rate limit below a single probe train")
    (fun () -> ignore (Schedule.build rng config red))

(* --- Report --------------------------------------------------------------- *)

let sample_result () =
  let rng = Rng.create 51 in
  let tb = Topology.Tree_gen.generate rng ~nodes:100 ~max_branching:5 () in
  let routing = Topology.Testbed.routing tb in
  let r = routing.Topology.Routing.matrix in
  let config =
    Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
  in
  let run = Netsim.Simulator.run rng config r ~count:21 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:20 in
  let result = Core.Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  (tb, routing, result)

let test_report_summary () =
  let _, _, result = sample_result () in
  let s = Report.summary result ~threshold:0.002 in
  Alcotest.(check bool) "mentions kept" true
    (String.length s > 0
    && String.sub s 0 4 = "kept")

let test_report_table_contents () =
  let tb, routing, result = sample_result () in
  let text = Report.table ~graph:tb.Topology.Testbed.graph ~routing result in
  Alcotest.(check bool) "has header" true
    (String.length text > 0);
  (* table lines reference AS location when the graph is supplied *)
  let has_as =
    String.split_on_char '\n' text
    |> List.exists (fun l ->
           let is_sub sub s =
             let n = String.length sub and m = String.length s in
             let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
             go 0
           in
           is_sub "intra-AS" l || is_sub "inter-AS" l)
  in
  Alcotest.(check bool) "AS annotations present" true has_as

let test_report_top_limits_rows () =
  let _, routing, result = sample_result () in
  let text =
    Report.table
      ~options:{ Report.default_options with Report.top = 3 }
      ~routing result
  in
  let rows =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.length l > 0 && l.[0] >= '0' && l.[0] <= '9')
  in
  Alcotest.(check int) "three rows" 3 (List.length rows)

let () =
  Alcotest.run "diagnostics"
    [
      ( "identifiability",
        [
          Alcotest.test_case "figure 1" `Quick test_fig1_identifiable;
          Alcotest.test_case "random meshes" `Quick
            test_random_topologies_identifiable;
          Alcotest.test_case "duplicate columns" `Quick
            test_duplicate_columns_not_identifiable;
          Alcotest.test_case "empty" `Quick test_empty_matrix;
          Alcotest.test_case "assumptions report" `Quick test_assumptions_report;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "paper quota" `Quick test_schedule_quota;
          Alcotest.test_case "covers all paths once" `Quick
            test_schedule_covers_all_paths_once;
          Alcotest.test_case "respects quota" `Quick test_schedule_respects_quota;
          Alcotest.test_case "duration" `Quick test_schedule_duration;
          Alcotest.test_case "bandwidth capped" `Quick test_schedule_bandwidth_capped;
          Alcotest.test_case "invalid rate" `Quick test_schedule_invalid_rate;
        ] );
      ( "report",
        [
          Alcotest.test_case "summary" `Quick test_report_summary;
          Alcotest.test_case "table contents" `Quick test_report_table_contents;
          Alcotest.test_case "top limits rows" `Quick test_report_top_limits_rows;
        ] );
    ]
