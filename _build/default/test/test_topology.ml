(* Tests for graphs, routing matrices, alias reduction, flutter detection,
   generators and the simulated traceroute. Includes the paper's Figure 1
   and Figure 2 example topologies as fixtures. *)

module Graph = Topology.Graph
module Path = Topology.Path
module Routing = Topology.Routing
module Flutter = Topology.Flutter
module Testbed = Topology.Testbed
module Sparse = Linalg.Sparse
module Rng = Nstats.Rng

let mk_nodes ?(hosts = []) ?(as_of = fun _ -> 0) n =
  Array.init n (fun i ->
      { Graph.id = i;
        kind = (if List.mem i hosts then Graph.Host else Graph.Router);
        as_id = as_of i })

(* Figure 1 of the paper: beacon B1 (node 0) with internal nodes and
   destinations D1 D2 D3. Shape: 0 -> 1; 1 -> 2 (D1); 1 -> 3; 3 -> 4 (D2);
   3 -> 5 (D3). After alias reduction there are 5 links: (0-1), (1-2),
   (1-3), (3-4), (3-5). *)
let figure1 () =
  let nodes = mk_nodes ~hosts:[ 0; 2; 4; 5 ] 6 in
  let edges = [| (0, 1); (1, 2); (1, 3); (3, 4); (3, 5) |] in
  let graph = Graph.create ~nodes ~edges in
  { Testbed.graph; beacons = [| 0 |]; destinations = [| 2; 4; 5 |] }

(* --- Graph ---------------------------------------------------------------- *)

let test_graph_basic () =
  let tb = figure1 () in
  let g = tb.Testbed.graph in
  Alcotest.(check int) "nodes" 6 (Graph.node_count g);
  Alcotest.(check int) "edges" 5 (Graph.edge_count g);
  Alcotest.(check int) "out degree of 1" 2 (Graph.out_degree g 1);
  Alcotest.(check int) "in degree of 3" 1 (Graph.in_degree g 3);
  Alcotest.(check int) "hosts" 4 (Array.length (Graph.hosts g));
  Alcotest.(check bool) "edge exists" true (Graph.find_edge g ~src:0 ~dst:1 <> None);
  Alcotest.(check bool) "absent edge" true (Graph.find_edge g ~src:2 ~dst:0 = None)

let test_graph_validation () =
  let nodes = mk_nodes 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~nodes ~edges:[| (0, 0) |]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.create: duplicate edge")
    (fun () -> ignore (Graph.create ~nodes ~edges:[| (0, 1); (0, 1) |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
      ignore (Graph.create ~nodes ~edges:[| (0, 5) |]))

let test_graph_undirected () =
  let nodes = mk_nodes 3 in
  let g = Graph.of_undirected ~nodes ~links:[| (0, 1); (1, 2) |] in
  Alcotest.(check int) "edge count doubles" 4 (Graph.edge_count g);
  let e = Option.get (Graph.find_edge g ~src:0 ~dst:1) in
  Alcotest.(check (option int)) "reverse edge" (Some e.Graph.id |> fun _ ->
    Graph.reverse_edge g e.Graph.id |> Option.map (fun id ->
      let e' = Graph.edge g id in
      if e'.Graph.src = 1 && e'.Graph.dst = 0 then 1 else 0))
    (Some 1)

let test_graph_inter_as () =
  let nodes = mk_nodes ~as_of:(fun i -> i / 2) 4 in
  let g = Graph.create ~nodes ~edges:[| (0, 1); (1, 2) |] in
  Alcotest.(check bool) "intra" false (Graph.is_inter_as g 0);
  Alcotest.(check bool) "inter" true (Graph.is_inter_as g 1)

let test_graph_components () =
  let nodes = mk_nodes 4 in
  let g = Graph.create ~nodes ~edges:[| (0, 1); (2, 3) |] in
  Alcotest.(check int) "two components" 2 (Graph.undirected_components g);
  let g2 = Graph.create ~nodes ~edges:[| (0, 1); (2, 3); (1, 2) |] in
  Alcotest.(check int) "one component" 1 (Graph.undirected_components g2)

(* --- Path ------------------------------------------------------------------ *)

let test_path_make () =
  let tb = figure1 () in
  let p = Path.make ~graph:tb.Testbed.graph ~nodes:[| 0; 1; 3; 4 |] in
  Alcotest.(check int) "length" 3 (Path.length p);
  Alcotest.(check bool) "mem first edge" true (Path.mem_edge p 0);
  Alcotest.(check (option int)) "position" (Some 1) (Path.edge_position p 2)

let test_path_invalid_hop () =
  let tb = figure1 () in
  Alcotest.check_raises "bad hop" (Invalid_argument "Path.make: hop is not an edge")
    (fun () -> ignore (Path.make ~graph:tb.Testbed.graph ~nodes:[| 0; 3 |]))

let test_path_shared_edges () =
  let tb = figure1 () in
  let g = tb.Testbed.graph in
  let p1 = Path.make ~graph:g ~nodes:[| 0; 1; 3; 4 |] in
  let p2 = Path.make ~graph:g ~nodes:[| 0; 1; 3; 5 |] in
  Alcotest.(check (list int)) "shared prefix" [ 0; 2 ] (Path.shared_edges p1 p2)

(* --- Routing ----------------------------------------------------------------- *)

let test_shortest_path () =
  let tb = figure1 () in
  let p = Option.get (Routing.shortest_path tb.Testbed.graph ~src:0 ~dst:5) in
  Alcotest.(check (array int)) "route" [| 0; 1; 3; 5 |] p.Path.nodes;
  Alcotest.(check bool) "unreachable" true
    (Routing.shortest_path tb.Testbed.graph ~src:2 ~dst:0 = None)

let test_figure1_routing_matrix () =
  (* The paper's example: R is 3x5 with rank 5 impossible; rank(R) = 3. *)
  let tb = figure1 () in
  let red = Testbed.routing tb in
  let r = red.Routing.matrix in
  Alcotest.(check int) "paths" 3 (Sparse.rows r);
  Alcotest.(check int) "links" 5 (Sparse.cols r);
  (* every path crosses the root link's column *)
  let counts = Sparse.column_counts r in
  Alcotest.(check bool) "one column covered by all paths" true
    (Array.exists (fun c -> c = 3) counts);
  Alcotest.(check int) "rank deficient" 3
    (Linalg.Qr.matrix_rank (Sparse.to_dense r))

let test_alias_reduction_chain () =
  (* 0 -> 1 -> 2 -> 3(dest): the three links are indistinguishable and must
     collapse into a single virtual link. *)
  let nodes = mk_nodes ~hosts:[ 0; 3 ] 4 in
  let graph = Graph.create ~nodes ~edges:[| (0, 1); (1, 2); (2, 3) |] in
  let red = Routing.build graph ~beacons:[| 0 |] ~destinations:[| 3 |] in
  Alcotest.(check int) "one virtual link" 1 (Sparse.cols red.Routing.matrix);
  Alcotest.(check int) "grouping three edges" 3
    (Array.length red.Routing.vlinks.(0))

let test_alias_reduction_loss_rate () =
  let nodes = mk_nodes ~hosts:[ 0; 3 ] 4 in
  let graph = Graph.create ~nodes ~edges:[| (0, 1); (1, 2); (2, 3) |] in
  let red = Routing.build graph ~beacons:[| 0 |] ~destinations:[| 3 |] in
  let link_loss _ = 0.1 in
  let combined = Routing.vlink_loss_rate red ~link_loss 0 in
  Alcotest.(check (float 1e-9)) "1 - 0.9^3" (1. -. (0.9 ** 3.)) combined

let test_reduce_columns_distinct_nonzero () =
  let rng = Rng.create 5 in
  let tb = Topology.Waxman.generate rng ~nodes:60 ~hosts:10 () in
  let red = Testbed.routing tb in
  let r = red.Routing.matrix in
  let counts = Sparse.column_counts r in
  Alcotest.(check bool) "no zero column" true (Array.for_all (fun c -> c > 0) counts);
  (* all columns distinct: compare supports pairwise via the transpose *)
  let t = Sparse.transpose r in
  let seen = Hashtbl.create 64 in
  let distinct = ref true in
  for j = 0 to Sparse.rows t - 1 do
    let key = Array.to_list (Sparse.row t j) in
    if Hashtbl.mem seen key then distinct := false;
    Hashtbl.add seen key ()
  done;
  Alcotest.(check bool) "columns distinct" true !distinct

let test_routing_tree_property () =
  (* all paths from one beacon form a tree: any two paths share a prefix *)
  let rng = Rng.create 9 in
  let tb = Topology.Waxman.generate rng ~nodes:50 ~hosts:8 () in
  let paths =
    Routing.paths_between tb.Testbed.graph ~beacons:[| tb.Testbed.beacons.(0) |]
      ~destinations:tb.Testbed.destinations
  in
  Array.iter
    (fun p ->
      Array.iter
        (fun q -> Alcotest.(check bool) "no fluttering in tree" false
            (Flutter.pair_flutters p q))
        paths)
    paths

(* --- Weighted routing ---------------------------------------------------------- *)

let test_dijkstra_matches_bfs_on_unit_weights () =
  let rng = Rng.create 61 in
  let tb = Topology.Waxman.generate rng ~nodes:60 ~hosts:8 () in
  let g = tb.Testbed.graph in
  let b = tb.Testbed.beacons.(0) in
  Array.iter
    (fun d ->
      let bfs_p = Routing.shortest_path g ~src:b ~dst:d in
      let dij_p = Routing.shortest_path_weighted g ~weight:(fun _ -> 1.) ~src:b ~dst:d in
      match (bfs_p, dij_p) with
      | None, None -> ()
      | Some p, Some q ->
          Alcotest.(check int) "same hop count" (Path.length p) (Path.length q)
      | _ -> Alcotest.fail "reachability disagreement")
    tb.Testbed.destinations

let test_dijkstra_prefers_cheap_detour () =
  (* direct edge weight 10 vs two-hop detour of total weight 2 *)
  let nodes = mk_nodes ~hosts:[ 0; 2 ] 3 in
  let g = Graph.create ~nodes ~edges:[| (0, 2); (0, 1); (1, 2) |] in
  let weight e = if e = 0 then 10. else 1. in
  let p = Option.get (Routing.shortest_path_weighted g ~weight ~src:0 ~dst:2) in
  Alcotest.(check (array int)) "takes the detour" [| 0; 1; 2 |] p.Path.nodes;
  (* with unit weights the direct edge wins *)
  let q =
    Option.get (Routing.shortest_path_weighted g ~weight:(fun _ -> 1.) ~src:0 ~dst:2)
  in
  Alcotest.(check (array int)) "direct when uniform" [| 0; 2 |] q.Path.nodes

let test_dijkstra_negative_weight_rejected () =
  let nodes = mk_nodes ~hosts:[ 0; 1 ] 2 in
  let g = Graph.create ~nodes ~edges:[| (0, 1) |] in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Routing.dijkstra: negative weight") (fun () ->
      ignore (Routing.shortest_path_weighted g ~weight:(fun _ -> -1.) ~src:0 ~dst:1))

let test_weighted_paths_form_tree () =
  let rng = Rng.create 67 in
  let tb = Topology.Waxman.generate rng ~nodes:50 ~hosts:8 () in
  let g = tb.Testbed.graph in
  (* distance-like weights derived deterministically from edge ids *)
  let weight e = 1. +. float_of_int (e mod 7) in
  let paths =
    Routing.paths_between_weighted g ~weight
      ~beacons:[| tb.Testbed.beacons.(0) |] ~destinations:tb.Testbed.destinations
  in
  Alcotest.(check (list (pair int int))) "no fluttering from one beacon" []
    (Flutter.check paths)

(* --- Flutter ------------------------------------------------------------------ *)

(* A mesh where two paths meet, diverge, and meet again:
   p: 0 ->1 -> 2 -> 3 -> 4 ; q: 5 -> 1 -> 6 -> 3 -> 4 shares (1,?) no...
   build explicit: shared edges (1,2) and (3,4) with different middles. *)
let flutter_fixture () =
  let nodes = mk_nodes ~hosts:[ 0; 5; 4 ] 7 in
  let edges =
    [| (0, 1); (1, 2); (2, 3); (3, 4); (5, 1); (1, 6); (6, 3) |]
  in
  let graph = Graph.create ~nodes ~edges in
  let p = Path.make ~graph ~nodes:[| 0; 1; 2; 3; 4 |] in
  let q = Path.make ~graph ~nodes:[| 5; 1; 2; 3; 4 |] in
  let q_fluttering = Path.make ~graph ~nodes:[| 5; 1; 6; 3; 4 |] in
  (p, q, q_fluttering)

let test_flutter_detection () =
  let p, q, qf = flutter_fixture () in
  Alcotest.(check bool) "contiguous overlap is fine" false (Flutter.pair_flutters p q);
  (* p and qf share edge (3,4) only: single shared link, no flutter *)
  Alcotest.(check bool) "single shared link fine" false (Flutter.pair_flutters p qf);
  (* q and qf share (5,1) and (3,4) but take different middles: flutter *)
  Alcotest.(check bool) "meet-diverge-meet across beacons" true
    (Flutter.pair_flutters q qf)

let test_flutter_meet_diverge_meet () =
  (* craft: p shares e(1,2) and e(3,4) with r, but not e(2,3):
     r: 5 -> 1 -> 2 -> 7?? need a path through (1,2) then another way to 3.
     Use: nodes 0..; edges (0,1)(1,2)(2,3)(3,4) and (2,5)(5,3). *)
  let nodes = mk_nodes ~hosts:[ 0; 4 ] 6 in
  let edges = [| (0, 1); (1, 2); (2, 3); (3, 4); (2, 5); (5, 3) |] in
  let graph = Graph.create ~nodes ~edges in
  let p = Path.make ~graph ~nodes:[| 0; 1; 2; 3; 4 |] in
  let q = Path.make ~graph ~nodes:[| 0; 1; 2; 5; 3; 4 |] in
  Alcotest.(check bool) "meet-diverge-meet flutters" true (Flutter.pair_flutters p q);
  let kept, removed = Flutter.remove_fluttering [| p; q |] in
  Alcotest.(check int) "one kept" 1 (Array.length kept);
  Alcotest.(check int) "one removed" 1 (Array.length removed);
  Alcotest.(check bool) "keeps the earlier path" true (Path.equal kept.(0) p)

let test_flutter_check_pairs () =
  let nodes = mk_nodes ~hosts:[ 0; 4 ] 6 in
  let edges = [| (0, 1); (1, 2); (2, 3); (3, 4); (2, 5); (5, 3) |] in
  let graph = Graph.create ~nodes ~edges in
  let p = Path.make ~graph ~nodes:[| 0; 1; 2; 3; 4 |] in
  let q = Path.make ~graph ~nodes:[| 0; 1; 2; 5; 3; 4 |] in
  Alcotest.(check (list (pair int int))) "offending pair" [ (0, 1) ]
    (Flutter.check [| p; q |])

(* --- Generators ------------------------------------------------------------------ *)

let test_tree_gen_shape () =
  let rng = Rng.create 3 in
  let tb = Topology.Tree_gen.generate rng ~nodes:200 ~max_branching:6 () in
  let g = tb.Testbed.graph in
  Alcotest.(check int) "edges = nodes - 1" 199 (Graph.edge_count g);
  Alcotest.(check int) "connected" 1 (Graph.undirected_components g);
  (* branching bound *)
  for v = 0 to Graph.node_count g - 1 do
    Alcotest.(check bool) "branching bound" true (Graph.out_degree g v <= 6)
  done;
  (* destinations are exactly the leaves *)
  Array.iter
    (fun d -> Alcotest.(check int) "leaf has no children" 0 (Graph.out_degree g d))
    tb.Testbed.destinations

let test_tree_gen_all_leaves_reachable () =
  let rng = Rng.create 4 in
  let tb = Topology.Tree_gen.generate rng ~nodes:100 ~max_branching:4 () in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "reachable" true
        (Routing.shortest_path tb.Testbed.graph ~src:0 ~dst:d <> None))
    tb.Testbed.destinations

let test_tree_gen_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "too small"
    (Invalid_argument "Tree_gen.generate: need at least 2 nodes") (fun () ->
      ignore (Topology.Tree_gen.generate rng ~nodes:1 ~max_branching:2 ()))

let test_waxman_connected () =
  let rng = Rng.create 21 in
  let tb = Topology.Waxman.generate rng ~nodes:80 ~hosts:12 () in
  Alcotest.(check int) "connected" 1 (Graph.undirected_components tb.Testbed.graph);
  Alcotest.(check int) "hosts" 12 (Array.length tb.Testbed.beacons)

let test_barabasi_albert_degree_skew () =
  let rng = Rng.create 23 in
  let links = Topology.Barabasi_albert.links rng ~nodes:300 ~m:2 in
  let deg = Array.make 300 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    links;
  let dmax = Array.fold_left max 0 deg in
  let mean = float_of_int (2 * List.length links) /. 300. in
  Alcotest.(check bool) "hub exists (skewed degrees)" true
    (float_of_int dmax > 4. *. mean);
  Alcotest.(check bool) "all attached" true (Array.for_all (fun d -> d >= 1) deg)

let test_hierarchical_as_structure () =
  let rng = Rng.create 25 in
  let tb =
    Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Top_down
      ~ases:5 ~routers_per_as:6 ~hosts:10
  in
  let g = tb.Testbed.graph in
  Alcotest.(check int) "connected" 1 (Graph.undirected_components g);
  (* AS ids present and within range *)
  let as_ids = Array.map (fun (n : Graph.node) -> n.Graph.as_id) (Graph.nodes g) in
  Alcotest.(check bool) "as ids in range" true
    (Array.for_all (fun a -> a >= 0 && a < 5) as_ids);
  (* there exists at least one inter-AS edge *)
  let inter = ref false in
  for e = 0 to Graph.edge_count g - 1 do
    if Graph.is_inter_as g e then inter := true
  done;
  Alcotest.(check bool) "has inter-AS links" true !inter

let test_hierarchical_bottom_up () =
  let rng = Rng.create 27 in
  let tb =
    Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Bottom_up
      ~ases:4 ~routers_per_as:8 ~hosts:8
  in
  Alcotest.(check int) "connected" 1
    (Graph.undirected_components tb.Testbed.graph)

let test_overlay_planetlab () =
  let rng = Rng.create 29 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:20 () in
  let g = tb.Testbed.graph in
  Alcotest.(check int) "connected" 1 (Graph.undirected_components g);
  Alcotest.(check int) "all hosts are beacons" 20 (Array.length tb.Testbed.beacons);
  (* hosts have exactly one access link each way *)
  Array.iter
    (fun h ->
      Alcotest.(check int) "host out degree" 1 (Graph.out_degree g h);
      Alcotest.(check int) "host in degree" 1 (Graph.in_degree g h))
    tb.Testbed.beacons

let test_overlay_dimes () =
  let rng = Rng.create 31 in
  let tb = Topology.Overlay.dimes_like rng ~hosts:15 () in
  Alcotest.(check int) "connected" 1
    (Graph.undirected_components tb.Testbed.graph);
  (* many distinct ASes *)
  let as_set = Hashtbl.create 16 in
  Array.iter
    (fun (n : Graph.node) -> Hashtbl.replace as_set n.Graph.as_id ())
    (Graph.nodes tb.Testbed.graph);
  Alcotest.(check bool) "many ASes" true (Hashtbl.length as_set > 5)

let test_transit_stub_structure () =
  let rng = Rng.create 41 in
  let tb =
    Topology.Transit_stub.generate rng ~transit_domains:3 ~transit_size:5
      ~stubs_per_transit_node:2 ~stub_size:4 ~hosts:12 ()
  in
  let g = tb.Testbed.graph in
  Alcotest.(check int) "connected" 1 (Graph.undirected_components g);
  Alcotest.(check int) "hosts" 12 (Array.length tb.Testbed.beacons);
  (* many ASes: 3 transit + 30 stubs *)
  let as_set = Hashtbl.create 64 in
  Array.iter
    (fun (n : Graph.node) -> Hashtbl.replace as_set n.Graph.as_id ())
    (Graph.nodes g);
  Alcotest.(check bool) "many ASes" true (Hashtbl.length as_set > 10);
  (* host-to-host paths cross AS boundaries (valley shape) *)
  let red = Testbed.routing tb in
  let inter = ref false in
  Array.iter
    (fun (p : Path.t) ->
      Array.iter (fun e -> if Graph.is_inter_as g e then inter := true) p.Path.edges)
    red.Routing.paths;
  Alcotest.(check bool) "paths cross AS boundaries" true !inter

let test_transit_stub_identifiable () =
  let rng = Rng.create 43 in
  let tb = Topology.Transit_stub.generate rng ~hosts:10 () in
  let red = Testbed.routing tb in
  Alcotest.(check bool) "Theorem 1 holds here too" true
    (Core.Identifiability.is_identifiable red.Routing.matrix)

let test_testbed_routing_end_to_end () =
  let rng = Rng.create 33 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:12 () in
  let red = Testbed.routing tb in
  Alcotest.(check bool) "has paths" true (Sparse.rows red.Routing.matrix > 50);
  Alcotest.(check bool) "has links" true (Sparse.cols red.Routing.matrix > 10)

(* --- Heap ----------------------------------------------------------------------- *)

let test_heap_sorted_drain () =
  let h = Topology.Heap.create () in
  let keys = [ 5.; 1.; 4.; 1.5; 0.25; 9.; 2. ] in
  List.iteri (fun i k -> Topology.Heap.push h k i) keys;
  Alcotest.(check int) "size" (List.length keys) (Topology.Heap.size h);
  let rec drain prev acc =
    match Topology.Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) ->
        Alcotest.(check bool) "non-decreasing" true (k >= prev);
        drain k (k :: acc)
  in
  let drained = drain neg_infinity [] in
  Alcotest.(check (list (float 1e-9))) "all keys come back"
    (List.sort Float.compare keys) drained;
  Alcotest.(check bool) "empty after drain" true (Topology.Heap.is_empty h)

let test_heap_interleaved () =
  let h = Topology.Heap.create () in
  Topology.Heap.push h 3. "c";
  Topology.Heap.push h 1. "a";
  (match Topology.Heap.pop h with
  | Some (_, v) -> Alcotest.(check string) "min first" "a" v
  | None -> Alcotest.fail "empty");
  Topology.Heap.push h 0.5 "z";
  (match Topology.Heap.pop h with
  | Some (_, v) -> Alcotest.(check string) "new min" "z" v
  | None -> Alcotest.fail "empty")

(* --- Genutil ---------------------------------------------------------------------- *)

let test_genutil_connect_components () =
  let rng = Rng.create 71 in
  let links = [ (0, 1); (2, 3) ] in
  let connected = Topology.Genutil.connect_components rng 5 links in
  let nodes = mk_nodes 5 in
  let g = Graph.of_undirected ~nodes ~links:(Array.of_list connected) in
  Alcotest.(check int) "now connected" 1 (Graph.undirected_components g)

let test_genutil_dedup () =
  Alcotest.(check (list (pair int int))) "dedup normalizes"
    [ (0, 1); (1, 2) ]
    (Topology.Genutil.dedup_links [ (1, 0); (0, 1); (2, 1); (1, 1) ])

let test_genutil_least_degree () =
  let links = [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check (array int)) "picks the isolated and the leaf" [| 4; 3 |]
    (Topology.Genutil.least_degree_nodes 5 links 2)

(* --- Traceroute --------------------------------------------------------------- *)

let test_traceroute_perfect () =
  let tb = figure1 () in
  let paths =
    Routing.paths_between tb.Testbed.graph ~beacons:tb.Testbed.beacons
      ~destinations:tb.Testbed.destinations
  in
  let rng = Rng.create 35 in
  let m =
    Topology.Traceroute.measure rng ~no_response:0. ~multi_iface:0.
      ~resolve_success:1. tb.Testbed.graph paths
  in
  Alcotest.(check int) "same node count" 6 (Graph.node_count m.Topology.Traceroute.graph);
  Alcotest.(check int) "same path count" 3 (Array.length m.Topology.Traceroute.paths);
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "same path length" (Path.length paths.(i))
        (Path.length p))
    m.Topology.Traceroute.paths

let test_traceroute_anonymous_split () =
  (* With every router anonymous, shared routers cannot be merged across
     paths, so the measured topology has more nodes than the truth. *)
  let tb = figure1 () in
  let paths =
    Routing.paths_between tb.Testbed.graph ~beacons:tb.Testbed.beacons
      ~destinations:tb.Testbed.destinations
  in
  let rng = Rng.create 37 in
  let m =
    Topology.Traceroute.measure rng ~no_response:1. ~multi_iface:0.
      ~resolve_success:1. tb.Testbed.graph paths
  in
  Alcotest.(check bool) "more nodes than truth" true
    (Graph.node_count m.Topology.Traceroute.graph > 6);
  (* hosts keep their identity: 4 hosts must survive *)
  Alcotest.(check int) "hosts preserved" 4
    (Array.length (Graph.hosts m.Topology.Traceroute.graph))

let test_traceroute_larger () =
  let rng = Rng.create 39 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:10 () in
  let paths =
    Routing.paths_between tb.Testbed.graph ~beacons:tb.Testbed.beacons
      ~destinations:tb.Testbed.destinations
  in
  let m = Topology.Traceroute.measure rng tb.Testbed.graph paths in
  Alcotest.(check int) "path count preserved" (Array.length paths)
    (Array.length m.Topology.Traceroute.paths);
  (* every measured path is a valid path of the measured graph by
     construction; routing matrices can be built from it *)
  let red = Routing.reduce m.Topology.Traceroute.graph m.Topology.Traceroute.paths in
  Alcotest.(check bool) "reducible" true (Sparse.cols red.Routing.matrix > 0)

(* --- Properties ------------------------------------------------------------------ *)

let prop_tree_paths_form_tree =
  QCheck.Test.make ~count:20 ~name:"tree generator: beacon paths never flutter"
    QCheck.(int_range 10 120)
    (fun n ->
      let rng = Rng.create n in
      let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
      let paths =
        Routing.paths_between tb.Testbed.graph ~beacons:tb.Testbed.beacons
          ~destinations:tb.Testbed.destinations
      in
      Flutter.check paths = [])

let prop_reduce_keeps_path_semantics =
  QCheck.Test.make ~count:20
    ~name:"alias reduction: path loss equals product over virtual links"
    QCheck.(int_range 30 80)
    (fun n ->
      let rng = Rng.create (n * 7) in
      let tb = Topology.Waxman.generate rng ~nodes:n ~hosts:6 () in
      let red = Testbed.routing tb in
      let g = tb.Testbed.graph in
      (* random per-edge loss; compare path transmission computed over raw
         edges vs over virtual links *)
      let edge_loss = Array.init (Graph.edge_count g) (fun i ->
          0.001 *. float_of_int (i mod 7)) in
      let ok = ref true in
      Array.iteri
        (fun i (p : Path.t) ->
          let direct =
            Array.fold_left (fun acc e -> acc *. (1. -. edge_loss.(e))) 1. p.Path.edges
          in
          let via_vlinks =
            Array.fold_left
              (fun acc j ->
                acc *. (1. -. Routing.vlink_loss_rate red ~link_loss:(fun e -> edge_loss.(e)) j))
              1.
              (Sparse.row red.Routing.matrix i)
          in
          if Float.abs (direct -. via_vlinks) > 1e-9 then ok := false)
        red.Routing.paths;
      !ok)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tree_paths_form_tree; prop_reduce_keeps_path_semantics ]

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "undirected" `Quick test_graph_undirected;
          Alcotest.test_case "inter-AS" `Quick test_graph_inter_as;
          Alcotest.test_case "components" `Quick test_graph_components;
        ] );
      ( "path",
        [
          Alcotest.test_case "make" `Quick test_path_make;
          Alcotest.test_case "invalid hop" `Quick test_path_invalid_hop;
          Alcotest.test_case "shared edges" `Quick test_path_shared_edges;
        ] );
      ( "routing",
        [
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "figure 1 matrix" `Quick test_figure1_routing_matrix;
          Alcotest.test_case "alias chain collapse" `Quick test_alias_reduction_chain;
          Alcotest.test_case "alias loss rate" `Quick test_alias_reduction_loss_rate;
          Alcotest.test_case "columns distinct and nonzero" `Quick
            test_reduce_columns_distinct_nonzero;
          Alcotest.test_case "beacon tree property" `Quick test_routing_tree_property;
          Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
            test_dijkstra_matches_bfs_on_unit_weights;
          Alcotest.test_case "dijkstra cheap detour" `Quick
            test_dijkstra_prefers_cheap_detour;
          Alcotest.test_case "dijkstra negative weight" `Quick
            test_dijkstra_negative_weight_rejected;
          Alcotest.test_case "weighted beacon tree" `Quick
            test_weighted_paths_form_tree;
        ] );
      ( "flutter",
        [
          Alcotest.test_case "detection basics" `Quick test_flutter_detection;
          Alcotest.test_case "meet-diverge-meet" `Quick test_flutter_meet_diverge_meet;
          Alcotest.test_case "check pairs" `Quick test_flutter_check_pairs;
        ] );
      ( "generators",
        [
          Alcotest.test_case "tree shape" `Quick test_tree_gen_shape;
          Alcotest.test_case "tree reachability" `Quick test_tree_gen_all_leaves_reachable;
          Alcotest.test_case "tree invalid" `Quick test_tree_gen_invalid;
          Alcotest.test_case "waxman connected" `Quick test_waxman_connected;
          Alcotest.test_case "BA degree skew" `Quick test_barabasi_albert_degree_skew;
          Alcotest.test_case "hierarchical top-down" `Quick test_hierarchical_as_structure;
          Alcotest.test_case "hierarchical bottom-up" `Quick test_hierarchical_bottom_up;
          Alcotest.test_case "planetlab-like overlay" `Quick test_overlay_planetlab;
          Alcotest.test_case "dimes-like overlay" `Quick test_overlay_dimes;
          Alcotest.test_case "transit-stub structure" `Quick
            test_transit_stub_structure;
          Alcotest.test_case "transit-stub identifiable" `Quick
            test_transit_stub_identifiable;
          Alcotest.test_case "testbed routing" `Quick test_testbed_routing_end_to_end;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
        ] );
      ( "genutil",
        [
          Alcotest.test_case "connect components" `Quick test_genutil_connect_components;
          Alcotest.test_case "dedup" `Quick test_genutil_dedup;
          Alcotest.test_case "least degree" `Quick test_genutil_least_degree;
        ] );
      ( "traceroute",
        [
          Alcotest.test_case "perfect measurement" `Quick test_traceroute_perfect;
          Alcotest.test_case "anonymous routers split" `Quick
            test_traceroute_anonymous_split;
          Alcotest.test_case "larger overlay" `Quick test_traceroute_larger;
        ] );
      ("properties", properties);
    ]
