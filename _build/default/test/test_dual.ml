(* Tests for the traffic-matrix dual (Vardi / Cao et al.) and the Poisson
   sampler it relies on. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng
module Tm = Core.Traffic_matrix

let close ?(tol = 1e-6) msg expected got = Alcotest.(check (float tol)) msg expected got

(* --- Poisson sampler ------------------------------------------------------ *)

let test_poisson_moments () =
  let rng = Rng.create 1 in
  List.iter
    (fun lambda ->
      let acc = Nstats.Online.create () in
      for _ = 1 to 30_000 do
        Nstats.Online.add acc (float_of_int (Rng.poisson rng lambda))
      done;
      close ~tol:(0.05 *. (1. +. lambda)) "poisson mean" lambda
        (Nstats.Online.mean acc);
      close ~tol:(0.15 *. (1. +. lambda)) "poisson variance = mean" lambda
        (Nstats.Online.variance acc))
    [ 0.5; 4.; 50. ]

let test_poisson_edges () =
  let rng = Rng.create 2 in
  Alcotest.(check int) "lambda 0" 0 (Rng.poisson rng 0.);
  Alcotest.check_raises "negative" (Invalid_argument "Rng.poisson: negative rate")
    (fun () -> ignore (Rng.poisson rng (-1.)))

(* --- Traffic matrix -------------------------------------------------------- *)

(* Cao et al.'s easy case: every flow crosses a dedicated first link, so
   even single links identify flows. Routing: 2 flows, 3 links: flow 0 on
   links {0,2}, flow 1 on links {1,2}. *)
let simple_tm () =
  Tm.make ~routes:(Sparse.create ~cols:2 [| [| 0 |]; [| 1 |]; [| 0; 1 |] |])

let test_identifiable_simple () =
  Alcotest.(check bool) "simple dual identifiable" true
    (Tm.identifiable (simple_tm ()))

let test_estimate_recovers_poisson_means () =
  let tm = simple_tm () in
  let rng = Rng.create 7 in
  let means = [| 40.; 90. |] in
  let loads = Tm.simulate rng tm ~means ~count:3000 in
  let est = Tm.estimate_means tm ~loads in
  close ~tol:6. "flow 0 mean" 40. est.(0);
  close ~tol:12. "flow 1 mean" 90. est.(1)

let test_loads_are_sums () =
  let tm = simple_tm () in
  let rng = Rng.create 9 in
  let loads = Tm.simulate rng tm ~means:[| 10.; 20. |] ~count:50 in
  for epoch = 0 to 49 do
    close ~tol:1e-9 "shared link = sum of flows"
      (Matrix.get loads epoch 0 +. Matrix.get loads epoch 1)
      (Matrix.get loads epoch 2)
  done

let test_of_testbed_structure () =
  let rng = Rng.create 11 in
  let tb = Topology.Tree_gen.generate rng ~nodes:50 ~max_branching:4 () in
  let tm, od = Tm.of_testbed tb in
  Alcotest.(check int) "one flow per beacon-destination pair"
    (Array.length tb.Topology.Testbed.destinations)
    (Array.length od);
  Alcotest.(check int) "columns = flows" (Array.length od)
    (Sparse.cols tm.Tm.routes);
  (* every flow crosses at least one link, every link at least one flow *)
  Alcotest.(check bool) "no empty rows" true
    (Array.for_all
       (fun i -> Array.length (Sparse.row tm.Tm.routes i) > 0)
       (Array.init (Sparse.rows tm.Tm.routes) (fun i -> i)));
  let counts = Sparse.column_counts tm.Tm.routes in
  Alcotest.(check bool) "no empty columns" true (Array.for_all (fun c -> c > 0) counts)

let test_dual_on_tree_recovers_means () =
  (* the full duality demo: flows on a real tree, means recovered from
     link-load covariances alone *)
  let rng = Rng.create 13 in
  let tb = Topology.Tree_gen.generate rng ~nodes:40 ~max_branching:4 () in
  let tm, od = Tm.of_testbed tb in
  let n_flows = Array.length od in
  let means =
    Array.init n_flows (fun f -> 20. +. (10. *. float_of_int (f mod 5)))
  in
  let loads = Tm.simulate rng tm ~means ~count:4000 in
  let est = Tm.estimate_means tm ~loads in
  (* relative error within ~20% per flow on average *)
  let rel_err = ref 0. in
  Array.iteri
    (fun f m -> rel_err := !rel_err +. (Float.abs (est.(f) -. m) /. m))
    means;
  Alcotest.(check bool) "means recovered from second moments" true
    (!rel_err /. float_of_int n_flows < 0.2)

let test_first_moments_alone_insufficient () =
  (* the motivating regime of [8, 30]: all-pairs flows on a small mesh,
     so OD pairs far outnumber links and average loads cannot determine
     the means — yet the second-moment system can *)
  let rng = Rng.create 17 in
  let tb = Topology.Waxman.generate rng ~nodes:20 ~hosts:10 ~alpha:0.4 ~beta:0.3 () in
  let tm, od = Tm.of_testbed tb in
  let rank = Linalg.Qr.matrix_rank (Sparse.to_dense tm.Tm.routes) in
  Alcotest.(check bool) "rank below flow count" true (rank < Array.length od)

let () =
  Alcotest.run "dual"
    [
      ( "poisson",
        [
          Alcotest.test_case "moments" `Slow test_poisson_moments;
          Alcotest.test_case "edges" `Quick test_poisson_edges;
        ] );
      ( "traffic-matrix",
        [
          Alcotest.test_case "identifiable" `Quick test_identifiable_simple;
          Alcotest.test_case "recovers poisson means" `Slow
            test_estimate_recovers_poisson_means;
          Alcotest.test_case "loads are sums" `Quick test_loads_are_sums;
          Alcotest.test_case "of_testbed structure" `Quick test_of_testbed_structure;
          Alcotest.test_case "dual on tree" `Slow test_dual_on_tree_recovers_means;
          Alcotest.test_case "first moments insufficient" `Quick
            test_first_moments_alone_insufficient;
        ] );
    ]
