(* Tests for the tomography core: augmented matrix (Definition 1),
   covariance flattening (eq. 7), variance identification (Theorem 1 /
   eq. 8), rank reduction (Section 5.2), the LIA algorithm, the SCFS
   baseline, metrics, cross-validation, AS location and duration
   analyses. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Vector = Linalg.Vector
module Qr = Linalg.Qr
module Rng = Nstats.Rng
module Augmented = Core.Augmented
module Covariance = Core.Covariance
module VE = Core.Variance_estimator
module RR = Core.Rank_reduction
module Lia = Core.Lia
module Scfs = Core.Scfs
module Metrics = Core.Metrics
module Validation = Core.Validation
module Duration = Core.Duration

let close ?(tol = 1e-9) msg expected got = Alcotest.(check (float tol)) msg expected got

(* The routing matrix of the paper's Figure 1 example (3 paths, 5 links). *)
let r_fig1 =
  Sparse.create ~cols:5 [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 0; 2; 4 |] |]

(* --- Augmented (Definition 1) ------------------------------------------- *)

let test_row_index_roundtrip () =
  let np = 7 in
  for i = 0 to np - 1 do
    for j = i to np - 1 do
      let k = Augmented.row_index ~np ~i ~j in
      Alcotest.(check (pair int int)) "roundtrip" (i, j) (Augmented.row_pair ~np k)
    done
  done;
  Alcotest.(check int) "row count" 28 (Augmented.row_count ~np)

let test_row_index_invalid () =
  Alcotest.check_raises "j < i" (Invalid_argument "Augmented.row_index: bad pair")
    (fun () -> ignore (Augmented.row_index ~np:3 ~i:2 ~j:1))

let test_build_matches_paper_example () =
  (* The paper prints A for the Figure 1 network explicitly. *)
  let a = Augmented.build r_fig1 in
  let expected =
    [| [| 1.; 1.; 0.; 0.; 0. |];   (* (1,1) *)
       [| 1.; 0.; 0.; 0.; 0. |];   (* (1,2) *)
       [| 1.; 0.; 0.; 0.; 0. |];   (* (1,3) *)
       [| 1.; 0.; 1.; 1.; 0. |];   (* (2,2) *)
       [| 1.; 0.; 1.; 0.; 0. |];   (* (2,3) *)
       [| 1.; 0.; 1.; 0.; 1. |] |] (* (3,3) *)
  in
  Alcotest.(check bool) "A matches the paper" true
    (Matrix.approx_equal (Matrix.of_arrays expected) (Sparse.to_dense a))

let test_build_diagonal_rows_are_r () =
  let a = Augmented.build r_fig1 in
  for i = 0 to 2 do
    let k = Augmented.row_index ~np:3 ~i ~j:i in
    Alcotest.(check (array int)) "diagonal row = R row" (Sparse.row r_fig1 i)
      (Sparse.row a k)
  done

let test_full_column_rank_fig1 () =
  (* Lemma 3: single-beacon tree gives identifiable variances. *)
  Alcotest.(check int) "A full column rank" 5
    (Qr.matrix_rank (Sparse.to_dense (Augmented.build r_fig1)))

let test_update_rows_equals_rebuild () =
  let rng = Rng.create 5 in
  let tb = Topology.Tree_gen.generate rng ~nodes:40 ~max_branching:4 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let a = Augmented.build r in
  (* change rows 0 and 2 to fresh contents (simulating a route change) *)
  let rows = Array.init (Sparse.rows r) (fun i -> Sparse.row r i) in
  rows.(0) <- [| 0 |];
  rows.(2) <- [| 1; 2 |];
  let r' = Sparse.create ~cols:(Sparse.cols r) rows in
  let incremental = Augmented.update_rows r' ~rows:[ 0; 2 ] a in
  Alcotest.(check bool) "incremental = full rebuild" true
    (Sparse.equal incremental (Augmented.build r'))

(* --- Covariance (eq. 7) -------------------------------------------------- *)

let test_sigma_star_alignment () =
  let y =
    Matrix.of_arrays
      [| [| 1.; 2.; 0. |]; [| 2.; 1.; 1. |]; [| 0.; 3.; -1. |]; [| 1.; 2.; 0.5 |] |]
  in
  let s = Covariance.sigma_star y in
  Alcotest.(check int) "length" 6 (Array.length s);
  let sigma = Nstats.Descriptive.covariance_matrix y in
  close "(0,0) is var of path 0" (Matrix.get sigma 0 0)
    s.(Augmented.row_index ~np:3 ~i:0 ~j:0);
  close "(0,2) is cov" (Matrix.get sigma 0 2) s.(Augmented.row_index ~np:3 ~i:0 ~j:2);
  close "(1,2) is cov" (Matrix.get sigma 1 2) s.(Augmented.row_index ~np:3 ~i:1 ~j:2)

let test_of_sigma_matrix () =
  let sigma = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 5. |] |] in
  let s = Covariance.of_sigma_matrix sigma in
  Alcotest.(check bool) "flatten" true (Vector.approx_equal [| 1.; 2.; 5. |] s)

(* --- Variance identification (Theorem 1) --------------------------------- *)

let exact_recovery r v_true =
  let rd = Sparse.to_dense r in
  let sigma = Matrix.mul (Matrix.mul rd (Matrix.diag v_true)) (Matrix.transpose rd) in
  let sigma_star = Covariance.of_sigma_matrix sigma in
  let a = Augmented.build r in
  VE.solve ~a ~sigma_star ()

let test_exact_recovery_fig1 () =
  let v_true = [| 0.01; 0.002; 0.005; 0.0001; 0.03 |] in
  let v = exact_recovery r_fig1 v_true in
  Alcotest.(check bool) "variances recovered exactly" true
    (Vector.approx_equal ~tol:1e-10 v v_true)

let test_exact_recovery_tree () =
  let rng = Rng.create 11 in
  let tb = Topology.Tree_gen.generate rng ~nodes:120 ~max_branching:6 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let nc = Sparse.cols r in
  let v_true = Array.init nc (fun k -> 1e-6 +. (0.001 *. float_of_int (k mod 13))) in
  let v = exact_recovery r v_true in
  Alcotest.(check bool) "tree recovery" true (Vector.approx_equal ~tol:1e-8 v v_true)

let test_exact_recovery_mesh () =
  (* Theorem 1: multi-beacon mesh topologies are identifiable too. *)
  let rng = Rng.create 13 in
  let tb = Topology.Waxman.generate rng ~nodes:60 ~hosts:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let nc = Sparse.cols r in
  let v_true = Array.init nc (fun k -> 1e-5 *. float_of_int (1 + (k mod 29))) in
  let v = exact_recovery r v_true in
  Alcotest.(check bool) "mesh recovery" true (Vector.approx_equal ~tol:1e-8 v v_true)

let test_mean_loss_rates_not_identifiable () =
  (* The contrast the paper opens with: first moments are NOT identifiable
     (R is rank deficient) even though second moments are. *)
  Alcotest.(check bool) "R rank deficient" true
    (Qr.matrix_rank (Sparse.to_dense r_fig1) < Sparse.cols r_fig1);
  Alcotest.(check int) "A full rank" 5
    (Qr.matrix_rank (Sparse.to_dense (Augmented.build r_fig1)))

let test_drop_negative_rows () =
  (* A consistent system plus one corrupted negative equation: dropping it
     restores the solution; keeping it perturbs the fit. *)
  let v_true = [| 0.01; 0.002; 0.005; 0.0001; 0.03 |] in
  let rd = Sparse.to_dense r_fig1 in
  let sigma = Matrix.mul (Matrix.mul rd (Matrix.diag v_true)) (Matrix.transpose rd) in
  let sigma_star = Covariance.of_sigma_matrix sigma in
  sigma_star.(1) <- -0.5;
  let a = Augmented.build r_fig1 in
  let dropped = VE.solve ~a ~sigma_star () in
  let kept =
    VE.solve ~options:{ VE.default_options with VE.drop_negative = false } ~a
      ~sigma_star ()
  in
  Alcotest.(check bool) "dropping recovers truth" true
    (Vector.approx_equal ~tol:1e-9 dropped v_true);
  Alcotest.(check bool) "keeping is perturbed" false
    (Vector.approx_equal ~tol:1e-3 kept v_true)

let test_methods_agree () =
  let rng = Rng.create 17 in
  let tb = Topology.Tree_gen.generate rng ~nodes:60 ~max_branching:5 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1 in
  let run = Netsim.Simulator.run rng config r ~count:30 in
  let v_ne =
    VE.estimate ~options:{ VE.default_options with VE.method_ = VE.Normal_equations }
      ~r ~y:run.Netsim.Simulator.y ()
  in
  let v_qr =
    VE.estimate ~options:{ VE.default_options with VE.method_ = VE.Dense_qr } ~r
      ~y:run.Netsim.Simulator.y ()
  in
  Alcotest.(check bool) "normal equations = dense QR" true
    (Vector.approx_equal ~tol:1e-5 v_ne v_qr)

let test_clamp_option () =
  (* negative solution components are clamped to zero by default *)
  let r = Sparse.create ~cols:1 [| [| 0 |] |] in
  let a = Augmented.build r in
  let v = VE.solve ~a ~sigma_star:[| -1. |] ~options:
      { VE.default_options with VE.drop_negative = false } () in
  close "clamped at zero" 0. v.(0)

(* A Figure-2-style aggregation: beacons B1 and B2 each probe D1, D2, D3
   through a shared core (B1 -> r, B2 -> s, r <-> s). Like the paper's
   Figure 2 matrix, R is rank deficient (rank 5 here) while the augmented
   matrix still has full column rank (Theorem 1). Columns: 0:B1->r,
   1:r->D1, 2:r->s, 3:s->D2, 4:s->D3, 5:B2->s, 6:s->r. *)
let r_fig2 =
  Sparse.create ~cols:7
    [| [| 0; 1 |]; [| 0; 2; 3 |]; [| 0; 2; 4 |];
       [| 1; 5; 6 |]; [| 3; 5 |]; [| 4; 5 |] |]

let test_fig2_rank_and_identifiability () =
  Alcotest.(check int) "rank(R) = 5 < min(6, 7), as in Figure 2" 5
    (Qr.matrix_rank (Sparse.to_dense r_fig2));
  Alcotest.(check bool) "A full column rank (Theorem 1)" true
    (Core.Identifiability.is_identifiable r_fig2)

let test_fig2_exact_recovery () =
  let v_true = [| 2e-3; 1e-4; 3e-3; 5e-4; 7e-4; 1.5e-3; 2e-4 |] in
  let v = exact_recovery r_fig2 v_true in
  Alcotest.(check bool) "multi-beacon variances recovered" true
    (Vector.approx_equal ~tol:1e-10 v v_true)

(* --- Rank reduction (Section 5.2) ----------------------------------------- *)

let test_eliminate_keeps_full_rank () =
  let rng = Rng.create 19 in
  let tb = Topology.Tree_gen.generate rng ~nodes:150 ~max_branching:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let v = Array.init (Sparse.cols r) (fun k -> float_of_int ((k * 7919) mod 101)) in
  let { RR.kept; removed } = RR.eliminate r v in
  Alcotest.(check int) "partition"
    (Sparse.cols r)
    (Array.length kept + Array.length removed);
  let r_star = Sparse.dense_cols r kept in
  Alcotest.(check int) "R* full column rank" (Array.length kept)
    (Qr.matrix_rank r_star)

let test_eliminate_suffix_semantics () =
  (* Crafted case where the paper's rule differs from greedy selection:
     columns (by ascending variance) c0 = e1, c1 = e2, c2 = e1 + e2, c3 = e3.
     Paper: removing c0 leaves {c1, c2, c3} independent -> kept = 3 columns
     including the dependent-looking c2. Greedy (descending) would keep
     {c3, c2, c1} too... distinguish with c2 = e1+e2 ranked highest:
     descending order c3, c2, c1, c0: greedy keeps c3, c2, c1 and drops c0;
     paper's rule also keeps {c1, c2, c3}. Use instead variances putting
     e1, e2 on top: descending c0, c1, c2', c3 where c2' = e1 + e2 is now
     dependent when reached -> paper stops and removes both c2' and c3 even
     though c3 = e3 is independent; greedy keeps c3. *)
  let r =
    Sparse.create ~cols:4
      [| [| 0; 2 |]; [| 1; 2 |]; [| 3 |] |]
  in
  (* columns: 0 -> {p0}, 1 -> {p1}, 2 -> {p0,p1}, 3 -> {p2} *)
  let v = [| 10.; 9.; 2.; 1. |] in
  (* descending order: c0, c1, c2 (dependent on c0+c1), c3 *)
  let paper = RR.eliminate r v in
  Alcotest.(check (array int)) "paper rule stops at first dependency"
    [| 0; 1 |] paper.RR.kept;
  let greedy = RR.eliminate_greedy r v in
  Alcotest.(check (array int)) "greedy keeps later independent column"
    [| 0; 1; 3 |] greedy.RR.kept

let test_eliminate_all_independent () =
  let r = Sparse.create ~cols:3 [| [| 0 |]; [| 1 |]; [| 2 |] |] in
  let { RR.kept; removed } = RR.eliminate r [| 3.; 1.; 2. |] in
  Alcotest.(check int) "keeps everything" 3 (Array.length kept);
  Alcotest.(check int) "removes nothing" 0 (Array.length removed);
  Alcotest.(check (array int)) "descending variance order" [| 0; 2; 1 |] kept

let test_is_full_column_rank () =
  Alcotest.(check bool) "independent" true
    (RR.is_full_column_rank (Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |]));
  (* two rows cannot support three independent columns *)
  Alcotest.(check bool) "dependent" false
    (RR.is_full_column_rank (Sparse.create ~cols:3 [| [| 0; 2 |]; [| 1; 2 |] |]))

let test_greedy_superset_of_paper () =
  let rng = Rng.create 23 in
  let tb = Topology.Waxman.generate rng ~nodes:50 ~hosts:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let v = Array.init (Sparse.cols r) (fun k -> float_of_int ((k * 31) mod 17)) in
  let paper = RR.eliminate r v and greedy = RR.eliminate_greedy r v in
  Alcotest.(check bool) "greedy keeps at least as many" true
    (Array.length greedy.RR.kept >= Array.length paper.RR.kept)

(* --- LIA end to end --------------------------------------------------------- *)

let lia_tree_setup seed =
  let rng = Rng.create seed in
  let tb = Topology.Tree_gen.generate rng ~nodes:300 ~max_branching:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1 in
  let run = Netsim.Simulator.run rng config r ~count:31 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:30 in
  (r, y_learn, target)

let test_lia_detects_congested_links () =
  let r, y_learn, target = lia_tree_setup 29 in
  let res = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  let inferred = Lia.congested res ~threshold:0.002 in
  let loc = Metrics.location ~actual:target.Netsim.Snapshot.congested ~inferred in
  Alcotest.(check bool) "DR above 0.9" true (loc.Metrics.dr > 0.9);
  Alcotest.(check bool) "FPR below 0.15" true (loc.Metrics.fpr < 0.15)

let test_lia_loss_rate_accuracy () =
  let r, y_learn, target = lia_tree_setup 31 in
  let res = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  let errs =
    Metrics.absolute_errors ~actual:target.Netsim.Snapshot.realized
      ~inferred:res.Lia.loss_rates
  in
  let sp = Metrics.spread errs in
  Alcotest.(check bool) "median error tiny" true (sp.Metrics.median < 0.005);
  Alcotest.(check bool) "max error bounded" true (sp.Metrics.max < 0.05)

let test_lia_removed_links_get_zero_loss () =
  let r, y_learn, target = lia_tree_setup 37 in
  let res = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  Array.iter
    (fun j ->
      close "removed -> transmission 1" 1. res.Lia.transmission.(j);
      close "removed -> loss 0" 0. res.Lia.loss_rates.(j))
    res.Lia.removed

let test_lia_transmission_clamped () =
  let r, y_learn, target = lia_tree_setup 41 in
  let res = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  Array.iter
    (fun t -> Alcotest.(check bool) "in (0,1]" true (t > 0. && t <= 1.))
    res.Lia.transmission

let test_lia_with_variances_reuse () =
  let r, y_learn, target = lia_tree_setup 43 in
  let v = VE.estimate ~r ~y:y_learn () in
  let a = Lia.infer_with_variances ~r ~variances:v ~y_now:target.Netsim.Snapshot.y in
  let b = Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  Alcotest.(check bool) "same result" true
    (Vector.approx_equal ~tol:1e-12 a.Lia.loss_rates b.Lia.loss_rates)

let test_lia_dimension_checks () =
  let r, y_learn, _ = lia_tree_setup 47 in
  Alcotest.check_raises "bad measurement length"
    (Invalid_argument "Lia: measurement length mismatch") (fun () ->
      ignore
        (Lia.infer ~r ~y_learn ~y_now:[| 0. |] ()))

(* --- SCFS ---------------------------------------------------------------------- *)

let test_scfs_tree_example () =
  (* Figure-1 tree: if both paths through link 2 are bad and the third is
     good, SCFS blames the shared link 2 only. *)
  let bad_paths = [| false; true; true |] in
  let verdict = Scfs.infer r_fig1 ~bad_paths in
  Alcotest.(check (array bool)) "blames shared link"
    [| false; false; true; false; false |]
    verdict

let test_scfs_good_path_exonerates () =
  (* All paths bad except path 0, which crosses links 0 and 1: those can
     never be blamed. *)
  let bad_paths = [| false; true; true |] in
  let verdict = Scfs.infer r_fig1 ~bad_paths in
  Alcotest.(check bool) "link 0 exonerated" false verdict.(0);
  Alcotest.(check bool) "link 1 exonerated" false verdict.(1)

let test_scfs_single_bad_leaf () =
  let bad_paths = [| true; false; false |] in
  let verdict = Scfs.infer r_fig1 ~bad_paths in
  (* only path 0 bad: candidate links are those on path 0 and no good path:
     link 1 (private to path 0); smallest set = {1} *)
  Alcotest.(check (array bool)) "private link blamed"
    [| false; true; false; false; false |]
    verdict

let test_scfs_nothing_bad () =
  let verdict = Scfs.infer r_fig1 ~bad_paths:[| false; false; false |] in
  Alcotest.(check bool) "nothing blamed" true (Array.for_all not verdict)

let test_scfs_classify_paths () =
  let y = [| log 0.999; log 0.85 |] in
  let r = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |] |] in
  let bad = Scfs.classify_paths r ~y_now:y ~threshold:0.002 in
  Alcotest.(check (array bool)) "classification" [| false; true |] bad

(* --- Metrics --------------------------------------------------------------------- *)

let test_metrics_location () =
  let actual = [| true; true; false; false; true |] in
  let inferred = [| true; false; true; false; true |] in
  let { Metrics.dr; fpr } = Metrics.location ~actual ~inferred in
  close "dr" (2. /. 3.) dr;
  close "fpr" (1. /. 3.) fpr

let test_metrics_location_empty_cases () =
  let none = Metrics.location ~actual:[| false |] ~inferred:[| false |] in
  close "dr with no failures" 1. none.Metrics.dr;
  close "fpr with no flags" 0. none.Metrics.fpr

let test_metrics_error_factor () =
  close "identical" 1. (Metrics.error_factor 0.1 0.1);
  close "double" 2. (Metrics.error_factor 0.1 0.05);
  close "floored" 1. (Metrics.error_factor 0.0001 0.0);
  close "floored ratio" 2. (Metrics.error_factor 0.002 0.0)

let test_metrics_pp () =
  let loc = { Metrics.dr = 0.955; fpr = 0.031 } in
  Alcotest.(check string) "pp_location" "DR=95.50% FPR=3.10%"
    (Format.asprintf "%a" Metrics.pp_location loc);
  let sp = { Metrics.max = 0.1; median = 0.01; min = 0. } in
  Alcotest.(check string) "pp_spread" "max=0.1 median=0.01 min=0"
    (Format.asprintf "%a" Metrics.pp_spread sp)

let test_validation_epsilon_boundary () =
  let r = Sparse.create ~cols:1 [| [| 0 |] |] in
  let report ~eps ~measured =
    Validation.check_paths ~r ~covered:[| true |] ~transmission:[| 0.9 |]
      ~rows:[| 0 |] ~y_now:[| log measured |] ~epsilon:eps
  in
  (* |measured - predicted| = 0.01 exactly at epsilon -> consistent *)
  Alcotest.(check int) "boundary counts as consistent" 1
    (report ~eps:0.010000001 ~measured:0.91).Validation.consistent;
  Alcotest.(check int) "beyond boundary fails" 0
    (report ~eps:0.0099 ~measured:0.91).Validation.consistent

let test_metrics_spread () =
  let sp = Metrics.spread [| 3.; 1.; 2. |] in
  close "max" 3. sp.Metrics.max;
  close "median" 2. sp.Metrics.median;
  close "min" 1. sp.Metrics.min

(* --- Validation (eq. 11) ----------------------------------------------------------- *)

let test_validation_split_partition () =
  let rng = Rng.create 51 in
  let a, b = Validation.split rng ~paths:101 in
  Alcotest.(check int) "sizes" 101 (Array.length a + Array.length b);
  let seen = Array.make 101 false in
  Array.iter (fun i -> seen.(i) <- true) a;
  Array.iter (fun i -> seen.(i) <- true) b;
  Alcotest.(check bool) "partition covers all" true (Array.for_all (fun x -> x) seen)

let test_validation_perfect_inference () =
  (* if transmission rates are exact and cover everything, every validation
     path is consistent for any epsilon *)
  let r = r_fig1 in
  let trans = [| 0.95; 0.99; 0.9; 0.98; 0.97 |] in
  let y_now =
    Array.init 3 (fun i ->
        Array.fold_left (fun acc j -> acc +. log trans.(j)) 0. (Sparse.row r i))
  in
  let report =
    Validation.check_paths ~r ~covered:(Array.make 5 true) ~transmission:trans
      ~rows:[| 0; 1; 2 |] ~y_now ~epsilon:1e-9
  in
  Alcotest.(check int) "all consistent" 3 report.Validation.consistent

let test_validation_detects_inconsistency () =
  let r = r_fig1 in
  let trans = [| 0.5; 0.99; 0.9; 0.98; 0.97 |] in
  let y_now = [| log 0.99; log 0.99; log 0.99 |] in
  let report =
    Validation.check_paths ~r ~covered:(Array.make 5 true) ~transmission:trans
      ~rows:[| 0; 1; 2 |] ~y_now ~epsilon:0.005
  in
  Alcotest.(check int) "none consistent" 0 report.Validation.consistent

let test_validation_cross_validate_end_to_end () =
  (* dense coverage (many hosts on a small core) and the internet loss
     model: the Section 7 regime where eq. (11) consistency is high *)
  let rng = Rng.create 53 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:30 ~ases:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.internet in
  let run = Netsim.Simulator.run rng config r ~count:31 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:30 in
  let report =
    Validation.cross_validate rng ~r ~y_learn ~y_now:target.Netsim.Snapshot.y
      ~epsilon:0.005
  in
  Alcotest.(check bool) "mostly consistent" true (report.Validation.fraction > 0.8)

(* --- As_location -------------------------------------------------------------------- *)

let test_as_location () =
  let nodes =
    Array.init 4 (fun i ->
        { Topology.Graph.id = i;
          kind = (if i = 0 || i = 3 then Topology.Graph.Host else Topology.Graph.Router);
          as_id = (if i < 2 then 0 else 1) })
  in
  let graph = Topology.Graph.create ~nodes ~edges:[| (0, 1); (1, 2); (2, 3) |] in
  let red =
    Topology.Routing.build graph ~beacons:[| 0 |] ~destinations:[| 3 |]
  in
  (* single path, all three edges collapse into one virtual link crossing
     an AS boundary *)
  let report =
    Core.As_location.classify ~graph ~routing:red ~loss_rates:[| 0.1 |]
      ~threshold:0.01
  in
  Alcotest.(check int) "inter" 1 report.Core.As_location.inter;
  Alcotest.(check int) "intra" 0 report.Core.As_location.intra;
  close "fraction" 1. (Core.As_location.inter_fraction report)

let test_as_location_threshold () =
  let nodes =
    Array.init 3 (fun i ->
        { Topology.Graph.id = i;
          kind = (if i <> 1 then Topology.Graph.Host else Topology.Graph.Router);
          as_id = 0 })
  in
  let graph = Topology.Graph.create ~nodes ~edges:[| (0, 1); (1, 2) |] in
  let red = Topology.Routing.build graph ~beacons:[| 0 |] ~destinations:[| 2 |] in
  let report =
    Core.As_location.classify ~graph ~routing:red ~loss_rates:[| 0.005 |]
      ~threshold:0.01
  in
  Alcotest.(check int) "below threshold not counted" 0
    (report.Core.As_location.inter + report.Core.As_location.intra)

(* --- Duration ------------------------------------------------------------------------- *)

let test_duration_runs () =
  let series =
    [| [| true; false |]; [| true; false |]; [| false; true |]; [| true; true |] |]
  in
  let lengths = List.sort compare (Duration.runs series) in
  (* link 0: run of 2, then run of 1; link 1: run of 2 *)
  Alcotest.(check (list int)) "runs" [ 1; 2; 2 ] lengths

let test_duration_distribution () =
  let d = Duration.distribution [ 1; 1; 1; 2 ] in
  Alcotest.(check (list (pair int (float 1e-9)))) "distribution"
    [ (1, 0.75); (2, 0.25) ] d;
  close "fraction of length 1" 0.75 (Duration.fraction_of_length [ 1; 1; 1; 2 ] 1);
  close "fraction of absent length" 0. (Duration.fraction_of_length [ 1 ] 5)

let test_duration_empty () =
  Alcotest.(check (list int)) "no snapshots" [] (Duration.runs [||]);
  Alcotest.(check (list (pair int (float 1e-9)))) "no runs" []
    (Duration.distribution [])

(* --- Properties: Theorem 1 on random topologies ---------------------------------------- *)

let prop_theorem1_trees =
  QCheck.Test.make ~count:15
    ~name:"Theorem 1: A has full column rank on random trees; v recovered"
    QCheck.(int_range 20 120)
    (fun n ->
      let rng = Rng.create (n * 13) in
      let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:6 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let nc = Sparse.cols r in
      let v_true = Array.init nc (fun k -> 1e-5 *. float_of_int (1 + ((k * 7) mod 23))) in
      let v = exact_recovery r v_true in
      Vector.approx_equal ~tol:1e-7 v v_true)

let prop_theorem1_meshes =
  QCheck.Test.make ~count:10
    ~name:"Theorem 1: variances recovered on random multi-beacon meshes"
    QCheck.(int_range 25 60)
    (fun n ->
      let rng = Rng.create (n * 17) in
      let tb = Topology.Waxman.generate rng ~nodes:n ~hosts:6 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let nc = Sparse.cols r in
      let v_true = Array.init nc (fun k -> 1e-5 *. float_of_int (1 + ((k * 11) mod 31))) in
      let v = exact_recovery r v_true in
      Vector.approx_equal ~tol:1e-7 v v_true)

let prop_rank_reduction_partition =
  QCheck.Test.make ~count:30 ~name:"rank reduction: kept ∪ removed partitions columns"
    QCheck.(int_range 10 80)
    (fun n ->
      let rng = Rng.create (n * 19) in
      let tb = Topology.Tree_gen.generate rng ~nodes:n ~max_branching:5 () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let v = Array.init (Sparse.cols r) (fun k -> float_of_int ((k * 3) mod 11)) in
      let { RR.kept; removed } = RR.eliminate r v in
      let seen = Array.make (Sparse.cols r) 0 in
      Array.iter (fun j -> seen.(j) <- seen.(j) + 1) kept;
      Array.iter (fun j -> seen.(j) <- seen.(j) + 1) removed;
      Array.for_all (fun c -> c = 1) seen
      && Qr.matrix_rank (Sparse.dense_cols r kept) = Array.length kept)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_theorem1_trees; prop_theorem1_meshes; prop_rank_reduction_partition ]

let () =
  Alcotest.run "core"
    [
      ( "augmented",
        [
          Alcotest.test_case "row index roundtrip" `Quick test_row_index_roundtrip;
          Alcotest.test_case "row index invalid" `Quick test_row_index_invalid;
          Alcotest.test_case "matches paper example" `Quick
            test_build_matches_paper_example;
          Alcotest.test_case "diagonal rows" `Quick test_build_diagonal_rows_are_r;
          Alcotest.test_case "full column rank (fig 1)" `Quick
            test_full_column_rank_fig1;
          Alcotest.test_case "incremental update" `Quick test_update_rows_equals_rebuild;
        ] );
      ( "covariance",
        [
          Alcotest.test_case "sigma star alignment" `Quick test_sigma_star_alignment;
          Alcotest.test_case "of sigma matrix" `Quick test_of_sigma_matrix;
        ] );
      ( "variance_estimator",
        [
          Alcotest.test_case "exact recovery (fig 1)" `Quick test_exact_recovery_fig1;
          Alcotest.test_case "exact recovery (tree)" `Quick test_exact_recovery_tree;
          Alcotest.test_case "exact recovery (mesh)" `Quick test_exact_recovery_mesh;
          Alcotest.test_case "first moments unidentifiable" `Quick
            test_mean_loss_rates_not_identifiable;
          Alcotest.test_case "drop negative rows" `Quick test_drop_negative_rows;
          Alcotest.test_case "methods agree" `Quick test_methods_agree;
          Alcotest.test_case "clamp" `Quick test_clamp_option;
          Alcotest.test_case "figure 2 rank/identifiability" `Quick
            test_fig2_rank_and_identifiability;
          Alcotest.test_case "figure 2 exact recovery" `Quick
            test_fig2_exact_recovery;
        ] );
      ( "rank_reduction",
        [
          Alcotest.test_case "keeps full rank" `Quick test_eliminate_keeps_full_rank;
          Alcotest.test_case "suffix semantics vs greedy" `Quick
            test_eliminate_suffix_semantics;
          Alcotest.test_case "all independent" `Quick test_eliminate_all_independent;
          Alcotest.test_case "full column rank test" `Quick test_is_full_column_rank;
          Alcotest.test_case "greedy keeps more" `Quick test_greedy_superset_of_paper;
        ] );
      ( "lia",
        [
          Alcotest.test_case "detects congested links" `Slow
            test_lia_detects_congested_links;
          Alcotest.test_case "loss rate accuracy" `Slow test_lia_loss_rate_accuracy;
          Alcotest.test_case "removed links zero loss" `Slow
            test_lia_removed_links_get_zero_loss;
          Alcotest.test_case "transmission clamped" `Slow test_lia_transmission_clamped;
          Alcotest.test_case "variance reuse" `Slow test_lia_with_variances_reuse;
          Alcotest.test_case "dimension checks" `Quick test_lia_dimension_checks;
        ] );
      ( "scfs",
        [
          Alcotest.test_case "tree example" `Quick test_scfs_tree_example;
          Alcotest.test_case "good path exonerates" `Quick
            test_scfs_good_path_exonerates;
          Alcotest.test_case "single bad leaf" `Quick test_scfs_single_bad_leaf;
          Alcotest.test_case "nothing bad" `Quick test_scfs_nothing_bad;
          Alcotest.test_case "classify paths" `Quick test_scfs_classify_paths;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "location" `Quick test_metrics_location;
          Alcotest.test_case "location empty cases" `Quick
            test_metrics_location_empty_cases;
          Alcotest.test_case "error factor" `Quick test_metrics_error_factor;
          Alcotest.test_case "spread" `Quick test_metrics_spread;
          Alcotest.test_case "pretty printers" `Quick test_metrics_pp;
        ] );
      ( "validation",
        [
          Alcotest.test_case "split partition" `Quick test_validation_split_partition;
          Alcotest.test_case "perfect inference" `Quick test_validation_perfect_inference;
          Alcotest.test_case "detects inconsistency" `Quick
            test_validation_detects_inconsistency;
          Alcotest.test_case "epsilon boundary" `Quick
            test_validation_epsilon_boundary;
          Alcotest.test_case "cross validate end-to-end" `Slow
            test_validation_cross_validate_end_to_end;
        ] );
      ( "as_location",
        [
          Alcotest.test_case "classify" `Quick test_as_location;
          Alcotest.test_case "threshold" `Quick test_as_location_threshold;
        ] );
      ( "duration",
        [
          Alcotest.test_case "runs" `Quick test_duration_runs;
          Alcotest.test_case "distribution" `Quick test_duration_distribution;
          Alcotest.test_case "empty" `Quick test_duration_empty;
        ] );
      ("properties", properties);
    ]
