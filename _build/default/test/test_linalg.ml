(* Unit and property tests for the dense/sparse linear algebra substrate. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_floatish msg = Alcotest.(check (float 1e-6)) msg

let vec = Alcotest.testable Vector.pp (Vector.approx_equal ~tol:1e-9)

let mat = Alcotest.testable Matrix.pp (Matrix.approx_equal ~tol:1e-9)

(* --- Vector ----------------------------------------------------------- *)

let test_vector_basic () =
  let x = Vector.of_list [ 1.; 2.; 3. ] in
  let y = Vector.of_list [ 4.; 5.; 6. ] in
  Alcotest.check vec "add" (Vector.of_list [ 5.; 7.; 9. ]) (Vector.add x y);
  Alcotest.check vec "sub" (Vector.of_list [ -3.; -3.; -3. ]) (Vector.sub x y);
  Alcotest.check vec "scale" (Vector.of_list [ 2.; 4.; 6. ]) (Vector.scale 2. x);
  check_float "dot" 32. (Vector.dot x y);
  check_float "sum" 6. (Vector.sum x);
  check_float "mean" 2. (Vector.mean x);
  check_float "norm2" (sqrt 14.) (Vector.norm2 x);
  check_float "norm_inf" 3. (Vector.norm_inf x);
  Alcotest.check vec "hadamard" (Vector.of_list [ 4.; 10.; 18. ]) (Vector.hadamard x y)

let test_vector_axpy () =
  let x = Vector.of_list [ 1.; 2. ] in
  let y = Vector.of_list [ 10.; 20. ] in
  Vector.axpy 3. x y;
  Alcotest.check vec "axpy" (Vector.of_list [ 13.; 26. ]) y

let test_vector_dim_mismatch () =
  let x = Vector.zeros 2 and y = Vector.zeros 3 in
  Alcotest.check_raises "add" (Invalid_argument "Vector.add: dimension mismatch")
    (fun () -> ignore (Vector.add x y));
  Alcotest.check_raises "dot" (Invalid_argument "Vector.dot: dimension mismatch")
    (fun () -> ignore (Vector.dot x y))

let test_vector_empty_mean () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Vector.mean: empty vector") (fun () ->
      ignore (Vector.mean [||]))

let test_vector_extremes () =
  let x = Vector.of_list [ 3.; -1.; 7.; 7.; 0. ] in
  Alcotest.(check int) "max_index" 2 (Vector.max_index x);
  Alcotest.(check int) "min_index" 1 (Vector.min_index x)

let test_vector_norm2_overflow () =
  let big = 1e200 in
  let x = Vector.of_list [ big; big ] in
  check_floatish "scaled norm" (big *. sqrt 2. /. 1e200) (Vector.norm2 x /. 1e200)

let test_sort_indices () =
  let x = Vector.of_list [ 3.; 1.; 2. ] in
  Alcotest.(check (array int)) "ascending" [| 1; 2; 0 |] (Vector.sort_indices x);
  Alcotest.(check (array int)) "descending" [| 0; 2; 1 |]
    (Vector.sort_indices ~descending:true x);
  (* stability on ties *)
  let y = Vector.of_list [ 1.; 1.; 0. ] in
  Alcotest.(check (array int)) "stable" [| 2; 0; 1 |] (Vector.sort_indices y)

let test_dist2 () =
  let x = Vector.of_list [ 0.; 3. ] and y = Vector.of_list [ 4.; 0. ] in
  check_float "dist" 5. (Vector.dist2 x y)

(* --- Matrix ----------------------------------------------------------- *)

let test_matrix_basic () =
  let m = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "get" 3. (Matrix.get m 1 0);
  Alcotest.check vec "row" [| 3.; 4. |] (Matrix.row m 1);
  Alcotest.check vec "col" [| 2.; 4. |] (Matrix.col m 1);
  Alcotest.check mat "transpose"
    (Matrix.of_arrays [| [| 1.; 3. |]; [| 2.; 4. |] |])
    (Matrix.transpose m);
  Alcotest.check mat "identity mul" m (Matrix.mul m (Matrix.identity 2))

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let b = Matrix.of_arrays [| [| 7.; 8. |]; [| 9.; 10. |]; [| 11.; 12. |] |] in
  Alcotest.check mat "a*b"
    (Matrix.of_arrays [| [| 58.; 64. |]; [| 139.; 154. |] |])
    (Matrix.mul a b);
  Alcotest.check vec "a*x" [| 14.; 32. |]
    (Matrix.mul_vec a (Vector.of_list [ 1.; 2.; 3. ]));
  Alcotest.check vec "aT*y" [| 9.; 12.; 15. |]
    (Matrix.tmul_vec a (Vector.of_list [ 1.; 2. ]))

let test_matrix_gram () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let g = Matrix.gram a in
  Alcotest.check mat "gram = aT a" (Matrix.mul (Matrix.transpose a) a) g;
  Alcotest.(check bool) "symmetric" true (Matrix.is_symmetric g)

let test_matrix_select_drop () =
  let m = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  Alcotest.check mat "select"
    (Matrix.of_arrays [| [| 3.; 1. |]; [| 6.; 4. |] |])
    (Matrix.select_cols m [| 2; 0 |]);
  Alcotest.check mat "drop"
    (Matrix.of_arrays [| [| 2. |]; [| 5. |] |])
    (Matrix.drop_cols m [ 0; 2 ])

let test_matrix_stack () =
  let a = Matrix.of_arrays [| [| 1. |]; [| 2. |] |] in
  let b = Matrix.of_arrays [| [| 3. |]; [| 4. |] |] in
  Alcotest.check mat "hstack"
    (Matrix.of_arrays [| [| 1.; 3. |]; [| 2.; 4. |] |])
    (Matrix.hstack a b);
  Alcotest.check mat "vstack"
    (Matrix.of_arrays [| [| 1. |]; [| 2. |]; [| 3. |]; [| 4. |] |])
    (Matrix.vstack a b)

let test_matrix_diag () =
  let d = Matrix.diag (Vector.of_list [ 1.; 2. ]) in
  Alcotest.check mat "diag" (Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 2. |] |]) d;
  Alcotest.check vec "diagonal" [| 1.; 2. |] (Matrix.diagonal d)

let test_matrix_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows")
    (fun () -> ignore (Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

(* --- QR ---------------------------------------------------------------- *)

let test_qr_solve_square () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Qr.solve a (Vector.of_list [ 5.; 10. ]) in
  Alcotest.check vec "solution" (Vector.of_list [ 1.; 3. ]) x

let test_qr_least_squares () =
  (* Overdetermined: fit y = a + b t at t = 0,1,2 with y = 1,2,4 (not exact). *)
  let a =
    Matrix.of_arrays [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |] |]
  in
  let x = Qr.solve a (Vector.of_list [ 1.; 2.; 4. ]) in
  (* closed form: intercept 5/6, slope 3/2 *)
  check_floatish "intercept" (5. /. 6.) x.(0);
  check_floatish "slope" 1.5 x.(1)

let test_qr_rank () =
  let full = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.(check int) "full rank" 2 (Qr.matrix_rank full);
  let deficient =
    Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 2.; 4.; 6. |]; [| 1.; 1.; 1. |] |]
  in
  Alcotest.(check int) "rank 2" 2 (Qr.matrix_rank deficient);
  Alcotest.(check int) "zero matrix" 0 (Qr.matrix_rank (Matrix.zeros 3 3))

let test_qr_r_factor () =
  let a = Matrix.of_arrays [| [| 3.; 1. |]; [| 4.; 2. |] |] in
  let f = Qr.factorize a in
  let r = Qr.r f in
  (* |r11| = norm of first column *)
  check_floatish "r11" 5. (Float.abs (Matrix.get r 0 0));
  check_floatish "r below diag" 0. (Matrix.get r 1 0)

let test_qr_pivots () =
  let a = Matrix.of_arrays [| [| 0.; 5. |]; [| 0.; 1. |] |] in
  let f = Qr.factorize_pivoted a in
  (* the larger column (index 1) is pivoted first *)
  Alcotest.(check (array int)) "pivot order" [| 1; 0 |] (Qr.pivots f);
  let unpivoted = Qr.factorize a in
  Alcotest.(check (array int)) "identity without pivoting" [| 0; 1 |]
    (Qr.pivots unpivoted)

let test_qr_singular_raises () =
  let a = Matrix.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  match Qr.solve a (Vector.of_list [ 1.; 1. ]) with
  | _ -> Alcotest.fail "expected failure on singular system"
  | exception Failure _ -> ()

(* --- Cholesky ----------------------------------------------------------- *)

let test_cholesky_solve () =
  (* solve [[4,2],[2,3]] x = [10, 8] -> x = [1.75, 1.5] *)
  let m = Matrix.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let x = Cholesky.solve m (Vector.of_list [ 10.; 8. ]) in
  check_floatish "x0" 1.75 x.(0);
  check_floatish "x1" 1.5 x.(1)

let test_cholesky_not_pd () =
  let m = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not pd" Cholesky.Not_positive_definite (fun () ->
      ignore (Cholesky.factorize m))

let test_cholesky_regularized () =
  (* Singular PSD matrix: regularization must make it solvable. *)
  let m = Matrix.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let f = Cholesky.factorize_regularized m in
  let x = Cholesky.solve_vec f (Vector.of_list [ 2.; 2. ]) in
  check_floatish "x0+x1 ~ 2" 2. (x.(0) +. x.(1))

let test_cholesky_log_det () =
  let m = Matrix.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  let f = Cholesky.factorize m in
  check_floatish "log det" (log 36.) (Cholesky.log_det f)

(* --- Conjugate gradient --------------------------------------------------- *)

let test_cg_solves_spd () =
  let m = Matrix.of_arrays [| [| 4.; 1. |]; [| 1.; 3. |] |] in
  let b = Vector.of_list [ 1.; 2. ] in
  let x, stats = Conjugate_gradient.solve m b in
  let r = Vector.sub (Matrix.mul_vec m x) b in
  Alcotest.(check bool) "residual small" true (Vector.norm_inf r < 1e-8);
  Alcotest.(check bool) "few iterations" true
    (stats.Conjugate_gradient.iterations <= 2)

let test_cg_matches_cholesky () =
  let a = Matrix.of_arrays [| [| 1.; 2.; 0. |]; [| 0.; 1.; 1. |]; [| 3.; 0.; 1. |];
                              [| 1.; 1.; 1. |] |] in
  let spd = Matrix.add (Matrix.gram a) (Matrix.identity 3) in
  let b = Vector.of_list [ 3.; -1.; 2. ] in
  let x_cg, _ = Conjugate_gradient.solve spd b in
  let x_ch = Cholesky.solve spd b in
  Alcotest.(check bool) "agree" true (Vector.approx_equal ~tol:1e-7 x_cg x_ch)

let test_cg_zero_rhs () =
  let m = Matrix.identity 3 in
  let x, stats = Conjugate_gradient.solve m (Vector.zeros 3) in
  Alcotest.(check bool) "zero solution" true (Vector.approx_equal x (Vector.zeros 3));
  Alcotest.(check int) "no iterations" 0 stats.Conjugate_gradient.iterations

let test_cg_matfree () =
  (* implicit diagonal matrix *)
  let d = [| 2.; 5.; 10. |] in
  let mul x = Vector.hadamard d x in
  let b = Vector.of_list [ 2.; 10.; 30. ] in
  let x, _ = Conjugate_gradient.solve_matfree ~dim:3 ~mul b in
  Alcotest.(check bool) "diagonal solve" true
    (Vector.approx_equal ~tol:1e-8 x (Vector.of_list [ 1.; 2.; 3. ]))

(* --- Sparse ------------------------------------------------------------- *)

let test_sparse_basic () =
  let s = Sparse.create ~cols:4 [| [| 0; 2 |]; [| 1; 2; 3 |]; [||] |] in
  Alcotest.(check int) "rows" 3 (Sparse.rows s);
  Alcotest.(check int) "cols" 4 (Sparse.cols s);
  Alcotest.(check int) "nnz" 5 (Sparse.nnz s);
  Alcotest.(check bool) "get 0 2" true (Sparse.get s 0 2);
  Alcotest.(check bool) "get 0 1" false (Sparse.get s 0 1);
  Alcotest.(check (array int)) "col counts" [| 1; 1; 2; 1 |] (Sparse.column_counts s)

let test_sparse_invalid () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Sparse.create: row not strictly increasing or out of range")
    (fun () -> ignore (Sparse.create ~cols:3 [| [| 2; 1 |] |]))

let test_sparse_row_product () =
  Alcotest.(check (array int)) "intersection" [| 1; 4 |]
    (Sparse.row_product [| 0; 1; 4 |] [| 1; 2; 4; 5 |]);
  Alcotest.(check (array int)) "disjoint" [||]
    (Sparse.row_product [| 0 |] [| 1 |])

let test_sparse_mul () =
  let s = Sparse.create ~cols:3 [| [| 0; 1 |]; [| 2 |] |] in
  Alcotest.check vec "mul_vec" [| 3.; 7. |]
    (Sparse.mul_vec s (Vector.of_list [ 1.; 2.; 7. ]));
  Alcotest.check vec "tmul_vec" [| 1.; 1.; 2. |]
    (Sparse.tmul_vec s (Vector.of_list [ 1.; 2. ]))

let test_sparse_dense_roundtrip () =
  let s = Sparse.create ~cols:3 [| [| 0; 2 |]; [| 1 |] |] in
  Alcotest.check mat "dense"
    (Matrix.of_arrays [| [| 1.; 0.; 1. |]; [| 0.; 1.; 0. |] |])
    (Sparse.to_dense s)

let test_sparse_select_cols () =
  let s = Sparse.create ~cols:4 [| [| 0; 2; 3 |]; [| 1; 3 |] |] in
  let s' = Sparse.select_cols s [| 3; 0 |] in
  (* new col 0 = old 3, new col 1 = old 0 *)
  Alcotest.(check bool) "r0 has old3" true (Sparse.get s' 0 0);
  Alcotest.(check bool) "r0 has old0" true (Sparse.get s' 0 1);
  Alcotest.(check bool) "r1 has old3" true (Sparse.get s' 1 0);
  Alcotest.(check bool) "r1 lost old1" false (Sparse.get s' 1 1)

let test_sparse_transpose () =
  let s = Sparse.create ~cols:3 [| [| 0; 1 |]; [| 1; 2 |] |] in
  let t = Sparse.transpose s in
  Alcotest.check mat "transpose agrees with dense"
    (Matrix.transpose (Sparse.to_dense s))
    (Sparse.to_dense t)

let test_sparse_normal_equations () =
  let s = Sparse.create ~cols:2 [| [| 0 |]; [| 1 |]; [| 0; 1 |] |] in
  let g = Sparse.normal_matrix s in
  Alcotest.check mat "gram" (Matrix.gram (Sparse.to_dense s)) g;
  let b = Vector.of_list [ 1.; 2.; 3.5 ] in
  let x = Sparse.least_squares s b in
  let dense_x = Qr.solve (Sparse.to_dense s) b in
  Alcotest.(check bool) "matches dense QR" true (Vector.approx_equal ~tol:1e-6 x dense_x)

(* --- Ortho -------------------------------------------------------------- *)

let test_ortho_independence () =
  let b = Ortho.create ~dim:3 in
  Alcotest.(check bool) "e1" true (Ortho.try_add b [| 1.; 0.; 0. |]);
  Alcotest.(check bool) "e2" true (Ortho.try_add b [| 0.; 1.; 0. |]);
  Alcotest.(check bool) "e1+e2 dependent" false (Ortho.try_add b [| 1.; 1.; 0. |]);
  Alcotest.(check int) "size" 2 (Ortho.size b);
  Alcotest.(check bool) "e3 independent" true (Ortho.try_add b [| 0.; 0.; 1. |]);
  Alcotest.(check bool) "now full" false (Ortho.try_add b [| 1.; 2.; 3. |])

let test_ortho_zero () =
  let b = Ortho.create ~dim:2 in
  Alcotest.(check bool) "zero dependent" false (Ortho.try_add b [| 0.; 0. |])

let test_ortho_in_span () =
  let b = Ortho.create ~dim:2 in
  ignore (Ortho.try_add b [| 1.; 1. |]);
  Alcotest.(check bool) "span yes" true (Ortho.in_span b [| 2.; 2. |]);
  Alcotest.(check bool) "span no" false (Ortho.in_span b [| 1.; 0. |]);
  Alcotest.(check int) "unchanged" 1 (Ortho.size b)

let test_ortho_copy_isolated () =
  let b = Ortho.create ~dim:2 in
  ignore (Ortho.try_add b [| 1.; 0. |]);
  let c = Ortho.copy b in
  ignore (Ortho.try_add c [| 0.; 1. |]);
  Alcotest.(check int) "original unchanged" 1 (Ortho.size b);
  Alcotest.(check int) "copy grew" 2 (Ortho.size c)

(* --- Properties ---------------------------------------------------------- *)

let float_small = QCheck.Gen.float_range (-100.) 100.

let gen_vec n = QCheck.Gen.(array_size (return n) float_small)

let gen_square_matrix =
  QCheck.Gen.(
    int_range 1 8 >>= fun n ->
    array_size (return (n * n)) float_small >>= fun data ->
    return (n, data))

let prop_qr_reconstructs =
  QCheck.Test.make ~count:100 ~name:"QR: least squares residual is orthogonal"
    QCheck.(
      make
        Gen.(
          int_range 1 6 >>= fun n ->
          gen_vec (n + 3) >>= fun b ->
          array_size (return ((n + 3) * n)) float_small >>= fun data ->
          return (n, data, b)))
    (fun (n, data, b) ->
      let m = n + 3 in
      let a = Matrix.init m n (fun i j -> data.((i * n) + j)) in
      match Qr.solve a b with
      | exception Failure _ -> QCheck.assume_fail ()
      | x ->
          (* Normal equations: Aᵀ(Ax − b) = 0 *)
          let r = Vector.sub (Matrix.mul_vec a x) b in
          let g = Matrix.tmul_vec a r in
          Vector.norm_inf g < 1e-6 *. (1. +. Vector.norm_inf b))

let prop_cholesky_solves =
  QCheck.Test.make ~count:100 ~name:"Cholesky: L Lᵀ x = b solved correctly"
    (QCheck.make gen_square_matrix) (fun (n, data) ->
      let a = Matrix.init n n (fun i j -> data.((i * n) + j)) in
      (* make SPD: aᵀa + I *)
      let spd = Matrix.add (Matrix.gram a) (Matrix.identity n) in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x = Cholesky.solve spd b in
      let r = Vector.sub (Matrix.mul_vec spd x) b in
      Vector.norm_inf r < 1e-6 *. (1. +. Vector.norm_inf b))

let prop_sparse_matches_dense =
  QCheck.Test.make ~count:100 ~name:"Sparse: mul_vec matches dense"
    QCheck.(
      make
        Gen.(
          int_range 1 10 >>= fun cols ->
          list_size (int_range 1 8) (list_size (int_range 0 cols) (int_range 0 (cols - 1)))
          >>= fun rows ->
          gen_vec cols >>= fun x -> return (cols, rows, x)))
    (fun (cols, rows, x) ->
      let mk_row l = List.sort_uniq compare l |> Array.of_list in
      let rows = Array.of_list (List.map mk_row rows) in
      let s = Sparse.create ~cols rows in
      let d = Sparse.to_dense s in
      Vector.approx_equal ~tol:1e-9 (Sparse.mul_vec s x) (Matrix.mul_vec d x)
      && Vector.approx_equal ~tol:1e-9
           (Sparse.tmul_vec s (Array.make (Sparse.rows s) 1.))
           (Matrix.tmul_vec d (Array.make (Sparse.rows s) 1.)))

let prop_rank_bounded =
  QCheck.Test.make ~count:100 ~name:"QR rank ≤ min(m,n) and Ortho agrees"
    QCheck.(
      make
        Gen.(
          int_range 1 6 >>= fun m ->
          int_range 1 6 >>= fun n ->
          array_size (return (m * n)) (Gen.oneofl [ 0.; 1. ]) >>= fun data ->
          return (m, n, data)))
    (fun (m, n, data) ->
      let a = Matrix.init m n (fun i j -> data.((i * n) + j)) in
      let r = Qr.matrix_rank a in
      let b = Ortho.create ~dim:m in
      let greedy = ref 0 in
      for j = 0 to n - 1 do
        if Ortho.try_add b (Matrix.col a j) then incr greedy
      done;
      r <= min m n && r = !greedy)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_qr_reconstructs; prop_cholesky_solves; prop_sparse_matches_dense;
      prop_rank_bounded ]

let () =
  Alcotest.run "linalg"
    [
      ( "vector",
        [
          Alcotest.test_case "basic ops" `Quick test_vector_basic;
          Alcotest.test_case "axpy" `Quick test_vector_axpy;
          Alcotest.test_case "dimension mismatch" `Quick test_vector_dim_mismatch;
          Alcotest.test_case "empty mean" `Quick test_vector_empty_mean;
          Alcotest.test_case "extremes" `Quick test_vector_extremes;
          Alcotest.test_case "norm2 overflow" `Quick test_vector_norm2_overflow;
          Alcotest.test_case "sort_indices" `Quick test_sort_indices;
          Alcotest.test_case "dist2" `Quick test_dist2;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "basic" `Quick test_matrix_basic;
          Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "gram" `Quick test_matrix_gram;
          Alcotest.test_case "select/drop cols" `Quick test_matrix_select_drop;
          Alcotest.test_case "stack" `Quick test_matrix_stack;
          Alcotest.test_case "diag" `Quick test_matrix_diag;
          Alcotest.test_case "ragged input" `Quick test_matrix_ragged;
        ] );
      ( "qr",
        [
          Alcotest.test_case "square solve" `Quick test_qr_solve_square;
          Alcotest.test_case "least squares" `Quick test_qr_least_squares;
          Alcotest.test_case "rank" `Quick test_qr_rank;
          Alcotest.test_case "R factor" `Quick test_qr_r_factor;
          Alcotest.test_case "pivots" `Quick test_qr_pivots;
          Alcotest.test_case "singular raises" `Quick test_qr_singular_raises;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "not positive definite" `Quick test_cholesky_not_pd;
          Alcotest.test_case "regularized" `Quick test_cholesky_regularized;
          Alcotest.test_case "log det" `Quick test_cholesky_log_det;
        ] );
      ( "conjugate_gradient",
        [
          Alcotest.test_case "solves SPD" `Quick test_cg_solves_spd;
          Alcotest.test_case "matches cholesky" `Quick test_cg_matches_cholesky;
          Alcotest.test_case "zero rhs" `Quick test_cg_zero_rhs;
          Alcotest.test_case "matrix free" `Quick test_cg_matfree;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "basic" `Quick test_sparse_basic;
          Alcotest.test_case "invalid rows" `Quick test_sparse_invalid;
          Alcotest.test_case "row product" `Quick test_sparse_row_product;
          Alcotest.test_case "mul" `Quick test_sparse_mul;
          Alcotest.test_case "dense roundtrip" `Quick test_sparse_dense_roundtrip;
          Alcotest.test_case "select cols" `Quick test_sparse_select_cols;
          Alcotest.test_case "transpose" `Quick test_sparse_transpose;
          Alcotest.test_case "normal equations" `Quick test_sparse_normal_equations;
        ] );
      ( "ortho",
        [
          Alcotest.test_case "independence" `Quick test_ortho_independence;
          Alcotest.test_case "zero vector" `Quick test_ortho_zero;
          Alcotest.test_case "in_span" `Quick test_ortho_in_span;
          Alcotest.test_case "copy isolation" `Quick test_ortho_copy_isolated;
        ] );
      ("properties", properties);
    ]
