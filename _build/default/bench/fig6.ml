(* Figure 6: CDFs of the absolute error and of the error factor (eq. 10,
   delta = 1e-3) of the inferred link loss rates on 1000-node trees with
   m = 50 learning snapshots.

   Paper: both errors are tiny — absolute errors all below ~0.0025 with
   median ~0.001, error factors almost all 1.0 with a tail to ~1.25. The
   paper's spreads are only attainable over the links whose rates LIA
   actually determines (the congested set; eliminated links carry the 0
   approximation by construction), so we report that convention and also
   the all-links absolute-error CDF for completeness. *)

let run () =
  Exp_common.header "Figure 6: error CDFs on 1000-node trees (m = 50)";
  let abs_all = ref [] and abs_cong = ref [] and fac_cong = ref [] in
  Array.iter
    (fun seed ->
      let rng = Nstats.Rng.create seed in
      let tb =
        Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4
          ~max_branching:10 ()
      in
      let trial = Exp_common.run_trial ~seed:(seed + 1) ~m:50 tb in
      abs_all := Array.to_list (Exp_common.absolute_errors trial) @ !abs_all;
      abs_cong := Exp_common.congested_absolute_errors trial @ !abs_cong;
      fac_cong := Exp_common.congested_error_factors trial @ !fac_cong)
    (Exp_common.seeds ~base:600 5);
  let print_cdf name sample fmt =
    let cdf = Nstats.Ecdf.of_sample (Array.of_list sample) in
    Exp_common.subheader name;
    Exp_common.row "%-12s %-10s" "x" "F(x)";
    List.iter (fun (x, f) -> Exp_common.row fmt x f) (Nstats.Ecdf.curve ~points:12 cdf);
    cdf
  in
  let abs_cdf =
    print_cdf "absolute error CDF (congested links)" !abs_cong "%-12.5f %-10.3f"
  in
  print_string (Nstats.Asciiplot.plot_cdf ~height:10 abs_cdf);
  let fac_cdf =
    print_cdf "error factor CDF (congested links)" !fac_cong "%-12.4f %-10.3f"
  in
  let all_cdf =
    print_cdf "absolute error CDF (all links)" !abs_all "%-12.5f %-10.3f"
  in
  Exp_common.note "congested links:  abs median %.5f (paper ~0.001), p95 %.5f"
    (Nstats.Ecdf.inverse abs_cdf 0.5)
    (Nstats.Ecdf.inverse abs_cdf 0.95);
  Exp_common.note
    "                  factor median %.3f (paper 1.00), p95 %.3f (paper tail ~1.25)"
    (Nstats.Ecdf.inverse fac_cdf 0.5)
    (Nstats.Ecdf.inverse fac_cdf 0.95);
  Exp_common.note "all links:        abs median %.5f, p95 %.5f"
    (Nstats.Ecdf.inverse all_cdf 0.5)
    (Nstats.Ecdf.inverse all_cdf 0.95)
