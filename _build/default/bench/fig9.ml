(* Figure 9: cross-validation of LIA on the PlanetLab deployment (eq. 11,
   epsilon = 0.005): percentage of validation paths whose measured
   transmission rate is consistent with the product of inferred link
   rates, as a function of the number of learning snapshots m.

   Paper: above 94% throughout, rising from ~95.5% (m=20) and flattening
   near ~97.5% for m > 80. Our deployment substitute is a dense overlay
   (many hosts on a research core) under the internet loss model. *)

module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Matrix = Linalg.Matrix

let runs_per_point = 2

let run () =
  Exp_common.header "Figure 9: cross-validation consistency vs m (eq. 11)";
  Exp_common.row "%-6s | %-12s" "m" "consistent";
  let series = ref [] in
  List.iter
    (fun m ->
      let fracs = ref [] in
      Array.iter
        (fun seed ->
          let rng = Nstats.Rng.create seed in
          let tb = Topology.Overlay.planetlab_like rng ~hosts:48 ~ases:12 () in
          let red = Topology.Testbed.routing tb in
          let r = red.Topology.Routing.matrix in
          let config = Snapshot.default_config Lossmodel.Loss_model.internet in
          let run =
            Simulator.run
              ~dynamics:(Simulator.Hetero { stay = 0.3; active = 0.5 })
              rng config r ~count:(m + 1)
          in
          let y_learn, target = Simulator.split_learning run ~learning:m in
          let report =
            Core.Validation.cross_validate rng ~r ~y_learn
              ~y_now:target.Snapshot.y ~epsilon:0.005
          in
          fracs := report.Core.Validation.fraction :: !fracs)
        (Exp_common.seeds ~base:(900 + m) runs_per_point);
      let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
      series := (float_of_int m, 100. *. avg !fracs) :: !series;
      Exp_common.row "%-6d | %10.1f%%" m (Exp_common.pct (avg !fracs)))
    [ 20; 40; 60; 80; 100 ];
  print_string
    (Nstats.Asciiplot.plot_series ~height:10 [ ('c', List.rev !series) ]);
  Exp_common.note "paper: 95.5%% at m=20 rising to ~97.5%%, flattening for m > 80"
