(* Table 3 and Section 7.2.2: statistics of the congested links on the
   PlanetLab deployment — inter- vs intra-AS location for several
   congestion thresholds tl, and the duration of congestion episodes.

   Paper (Table 3):     tl     inter-AS  intra-AS
                        0.04   53.6%     46.4%
                        0.02   56.9%     43.1%
                        0.01   57.8%     42.2%
   Paper (Sec 7.2.2): 99% of congested links stay congested for a single
   5-minute snapshot, 1% for two. *)

module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Matrix = Linalg.Matrix

let run () =
  Exp_common.header "Table 3: location of congested links + episode durations";
  let rng = Nstats.Rng.create 1001 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:30 ~ases:12 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Snapshot.default_config Lossmodel.Loss_model.internet in
  let m = 50 and post = 100 in
  let run =
    Simulator.run
      ~dynamics:(Simulator.Hetero { stay = 0.05; active = 0.4 })
      rng config r ~count:(m + post)
  in
  let y_learn =
    Matrix.init m (Linalg.Sparse.rows r) (fun l i -> Matrix.get run.Simulator.y l i)
  in
  let variances = Core.Variance_estimator.estimate ~r ~y:y_learn () in
  let results =
    Array.init post (fun t ->
        Core.Lia.infer_with_variances ~r ~variances
          ~y_now:run.Simulator.snapshots.(m + t).Snapshot.y)
  in
  Exp_common.subheader "location of congested links (100 snapshots)";
  Exp_common.row "%-8s %-10s %-10s" "tl" "inter-AS" "intra-AS";
  List.iter
    (fun tl ->
      let inter = ref 0 and intra = ref 0 in
      Array.iter
        (fun (res : Core.Lia.result) ->
          let rep =
            Core.As_location.classify ~graph:tb.Topology.Testbed.graph
              ~routing:red ~loss_rates:res.Core.Lia.loss_rates ~threshold:tl
          in
          inter := !inter + rep.Core.As_location.inter;
          intra := !intra + rep.Core.As_location.intra)
        results;
      let tot = max 1 (!inter + !intra) in
      Exp_common.row "%-8.2f %9.1f%% %9.1f%%" tl
        (Exp_common.pct (float_of_int !inter /. float_of_int tot))
        (Exp_common.pct (float_of_int !intra /. float_of_int tot)))
    [ 0.04; 0.02; 0.01 ];
  Exp_common.note "paper: 53.6-57.8%% inter-AS, more inter- than intra-AS";

  Exp_common.subheader "congestion episode durations (Section 7.2.2, tl = 0.01)";
  let series =
    Array.map (fun res -> Core.Lia.congested res ~threshold:0.01) results
  in
  let runs = Core.Duration.runs series in
  List.iter
    (fun (len, frac) ->
      Exp_common.row "  %3d snapshot%s %5.1f%%" len
        (if len = 1 then ": " else "s:")
        (Exp_common.pct frac))
    (Core.Duration.distribution runs);
  Exp_common.note "paper: 99%% last one snapshot, 1%% two snapshots"
