(* Extension experiment (Section 8): link delay inference from
   second-order statistics of end-to-end delays.

   Not a table or figure of the paper — it is the first extension the
   conclusion proposes. Theorem 1 transfers verbatim (the augmented matrix
   is identical), so we validate the full pipeline: learn delay variances,
   eliminate quiet links, solve for queueing delays, and score both the
   location accuracy and the millisecond error of the recovered queueing
   delays. *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Delay = Netsim.Delay

let runs = 3

let run () =
  Exp_common.header "Extension: delay tomography (Section 8)";
  Exp_common.row "%-6s | %-8s %-8s | %-22s" "run" "DR" "FPR" "queueing err (ms)";
  let all_errs = ref [] in
  Array.iteri
    (fun idx seed ->
      let rng = Nstats.Rng.create seed in
      let tb =
        Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4
          ~max_branching:10 ()
      in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config = Delay.default_config in
      let network = Delay.make_network rng config ~links:(Sparse.cols r) in
      let snaps, y = Delay.run rng config network r ~count:51 in
      let y_learn = Matrix.init 50 (Sparse.rows r) (fun l i -> Matrix.get y l i) in
      let target = snaps.(50) in
      let result = Core.Delay_lia.infer ~r ~y_learn ~y_now:target.Delay.y in
      let inferred = Core.Delay_lia.congested result ~threshold:10. in
      let loc = Core.Metrics.location ~actual:target.Delay.congested ~inferred in
      let errs = ref [] in
      Array.iteri
        (fun k c ->
          if c then
            errs :=
              Float.abs
                (result.Core.Delay_lia.queueing.(k) -. target.Delay.queueing.(k))
              :: !errs)
        target.Delay.congested;
      let a = Array.of_list !errs in
      all_errs := !errs @ !all_errs;
      Exp_common.row "%-6d | %6.1f%% %6.1f%% | med %.2f  max %.2f" idx
        (Exp_common.pct loc.Core.Metrics.dr)
        (Exp_common.pct loc.Core.Metrics.fpr)
        (Nstats.Descriptive.median a)
        (Nstats.Descriptive.maximum a))
    (Exp_common.seeds ~base:1300 runs);
  let a = Array.of_list !all_errs in
  Exp_common.note
    "queueing delays of congested links recovered to %.2f ms median (%.0f-%.0f ms range)"
    (Nstats.Descriptive.median a)
    Delay.default_config.Delay.congested_queue_lo
    Delay.default_config.Delay.congested_queue_hi
