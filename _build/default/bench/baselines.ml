(* Table 1 in action: the loss-tomography method families compared on the
   same campaigns.

   - LIA (this paper): second-order statistics, full loss rates.
   - CLINK [22]: multiple snapshots, but only binary path states and a
     learnt per-link congestion prior; congestion location only.
   - SCFS [14, 24]: one snapshot, uniform prior; congestion location only.
   - MILS [36]: first moments only; loss rates at the granularity of
     minimal identifiable link sequences — we report that granularity
     (average links per identifiable unit; LIA achieves 1.0 for variances
     by Theorem 1, and for the rates of all congested links).
   - MINC [6,7]: the multicast gold standard, simulated on the same trees
     and loss draws; accurate but not deployable without multicast. *)

module Sparse = Linalg.Sparse
module Snapshot = Netsim.Snapshot
module Metrics = Core.Metrics

let runs = 3

let run () =
  Exp_common.header "Table 1 methods on identical campaigns (600-node trees)";
  let acc = Array.make 12 0. in
  let mils_len = ref [] in
  Array.iter
    (fun seed ->
      let rng = Nstats.Rng.create seed in
      let tb = Topology.Tree_gen.generate rng ~nodes:600 ~max_branching:8 () in
      let trial = Exp_common.run_trial ~seed:(seed + 1) ~m:50 tb in
      let r = trial.Exp_common.r in
      let target = trial.Exp_common.target in
      let actual = target.Snapshot.congested in
      (* LIA *)
      let l = Exp_common.location_of_trial trial in
      (* CLINK *)
      let gf =
        Core.Clink.good_fractions trial.Exp_common.y_learn ~r ~threshold:0.002
      in
      let model = Core.Clink.learn ~r ~good_fraction:gf in
      let bad_paths =
        Core.Scfs.classify_paths r ~y_now:target.Snapshot.y ~threshold:0.002
      in
      let c =
        Metrics.location ~actual
          ~inferred:(Core.Clink.infer model r ~bad_paths)
      in
      (* SCFS *)
      let s =
        Metrics.location ~actual ~inferred:(Core.Scfs.infer r ~bad_paths)
      in
      acc.(0) <- acc.(0) +. l.Metrics.dr;
      acc.(1) <- acc.(1) +. l.Metrics.fpr;
      acc.(2) <- acc.(2) +. c.Metrics.dr;
      acc.(3) <- acc.(3) +. c.Metrics.fpr;
      acc.(4) <- acc.(4) +. s.Metrics.dr;
      acc.(5) <- acc.(5) +. s.Metrics.fpr;
      (* MILS granularity *)
      let t = Core.Mils.prepare r in
      mils_len := Core.Mils.average_length (Core.Mils.decompose t) :: !mils_len;
      (* first-moment MLE (packet-train style): location accuracy and the
         mean absolute per-link error against LIA's *)
      let em =
        Core.Em_tomography.estimate r ~delivered:target.Snapshot.received
          ~probes:1000
      in
      let em_loss = Array.map (fun tr -> 1. -. tr) em.Core.Em_tomography.transmission in
      let e =
        Metrics.location ~actual ~inferred:(Array.map (fun l -> l > 0.002) em_loss)
      in
      acc.(6) <- acc.(6) +. e.Metrics.dr;
      acc.(7) <- acc.(7) +. e.Metrics.fpr;
      acc.(8) <-
        acc.(8)
        +. Nstats.Descriptive.mean
             (Metrics.absolute_errors ~actual:target.Snapshot.realized
                ~inferred:em_loss);
      acc.(9) <-
        acc.(9)
        +. Nstats.Descriptive.mean
             (Metrics.absolute_errors ~actual:target.Snapshot.realized
                ~inferred:trial.Exp_common.result.Core.Lia.loss_rates);
      (* MINC on a multicast campaign over the same tree and statuses *)
      let tree = Netsim.Multicast.tree_of_routing trial.Exp_common.routing in
      let mrng = Nstats.Rng.create (seed + 2) in
      let config =
        Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      (* same measurement volume as LIA's campaign: 51 snapshots *)
      let gammas =
        Array.init 51 (fun _ ->
            (Netsim.Multicast.observe mrng config ~congested:actual tree)
              .Netsim.Multicast.gamma)
      in
      let minc = Core.Minc.infer_average tree ~gammas in
      let minc_loss = Array.map (fun t -> 1. -. t) minc.Core.Minc.transmission in
      let mloc =
        Metrics.location ~actual ~inferred:(Array.map (fun l -> l > 0.002) minc_loss)
      in
      acc.(10) <- acc.(10) +. mloc.Metrics.dr;
      acc.(11) <- acc.(11) +. mloc.Metrics.fpr)
    (Exp_common.seeds ~base:1400 runs);
  let n = float_of_int runs in
  Exp_common.row "%-24s %-8s %-8s %-28s" "method" "DR" "FPR" "loss-rate granularity";
  Exp_common.row "%-24s %6.1f%% %6.1f%% %-28s" "LIA (this paper)"
    (Exp_common.pct (acc.(0) /. n))
    (Exp_common.pct (acc.(1) /. n))
    "per link (1.0)";
  Exp_common.row "%-24s %6.1f%% %6.1f%% %-28s" "CLINK [22]"
    (Exp_common.pct (acc.(2) /. n))
    (Exp_common.pct (acc.(3) /. n))
    "congestion status only";
  Exp_common.row "%-24s %6.1f%% %6.1f%% %-28s" "SCFS [14,24]"
    (Exp_common.pct (acc.(4) /. n))
    (Exp_common.pct (acc.(5) /. n))
    "congestion status only";
  Exp_common.row "%-24s %6.1f%% %6.1f%% %-28s" "first-moment MLE [12,29]"
    (Exp_common.pct (acc.(6) /. n))
    (Exp_common.pct (acc.(7) /. n))
    (Printf.sprintf "per link, under-determined");
  Exp_common.note "mean abs per-link error: MLE %.5f vs LIA %.5f" (acc.(8) /. n)
    (acc.(9) /. n);
  Exp_common.row "%-24s %6.1f%% %6.1f%% %-28s" "MINC multicast [6,7]"
    (Exp_common.pct (acc.(10) /. n))
    (Exp_common.pct (acc.(11) /. n))
    "per link (needs multicast)";
  let avg_len = List.fold_left ( +. ) 0. !mils_len /. n in
  Exp_common.row "%-24s %-8s %-8s %.1f links per group" "MILS [36]" "-" "-" avg_len;
  Exp_common.note
    "the paper's Table 1 claim: only second-order methods recover per-link";
  Exp_common.note "loss rates; first-moment methods stop at groups or statuses"
