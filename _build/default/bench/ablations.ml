(* Ablations for the design choices called out in DESIGN.md:

   - simulation fidelity: shared packet-level chains (the S.1 physical
     picture) vs independent per-path chains vs flow-level binomial;
   - loss process: Gilbert bursts vs Bernoulli (the paper reports "the
     differences are insignificant" between the two);
   - phase-2 elimination: the paper's stop-at-first-dependency rule vs the
     greedy keep-all-independent variant. *)

module Snapshot = Netsim.Snapshot
module Metrics = Core.Metrics

let trial ~fidelity ~process seed =
  let rng = Nstats.Rng.create seed in
  let tb = Topology.Tree_gen.generate rng ~nodes:600 ~max_branching:8 () in
  let config_of c = { c with Snapshot.fidelity; process } in
  Exp_common.run_trial ~config_of ~seed:(seed + 1) ~m:50 tb

let summarize name trials =
  let locs = List.map Exp_common.location_of_trial trials in
  let abs = List.concat_map (fun t -> Array.to_list (Exp_common.absolute_errors t)) trials in
  let avg f = List.fold_left (fun a x -> a +. f x) 0. locs /. float_of_int (List.length locs) in
  Exp_common.row "%-28s %6.1f%% %6.1f%% %10.5f" name
    (Exp_common.pct (avg (fun l -> l.Metrics.dr)))
    (Exp_common.pct (avg (fun l -> l.Metrics.fpr)))
    (Nstats.Descriptive.median (Array.of_list abs))

let run () =
  Exp_common.header "Ablations";
  Exp_common.subheader "simulation fidelity and loss process (600-node trees)";
  Exp_common.row "%-28s %-7s %-7s %-10s" "configuration" "DR" "FPR" "abs med";
  let seeds = Array.to_list (Exp_common.seeds ~base:1100 3) in
  summarize "Gilbert, shared chains"
    (List.map (trial ~fidelity:Snapshot.Packet_level ~process:(Snapshot.Gilbert 0.35)) seeds);
  summarize "Gilbert, per-path chains"
    (List.map (trial ~fidelity:Snapshot.Packet_per_path ~process:(Snapshot.Gilbert 0.35)) seeds);
  summarize "Gilbert, flow-level"
    (List.map (trial ~fidelity:Snapshot.Flow_level ~process:(Snapshot.Gilbert 0.35)) seeds);
  summarize "Bernoulli, shared chains"
    (List.map (trial ~fidelity:Snapshot.Packet_level ~process:Snapshot.Bernoulli) seeds);
  (* LLRD2: congested rates span [0.002, 1]; the paper found "very little
     difference between the two models" *)
  let llrd2_trial seed =
    let rng = Nstats.Rng.create seed in
    let tb = Topology.Tree_gen.generate rng ~nodes:600 ~max_branching:8 () in
    let config_of c =
      { c with
        Snapshot.model =
          Lossmodel.Loss_model.custom ~name:"LLRD2-calibrated"
            ~good:(0., 0.0005) ~congested:(0.002, 1.) ~threshold:0.002 }
    in
    Exp_common.run_trial ~config_of ~seed:(seed + 1) ~m:50 tb
  in
  summarize "LLRD2, shared chains" (List.map llrd2_trial seeds);
  Exp_common.note
    "paper: Gilbert vs Bernoulli differences insignificant; shared chains";
  Exp_common.note
    "realize assumption S.1 while per-path chains add sampling noise";

  Exp_common.subheader "phase-2 elimination rule";
  Exp_common.row "%-28s %-7s %-7s %-6s" "rule" "DR" "FPR" "kept";
  let stats rule_name eliminate =
    let drs = ref [] and fprs = ref [] and kepts = ref [] in
    List.iter
      (fun seed ->
        let rng = Nstats.Rng.create seed in
        let tb = Topology.Tree_gen.generate rng ~nodes:600 ~max_branching:8 () in
        let t = Exp_common.run_trial ~seed:(seed + 1) ~m:50 tb in
        (* recompute phase 2 under the chosen rule *)
        let { Core.Rank_reduction.kept; _ } =
          eliminate t.Exp_common.r t.Exp_common.result.Core.Lia.variances
        in
        let r_star = Linalg.Sparse.dense_cols t.Exp_common.r kept in
        let x = Linalg.Qr.solve r_star t.Exp_common.target.Snapshot.y in
        let nc = Linalg.Sparse.cols t.Exp_common.r in
        let loss = Array.make nc 0. in
        Array.iteri (fun k j -> loss.(j) <- 1. -. Float.min 1. (exp x.(k))) kept;
        let inferred = Array.map (fun l -> l > 0.002) loss in
        let loc =
          Metrics.location ~actual:t.Exp_common.target.Snapshot.congested ~inferred
        in
        drs := loc.Metrics.dr :: !drs;
        fprs := loc.Metrics.fpr :: !fprs;
        kepts := float_of_int (Array.length kept) :: !kepts)
      seeds;
    let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
    Exp_common.row "%-28s %6.1f%% %6.1f%% %6.0f" rule_name
      (Exp_common.pct (avg !drs))
      (Exp_common.pct (avg !fprs))
      (avg !kepts)
  in
  stats "paper (largest suffix)" Core.Rank_reduction.eliminate;
  stats "greedy (all independent)" Core.Rank_reduction.eliminate_greedy;
  Exp_common.note "greedy keeps more columns and trades FPR for coverage"
