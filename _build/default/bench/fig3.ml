(* Figure 3: relationship between the mean and the variance of path loss
   rates over a day of PlanetLab measurements.

   Paper: 17 200 PlanetLab paths measured every ~5 minutes for a day (250
   snapshots of 1000 probes); the scatter shows variance increasing with
   mean loss — the monotonicity assumption S.3. We replay this on the
   PlanetLab-like substrate with heterogeneous congestion dynamics and
   report the binned scatter plus the rank agreement between mean and
   variance. *)

module Simulator = Netsim.Simulator
module Snapshot = Netsim.Snapshot

let run () =
  Exp_common.header "Figure 3: mean vs variance of end-to-end loss rates";
  let rng = Nstats.Rng.create 303 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:24 ~ases:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    { (Snapshot.default_config Lossmodel.Loss_model.internet) with
      Snapshot.congestion_prob = 0.1 }
  in
  let snapshots = 250 in
  let run =
    Simulator.run
      ~dynamics:(Simulator.Hetero { stay = 0.3; active = 0.5 })
      rng config r ~count:snapshots
  in
  let mv = Simulator.mean_variance_per_path run in
  Exp_common.note "%d paths, %d snapshots of %d probes (paper: 17200 paths, 250 snapshots)"
    (Array.length mv) snapshots config.Snapshot.probes;
  (* binned scatter: mean-loss bins against average variance, as a table *)
  let bins = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ] in
  Exp_common.row "%-24s %-8s %-14s" "mean loss bin" "paths" "avg variance";
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ a ] -> [ (a, 1.0) ]
    | [] -> []
  in
  List.iter
    (fun (lo, hi) ->
      let inside = Array.to_list mv |> List.filter (fun (m, _) -> m >= lo && m < hi) in
      match inside with
      | [] -> Exp_common.row "[%5.3f, %5.3f)          %-8d %-14s" lo hi 0 "-"
      | l ->
          let avg_var =
            List.fold_left (fun acc (_, v) -> acc +. v) 0. l
            /. float_of_int (List.length l)
          in
          Exp_common.row "[%5.3f, %5.3f)          %-8d %-14.3e" lo hi
            (List.length l) avg_var)
    (pairs bins);
  let means = Array.map fst mv and vars = Array.map snd mv in
  let canvas = Nstats.Asciiplot.create ~width:64 ~height:16 () in
  Nstats.Asciiplot.scatter canvas
    (Array.to_list (Array.map (fun (m, v) -> (m, v)) mv));
  print_string
    (Nstats.Asciiplot.render ~x_label:"mean loss rate" ~y_label:"variance" canvas);
  let corr = Nstats.Descriptive.correlation means vars in
  let rho = Nstats.Descriptive.spearman means vars in
  Exp_common.note
    "correlation(mean, variance) = %.3f, Spearman rank = %.3f (S.3: positive)" corr
    rho;
  Exp_common.note "paper shows the same increasing scatter (no number given)"
