(* Figure 8: accuracy of LIA under different fractions of congested links
   p (a) and probe counts S (b), on the PlanetLab-like topology, m = 50.

   Paper: DR degrades gently as p grows from 5% to 25% (more congested
   links must survive the rank cut); the impact of S is milder, with only
   small degradation down to S = 200. *)

module Snapshot = Netsim.Snapshot

let runs_per_point = 5

let sweep ~label ~configs =
  Exp_common.row "%-10s | %-8s %-8s" label "DR" "FPR";
  List.iter
    (fun (tag, config_of) ->
      let drs = ref [] and fprs = ref [] in
      Array.iter
        (fun seed ->
          let rng = Nstats.Rng.create seed in
          let tb = Topology.Overlay.planetlab_like rng ~hosts:30 () in
          let trial = Exp_common.run_trial ~config_of ~seed:(seed + 3) ~m:50 tb in
          let loc = Exp_common.location_of_trial trial in
          drs := loc.Core.Metrics.dr :: !drs;
          fprs := loc.Core.Metrics.fpr :: !fprs)
        (Exp_common.seeds ~base:(800 + Hashtbl.hash tag mod 1000) runs_per_point);
      let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
      Exp_common.row "%-10s | %6.1f%% %6.1f%%" tag
        (Exp_common.pct (avg !drs))
        (Exp_common.pct (avg !fprs)))
    configs

let run () =
  Exp_common.header "Figure 8: effect of p and S (PlanetLab-like, m = 50)";
  Exp_common.subheader "(a) percentage of congested links p (S = 1000)";
  sweep ~label:"p"
    ~configs:
      (List.map
         (fun p ->
           ( Printf.sprintf "%.0f%%" (100. *. p),
             fun c -> { c with Snapshot.congestion_prob = p } ))
         [ 0.05; 0.10; 0.15; 0.20; 0.25 ]);
  Exp_common.subheader "(b) probes per snapshot S (p = 10%)";
  sweep ~label:"S"
    ~configs:
      (List.map
         (fun s -> (string_of_int s, fun c -> { c with Snapshot.probes = s }))
         [ 50; 200; 400; 600; 800; 1000 ]);
  Exp_common.note
    "paper: DR falls as p grows (congested links start hitting the rank cut);";
  Exp_common.note "the effect of S is visible but less severe"
