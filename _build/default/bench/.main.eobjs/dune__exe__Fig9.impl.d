bench/fig9.ml: Array Core Exp_common Linalg List Lossmodel Netsim Nstats Topology
