bench/main.ml: Ablations Array Baselines Dual Ext_delay Fig3 Fig5 Fig6 Fig8 Fig9 List Printf String Sys Tab2 Tab3 Timing Unix
