bench/fig5.ml: Array Core Exp_common Linalg List Netsim Nstats Topology
