bench/tab2.ml: Array Core Exp_common List Nstats Topology
