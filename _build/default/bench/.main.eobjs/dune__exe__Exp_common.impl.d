bench/exp_common.ml: Array Core Linalg Lossmodel Netsim Nstats Printf String Topology
