bench/fig3.ml: Array Exp_common List Lossmodel Netsim Nstats Topology
