bench/ext_delay.ml: Array Core Exp_common Float Linalg Netsim Nstats Topology
