bench/timing.ml: Analyze Bechamel Benchmark Core Exp_common Hashtbl Instance Linalg List Lossmodel Measure Netsim Nstats Printf Staged Test Time Toolkit Topology Unix
