bench/fig6.ml: Array Exp_common List Nstats Topology
