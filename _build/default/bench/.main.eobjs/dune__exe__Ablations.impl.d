bench/ablations.ml: Array Core Exp_common Float Linalg List Lossmodel Netsim Nstats Topology
