bench/dual.ml: Array Core Exp_common Float Linalg List Nstats Topology
