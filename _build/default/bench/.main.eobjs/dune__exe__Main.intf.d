bench/main.mli:
