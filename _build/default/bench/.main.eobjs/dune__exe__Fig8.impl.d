bench/fig8.ml: Array Core Exp_common Hashtbl List Netsim Nstats Printf Topology
