bench/baselines.ml: Array Core Exp_common Linalg List Lossmodel Netsim Nstats Printf Topology
