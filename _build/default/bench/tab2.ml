(* Table 2 and Figure 7: LIA on six mesh topologies (BRITE Waxman /
   Barabasi-Albert / hierarchical top-down and bottom-up, plus the
   PlanetLab-like and DIMES-like substitutes), LLRD1, p = 10%, m = 50,
   S = 1000.

   Table 2 reports DR/FPR and the max/median/min of the error factors and
   absolute errors; Figure 7 the ratio of congested links to columns kept
   in R* (always below 1: no congested link is ever eliminated).

   Paper reference rows (DR / FPR / EF max / abs max):
     Barabasi-Albert        91.27% / 3.78% / 1.27 / 0.0018
     Waxman                 92.67% / 2.84% / 1.42 / 0.0020
     Hierarchical top-down  87.81% / 6.13% / 1.55 / 0.0026
     Hierarchical bottom-up 90.00% / 3.78% / 1.44 / 0.0014
     PlanetLab              96.40% / 2.71% / 1.16 / 0.0010
     DIMES                  86.75% / 6.05% / 1.56 / 0.0017 *)

module H = Topology.Hierarchical

let runs_per_topology = 5

let topologies =
  [
    ( "Barabasi-Albert",
      fun rng -> Topology.Barabasi_albert.generate rng ~nodes:1000 ~hosts:30 () );
    ("Waxman", fun rng -> Topology.Waxman.generate rng ~nodes:1000 ~hosts:30 ());
    ( "Hierarchical (TD)",
      fun rng ->
        H.generate rng ~flavour:H.Top_down ~ases:25 ~routers_per_as:12 ~hosts:25 );
    ( "Hierarchical (BU)",
      fun rng ->
        H.generate rng ~flavour:H.Bottom_up ~ases:25 ~routers_per_as:12 ~hosts:25 );
    ( "PlanetLab-like",
      fun rng -> Topology.Overlay.planetlab_like rng ~hosts:30 () );
    ("DIMES-like", fun rng -> Topology.Overlay.dimes_like rng ~hosts:30 ()) ]

type stats = {
  name : string;
  dr : float;
  fpr : float;
  ef : Core.Metrics.spread;
  abs : Core.Metrics.spread;
  ratio : float;  (** congested / columns kept in R* *)
}

let collect () =
  List.mapi
    (fun t_idx (name, make) ->
      let drs = ref [] and fprs = ref [] in
      let efs = ref [] and abss = ref [] in
      let ratios = ref [] in
      Array.iter
        (fun seed ->
          let rng = Nstats.Rng.create seed in
          let tb = make rng in
          let trial = Exp_common.run_trial ~seed:(seed + 13) ~m:50 tb in
          let loc = Exp_common.location_of_trial trial in
          drs := loc.Core.Metrics.dr :: !drs;
          fprs := loc.Core.Metrics.fpr :: !fprs;
          efs := Exp_common.congested_error_factors trial @ !efs;
          abss := Exp_common.congested_absolute_errors trial @ !abss;
          let ncong, kept = Exp_common.congested_vs_kept trial in
          ratios := (float_of_int ncong /. float_of_int (max 1 kept)) :: !ratios)
        (Exp_common.seeds ~base:(700 + (t_idx * 97)) runs_per_topology);
      let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
      {
        name;
        dr = avg !drs;
        fpr = avg !fprs;
        ef = Core.Metrics.spread (Array.of_list !efs);
        abs = Core.Metrics.spread (Array.of_list !abss);
        ratio = avg !ratios;
      })
    topologies

let print_table stats =
  Exp_common.header "Table 2: simulations on mesh topologies (LLRD1, p=10%, m=50)";
  Exp_common.row "%-20s %-8s %-8s | %-18s | %-24s" "Topology" "DR" "FPR"
    "error factor" "absolute error";
  Exp_common.row "%-20s %-8s %-8s | %-6s %-6s %-4s | %-8s %-8s %-6s" "" "" ""
    "max" "median" "min" "max" "median" "min";
  List.iter
    (fun s ->
      Exp_common.row
        "%-20s %6.2f%% %6.2f%% | %-6.2f %-6.2f %-4.2f | %-8.4f %-8.4f %-6.4f"
        s.name (Exp_common.pct s.dr) (Exp_common.pct s.fpr) s.ef.Core.Metrics.max
        s.ef.Core.Metrics.median s.ef.Core.Metrics.min s.abs.Core.Metrics.max
        s.abs.Core.Metrics.median s.abs.Core.Metrics.min)
    stats;
  Exp_common.note
    "paper: DR 86-96%%, FPR 2.7-6.1%%, EF max 1.16-1.56 median 1.00, abs max <= 0.0026"

let print_fig7 stats =
  Exp_common.header "Figure 7: congested links / columns kept in R*";
  Exp_common.row "%-20s %-8s" "Topology" "ratio";
  List.iter
    (fun s -> Exp_common.row "%-20s %.2f" s.name s.ratio)
    stats;
  Exp_common.note "paper: always below 1 - no congested link is eliminated"

let run () = print_table (collect ())

let run_fig7 () = print_fig7 (collect ())

let run_both () =
  let stats = collect () in
  print_table stats;
  print_fig7 stats
