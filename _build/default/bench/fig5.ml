(* Figure 5: accuracy of LIA vs SCFS in locating congested links on
   1000-node random trees (branching <= 10, p = 10%, S = 1000), as a
   function of the number of learning snapshots m.

   Paper: LIA's DR climbs from ~0.88 (m=10) towards ~0.97 (m=100) with FPR
   a few percent; SCFS sits near DR ~0.65 / FPR ~0.06 independently of m
   (it only ever uses the current snapshot). *)

module Sparse = Linalg.Sparse
module Metrics = Core.Metrics

let runs_per_point = 10

let run () =
  Exp_common.header
    "Figure 5: locating congested links on 1000-node trees (LIA vs SCFS)";
  Exp_common.row "%-6s | %-8s %-8s | %-9s %-9s" "m" "LIA DR" "LIA FPR" "SCFS DR"
    "SCFS FPR";
  let lia_series = ref [] and scfs_series = ref [] in
  let ms = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  List.iter
    (fun m ->
      let lia_dr = ref [] and lia_fpr = ref [] in
      let scfs_dr = ref [] and scfs_fpr = ref [] in
      Array.iter
        (fun seed ->
          let rng = Nstats.Rng.create seed in
          let tb = Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4 ~max_branching:10 () in
          let trial = Exp_common.run_trial ~seed:(seed + 1) ~m tb in
          let loc = Exp_common.location_of_trial trial in
          lia_dr := loc.Metrics.dr :: !lia_dr;
          lia_fpr := loc.Metrics.fpr :: !lia_fpr;
          (* SCFS on the same target snapshot *)
          let bad_paths =
            Core.Scfs.classify_paths trial.Exp_common.r
              ~y_now:trial.Exp_common.target.Netsim.Snapshot.y ~threshold:0.002
          in
          let verdict = Core.Scfs.infer trial.Exp_common.r ~bad_paths in
          let sloc =
            Metrics.location
              ~actual:trial.Exp_common.target.Netsim.Snapshot.congested
              ~inferred:verdict
          in
          scfs_dr := sloc.Metrics.dr :: !scfs_dr;
          scfs_fpr := sloc.Metrics.fpr :: !scfs_fpr)
        (Exp_common.seeds ~base:(500 + m) runs_per_point);
      let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
      lia_series := (float_of_int m, avg !lia_dr) :: !lia_series;
      scfs_series := (float_of_int m, avg !scfs_dr) :: !scfs_series;
      Exp_common.row "%-6d | %7.1f%% %7.1f%% | %8.1f%% %8.1f%%" m
        (Exp_common.pct (avg !lia_dr))
        (Exp_common.pct (avg !lia_fpr))
        (Exp_common.pct (avg !scfs_dr))
        (Exp_common.pct (avg !scfs_fpr)))
    ms;
  Exp_common.note "detection rate vs m: L = LIA, s = SCFS";
  print_string
    (Nstats.Asciiplot.plot_series ~height:12
       [ ('L', List.rev !lia_series); ('s', List.rev !scfs_series) ]);
  Exp_common.note
    "paper: LIA DR 0.88->0.97 rising with m, FPR a few %%; SCFS flat near DR 0.65"
