(* The duality of Section 4: Theorem 1 is the mirror image of Cao et
   al.'s traffic-matrix identifiability [8, 30]. Same augmented-matrix
   machinery, measurements and unknowns swapped:

     loss tomography:   measure end-to-end paths, infer link variances
     traffic matrices:  measure links, infer OD-flow variances (= means,
                        under Poisson traffic)

   This experiment runs the dual end-to-end: all-pairs Poisson flows on a
   small mesh, means recovered from link-load covariances alone, in a
   regime where average loads are provably insufficient. *)

module Sparse = Linalg.Sparse
module Tm = Core.Traffic_matrix

let run () =
  Exp_common.header "Duality: traffic-matrix estimation from link covariances";
  let rng = Nstats.Rng.create 1700 in
  let tb = Topology.Waxman.generate rng ~nodes:24 ~hosts:10 ~alpha:0.4 ~beta:0.3 () in
  let tm, od = Tm.of_testbed tb in
  let n_flows = Array.length od and n_links = Sparse.rows tm.Tm.routes in
  let rank = Linalg.Qr.matrix_rank (Sparse.to_dense tm.Tm.routes) in
  Exp_common.note "%d OD flows over %d links; first-moment rank %d < %d flows"
    n_flows n_links rank n_flows;
  Exp_common.note "second-moment system identifiable: %b" (Tm.identifiable tm);
  let means =
    Array.init n_flows (fun f -> 20. +. (15. *. float_of_int (f mod 7)))
  in
  List.iter
    (fun epochs ->
      let loads = Tm.simulate rng tm ~means ~count:epochs in
      let est = Tm.estimate_means tm ~loads in
      let rel =
        Array.mapi (fun f m -> Float.abs (est.(f) -. m) /. m) means
      in
      Exp_common.row "epochs %-6d | mean rel err %5.1f%%  p90 %5.1f%%" epochs
        (100. *. Nstats.Descriptive.mean rel)
        (100. *. Nstats.Descriptive.quantile rel 0.9))
    [ 200; 1000; 5000 ];
  Exp_common.note
    "flow means converge from covariances alone, mirroring Phase 1 of LIA"
