(* Section 6.4: running times, as Bechamel micro-benchmarks.

   Paper (Matlab, 2 GHz Pentium 4): solving the first-order system is
   milliseconds, solving (9) ~10x longer, the inference runs in under a
   second once A is known; computing A took up to an hour (they only do it
   once). Our OCaml pipeline is measured per phase below, including the
   method ablation (streaming normal equations vs dense QR). *)

open Bechamel
open Toolkit

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

let make_inputs () =
  let rng = Nstats.Rng.create 4242 in
  let tb = Topology.Tree_gen.generate rng ~nodes:1000 ~min_branching:4 ~max_branching:10 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let run = Netsim.Simulator.run rng config r ~count:51 in
  let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
  let variances = Core.Variance_estimator.estimate ~r ~y:y_learn () in
  (r, y_learn, target, variances)

let tests (r, y_learn, target, variances) =
  let y_now = target.Netsim.Snapshot.y in
  let kept = (Core.Rank_reduction.eliminate r variances).Core.Rank_reduction.kept in
  let r_star = Sparse.dense_cols r kept in
  (* ablation inputs: the same normal-equation system solved two ways *)
  let a = Core.Augmented.build r in
  let gram = Sparse.normal_matrix a in
  let rhs = Sparse.normal_rhs a (Core.Covariance.sigma_star y_learn) in
  Test.make_grouped ~name:"lia"
    [
      Test.make ~name:"build-A" (Staged.stage (fun () -> Core.Augmented.build r));
      Test.make ~name:"variances-streaming"
        (Staged.stage (fun () ->
             Core.Variance_estimator.estimate_streaming ~r ~y:y_learn ()));
      Test.make ~name:"rank-reduction"
        (Staged.stage (fun () -> Core.Rank_reduction.eliminate r variances));
      Test.make ~name:"solve-eq9"
        (Staged.stage (fun () -> Linalg.Qr.solve r_star y_now));
      Test.make ~name:"phase2-full"
        (Staged.stage (fun () ->
             Core.Lia.infer_with_variances ~r ~variances ~y_now));
      Test.make ~name:"normal-solve-cholesky"
        (Staged.stage (fun () ->
             Linalg.Cholesky.solve_vec
               (Linalg.Cholesky.factorize_regularized gram)
               rhs));
      Test.make ~name:"normal-solve-cg"
        (Staged.stage (fun () ->
             Linalg.Conjugate_gradient.solve ~tol:1e-8 gram rhs));
    ]

let run () =
  Exp_common.header "Section 6.4: running times (1000-node tree, m = 50)";
  let inputs = make_inputs () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests inputs) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  Exp_common.row "%-30s %-14s" "phase" "time/run";
  List.iter
    (fun name ->
      let t = Hashtbl.find results name in
      match Analyze.OLS.estimates t with
      | Some [ ns ] ->
          let human =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Exp_common.row "%-30s %-14s" name human
      | _ -> Exp_common.row "%-30s (no estimate)" name)
    names;
  Exp_common.note
    "paper: inference in under a second; A computed once (up to an hour in Matlab)";
  (* scalability sweep: the Section 6.4 claim that the moment system of
     networks with thousands of nodes solves in seconds *)
  Exp_common.subheader "scalability of the variance solve (PlanetLab-like)";
  Exp_common.row "%-8s %-8s %-8s %-12s %-12s" "hosts" "paths" "links"
    "learn (s)" "phase2 (s)";
  List.iter
    (fun hosts ->
      let rng = Nstats.Rng.create (9000 + hosts) in
      let tb = Topology.Overlay.planetlab_like rng ~hosts () in
      let red = Topology.Testbed.routing tb in
      let r = red.Topology.Routing.matrix in
      let config =
        Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated
      in
      let run = Netsim.Simulator.run rng config r ~count:51 in
      let y_learn, target = Netsim.Simulator.split_learning run ~learning:50 in
      let t0 = Unix.gettimeofday () in
      let v = Core.Variance_estimator.estimate_streaming ~r ~y:y_learn () in
      let t_learn = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      ignore
        (Core.Lia.infer_with_variances ~r ~variances:v
           ~y_now:target.Netsim.Snapshot.y);
      let t_phase2 = Unix.gettimeofday () -. t0 in
      Exp_common.row "%-8d %-8d %-8d %-12.2f %-12.2f" hosts (Sparse.rows r)
        (Sparse.cols r) t_learn t_phase2)
    [ 10; 20; 30; 45 ];
  Exp_common.note
    "the 45-host overlay spans ~1400 routers; the whole inference stays in seconds"
