(* Continuous mesh monitoring: streaming LIA vs the single-snapshot SCFS
   and probability-based CLINK baselines, plus anomaly screening.

   A hierarchical ISP-style mesh is watched from vantage hosts through a
   sliding window (Core.Monitor). Every new snapshot is diagnosed three
   ways — LIA (second-order statistics), CLINK (learnt congestion
   probabilities), SCFS (current snapshot only) — and scored against the
   simulator's ground truth; the anomaly detector screens each snapshot
   for paths deviating from their baseline before any solving happens.

   Run with: dune exec examples/mesh_monitoring.exe *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Metrics = Core.Metrics

let () =
  let rng = Nstats.Rng.create 99 in
  let tb =
    Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Top_down
      ~ases:20 ~routers_per_as:12 ~hosts:20
  in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  Printf.printf "monitoring a hierarchical mesh: %d paths, %d links\n"
    (Sparse.rows r) (Sparse.cols r);

  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let window = 40 in
  let stream_len = window + 12 in
  let run = Simulator.run rng config r ~count:stream_len in

  let monitor = Core.Monitor.create ~r ~window in
  for t = 0 to window - 1 do
    Core.Monitor.observe monitor (Matrix.row run.Simulator.y t)
  done;

  (* CLINK's probability model over the same warm-up window *)
  let warmup = Matrix.init window (Sparse.rows r) (fun l i -> Matrix.get run.Simulator.y l i) in
  let clink_model =
    Core.Clink.learn ~r
      ~good_fraction:(Core.Clink.good_fractions warmup ~r ~threshold:0.002)
  in

  Printf.printf "\n%-5s %-6s | %-15s | %-15s | %-15s\n" "snap" "anoms"
    "LIA  DR    FPR" "CLINK DR   FPR" "SCFS DR    FPR";
  Printf.printf "%s\n" (String.make 72 '-');

  let sums = Array.make 6 0. in
  let scored = ref 0 in
  for t = window to stream_len - 1 do
    let snap = run.Simulator.snapshots.(t) in
    let actual = snap.Snapshot.congested in
    (* anomaly screening against the window baseline *)
    let anomaly_model = Core.Monitor.anomaly_model monitor in
    let anomalous =
      Core.Anomaly.anomalous_paths anomaly_model ~y_now:snap.Snapshot.y
    in
    let n_anom = Array.fold_left (fun a b -> if b then a + 1 else a) 0 anomalous in
    (* three diagnoses *)
    let lia = Core.Monitor.infer monitor ~y_now:snap.Snapshot.y in
    let lia_verdict = Core.Lia.congested lia ~threshold:0.002 in
    let bad_paths =
      Core.Scfs.classify_paths r ~y_now:snap.Snapshot.y ~threshold:0.002
    in
    let clink_verdict = Core.Clink.infer clink_model r ~bad_paths in
    let scfs_verdict = Core.Scfs.infer r ~bad_paths in
    let l = Metrics.location ~actual ~inferred:lia_verdict in
    let c = Metrics.location ~actual ~inferred:clink_verdict in
    let s = Metrics.location ~actual ~inferred:scfs_verdict in
    sums.(0) <- sums.(0) +. l.Metrics.dr;
    sums.(1) <- sums.(1) +. l.Metrics.fpr;
    sums.(2) <- sums.(2) +. c.Metrics.dr;
    sums.(3) <- sums.(3) +. c.Metrics.fpr;
    sums.(4) <- sums.(4) +. s.Metrics.dr;
    sums.(5) <- sums.(5) +. s.Metrics.fpr;
    incr scored;
    Printf.printf "%-5d %-6d | %5.1f%% %5.1f%%   | %5.1f%% %5.1f%%   | %5.1f%% %5.1f%%\n"
      t n_anom (100. *. l.Metrics.dr) (100. *. l.Metrics.fpr)
      (100. *. c.Metrics.dr) (100. *. c.Metrics.fpr) (100. *. s.Metrics.dr)
      (100. *. s.Metrics.fpr);
    (* slide the window forward *)
    Core.Monitor.observe monitor snap.Snapshot.y
  done;
  let n = float_of_int !scored in
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "%-12s | %5.1f%% %5.1f%%   | %5.1f%% %5.1f%%   | %5.1f%% %5.1f%%\n"
    "mean" (100. *. sums.(0) /. n) (100. *. sums.(1) /. n)
    (100. *. sums.(2) /. n) (100. *. sums.(3) /. n) (100. *. sums.(4) /. n)
    (100. *. sums.(5) /. n);

  Printf.printf "\nLIA exploits second-order statistics; CLINK only link priors;\n";
  Printf.printf "SCFS only the current snapshot — accuracy degrades in that order.\n"
