(* Auditing a measurement deployment before trusting its inferences.

   Before running LIA in production you want to know: (1) do the measured
   paths satisfy the theorem's assumptions, (2) are the link variances
   actually identifiable from these paths, (3) what does a snapshot sweep
   cost in probes and time under the Section 7.1 rate limits, and (4) at
   the current number of snapshots, is the variance ranking that Phase 2
   cuts on statistically stable? This example runs all four checks.

   Run with: dune exec examples/deployment_audit.exe *)

module Sparse = Linalg.Sparse
module Snapshot = Netsim.Snapshot

let () =
  let rng = Nstats.Rng.create 2718 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:16 ~ases:8 ~routers_per_as:6 () in
  let graph = tb.Topology.Testbed.graph in

  Printf.printf "== 1. measurement assumptions ==\n";
  let paths =
    Topology.Routing.paths_between graph ~beacons:tb.Topology.Testbed.beacons
      ~destinations:tb.Topology.Testbed.destinations
  in
  List.iter
    (fun (label, ok) ->
      Printf.printf "  %-45s %s\n" label (if ok then "ok" else "VIOLATED"))
    (Core.Identifiability.assumptions_report graph paths);
  Printf.printf
    "  (an uncovered link only means some links are invisible to this\n\
    \   deployment; they are excluded by the alias reduction)\n";

  Printf.printf "\n== 2. identifiability of the reduced system ==\n";
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  Printf.printf "  %d paths x %d virtual links\n" (Sparse.rows r) (Sparse.cols r);
  (match Core.Identifiability.check r with
  | Core.Identifiability.Identifiable ->
      Printf.printf "  variances identifiable: Theorem 1 premise holds\n"
  | Core.Identifiability.Dependent deps ->
      Printf.printf "  NOT identifiable; entangled links: %s\n"
        (String.concat ", " (List.map string_of_int deps)));

  Printf.printf "\n== 3. probing cost (Section 7.1 limits) ==\n";
  let schedule = Netsim.Schedule.build rng Netsim.Schedule.default_config red in
  Printf.printf "  %d paths in %d rounds; a full snapshot sweep takes %.0f s\n"
    (Array.length red.Topology.Routing.paths)
    (Array.length schedule.Netsim.Schedule.rounds)
    schedule.Netsim.Schedule.snapshot_seconds;
  let worst =
    List.fold_left (fun acc (_, bw) -> Float.max acc bw) 0.
      schedule.Netsim.Schedule.beacon_bandwidth
  in
  Printf.printf "  peak per-beacon bandwidth %.0f KB/s (cap %.0f KB/s)\n"
    (worst /. 1000.)
    (Netsim.Schedule.default_config.Netsim.Schedule.rate_limit_bytes_per_s /. 1000.);

  Printf.printf "\n== 4. stability of the variance ranking ==\n";
  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1_calibrated in
  let m = 40 in
  let run = Netsim.Simulator.run rng config r ~count:m in
  let n_cong =
    Array.fold_left (fun a c -> if c then a + 1 else a) 0
      run.Netsim.Simulator.snapshots.(0).Snapshot.congested
  in
  let intervals =
    Core.Variance_ci.bootstrap ~replicates:60 rng ~r ~y:run.Netsim.Simulator.y
  in
  Printf.printf "  %d snapshots, %d truly congested links\n" m n_cong;
  Printf.printf "  top-%d variance ranking separated at 90%% confidence: %b\n"
    n_cong
    (Core.Variance_ci.stable_ranking intervals ~top:n_cong);
  (* show the boundary region of the ranking with intervals *)
  let order =
    Linalg.Vector.sort_indices ~descending:true
      (Array.map (fun iv -> iv.Core.Variance_ci.estimate) intervals)
  in
  Printf.printf "  %-6s %-6s %-12s %-12s %-12s\n" "rank" "link" "lo" "estimate" "hi";
  Array.iteri
    (fun rank k ->
      if rank >= max 0 (n_cong - 3) && rank < n_cong + 3 then begin
        let iv = intervals.(k) in
        Printf.printf "  %-6d %-6d %-12.3e %-12.3e %-12.3e%s\n" rank k
          iv.Core.Variance_ci.lo iv.Core.Variance_ci.estimate iv.Core.Variance_ci.hi
          (if rank = n_cong - 1 then "   <- cut should land below here" else "")
      end)
    order
