(* Delay tomography — the paper's first extension (Section 8) end to end.

   "Congested links usually have high delay variations. We first take
   multiple snapshots of the network to learn the delay variances; based
   on the inferred variances we reduce the first order moment equations
   by removing links with small congestion delays and then solve for the
   delays of the remaining congested links."

   Delay measurements are directly linear in link delays, so Theorem 1
   applies verbatim: the same augmented-matrix machinery identifies delay
   variances, and the same rank reduction pins down the queueing delays
   of the misbehaving links.

   Run with: dune exec examples/delay_tomography.exe *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Delay = Netsim.Delay

let () =
  let rng = Nstats.Rng.create 17 in
  let tb = Topology.Tree_gen.generate rng ~nodes:500 ~max_branching:8 () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  Printf.printf "tree with %d paths over %d links\n" (Sparse.rows r) (Sparse.cols r);

  let config = Delay.default_config in
  let network = Delay.make_network rng config ~links:(Sparse.cols r) in
  let m = 50 in
  let snaps, y = Delay.run rng config network r ~count:(m + 1) in
  Printf.printf
    "simulated %d delay snapshots (S = %d probes, %.0f ms jitter per probe)\n"
    (m + 1) config.Delay.probes config.Delay.jitter;

  let y_learn = Matrix.init m (Sparse.rows r) (fun l i -> Matrix.get y l i) in
  let target = snaps.(m) in
  let result = Core.Delay_lia.infer ~r ~y_learn ~y_now:target.Delay.y in

  Printf.printf "\nkept %d of %d columns after the variance cut\n"
    (Array.length result.Core.Delay_lia.kept)
    (Sparse.cols r);
  Printf.printf "%-6s %-14s %-14s %-12s %s\n" "link" "true queue(ms)"
    "inferred (ms)" "variance" "verdict";
  let order =
    Linalg.Vector.sort_indices ~descending:true result.Core.Delay_lia.queueing
  in
  Array.iteri
    (fun rank k ->
      if rank < 12 then
        Printf.printf "%-6d %-14.2f %-14.2f %-12.3g %s\n" k
          target.Delay.queueing.(k)
          result.Core.Delay_lia.queueing.(k)
          result.Core.Delay_lia.variances.(k)
          (if result.Core.Delay_lia.queueing.(k) > 10. then "QUEUEING" else "ok"))
    order;

  let inferred = Core.Delay_lia.congested result ~threshold:10. in
  let loc = Core.Metrics.location ~actual:target.Delay.congested ~inferred in
  Printf.printf "\nheavily-queueing link location: DR %.1f%%  FPR %.1f%%\n"
    (100. *. loc.Core.Metrics.dr) (100. *. loc.Core.Metrics.fpr);

  (* queueing error on detected links *)
  let errs = ref [] in
  Array.iteri
    (fun k c ->
      if c then
        errs :=
          Float.abs (result.Core.Delay_lia.queueing.(k) -. target.Delay.queueing.(k))
          :: !errs)
    target.Delay.congested;
  if !errs <> [] then begin
    let a = Array.of_list !errs in
    Printf.printf "queueing-delay error on congested links: median %.2f ms, max %.2f ms\n"
      (Nstats.Descriptive.median a) (Nstats.Descriptive.maximum a)
  end
