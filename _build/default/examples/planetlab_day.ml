(* A day of measurements on a PlanetLab-like overlay — the Section 7
   experiment in miniature.

   Generates a synthetic research-network overlay, runs a long campaign
   with Markov congestion dynamics (episodes last about one snapshot, as
   the paper measured), learns variances over a sliding window, and
   reports the three analyses of Section 7.2: cross-validated consistency
   (eq. 11), inter- vs intra-AS location of congested links (Table 3),
   and congestion episode durations.

   Run with: dune exec examples/planetlab_day.exe *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator

let () =
  let rng = Nstats.Rng.create 7 in
  let hosts = 24 in
  Printf.printf "generating a PlanetLab-like overlay with %d hosts...\n" hosts;
  let tb = Topology.Overlay.planetlab_like rng ~hosts () in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  Printf.printf "topology: %d paths, %d virtual links\n" (Sparse.rows r)
    (Sparse.cols r);

  (* a "day": 120 snapshots of 1000 probes; congestion persists weakly *)
  let config =
    { (Snapshot.default_config Lossmodel.Loss_model.llrd1) with
      Snapshot.congestion_prob = 0.08 }
  in
  let total = 120 and m = 50 in
  Printf.printf "simulating %d snapshots (S = %d probes each)...\n" total
    config.Snapshot.probes;
  let run =
    Simulator.run
      ~dynamics:(Simulator.Hetero { stay = 0.3; active = 0.5 })
      rng config r ~count:total
  in

  (* Learn variances once over the first m snapshots, then diagnose the
     remaining snapshots with them. *)
  let y_learn = Matrix.init m (Sparse.rows r) (fun l i -> Matrix.get run.Simulator.y l i) in
  let variances = Core.Variance_estimator.estimate ~r ~y:y_learn () in

  Printf.printf "\n-- cross-validation (eq. 11, epsilon = 0.005) --\n";
  let target = run.Simulator.snapshots.(m) in
  let report =
    Core.Validation.cross_validate rng ~r ~y_learn ~y_now:target.Snapshot.y
      ~epsilon:0.005
  in
  Printf.printf "consistent validation paths: %d / %d (%.1f%%)\n"
    report.Core.Validation.consistent report.Core.Validation.total
    (100. *. report.Core.Validation.fraction);

  (* Diagnose each post-learning snapshot. *)
  let verdicts =
    Array.init (total - m) (fun t ->
        let snap = run.Simulator.snapshots.(m + t) in
        let res = Core.Lia.infer_with_variances ~r ~variances ~y_now:snap.Snapshot.y in
        res)
  in

  Printf.printf "\n-- congested link location (Table 3 analogue) --\n";
  Printf.printf "%-8s %-10s %-10s\n" "tl" "inter-AS" "intra-AS";
  List.iter
    (fun tl ->
      let inter = ref 0 and intra = ref 0 in
      Array.iter
        (fun (res : Core.Lia.result) ->
          let rep =
            Core.As_location.classify ~graph:tb.Topology.Testbed.graph ~routing:red
              ~loss_rates:res.Core.Lia.loss_rates ~threshold:tl
          in
          inter := !inter + rep.Core.As_location.inter;
          intra := !intra + rep.Core.As_location.intra)
        verdicts;
      let tot = max 1 (!inter + !intra) in
      Printf.printf "%-8.3f %-10s %-10s\n" tl
        (Printf.sprintf "%.1f%%" (100. *. float_of_int !inter /. float_of_int tot))
        (Printf.sprintf "%.1f%%" (100. *. float_of_int !intra /. float_of_int tot)))
    [ 0.04; 0.02; 0.01 ];

  Printf.printf "\n-- congestion episode durations (Section 7.2.2) --\n";
  let series =
    Array.map (fun res -> Core.Lia.congested res ~threshold:0.01) verdicts
  in
  let runs = Core.Duration.runs series in
  Printf.printf "%d episodes observed over %d snapshots\n" (List.length runs)
    (Array.length series);
  List.iter
    (fun (len, frac) ->
      Printf.printf "  %3d snapshot%s: %5.1f%%\n" len
        (if len = 1 then " " else "s")
        (100. *. frac))
    (Core.Duration.distribution runs);

  (* sanity: compare inferred vs actual statuses averaged over the day *)
  let drs = ref [] and fprs = ref [] in
  Array.iteri
    (fun t res ->
      let snap = run.Simulator.snapshots.(m + t) in
      let loc =
        Core.Metrics.location ~actual:snap.Snapshot.congested
          ~inferred:(Core.Lia.congested res ~threshold:0.01)
      in
      drs := loc.Core.Metrics.dr :: !drs;
      fprs := loc.Core.Metrics.fpr :: !fprs)
    verdicts;
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Printf.printf
    "\nday-average location accuracy at tl = 0.01 (the Section 7 threshold):\n\
     DR %.1f%%  FPR %.1f%%\n"
    (100. *. avg !drs) (100. *. avg !fprs)
