examples/quickstart.mli:
