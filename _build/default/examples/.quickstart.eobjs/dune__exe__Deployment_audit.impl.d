examples/deployment_audit.ml: Array Core Float Linalg List Lossmodel Netsim Nstats Printf String Topology
