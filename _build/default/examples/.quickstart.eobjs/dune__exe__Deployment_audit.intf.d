examples/deployment_audit.mli:
