examples/quickstart.ml: Array Core Format Linalg Lossmodel Netsim Nstats Printf Topology
