examples/delay_tomography.ml: Array Core Float Linalg Netsim Nstats Printf Topology
