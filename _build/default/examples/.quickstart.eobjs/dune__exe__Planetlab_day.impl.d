examples/planetlab_day.ml: Array Core Linalg List Lossmodel Netsim Nstats Printf Topology
