examples/mesh_monitoring.ml: Array Core Linalg Lossmodel Netsim Nstats Printf String Topology
