examples/mesh_monitoring.mli:
