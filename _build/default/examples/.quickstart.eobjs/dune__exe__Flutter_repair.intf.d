examples/flutter_repair.mli:
