examples/planetlab_day.mli:
