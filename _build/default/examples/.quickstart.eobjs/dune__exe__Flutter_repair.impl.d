examples/flutter_repair.ml: Array Core Linalg List Lossmodel Netsim Nstats Option Printf Topology
