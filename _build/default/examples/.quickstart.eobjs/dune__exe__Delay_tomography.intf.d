examples/delay_tomography.mli:
