(* Dirty inputs: route fluttering and traceroute measurement errors.

   The identifiability theorem needs assumption T.2 (no path meets,
   diverges, and meets another path again) and a routing matrix, which in
   practice comes from error-prone traceroute measurements. This example
   (1) injects fluttering paths into a mesh and shows the detector
   removing them, exactly as the paper dropped 52 of 48151 PlanetLab
   paths, and (2) distorts the measured topology with anonymous routers
   and unresolved interface aliases, then shows that LIA inference on the
   distorted topology still cross-validates well (eq. 11) — the paper's
   Section 7 robustness claim.

   Run with: dune exec examples/flutter_repair.exe *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Routing = Topology.Routing
module Flutter = Topology.Flutter
module Path = Topology.Path
module Snapshot = Netsim.Snapshot

let () =
  let rng = Nstats.Rng.create 123 in
  let tb = Topology.Overlay.planetlab_like rng ~hosts:18 () in
  let g = tb.Topology.Testbed.graph in
  let paths =
    Routing.paths_between g ~beacons:tb.Topology.Testbed.beacons
      ~destinations:tb.Topology.Testbed.destinations
  in
  Printf.printf "clean shortest-path set: %d paths, fluttering pairs: %d\n"
    (Array.length paths)
    (List.length (Flutter.check paths));

  (* Inject flutters: for some paths, reroute one middle hop through an
     alternative neighbour when the mesh offers one (load-balancer style). *)
  let reroute (p : Path.t) =
    let n = Array.length p.Path.nodes in
    if n < 4 then None
    else begin
      let i = 1 + Nstats.Rng.int rng (n - 3) in
      let u = p.Path.nodes.(i) and w = p.Path.nodes.(i + 1) in
      let detour =
        List.find_opt
          (fun (e : Topology.Graph.edge) ->
            e.Topology.Graph.dst <> w
            && Topology.Graph.find_edge g ~src:e.Topology.Graph.dst ~dst:w <> None
            && not (Array.exists (fun x -> x = e.Topology.Graph.dst) p.Path.nodes))
          (Topology.Graph.out_edges g u)
      in
      Option.map
        (fun (e : Topology.Graph.edge) ->
          let nodes =
            Array.concat
              [ Array.sub p.Path.nodes 0 (i + 1); [| e.Topology.Graph.dst |];
                Array.sub p.Path.nodes (i + 1) (n - i - 1) ]
          in
          Path.make ~graph:g ~nodes)
        detour
    end
  in
  let flutters =
    Array.to_list paths
    |> List.filteri (fun i _ -> i mod 17 = 0)
    |> List.filter_map reroute
  in
  let dirty = Array.append paths (Array.of_list flutters) in
  let offending = Flutter.check dirty in
  Printf.printf "after injecting %d load-balanced variants: %d offending pairs\n"
    (List.length flutters) (List.length offending);
  let kept, removed = Flutter.remove_fluttering dirty in
  Printf.printf "flutter removal kept %d paths, dropped %d (paper: 52/48151)\n"
    (Array.length kept) (Array.length removed);
  assert (Flutter.check kept = []);

  (* Part 2: measurement errors. Probes run on the TRUE topology, but the
     inference only sees the traceroute-measured one. *)
  Printf.printf "\n-- traceroute distortion --\n";
  let measured = Topology.Traceroute.measure rng g kept in
  Printf.printf "true nodes: %d, measured nodes: %d (anonymous/alias splits)\n"
    (Topology.Graph.node_count g)
    (Topology.Graph.node_count measured.Topology.Traceroute.graph);
  let red_true = Routing.reduce g kept in
  let red_meas =
    Routing.reduce measured.Topology.Traceroute.graph measured.Topology.Traceroute.paths
  in
  let r_true = red_true.Routing.matrix and r_meas = red_meas.Routing.matrix in
  Printf.printf "true links: %d, measured links: %d\n" (Sparse.cols r_true)
    (Sparse.cols r_meas);

  let config = Snapshot.default_config Lossmodel.Loss_model.llrd1 in
  let m = 50 in
  let run = Netsim.Simulator.run rng config r_true ~count:(m + 1) in
  let y_learn = Matrix.init m (Sparse.rows r_true) (fun l i ->
      Matrix.get run.Netsim.Simulator.y l i) in
  let target = run.Netsim.Simulator.snapshots.(m) in

  (* inference against the measured topology, validation per eq. (11) *)
  let report =
    Core.Validation.cross_validate rng ~r:r_meas ~y_learn
      ~y_now:target.Snapshot.y ~epsilon:0.005
  in
  Printf.printf
    "cross-validation on the DISTORTED topology: %d/%d consistent (%.1f%%)\n"
    report.Core.Validation.consistent report.Core.Validation.total
    (100. *. report.Core.Validation.fraction);
  let clean =
    Core.Validation.cross_validate rng ~r:r_true ~y_learn ~y_now:target.Snapshot.y
      ~epsilon:0.005
  in
  Printf.printf "cross-validation on the TRUE topology:      %d/%d consistent (%.1f%%)\n"
    clean.Core.Validation.consistent clean.Core.Validation.total
    (100. *. clean.Core.Validation.fraction);
  Printf.printf
    "\nLIA stays usable despite topology measurement errors (Section 7.1).\n"
