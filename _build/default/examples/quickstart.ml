(* Quickstart: the paper's running example, end to end.

   Builds the Figure 1 tree (one beacon, three destinations), shows why
   average loss rates are NOT identifiable from end-to-end means (the
   paper's motivating Figure 1), shows that the augmented matrix of
   second moments IS full rank (Theorem 1), then simulates a measurement
   campaign and runs the LIA algorithm.

   Run with: dune exec examples/quickstart.exe *)

module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Graph = Topology.Graph

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "The Figure 1 network";
  (* beacon 0 -> router 1 -> destination 2 (D1)
                router 1 -> router 3 -> destinations 4 (D2), 5 (D3) *)
  let nodes =
    Array.init 6 (fun i ->
        { Graph.id = i;
          kind = (if i = 0 || i = 2 || i = 4 || i = 5 then Graph.Host else Graph.Router);
          as_id = 0 })
  in
  let graph =
    Graph.create ~nodes ~edges:[| (0, 1); (1, 2); (1, 3); (3, 4); (3, 5) |]
  in
  let testbed =
    { Topology.Testbed.graph; beacons = [| 0 |]; destinations = [| 2; 4; 5 |] }
  in
  let red = Topology.Testbed.routing testbed in
  let r = red.Topology.Routing.matrix in
  Printf.printf "%d paths x %d links, routing matrix:\n" (Sparse.rows r)
    (Sparse.cols r);
  Format.printf "%a@." Matrix.pp (Sparse.to_dense r);

  section "First moments are not identifiable";
  (* The paper's two distinct link transmission-rate assignments that give
     identical end-to-end rates. *)
  let assignment_a = [| 0.9; 0.8; 0.9; 0.8; 0.8 |] in
  let assignment_b = [| 0.8; 0.9; 1.0; 0.81; 0.81 |] in
  let path_rates trans =
    Array.init (Sparse.rows r) (fun i ->
        Array.fold_left (fun acc j -> acc *. trans.(j)) 1. (Sparse.row r i))
  in
  let pa = path_rates assignment_a and pb = path_rates assignment_b in
  Printf.printf "assignment A -> path rates: %.3f %.3f %.3f\n" pa.(0) pa.(1) pa.(2);
  Printf.printf "assignment B -> path rates: %.3f %.3f %.3f\n" pb.(0) pb.(1) pb.(2);
  Printf.printf "rank(R) = %d < %d links: means alone cannot tell A from B\n"
    (Linalg.Qr.matrix_rank (Sparse.to_dense r))
    (Sparse.cols r);

  section "Second moments are identifiable (Theorem 1)";
  let a = Core.Augmented.build r in
  Printf.printf "augmented matrix A: %d rows x %d cols, rank %d (full)\n"
    (Sparse.rows a) (Sparse.cols a)
    (Linalg.Qr.matrix_rank (Sparse.to_dense a));

  section "Simulate a campaign and run LIA";
  let rng = Nstats.Rng.create 2024 in
  let config = Netsim.Snapshot.default_config Lossmodel.Loss_model.llrd1 in
  (* force one congested link so the small example is interesting *)
  let congested = [| false; false; true; false; false |] in
  let snaps =
    Array.init 51 (fun _ -> Netsim.Snapshot.generate rng config ~congested r)
  in
  let y_learn =
    Matrix.init 50 (Sparse.rows r) (fun l i -> snaps.(l).Netsim.Snapshot.y.(i))
  in
  let target = snaps.(50) in
  let result = Core.Lia.infer ~r ~y_learn ~y_now:target.Netsim.Snapshot.y () in
  Printf.printf "%-6s %-12s %-12s %-12s %s\n" "link" "variance" "true loss"
    "inferred" "verdict";
  Array.iteri
    (fun k v ->
      Printf.printf "%-6d %-12.3e %-12.4f %-12.4f %s\n" k v
        target.Netsim.Snapshot.realized.(k)
        result.Core.Lia.loss_rates.(k)
        (if result.Core.Lia.loss_rates.(k) > 0.002 then "CONGESTED" else "ok"))
    result.Core.Lia.variances;
  let loc =
    Core.Metrics.location ~actual:congested
      ~inferred:(Core.Lia.congested result ~threshold:0.002)
  in
  Format.printf "location accuracy: %a@." Core.Metrics.pp_location loc
