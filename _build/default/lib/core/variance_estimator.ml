module Sparse = Linalg.Sparse
module Qr = Linalg.Qr

type method_ = Normal_equations | Dense_qr

type options = { method_ : method_; drop_negative : bool; clamp : bool }

let default_options =
  { method_ = Normal_equations; drop_negative = true; clamp = true }

let solve ?(options = default_options) ~a ~sigma_star () =
  if Array.length sigma_star <> Sparse.rows a then
    invalid_arg "Variance_estimator.solve: rhs length mismatch";
  let a, rhs =
    if options.drop_negative then begin
      let keep = ref [] in
      Array.iteri (fun k s -> if s >= 0. then keep := k :: !keep) sigma_star;
      let idx = Array.of_list (List.rev !keep) in
      (Sparse.select_rows a idx, Array.map (fun k -> sigma_star.(k)) idx)
    end
    else (a, sigma_star)
  in
  let v =
    match options.method_ with
    | Normal_equations -> Sparse.least_squares a rhs
    | Dense_qr -> Qr.solve (Sparse.to_dense a) rhs
  in
  if options.clamp then Array.map (fun x -> Float.max 0. x) v else v

let estimate_streaming ?(drop_negative = true) ?(clamp = true) ~r ~y () =
  let np = Sparse.rows r and nc = Sparse.cols r in
  let m = Linalg.Matrix.rows y in
  if Linalg.Matrix.cols y <> np then
    invalid_arg "Variance_estimator.estimate_streaming: width mismatch";
  if m < 2 then
    invalid_arg "Variance_estimator.estimate_streaming: need at least 2 snapshots";
  (* centered measurement columns, one array per path, for cheap pair
     covariances *)
  let centered =
    Array.init np (fun i ->
        let col = Array.init m (fun l -> Linalg.Matrix.get y l i) in
        let mu = Array.fold_left ( +. ) 0. col /. float_of_int m in
        Array.map (fun x -> x -. mu) col)
  in
  let cov i j =
    let ci = centered.(i) and cj = centered.(j) in
    let acc = ref 0. in
    for l = 0 to m - 1 do
      acc := !acc +. (ci.(l) *. cj.(l))
    done;
    !acc /. float_of_int (m - 1)
  in
  (* accumulate G = AᵀA and b = AᵀΣ̂* over non-empty augmented rows *)
  let g = Array.init nc (fun _ -> Array.make nc 0.) in
  let b = Array.make nc 0. in
  let add_row row s =
    let len = Array.length row in
    for a = 0 to len - 1 do
      let ja = row.(a) in
      b.(ja) <- b.(ja) +. s;
      let gja = g.(ja) in
      for c = 0 to len - 1 do
        gja.(row.(c)) <- gja.(row.(c)) +. 1.
      done
    done
  in
  for i = 0 to np - 1 do
    let ri = Sparse.row r i in
    for j = i to np - 1 do
      let row = if i = j then ri else Sparse.row_product ri (Sparse.row r j) in
      if Array.length row > 0 then begin
        let s = cov i j in
        if s >= 0. || not drop_negative then add_row row s
      end
    done
  done;
  let gm = Linalg.Matrix.init nc nc (fun i j -> g.(i).(j)) in
  let f = Linalg.Cholesky.factorize_regularized gm in
  let v = Linalg.Cholesky.solve_vec f b in
  if clamp then Array.map (fun x -> Float.max 0. x) v else v

let estimate ?(options = default_options) ~r ~y () =
  match options.method_ with
  | Normal_equations ->
      estimate_streaming ~drop_negative:options.drop_negative
        ~clamp:options.clamp ~r ~y ()
  | Dense_qr ->
      let a = Augmented.build r in
      let sigma_star = Covariance.sigma_star y in
      solve ~options ~a ~sigma_star ()
