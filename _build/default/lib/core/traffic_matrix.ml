module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng

type t = { routes : Sparse.t }

let make ~routes = { routes }

let of_testbed (tb : Topology.Testbed.t) =
  let paths =
    Topology.Routing.paths_between tb.Topology.Testbed.graph
      ~beacons:tb.Topology.Testbed.beacons
      ~destinations:tb.Topology.Testbed.destinations
  in
  if Array.length paths = 0 then invalid_arg "Traffic_matrix.of_testbed: no flows";
  (* flows are columns; links (rows) are the edges used by at least one
     flow, renumbered densely *)
  let ne = Topology.Graph.edge_count tb.Topology.Testbed.graph in
  let used = Array.make ne false in
  Array.iter
    (fun (p : Topology.Path.t) ->
      Array.iter (fun e -> used.(e) <- true) p.Topology.Path.edges)
    paths;
  let link_index = Array.make ne (-1) in
  let n_links = ref 0 in
  for e = 0 to ne - 1 do
    if used.(e) then begin
      link_index.(e) <- !n_links;
      incr n_links
    end
  done;
  (* row per link: which flow columns cross it *)
  let per_link = Array.make !n_links [] in
  Array.iteri
    (fun f (p : Topology.Path.t) ->
      Array.iter
        (fun e ->
          let l = link_index.(e) in
          per_link.(l) <- f :: per_link.(l))
        p.Topology.Path.edges)
    paths;
  let rows =
    Array.map
      (fun flows -> Array.of_list (List.sort_uniq compare flows))
      per_link
  in
  let routes = Sparse.create ~cols:(Array.length paths) rows in
  let od =
    Array.map
      (fun (p : Topology.Path.t) -> (p.Topology.Path.src, p.Topology.Path.dst))
      paths
  in
  (make ~routes, od)

let simulate rng t ~means ~count =
  let n_flows = Sparse.cols t.routes and n_links = Sparse.rows t.routes in
  if Array.length means <> n_flows then
    invalid_arg "Traffic_matrix.simulate: means length mismatch";
  if count <= 0 then invalid_arg "Traffic_matrix.simulate: count <= 0";
  Array.iter
    (fun m -> if m < 0. then invalid_arg "Traffic_matrix.simulate: negative mean")
    means;
  Matrix.init count n_links (fun _ _ -> 0.)
  |> fun loads ->
  for epoch = 0 to count - 1 do
    let volumes = Array.map (fun m -> float_of_int (Rng.poisson rng m)) means in
    for l = 0 to n_links - 1 do
      let total =
        Array.fold_left (fun acc f -> acc +. volumes.(f)) 0. (Sparse.row t.routes l)
      in
      Matrix.set loads epoch l total
    done
  done;
  loads

let estimate_means t ~loads =
  (* the dual reuse: links play the role of paths, flows the role of
     links, and flow variances (= Poisson means) come out of the same
     streaming second-moment solver *)
  Variance_estimator.estimate_streaming ~r:t.routes ~y:loads ()

let identifiable t = Identifiability.is_identifiable t.routes
