(** The CLINK baseline (Nguyen & Thiran, INFOCOM 2007 — reference [22] of
    the paper): Boolean congested-link location using link congestion
    {e probabilities} learnt from multiple snapshots.

    CLINK sits between SCFS (one snapshot, uniform prior) and LIA (second
    moments, full loss rates) in Table 1: it uses multiple snapshots like
    LIA but only the binary good/bad state of each path, and outputs
    congestion verdicts rather than loss rates.

    Phase 1 learns per-link congestion probabilities from the fraction of
    snapshots in which each path was good: with [q_k = -log P(link k
    good)], the path observations give the linear system
    [R q = -log ĝ], solved in the least-squares sense. Phase 2 explains
    the bad paths of the current snapshot by a minimum-weight set of
    candidate links, weighting each link by [-log p_k] so that habitually
    congested links are cheap to blame (greedy weighted set cover). *)

type model = { congestion_prob : float array  (** learnt [p_k] per link *) }

val learn : r:Linalg.Sparse.t -> good_fraction:float array -> model
(** [learn ~r ~good_fraction] where [good_fraction.(i)] is the fraction of
    snapshots in which path [i] was good. Fractions are clamped away from
    0 and 1 before taking logs; probabilities are clamped to
    [1e-6, 1 - 1e-6]. Raises [Invalid_argument] on a length mismatch. *)

val good_fractions :
  Linalg.Matrix.t -> r:Linalg.Sparse.t -> threshold:float -> float array
(** Binarizes a snapshot matrix of log path transmission rates: path [i]
    is good in a snapshot when its measured transmission exceeds
    [(1 - threshold) ^ length] (same classification as {!Scfs}). *)

val infer : model -> Linalg.Sparse.t -> bad_paths:bool array -> bool array
(** Congestion verdicts for the current snapshot: links on good paths are
    exonerated; bad paths are covered by the cheapest candidate links
    under the learnt prior. *)
