module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type result = {
  variances : float array;
  queueing : float array;
  kept : int array;
  removed : int array;
}

let baselines y_learn =
  let m = Matrix.rows y_learn and np = Matrix.cols y_learn in
  if m = 0 then invalid_arg "Delay_lia.baselines: no snapshots";
  Array.init np (fun i ->
      let best = ref (Matrix.get y_learn 0 i) in
      for l = 1 to m - 1 do
        best := Float.min !best (Matrix.get y_learn l i)
      done;
      !best)

let infer ~r ~y_learn ~y_now =
  let np = Sparse.rows r and nc = Sparse.cols r in
  if Matrix.cols y_learn <> np then
    invalid_arg "Delay_lia: learning matrix width mismatch";
  if Array.length y_now <> np then invalid_arg "Delay_lia: measurement length mismatch";
  (* Phase 1: delay variances, same second-moment system as losses *)
  let variances = Variance_estimator.estimate_streaming ~r ~y:y_learn () in
  (* Phase 2 on the queueing excess over per-path baselines *)
  let base = baselines y_learn in
  let excess = Array.mapi (fun i y -> Float.max 0. (y -. base.(i))) y_now in
  let { Rank_reduction.kept; removed } = Rank_reduction.eliminate r variances in
  let r_star = Sparse.dense_cols r kept in
  let q_star = Qr.solve r_star excess in
  let queueing = Array.make nc 0. in
  Array.iteri (fun k j -> queueing.(j) <- Float.max 0. q_star.(k)) kept;
  { variances; queueing; kept; removed }

let congested result ~threshold =
  Array.map (fun q -> q > threshold) result.queueing
