(** Smallest Consistent Failure Set — the single-snapshot baseline
    (Duffield 2006; Padmanabhan et al. 2003) that Figure 5 compares LIA
    against.

    Inputs are binary: each path is good or bad in the current snapshot.
    A consistent failure set must contain at least one link of every bad
    path and no link of any good path; SCFS looks for a smallest one,
    which encodes the priors that links fail independently with equal
    probability and that failures are rare. On trees the greedy
    construction below returns exactly Duffield's SCFS (the highest
    all-bad-subtree links); on meshes it is the standard greedy set-cover
    approximation. *)

val infer : Linalg.Sparse.t -> bad_paths:bool array -> bool array
(** [infer r ~bad_paths]: congestion verdict per link (column). Links on
    any good path are never flagged. Raises [Invalid_argument] on a
    length mismatch. *)

val classify_paths :
  Linalg.Sparse.t -> y_now:Linalg.Vector.t -> threshold:float -> bool array
(** Binarize a snapshot measurement: path [i] is bad when its measured
    transmission rate is below [(1 - threshold) ^ length], i.e. worse
    than a path of all-good links could plausibly be. *)
