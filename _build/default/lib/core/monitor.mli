(** Streaming LIA: a sliding window of snapshots with on-demand inference.

    Deployments collect snapshots continuously; this wrapper keeps the
    last [window] measurements, re-learns variances when asked, and runs
    Phase 2 against any fresh snapshot — the operational mode of the
    PlanetLab experiment (learn on the previous [m] snapshots, diagnose
    the next). Learnt variances are cached and invalidated whenever the
    window content changes. *)

type t

val create : r:Linalg.Sparse.t -> window:int -> t
(** Raises [Invalid_argument] when [window < 2]. *)

val observe : t -> Linalg.Vector.t -> unit
(** Appends a snapshot measurement (log path transmission rates), evicting
    the oldest when the window is full. Raises [Invalid_argument] on a
    length mismatch. *)

val size : t -> int
(** Snapshots currently held. *)

val ready : t -> bool
(** True once the window is full. *)

val window_matrix : t -> Linalg.Matrix.t
(** The current window as a snapshot matrix (oldest row first). *)

val variances : t -> Linalg.Vector.t
(** Learnt link variances over the current window (cached). Raises
    [Failure] when fewer than two snapshots are held. *)

val infer : t -> y_now:Linalg.Vector.t -> Lia.result
(** Phase 2 on [y_now] with the cached variances. *)

val anomaly_model : t -> Anomaly.model
(** Per-path baseline over the current window. *)
