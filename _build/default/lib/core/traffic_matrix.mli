(** The dual problem: traffic-matrix estimation from link loads (Vardi
    1996; Cao et al. 2000 — references [30, 8] of the paper).

    Section 4 presents Theorem 1 as the dual of Cao et al.'s result: there
    the {e measurements} are per-link byte counts and the {e unknowns} are
    origin–destination flows, and under Poisson traffic the flow
    variances equal their means, so the second-moment system
    [Σ* = A λ] — with [A] the augmented matrix of the link-by-flow
    routing matrix — identifies the traffic matrix. This module
    implements that dual with the very same machinery (the augmented
    system and the streaming moment solver are shared), plus a Poisson
    traffic simulator to exercise it. *)

type t = {
  routes : Linalg.Sparse.t;
      (** link-by-flow incidence: row = link, column = OD flow *)
}

val make : routes:Linalg.Sparse.t -> t

val of_testbed : Topology.Testbed.t -> t * (int * int) array
(** Builds the link-by-flow matrix of all beacon→destination flows routed
    on shortest paths; returns the OD pair of each flow column. Links
    never used by any flow are dropped. *)

val simulate :
  Nstats.Rng.t -> t -> means:Linalg.Vector.t -> count:int -> Linalg.Matrix.t
(** [count] epochs of independent Poisson flow volumes, aggregated into
    per-link loads: the [count × n_links] observation matrix. *)

val estimate_means :
  t -> loads:Linalg.Matrix.t -> Linalg.Vector.t
(** The Vardi estimator: flow variances from link-load covariances (the
    dual of eq. 8), which under Poisson traffic are the flow means.
    Estimates are clamped at 0. *)

val identifiable : t -> bool
(** Whether the flow variances are identifiable from these links — the
    dual of the Theorem 1 check. *)
