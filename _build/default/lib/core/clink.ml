module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

type model = { congestion_prob : float array }

let clamp lo hi x = Float.max lo (Float.min hi x)

let learn ~r ~good_fraction =
  let np = Sparse.rows r and nc = Sparse.cols r in
  if Array.length good_fraction <> np then
    invalid_arg "Clink.learn: good fraction length mismatch";
  (* R q = -log g, q_k = -log(1 - p_k) >= 0 *)
  let rhs =
    Array.map (fun g -> -.log (clamp 1e-6 (1. -. 1e-6) g)) good_fraction
  in
  let q = Sparse.least_squares r rhs in
  let p =
    Array.init nc (fun k ->
        let qk = Float.max 0. q.(k) in
        clamp 1e-6 (1. -. 1e-6) (1. -. exp (-.qk)))
  in
  { congestion_prob = p }

let good_fractions y ~r ~threshold =
  let m = Matrix.rows y and np = Sparse.rows r in
  if Matrix.cols y <> np then invalid_arg "Clink.good_fractions: width mismatch";
  if m = 0 then invalid_arg "Clink.good_fractions: no snapshots";
  Array.init np (fun i ->
      let len = Array.length (Sparse.row r i) in
      let best_case = float_of_int len *. log (1. -. threshold) in
      let good = ref 0 in
      for l = 0 to m - 1 do
        if Matrix.get y l i >= best_case then incr good
      done;
      float_of_int !good /. float_of_int m)

let infer model r ~bad_paths =
  let np = Sparse.rows r and nc = Sparse.cols r in
  if Array.length bad_paths <> np then invalid_arg "Clink.infer: length mismatch";
  if Array.length model.congestion_prob <> nc then
    invalid_arg "Clink.infer: model size mismatch";
  let on_good = Array.make nc false in
  let covered = Array.make nc false in
  for i = 0 to np - 1 do
    Array.iter
      (fun j ->
        covered.(j) <- true;
        if not bad_paths.(i) then on_good.(j) <- true)
      (Sparse.row r i)
  done;
  let candidate = Array.init nc (fun j -> covered.(j) && not on_good.(j)) in
  let weight j = -.log model.congestion_prob.(j) in
  let explains = Array.make nc [] in
  let still = Hashtbl.create 64 in
  for i = 0 to np - 1 do
    if bad_paths.(i) then begin
      Hashtbl.replace still i ();
      Array.iter
        (fun j -> if candidate.(j) then explains.(j) <- i :: explains.(j))
        (Sparse.row r i)
    end
  done;
  let chosen = Array.make nc false in
  let remaining = ref (Hashtbl.length still) in
  while !remaining > 0 do
    (* greedy weighted cover: maximize explained-per-weight *)
    let best = ref (-1) and best_score = ref 0. in
    for j = 0 to nc - 1 do
      if candidate.(j) && not chosen.(j) then begin
        let gain = List.length (List.filter (Hashtbl.mem still) explains.(j)) in
        if gain > 0 then begin
          let score = float_of_int gain /. Float.max 1e-9 (weight j) in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end
      end
    done;
    if !best < 0 then remaining := 0
    else begin
      chosen.(!best) <- true;
      List.iter
        (fun i ->
          if Hashtbl.mem still i then begin
            Hashtbl.remove still i;
            decr remaining
          end)
        explains.(!best)
    end
  done;
  chosen
