type options = { threshold : float; top : int; show_edges : bool }

let default_options = { threshold = 0.002; top = 20; show_edges = true }

let summary (result : Lia.result) ~threshold =
  let congested =
    Array.fold_left
      (fun acc l -> if l > threshold then acc + 1 else acc)
      0 result.Lia.loss_rates
  in
  Printf.sprintf "kept %d columns, eliminated %d; %d links above tl = %g"
    (Array.length result.Lia.kept)
    (Array.length result.Lia.removed)
    congested threshold

let table ?(options = default_options) ?graph ~routing (result : Lia.result) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (summary result ~threshold:options.threshold);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "%-6s %-11s %-11s %-10s %s\n" "link" "loss rate" "variance"
       "verdict"
       (if options.show_edges then "edges" else ""));
  let order = Linalg.Vector.sort_indices ~descending:true result.Lia.loss_rates in
  Array.iteri
    (fun rank k ->
      if rank < options.top then begin
        let edges =
          if options.show_edges then
            routing.Topology.Routing.vlinks.(k)
            |> Array.to_list |> List.map string_of_int |> String.concat ","
          else ""
        in
        let location =
          match graph with
          | None -> ""
          | Some g ->
              if As_location.vlink_is_inter g routing k then " (inter-AS)"
              else " (intra-AS)"
        in
        Buffer.add_string b
          (Printf.sprintf "%-6d %-11.5f %-11.3e %-10s %s%s\n" k
             result.Lia.loss_rates.(k)
             result.Lia.variances.(k)
             (if result.Lia.loss_rates.(k) > options.threshold then "CONGESTED"
              else "good")
             edges location)
      end)
    order;
  Buffer.contents b
