module Multicast = Netsim.Multicast

type result = { transmission : float array; survival : float array }

(* Solve 1 - g/a = prod_c (1 - gc/a) for a in (max gc, 1]. The left side
   minus right side is monotone on the interval, so bisection applies. *)
let solve_node ~g ~child_gammas =
  let lo_bound = Array.fold_left Float.max 0. child_gammas in
  if g <= 0. || lo_bound <= 0. then 0.
  else begin
    let f a =
      let rhs =
        Array.fold_left (fun acc gc -> acc *. (1. -. (gc /. a))) 1. child_gammas
      in
      1. -. (g /. a) -. rhs
    in
    (* f is negative just above max gamma_c and crosses zero once; if it is
       still negative at 1 the root lies beyond the feasible range, so the
       survival probability saturates at 1 *)
    let lo = ref (lo_bound +. 1e-12) and hi = ref 1. in
    if f !hi <= 0. then 1.
    else begin
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if f mid > 0. then hi := mid else lo := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  end

let infer (tree : Multicast.tree) ~gamma =
  let nc = Array.length tree.Multicast.parent in
  if Array.length gamma <> nc then invalid_arg "Minc.infer: gamma length mismatch";
  let survival = Array.make nc 0. in
  (* bottom-up: leaves first *)
  for k = nc - 1 downto 0 do
    let v = tree.Multicast.order.(k) in
    let kids = tree.Multicast.children.(v) in
    if Array.length kids = 0 then survival.(v) <- gamma.(v)
    else begin
      let child_gammas = Array.map (fun c -> gamma.(c)) kids in
      (* a destination that is itself this node contributes like a child
         observing gamma directly; fold it in conservatively by treating
         the node's own reception as part of gamma, which the subtree
         union already does *)
      survival.(v) <- solve_node ~g:gamma.(v) ~child_gammas
    end
  done;
  let transmission =
    Array.init nc (fun v ->
        let p = tree.Multicast.parent.(v) in
        let upstream = if p < 0 then 1. else survival.(p) in
        if upstream <= 0. then 0. else Float.min 1. (survival.(v) /. upstream))
  in
  { transmission; survival }

let infer_average tree ~gammas =
  match Array.length gammas with
  | 0 -> invalid_arg "Minc.infer_average: no snapshots"
  | n ->
      let nc = Array.length gammas.(0) in
      let avg = Array.make nc 0. in
      Array.iter
        (fun g ->
          if Array.length g <> nc then
            invalid_arg "Minc.infer_average: ragged gammas";
          Array.iteri (fun k x -> avg.(k) <- avg.(k) +. x) g)
        gammas;
      let avg = Array.map (fun x -> x /. float_of_int n) avg in
      infer tree ~gamma:avg
