module Graph = Topology.Graph
module Routing = Topology.Routing

type report = { inter : int; intra : int }

let inter_fraction { inter; intra } =
  let total = inter + intra in
  if total = 0 then 0. else float_of_int inter /. float_of_int total

let vlink_is_inter graph (routing : Routing.reduced) j =
  if j < 0 || j >= Array.length routing.Routing.vlinks then
    invalid_arg "As_location.vlink_is_inter: bad column";
  Array.exists (Graph.is_inter_as graph) routing.Routing.vlinks.(j)

let classify ~graph ~routing ~loss_rates ~threshold =
  let nc = Array.length routing.Routing.vlinks in
  if Array.length loss_rates <> nc then
    invalid_arg "As_location.classify: loss rate length mismatch";
  let inter = ref 0 and intra = ref 0 in
  for j = 0 to nc - 1 do
    if loss_rates.(j) > threshold then
      if vlink_is_inter graph routing j then incr inter else incr intra
  done;
  { inter = !inter; intra = !intra }

let pp ppf r =
  let f = inter_fraction r in
  Format.fprintf ppf "inter-AS %.1f%% / intra-AS %.1f%%" (100. *. f)
    (100. *. (1. -. f))
