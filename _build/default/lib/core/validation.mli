(** Indirect cross-validation of inferred rates (Section 7.2, eq. 11).

    Without ground truth, the paper splits the measured paths into an
    inference half and a validation half, runs LIA on the first and checks
    on the second that each path's measured transmission rate matches the
    product of the inferred rates of its links that the inference topology
    covers, within a tolerance [ε]. *)

type report = {
  consistent : int;
  total : int;
  fraction : float;  (** [consistent / total]; 1.0 when [total = 0] *)
}

val split :
  Nstats.Rng.t -> paths:int -> int array * int array
(** Random half/half partition of row indices (inference, validation). *)

val check_paths :
  r:Linalg.Sparse.t ->
  covered:bool array ->
  transmission:float array ->
  rows:int array ->
  y_now:Linalg.Vector.t ->
  epsilon:float ->
  report
(** Core of eq. (11): for each validation row, compare its measured
    transmission with the product of [transmission] over its covered
    columns. [covered] and [transmission] are indexed by columns of [r]. *)

val cross_validate :
  ?estimator:Variance_estimator.options ->
  Nstats.Rng.t ->
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  epsilon:float ->
  report
(** Full procedure: split, run LIA on the inference rows (learning from
    the same rows of [y_learn]), validate on the rest. *)
