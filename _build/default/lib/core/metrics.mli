(** Evaluation metrics of Section 6.

    Detection rate and false-positive rate for congested-link location,
    and the error factor [f_δ] of Bu et al. for loss-rate accuracy
    (eq. 10). *)

type location = { dr : float; fpr : float }

val location : actual:bool array -> inferred:bool array -> location
(** [dr = |F ∩ X| / |F|] and [fpr = |X \ F| / |X|]. A rate with an empty
    denominator is reported as [1.0] for DR (nothing to detect) and [0.0]
    for FPR (nothing flagged). Raises [Invalid_argument] on a length
    mismatch. *)

val error_factor : ?delta:float -> float -> float -> float
(** [error_factor q q*] with both arguments floored at [delta]
    (default 1e-3); always [>= 1]. *)

val error_factors :
  ?delta:float -> actual:float array -> inferred:float array -> unit -> float array

val absolute_errors : actual:float array -> inferred:float array -> float array

type spread = { max : float; median : float; min : float }

val spread : float array -> spread
(** Raises [Invalid_argument] on an empty sample. *)

val pp_location : Format.formatter -> location -> unit

val pp_spread : Format.formatter -> spread -> unit
