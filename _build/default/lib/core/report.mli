(** Human-readable inference reports.

    Formats an LIA result against its routing context: per-link loss
    rates with variances, congestion verdicts, virtual-link membership,
    and optional AS location — the output an operator reads. Used by the
    CLI and the examples. *)

type options = {
  threshold : float;  (** congestion threshold [tl] *)
  top : int;  (** how many links to list (lossiest first) *)
  show_edges : bool;  (** append the physical edge ids of each virtual link *)
}

val default_options : options
(** [tl] = 0.002, top 20, edges shown. *)

val summary : Lia.result -> threshold:float -> string
(** One line: kept/removed column counts and congested-link count. *)

val table :
  ?options:options ->
  ?graph:Topology.Graph.t ->
  routing:Topology.Routing.reduced ->
  Lia.result ->
  string
(** Multi-line report. When [graph] is given, each link is annotated
    inter-/intra-AS. *)
