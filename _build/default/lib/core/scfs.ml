module Sparse = Linalg.Sparse

let infer r ~bad_paths =
  let np = Sparse.rows r and nc = Sparse.cols r in
  if Array.length bad_paths <> np then invalid_arg "Scfs.infer: length mismatch";
  (* candidate links: covered, and on no good path *)
  let on_good = Array.make nc false in
  let covered = Array.make nc false in
  for i = 0 to np - 1 do
    Array.iter
      (fun j ->
        covered.(j) <- true;
        if not bad_paths.(i) then on_good.(j) <- true)
      (Sparse.row r i)
  done;
  let candidate = Array.init nc (fun j -> covered.(j) && not on_good.(j)) in
  (* bad paths each candidate would explain *)
  let explains = Array.make nc [] in
  let unexplained = ref [] in
  for i = np - 1 downto 0 do
    if bad_paths.(i) then begin
      unexplained := i :: !unexplained;
      Array.iter
        (fun j -> if candidate.(j) then explains.(j) <- i :: explains.(j))
        (Sparse.row r i)
    end
  done;
  (* greedy set cover: repeatedly take the candidate explaining the most
     still-unexplained bad paths (ties to the lowest link id) *)
  let chosen = Array.make nc false in
  let still = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace still i ()) !unexplained;
  let remaining = ref (Hashtbl.length still) in
  while !remaining > 0 do
    let best = ref (-1) and best_gain = ref 0 in
    for j = 0 to nc - 1 do
      if candidate.(j) && not chosen.(j) then begin
        let gain =
          List.length (List.filter (Hashtbl.mem still) explains.(j))
        in
        if gain > !best_gain then begin
          best := j;
          best_gain := gain
        end
      end
    done;
    if !best < 0 then remaining := 0 (* some bad path has no candidate link *)
    else begin
      chosen.(!best) <- true;
      List.iter
        (fun i ->
          if Hashtbl.mem still i then begin
            Hashtbl.remove still i;
            decr remaining
          end)
        explains.(!best)
    end
  done;
  chosen

let classify_paths r ~y_now ~threshold =
  let np = Sparse.rows r in
  if Array.length y_now <> np then invalid_arg "Scfs.classify_paths: length mismatch";
  Array.init np (fun i ->
      let len = Array.length (Sparse.row r i) in
      let best_case = float_of_int len *. log (1. -. threshold) in
      y_now.(i) < best_case)
