let runs series =
  match Array.length series with
  | 0 -> []
  | t_count ->
      let width = Array.length series.(0) in
      Array.iter
        (fun snap ->
          if Array.length snap <> width then
            invalid_arg "Duration.runs: ragged series")
        series;
      let acc = ref [] in
      for k = 0 to width - 1 do
        let current = ref 0 in
        for t = 0 to t_count - 1 do
          if series.(t).(k) then incr current
          else if !current > 0 then begin
            acc := !current :: !acc;
            current := 0
          end
        done;
        if !current > 0 then acc := !current :: !acc
      done;
      !acc

let distribution lengths =
  match lengths with
  | [] -> []
  | _ ->
      let total = float_of_int (List.length lengths) in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun l ->
          Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
        lengths;
      Hashtbl.fold (fun l c acc -> (l, float_of_int c /. total) :: acc) tbl []
      |> List.sort compare

let fraction_of_length lengths l =
  match List.assoc_opt l (distribution lengths) with
  | Some f -> f
  | None -> 0.
