(** Network anomaly detection from a few vantage points — the paper's
    second suggested extension (Section 8).

    The learning window gives every path an expected log transmission
    rate and a variance; a fresh snapshot is screened by standardizing
    each path's measurement against that baseline. Paths that deviate
    beyond a z-threshold are anomalous, and the anomalous set is localized
    to links with the same parsimonious-explanation machinery as the
    congested-link baselines. Because the per-path moments come from the
    same snapshots LIA already collects, detection is essentially free. *)

type model = {
  mean : float array;  (** per-path baseline mean of [Y] *)
  std : float array;  (** per-path baseline standard deviation (>= a floor) *)
}

val learn : ?std_floor:float -> Linalg.Matrix.t -> model
(** [learn y] from the learning window (rows = snapshots). [std_floor]
    (default [1e-4]) prevents zero-variance paths from firing on any
    noise. Raises [Invalid_argument] with fewer than two snapshots. *)

val path_scores : model -> y_now:Linalg.Vector.t -> float array
(** Standardized residuals; negative = worse than baseline. *)

val anomalous_paths :
  ?z_threshold:float -> model -> y_now:Linalg.Vector.t -> bool array
(** Paths whose measurement is more than [z_threshold] (default 3)
    standard deviations {e below} baseline (losses only get worse). *)

val localize :
  Linalg.Sparse.t -> anomalous:bool array -> bool array
(** Smallest consistent explanation of the anomalous paths (links on
    non-anomalous paths are exonerated). *)

val detect :
  ?z_threshold:float ->
  model ->
  r:Linalg.Sparse.t ->
  y_now:Linalg.Vector.t ->
  bool array * bool array
(** [(anomalous_paths, suspect_links)] in one call. *)
