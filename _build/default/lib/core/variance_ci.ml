module Matrix = Linalg.Matrix
module Rng = Nstats.Rng

type interval = { lo : float; estimate : float; hi : float }

let bootstrap ?(replicates = 100) ?(confidence = 0.9) rng ~r ~y =
  let m = Matrix.rows y in
  if m < 2 then invalid_arg "Variance_ci.bootstrap: need at least 2 snapshots";
  if replicates <= 0 then invalid_arg "Variance_ci.bootstrap: no replicates";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Variance_ci.bootstrap: confidence out of (0,1)";
  let np = Matrix.cols y in
  let estimate = Variance_estimator.estimate_streaming ~r ~y () in
  let nc = Array.length estimate in
  let samples = Array.init nc (fun _ -> Array.make replicates 0.) in
  for rep = 0 to replicates - 1 do
    let rows = Array.init m (fun _ -> Rng.int rng m) in
    let y_boot = Matrix.init m np (fun l i -> Matrix.get y rows.(l) i) in
    let v = Variance_estimator.estimate_streaming ~r ~y:y_boot () in
    Array.iteri (fun k vk -> samples.(k).(rep) <- vk) v
  done;
  let alpha = (1. -. confidence) /. 2. in
  Array.init nc (fun k ->
      {
        lo = Nstats.Descriptive.quantile samples.(k) alpha;
        estimate = estimate.(k);
        hi = Nstats.Descriptive.quantile samples.(k) (1. -. alpha);
      })

let stable_ranking intervals ~top =
  let nc = Array.length intervals in
  if top <= 0 || top > nc then invalid_arg "Variance_ci.stable_ranking: bad top";
  let order =
    Linalg.Vector.sort_indices ~descending:true
      (Array.map (fun iv -> iv.estimate) intervals)
  in
  let min_lo_top = ref infinity and max_hi_rest = ref neg_infinity in
  Array.iteri
    (fun rank k ->
      if rank < top then min_lo_top := Float.min !min_lo_top intervals.(k).lo
      else max_hi_rest := Float.max !max_hi_rest intervals.(k).hi)
    order;
  top = nc || !min_lo_top >= !max_hi_rest
