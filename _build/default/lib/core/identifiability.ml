module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type verdict = Identifiable | Dependent of int list

(* Gram matrix of the augmented matrix, assembled without materializing A:
   G[k,l] counts the path pairs (i <= j) in which both k and l appear in
   Ri ⊗ Rj. *)
let augmented_gram r =
  let np = Sparse.rows r and nc = Sparse.cols r in
  let g = Array.init nc (fun _ -> Array.make nc 0.) in
  for i = 0 to np - 1 do
    let ri = Sparse.row r i in
    for j = i to np - 1 do
      let row = if i = j then ri else Sparse.row_product ri (Sparse.row r j) in
      let len = Array.length row in
      for a = 0 to len - 1 do
        let ga = g.(row.(a)) in
        for b = 0 to len - 1 do
          ga.(row.(b)) <- ga.(row.(b)) +. 1.
        done
      done
    done
  done;
  Matrix.init nc nc (fun k l -> g.(k).(l))

let check r =
  let nc = Sparse.cols r in
  if nc = 0 then Identifiable
  else begin
    let g = augmented_gram r in
    (* rank of G = AᵀA equals the column rank of A; the pivoted QR gives a
       reliable numerical rank plus the entangled columns *)
    let f = Qr.factorize_pivoted g in
    let rank = Qr.rank f in
    if rank = nc then Identifiable
    else begin
      let piv = Qr.pivots f in
      let dependent = Array.to_list (Array.sub piv rank (nc - rank)) in
      Dependent (List.sort compare dependent)
    end
  end

let is_identifiable r = check r = Identifiable

let assumptions_report graph paths =
  let covered = Array.make (Topology.Graph.edge_count graph) false in
  Array.iter
    (fun (p : Topology.Path.t) ->
      Array.iter (fun e -> covered.(e) <- true) p.Topology.Path.edges)
    paths;
  let all_covered = Array.for_all (fun c -> c) covered in
  let no_flutter = Topology.Flutter.check paths = [] in
  let pairs = Hashtbl.create (Array.length paths) in
  let unique = ref true in
  Array.iter
    (fun (p : Topology.Path.t) ->
      let key = (p.Topology.Path.src, p.Topology.Path.dst) in
      if Hashtbl.mem pairs key then unique := false;
      Hashtbl.replace pairs key ())
    paths;
  [
    ("every link covered by a path", all_covered);
    ("no route fluttering (T.2)", no_flutter);
    ("single path per beacon/destination pair", !unique);
  ]
