(** Locating congested links relative to AS boundaries (Table 3).

    A virtual link is inter-AS when any of its physical member edges
    crosses an AS boundary (the conservative convention: a chain that
    includes a peering hop is an inter-AS chain). *)

type report = {
  inter : int;  (** congested inter-AS links *)
  intra : int;  (** congested intra-AS links *)
}

val inter_fraction : report -> float
(** Fraction of congested links that are inter-AS (0 when none). *)

val vlink_is_inter : Topology.Graph.t -> Topology.Routing.reduced -> int -> bool

val classify :
  graph:Topology.Graph.t ->
  routing:Topology.Routing.reduced ->
  loss_rates:float array ->
  threshold:float ->
  report
(** Counts inferred-congested links ([loss > threshold]) by location.
    [loss_rates] is indexed by columns of the reduced routing matrix. *)

val pp : Format.formatter -> report -> unit
