(** Deployment diagnostics: is a monitoring setup sufficient to identify
    link variances?

    Theorem 1 guarantees identifiability for routing matrices produced by
    alias-reduced shortest-path measurements satisfying T.1–T.2; this
    module checks the premise {e constructively} on an arbitrary routing
    matrix by testing the column rank of the augmented matrix, and reports
    which links are entangled when the check fails (e.g. because paths
    were dropped, or the matrix was built from partial measurements). *)

type verdict =
  | Identifiable
  | Dependent of int list
      (** column ids whose augmented columns are linearly dependent on
          the higher-id span: the variances of these links cannot be
          separated from the others with the given paths *)

val check : Linalg.Sparse.t -> verdict
(** [check r] builds the augmented columns implicitly and greedily tests
    independence (highest column id first, so the reported dependent set
    is the low-id entangled links). O(rows(A) × nc × rank). *)

val is_identifiable : Linalg.Sparse.t -> bool

val assumptions_report :
  Topology.Graph.t -> Topology.Path.t array -> (string * bool) list
(** Checks the paper's assumptions on a concrete measured path set:
    ["columns nonzero"] (every link covered), ["no fluttering"] (T.2),
    ["single path per pair"] (no duplicate beacon/destination pairs).
    Each entry pairs a label with whether it holds. *)
