(** Link delay inference — the paper's first extension (Section 8):
    "congested links usually have high delay variations; take multiple
    snapshots to learn the delay variances, reduce the first-order moment
    equations by removing links with small congestion delays, then solve
    for the delays of the remaining congested links."

    Delay measurements are directly linear in link delays, so Theorem 1
    applies verbatim to delay variances (the augmented matrix is the
    same). The static propagation component has zero variance and would
    be eliminated in Phase 2, so the first-order system is solved on
    {e baseline-subtracted} measurements: each path's baseline is its
    minimum over the learning window (the classic RTT baselining trick),
    leaving only the queueing excess, which is ~0 on un-congested links —
    the exact analogue of the loss setting. *)

type result = {
  variances : float array;  (** learnt delay variance per link *)
  queueing : float array;
      (** inferred mean queueing delay (ms) per link for the target
          snapshot; eliminated links get 0 *)
  kept : int array;
  removed : int array;
}

val baselines : Linalg.Matrix.t -> Linalg.Vector.t
(** Per-path minimum over the learning snapshots. *)

val infer :
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  result
(** Full two-phase inference on delay measurements (ms). Raises
    [Invalid_argument] on dimension mismatches. *)

val congested : result -> threshold:float -> bool array
(** Links whose inferred queueing delay exceeds [threshold] ms. *)
