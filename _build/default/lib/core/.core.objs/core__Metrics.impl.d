lib/core/metrics.ml: Array Float Format Nstats
