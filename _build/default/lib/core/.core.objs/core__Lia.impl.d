lib/core/lia.ml: Array Float Linalg Rank_reduction Variance_estimator
