lib/core/validation.ml: Array Float Lia Linalg List Nstats
