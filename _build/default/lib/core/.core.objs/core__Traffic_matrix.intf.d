lib/core/traffic_matrix.mli: Linalg Nstats Topology
