lib/core/covariance.mli: Linalg
