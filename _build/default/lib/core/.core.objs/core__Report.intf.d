lib/core/report.mli: Lia Topology
