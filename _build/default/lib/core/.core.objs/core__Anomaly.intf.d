lib/core/anomaly.mli: Linalg
