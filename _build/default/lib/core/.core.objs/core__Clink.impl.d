lib/core/clink.ml: Array Float Hashtbl Linalg List
