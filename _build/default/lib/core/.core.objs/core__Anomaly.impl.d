lib/core/anomaly.ml: Array Float Linalg Nstats Scfs
