lib/core/mils.ml: Array Hashtbl Linalg List
