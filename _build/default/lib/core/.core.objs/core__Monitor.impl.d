lib/core/monitor.ml: Anomaly Array Lia Linalg Queue Variance_estimator
