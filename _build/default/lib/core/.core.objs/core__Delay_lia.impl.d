lib/core/delay_lia.ml: Array Float Linalg Rank_reduction Variance_estimator
