lib/core/duration.mli:
