lib/core/delay_lia.mli: Linalg
