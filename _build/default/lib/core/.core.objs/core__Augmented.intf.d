lib/core/augmented.mli: Linalg
