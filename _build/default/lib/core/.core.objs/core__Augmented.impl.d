lib/core/augmented.ml: Array Linalg List
