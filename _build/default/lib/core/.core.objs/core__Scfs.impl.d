lib/core/scfs.ml: Array Hashtbl Linalg List
