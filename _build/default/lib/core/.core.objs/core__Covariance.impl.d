lib/core/covariance.ml: Array Augmented Linalg Nstats
