lib/core/variance_estimator.ml: Array Augmented Covariance Float Linalg List
