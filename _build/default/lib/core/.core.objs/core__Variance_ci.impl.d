lib/core/variance_ci.ml: Array Float Linalg Nstats Variance_estimator
