lib/core/as_location.ml: Array Format Topology
