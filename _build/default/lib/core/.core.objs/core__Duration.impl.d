lib/core/duration.ml: Array Hashtbl List Option
