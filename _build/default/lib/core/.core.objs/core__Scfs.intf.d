lib/core/scfs.mli: Linalg
