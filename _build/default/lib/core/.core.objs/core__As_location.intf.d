lib/core/as_location.mli: Format Topology
