lib/core/em_tomography.mli: Linalg
