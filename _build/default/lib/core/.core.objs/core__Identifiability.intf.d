lib/core/identifiability.mli: Linalg Topology
