lib/core/mils.mli: Linalg
