lib/core/rank_reduction.ml: Array Linalg List
