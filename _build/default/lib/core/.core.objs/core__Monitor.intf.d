lib/core/monitor.mli: Anomaly Lia Linalg
