lib/core/minc.mli: Netsim
