lib/core/report.ml: Array As_location Buffer Lia Linalg List Printf String Topology
