lib/core/variance_ci.mli: Linalg Nstats
