lib/core/clink.mli: Linalg
