lib/core/validation.mli: Linalg Nstats Variance_estimator
