lib/core/lia.mli: Linalg Variance_estimator
