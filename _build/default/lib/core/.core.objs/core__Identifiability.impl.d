lib/core/identifiability.ml: Array Hashtbl Linalg List Topology
