lib/core/traffic_matrix.ml: Array Identifiability Linalg List Nstats Topology Variance_estimator
