lib/core/variance_estimator.mli: Linalg
