lib/core/minc.ml: Array Float Netsim
