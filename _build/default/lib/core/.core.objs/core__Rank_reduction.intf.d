lib/core/rank_reduction.mli: Linalg
