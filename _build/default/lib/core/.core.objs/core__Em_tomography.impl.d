lib/core/em_tomography.ml: Array Float Linalg
