module Matrix = Linalg.Matrix

type model = { mean : float array; std : float array }

let learn ?(std_floor = 1e-4) y =
  let m = Matrix.rows y and np = Matrix.cols y in
  if m < 2 then invalid_arg "Anomaly.learn: need at least 2 snapshots";
  let mean = Nstats.Descriptive.mean_vector y in
  let std =
    Array.init np (fun i ->
        let acc = ref 0. in
        for l = 0 to m - 1 do
          let d = Matrix.get y l i -. mean.(i) in
          acc := !acc +. (d *. d)
        done;
        Float.max std_floor (sqrt (!acc /. float_of_int (m - 1))))
  in
  { mean; std }

let path_scores model ~y_now =
  if Array.length y_now <> Array.length model.mean then
    invalid_arg "Anomaly.path_scores: length mismatch";
  Array.mapi (fun i y -> (y -. model.mean.(i)) /. model.std.(i)) y_now

let anomalous_paths ?(z_threshold = 3.) model ~y_now =
  if z_threshold <= 0. then invalid_arg "Anomaly: non-positive z threshold";
  Array.map (fun z -> z < -.z_threshold) (path_scores model ~y_now)

let localize r ~anomalous = Scfs.infer r ~bad_paths:anomalous

let detect ?z_threshold model ~r ~y_now =
  let paths = anomalous_paths ?z_threshold model ~y_now in
  (paths, localize r ~anomalous:paths)
