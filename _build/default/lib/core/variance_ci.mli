(** Bootstrap confidence intervals for the learnt link variances.

    The Phase-1 estimate is a method-of-moments fit to [m] snapshots;
    resampling snapshots with replacement and re-solving gives percentile
    intervals per link, which quantify whether a link's variance (and
    hence its congestion ranking) is trustworthy at the current [m] — the
    practical question behind Figure 5's dependence on [m]. *)

type interval = { lo : float; estimate : float; hi : float }

val bootstrap :
  ?replicates:int ->
  ?confidence:float ->
  Nstats.Rng.t ->
  r:Linalg.Sparse.t ->
  y:Linalg.Matrix.t ->
  interval array
(** [bootstrap rng ~r ~y] with default 100 replicates at 90% confidence.
    Each replicate resamples the snapshot rows of [y]. The [estimate]
    field is the fit on the original sample. Raises [Invalid_argument]
    for fewer than two snapshots, bad confidence, or non-positive
    replicate counts. *)

val stable_ranking :
  interval array -> top:int -> bool
(** Whether the [top] highest-variance links are separated from the rest
    at the given confidence: the lower bounds of the top group all exceed
    the upper bounds of the others' complement... specifically, the
    minimum [lo] among the top group is at least the maximum [hi] among
    the remaining links. A true result means Phase 2's cut is robust. *)
