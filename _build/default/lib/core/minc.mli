(** The MINC multicast loss estimator (Cáceres, Duffield, Horowitz &
    Towsley 1999) — the classic method behind the first column of the
    paper's Table 1.

    From the per-subtree reception fractions [gamma] of a multicast
    campaign, MINC recovers every link's transmission rate on the tree:
    with [A_k] the probability that a probe survives from the root
    through link [k], the subtree observations satisfy

    [1 - gamma_k / A_k = prod_{c in children(k)} (1 - gamma_c / A_k)]

    whose unique root in (max_c gamma_c, 1] is found by bisection; link
    rates are then [A_k / A_parent(k)]. Leaf links have [A = gamma]
    directly. *)

type result = {
  transmission : float array;  (** per virtual link *)
  survival : float array;  (** [A_k]: root-to-below-link-k pass probability *)
}

val infer : Netsim.Multicast.tree -> gamma:float array -> result
(** Raises [Invalid_argument] on a length mismatch. Degenerate nodes
    (zero reception anywhere below) get transmission 0. *)

val infer_average :
  Netsim.Multicast.tree -> gammas:float array array -> result
(** Pools several snapshots' [gamma] vectors (e.g. a learning window) by
    averaging before solving, the standard way MINC consumes longer
    campaigns. *)
