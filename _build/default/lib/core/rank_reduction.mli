(** Phase 2, step 2 of LIA (Section 5.2): eliminate the least-congested
    links from the routing matrix until it has full column rank.

    Links are ordered by their learnt variances (Assumption S.3 makes
    variance a proxy for congestion level); the paper's loop removes the
    lowest-variance column while the matrix is column-rank deficient.
    That procedure keeps exactly the longest full-column-rank suffix of
    the variance ordering, which we find with a single descending
    Gram–Schmidt sweep. *)

type result = {
  kept : int array;  (** column ids of [R*], in descending variance order *)
  removed : int array;  (** eliminated columns (inferred loss rate 0) *)
}

val eliminate : Linalg.Sparse.t -> Linalg.Vector.t -> result
(** [eliminate r v]: the paper's rule. [v] must have one entry per column
    of [r]. Raises [Invalid_argument] on a length mismatch. *)

val eliminate_greedy : Linalg.Sparse.t -> Linalg.Vector.t -> result
(** Ablation: instead of stopping at the first dependent column, keep
    scanning and retain every column independent of the higher-variance
    ones already kept. Keeps at least as many columns as {!eliminate};
    agreement between the two is a good sanity indicator. *)

val is_full_column_rank : Linalg.Sparse.t -> bool
(** Whether all columns are linearly independent. *)
