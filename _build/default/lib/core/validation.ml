module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Rng = Nstats.Rng

type report = { consistent : int; total : int; fraction : float }

let split rng ~paths =
  if paths < 2 then invalid_arg "Validation.split: need at least 2 paths";
  let perm = Array.init paths (fun i -> i) in
  Rng.shuffle rng perm;
  let half = paths / 2 in
  (Array.sub perm 0 half, Array.sub perm half (paths - half))

let check_paths ~r ~covered ~transmission ~rows ~y_now ~epsilon =
  if Array.length covered <> Sparse.cols r then
    invalid_arg "Validation.check_paths: covered length mismatch";
  if Array.length transmission <> Sparse.cols r then
    invalid_arg "Validation.check_paths: transmission length mismatch";
  let consistent = ref 0 in
  Array.iter
    (fun i ->
      let predicted =
        Array.fold_left
          (fun acc j -> if covered.(j) then acc *. transmission.(j) else acc)
          1. (Sparse.row r i)
      in
      let measured = exp y_now.(i) in
      if Float.abs (measured -. predicted) <= epsilon then incr consistent)
    rows;
  let total = Array.length rows in
  { consistent = !consistent;
    total;
    fraction = (if total = 0 then 1. else float_of_int !consistent /. float_of_int total)
  }

let cross_validate ?estimator rng ~r ~y_learn ~y_now ~epsilon =
  let np = Sparse.rows r in
  if Matrix.cols y_learn <> np then
    invalid_arg "Validation.cross_validate: learning matrix width mismatch";
  if Array.length y_now <> np then
    invalid_arg "Validation.cross_validate: measurement length mismatch";
  let inf_rows, val_rows = split rng ~paths:np in
  (* restrict to the inference rows and their covered columns *)
  let r_inf_full = Sparse.select_rows r inf_rows in
  let counts = Sparse.column_counts r_inf_full in
  let covered_cols =
    Array.of_list
      (List.filter (fun j -> counts.(j) > 0)
         (List.init (Sparse.cols r) (fun j -> j)))
  in
  let r_inf = Sparse.select_cols r_inf_full covered_cols in
  let m = Matrix.rows y_learn in
  let y_learn_inf =
    Matrix.init m (Array.length inf_rows) (fun l k -> Matrix.get y_learn l inf_rows.(k))
  in
  let y_now_inf = Array.map (fun i -> y_now.(i)) inf_rows in
  let result = Lia.infer ?estimator ~r:r_inf ~y_learn:y_learn_inf ~y_now:y_now_inf () in
  (* scatter the inferred rates back to global column ids *)
  let covered = Array.make (Sparse.cols r) false in
  let transmission = Array.make (Sparse.cols r) 1. in
  Array.iteri
    (fun k j ->
      covered.(j) <- true;
      transmission.(j) <- result.Lia.transmission.(k))
    covered_cols;
  check_paths ~r ~covered ~transmission ~rows:val_rows ~y_now ~epsilon
