(** Congestion-duration analysis (Section 7.2.2).

    Given a time series of per-link congestion verdicts (one boolean
    vector per snapshot), extracts maximal runs of consecutive congested
    snapshots per link and their distribution — the paper reports that
    99% of congested links stay congested for a single 5-minute snapshot. *)

val runs : bool array array -> int list
(** [runs series] where [series.(t).(k)] is the verdict for link [k] at
    snapshot [t]: lengths of all maximal congested runs, over all links.
    All snapshots must have the same width. *)

val distribution : int list -> (int * float) list
(** [(length, fraction)] pairs, ascending by length, fractions summing to
    1 (empty list for no runs). *)

val fraction_of_length : int list -> int -> float
(** Fraction of runs with exactly the given length. *)
