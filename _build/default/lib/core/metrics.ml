type location = { dr : float; fpr : float }

let location ~actual ~inferred =
  let n = Array.length actual in
  if Array.length inferred <> n then invalid_arg "Metrics.location: length mismatch";
  let detected = ref 0 and failures = ref 0 in
  let false_pos = ref 0 and flagged = ref 0 in
  for k = 0 to n - 1 do
    if actual.(k) then begin
      incr failures;
      if inferred.(k) then incr detected
    end;
    if inferred.(k) then begin
      incr flagged;
      if not actual.(k) then incr false_pos
    end
  done;
  let dr =
    if !failures = 0 then 1. else float_of_int !detected /. float_of_int !failures
  in
  let fpr =
    if !flagged = 0 then 0. else float_of_int !false_pos /. float_of_int !flagged
  in
  { dr; fpr }

let error_factor ?(delta = 1e-3) q q_star =
  if delta <= 0. then invalid_arg "Metrics.error_factor: delta <= 0";
  let qd = Float.max delta q and qsd = Float.max delta q_star in
  Float.max (qd /. qsd) (qsd /. qd)

let error_factors ?delta ~actual ~inferred () =
  if Array.length actual <> Array.length inferred then
    invalid_arg "Metrics.error_factors: length mismatch";
  Array.map2 (fun q qs -> error_factor ?delta q qs) actual inferred

let absolute_errors ~actual ~inferred =
  if Array.length actual <> Array.length inferred then
    invalid_arg "Metrics.absolute_errors: length mismatch";
  Array.map2 (fun q qs -> Float.abs (q -. qs)) actual inferred

type spread = { max : float; median : float; min : float }

let spread xs =
  { max = Nstats.Descriptive.maximum xs;
    median = Nstats.Descriptive.median xs;
    min = Nstats.Descriptive.minimum xs }

let pp_location ppf { dr; fpr } =
  Format.fprintf ppf "DR=%.2f%% FPR=%.2f%%" (100. *. dr) (100. *. fpr)

let pp_spread ppf { max; median; min } =
  Format.fprintf ppf "max=%.4g median=%.4g min=%.4g" max median min
