(** Link loss-rate models (Section 6).

    Following Padmanabhan et al.'s LLRD models as used by the paper: each
    snapshot, a link is congested with probability [p]; congested links
    draw a loss rate from the congested range, good links from the good
    range, and the threshold [tl] separates the two classes. *)

type t = {
  name : string;
  good_lo : float;
  good_hi : float;
  congested_lo : float;
  congested_hi : float;
  threshold : float;  (** the classification threshold [tl] *)
}

val llrd1 : t
(** Good links in [0, 0.002], congested in [0.05, 0.2], [tl] = 0.002. *)

val llrd2 : t
(** Good links in [0, 0.002], congested in [0.002, 1], [tl] = 0.002. *)

val llrd1_calibrated : t
(** LLRD1 with the good-link range tightened to [0, 0.0005]. The paper's
    reported numbers (Fig. 7 keeps ~3x as many columns as there are
    congested links, yet Table 2 FPR stays below 7%) are only mutually
    consistent when un-congested links contribute essentially no loss to a
    path: with the literal [0, 0.002] range, the eliminated links' mass
    (≈0.001 x path length) biases the kept columns past the 0.002
    threshold and inflates FPR to tens of percent under any
    implementation of Phase 2. The experiment harness therefore uses this
    calibrated variant for the headline experiments and reports the
    literal LLRD1 as an ablation. See EXPERIMENTS.md. *)

val internet : t
(** Internet-measurement regime (the paper's Section 7 setting, after
    Zhang et al.'s constancy observations): un-congested links are
    essentially lossless over a 10-second snapshot (good range
    [0, 0.0005]) while congested links span [0.01, 0.3]; [tl] = 0.002. *)

val custom :
  name:string ->
  good:float * float ->
  congested:float * float ->
  threshold:float ->
  t
(** Validated constructor; raises [Invalid_argument] on inverted ranges or
    rates outside [0, 1]. *)

val draw_good : Nstats.Rng.t -> t -> float
(** A loss rate for an un-congested link. *)

val draw_congested : Nstats.Rng.t -> t -> float
(** A loss rate for a congested link. *)

val is_congested : t -> float -> bool
(** [is_congested m rate] is [rate > m.threshold]. *)
