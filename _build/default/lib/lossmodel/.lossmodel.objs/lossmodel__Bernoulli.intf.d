lib/lossmodel/bernoulli.mli: Nstats
