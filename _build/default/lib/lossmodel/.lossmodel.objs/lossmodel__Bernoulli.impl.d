lib/lossmodel/bernoulli.ml: List Nstats
