lib/lossmodel/gilbert.ml: Float List Nstats
