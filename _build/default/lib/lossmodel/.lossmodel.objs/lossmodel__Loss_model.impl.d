lib/lossmodel/loss_model.ml: Nstats
