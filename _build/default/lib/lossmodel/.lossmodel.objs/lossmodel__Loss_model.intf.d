lib/lossmodel/loss_model.mli: Nstats
