lib/lossmodel/gilbert.mli: Nstats
