(** Independent (Bernoulli) probe losses — the paper's alternative loss
    process, where each probe is dropped independently with the link's
    loss rate. Used as an ablation against the bursty Gilbert process. *)

val losses : Nstats.Rng.t -> rate:float -> steps:int -> int
(** Binomial number of dropped probes. *)

val bad_intervals : Nstats.Rng.t -> rate:float -> steps:int -> (int * int) list
(** The dropped-probe set as maximal half-open intervals, so Bernoulli
    links compose with Gilbert links in the packet-level simulator. *)
