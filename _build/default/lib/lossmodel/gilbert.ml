module Rng = Nstats.Rng

type t = { to_bad : float; stay_bad : float; loss_rate : float }

let make ?(stay_bad = 0.35) ~loss_rate () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Gilbert.make: loss rate out of [0,1]";
  if stay_bad < 0. || stay_bad >= 1. then
    invalid_arg "Gilbert.make: stay_bad out of [0,1)";
  let to_good = 1. -. stay_bad in
  (* stationary bad probability = to_bad / (to_bad + to_good) = loss_rate *)
  let to_bad =
    if loss_rate >= 1. then 1.
    else Float.min 1. (to_good *. loss_rate /. (1. -. loss_rate))
  in
  { to_bad; stay_bad; loss_rate }

let stationary_bad t =
  let to_good = 1. -. t.stay_bad in
  if t.to_bad = 0. then 0. else t.to_bad /. (t.to_bad +. to_good)

let bad_intervals rng t ~steps =
  if steps < 0 then invalid_arg "Gilbert.bad_intervals: negative steps";
  if t.to_bad = 0. || steps = 0 then []
  else begin
    let to_good = 1. -. t.stay_bad in
    (* Start from the stationary distribution; then alternate geometric
       sojourns. A good sojourn lasts 1 + Geom(to_bad) steps when entered,
       a bad one 1 + Geom(to_good). *)
    let acc = ref [] in
    let pos = ref 0 in
    let bad = ref (Rng.bool rng (stationary_bad t)) in
    while !pos < steps do
      if !bad then begin
        let len = 1 + Rng.geometric rng to_good in
        let stop = min steps (!pos + len) in
        acc := (!pos, stop) :: !acc;
        pos := stop
      end
      else begin
        let len = 1 + Rng.geometric rng t.to_bad in
        pos := !pos + len
      end;
      bad := not !bad
    done;
    List.rev !acc
  end

let losses rng t ~steps =
  List.fold_left (fun acc (a, b) -> acc + b - a) 0 (bad_intervals rng t ~steps)
