module Rng = Nstats.Rng

type t = {
  name : string;
  good_lo : float;
  good_hi : float;
  congested_lo : float;
  congested_hi : float;
  threshold : float;
}

let custom ~name ~good:(good_lo, good_hi) ~congested:(congested_lo, congested_hi)
    ~threshold =
  let in_unit x = x >= 0. && x <= 1. in
  if
    not
      (in_unit good_lo && in_unit good_hi && in_unit congested_lo
     && in_unit congested_hi && in_unit threshold)
  then invalid_arg "Loss_model.custom: rates must lie in [0,1]";
  if good_lo > good_hi || congested_lo > congested_hi then
    invalid_arg "Loss_model.custom: inverted range";
  { name; good_lo; good_hi; congested_lo; congested_hi; threshold }

let llrd1 =
  custom ~name:"LLRD1" ~good:(0., 0.002) ~congested:(0.05, 0.2) ~threshold:0.002

let llrd2 =
  custom ~name:"LLRD2" ~good:(0., 0.002) ~congested:(0.002, 1.) ~threshold:0.002

let llrd1_calibrated =
  custom ~name:"LLRD1-calibrated" ~good:(0., 0.0005) ~congested:(0.05, 0.2)
    ~threshold:0.002

let internet =
  custom ~name:"internet" ~good:(0., 0.0005) ~congested:(0.01, 0.3)
    ~threshold:0.002

let draw_good rng m =
  if m.good_lo = m.good_hi then m.good_lo else Rng.uniform rng m.good_lo m.good_hi

let draw_congested rng m =
  if m.congested_lo = m.congested_hi then m.congested_lo
  else Rng.uniform rng m.congested_lo m.congested_hi

let is_congested m rate = rate > m.threshold
