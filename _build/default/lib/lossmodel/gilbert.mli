(** The Gilbert two-state burst-loss process (Section 6).

    A link alternates between a good state (no probe dropped) and a bad
    state (every probe dropped). The probability of remaining in the bad
    state is fixed to the paper's 0.35 (following Paxson's measurements);
    the good→bad probability is chosen so that the stationary loss rate
    matches the target rate of the link. Losses produced this way are
    bursty, which is exactly the property that gives congested links the
    high loss-rate variances the LIA algorithm exploits. *)

type t = {
  to_bad : float;  (** P(good → bad) *)
  stay_bad : float;  (** P(bad → bad) *)
  loss_rate : float;  (** stationary probability of the bad state *)
}

val make : ?stay_bad:float -> loss_rate:float -> unit -> t
(** [make ~loss_rate ()] with default [stay_bad = 0.35]. [to_bad] is
    clamped to 1, so very high target rates saturate (the realized rate of
    such links is still above any congestion threshold). Raises
    [Invalid_argument] unless [0 <= loss_rate <= 1] and
    [0 <= stay_bad < 1]. *)

val stationary_bad : t -> float
(** Exact stationary bad-state probability of the chain (equals
    [loss_rate] except in the clamped regime). *)

val bad_intervals : Nstats.Rng.t -> t -> steps:int -> (int * int) list
(** Half-open intervals [(start, stop)] of bad-state steps within
    [0, steps), in increasing order, sampled from the stationary chain by
    alternating geometric sojourns. The number of probes such a link drops
    is the total length of the intervals. *)

val losses : Nstats.Rng.t -> t -> steps:int -> int
(** Number of dropped probes out of [steps]. *)
