module Rng = Nstats.Rng

let losses rng ~rate ~steps =
  if rate < 0. || rate > 1. then invalid_arg "Bernoulli.losses: rate out of [0,1]";
  Rng.binomial rng steps rate

let bad_intervals rng ~rate ~steps =
  if rate < 0. || rate > 1. then
    invalid_arg "Bernoulli.bad_intervals: rate out of [0,1]";
  if rate = 0. || steps = 0 then []
  else begin
    (* jump between dropped probes with geometric gaps: O(steps * rate) *)
    let acc = ref [] in
    let pos = ref (Rng.geometric rng rate) in
    while !pos < steps do
      (* extend a run of consecutive drops into one interval *)
      let start = !pos in
      let stop = ref (start + 1) in
      while !stop < steps && Rng.bool rng rate do
        incr stop
      done;
      acc := (start, !stop) :: !acc;
      (* the trial at !stop (if within range) already failed, so the next
         candidate drop position starts the geometric gap at !stop + 1 *)
      pos := !stop + 1 + Rng.geometric rng rate
    done;
    List.rev !acc
  end
