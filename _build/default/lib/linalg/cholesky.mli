(** Cholesky factorization of symmetric positive-definite matrices.

    Used to solve the normal equations [AᵀA v = AᵀΣ*] that arise from the
    variance-identification system (eq. 8 of the paper) when the augmented
    matrix is too tall to factor densely. *)

exception Not_positive_definite

type t

val factorize : Matrix.t -> t
(** [factorize m] computes the lower-triangular [L] with [m = L Lᵀ].
    Raises [Not_positive_definite] if a pivot is not strictly positive and
    [Invalid_argument] if [m] is not square. The strictly upper part of [m]
    is ignored (assumed symmetric). *)

val factorize_regularized : ?ridge:float -> Matrix.t -> t
(** Like {!factorize} but retries with [ridge * mean_diag] added to the
    diagonal on failure, doubling the ridge up to a bound; raises
    [Not_positive_definite] only if even the heavily regularized matrix
    fails. Default initial [ridge] is [1e-10]. *)

val lower : t -> Matrix.t

val solve_vec : t -> Vector.t -> Vector.t
(** [solve_vec f b] solves [L Lᵀ x = b]. *)

val solve : Matrix.t -> Vector.t -> Vector.t
(** One-shot [factorize] + [solve_vec]. *)

val log_det : t -> float
(** Log-determinant of the factored matrix. *)
