(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the numerical
    operations the tomography code needs so that callers never index raw
    arrays by hand. All binary operations check dimensions and raise
    [Invalid_argument] on mismatch. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. Raises
    [Invalid_argument] if [n < 0]. *)

val zeros : int -> t
(** [zeros n] is the all-zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val dim : t -> int
(** Dimension of the vector. *)

val copy : t -> t
(** Fresh copy. *)

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> t -> t
(** Element-wise sum. *)

val sub : t -> t -> t
(** Element-wise difference. *)

val scale : float -> t -> t
(** [scale a x] is [a * x]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm, computed with scaling to avoid overflow. *)

val norm_inf : t -> float
(** Maximum absolute entry ([0.] for the empty vector). *)

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)] without allocating. *)

val hadamard : t -> t -> t
(** Element-wise (Hadamard) product, the [⊗] of the paper. *)

val sum : t -> float

val mean : t -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty vector. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val max_index : t -> int
(** Index of a maximal entry. Raises [Invalid_argument] on empty input. *)

val min_index : t -> int
(** Index of a minimal entry. Raises [Invalid_argument] on empty input. *)

val sort_indices : ?descending:bool -> t -> int array
(** [sort_indices v] is the permutation that sorts [v] increasingly
    (stable); [~descending:true] sorts decreasingly. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entry-wise comparison with absolute tolerance [tol] (default [1e-9]).
    Vectors of different dimensions are never equal. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]] with 6 significant digits. *)
