type stats = { iterations : int; residual_norm : float }

let solve_matfree ?(tol = 1e-10) ?max_iter ~dim ~mul b =
  if Array.length b <> dim then
    invalid_arg "Conjugate_gradient.solve_matfree: dimension mismatch";
  if tol <= 0. then invalid_arg "Conjugate_gradient: non-positive tolerance";
  let max_iter = Option.value max_iter ~default:(max 1 dim) in
  let x = Vector.zeros dim in
  let r = Vector.copy b in
  let p = Vector.copy b in
  let rs = ref (Vector.dot r r) in
  let threshold = tol *. Vector.norm2 b in
  let iters = ref 0 in
  let continue_ = ref (sqrt !rs > threshold && threshold >= 0.) in
  if Vector.norm2 b = 0. then continue_ := false;
  while !continue_ && !iters < max_iter do
    incr iters;
    let ap = mul p in
    let pap = Vector.dot p ap in
    if pap <= 0. then continue_ := false (* not SPD or converged to noise *)
    else begin
      let alpha = !rs /. pap in
      Vector.axpy alpha p x;
      Vector.axpy (-.alpha) ap r;
      let rs' = Vector.dot r r in
      if sqrt rs' <= threshold then continue_ := false
      else begin
        let beta = rs' /. !rs in
        for i = 0 to dim - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done
      end;
      rs := rs'
    end
  done;
  (x, { iterations = !iters; residual_norm = Vector.norm2 r })

let solve ?tol ?max_iter m b =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Conjugate_gradient.solve: not square";
  solve_matfree ?tol ?max_iter ~dim:n ~mul:(fun x -> Matrix.mul_vec m x) b
