lib/linalg/sparse.ml: Array Cholesky Format List Matrix
