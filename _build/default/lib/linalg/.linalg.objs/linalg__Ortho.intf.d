lib/linalg/ortho.mli: Vector
