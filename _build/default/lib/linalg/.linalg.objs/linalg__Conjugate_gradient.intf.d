lib/linalg/conjugate_gradient.mli: Matrix Vector
