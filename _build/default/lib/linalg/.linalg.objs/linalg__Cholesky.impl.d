lib/linalg/cholesky.ml: Array Float Matrix
