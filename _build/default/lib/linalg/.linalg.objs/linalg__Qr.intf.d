lib/linalg/qr.mli: Matrix Vector
