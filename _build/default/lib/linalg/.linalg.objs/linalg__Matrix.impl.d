lib/linalg/matrix.ml: Array Float Format List Vector
