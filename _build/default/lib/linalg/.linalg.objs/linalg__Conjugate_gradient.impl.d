lib/linalg/conjugate_gradient.ml: Array Matrix Option Vector
