lib/linalg/ortho.ml: Array List Vector
