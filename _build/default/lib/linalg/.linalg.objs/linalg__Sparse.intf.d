lib/linalg/sparse.mli: Format Matrix Vector
