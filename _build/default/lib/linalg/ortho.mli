(** Incremental orthonormal column basis.

    Phase 2 of the LIA algorithm repeatedly asks whether a set of routing
    matrix columns is linearly independent while columns are removed in
    variance order. This module maintains an orthonormal basis of the span
    of the columns accepted so far (modified Gram–Schmidt with one
    re-orthogonalization pass), so each test costs O(dim × basis size)
    instead of a fresh factorization. *)

type t

val create : dim:int -> t
(** Empty basis for vectors of dimension [dim]. *)

val dim : t -> int

val size : t -> int
(** Number of basis vectors, i.e. the rank of the accepted set. *)

val try_add : ?tol:float -> t -> Vector.t -> bool
(** [try_add b v] orthogonalizes [v] against the basis. If the residual has
    norm greater than [tol] (default [1e-8]) times the norm of [v], the
    normalized residual joins the basis and the call returns [true];
    otherwise the basis is unchanged and the call returns [false] ([v] is
    numerically in the span). The zero vector is always dependent. *)

val in_span : ?tol:float -> t -> Vector.t -> bool
(** Like {!try_add} but never modifies the basis. *)

val residual_norm : t -> Vector.t -> float
(** Norm of the component of [v] orthogonal to the current span. *)

val copy : t -> t
