type t = float array

let create n x =
  if n < 0 then invalid_arg "Vector.create: negative dimension";
  Array.make n x

let zeros n = create n 0.

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let get = Array.get

let set = Array.set

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg (name ^ ": dimension mismatch")

let add x y =
  check_same_dim "Vector.add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim "Vector.sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  check_same_dim "Vector.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_same_dim "Vector.dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

(* Scaled two-norm: factor out the largest magnitude so that squaring never
   overflows or underflows to zero for representable inputs. *)
let norm2 x =
  let scale_max = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0. x in
  if scale_max = 0. || Float.is_nan scale_max then scale_max
  else begin
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let r = x.(i) /. scale_max in
      acc := !acc +. (r *. r)
    done;
    scale_max *. sqrt !acc
  end

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0. x

let dist2 x y =
  check_same_dim "Vector.dist2" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let hadamard x y =
  check_same_dim "Vector.hadamard" x y;
  Array.mapi (fun i xi -> xi *. y.(i)) x

let sum x = Array.fold_left ( +. ) 0. x

let mean x =
  if Array.length x = 0 then invalid_arg "Vector.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let map = Array.map

let mapi = Array.mapi

let iteri = Array.iteri

let fold = Array.fold_left

let extreme_index name better x =
  if Array.length x = 0 then invalid_arg name;
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let max_index x = extreme_index "Vector.max_index: empty vector" ( > ) x

let min_index x = extreme_index "Vector.min_index: empty vector" ( < ) x

let sort_indices ?(descending = false) x =
  let idx = Array.init (Array.length x) (fun i -> i) in
  let cmp i j =
    let c = Float.compare x.(i) x.(j) in
    let c = if descending then -c else c in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  idx

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if Float.abs (x.(i) -. y.(i)) > tol then ok := false
       done;
       !ok
     end

let pp ppf x =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i xi ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" xi)
    x;
  Format.fprintf ppf "@]]"
