type t = {
  m : int;
  n : int;
  a : Matrix.t; (* R in and above the diagonal, Householder vectors below *)
  beta : float array; (* Householder coefficients, one per reflection *)
  piv : int array; (* piv.(j) = original index of factored column j *)
}

(* Build the Householder reflection annihilating a.(k+1..m-1, k); store the
   vector below the diagonal with the implicit convention v.(k) = 1. *)
let house_column a m k =
  let alpha = ref 0. in
  for i = k to m - 1 do
    let x = Matrix.get a i k in
    alpha := !alpha +. (x *. x)
  done;
  let alpha = sqrt !alpha in
  if alpha = 0. then 0.
  else begin
    let akk = Matrix.get a k k in
    let alpha = if akk > 0. then -.alpha else alpha in
    let v0 = akk -. alpha in
    (* v = x - alpha e1; normalize so v.(k) = 1 *)
    if v0 = 0. then 0.
    else begin
      for i = k + 1 to m - 1 do
        Matrix.set a i k (Matrix.get a i k /. v0)
      done;
      let vtv = ref 1. in
      for i = k + 1 to m - 1 do
        let v = Matrix.get a i k in
        vtv := !vtv +. (v *. v)
      done;
      Matrix.set a k k alpha;
      2. /. !vtv
    end
  end

let apply_house_to_col a m k beta j =
  (* column j of the trailing matrix: x <- x - beta v (v' x) *)
  let vtx = ref (Matrix.get a k j) in
  for i = k + 1 to m - 1 do
    vtx := !vtx +. (Matrix.get a i k *. Matrix.get a i j)
  done;
  let s = beta *. !vtx in
  Matrix.set a k j (Matrix.get a k j -. s);
  for i = k + 1 to m - 1 do
    Matrix.set a i j (Matrix.get a i j -. (s *. Matrix.get a i k))
  done

let factorize_gen ~pivot mat =
  let m = Matrix.rows mat and n = Matrix.cols mat in
  let a = Matrix.copy mat in
  let steps = min m n in
  let beta = Array.make (max steps 0) 0. in
  let piv = Array.init n (fun j -> j) in
  let colnorm2 =
    if pivot then Array.init n (fun j -> Vector.dot (Matrix.col a j) (Matrix.col a j))
    else [||]
  in
  let swap_cols j1 j2 =
    if j1 <> j2 then begin
      for i = 0 to m - 1 do
        let x = Matrix.get a i j1 in
        Matrix.set a i j1 (Matrix.get a i j2);
        Matrix.set a i j2 x
      done;
      let p = piv.(j1) in
      piv.(j1) <- piv.(j2);
      piv.(j2) <- p;
      let c = colnorm2.(j1) in
      colnorm2.(j1) <- colnorm2.(j2);
      colnorm2.(j2) <- c
    end
  in
  for k = 0 to steps - 1 do
    if pivot then begin
      let best = ref k in
      for j = k + 1 to n - 1 do
        if colnorm2.(j) > colnorm2.(!best) then best := j
      done;
      swap_cols k !best
    end;
    let b = house_column a m k in
    beta.(k) <- b;
    if b <> 0. then
      for j = k + 1 to n - 1 do
        apply_house_to_col a m k b j
      done;
    if pivot then
      for j = k + 1 to n - 1 do
        let rkj = Matrix.get a k j in
        colnorm2.(j) <- Float.max 0. (colnorm2.(j) -. (rkj *. rkj))
      done
  done;
  { m; n; a; beta; piv }

let factorize mat = factorize_gen ~pivot:false mat

let factorize_pivoted mat = factorize_gen ~pivot:true mat

let pivots f = Array.copy f.piv

let r f =
  let k = min f.m f.n in
  Matrix.init k f.n (fun i j -> if j >= i then Matrix.get f.a i j else 0.)

let rank ?(rtol = 1e-10) f =
  let k = min f.m f.n in
  let dmax = ref 0. in
  for i = 0 to k - 1 do
    dmax := Float.max !dmax (Float.abs (Matrix.get f.a i i))
  done;
  if !dmax = 0. then 0
  else begin
    let cnt = ref 0 in
    for i = 0 to k - 1 do
      if Float.abs (Matrix.get f.a i i) > rtol *. !dmax then incr cnt
    done;
    !cnt
  end

let apply_qt f b =
  if Array.length b <> f.m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Array.copy b in
  for k = 0 to Array.length f.beta - 1 do
    let beta = f.beta.(k) in
    if beta <> 0. then begin
      let vty = ref y.(k) in
      for i = k + 1 to f.m - 1 do
        vty := !vty +. (Matrix.get f.a i k *. y.(i))
      done;
      let s = beta *. !vty in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to f.m - 1 do
        y.(i) <- y.(i) -. (s *. Matrix.get f.a i k)
      done
    end
  done;
  y

let solve_r f c =
  let n = f.n in
  if f.m < n then failwith "Qr.solve_r: underdetermined system";
  if Array.length c < n then invalid_arg "Qr.solve_r: dimension mismatch";
  let x = Array.make n 0. in
  let dmax = ref 0. in
  for i = 0 to n - 1 do
    dmax := Float.max !dmax (Float.abs (Matrix.get f.a i i))
  done;
  for i = n - 1 downto 0 do
    let d = Matrix.get f.a i i in
    if Float.abs d <= 1e-13 *. !dmax || d = 0. then
      failwith "Qr.solve_r: singular triangular factor";
    let acc = ref c.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.a i j *. x.(j))
    done;
    x.(i) <- !acc /. d
  done;
  x

let least_squares f b =
  let qtb = apply_qt f b in
  let x = solve_r f qtb in
  let out = Array.make f.n 0. in
  for j = 0 to f.n - 1 do
    out.(f.piv.(j)) <- x.(j)
  done;
  out

let matrix_rank ?rtol mat = rank ?rtol (factorize_pivoted mat)

let solve mat b = least_squares (factorize mat) b
