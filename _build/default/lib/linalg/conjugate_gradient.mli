(** Conjugate gradient for symmetric positive-definite systems.

    An iterative alternative to {!Cholesky} for the normal equations
    [AᵀA v = AᵀΣ*]: O(n²) per iteration with early termination, which
    wins when the system is large and well-conditioned (the augmented
    Gram matrices of dense measurement campaigns are). Exposed both as a
    dense-matrix solve and as a matrix-free variant taking the
    matrix-vector product, so callers can keep [AᵀA] implicit. *)

type stats = { iterations : int; residual_norm : float }

val solve :
  ?tol:float ->
  ?max_iter:int ->
  Matrix.t ->
  Vector.t ->
  Vector.t * stats
(** [solve m b] for SPD [m]. Stops when the residual 2-norm falls below
    [tol * norm b] (default [tol = 1e-10]) or after [max_iter] iterations
    (default: dimension of the system). Raises [Invalid_argument] on
    non-square or mismatched inputs. *)

val solve_matfree :
  ?tol:float ->
  ?max_iter:int ->
  dim:int ->
  mul:(Vector.t -> Vector.t) ->
  Vector.t ->
  Vector.t * stats
(** Matrix-free variant: [mul x] must compute [M x] for the implicit SPD
    matrix [M]. *)
