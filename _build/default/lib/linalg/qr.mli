(** Householder orthogonal-triangular factorization.

    This is the solver the paper uses for the moment systems (Golub & Van
    Loan): [A = Q R] with [Q] orthogonal and [R] upper triangular. We keep
    the Householder vectors in factored form and never materialize [Q],
    which is all that least-squares solving and rank queries need. *)

type t
(** A factorization of an [m × n] matrix with [m ≥ 0], [n ≥ 0]. *)

val factorize : Matrix.t -> t
(** Householder QR without pivoting. *)

val factorize_pivoted : Matrix.t -> t
(** QR with column pivoting (greedy largest remaining column norm); required
    for reliable rank decisions on rank-deficient matrices. *)

val pivots : t -> int array
(** [pivots f] maps factored column position to the original column index
    (identity for an unpivoted factorization). *)

val r : t -> Matrix.t
(** The upper-triangular factor (size [min m n × n], in the pivoted column
    order if pivoting was used). *)

val rank : ?rtol:float -> t -> int
(** Numerical rank: the number of diagonal entries of [R] larger than
    [rtol * max_diag] (default [rtol = 1e-10]). Only meaningful on a pivoted
    factorization; on an unpivoted one it is a lower bound. *)

val apply_qt : t -> Vector.t -> Vector.t
(** [apply_qt f b] is [Qᵀ b] (length [m]). *)

val solve_r : t -> Vector.t -> Vector.t
(** Back-substitution on the leading [n × n] block of [R]. Raises [Failure]
    if [R] is singular to working precision. *)

val least_squares : t -> Vector.t -> Vector.t
(** [least_squares f b] minimizes [‖A x - b‖₂]; requires full column rank
    (raises [Failure] otherwise). Pivoting is undone, so the solution is in
    the original column order. *)

val matrix_rank : ?rtol:float -> Matrix.t -> int
(** Convenience: rank via pivoted QR. *)

val solve : Matrix.t -> Vector.t -> Vector.t
(** Convenience: factorize then [least_squares]. For square systems this is
    a linear solve; for tall systems the least-squares solution. *)
