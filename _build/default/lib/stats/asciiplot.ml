type layer = { mark : char; points : (float * float) list; is_line : bool }

type canvas = {
  width : int;
  height : int;
  mutable layers : layer list; (* newest first *)
}

let create ?(width = 64) ?(height = 20) () =
  if width < 8 || height < 4 then invalid_arg "Asciiplot.create: canvas too small";
  { width; height; layers = [] }

let scatter ?(mark = '*') canvas points =
  canvas.layers <- { mark; points; is_line = false } :: canvas.layers

let line ?(mark = '+') canvas points =
  canvas.layers <- { mark; points; is_line = true } :: canvas.layers

let bounds canvas =
  let all = List.concat_map (fun l -> l.points) canvas.layers in
  match all with
  | [] -> (0., 1., 0., 1.)
  | (x0, y0) :: rest ->
      let xmin, xmax, ymin, ymax =
        List.fold_left
          (fun (a, b, c, d) (x, y) ->
            (Float.min a x, Float.max b x, Float.min c y, Float.max d y))
          (x0, x0, y0, y0) rest
      in
      let pad lo hi = if lo = hi then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
      let xmin, xmax = pad xmin xmax in
      let ymin, ymax = pad ymin ymax in
      (xmin, xmax, ymin, ymax)

let render ?(x_label = "") ?(y_label = "") canvas =
  let xmin, xmax, ymin, ymax = bounds canvas in
  let grid = Array.make_matrix canvas.height canvas.width ' ' in
  let to_cell (x, y) =
    let cx =
      int_of_float
        (Float.round
           ((x -. xmin) /. (xmax -. xmin) *. float_of_int (canvas.width - 1)))
    in
    let cy =
      int_of_float
        (Float.round
           ((y -. ymin) /. (ymax -. ymin) *. float_of_int (canvas.height - 1)))
    in
    if cx < 0 || cx >= canvas.width || cy < 0 || cy >= canvas.height then None
    else Some (cx, canvas.height - 1 - cy)
  in
  let put mark p =
    match to_cell p with Some (cx, cy) -> grid.(cy).(cx) <- mark | None -> ()
  in
  (* draw oldest layers first so newer marks overwrite *)
  List.iter
    (fun layer ->
      if layer.is_line then begin
        (* sample linearly between consecutive points *)
        let sorted =
          List.sort (fun (a, _) (b, _) -> Float.compare a b) layer.points
        in
        let rec draw = function
          | (x1, y1) :: ((x2, y2) :: _ as rest) ->
              let steps = max 1 canvas.width in
              for s = 0 to steps do
                let t = float_of_int s /. float_of_int steps in
                put layer.mark (x1 +. (t *. (x2 -. x1)), y1 +. (t *. (y2 -. y1)))
              done;
              draw rest
          | [ p ] -> put layer.mark p
          | [] -> ()
        in
        draw sorted
      end
      else List.iter (put layer.mark) layer.points)
    (List.rev canvas.layers);
  let b = Buffer.create ((canvas.width + 4) * (canvas.height + 4)) in
  if y_label <> "" then Buffer.add_string b (y_label ^ "\n");
  Buffer.add_string b (Printf.sprintf "%10.4g ┤" ymax);
  Buffer.add_char b '\n';
  Array.iteri
    (fun row line_cells ->
      if row = canvas.height - 1 then
        Buffer.add_string b (Printf.sprintf "%10.4g ┤" ymin)
      else Buffer.add_string b (String.make 11 ' ' ^ "│");
      Array.iter (Buffer.add_char b) line_cells;
      Buffer.add_char b '\n')
    grid;
  Buffer.add_string b (String.make 11 ' ' ^ "└" ^ String.make canvas.width '-');
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "%s%.4g%s%.4g  %s\n" (String.make 12 ' ') xmin
       (String.make (max 1 (canvas.width - 16)) ' ')
       xmax x_label);
  Buffer.contents b

let plot_cdf ?width ?height ecdf =
  let canvas = create ?width ?height () in
  line canvas (Ecdf.curve ~points:60 ecdf);
  render ~y_label:"F(x)" canvas

let plot_series ?width ?height series =
  let canvas = create ?width ?height () in
  List.iter (fun (mark, points) -> line ~mark canvas points) series;
  render canvas
