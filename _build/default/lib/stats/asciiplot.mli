(** Plain-text plots, so the experiment harness can render the paper's
    figures (scatter, line series, CDFs) directly in terminal output.

    All plots map data into a fixed character grid with linear axes,
    print axis ranges on the frame, and are deterministic — the bench
    output diffs cleanly across runs. *)

type canvas

val create : ?width:int -> ?height:int -> unit -> canvas
(** Character grid, default 64 × 20. Raises [Invalid_argument] for
    dimensions below 8 × 4. *)

val scatter :
  ?mark:char -> canvas -> (float * float) list -> unit
(** Adds points (default mark ['*']). Multiple layers with different
    marks can be added before rendering; axis bounds grow to fit all
    layers. *)

val line :
  ?mark:char -> canvas -> (float * float) list -> unit
(** Adds a polyline sampled at the grid resolution (default mark ['+']). *)

val render :
  ?x_label:string -> ?y_label:string -> canvas -> string
(** The framed plot with numeric axis bounds. Rendering an empty canvas
    yields a frame with no points. *)

val plot_cdf : ?width:int -> ?height:int -> Ecdf.t -> string
(** Convenience: render an empirical CDF curve. *)

val plot_series :
  ?width:int -> ?height:int ->
  (char * (float * float) list) list -> string
(** Convenience: several named-mark line series on one canvas (e.g. LIA
    vs SCFS detection rates against m). *)
