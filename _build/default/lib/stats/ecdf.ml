type t = { sorted : float array }

let of_sample xs =
  if Array.length xs = 0 then invalid_arg "Ecdf.of_sample: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Number of elements <= x, by binary search for the rightmost such. *)
let count_le t x =
  let a = t.sorted in
  let n = Array.length a in
  let rec go lo hi =
    (* invariant: a.(lo-1) <= x < a.(hi) with sentinels *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let eval t x = float_of_int (count_le t x) /. float_of_int (size t)

let inverse t q =
  if q <= 0. || q > 1. then invalid_arg "Ecdf.inverse: q out of (0,1]";
  let n = size t in
  let k = int_of_float (Float.ceil (q *. float_of_int n)) in
  t.sorted.(max 0 (min (n - 1) (k - 1)))

let support t = (t.sorted.(0), t.sorted.(size t - 1))

let curve ?(points = 20) t =
  if points < 2 then invalid_arg "Ecdf.curve: need at least 2 points";
  let lo, hi = support t in
  let step = (hi -. lo) /. float_of_int (points - 1) in
  List.init points (fun i ->
      let x = if i = points - 1 then hi else lo +. (float_of_int i *. step) in
      (x, eval t x))
