(** Empirical cumulative distribution functions.

    Figures 6 and 9 of the paper plot CDFs of inference errors; this module
    builds them and samples them at given points for textual plots. *)

type t

val of_sample : float array -> t
(** Raises [Invalid_argument] on an empty sample. *)

val eval : t -> float -> float
(** [eval t x] is the fraction of the sample that is [<= x]. *)

val inverse : t -> float -> float
(** [inverse t q] for [q] in (0, 1]: the [q]-th empirical quantile
    (smallest sample value [x] with [eval t x >= q]). *)

val size : t -> int

val support : t -> float * float
(** Minimum and maximum of the sample. *)

val curve : ?points:int -> t -> (float * float) list
(** [(x, F(x))] pairs at [points] (default 20) evenly spaced abscissae
    spanning the support, suitable for printing a figure as a table. *)
