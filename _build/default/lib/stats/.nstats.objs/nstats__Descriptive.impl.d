lib/stats/descriptive.ml: Array Float Linalg
