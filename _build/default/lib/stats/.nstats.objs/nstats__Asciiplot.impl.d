lib/stats/asciiplot.ml: Array Buffer Ecdf Float List Printf String
