lib/stats/online.ml:
