lib/stats/asciiplot.mli: Ecdf
