lib/stats/ecdf.mli:
