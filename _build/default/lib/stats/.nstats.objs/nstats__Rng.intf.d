lib/stats/rng.mli:
