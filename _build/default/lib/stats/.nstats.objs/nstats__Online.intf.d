lib/stats/online.mli:
