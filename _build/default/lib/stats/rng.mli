(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator (topology generation, loss
    models, probe sampling) draws from an explicit [Rng.t] so that whole
    experiments are reproducible from a single seed and independent
    subsystems can be given independent streams via {!split}.

    The generator is xoshiro256++ seeded through splitmix64, which is more
    than adequate for simulation workloads and has no global state. *)

type t

val create : int -> t
(** [create seed] builds a generator from any integer seed. *)

val split : t -> t
(** A new generator statistically independent from the parent; both may be
    used afterwards. Used to give each link / path / snapshot its own
    stream. *)

val copy : t -> t
(** Clone with identical future output. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53 bits of precision. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [a, b). Requires [a <= b]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] with mean [1/rate]. Requires [rate > 0]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) sequence (support {0,1,2,...}). Requires [0 < p <= 1]. *)

val binomial : t -> int -> float -> int
(** [binomial t n p]: number of successes in [n] Bernoulli([p]) trials.
    Uses inversion for small [n*p] and a normal approximation guarded to
    the valid range for large [n] so that million-probe snapshots stay
    cheap. *)

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val poisson : t -> float -> int
(** [poisson t lambda]: Knuth's method below [lambda = 30], a clamped
    normal approximation above. Requires [lambda >= 0]. *)

val pareto : t -> float -> float -> float
(** [pareto t alpha xmin]: Pareto with shape [alpha] and scale [xmin]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct values from
    [0..n-1], in random order. Requires [0 <= k <= n]. *)
