type t = { mutable n : int; mutable mu : float; mutable m2 : float }

let create () = { n = 0; mu = 0.; m2 = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu))

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mu

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let variance_population t = if t.n = 0 then 0. else t.m2 /. float_of_int t.n

let std t = sqrt (variance t)

let merge a b =
  if a.n = 0 then { n = b.n; mu = b.mu; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mu = a.mu; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let delta = b.mu -. a.mu in
    let nf = float_of_int n in
    let mu = a.mu +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mu; m2 }
  end

module Cov = struct
  type t = {
    mutable n : int;
    mutable mux : float;
    mutable muy : float;
    mutable cxy : float;
    mutable m2x : float;
    mutable m2y : float;
  }

  let create () = { n = 0; mux = 0.; muy = 0.; cxy = 0.; m2x = 0.; m2y = 0. }

  let add t x y =
    t.n <- t.n + 1;
    let nf = float_of_int t.n in
    let dx = x -. t.mux in
    let dy = y -. t.muy in
    t.mux <- t.mux +. (dx /. nf);
    t.muy <- t.muy +. (dy /. nf);
    t.cxy <- t.cxy +. (dx *. (y -. t.muy));
    t.m2x <- t.m2x +. (dx *. (x -. t.mux));
    t.m2y <- t.m2y +. (dy *. (y -. t.muy))

  let count t = t.n

  let covariance t = if t.n < 2 then 0. else t.cxy /. float_of_int (t.n - 1)

  let correlation t =
    if t.n < 2 then 0.
    else begin
      let denom = sqrt (t.m2x *. t.m2y) in
      if denom = 0. then 0. else t.cxy /. denom
    end
end
