type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used for seeding and splitting. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let uint64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (uint64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t a b =
  if a > b then invalid_arg "Rng.uniform: empty interval";
  a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* rejection sampling to avoid modulo bias *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (uint64 t) 1 in
    (* r uniform in [0, 2^63) *)
    let v = Int64.rem r n64 in
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int n64) in
    if Int64.compare r limit >= 0 then draw () else Int64.to_int v
  in
  draw ()

let bool t p = float t < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: non-positive rate";
  -.log1p (-.float t) /. rate

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p out of range";
  if p = 1. then 0
  else begin
    let u = float t in
    (* floor(log(1-u)/log(1-p)) *)
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))
  end

let gaussian t =
  let rec draw () =
    let u1 = float t in
    if u1 = 0. then draw ()
    else begin
      let u2 = float t in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
    end
  in
  draw ()

let binomial t n p =
  if n < 0 then invalid_arg "Rng.binomial: negative count";
  if p <= 0. then 0
  else if p >= 1. then n
  else begin
    let mean = float_of_int n *. p in
    if n <= 64 || mean < 16. || float_of_int n -. mean < 16. then begin
      (* direct simulation / waiting-time method for the small regime *)
      if mean < 16. then begin
        (* count successes via geometric gaps: O(np) expected *)
        let count = ref 0 and pos = ref (geometric t p) in
        while !pos < n do
          incr count;
          pos := !pos + 1 + geometric t p
        done;
        !count
      end
      else begin
        let c = ref 0 in
        for _ = 1 to n do
          if bool t p then incr c
        done;
        !c
      end
    end
    else begin
      (* normal approximation with continuity correction, clamped *)
      let sd = sqrt (mean *. (1. -. p)) in
      let x = Float.round (mean +. (sd *. gaussian t)) in
      let x = Float.max 0. (Float.min (float_of_int n) x) in
      int_of_float x
    end
  end

let poisson t lambda =
  if lambda < 0. then invalid_arg "Rng.poisson: negative rate";
  if lambda = 0. then 0
  else if lambda < 30. then begin
    (* Knuth: multiply uniforms until below e^-lambda *)
    let limit = exp (-.lambda) in
    let k = ref 0 and p = ref 1. in
    let continue_ = ref true in
    while !continue_ do
      p := !p *. float t;
      if !p <= limit then continue_ := false else incr k
    done;
    !k
  end
  else begin
    let x = Float.round (lambda +. (sqrt lambda *. gaussian t)) in
    int_of_float (Float.max 0. x)
  end

let pareto t alpha xmin =
  if alpha <= 0. || xmin <= 0. then invalid_arg "Rng.pareto: non-positive parameter";
  xmin /. ((1. -. float t) ** (1. /. alpha))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement: bad k";
  (* partial Fisher-Yates over 0..n-1 *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done;
  Array.sub a 0 k
