(** Fixed-width histograms, used to bin the mean-vs-variance scatter of
    Figure 3 and to summarize loss-rate distributions in reports. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Raises [Invalid_argument] unless [lo < hi] and [bins > 0]. Values
    outside [lo, hi) are counted in saturated edge bins. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of added values. *)

val bin_count : t -> int -> int
(** Number of values in bin [i]. *)

val bins : t -> int

val bin_bounds : t -> int -> float * float
(** Lower and upper edge of bin [i]. *)

val bin_of : t -> float -> int
(** Index of the bin a value falls in (clamped to the edge bins). *)

val normalized : t -> float array
(** Bin frequencies summing to 1 (all zeros when empty). *)

val pp : Format.formatter -> t -> unit
(** One line per non-empty bin with a crude bar. *)
