(** Online (single-pass) moment accumulators.

    Welford's algorithm for mean/variance and its bivariate extension for
    covariance. These are used to accumulate statistics over snapshot
    streams without storing them, and as a numerically stable reference for
    the batch covariance estimator of eq. (7). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance (divides by [n-1]); 0 when fewer than two
    observations. *)

val variance_population : t -> float
(** Population variance (divides by [n]); 0 when empty. *)

val std : t -> float

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford merge). *)

(** Bivariate accumulator for covariances. *)
module Cov : sig
  type t

  val create : unit -> t

  val add : t -> float -> float -> unit

  val count : t -> int

  val covariance : t -> float
  (** Unbiased sample covariance; 0 when fewer than two pairs. *)

  val correlation : t -> float
  (** Pearson correlation; 0 when either marginal variance vanishes. *)
end
