type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: empty range";
  if bins <= 0 then invalid_arg "Histogram.create: no bins";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_of t x =
  let nb = bins t in
  let raw = int_of_float (float_of_int nb *. (x -. t.lo) /. (t.hi -. t.lo)) in
  max 0 (min (nb - 1) raw)

let add t x =
  let i = bin_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bin_count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_count: bad index";
  t.counts.(i)

let bin_bounds t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_bounds: bad index";
  let w = (t.hi -. t.lo) /. float_of_int (bins t) in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let normalized t =
  if t.total = 0 then Array.make (bins t) 0.
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  let width = 40 in
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (c * width / maxc) '#' in
        Format.fprintf ppf "[%.4g, %.4g) %6d %s@," lo hi c bar
      end)
    t.counts;
  Format.fprintf ppf "@]"
