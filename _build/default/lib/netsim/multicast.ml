module Rng = Nstats.Rng
module Sparse = Linalg.Sparse
module Routing = Topology.Routing
module Loss_model = Lossmodel.Loss_model

type tree = {
  parent : int array;
  children : int array array;
  order : int array;
  leaf_of_path : int array;
}

(* Ordered virtual-link sequence of a path: map its physical edge order
   through edge_vlink, collapsing repeats (alias groups are contiguous on
   a tree path). *)
let vlink_sequence (red : Routing.reduced) (p : Topology.Path.t) =
  let seq = ref [] in
  Array.iter
    (fun e ->
      let v = red.Routing.edge_vlink.(e) in
      match !seq with
      | last :: _ when last = v -> ()
      | l -> seq := v :: l)
    p.Topology.Path.edges;
  Array.of_list (List.rev !seq)

let tree_of_routing (red : Routing.reduced) =
  let nc = Array.length red.Routing.vlinks in
  let parent = Array.make nc (-2) in
  let np = Array.length red.Routing.paths in
  let leaf_of_path = Array.make np (-1) in
  Array.iteri
    (fun i p ->
      let seq = vlink_sequence red p in
      let n = Array.length seq in
      if n = 0 then invalid_arg "Multicast.tree_of_routing: empty path";
      leaf_of_path.(i) <- seq.(n - 1);
      Array.iteri
        (fun pos v ->
          let par = if pos = 0 then -1 else seq.(pos - 1) in
          if parent.(v) = -2 then parent.(v) <- par
          else if parent.(v) <> par then
            invalid_arg "Multicast.tree_of_routing: paths do not form a tree")
        seq)
    red.Routing.paths;
  Array.iteri
    (fun v p ->
      if p = -2 then
        invalid_arg
          (Printf.sprintf "Multicast.tree_of_routing: uncovered virtual link %d" v))
    parent;
  let child_lists = Array.make nc [] in
  Array.iteri
    (fun v p -> if p >= 0 then child_lists.(p) <- v :: child_lists.(p))
    parent;
  let children = Array.map (fun l -> Array.of_list (List.rev l)) child_lists in
  (* topological order by BFS from the roots *)
  let order = Array.make nc 0 in
  let k = ref 0 in
  let q = Queue.create () in
  Array.iteri (fun v p -> if p = -1 then Queue.add v q) parent;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order.(!k) <- v;
    incr k;
    Array.iter (fun c -> Queue.add c q) children.(v)
  done;
  if !k <> nc then invalid_arg "Multicast.tree_of_routing: cycle detected";
  { parent; children; order; leaf_of_path }

type observation = {
  loss_rates : float array;
  realized : float array;
  congested : bool array;
  gamma : float array;
  received : int array;
}

let link_bad_intervals rng (config : Snapshot.config) rate ~steps =
  match config.Snapshot.process with
  | Snapshot.Gilbert stay_bad ->
      let chain = Lossmodel.Gilbert.make ~stay_bad ~loss_rate:rate () in
      Lossmodel.Gilbert.bad_intervals rng chain ~steps
  | Snapshot.Bernoulli -> Lossmodel.Bernoulli.bad_intervals rng ~rate ~steps

let observe rng config ~congested tree =
  let nc = Array.length tree.parent in
  if Array.length congested <> nc then
    invalid_arg "Multicast.observe: status vector length mismatch";
  let s = config.Snapshot.probes in
  if s <= 0 then invalid_arg "Multicast.observe: probes <= 0";
  let sf = float_of_int s in
  let loss_rates =
    Array.map
      (fun c ->
        if c then Loss_model.draw_congested rng config.Snapshot.model
        else Loss_model.draw_good rng config.Snapshot.model)
      congested
  in
  let bad =
    Array.map (fun rate -> link_bad_intervals rng config rate ~steps:s) loss_rates
  in
  let realized =
    Array.map (fun iv -> float_of_int (Intervals.total_length iv) /. sf) bad
  in
  (* top-down: lost(v) = probes dead at or above v, as a disjoint interval
     union *)
  let lost = Array.make nc [] in
  Array.iter
    (fun v ->
      let above = if tree.parent.(v) < 0 then [] else lost.(tree.parent.(v)) in
      lost.(v) <- Intervals.union [ above; bad.(v) ])
    tree.order;
  (* bottom-up: heard(v) = probes received by >= 1 destination in the
     subtree of v. Destinations are the final links of paths; an internal
     link can also terminate a path (a destination with children serving
     other destinations), so seed every path's leaf link. *)
  let heard = Array.make nc [] in
  let is_leaf_link = Array.make nc false in
  Array.iter (fun v -> is_leaf_link.(v) <- true) tree.leaf_of_path;
  for k = nc - 1 downto 0 do
    let v = tree.order.(k) in
    let own =
      if is_leaf_link.(v) then
        (* complement of lost(v) within [0, S) *)
        let rec complement pos = function
          | [] -> if pos < s then [ (pos, s) ] else []
          | (a, b) :: rest ->
              if pos < a then (pos, a) :: complement b rest else complement b rest
        in
        [ complement 0 lost.(v) ]
      else []
    in
    let from_children = Array.to_list (Array.map (fun c -> heard.(c)) tree.children.(v)) in
    heard.(v) <- Intervals.union (own @ from_children)
  done;
  let gamma =
    Array.init nc (fun v -> float_of_int (Intervals.total_length heard.(v)) /. sf)
  in
  let received =
    Array.map
      (fun leaf -> s - Intervals.total_length lost.(leaf))
      tree.leaf_of_path
  in
  { loss_rates; realized; congested = Array.copy congested; gamma; received }
