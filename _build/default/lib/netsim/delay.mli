(** Delay measurements — the substrate for the paper's first extension
    (Section 8): inferring link delays from end-to-end delay measurements
    using second-order statistics.

    Each link has a fixed propagation delay plus a per-snapshot queueing
    delay: congested links queue heavily and variably, good links barely
    at all — the delay analogue of Assumption S.3. A path's measurement is
    the average one-way delay of its [S] probes, so the per-path sampling
    noise shrinks like [jitter / sqrt S]. End-to-end delays are directly
    linear in link delays ([Y = R X], no logarithms). *)

type config = {
  propagation_lo : float;  (** per-link propagation delay range, ms *)
  propagation_hi : float;
  good_queue_hi : float;  (** max mean queueing of an un-congested link, ms *)
  congested_queue_lo : float;  (** mean queueing range of a congested link, ms *)
  congested_queue_hi : float;
  jitter : float;  (** per-probe delay standard deviation, ms *)
  congestion_prob : float;  (** the paper's [p] *)
  probes : int;  (** the paper's [S] *)
}

val default_config : config
(** Propagation U[1, 10] ms, good queueing U[0, 0.3] ms, congested
    queueing U[20, 100] ms, jitter 5 ms, [p] = 0.1, [S] = 1000. *)

type network = {
  propagation : float array;  (** fixed per-link propagation delays *)
}

type t = {
  queueing : float array;  (** mean queueing delay per link this snapshot *)
  congested : bool array;
  y : float array;  (** measured average path delay (ms) per path *)
}

val make_network : Nstats.Rng.t -> config -> links:int -> network
(** Draws the static propagation delays. *)

val generate :
  Nstats.Rng.t -> config -> network -> congested:bool array ->
  Linalg.Sparse.t -> t
(** One delay snapshot: queueing delays drawn conditional on the statuses,
    path measurements are sums over links plus averaged jitter. *)

val run :
  Nstats.Rng.t -> config -> network -> Linalg.Sparse.t -> count:int ->
  t array * Linalg.Matrix.t
(** A campaign over a fixed set of trouble-prone links (drawn with
    probability [congestion_prob]), each queueing heavily in roughly half
    of the snapshots: the episodic pattern keeps per-path minima at the
    propagation-only baseline. Returns the snapshots and the
    [count × n_p] measurement matrix. *)
