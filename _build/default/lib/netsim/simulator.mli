(** Multi-snapshot measurement campaigns.

    The LIA algorithm consumes [m] snapshots to learn variances and one
    further snapshot on which it infers loss rates; this module runs such
    campaigns and packages the log-measurement matrix [Y].

    Congestion status evolves across snapshots according to a
    {!status_dynamics}. The paper's simulations treat congestion as a
    stable link property over the measurement window ([Static] — this is
    what makes the learnt variances predictive of the target snapshot),
    while its PlanetLab measurements show real congestion episodes lasting
    about one snapshot ([Markov] with low persistence approximates that
    regime; [Iid] is the memoryless extreme). *)

type status_dynamics =
  | Static  (** drawn once, fixed for the whole campaign *)
  | Iid  (** redrawn independently every snapshot *)
  | Markov of float
      (** the float is P(stay congested); the congested→good transition is
          set so the stationary congestion probability stays [p] *)
  | Hetero of { stay : float; active : float }
      (** heterogeneous links, the realistic Internet regime: a fraction
          [p] of links (drawn once) is {e trouble-prone} and alternates
          congestion episodes with persistence [stay] and stationary
          activity [active]; the rest never congests. Chronic identity of
          the bad links is what the paper's PlanetLab data shows and what
          makes learnt variances predictive across snapshots. *)

type run = {
  snapshots : Snapshot.t array;
  y : Linalg.Matrix.t;  (** row [l] = the [y] vector of snapshot [l] *)
}

val evolve_statuses :
  Nstats.Rng.t -> Snapshot.config -> status_dynamics -> bool array -> bool array
(** One dynamics step from the given status vector (identity for
    [Static]). *)

val run :
  ?dynamics:status_dynamics ->
  Nstats.Rng.t ->
  Snapshot.config ->
  Linalg.Sparse.t ->
  count:int ->
  run
(** [run rng config r ~count] generates [count] snapshots (default
    dynamics [Static]). Raises [Invalid_argument] when [count <= 0] or the
    [Markov] persistence is outside [0, 1). *)

val measurements : run -> Linalg.Matrix.t
(** The [count × n_p] matrix of log path transmission rates. *)

val split_learning : run -> learning:int -> Linalg.Matrix.t * Snapshot.t
(** [(y_first, target)] where [y_first] holds the first [learning] rows
    and [target] is snapshot [learning] (0-based) — the "(m+1)-th
    snapshot" of the paper. Requires [learning < count]. *)

val mean_variance_per_path : run -> (float * float) array
(** Per path: sample mean and variance of the measured {e loss} rates
    [1 - φ̂] across the run's snapshots (the quantities scattered in
    Figure 3). *)
