(** Plain-text serialization of measurement campaigns.

    Format:
    {v
    netloss-measurements 1 <snapshots> <paths>
    <y_0,0> <y_0,1> ... <y_0,np-1>
    ...
    v}
    One row per snapshot of log path transmission rates (or delays, for
    the delay extension — the format is unit-agnostic). Blank lines and
    [#] comments are ignored. *)

val to_string : Linalg.Matrix.t -> string

val of_string : string -> Linalg.Matrix.t
(** Raises [Failure] on malformed input or row-count mismatches. *)

val save : string -> Linalg.Matrix.t -> unit

val load : string -> Linalg.Matrix.t
