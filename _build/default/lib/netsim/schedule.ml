module Rng = Nstats.Rng

type config = {
  probe_bytes : int;
  inter_probe_ms : float;
  probes : int;
  rate_limit_bytes_per_s : float;
}

let default_config =
  { probe_bytes = 40; inter_probe_ms = 10.; probes = 1000;
    rate_limit_bytes_per_s = 100_000. }

type t = {
  rounds : int array array;
  snapshot_seconds : float;
  beacon_bandwidth : (int * float) list;
}

let validate config =
  if config.probe_bytes <= 0 || config.probes <= 0 then
    invalid_arg "Schedule: non-positive probe parameters";
  if config.inter_probe_ms <= 0. then invalid_arg "Schedule: non-positive spacing";
  if config.rate_limit_bytes_per_s <= 0. then
    invalid_arg "Schedule: non-positive rate limit"

(* one train sends a probe every inter_probe_ms *)
let train_bytes_per_s config =
  float_of_int config.probe_bytes *. (1000. /. config.inter_probe_ms)

let concurrent_paths_per_beacon config =
  validate config;
  int_of_float (config.rate_limit_bytes_per_s /. train_bytes_per_s config)

let build rng config (red : Topology.Routing.reduced) =
  validate config;
  let quota = concurrent_paths_per_beacon config in
  if quota < 1 then
    invalid_arg "Schedule.build: rate limit below a single probe train";
  (* group path indices by beacon, in randomized destination order *)
  let by_beacon = Hashtbl.create 16 in
  Array.iteri
    (fun idx (p : Topology.Path.t) ->
      let b = p.Topology.Path.src in
      Hashtbl.replace by_beacon b
        (idx :: Option.value ~default:[] (Hashtbl.find_opt by_beacon b)))
    red.Topology.Routing.paths;
  let queues =
    Hashtbl.fold
      (fun beacon idxs acc ->
        let a = Array.of_list idxs in
        Rng.shuffle rng a;
        (beacon, ref (Array.to_list a)) :: acc)
      by_beacon []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* rounds: each beacon contributes up to [quota] paths per round *)
  let rounds = ref [] in
  let remaining = ref (Array.length red.Topology.Routing.paths) in
  while !remaining > 0 do
    let this_round = ref [] in
    List.iter
      (fun (_, q) ->
        let rec take n =
          if n > 0 then begin
            match !q with
            | [] -> ()
            | idx :: rest ->
                q := rest;
                this_round := idx :: !this_round;
                decr remaining;
                take (n - 1)
          end
        in
        take quota)
      queues;
    rounds := Array.of_list (List.rev !this_round) :: !rounds
  done;
  let rounds = Array.of_list (List.rev !rounds) in
  let train_seconds =
    float_of_int config.probes *. config.inter_probe_ms /. 1000.
  in
  let snapshot_seconds = float_of_int (Array.length rounds) *. train_seconds in
  let beacon_bandwidth =
    List.map
      (fun (beacon, _) ->
        let paths =
          Array.fold_left
            (fun acc (p : Topology.Path.t) ->
              if p.Topology.Path.src = beacon then acc + 1 else acc)
            0 red.Topology.Routing.paths
        in
        let concurrent = min quota paths in
        (beacon, float_of_int concurrent *. train_bytes_per_s config))
      queues
  in
  { rounds; snapshot_seconds; beacon_bandwidth }
