(** One network snapshot (Section 3.3): a loss rate per (virtual) link
    drawn from the loss model conditional on each link's congestion
    status, and the measurement of [S] probes on every path.

    Which links are congested is decided by the caller (see
    {!Simulator.status_dynamics}): congestion is a property of a link
    that persists across snapshots, while the loss {e rate} of a
    congested link is redrawn every snapshot — this across-snapshot
    variability is exactly the second-order signal LIA learns. *)

type process =
  | Gilbert of float  (** bursty on/off losses; the float is P(stay bad) *)
  | Bernoulli  (** independent per-probe losses *)

type fidelity =
  | Packet_level
      (** one loss process per link, shared by every path crossing it:
          probe [t] of any path sees the same link state — the physical
          picture behind Assumption S.1 (losses on a link hit all flows
          through it), and the paper's spatial-correlation premise *)
  | Packet_per_path
      (** ablation: an independent copy of the link process per (path,
          link) pair; S.1 then only holds in expectation and the extra
          per-path sampling noise propagates into the inference *)
  | Flow_level
      (** the path delivery count is binomial with the product rate; this
          is exact for [Bernoulli] per-path losses and an approximation
          for [Gilbert] *)

type config = {
  model : Lossmodel.Loss_model.t;
  process : process;
  fidelity : fidelity;
  congestion_prob : float;  (** the paper's [p] *)
  probes : int;  (** the paper's [S] *)
}

val default_config : Lossmodel.Loss_model.t -> config
(** Paper defaults: Gilbert with stay-bad 0.35, packet level, [p] = 0.1,
    [S] = 1000. *)

type t = {
  loss_rates : float array;
      (** target loss rate per link (column) drawn for this slot *)
  realized : float array;
      (** realized loss fraction per link over the slot's [S] probe times:
          the fraction of an ideal probe train the link actually dropped.
          For the shared packet-level fidelity this is the measured ground
          truth (a bursty chain realizes its target rate only up to
          sampling noise); for the other fidelities it equals
          [loss_rates]. *)
  congested : bool array;  (** congestion status per link *)
  received : int array;  (** probes received per path (row) *)
  y : float array;  (** [log] of the measured path transmission rate *)
}

val draw_statuses : Nstats.Rng.t -> config -> links:int -> bool array
(** Independent congested-with-probability-[p] draws, one per link. *)

val generate :
  Nstats.Rng.t -> config -> congested:bool array -> Linalg.Sparse.t -> t
(** [generate rng config ~congested r] draws loss rates conditional on the
    given statuses and measures all paths of routing matrix [r]. Paths
    that lose every probe are clamped to half a probe received so that
    [y] stays finite. Raises [Invalid_argument] on a config with
    [probes <= 0], [congestion_prob] outside [0, 1], or a status vector
    whose length is not the column count of [r]. *)

val path_transmission : t -> int -> float
(** Measured transmission rate [φ̂] of path [i]. *)

val true_path_transmission : Linalg.Sparse.t -> t -> int -> float
(** Product of the true link transmission rates along path [i] — the
    transmission rate a noiseless measurement would see. *)
