(** Half-open integer intervals and their unions.

    The packet-level simulator represents each link's bad (dropping)
    periods as intervals of probe indices; a probe on a path is lost when
    it falls in the union of the bad intervals of the path's links. *)

val total_length : (int * int) list -> int
(** Sum of interval lengths, assuming disjoint intervals. *)

val union : (int * int) list list -> (int * int) list
(** Union of several interval lists into disjoint sorted intervals. The
    inputs need not be sorted; empty ([b <= a]) intervals are ignored. *)

val union_length : (int * int) list list -> int
(** [total_length (union ls)] without building the intermediate list. *)

val complement_length : steps:int -> (int * int) list list -> int
(** Number of points of [0, steps) outside the union (the probes that
    survive). Intervals are clipped to [0, steps). *)
