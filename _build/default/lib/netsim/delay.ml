module Rng = Nstats.Rng
module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

type config = {
  propagation_lo : float;
  propagation_hi : float;
  good_queue_hi : float;
  congested_queue_lo : float;
  congested_queue_hi : float;
  jitter : float;
  congestion_prob : float;
  probes : int;
}

let default_config =
  {
    propagation_lo = 1.;
    propagation_hi = 10.;
    good_queue_hi = 0.3;
    congested_queue_lo = 20.;
    congested_queue_hi = 100.;
    jitter = 5.;
    congestion_prob = 0.1;
    probes = 1000;
  }

type network = { propagation : float array }

type t = { queueing : float array; congested : bool array; y : float array }

let validate config =
  if config.probes <= 0 then invalid_arg "Delay: probes <= 0";
  if config.congestion_prob < 0. || config.congestion_prob > 1. then
    invalid_arg "Delay: congestion_prob out of [0,1]";
  if
    config.propagation_lo < 0.
    || config.propagation_hi < config.propagation_lo
    || config.good_queue_hi < 0.
    || config.congested_queue_hi < config.congested_queue_lo
    || config.jitter < 0.
  then invalid_arg "Delay: inconsistent delay ranges"

let make_network rng config ~links =
  validate config;
  if links < 0 then invalid_arg "Delay.make_network: negative link count";
  let propagation =
    Array.init links (fun _ ->
        Rng.uniform rng config.propagation_lo config.propagation_hi)
  in
  { propagation }

let generate rng config network ~congested r =
  validate config;
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length network.propagation <> nc then
    invalid_arg "Delay.generate: network size mismatch";
  if Array.length congested <> nc then
    invalid_arg "Delay.generate: status vector length mismatch";
  let queueing =
    Array.map
      (fun c ->
        if c then Rng.uniform rng config.congested_queue_lo config.congested_queue_hi
        else Rng.uniform rng 0. config.good_queue_hi)
      congested
  in
  (* averaging S probes shrinks the per-probe jitter on each path *)
  let noise_sd = config.jitter /. sqrt (float_of_int config.probes) in
  let y =
    Array.init np (fun i ->
        let total =
          Array.fold_left
            (fun acc j -> acc +. network.propagation.(j) +. queueing.(j))
            0. (Sparse.row r i)
        in
        total +. (noise_sd *. Rng.gaussian rng))
  in
  { queueing; congested = Array.copy congested; y }

let run rng config network r ~count =
  if count <= 0 then invalid_arg "Delay.run: count <= 0";
  let nc = Sparse.cols r in
  (* trouble-prone links (fraction p) queue heavily in about half the
     snapshots; the episodes make every path's minimum a clean
     propagation-only baseline *)
  let prone = Array.init nc (fun _ -> Rng.bool rng config.congestion_prob) in
  let snaps =
    Array.init count (fun _ ->
        let congested = Array.map (fun pr -> pr && Rng.bool rng 0.5) prone in
        generate rng config network ~congested r)
  in
  let y = Matrix.init count (Sparse.rows r) (fun l i -> snaps.(l).y.(i)) in
  (snaps, y)
