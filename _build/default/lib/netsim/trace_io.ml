module Matrix = Linalg.Matrix

let to_string y =
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Printf.sprintf "netloss-measurements 1 %d %d\n" (Matrix.rows y) (Matrix.cols y));
  for l = 0 to Matrix.rows y - 1 do
    for i = 0 to Matrix.cols y - 1 do
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%.17g" (Matrix.get y l i))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "empty measurement file"
  | header :: rows -> (
      match String.split_on_char ' ' header |> List.filter (fun w -> w <> "") with
      | [ "netloss-measurements"; "1"; m; np ] ->
          let m = int_of_string m and np = int_of_string np in
          if List.length rows <> m then failwith "row count mismatch";
          let parse_row line =
            let cells =
              String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
            in
            if List.length cells <> np then failwith "column count mismatch";
            Array.of_list (List.map float_of_string cells)
          in
          let data = Array.of_list (List.map parse_row rows) in
          Matrix.init m np (fun l i -> data.(l).(i))
      | _ -> failwith "missing netloss-measurements header")

let save path y =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "measurements" ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_string y)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
