let total_length l = List.fold_left (fun acc (a, b) -> acc + b - a) 0 l

let sweep ls ~f =
  let all = List.concat ls |> List.filter (fun (a, b) -> b > a) in
  let sorted = List.sort compare all in
  (* fold disjoint maximal runs, calling [f lo hi] for each *)
  let rec go cur = function
    | [] -> (match cur with Some (lo, hi) -> f lo hi | None -> ())
    | (a, b) :: rest -> (
        match cur with
        | None -> go (Some (a, b)) rest
        | Some (lo, hi) ->
            if a <= hi then go (Some (lo, max hi b)) rest
            else begin
              f lo hi;
              go (Some (a, b)) rest
            end)
  in
  go None sorted

let union ls =
  let acc = ref [] in
  sweep ls ~f:(fun lo hi -> acc := (lo, hi) :: !acc);
  List.rev !acc

let union_length ls =
  let n = ref 0 in
  sweep ls ~f:(fun lo hi -> n := !n + hi - lo);
  !n

let complement_length ~steps ls =
  if steps < 0 then invalid_arg "Intervals.complement_length: negative range";
  let covered = ref 0 in
  sweep ls ~f:(fun lo hi ->
      let lo = max 0 lo and hi = min steps hi in
      if hi > lo then covered := !covered + hi - lo);
  steps - !covered
