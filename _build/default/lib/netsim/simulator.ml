module Matrix = Linalg.Matrix
module Sparse = Linalg.Sparse
module Rng = Nstats.Rng

type status_dynamics =
  | Static
  | Iid
  | Markov of float
  | Hetero of { stay : float; active : float }

type run = { snapshots : Snapshot.t array; y : Matrix.t }

(* Markov step keeping a given stationary probability. *)
let markov_step rng ~stay ~stationary c =
  if stay < 0. || stay >= 1. then
    invalid_arg "Simulator: Markov persistence out of [0,1)";
  if c then Rng.bool rng stay
  else begin
    let to_congested =
      if stationary >= 1. then 1.
      else Float.min 1. (stationary *. (1. -. stay) /. (1. -. stationary))
    in
    Rng.bool rng to_congested
  end

let evolve_statuses rng config dynamics statuses =
  match dynamics with
  | Static -> statuses
  | Iid -> Snapshot.draw_statuses rng config ~links:(Array.length statuses)
  | Markov stay ->
      let p = config.Snapshot.congestion_prob in
      Array.map (fun c -> markov_step rng ~stay ~stationary:p c) statuses
  | Hetero _ ->
      invalid_arg "Simulator.evolve_statuses: Hetero needs the prone mask; use run"

let run ?(dynamics = Static) rng config r ~count =
  if count <= 0 then invalid_arg "Simulator.run: count <= 0";
  let links = Sparse.cols r in
  (* For Hetero dynamics the paper's [p] selects the chronically
     trouble-prone links, drawn once; only those ever congest. *)
  let initial, step =
    match dynamics with
    | Hetero { stay; active } ->
        if active <= 0. || active >= 1. then
          invalid_arg "Simulator: Hetero activity out of (0,1)";
        let prone = Snapshot.draw_statuses rng config ~links in
        let initial = Array.map (fun pr -> pr && Rng.bool rng active) prone in
        let step statuses =
          Array.mapi
            (fun k c -> prone.(k) && markov_step rng ~stay ~stationary:active c)
            statuses
        in
        (initial, step)
    | Static | Iid | Markov _ ->
        ( Snapshot.draw_statuses rng config ~links,
          fun statuses -> evolve_statuses rng config dynamics statuses )
  in
  let statuses = ref initial in
  let snapshots =
    Array.init count (fun l ->
        if l > 0 then statuses := step !statuses;
        Snapshot.generate rng config ~congested:!statuses r)
  in
  let np = Sparse.rows r in
  let y = Matrix.init count np (fun l i -> snapshots.(l).Snapshot.y.(i)) in
  { snapshots; y }

let measurements run = Matrix.copy run.y

let split_learning run ~learning =
  let count = Array.length run.snapshots in
  if learning <= 0 || learning >= count then
    invalid_arg "Simulator.split_learning: need 0 < learning < count";
  let np = Matrix.cols run.y in
  let first = Matrix.init learning np (fun l i -> Matrix.get run.y l i) in
  (first, run.snapshots.(learning))

let mean_variance_per_path run =
  let np = Matrix.cols run.y in
  Array.init np (fun i ->
      let losses =
        Array.map
          (fun (s : Snapshot.t) -> 1. -. (exp s.Snapshot.y.(i)))
          run.snapshots
      in
      (Nstats.Descriptive.mean losses, Nstats.Descriptive.variance losses))
