(** Multicast probing on tree topologies.

    The first family in the paper's Table 1 ([6, 7, 9]) infers link loss
    from {e multicast} probes: one packet fans out from the root, so every
    receiver's observation of the same probe is perfectly temporally
    correlated, and the joint reception pattern identifies per-link rates
    (MINC, Cáceres et al. 1999). The paper's motivation is that multicast
    is not deployable on today's Internet — but as a simulated gold
    standard it bounds what LIA's unicast-only inference can be compared
    against.

    This module derives the virtual-link tree of a single-beacon reduced
    topology and simulates multicast snapshots on it, producing the
    sufficient statistics MINC needs: for every tree node, the fraction
    [gamma] of probes received by at least one destination in its
    subtree. *)

type tree = {
  parent : int array;  (** per virtual link: parent virtual link or -1 *)
  children : int array array;  (** per virtual link: child virtual links *)
  order : int array;  (** topological order, parents before children *)
  leaf_of_path : int array;  (** per path (row): its final virtual link *)
}

val tree_of_routing : Topology.Routing.reduced -> tree
(** Derives the link tree from a single-beacon reduced topology. Raises
    [Invalid_argument] if the paths do not form a tree (multiple beacons
    or inconsistent prefixes). *)

type observation = {
  loss_rates : float array;  (** drawn loss rate per virtual link *)
  realized : float array;  (** realized loss fraction per virtual link *)
  congested : bool array;
  gamma : float array;
      (** per virtual link: fraction of the [S] probes received by at
          least one destination in its subtree *)
  received : int array;  (** per path: probes received at its destination *)
}

val observe :
  Nstats.Rng.t ->
  Snapshot.config ->
  congested:bool array ->
  tree ->
  observation
(** One multicast snapshot: every link's loss process is shared by the
    whole fan-out (the probe either passes a link or dies there for all
    downstream receivers). Uses the same loss models and processes as the
    unicast {!Snapshot}. *)
