module Rng = Nstats.Rng
module Sparse = Linalg.Sparse
module Loss_model = Lossmodel.Loss_model
module Gilbert = Lossmodel.Gilbert
module Bernoulli = Lossmodel.Bernoulli

type process = Gilbert of float | Bernoulli

type fidelity = Packet_level | Packet_per_path | Flow_level

type config = {
  model : Loss_model.t;
  process : process;
  fidelity : fidelity;
  congestion_prob : float;
  probes : int;
}

let default_config model =
  { model; process = Gilbert 0.35; fidelity = Packet_level;
    congestion_prob = 0.1; probes = 1000 }

type t = {
  loss_rates : float array;
  realized : float array;
  congested : bool array;
  received : int array;
  y : float array;
}

let validate config =
  if config.probes <= 0 then invalid_arg "Snapshot: probes <= 0";
  if config.congestion_prob < 0. || config.congestion_prob > 1. then
    invalid_arg "Snapshot: congestion_prob out of [0,1]"

let link_bad_intervals rng config rate =
  match config.process with
  | Gilbert stay_bad ->
      let chain = Gilbert.make ~stay_bad ~loss_rate:rate () in
      Gilbert.bad_intervals rng chain ~steps:config.probes
  | Bernoulli -> Bernoulli.bad_intervals rng ~rate ~steps:config.probes

let draw_statuses rng config ~links =
  validate config;
  Array.init links (fun _ -> Rng.bool rng config.congestion_prob)

let generate rng config ~congested r =
  validate config;
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length congested <> nc then
    invalid_arg "Snapshot.generate: status vector length mismatch";
  let congested = Array.copy congested in
  let loss_rates =
    Array.map
      (fun c ->
        if c then Loss_model.draw_congested rng config.model
        else Loss_model.draw_good rng config.model)
      congested
  in
  let s = config.probes in
  let sf = float_of_int s in
  (* For the shared fidelity, draw each link's dropping periods once; every
     path crossing the link sees the same periods. *)
  let shared_intervals =
    match config.fidelity with
    | Packet_level ->
        Array.map
          (fun rate ->
            if rate = 0. then [] else link_bad_intervals rng config rate)
          loss_rates
    | Packet_per_path | Flow_level -> [||]
  in
  let received =
    Array.init np (fun i ->
        let links = Sparse.row r i in
        match config.fidelity with
        | Flow_level ->
            let trans =
              Array.fold_left (fun acc j -> acc *. (1. -. loss_rates.(j))) 1. links
            in
            Rng.binomial rng s trans
        | Packet_level ->
            let bad =
              Array.to_list links |> List.map (fun j -> shared_intervals.(j))
            in
            Intervals.complement_length ~steps:s bad
        | Packet_per_path ->
            (* a fresh copy of each link's process for this path *)
            let bad =
              Array.to_list links
              |> List.filter_map (fun j ->
                     if loss_rates.(j) = 0. then None
                     else Some (link_bad_intervals rng config loss_rates.(j)))
            in
            Intervals.complement_length ~steps:s bad)
  in
  let y =
    Array.map
      (fun rx ->
        let rx = if rx = 0 then 0.5 else float_of_int rx in
        log (rx /. sf))
      received
  in
  let realized =
    match config.fidelity with
    | Packet_level ->
        Array.map
          (fun iv -> float_of_int (Intervals.complement_length ~steps:s [ iv ]))
          shared_intervals
        |> Array.map (fun survived -> 1. -. (survived /. sf))
    | Packet_per_path | Flow_level -> Array.copy loss_rates
  in
  { loss_rates; realized; congested; received; y }

let path_transmission t i = exp t.y.(i)

let true_path_transmission r t i =
  Array.fold_left
    (fun acc j -> acc *. (1. -. t.loss_rates.(j)))
    1. (Sparse.row r i)
