(** Probe scheduling under per-host rate limits (Section 7.1 methodology).

    The PlanetLab deployment probed with 40-byte UDP packets at 10 ms
    inter-arrival, capped each beacon at 100 KB/s, which works out to
    about 150 paths per beacon per minute, and randomized the order in
    which each beacon visited its destinations. Given a path set and the
    same knobs, this module computes a feasible probing schedule: which
    paths each beacon measures in each round, how long a full snapshot
    sweep takes, and the bandwidth every beacon consumes. *)

type config = {
  probe_bytes : int;  (** UDP probe size, default 40 *)
  inter_probe_ms : float;  (** spacing between probes of one path train *)
  probes : int;  (** probes per path per snapshot (the paper's [S]) *)
  rate_limit_bytes_per_s : float;  (** per-beacon cap, default 100 KB/s *)
}

val default_config : config
(** The paper's values: 40 B probes, 10 ms spacing, S = 1000, 100 KB/s. *)

type t = {
  rounds : int array array;
      (** [rounds.(k)] = path (row) indices measured in parallel round [k];
          every beacon measures at most its per-round quota *)
  snapshot_seconds : float;  (** wall-clock time of one full sweep *)
  beacon_bandwidth : (int * float) list;
      (** peak bytes/s per beacon node id while its trains are running *)
}

val concurrent_paths_per_beacon : config -> int
(** How many probe trains a beacon can interleave without exceeding the
    rate limit. *)

val build :
  Nstats.Rng.t -> config -> Topology.Routing.reduced -> t
(** Randomizes each beacon's destination order (as the deployment did),
    then packs paths into rounds. Raises [Invalid_argument] if the rate
    limit cannot accommodate even one probe train. *)
