lib/netsim/intervals.ml: List
