lib/netsim/trace_io.mli: Linalg
