lib/netsim/trace_io.ml: Array Buffer Filename Linalg List Printf String Sys
