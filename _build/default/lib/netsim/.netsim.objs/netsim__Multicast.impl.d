lib/netsim/multicast.ml: Array Intervals Linalg List Lossmodel Nstats Printf Queue Snapshot Topology
