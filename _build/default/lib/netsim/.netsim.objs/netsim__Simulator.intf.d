lib/netsim/simulator.mli: Linalg Nstats Snapshot
