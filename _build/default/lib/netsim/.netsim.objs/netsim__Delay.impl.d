lib/netsim/delay.ml: Array Linalg Nstats
