lib/netsim/multicast.mli: Nstats Snapshot Topology
