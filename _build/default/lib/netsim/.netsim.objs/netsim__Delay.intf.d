lib/netsim/delay.mli: Linalg Nstats
