lib/netsim/schedule.mli: Nstats Topology
