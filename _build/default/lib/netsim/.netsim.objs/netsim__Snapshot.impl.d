lib/netsim/snapshot.ml: Array Intervals Linalg List Lossmodel Nstats
