lib/netsim/snapshot.mli: Linalg Lossmodel Nstats
