lib/netsim/schedule.ml: Array Hashtbl Int List Nstats Option Topology
