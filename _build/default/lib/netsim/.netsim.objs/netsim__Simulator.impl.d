lib/netsim/simulator.ml: Array Float Linalg Nstats Snapshot
