lib/netsim/intervals.mli:
