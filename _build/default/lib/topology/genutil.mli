(** Internal helpers shared by the topology generators. *)

val connect_components : Nstats.Rng.t -> int -> (int * int) list -> (int * int) list
(** [connect_components rng n links] adds undirected links until the graph
    on [n] nodes is connected: one link between a random node of each
    stranded component and a random node of the main component. Returns
    the augmented link list. *)

val degrees : int -> (int * int) list -> int array
(** Undirected degree of each of [n] nodes. *)

val least_degree_nodes : int -> (int * int) list -> int -> int array
(** [least_degree_nodes n links k] is [k] node indices of minimal degree
    (ties broken by id). *)

val unit_square_points : Nstats.Rng.t -> int -> (float * float) array
(** [n] i.i.d. uniform points in the unit square. *)

val euclid : float * float -> float * float -> float

val dedup_links : (int * int) list -> (int * int) list
(** Removes duplicate and self links, normalizing each pair to [(min, max)]. *)

val make_nodes :
  host_ids:int array -> as_of:(int -> int) -> int -> Graph.node array
(** [make_nodes ~host_ids ~as_of n]: [n] nodes; those in [host_ids] are
    hosts, the rest routers; AS id given by [as_of]. *)
