module Rng = Nstats.Rng

type flavour = Top_down | Bottom_up

(* Router-level core: links among router ids 0..n_routers-1 plus an AS id
   per router. *)
let top_down_core rng ~ases ~routers_per_as =
  let as_links =
    if ases = 1 then []
    else Waxman.links rng ~nodes:ases ~alpha:0.4 ~beta:0.3
  in
  let n_routers = ases * routers_per_as in
  let as_of r = r / routers_per_as in
  let links = ref [] in
  (* intra-AS Waxman graphs, offset into the global id space *)
  for a = 0 to ases - 1 do
    let base = a * routers_per_as in
    if routers_per_as >= 2 then begin
      let local = Waxman.links rng ~nodes:routers_per_as ~alpha:0.5 ~beta:0.25 in
      List.iter (fun (u, v) -> links := (base + u, base + v) :: !links) local
    end
  done;
  (* inter-AS links between random border routers *)
  List.iter
    (fun (a1, a2) ->
      let r1 = (a1 * routers_per_as) + Rng.int rng routers_per_as in
      let r2 = (a2 * routers_per_as) + Rng.int rng routers_per_as in
      links := (r1, r2) :: !links)
    as_links;
  let links = Genutil.connect_components rng n_routers (Genutil.dedup_links !links) in
  (n_routers, links, as_of)

let bottom_up_core rng ~ases ~routers_per_as =
  let n_routers = ases * routers_per_as in
  let pts = Genutil.unit_square_points rng n_routers in
  let l = sqrt 2. in
  let links = ref [] in
  for i = 0 to n_routers - 1 do
    for j = i + 1 to n_routers - 1 do
      let d = Genutil.euclid pts.(i) pts.(j) in
      if Rng.bool rng (0.25 *. exp (-.d /. (0.15 *. l))) then links := (i, j) :: !links
    done
  done;
  let links = Genutil.connect_components rng n_routers !links in
  (* group routers into ASes by grid cell, BRITE bottom-up style *)
  let side = int_of_float (Float.ceil (sqrt (float_of_int ases))) in
  let as_of r =
    let x, y = pts.(r) in
    let cx = min (side - 1) (int_of_float (float_of_int side *. x)) in
    let cy = min (side - 1) (int_of_float (float_of_int side *. y)) in
    ((cy * side) + cx) mod ases
  in
  (n_routers, links, as_of)

let generate rng ~flavour ~ases ~routers_per_as ~hosts =
  if ases < 1 || routers_per_as < 1 then
    invalid_arg "Hierarchical.generate: bad shape";
  if hosts < 2 then invalid_arg "Hierarchical.generate: need at least 2 hosts";
  let n_routers, core_links, as_of =
    match flavour with
    | Top_down -> top_down_core rng ~ases ~routers_per_as
    | Bottom_up -> bottom_up_core rng ~ases ~routers_per_as
  in
  if hosts > n_routers then invalid_arg "Hierarchical.generate: more hosts than routers";
  (* attach each host to a distinct random router by an access link *)
  let attach = Rng.sample_without_replacement rng hosts n_routers in
  let host_ids = Array.init hosts (fun h -> n_routers + h) in
  let access = Array.to_list (Array.mapi (fun h r -> (r, n_routers + h)) attach) in
  let all_links = Array.of_list (core_links @ access) in
  let n = n_routers + hosts in
  let as_of_node i = if i < n_routers then as_of i else as_of attach.(i - n_routers) in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:as_of_node n in
  let graph = Graph.of_undirected ~nodes:node_array ~links:all_links in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }
