let to_string (t : Testbed.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "netloss-testbed 1\n";
  Array.iter
    (fun (n : Graph.node) ->
      Buffer.add_string b
        (Printf.sprintf "node %d %s %d\n" n.Graph.id
           (match n.Graph.kind with Graph.Host -> "host" | Graph.Router -> "router")
           n.Graph.as_id))
    (Graph.nodes t.Testbed.graph);
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string b (Printf.sprintf "edge %d %d\n" e.Graph.src e.Graph.dst))
    (Graph.edges t.Testbed.graph);
  Array.iter
    (fun i -> Buffer.add_string b (Printf.sprintf "beacon %d\n" i))
    t.Testbed.beacons;
  Array.iter
    (fun i -> Buffer.add_string b (Printf.sprintf "dest %d\n" i))
    t.Testbed.destinations;
  Buffer.contents b

let fail_line lineno msg = failwith (Printf.sprintf "line %d: %s" lineno msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let nodes = ref [] and edges = ref [] in
  let beacons = ref [] and dests = ref [] in
  let header_seen = ref false in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "netloss-testbed"; "1" ] -> header_seen := true
        | [ "node"; id; kind; as_id ] ->
            let kind =
              match kind with
              | "host" -> Graph.Host
              | "router" -> Graph.Router
              | _ -> fail_line lineno "unknown node kind"
            in
            (try
               nodes :=
                 { Graph.id = int_of_string id; kind; as_id = int_of_string as_id }
                 :: !nodes
             with Failure _ -> fail_line lineno "bad node numbers")
        | [ "edge"; src; dst ] -> (
            try edges := (int_of_string src, int_of_string dst) :: !edges
            with Failure _ -> fail_line lineno "bad edge numbers")
        | [ "beacon"; id ] -> (
            try beacons := int_of_string id :: !beacons
            with Failure _ -> fail_line lineno "bad beacon id")
        | [ "dest"; id ] -> (
            try dests := int_of_string id :: !dests
            with Failure _ -> fail_line lineno "bad destination id")
        | _ -> fail_line lineno ("unrecognized line: " ^ line)
      end)
    lines;
  if not !header_seen then failwith "missing netloss-testbed header";
  let node_list =
    List.sort (fun (a : Graph.node) b -> Int.compare a.Graph.id b.Graph.id) !nodes
  in
  let node_array = Array.of_list node_list in
  Array.iteri
    (fun i (n : Graph.node) ->
      if n.Graph.id <> i then failwith "node ids are not dense from 0")
    node_array;
  let graph =
    Graph.create ~nodes:node_array ~edges:(Array.of_list (List.rev !edges))
  in
  let t =
    { Testbed.graph;
      beacons = Array.of_list (List.rev !beacons);
      destinations = Array.of_list (List.rev !dests) }
  in
  Testbed.validate t;
  t

let save path t =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "testbed" ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_string t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
