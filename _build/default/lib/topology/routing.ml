module Sparse = Linalg.Sparse

type reduced = {
  matrix : Sparse.t;
  paths : Path.t array;
  vlinks : int array array;
  edge_vlink : int array;
}

(* BFS from [src]; out_edges are sorted by destination id, so the
   predecessor assignment (first discovery wins) is deterministic. *)
let bfs graph src =
  let nv = Graph.node_count graph in
  if src < 0 || src >= nv then invalid_arg "Routing.bfs: bad source";
  let pred = Array.make nv None in
  let seen = Array.make nv false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (e : Graph.edge) ->
        if not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          pred.(e.dst) <- Some e.id;
          Queue.add e.dst q
        end)
      (Graph.out_edges graph u)
  done;
  pred

let routing_tree graph ~src = bfs graph src

let path_of_pred graph pred ~src ~dst =
  if src = dst then None
  else begin
    match pred.(dst) with
    | None -> None
    | Some _ ->
        let rec collect node acc =
          if node = src then node :: acc
          else begin
            match pred.(node) with
            | None -> assert false
            | Some eid ->
                let e = Graph.edge graph eid in
                collect e.src (node :: acc)
          end
        in
        let nodes = Array.of_list (collect dst []) in
        Some (Path.make ~graph ~nodes)
  end

let shortest_path graph ~src ~dst =
  let pred = bfs graph src in
  path_of_pred graph pred ~src ~dst

(* Dijkstra with deterministic tie-breaks: on equal distance, prefer the
   smaller predecessor node id (and the out-edge order is already sorted
   by destination). *)
let dijkstra graph ~weight src =
  let nv = Graph.node_count graph in
  if src < 0 || src >= nv then invalid_arg "Routing.dijkstra: bad source";
  let dist = Array.make nv infinity in
  let pred = Array.make nv None in
  let final = Array.make nv false in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not final.(u) then begin
          if d <= dist.(u) then begin
            final.(u) <- true;
            List.iter
              (fun (e : Graph.edge) ->
                let w = weight e.id in
                if w < 0. then invalid_arg "Routing.dijkstra: negative weight";
                let nd = d +. w in
                let better =
                  nd < dist.(e.dst)
                  || nd = dist.(e.dst)
                     && (match pred.(e.dst) with
                        | None -> true
                        | Some prev ->
                            let pe = Graph.edge graph prev in
                            u < pe.Graph.src)
                in
                if (not final.(e.dst)) && better then begin
                  dist.(e.dst) <- nd;
                  pred.(e.dst) <- Some e.id;
                  Heap.push heap nd e.dst
                end)
              (Graph.out_edges graph u)
          end;
          drain ()
        end
        else drain ()
  in
  drain ();
  pred

let shortest_path_weighted graph ~weight ~src ~dst =
  let pred = dijkstra graph ~weight src in
  path_of_pred graph pred ~src ~dst

let paths_between_weighted graph ~weight ~beacons ~destinations =
  let acc = ref [] in
  Array.iter
    (fun b ->
      let pred = dijkstra graph ~weight b in
      Array.iter
        (fun d ->
          match path_of_pred graph pred ~src:b ~dst:d with
          | Some p -> acc := p :: !acc
          | None -> ())
        destinations)
    beacons;
  Array.of_list (List.rev !acc)

let paths_between graph ~beacons ~destinations =
  let acc = ref [] in
  Array.iter
    (fun b ->
      let pred = bfs graph b in
      Array.iter
        (fun d ->
          match path_of_pred graph pred ~src:b ~dst:d with
          | Some p -> acc := p :: !acc
          | None -> ())
        destinations)
    beacons;
  Array.of_list (List.rev !acc)

let reduce graph paths =
  let np = Array.length paths in
  if np = 0 then invalid_arg "Routing.reduce: no paths";
  let ne = Graph.edge_count graph in
  (* rows covering each edge, in increasing row order *)
  let cover = Array.make ne [] in
  Array.iteri
    (fun i p -> Array.iter (fun eid -> cover.(eid) <- i :: cover.(eid)) p.Path.edges)
    paths;
  (* group covered edges by identical cover set (the alias reduction) *)
  let groups : (int list, int list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  for eid = ne - 1 downto 0 do
    match cover.(eid) with
    | [] -> ()
    | key ->
        (match Hashtbl.find_opt groups key with
        | Some members -> Hashtbl.replace groups key (eid :: members)
        | None ->
            Hashtbl.add groups key [ eid ];
            order := key :: !order)
  done;
  (* [order] was built scanning eids downward, so after the final reversal
     implicit in the construction, groups are ordered by smallest member. *)
  let keys = Array.of_list !order in
  let vlinks =
    Array.map (fun key -> Array.of_list (Hashtbl.find groups key)) keys
  in
  Array.sort
    (fun a b -> Int.compare a.(0) b.(0))
    vlinks;
  let nc = Array.length vlinks in
  let edge_vlink = Array.make ne (-1) in
  Array.iteri (fun j members -> Array.iter (fun eid -> edge_vlink.(eid) <- j) members)
    vlinks;
  let rows =
    Array.map
      (fun (p : Path.t) ->
        let cols = Array.map (fun eid -> edge_vlink.(eid)) p.Path.edges in
        let uniq = List.sort_uniq Int.compare (Array.to_list cols) in
        Array.of_list uniq)
      paths
  in
  { matrix = Sparse.create ~cols:nc rows; paths; vlinks; edge_vlink }

let build graph ~beacons ~destinations =
  reduce graph (paths_between graph ~beacons ~destinations)

let path_vlinks r i = Array.copy (Sparse.row r.matrix i)

let vlink_loss_rate r ~link_loss j =
  if j < 0 || j >= Array.length r.vlinks then
    invalid_arg "Routing.vlink_loss_rate: bad column";
  let trans =
    Array.fold_left (fun acc eid -> acc *. (1. -. link_loss eid)) 1. r.vlinks.(j)
  in
  1. -. trans
