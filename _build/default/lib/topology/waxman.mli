(** Waxman random graphs (Waxman 1988), one of the BRITE flat models used
    in Section 6.2.

    Nodes are placed uniformly in the unit square and each pair is linked
    with probability [alpha * exp (-d / (beta * l))] where [d] is their
    Euclidean distance and [l] the maximum possible distance. The result
    is made connected by bridging stranded components. *)

val links :
  Nstats.Rng.t -> nodes:int -> alpha:float -> beta:float -> (int * int) list
(** Just the undirected link list (used as a building block by the
    hierarchical generator). *)

val generate :
  Nstats.Rng.t ->
  nodes:int ->
  hosts:int ->
  ?alpha:float ->
  ?beta:float ->
  unit ->
  Testbed.t
(** A connected Waxman graph in which the [hosts] least-connected nodes
    (the stub nodes, as in the paper's "end-hosts are nodes with the least
    out-degree") act as both beacons and destinations. Defaults:
    [alpha = 0.15], [beta = 0.2]. *)
