(** Plain-text serialization of testbeds.

    A stable line-oriented format so topologies can be generated once,
    shared, and re-used across tool invocations:

    {v
    netloss-testbed 1
    node <id> host|router <as-id>
    edge <src> <dst>
    beacon <id>
    dest <id>
    v}

    Lines may appear in any order after the header; blank lines and lines
    starting with [#] are ignored. *)

val to_string : Testbed.t -> string

val of_string : string -> Testbed.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Testbed.t -> unit
(** [save path testbed] writes the file atomically (via a temp file in the
    same directory). *)

val load : string -> Testbed.t
(** Raises [Sys_error] if unreadable, [Failure] if malformed. *)
