(** End-to-end paths through a graph.

    A path records both its node sequence and its edge-id sequence; the
    edge ids are what the routing matrix is built from. *)

type t = { src : int; dst : int; nodes : int array; edges : int array }

val make : graph:Graph.t -> nodes:int array -> t
(** Builds a path from a node sequence, looking up each hop's edge. Raises
    [Invalid_argument] if a hop is not an edge of the graph or the sequence
    has fewer than two nodes. *)

val length : t -> int
(** Number of edges (hops). *)

val mem_edge : t -> int -> bool

val edge_position : t -> int -> int option
(** Index of an edge along the path, if present. *)

val shared_edges : t -> t -> int list
(** Edge ids traversed by both paths, in the order of the first path. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
