(** Synthetic PlanetLab-like and DIMES-like overlays.

    The paper's Table 2 and Section 7 use measured PlanetLab and DIMES
    topologies that we cannot fetch in a sealed environment; these
    generators produce structurally similar substitutes (see DESIGN.md).
    The property that matters for LIA's Phase 2 is the measured networks'
    high link-to-beacon ratio (PlanetLab: 14 922 links for 500 beacons):
    paths are long and the covered-link count far exceeds the congested
    count, so the variance-ordered column elimination stops soon after the
    congested block.

    - {b PlanetLab-like}: a large research-network (GREN-style) router
      mesh, spatially clustered into many university ASes, roughly 30
      covered core routers per host; every host is both beacon and
      destination, one host per institution AS.
    - {b DIMES-like}: a preferential-attachment commercial core with many
      small ASes; hosts attach at low-degree edge routers, giving the
      flatter, degree-skewed structure of DIMES agents. *)

val planetlab_like :
  Nstats.Rng.t -> hosts:int -> ?ases:int -> ?routers_per_as:int -> unit -> Testbed.t
(** Defaults: [ases = 2 * hosts], [routers_per_as = 15]. *)

val dimes_like :
  Nstats.Rng.t -> hosts:int -> ?core_nodes:int -> unit -> Testbed.t
(** Default [core_nodes = 20 * hosts]. The BA core is partitioned into many
    small ASes; each host attaches to a low-degree core node. *)
