module Rng = Nstats.Rng

let generate rng ?(transit_domains = 4) ?(transit_size = 6)
    ?(stubs_per_transit_node = 2) ?(stub_size = 4) ~hosts () =
  if transit_domains < 1 || transit_size < 1 || stubs_per_transit_node < 0
     || stub_size < 1 then
    invalid_arg "Transit_stub.generate: non-positive shape";
  if hosts < 2 then invalid_arg "Transit_stub.generate: need at least 2 hosts";
  let links = ref [] in
  let as_ids = ref [] in
  let next_node = ref 0 in
  let next_as = ref 0 in
  let fresh_node as_id =
    let id = !next_node in
    incr next_node;
    as_ids := (id, as_id) :: !as_ids;
    id
  in
  (* transit domains: a ring plus random chords, one AS each *)
  let transit_nodes =
    Array.init transit_domains (fun _ ->
        let as_id = !next_as in
        incr next_as;
        let nodes = Array.init transit_size (fun _ -> fresh_node as_id) in
        Array.iteri
          (fun i n ->
            links := (n, nodes.((i + 1) mod transit_size)) :: !links)
          nodes;
        (* a few chords make the backbone meshier *)
        for _ = 1 to transit_size / 2 do
          let a = Rng.choose rng nodes and b = Rng.choose rng nodes in
          if a <> b then links := (a, b) :: !links
        done;
        nodes)
  in
  (* inter-transit links: connect consecutive domains plus one random pair *)
  for d = 0 to transit_domains - 2 do
    links :=
      (Rng.choose rng transit_nodes.(d), Rng.choose rng transit_nodes.(d + 1))
      :: !links
  done;
  if transit_domains > 2 then begin
    let d1 = Rng.int rng transit_domains and d2 = Rng.int rng transit_domains in
    if d1 <> d2 then
      links :=
        (Rng.choose rng transit_nodes.(d1), Rng.choose rng transit_nodes.(d2))
        :: !links
  end;
  (* stub domains: a small connected cluster hanging off one transit node *)
  let stub_routers = ref [] in
  Array.iter
    (fun domain ->
      Array.iter
        (fun anchor ->
          for _ = 1 to stubs_per_transit_node do
            let as_id = !next_as in
            incr next_as;
            let nodes = Array.init stub_size (fun _ -> fresh_node as_id) in
            (* stub interior: a path plus a random extra edge *)
            for i = 0 to stub_size - 2 do
              links := (nodes.(i), nodes.(i + 1)) :: !links
            done;
            if stub_size > 2 then begin
              let a = Rng.choose rng nodes and b = Rng.choose rng nodes in
              if a <> b then links := (a, b) :: !links
            end;
            (* uplink to the transit anchor *)
            links := (anchor, nodes.(0)) :: !links;
            stub_routers := Array.to_list nodes @ !stub_routers
          done)
        domain)
    transit_nodes;
  let stub_routers = Array.of_list !stub_routers in
  if hosts > Array.length stub_routers then
    invalid_arg "Transit_stub.generate: more hosts than stub routers";
  (* hosts attach to distinct random stub routers, inheriting the stub AS *)
  let picks =
    Rng.sample_without_replacement rng hosts (Array.length stub_routers)
  in
  let as_of_router =
    let table = Hashtbl.create 256 in
    List.iter (fun (id, a) -> Hashtbl.replace table id a) !as_ids;
    fun id -> Hashtbl.find table id
  in
  let host_ids = Array.init hosts (fun h -> !next_node + h) in
  Array.iteri
    (fun h pick ->
      let router = stub_routers.(pick) in
      links := (router, !next_node + h) :: !links;
      as_ids := (!next_node + h, as_of_router router) :: !as_ids)
    picks;
  let n = !next_node + hosts in
  let as_table = Hashtbl.create 256 in
  List.iter (fun (id, a) -> Hashtbl.replace as_table id a) !as_ids;
  let node_array =
    Genutil.make_nodes ~host_ids ~as_of:(Hashtbl.find as_table) n
  in
  let links =
    Genutil.connect_components rng n (Genutil.dedup_links !links)
  in
  let graph = Graph.of_undirected ~nodes:node_array ~links:(Array.of_list links) in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }
