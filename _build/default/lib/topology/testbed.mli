(** A generated measurement scenario: a graph plus the end-hosts that act
    as beacons and probing destinations. *)

type t = {
  graph : Graph.t;
  beacons : int array;  (** node ids sending probes (the set [V_B]) *)
  destinations : int array;  (** node ids receiving probes (the set [D]) *)
}

val routing : t -> Routing.reduced
(** Reduced routing matrix of all beacon→destination shortest paths, with
    fluttering paths removed first (Assumption T.2). *)

val validate : t -> unit
(** Checks beacons and destinations are valid host node ids; raises
    [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
