(** Barabási–Albert preferential-attachment graphs (Section 6.2).

    Each new node attaches to [m] distinct existing nodes chosen with
    probability proportional to their degree, producing the power-law
    degree distribution of Internet-like topologies. *)

val links : Nstats.Rng.t -> nodes:int -> m:int -> (int * int) list
(** Undirected link list. Requires [nodes > m >= 1]. *)

val generate :
  Nstats.Rng.t -> nodes:int -> hosts:int -> ?m:int -> unit -> Testbed.t
(** Connected BA graph whose [hosts] least-connected nodes are both
    beacons and destinations. Default [m = 2]. *)
