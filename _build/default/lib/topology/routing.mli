(** Shortest-path routing and reduced routing matrices.

    This implements Section 3.1 of the paper: paths are computed per
    beacon with deterministic shortest-path routing (so all paths from one
    beacon form a tree, satisfying T.2 within a beacon), links never
    traversed by any path are dropped, and "alias" links that no
    end-to-end measurement can tell apart — links traversed by exactly the
    same set of paths — are grouped into virtual links. The result is the
    reduced routing matrix [R]: all columns distinct and nonzero. *)

type reduced = {
  matrix : Linalg.Sparse.t;  (** [n_p × n_c], row = path, column = virtual link *)
  paths : Path.t array;  (** row [i] is [paths.(i)] *)
  vlinks : int array array;  (** column [j] groups these physical edge ids *)
  edge_vlink : int array;  (** physical edge id -> column, or -1 if uncovered *)
}

val shortest_path : Graph.t -> src:int -> dst:int -> Path.t option
(** BFS shortest path with deterministic tie-breaking (smallest next-hop
    node id). [None] when [dst] is unreachable. *)

val shortest_path_weighted :
  Graph.t -> weight:(int -> float) -> src:int -> dst:int -> Path.t option
(** Dijkstra under per-edge weights (an IGP-metric routing model). Ties
    are broken towards the lexicographically smaller predecessor node, so
    the result is deterministic and the per-source route set is a tree.
    Raises [Invalid_argument] on a negative weight. *)

val paths_between_weighted :
  Graph.t ->
  weight:(int -> float) ->
  beacons:int array ->
  destinations:int array ->
  Path.t array
(** Weighted counterpart of {!paths_between}. *)

val routing_tree : Graph.t -> src:int -> int option array
(** Predecessor edge id per node of the BFS tree rooted at [src] ([None]
    for the root and unreachable nodes). All [shortest_path] results from
    [src] are branches of this tree. *)

val paths_between :
  Graph.t -> beacons:int array -> destinations:int array -> Path.t array
(** All shortest paths from each beacon to each destination (skipping the
    beacon itself and unreachable destinations), beacon-major order. *)

val reduce : Graph.t -> Path.t array -> reduced
(** Builds the reduced routing matrix from a set of paths: drops uncovered
    links and groups identical columns into virtual links. Raises
    [Invalid_argument] on an empty path set. *)

val build :
  Graph.t -> beacons:int array -> destinations:int array -> reduced
(** [paths_between] followed by {!reduce}. *)

val path_vlinks : reduced -> int -> int array
(** Columns (virtual links) traversed by path (row) [i] — the support of
    row [i] of the matrix. *)

val vlink_loss_rate : reduced -> link_loss:(int -> float) -> int -> float
(** Loss rate of virtual link [j] given per-physical-edge loss rates:
    complement of the product of member transmission rates. *)
