module Rng = Nstats.Rng

(* Flat spatial router mesh grouped into ASes by grid cell (the bottom-up
   construction), sized so that covered links far outnumber hosts. *)
let clustered_core rng ~ases ~routers =
  let pts = Genutil.unit_square_points rng routers in
  let l = sqrt 2. in
  let links = ref [] in
  for i = 0 to routers - 1 do
    for j = i + 1 to routers - 1 do
      let d = Genutil.euclid pts.(i) pts.(j) in
      if Rng.bool rng (0.25 *. exp (-.d /. (0.12 *. l))) then links := (i, j) :: !links
    done
  done;
  let links = Genutil.connect_components rng routers !links in
  let side = int_of_float (Float.ceil (sqrt (float_of_int ases))) in
  let as_of r =
    let x, y = pts.(r) in
    let cx = min (side - 1) (int_of_float (float_of_int side *. x)) in
    let cy = min (side - 1) (int_of_float (float_of_int side *. y)) in
    ((cy * side) + cx) mod ases
  in
  (links, as_of)

let attach_hosts rng ~core ~hosts ~core_links ~as_of =
  let attach = Rng.sample_without_replacement rng hosts core in
  let host_ids = Array.init hosts (fun h -> core + h) in
  let access = Array.to_list (Array.mapi (fun h r -> (r, core + h)) attach) in
  let n = core + hosts in
  let as_of_node i = if i < core then as_of i else as_of attach.(i - core) in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:as_of_node n in
  let graph =
    Graph.of_undirected ~nodes:node_array
      ~links:(Array.of_list (core_links @ access))
  in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }

let planetlab_like rng ~hosts ?ases ?(routers_per_as = 15) () =
  if hosts < 2 then invalid_arg "Overlay.planetlab_like: need at least 2 hosts";
  let ases = Option.value ases ~default:(2 * hosts) in
  if ases < 1 || routers_per_as < 1 then
    invalid_arg "Overlay.planetlab_like: bad core shape";
  let routers = ases * routers_per_as in
  if hosts > routers then invalid_arg "Overlay.planetlab_like: more hosts than routers";
  let core_links, as_of = clustered_core rng ~ases ~routers in
  attach_hosts rng ~core:routers ~hosts ~core_links ~as_of

let dimes_like rng ~hosts ?core_nodes () =
  if hosts < 2 then invalid_arg "Overlay.dimes_like: need at least 2 hosts";
  let core = Option.value core_nodes ~default:(20 * hosts) in
  let core = max core (hosts + 4) in
  let lks = Barabasi_albert.links rng ~nodes:core ~m:2 in
  (* many small ASes: partition the core by id blocks of ~5 routers, which
     tracks attachment order and hence loosely the degree hierarchy *)
  let as_size = 5 in
  let as_of r = r / as_size in
  (* hosts attach to low-degree core nodes (commercial edge) *)
  let candidates = Genutil.least_degree_nodes core lks (min core (2 * hosts)) in
  let attach = Array.init hosts (fun h -> candidates.(h mod Array.length candidates)) in
  let host_ids = Array.init hosts (fun h -> core + h) in
  let access = Array.to_list (Array.mapi (fun h r -> (r, core + h)) attach) in
  let n = core + hosts in
  let as_of_node i = if i < core then as_of i else as_of attach.(i - core) in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:as_of_node n in
  let graph =
    Graph.of_undirected ~nodes:node_array ~links:(Array.of_list (lks @ access))
  in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }
