module Rng = Nstats.Rng

type t = { graph : Graph.t; paths : Path.t array }

type label =
  | Lhost of int (* true host node id *)
  | Liface of int * int (* true router id, surviving interface index *)
  | Lanon of int * int (* path index, hop position: never merged *)

let measure rng ?(no_response = 0.075) ?(multi_iface = 0.16)
    ?(resolve_success = 0.8) graph paths =
  let nv = Graph.node_count graph in
  (* Per-router measurement behaviour, fixed across all traceroutes. *)
  let responds = Array.make nv true in
  let ifaces = Array.make nv 1 in
  for r = 0 to nv - 1 do
    if (Graph.node graph r).kind = Graph.Router then begin
      if Rng.bool rng no_response then responds.(r) <- false;
      if Rng.bool rng multi_iface then ifaces.(r) <- 2 + Rng.int rng 2
    end
  done;
  (* sr-ally resolution: per router, either all interfaces merge to index 0
     or they all stay distinct. *)
  let resolved = Array.init nv (fun _ -> Rng.bool rng resolve_success) in
  let label_of_hop path_idx hop node =
    let n = Graph.node graph node in
    match n.kind with
    | Graph.Host -> Lhost node
    | Graph.Router ->
        if not responds.(node) then Lanon (path_idx, hop)
        else if ifaces.(node) = 1 || resolved.(node) then Liface (node, 0)
        else Liface (node, Rng.int rng ifaces.(node))
  in
  let measured_node_seqs =
    Array.mapi
      (fun i (p : Path.t) ->
        Array.mapi (fun hop node -> label_of_hop i hop node) p.Path.nodes)
      paths
  in
  (* Assign dense measured ids; record each label's true node for AS/kind. *)
  let ids : (label, int) Hashtbl.t = Hashtbl.create 256 in
  let true_node = ref [] in
  let next = ref 0 in
  let id_of lbl tn =
    match Hashtbl.find_opt ids lbl with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add ids lbl i;
        true_node := tn :: !true_node;
        i
  in
  let id_seqs =
    Array.map2
      (fun lbls (p : Path.t) ->
        Array.mapi (fun hop lbl -> id_of lbl p.Path.nodes.(hop)) lbls)
      measured_node_seqs paths
  in
  let true_of = Array.of_list (List.rev !true_node) in
  let n_measured = !next in
  let nodes =
    Array.init n_measured (fun i ->
        let tn = Graph.node graph true_of.(i) in
        { Graph.id = i; kind = tn.kind; as_id = tn.as_id })
  in
  (* Edges: every consecutive measured pair; deduplicated. *)
  let edge_set = Hashtbl.create 1024 in
  Array.iter
    (fun seq ->
      for k = 0 to Array.length seq - 2 do
        let key = (seq.(k), seq.(k + 1)) in
        if fst key <> snd key then Hashtbl.replace edge_set key ()
      done)
    id_seqs;
  let edges = Hashtbl.fold (fun k () acc -> k :: acc) edge_set [] in
  let edges = Array.of_list (List.sort compare edges) in
  let mgraph = Graph.create ~nodes ~edges in
  let mpaths =
    Array.map
      (fun seq ->
        (* collapse accidental repeats (a merged alias hop can repeat) *)
        let compact = ref [ seq.(0) ] in
        for k = 1 to Array.length seq - 1 do
          match !compact with
          | last :: _ when last = seq.(k) -> ()
          | l -> compact := seq.(k) :: l
        done;
        Path.make ~graph:mgraph ~nodes:(Array.of_list (List.rev !compact)))
      id_seqs
  in
  { graph = mgraph; paths = mpaths }
