(** BRITE-style hierarchical topologies (Section 6.2).

    Two-level Internet models with explicit AS structure, in both BRITE
    flavours:

    - {b Top-down}: generate an AS-level Waxman graph, expand each AS into
      its own router-level Waxman graph, and realize each AS-level link as
      a link between random border routers of the two ASes.
    - {b Bottom-up}: generate one flat router-level graph and group
      routers into ASes afterwards (here: by spatial grid cells, mimicking
      BRITE's assignment of co-located routers to a domain).

    AS identifiers are recorded on every node, which makes the
    inter-/intra-AS congestion analysis of Table 3 exact. *)

type flavour = Top_down | Bottom_up

val generate :
  Nstats.Rng.t ->
  flavour:flavour ->
  ases:int ->
  routers_per_as:int ->
  hosts:int ->
  Testbed.t
(** A connected two-level topology with [ases × routers_per_as] routers
    (approximately, for bottom-up) and [hosts] end-host nodes attached by
    access links to distinct random routers; the hosts are both beacons
    and destinations. *)
