module Rng = Nstats.Rng

(* Bushy random tree grown in BFS order: every internal node receives
   between 2 and [max_branching] children (truncated by the node budget),
   which matches the shallow, wide trees used in the multicast-tomography
   literature the paper builds on. Depth is O(log nodes). *)
let generate rng ~nodes ?(min_branching = 2) ~max_branching () =
  if nodes < 2 then invalid_arg "Tree_gen.generate: need at least 2 nodes";
  if max_branching < 1 then invalid_arg "Tree_gen.generate: branching < 1";
  if min_branching < 1 || min_branching > max_branching then
    invalid_arg "Tree_gen.generate: bad min_branching";
  let parent = Array.make nodes (-1) in
  let children = Array.make nodes 0 in
  let next = ref 1 in
  let frontier = Queue.create () in
  Queue.add 0 frontier;
  while !next < nodes do
    let u =
      if Queue.is_empty frontier then !next - 1 (* degenerate: extend a chain *)
      else Queue.pop frontier
    in
    let lo = min min_branching max_branching in
    let want = lo + Rng.int rng (max 1 (max_branching - lo + 1)) in
    let take = min want (nodes - !next) in
    for _ = 1 to take do
      let v = !next in
      incr next;
      parent.(v) <- u;
      children.(u) <- children.(u) + 1;
      Queue.add v frontier
    done
  done;
  let edges = Array.init (nodes - 1) (fun i -> (parent.(i + 1), i + 1)) in
  let leaves =
    Array.of_list
      (List.filter (fun v -> children.(v) = 0) (List.init nodes (fun i -> i)))
  in
  let host_ids = Array.append [| 0 |] leaves in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:(fun _ -> 0) nodes in
  let graph = Graph.create ~nodes:node_array ~edges in
  { Testbed.graph; beacons = [| 0 |]; destinations = leaves }
