type t = { src : int; dst : int; nodes : int array; edges : int array }

let make ~graph ~nodes =
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Path.make: need at least two nodes";
  let edges =
    Array.init (n - 1) (fun i ->
        match Graph.find_edge graph ~src:nodes.(i) ~dst:nodes.(i + 1) with
        | Some e -> e.Graph.id
        | None -> invalid_arg "Path.make: hop is not an edge")
  in
  { src = nodes.(0); dst = nodes.(n - 1); nodes; edges }

let length p = Array.length p.edges

let mem_edge p eid = Array.exists (fun e -> e = eid) p.edges

let edge_position p eid =
  let pos = ref None in
  Array.iteri (fun i e -> if e = eid && !pos = None then pos := Some i) p.edges;
  !pos

let shared_edges p q =
  let in_q = Hashtbl.create (Array.length q.edges) in
  Array.iter (fun e -> Hashtbl.replace in_q e ()) q.edges;
  Array.to_list p.edges |> List.filter (Hashtbl.mem in_q)

let equal p q = p.src = q.src && p.dst = q.dst && p.edges = q.edges

let pp ppf p =
  Format.fprintf ppf "%d" p.nodes.(0);
  Array.iteri (fun i n -> if i > 0 then Format.fprintf ppf "->%d" n) p.nodes
