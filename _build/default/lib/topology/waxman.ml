module Rng = Nstats.Rng

let links rng ~nodes ~alpha ~beta =
  if nodes < 2 then invalid_arg "Waxman.links: need at least 2 nodes";
  if alpha <= 0. || beta <= 0. then invalid_arg "Waxman.links: bad parameters";
  let pts = Genutil.unit_square_points rng nodes in
  let l = sqrt 2. in
  let acc = ref [] in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      let d = Genutil.euclid pts.(i) pts.(j) in
      let p = alpha *. exp (-.d /. (beta *. l)) in
      if Rng.bool rng p then acc := (i, j) :: !acc
    done
  done;
  Genutil.connect_components rng nodes !acc

let generate rng ~nodes ~hosts ?(alpha = 0.15) ?(beta = 0.2) () =
  if hosts < 2 || hosts > nodes then invalid_arg "Waxman.generate: bad host count";
  let lks = links rng ~nodes ~alpha ~beta in
  let host_ids = Genutil.least_degree_nodes nodes lks hosts in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:(fun _ -> 0) nodes in
  let graph = Graph.of_undirected ~nodes:node_array ~links:(Array.of_list lks) in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }
