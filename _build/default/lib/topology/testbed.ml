type t = { graph : Graph.t; beacons : int array; destinations : int array }

let validate t =
  let check_node role i =
    if i < 0 || i >= Graph.node_count t.graph then
      invalid_arg (Printf.sprintf "Testbed: %s %d is not a node" role i)
  in
  Array.iter (check_node "beacon") t.beacons;
  Array.iter (check_node "destination") t.destinations;
  if Array.length t.beacons = 0 then invalid_arg "Testbed: no beacons";
  if Array.length t.destinations = 0 then invalid_arg "Testbed: no destinations"

let routing t =
  validate t;
  let paths =
    Routing.paths_between t.graph ~beacons:t.beacons ~destinations:t.destinations
  in
  let kept, _removed = Flutter.remove_fluttering paths in
  Routing.reduce t.graph kept

let pp ppf t =
  Format.fprintf ppf "%a, %d beacons, %d destinations" Graph.pp t.graph
    (Array.length t.beacons)
    (Array.length t.destinations)
