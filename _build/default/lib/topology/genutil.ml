module Rng = Nstats.Rng

let dedup_links links =
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  links
  |> List.filter_map (fun (u, v) -> if u = v then None else Some (norm (u, v)))
  |> List.sort_uniq compare

let components n links =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun (u, v) -> union u v) links;
  let buckets = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace buckets r (i :: (Option.value ~default:[] (Hashtbl.find_opt buckets r)))
  done;
  Hashtbl.fold (fun _ members acc -> Array.of_list members :: acc) buckets []

let connect_components rng n links =
  match components n links with
  | [] | [ _ ] -> links
  | main :: rest ->
      (* attach every other component to the first by one random link *)
      let extra =
        List.map
          (fun comp -> (Rng.choose rng comp, Rng.choose rng main))
          rest
      in
      dedup_links (extra @ links)

let degrees n links =
  let d = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      d.(u) <- d.(u) + 1;
      d.(v) <- d.(v) + 1)
    links;
  d

let least_degree_nodes n links k =
  if k > n then invalid_arg "Genutil.least_degree_nodes: k > n";
  let d = degrees n links in
  let ids = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare d.(a) d.(b) in
      if c <> 0 then c else Int.compare a b)
    ids;
  Array.sub ids 0 k

let unit_square_points rng n =
  Array.init n (fun _ ->
      let x = Rng.float rng in
      let y = Rng.float rng in
      (x, y))

let euclid (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let make_nodes ~host_ids ~as_of n =
  let is_host = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Genutil.make_nodes: bad host id";
      is_host.(i) <- true)
    host_ids;
  Array.init n (fun i ->
      { Graph.id = i;
        kind = (if is_host.(i) then Graph.Host else Graph.Router);
        as_id = as_of i })
