(** Simulated traceroute topology measurement (Section 7.1).

    Real traceroute-built topologies suffer two error sources the paper
    calls out: routers that do not answer ICMP (5–10% on PlanetLab), whose
    hops cannot be merged across paths, and routers with multiple
    interfaces (~16%) that an sr-ally-like resolver only partially
    disambiguates. This module replays both against a ground-truth graph:
    the returned graph and paths are what the measurement system would
    believe, and may split one true router into several measured nodes.

    Measured nodes inherit the AS of their true router, and end-hosts are
    always correctly identified. *)

type t = {
  graph : Graph.t;  (** the measured (possibly distorted) topology *)
  paths : Path.t array;  (** measured image of each input path, same order *)
}

val measure :
  Nstats.Rng.t ->
  ?no_response:float ->
  ?multi_iface:float ->
  ?resolve_success:float ->
  Graph.t ->
  Path.t array ->
  t
(** [measure rng g paths] runs one traceroute per path. Defaults follow the
    paper's observations: [no_response = 0.075], [multi_iface = 0.16]
    (such routers expose 2 or 3 interfaces), [resolve_success = 0.8]
    (probability sr-ally merges a router's aliases). Passing 0 for all
    three reproduces the true topology exactly (up to node renumbering). *)
