type 'a t = { mutable data : (float * 'a) array; mutable size : int }

let create () = { data = [||]; size = 0 }

let push h key value =
  if h.size = Array.length h.data then begin
    (* the pushed element doubles as the filler for fresh slots *)
    let cap = max 16 (2 * Array.length h.data) in
    let fresh = Array.make cap (key, value) in
    Array.blit h.data 0 fresh 0 h.size;
    h.data <- fresh
  end;
  h.data.(h.size) <- (key, value);
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if fst h.data.(!i) < fst h.data.(parent) then begin
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    Some top
  end

let is_empty h = h.size = 0

let size h = h.size
