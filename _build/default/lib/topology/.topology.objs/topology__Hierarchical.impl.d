lib/topology/hierarchical.ml: Array Float Genutil Graph List Nstats Testbed Waxman
