lib/topology/transit_stub.mli: Nstats Testbed
