lib/topology/waxman.ml: Array Genutil Graph Nstats Testbed
