lib/topology/barabasi_albert.mli: Nstats Testbed
