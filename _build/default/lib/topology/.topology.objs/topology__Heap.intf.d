lib/topology/heap.mli:
