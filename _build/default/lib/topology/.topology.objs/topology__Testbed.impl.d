lib/topology/testbed.ml: Array Flutter Format Graph Printf Routing
