lib/topology/genutil.mli: Graph Nstats
