lib/topology/barabasi_albert.ml: Array Genutil Graph Hashtbl Nstats Testbed
