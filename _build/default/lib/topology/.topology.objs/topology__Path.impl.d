lib/topology/path.ml: Array Format Graph Hashtbl List
