lib/topology/path.mli: Format Graph
