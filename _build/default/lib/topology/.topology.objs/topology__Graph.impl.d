lib/topology/graph.ml: Array Format Hashtbl Int List Option
