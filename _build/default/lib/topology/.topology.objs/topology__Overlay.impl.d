lib/topology/overlay.ml: Array Barabasi_albert Float Genutil Graph Nstats Option Testbed
