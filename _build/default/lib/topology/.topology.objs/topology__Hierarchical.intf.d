lib/topology/hierarchical.mli: Nstats Testbed
