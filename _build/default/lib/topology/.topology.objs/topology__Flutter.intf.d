lib/topology/flutter.mli: Path
