lib/topology/traceroute.ml: Array Graph Hashtbl List Nstats Path
