lib/topology/transit_stub.ml: Array Genutil Graph Hashtbl List Nstats Testbed
