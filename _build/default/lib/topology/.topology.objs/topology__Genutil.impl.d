lib/topology/genutil.ml: Array Graph Hashtbl Int List Nstats Option
