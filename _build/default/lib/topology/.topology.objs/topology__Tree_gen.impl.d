lib/topology/tree_gen.ml: Array Genutil Graph List Nstats Queue Testbed
