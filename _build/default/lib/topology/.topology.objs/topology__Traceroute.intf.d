lib/topology/traceroute.mli: Graph Nstats Path
