lib/topology/flutter.ml: Array Hashtbl List Path
