lib/topology/serial.ml: Array Buffer Filename Graph Int List Printf String Sys Testbed
