lib/topology/serial.mli: Testbed
