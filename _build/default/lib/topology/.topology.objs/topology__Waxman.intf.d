lib/topology/waxman.mli: Nstats Testbed
