lib/topology/routing.mli: Graph Linalg Path
