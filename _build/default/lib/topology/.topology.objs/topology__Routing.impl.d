lib/topology/routing.ml: Array Graph Hashtbl Heap Int Linalg List Path Queue
