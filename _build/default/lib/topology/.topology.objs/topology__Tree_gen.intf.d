lib/topology/tree_gen.mli: Nstats Testbed
