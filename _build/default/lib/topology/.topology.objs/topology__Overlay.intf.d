lib/topology/overlay.mli: Nstats Testbed
