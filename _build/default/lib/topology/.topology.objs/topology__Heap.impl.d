lib/topology/heap.ml: Array
