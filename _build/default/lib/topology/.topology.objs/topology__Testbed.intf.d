lib/topology/testbed.mli: Format Graph Routing
