(** GT-ITM-style transit–stub topologies (Zegura et al. 1996) — the other
    classic Internet model of the BRITE era, alongside Waxman and the
    hierarchical composites.

    A small set of {e transit} domains forms the backbone; each transit
    router anchors a few {e stub} domains, and end-hosts live in stubs.
    Traffic between stubs must climb into the transit core and descend
    again, producing the valley-free path shapes and deep sharing that
    distinguish ISP-like topologies from flat random graphs. Transit
    domains get distinct AS ids, and every stub domain its own AS id. *)

val generate :
  Nstats.Rng.t ->
  ?transit_domains:int ->
  ?transit_size:int ->
  ?stubs_per_transit_node:int ->
  ?stub_size:int ->
  hosts:int ->
  unit ->
  Testbed.t
(** Defaults: 4 transit domains of 6 routers, 2 stub domains per transit
    router, 4 routers per stub. Hosts attach to distinct random stub
    routers and are both beacons and destinations. Raises
    [Invalid_argument] for non-positive shape parameters or more hosts
    than stub routers. *)
