(** Random tree topologies (Section 6.1 of the paper).

    A rooted tree with a bounded branching ratio; the root is the single
    beacon and the leaves are the probing destinations. Edges are directed
    from the root towards the leaves (the direction probes travel). *)

val generate :
  Nstats.Rng.t -> nodes:int -> ?min_branching:int -> max_branching:int ->
  unit -> Testbed.t
(** [generate rng ~nodes ~max_branching ()]: a random tree on [nodes]
    nodes (ids 0..nodes-1, root 0) grown breadth-first, every internal
    node receiving between [min_branching] (default 2) and
    [max_branching] children. Requires [nodes >= 2] and
    [1 <= min_branching <= max_branching]. The paper uses 1000 nodes and
    branching ≤ 10; a higher [min_branching] gives bushier trees in which
    an all-congested sibling set (the rare case that can eliminate a
    congested column in Phase 2) is rarer. *)
