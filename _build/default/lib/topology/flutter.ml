let shared_subsequence p q =
  let in_q = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace in_q e ()) q.Path.edges;
  let hits = ref [] in
  Array.iteri
    (fun i e -> if Hashtbl.mem in_q e then hits := (i, e) :: !hits)
    p.Path.edges;
  List.rev !hits

let contiguous indices =
  let rec check = function
    | a :: (b :: _ as rest) -> b = a + 1 && check rest
    | [ _ ] | [] -> true
  in
  check indices

let pair_flutters p q =
  let sp = shared_subsequence p q in
  if List.length sp <= 1 then false
  else begin
    let sq = shared_subsequence q p in
    let idx_p = List.map fst sp and idx_q = List.map fst sq in
    let seq_p = List.map snd sp and seq_q = List.map snd sq in
    not (contiguous idx_p && contiguous idx_q && seq_p = seq_q)
  end

let check paths =
  let n = Array.length paths in
  let offending = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if pair_flutters paths.(i) paths.(j) then offending := (i, j) :: !offending
    done
  done;
  List.rev !offending

let remove_fluttering paths =
  let n = Array.length paths in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    if not dropped.(i) then
      for j = i + 1 to n - 1 do
        if (not dropped.(j)) && pair_flutters paths.(i) paths.(j) then
          dropped.(j) <- true
      done
  done;
  let kept = ref [] and removed = ref [] in
  for i = n - 1 downto 0 do
    if dropped.(i) then removed := paths.(i) :: !removed
    else kept := paths.(i) :: !kept
  done;
  (Array.of_list !kept, Array.of_list !removed)
