module Rng = Nstats.Rng

let links rng ~nodes ~m =
  if m < 1 then invalid_arg "Barabasi_albert.links: m < 1";
  if nodes <= m then invalid_arg "Barabasi_albert.links: nodes <= m";
  (* seed: a path on m+1 nodes so every seed node has positive degree *)
  let acc = ref [] in
  let endpoints = ref [] in
  (* [endpoints] lists each link endpoint once; sampling it uniformly is
     sampling nodes proportionally to degree. *)
  for v = 1 to m do
    acc := (v - 1, v) :: !acc;
    endpoints := (v - 1) :: v :: !endpoints
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for v = m + 1 to nodes - 1 do
    let chosen = Hashtbl.create m in
    let guard = ref 0 in
    while Hashtbl.length chosen < m && !guard < 10000 do
      incr guard;
      let u = Rng.choose rng !endpoint_array in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    let new_eps = ref [] in
    Hashtbl.iter
      (fun u () ->
        acc := (u, v) :: !acc;
        new_eps := u :: v :: !new_eps)
      chosen;
    endpoint_array := Array.append !endpoint_array (Array.of_list !new_eps)
  done;
  Genutil.dedup_links !acc

let generate rng ~nodes ~hosts ?(m = 2) () =
  if hosts < 2 || hosts > nodes then
    invalid_arg "Barabasi_albert.generate: bad host count";
  let lks = links rng ~nodes ~m in
  let host_ids = Genutil.least_degree_nodes nodes lks hosts in
  let node_array = Genutil.make_nodes ~host_ids ~as_of:(fun _ -> 0) nodes in
  let graph = Graph.of_undirected ~nodes:node_array ~links:(Array.of_list lks) in
  { Testbed.graph; beacons = host_ids; destinations = host_ids }
