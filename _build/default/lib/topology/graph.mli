(** Directed network graphs.

    Nodes are routers or end-hosts, carry an AS identifier (used by the
    inter-/intra-AS analysis of Table 3), and edges are directed links with
    dense integer identifiers so that per-link state (loss rates, Gilbert
    chains, variances) lives in plain arrays. *)

type node_kind = Host | Router

type node = { id : int; kind : node_kind; as_id : int }

type edge = { id : int; src : int; dst : int }

type t

val create : nodes:node array -> edges:(int * int) array -> t
(** [create ~nodes ~edges] builds a graph. Node ids must equal their index
    in [nodes]; edge endpoints must be valid node ids; self-loops and
    duplicate edges are rejected. Edge ids are assigned in array order. *)

val of_undirected :
  nodes:node array -> links:(int * int) array -> t
(** Convenience: every undirected link (u, v) becomes the two directed
    edges (u, v) and (v, u). *)

val node_count : t -> int

val edge_count : t -> int

val node : t -> int -> node

val edge : t -> int -> edge

val nodes : t -> node array

val edges : t -> edge array

val out_edges : t -> int -> edge list
(** Edges leaving a node, in increasing destination order (this fixed order
    makes shortest-path tie-breaking deterministic). *)

val in_degree : t -> int -> int

val out_degree : t -> int -> int

val find_edge : t -> src:int -> dst:int -> edge option

val hosts : t -> node array
(** All nodes of kind [Host], in id order. *)

val is_inter_as : t -> int -> bool
(** Whether the edge's endpoints belong to different ASes. *)

val reverse_edge : t -> int -> int option
(** Id of the opposite-direction edge if present. *)

val undirected_components : t -> int
(** Number of weakly connected components. *)

val pp : Format.formatter -> t -> unit
