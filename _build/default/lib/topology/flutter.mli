(** Route-fluttering detection (Assumption T.2).

    Two paths flutter when they share two links without sharing everything
    in between — they meet, diverge, and meet again. The identifiability
    proof (Theorem 1) requires that no measured pair of paths flutters, so
    the measurement pipeline checks every pair and keeps only one path of
    each offending pair, exactly as the PlanetLab experiment of Section 7
    removed 52 of 48151 paths. *)

val pair_flutters : Path.t -> Path.t -> bool
(** True when the pair violates T.2: their shared links do not form one
    contiguous block along both paths. *)

val check : Path.t array -> (int * int) list
(** All offending row pairs [(i, j)] with [i < j]. Quadratic in the number
    of paths but linear in path length per pair. *)

val remove_fluttering : Path.t array -> Path.t array * Path.t array
(** [(kept, removed)]: greedily drops the later path of every offending
    pair until no pair flutters. Deterministic. *)
