(** Minimal binary min-heap keyed by floats (internal: Dijkstra). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest key first; [None] when empty. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
