type node_kind = Host | Router

type node = { id : int; kind : node_kind; as_id : int }

type edge = { id : int; src : int; dst : int }

type t = {
  g_nodes : node array;
  g_edges : edge array;
  out_adj : edge list array; (* sorted by destination id *)
  in_deg : int array;
  edge_index : (int * int, int) Hashtbl.t; (* (src, dst) -> edge id *)
}

let create ~nodes ~edges =
  let nv = Array.length nodes in
  Array.iteri
    (fun i (n : node) ->
      if n.id <> i then invalid_arg "Graph.create: node id mismatch")
    nodes;
  let edge_index = Hashtbl.create (Array.length edges * 2) in
  let g_edges =
    Array.mapi
      (fun id (src, dst) ->
        if src < 0 || src >= nv || dst < 0 || dst >= nv then
          invalid_arg "Graph.create: edge endpoint out of range";
        if src = dst then invalid_arg "Graph.create: self-loop";
        if Hashtbl.mem edge_index (src, dst) then
          invalid_arg "Graph.create: duplicate edge";
        Hashtbl.add edge_index (src, dst) id;
        { id; src; dst })
      edges
  in
  let out_lists = Array.make nv [] in
  let in_deg = Array.make nv 0 in
  Array.iter
    (fun e ->
      out_lists.(e.src) <- e :: out_lists.(e.src);
      in_deg.(e.dst) <- in_deg.(e.dst) + 1)
    g_edges;
  let out_adj =
    Array.map (fun l -> List.sort (fun a b -> Int.compare a.dst b.dst) l) out_lists
  in
  { g_nodes = nodes; g_edges; out_adj; in_deg; edge_index }

let of_undirected ~nodes ~links =
  let directed =
    Array.concat
      [ links; Array.map (fun (u, v) -> (v, u)) links ]
  in
  create ~nodes ~edges:directed

let node_count g = Array.length g.g_nodes

let edge_count g = Array.length g.g_edges

let node g i =
  if i < 0 || i >= node_count g then invalid_arg "Graph.node: bad id";
  g.g_nodes.(i)

let edge g i =
  if i < 0 || i >= edge_count g then invalid_arg "Graph.edge: bad id";
  g.g_edges.(i)

let nodes g = Array.copy g.g_nodes

let edges g = Array.copy g.g_edges

let out_edges g i =
  if i < 0 || i >= node_count g then invalid_arg "Graph.out_edges: bad id";
  g.out_adj.(i)

let in_degree g i =
  if i < 0 || i >= node_count g then invalid_arg "Graph.in_degree: bad id";
  g.in_deg.(i)

let out_degree g i = List.length (out_edges g i)

let find_edge g ~src ~dst =
  match Hashtbl.find_opt g.edge_index (src, dst) with
  | Some id -> Some g.g_edges.(id)
  | None -> None

let hosts g =
  Array.of_list
    (Array.to_list g.g_nodes |> List.filter (fun n -> n.kind = Host))

let is_inter_as g eid =
  let e = edge g eid in
  (node g e.src).as_id <> (node g e.dst).as_id

let reverse_edge g eid =
  let e = edge g eid in
  Option.map (fun e' -> e'.id) (find_edge g ~src:e.dst ~dst:e.src)

let undirected_components g =
  let nv = node_count g in
  let seen = Array.make nv false in
  (* undirected adjacency built on the fly from out edges of both ends *)
  let rev_adj = Array.make nv [] in
  Array.iter (fun e -> rev_adj.(e.dst) <- e.src :: rev_adj.(e.dst)) g.g_edges;
  let comps = ref 0 in
  for start = 0 to nv - 1 do
    if not seen.(start) then begin
      incr comps;
      let stack = ref [ start ] in
      seen.(start) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            List.iter
              (fun e ->
                if not seen.(e.dst) then begin
                  seen.(e.dst) <- true;
                  stack := e.dst :: !stack
                end)
              g.out_adj.(u);
            List.iter
              (fun v ->
                if not seen.(v) then begin
                  seen.(v) <- true;
                  stack := v :: !stack
                end)
              rev_adj.(u)
      done
    end
  done;
  !comps

let pp ppf g =
  Format.fprintf ppf "graph: %d nodes (%d hosts), %d edges" (node_count g)
    (Array.length (hosts g))
    (edge_count g)
