(** Chunked index-range scheduling.

    Work is cut into blocks whose count depends only on the problem size,
    never on the number of workers: a kernel that merges per-block partial
    results in block order therefore produces bit-for-bit identical output
    for every [jobs] value, because exactly the same floating-point
    operations run in exactly the same order — only the assignment of
    blocks to domains changes. *)

val block_count : ?min_block:int -> ?max_blocks:int -> int -> int
(** [block_count n] is how many blocks to cut [n] work items into:
    [n / min_block] clamped to [1 .. max_blocks] (0 when [n = 0]).
    Defaults: [min_block = 2048] (below this, one block — the sequential
    fallback), [max_blocks = 64] (plenty of slack for load balancing on
    any core count we target). Both knobs are size heuristics, not worker
    counts: the result never depends on the pool. *)

val range : blocks:int -> n:int -> int -> int * int
(** [range ~blocks ~n b] is the half-open range [(lo, hi)] of block [b]
    in a balanced partition of [0 .. n-1]: sizes differ by at most one and
    the ranges tile [0, n) in order. Raises [Invalid_argument] if [b] is
    not in [0 .. blocks-1]. *)

val tile_count : tile:int -> np:int -> int
(** Number of 2-D tiles when the upper pair triangle over [np] items is
    cut into bands of [tile] consecutive indices: with
    [nb = ceil(np / tile)] bands there are [nb (nb + 1) / 2] band pairs
    [(bi, bj)], [bi <= bj]. Like {!block_count}, the result depends only
    on the problem size, never on the worker count. Raises
    [Invalid_argument] when [tile < 1] or [np < 0]. *)

val tile_bounds : tile:int -> np:int -> int -> (int * int) * (int * int)
(** [tile_bounds ~tile ~np t] is [((ilo, ihi), (jlo, jhi))], the half-open
    band ranges of tile [t] in the canonical order (all tiles of band 0
    first, then band 1, ...): pairs [(i, j)] of the tile satisfy
    [ilo <= i < ihi], [max i jlo <= j < jhi]. Sweeping tiles in index
    order and, inside a tile, [i] then [j] in increasing order visits
    every pair of the triangle exactly once — in a cache-friendly order,
    because the [tile] rows of the [j]-band stay hot while [i] walks its
    band. Raises [Invalid_argument] when [t] is out of range. *)

val iter_pairs : np:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
(** [iter_pairs ~np ~lo ~hi f] calls [f k i j] for every flattened
    upper-triangle index [k] in [lo .. hi-1], in increasing order, where
    [(i, j)] with [0 <= i <= j < np] is pair number [k] in the canonical
    row-major order — the same order as [Core.Augmented.row_index]. The
    start pair is located once and then advanced incrementally, so a
    block of [hi - lo] pairs costs O(np + hi - lo). *)
