let default_jobs () = min (Domain.recommended_domain_count ()) 8

(* process-wide telemetry, against the default (initially disabled)
   registry; a disabled probe is one branch, see Obs.Metrics *)
let m_tasks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Pool tasks executed (one per scheduled block)" "pool_tasks_total"

let m_blocks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Blocks submitted to the pool queue" "pool_blocks_scheduled_total"

let m_seq_fallbacks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Parallel sections run sequentially (jobs=1, single block, or nested)"
    "pool_sequential_fallbacks_total"

let m_nested_fallbacks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Sequential fallbacks taken because the caller was already a pool task"
    "pool_nested_fallbacks_total"

let m_queue_wait =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds between block enqueue and execution start"
    "pool_queue_wait_seconds"

let m_busy_ns =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Nanoseconds pool workers spent executing tasks" "pool_worker_busy_ns_total"

let m_idle_ns =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Nanoseconds pool workers spent waiting for work" "pool_worker_idle_ns_total"

type stats = {
  tasks_run : int;
  blocks_scheduled : int;
  sequential_fallbacks : int;
  queue_wait_p50 : float;
  queue_wait_p95 : float;
  queue_wait_p99 : float;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
  tasks_run : int Atomic.t;
  blocks_scheduled : int Atomic.t;
  seq_fallbacks : int Atomic.t;
}

let stats pool =
  {
    tasks_run = Atomic.get pool.tasks_run;
    blocks_scheduled = Atomic.get pool.blocks_scheduled;
    sequential_fallbacks = Atomic.get pool.seq_fallbacks;
    (* read back from the process-wide queue-wait histogram: per-pool
       attribution is not tracked, and the estimate is nan until the
       metrics registry has observed at least one enqueue *)
    queue_wait_p50 = Obs.Metrics.histogram_quantile m_queue_wait 0.50;
    queue_wait_p95 = Obs.Metrics.histogram_quantile m_queue_wait 0.95;
    queue_wait_p99 = Obs.Metrics.histogram_quantile m_queue_wait 0.99;
  }

(* set while a pool task runs, so nested parallel sections degrade to
   sequential execution instead of deadlocking the pool *)
let in_task_key = Domain.DLS.new_key (fun () -> false)

let in_task () = Domain.DLS.get in_task_key

let rec worker_loop pool =
  (* busy/idle accounting only touches the clock when the registry is
     enabled; the disabled path is branch-free apart from [obs] itself *)
  let obs = Obs.Metrics.enabled Obs.Metrics.default in
  let t_wait = if obs then Obs.Clock.now_ns () else 0L in
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
        if pool.stopping then None
        else begin
          Condition.wait pool.has_work pool.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
      if obs then begin
        let t_run = Obs.Clock.now_ns () in
        Obs.Metrics.add m_idle_ns (Int64.to_int (Int64.sub t_run t_wait));
        task ();
        Obs.Metrics.add m_busy_ns
          (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t_run))
      end
      else task ();
      worker_loop pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs < 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopping = false;
      tasks_run = Atomic.make 0;
      blocks_scheduled = Atomic.make 0;
      seq_fallbacks = Atomic.make 0;
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* process-wide pools, one per jobs value, spawned on first use *)
let registry_mutex = Mutex.create ()

let registry : (int, t) Hashtbl.t = Hashtbl.create 8

let get ~jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool.get: jobs < 1";
  Mutex.lock registry_mutex;
  let pool =
    match Hashtbl.find_opt registry jobs with
    | Some pool -> pool
    | None ->
        let pool = create ~jobs in
        Hashtbl.add registry jobs pool;
        pool
  in
  Mutex.unlock registry_mutex;
  pool

(* tasks never let an exception escape into [worker_loop]; the first (by
   block index) exception is re-raised in the caller after the barrier *)
let run_blocks pool n f =
  let remaining = Atomic.make n in
  let fin_mutex = Mutex.create () in
  let fin_cond = Condition.create () in
  let exns = Array.make n None in
  Atomic.fetch_and_add pool.blocks_scheduled n |> ignore;
  Obs.Metrics.add m_blocks n;
  (* one reading at submission serves every block's queue-wait probe *)
  let t_enqueue =
    if Obs.Metrics.enabled Obs.Metrics.default then Obs.Clock.now_ns () else 0L
  in
  let tracing = Obs.Trace.enabled Obs.Trace.default in
  let task b () =
    Domain.DLS.set in_task_key true;
    Atomic.incr pool.tasks_run;
    Obs.Metrics.incr m_tasks;
    if Obs.Metrics.enabled Obs.Metrics.default && Int64.compare t_enqueue 0L > 0
    then Obs.Metrics.observe m_queue_wait (Obs.Clock.seconds_since t_enqueue);
    (try
       if tracing then
         Obs.Trace.with_span
           ~args:[ ("block", Obs.Field.Int b) ]
           Obs.Trace.default "pool.task"
           (fun () -> f b)
       else f b
     with e -> exns.(b) <- Some e);
    Domain.DLS.set in_task_key false;
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      Mutex.lock fin_mutex;
      Condition.broadcast fin_cond;
      Mutex.unlock fin_mutex
    end
  in
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.Pool: pool has been shut down"
  end;
  for b = 0 to n - 1 do
    Queue.push (task b) pool.queue
  done;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  (* the caller works too: drain the queue, then wait out stragglers *)
  let rec help () =
    if Atomic.get remaining > 0 then begin
      Mutex.lock pool.mutex;
      let t = Queue.take_opt pool.queue in
      Mutex.unlock pool.mutex;
      match t with
      | Some t ->
          t ();
          help ()
      | None ->
          Mutex.lock fin_mutex;
          while Atomic.get remaining > 0 do
            Condition.wait fin_cond fin_mutex
          done;
          Mutex.unlock fin_mutex
    end
  in
  help ();
  Array.iter (function Some e -> raise e | None -> ()) exns

let for_blocks ?jobs ?pool n f =
  if n < 0 then invalid_arg "Parallel.Pool.for_blocks: negative block count";
  if n > 0 then begin
    let jobs =
      match (pool, jobs) with
      | Some p, _ -> size p
      | None, Some j ->
          if j < 1 then invalid_arg "Parallel.Pool.for_blocks: jobs < 1";
          j
      | None, None -> default_jobs ()
    in
    if jobs = 1 || n = 1 || in_task () then begin
      Obs.Metrics.incr m_seq_fallbacks;
      if in_task () then Obs.Metrics.incr m_nested_fallbacks;
      (match pool with
      | Some p -> Atomic.incr p.seq_fallbacks
      | None -> ());
      for b = 0 to n - 1 do
        f b
      done
    end
    else
      let pool = match pool with Some p -> p | None -> get ~jobs in
      run_blocks pool n f
  end

let parallel_for ?jobs ?min_block ~n f =
  let blocks = Chunk.block_count ?min_block n in
  for_blocks ?jobs blocks (fun b ->
      let lo, hi = Chunk.range ~blocks ~n b in
      for i = lo to hi - 1 do
        f i
      done)

let map_reduce ?jobs ~blocks ~map ~reduce ~init =
  if blocks < 0 then invalid_arg "Parallel.Pool.map_reduce: negative block count";
  let results = Array.make blocks None in
  for_blocks ?jobs blocks (fun b -> results.(b) <- Some (map b));
  Array.fold_left
    (fun acc r ->
      match r with Some x -> reduce acc x | None -> assert false)
    init results

module Buffers = struct
  type 'a t = {
    make : unit -> 'a;
    mutex : Mutex.t;
    mutable free : 'a list;
    mutable created : 'a list;
  }

  let create make = { make; mutex = Mutex.create (); free = []; created = [] }

  let borrow t =
    Mutex.lock t.mutex;
    match t.free with
    | b :: rest ->
        t.free <- rest;
        Mutex.unlock t.mutex;
        b
    | [] ->
        Mutex.unlock t.mutex;
        let b = t.make () in
        Mutex.lock t.mutex;
        t.created <- b :: t.created;
        Mutex.unlock t.mutex;
        b

  let return t b =
    Mutex.lock t.mutex;
    t.free <- b :: t.free;
    Mutex.unlock t.mutex

  let all t =
    Mutex.lock t.mutex;
    let l = t.created in
    Mutex.unlock t.mutex;
    l
end
