let block_count ?(min_block = 2048) ?(max_blocks = 64) n =
  if n < 0 then invalid_arg "Chunk.block_count: negative size";
  if n = 0 then 0
  else begin
    if min_block < 1 then invalid_arg "Chunk.block_count: min_block < 1";
    if max_blocks < 1 then invalid_arg "Chunk.block_count: max_blocks < 1";
    max 1 (min max_blocks (n / min_block))
  end

let range ~blocks ~n b =
  if b < 0 || b >= blocks then invalid_arg "Chunk.range: block out of range";
  (b * n / blocks, (b + 1) * n / blocks)

let bands ~tile ~np =
  if tile < 1 then invalid_arg "Chunk.tile_count: tile < 1";
  if np < 0 then invalid_arg "Chunk.tile_count: negative size";
  (np + tile - 1) / tile

let tile_count ~tile ~np =
  let nb = bands ~tile ~np in
  nb * (nb + 1) / 2

let tile_bounds ~tile ~np t =
  let nb = bands ~tile ~np in
  if t < 0 || t >= nb * (nb + 1) / 2 then
    invalid_arg "Chunk.tile_bounds: tile index out of range";
  (* band bi owns the nb - bi tiles starting at bi*nb - bi*(bi-1)/2 *)
  let rec find bi t =
    let row = nb - bi in
    if t < row then (bi, bi + t) else find (bi + 1) (t - row)
  in
  let bi, bj = find 0 t in
  let clip lo = min np lo in
  ((clip (bi * tile), clip ((bi + 1) * tile)),
   (clip (bj * tile), clip ((bj + 1) * tile)))

let iter_pairs ~np ~lo ~hi f =
  if lo < 0 || hi > np * (np + 1) / 2 || lo > hi then
    invalid_arg "Chunk.iter_pairs: bad range";
  (* locate the pair of flat index [lo]: row i owns the np - i indices
     starting at i*np - i*(i-1)/2 *)
  let i = ref 0 and base = ref 0 in
  while !i < np && !base + (np - !i) <= lo do
    base := !base + (np - !i);
    incr i
  done;
  let j = ref (!i + (lo - !base)) in
  for k = lo to hi - 1 do
    f k !i !j;
    incr j;
    if !j >= np then begin
      incr i;
      j := !i
    end
  done
