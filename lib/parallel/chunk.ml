let block_count ?(min_block = 2048) ?(max_blocks = 64) n =
  if n < 0 then invalid_arg "Chunk.block_count: negative size";
  if n = 0 then 0
  else begin
    if min_block < 1 then invalid_arg "Chunk.block_count: min_block < 1";
    if max_blocks < 1 then invalid_arg "Chunk.block_count: max_blocks < 1";
    max 1 (min max_blocks (n / min_block))
  end

let range ~blocks ~n b =
  if b < 0 || b >= blocks then invalid_arg "Chunk.range: block out of range";
  (b * n / blocks, (b + 1) * n / blocks)

let iter_pairs ~np ~lo ~hi f =
  if lo < 0 || hi > np * (np + 1) / 2 || lo > hi then
    invalid_arg "Chunk.iter_pairs: bad range";
  (* locate the pair of flat index [lo]: row i owns the np - i indices
     starting at i*np - i*(i-1)/2 *)
  let i = ref 0 and base = ref 0 in
  while !i < np && !base + (np - !i) <= lo do
    base := !base + (np - !i);
    incr i
  done;
  let j = ref (!i + (lo - !base)) in
  for k = lo to hi - 1 do
    f k !i !j;
    incr j;
    if !j >= np then begin
      incr i;
      j := !i
    end
  done
