(** A fixed-size domain pool with deterministic parallel iteration.

    A pool of [jobs] is backed by [jobs - 1] worker domains spawned once
    and reused for the life of the process; the submitting domain works
    alongside them, so [jobs] bounds the number of simultaneously active
    domains. Work arrives on a queue guarded by a [Mutex.t] / [Condition.t]
    pair. Every entry point falls back to plain in-order execution when
    [jobs = 1], when the work is a single block, or when called from
    inside a pool task (nested parallelism never deadlocks — inner calls
    run sequentially on the worker that issued them).

    Determinism contract: the iteration helpers below schedule work in
    blocks computed by {!Chunk.block_count} from the problem size alone.
    A kernel that (a) writes each output slot from exactly one block, or
    (b) merges per-block partials in block index order, produces
    bit-for-bit identical results for every [jobs] value. *)

type t

type stats = {
  tasks_run : int;  (** blocks actually executed through this pool *)
  blocks_scheduled : int;  (** blocks pushed onto this pool's queue *)
  sequential_fallbacks : int;
      (** sections handed to this pool that ran inline instead (single
          block, or issued from inside a pool task) *)
  queue_wait_p50 : float;
      (** median seconds between block enqueue and execution start, read
          back from the process-wide [pool_queue_wait_seconds] histogram
          (bucket-interpolated, see {!Obs.Metrics.histogram_quantile});
          [nan] until the metrics registry has recorded an enqueue *)
  queue_wait_p95 : float;
  queue_wait_p99 : float;
}

val stats : t -> stats
(** A consistent-enough snapshot of this pool's lifetime counters (each
    field is an atomic read; no lock is taken). Sections that fall back
    to sequential before a pool is resolved — [?jobs] calls with
    [jobs = 1] — are counted only by the process-wide
    [pool_sequential_fallbacks_total] metric, not here. The queue-wait
    quantiles come from the process-wide histogram (all pools combined)
    and need {!Obs.Metrics.default} enabled while the blocks ran.

    Telemetry note: the pool also feeds the process-wide
    {!Obs.Metrics.default} registry ([pool_tasks_total],
    [pool_blocks_scheduled_total], [pool_queue_wait_seconds],
    [pool_worker_busy_ns_total], [pool_worker_idle_ns_total],
    [pool_sequential_fallbacks_total], [pool_nested_fallbacks_total])
    and, when {!Obs.Trace.default} has a sink, emits one [pool.task]
    span per executed block on the running domain's row. All probes are
    single-branch no-ops while the registry is disabled. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — the default for
    every [?jobs] argument in the library and for the CLI [--jobs] flag. *)

val create : jobs:int -> t
(** A fresh pool backed by [jobs - 1] worker domains. Raises
    [Invalid_argument] when [jobs < 1]. Prefer {!get}, which reuses
    pools, unless the pool's lifetime must be controlled (tests). *)

val size : t -> int
(** The [jobs] the pool was created with. *)

val get : jobs:int -> t
(** The process-wide pool for this [jobs] value, created on first use and
    reused by every later call — repeated parallel sections pay the
    domain-spawn cost once. Raises [Invalid_argument] when [jobs < 1]. *)

val shutdown : t -> unit
(** Stops and joins the pool's workers; subsequent use of the pool raises
    [Invalid_argument]. Only needed for pools from {!create}: pools from
    {!get} live until process exit (idle workers block on the queue's
    condition variable and cost nothing). *)

val for_blocks : ?jobs:int -> ?pool:t -> int -> (int -> unit) -> unit
(** [for_blocks n f] runs [f b] for every block index [b] in [0 .. n-1],
    distributing blocks over the pool. [?jobs] (default {!default_jobs})
    selects the shared pool via {!get}; [?pool] overrides it with an
    explicitly created pool. All blocks run to completion even if some
    raise; the exception of the lowest-numbered failing block is then
    re-raised in the caller. In the sequential fallback blocks run in
    increasing order and the first exception propagates immediately. *)

val parallel_for : ?jobs:int -> ?min_block:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f i] for [i] in [0 .. n-1], cut into
    {!Chunk.block_count}[ ~min_block n] blocks of consecutive indices.
    Within a block, indices run in increasing order. Safe whenever
    distinct [i] touch distinct state. *)

val map_reduce :
  ?jobs:int -> blocks:int -> map:(int -> 'a) -> reduce:('a -> 'a -> 'a) ->
  init:'a -> 'a
(** [map_reduce ~blocks ~map ~reduce ~init] computes
    [reduce (... (reduce (reduce init (map 0)) (map 1)) ...) (map (blocks-1))]:
    the maps run in parallel, the fold is performed by the caller in
    block index order, so the result is identical for every [jobs]. *)

(** Reusable accumulation buffers for parallel reductions whose merge is
    order-insensitive (e.g. exact integer counts held in floats). A task
    borrows a buffer, accumulates into it, and returns it; at most one
    buffer exists per concurrently running task, and {!Buffers.all}
    exposes every buffer ever handed out for the final merge. *)
module Buffers : sig
  type 'a t

  val create : (unit -> 'a) -> 'a t
  (** [create make] allocates buffers lazily with [make]. *)

  val borrow : 'a t -> 'a
  (** A free buffer, or a fresh one if none is free. Thread-safe. *)

  val return : 'a t -> 'a -> unit
  (** Hand a borrowed buffer back for reuse. Thread-safe. *)

  val all : 'a t -> 'a list
  (** Every buffer ever created, for the final merge. Only meaningful
      once all borrowing tasks have completed. *)
end
