(* Minimal JSON reader for the telemetry formats this library itself
   writes (recorder dumps, convergence streams, trace events, and the
   Prometheus text format's JSON cousins). Recursive descent over a
   string, no dependencies; not a general-purpose validator — it accepts
   exactly RFC 8259 syntax but reports errors by character offset
   only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { offset : int; message : string }

let fail offset message = raise (Parse_error { offset; message })

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c.pos (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' ->
            advance c;
            Buffer.add_char b '"';
            go ()
        | Some '\\' ->
            advance c;
            Buffer.add_char b '\\';
            go ()
        | Some '/' ->
            advance c;
            Buffer.add_char b '/';
            go ()
        | Some 'b' ->
            advance c;
            Buffer.add_char b '\b';
            go ()
        | Some 'f' ->
            advance c;
            Buffer.add_char b '\012';
            go ()
        | Some 'n' ->
            advance c;
            Buffer.add_char b '\n';
            go ()
        | Some 'r' ->
            advance c;
            Buffer.add_char b '\r';
            go ()
        | Some 't' ->
            advance c;
            Buffer.add_char b '\t';
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              fail c.pos "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c.pos "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* UTF-8 encode the BMP code point; surrogate pairs are not
               recombined (the writers never emit them) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c.pos "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when numchar ch -> advance c; true | _ -> false
  do
    ()
  done;
  if c.pos = start then fail start "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail start "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> fail c.pos "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c.pos "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing characters";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_float_opt = function
  | Num f -> Some f
  | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
