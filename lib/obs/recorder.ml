(* Flight recorder: per-domain ring buffers of recent structured events.

   The recorder answers "what was the process doing just before it
   failed?" without the cost or volume of full tracing: every domain
   appends into its own fixed-capacity ring (drop-oldest), so a steady
   stream of solver iterations keeps exactly the recent tail, and the
   hot-path cost of a disabled recorder is one load and one branch —
   cheap enough to leave the probes compiled into the kernels.

   Determinism: the per-domain rings are merged by a stable sort on
   (ts_us, domain, seq). Timestamps vary run to run, but for fixed ring
   contents the merge order is a pure function of the events, and the
   multiset of events produced by a jobs-invariant computation is itself
   jobs-invariant (which domain recorded an event is not, so [domain] is
   a label, never a key the analysis depends on).

   Dumps are JSONL: a header object, then one event object per line.
   They happen on demand ([dump]), through [auto_dump] when a dump path
   is configured (wired to Refused verdicts and solver non-convergence
   by the core layers), and at process exit — so a run nobody was
   watching still explains itself after the fact. *)

let shards = 16 (* power of two, matching Metrics' sharding *)

type event = {
  seq : int; (* per-ring sequence, strictly increasing from 0 *)
  domain : int; (* id of the recording domain *)
  ts_us : int64;
  kind : string; (* "span_begin" | "span_end" | "solver_iter" | ... *)
  name : string;
  fields : (string * Field.t) list;
}

type ring = {
  r_mutex : Mutex.t;
  mutable slots : event array; (* allocated on first record *)
  mutable written : int; (* events ever recorded into this ring *)
}

type t = {
  on : bool ref;
  capacity : int; (* per-ring *)
  rings : ring array;
  config : Mutex.t;
  mutable dump_path : string option;
  mutable exit_hooked : bool;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Obs.Recorder.create: capacity < 1";
  {
    on = ref false;
    capacity;
    rings =
      Array.init shards (fun _ ->
          { r_mutex = Mutex.create (); slots = [||]; written = 0 });
    config = Mutex.create ();
    dump_path = None;
    exit_hooked = false;
  }

let default = create ()

let enable t = t.on := true

let disable t = t.on := false

let enabled t = !(t.on)

let capacity t = t.capacity

let dummy =
  { seq = 0; domain = 0; ts_us = 0L; kind = ""; name = ""; fields = [] }

let record t ?(fields = []) ~kind name =
  if !(t.on) then begin
    let domain = (Domain.self () :> int) in
    let ring = t.rings.(domain land (shards - 1)) in
    let ts_us = Clock.now_us () in
    Mutex.lock ring.r_mutex;
    if Array.length ring.slots = 0 then
      ring.slots <- Array.make t.capacity dummy;
    ring.slots.(ring.written mod t.capacity) <-
      { seq = ring.written; domain; ts_us; kind; name; fields };
    ring.written <- ring.written + 1;
    Mutex.unlock ring.r_mutex
  end

let ring_events ring capacity =
  Mutex.lock ring.r_mutex;
  let written = ring.written in
  let n = min written capacity in
  let out =
    Array.init n (fun k ->
        (* oldest surviving event first *)
        ring.slots.((written - n + k) mod capacity))
  in
  Mutex.unlock ring.r_mutex;
  Array.to_list out

let events t =
  let all =
    Array.to_list t.rings
    |> List.concat_map (fun ring -> ring_events ring t.capacity)
  in
  List.stable_sort
    (fun a b ->
      match Int64.compare a.ts_us b.ts_us with
      | 0 -> (
          match Int.compare a.domain b.domain with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
    all

let recorded t =
  Array.fold_left (fun acc ring -> acc + ring.written) 0 t.rings

let dropped t =
  Array.fold_left
    (fun acc ring -> acc + max 0 (ring.written - t.capacity))
    0 t.rings

let reset t =
  Array.iter
    (fun ring ->
      Mutex.lock ring.r_mutex;
      ring.slots <- [||];
      ring.written <- 0;
      Mutex.unlock ring.r_mutex)
    t.rings

let event_json e =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"kind\": %s, \"name\": %s, \"domain\": %d, \"seq\": %d, \"ts_us\": %Ld"
    (Field.json_string e.kind) (Field.json_string e.name) e.domain e.seq
    e.ts_us;
  if e.fields <> [] then
    Printf.bprintf b ", \"args\": %s" (Field.assoc_json e.fields);
  Buffer.add_char b '}';
  Buffer.contents b

let dump t ~reason sink =
  let evs = events t in
  Sink.write sink
    (Field.assoc_json
       [
         ("kind", Field.Str "recorder_dump");
         ("reason", Field.Str reason);
         ("events", Field.Int (List.length evs));
         ("dropped", Field.Int (dropped t));
         ("capacity", Field.Int t.capacity);
       ]);
  List.iter (fun e -> Sink.write sink (event_json e)) evs;
  Sink.flush sink

let dump_path t =
  Mutex.lock t.config;
  let p = t.dump_path in
  Mutex.unlock t.config;
  p

let auto_dump t ~reason =
  match dump_path t with
  | None -> ()
  | Some path ->
      let sink = Sink.file path in
      Fun.protect ~finally:(fun () -> Sink.close sink) (fun () ->
          dump t ~reason sink)

let set_dump_path t path =
  Mutex.lock t.config;
  t.dump_path <- path;
  let hook = path <> None && not t.exit_hooked in
  if hook then t.exit_hooked <- true;
  Mutex.unlock t.config;
  (* each dump truncates the file, so the exit-time dump supersedes any
     earlier refusal/non-convergence dump with a superset of its events *)
  if hook then at_exit (fun () -> if enabled t then auto_dump t ~reason:"exit")
