(** Flight recorder: fixed-capacity rings of recent structured events,
    one ring per domain shard, merged deterministically and dumped as
    JSONL — the post-hoc counterpart to live tracing.

    Where {!Trace} streams every span to a sink as it happens, the
    recorder keeps only the recent tail (drop-oldest per ring) in
    memory, and writes it out when something goes wrong: on demand, on a
    [Refused] health verdict or solver non-convergence (the core layers
    call {!auto_dump}), and at process exit once a dump path is
    configured. A failed run nobody was watching thereby explains
    itself after the fact.

    {b Overhead contract.} A probe against a disabled recorder is one
    load and one branch; enabled, it is one mutex-protected array store
    per event. Recording never reads or mutates the instrumented
    computation: estimates are bit-for-bit identical with the recorder
    on or off.

    {b Determinism contract.} Events merge by a stable sort on
    [(ts_us, domain, seq)] — a pure function of the ring contents. The
    multiset of events emitted by a jobs-invariant computation is itself
    jobs-invariant; which [domain] recorded an event is scheduling, so
    treat it as a label, not a key. *)

type event = {
  seq : int;  (** per-ring sequence number, strictly increasing from 0 *)
  domain : int;  (** id of the recording domain *)
  ts_us : int64;  (** {!Clock} microseconds *)
  kind : string;
      (** event class: ["span_begin"], ["span_end"], ["instant"],
          ["solver_iter"], ["solver_done"], ["verdict"], ... *)
  name : string;  (** span/solver/probe name *)
  fields : (string * Field.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Fresh recorder, disabled, with [capacity] slots {e per ring}
    (default 4096; there are 16 rings). Raises [Invalid_argument] when
    [capacity < 1]. *)

val default : t
(** The process-wide recorder the library's built-in probes target.
    Starts disabled; the CLI enables it under [--flight-recorder]. *)

val enable : t -> unit

val disable : t -> unit

val enabled : t -> bool

val capacity : t -> int

val record : t -> ?fields:(string * Field.t) list -> kind:string -> string -> unit
(** [record t ~kind name] appends one event to the calling domain's
    ring, dropping that ring's oldest event when full. Disabled: one
    branch, no allocation. *)

val events : t -> event list
(** Merged snapshot of every ring, oldest first (stable sort on
    [(ts_us, domain, seq)]). *)

val recorded : t -> int
(** Events ever recorded (including dropped ones). *)

val dropped : t -> int
(** Events lost to ring rotation so far. *)

val reset : t -> unit
(** Empty every ring (counters included). The dump path is kept. *)

val dump : t -> reason:string -> Sink.t -> unit
(** Write a JSONL dump: one header object
    ([{"kind": "recorder_dump", "reason": ..., "events": N, "dropped":
    D, "capacity": C}]) followed by one event object per line
    ([kind]/[name]/[domain]/[seq]/[ts_us] and the fields under
    ["args"]). *)

val set_dump_path : t -> string option -> unit
(** Configure where {!auto_dump} writes. The first non-[None] path also
    registers an [at_exit] hook that dumps (reason ["exit"]) if the
    recorder is still enabled — each dump truncates the file, so the
    exit dump supersedes earlier emergency dumps with a superset of
    their events. *)

val dump_path : t -> string option

val auto_dump : t -> reason:string -> unit
(** Dump to the configured path (truncating), or do nothing when no
    path is set. Called by the library on [Refused] verdicts and solver
    non-convergence. *)
