(* Monotonized wall clock. The container's OCaml distribution exposes no
   CLOCK_MONOTONIC binding, so we monotonize [Unix.gettimeofday] against a
   process-start epoch: readings never decrease (concurrent readers race
   through a CAS on the high-water mark), and subtracting the epoch before
   scaling keeps double-precision nanosecond resolution for ~100 days of
   uptime. *)

let epoch = Unix.gettimeofday ()

let high_water = Atomic.make 0L

let raw_ns () = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let rec monotonize t =
  let prev = Atomic.get high_water in
  if Int64.compare t prev <= 0 then prev
  else if Atomic.compare_and_set high_water prev t then t
  else monotonize t

let now_ns () = monotonize (raw_ns ())

let now_us () = Int64.div (now_ns ()) 1_000L

let seconds_since t0_ns = Int64.to_float (Int64.sub (now_ns ()) t0_ns) *. 1e-9

let wall_s = Unix.gettimeofday
