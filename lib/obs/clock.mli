(** Monotonized process clock for telemetry timestamps.

    [Unix.gettimeofday] anchored at module-load time and clamped to a
    process-wide high-water mark, so successive readings never decrease
    even across domains (a stepped system clock shows up as a stall, not
    as negative span durations). Resolution is sub-microsecond. *)

val now_ns : unit -> int64
(** Nanoseconds since process start, monotonically non-decreasing. *)

val now_us : unit -> int64
(** {!now_ns} divided down to microseconds (the Chrome trace unit). *)

val seconds_since : int64 -> float
(** [seconds_since t0] is the elapsed time in seconds between a previous
    {!now_ns} reading [t0] and now. *)

val wall_s : unit -> float
(** Raw wall-clock seconds since the Unix epoch (for log timestamps;
    not monotonized). *)
