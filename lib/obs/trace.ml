(* Chrome trace-event spans, one JSON object per line.

   The output is the Chrome/Perfetto "JSON array format" written
   incrementally: the first line is "[", every event line is a complete
   JSON object followed by a comma, and the closing "]" is omitted — the
   loaders accept the unterminated form, which lets us append from
   several domains and survive a killed process. Spans are "X" (complete)
   events carrying ts/dur in microseconds; nesting is reconstructed by
   the viewer from containment of [ts, ts+dur) ranges within one tid, and
   tid is the raising domain's id, so pool-worker spans land on their own
   rows.

   Spans also feed the flight recorder (Recorder.default) when it is
   enabled, independently of whether a trace sink is installed: the
   span_end event carries the duration plus the GC words the span
   allocated (minor + major - promoted, by Gc.quick_stat delta on the
   running domain), which is what the report profiler's per-phase
   allocation column is built from. *)

type t = { mutable sink : Sink.t option }

let default = { sink = None }

let create () = { sink = None }

let enabled t = t.sink <> None

let set_sink t sink =
  (match t.sink with Some old -> Sink.close old | None -> ());
  t.sink <- sink;
  match sink with Some s -> Sink.write s "[" | None -> ()

let close t = set_sink t None

let flush t = match t.sink with Some s -> Sink.flush s | None -> ()

let emit t ~name ~ph ~ts_us ~dur_us ~args =
  match t.sink with
  | None -> ()
  | Some sink ->
      let b = Buffer.create 160 in
      Printf.bprintf b
        "{\"name\": %s, \"cat\": \"lia\", \"ph\": \"%c\", \"ts\": %Ld, \"pid\": 0, \
         \"tid\": %d"
        (Field.json_string name) ph ts_us
        (Domain.self () :> int);
      (match dur_us with
      | Some d -> Printf.bprintf b ", \"dur\": %Ld" d
      | None -> ());
      if args <> [] then
        Printf.bprintf b ", \"args\": %s" (Field.assoc_json args);
      Buffer.add_string b "},";
      Sink.write sink (Buffer.contents b)

(* words allocated by this domain so far; quick_stat never walks the
   heap. Gc.minor_words () reads the live young-pointer (quick_stat's
   minor_words only updates at minor collections, so short spans would
   read as zero); the major terms add direct major-heap allocations
   without double-counting promotions. *)
let alloc_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let instant ?(args = []) t name =
  if Recorder.enabled Recorder.default then
    Recorder.record Recorder.default ~fields:args ~kind:"instant" name;
  if enabled t then
    emit t ~name ~ph:'i' ~ts_us:(Clock.now_us ()) ~dur_us:None ~args

let with_span ?(args = []) t name f =
  let recording = Recorder.enabled Recorder.default in
  match t.sink with
  | None when not recording -> f ()
  | _ ->
      let t0 = Clock.now_ns () in
      let w0 = if recording then alloc_words () else 0. in
      if recording then
        Recorder.record Recorder.default ~fields:args ~kind:"span_begin" name;
      Fun.protect
        ~finally:(fun () ->
          let t1 = Clock.now_ns () in
          let dur_us = Int64.div (Int64.sub t1 t0) 1_000L in
          if recording then
            Recorder.record Recorder.default ~kind:"span_end" name
              ~fields:
                (args
                @ [
                    ("dur_us", Field.Int (Int64.to_int dur_us));
                    ( "alloc_words",
                      Field.Int (int_of_float (alloc_words () -. w0)) );
                  ]);
          emit t ~name ~ph:'X'
            ~ts_us:(Int64.div t0 1_000L)
            ~dur_us:(Some dur_us) ~args)
        f
