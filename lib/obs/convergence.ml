(* Per-iteration solver convergence stream, one flat JSON object per
   line. A sibling of Trace with a narrower schema: each line is one
   CGLS/CG iteration carrying the solve id, iteration index, relative
   residual, and the solve's context (phase, preconditioner, warm/cold).
   The stream is for plotting convergence curves offline; the same
   events also land in the flight recorder and the lia_cgls_* histograms
   regardless of whether a stream sink is installed. *)

type t = { mutable sink : Sink.t option }

let default = { sink = None }

let create () = { sink = None }

let enabled t = t.sink <> None

let set_sink t sink =
  (match t.sink with Some old -> Sink.close old | None -> ());
  t.sink <- sink

let close t = set_sink t None

let flush t = match t.sink with Some s -> Sink.flush s | None -> ()

let emit t ~solver ~solve ~iteration ~relative_residual ~context =
  match t.sink with
  | None -> ()
  | Some sink ->
      Sink.write sink
        (Field.assoc_json
           ([
              ("solver", Field.Str solver);
              ("solve", Field.Int solve);
              ("iteration", Field.Int iteration);
              ("relres", Field.Float relative_residual);
            ]
           @ context))
