(** The one-line kernel probe used by the instrumented hot layers. *)

val kernel :
  ?args:(string * Field.t) list ->
  hist:Metrics.histogram ->
  string ->
  (unit -> 'a) ->
  'a
(** [kernel ~hist name f] runs [f] inside a {!Trace.default} span named
    [name] and records its duration into [hist] (seconds). With tracing
    and metrics both disabled this costs two branches. *)
