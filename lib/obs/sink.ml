(* A sink serializes whole lines; the mutex makes concurrent writers from
   pool domains safe without each producer carrying its own lock. *)

type t = {
  mutex : Mutex.t;
  write_line : string -> unit;
  do_flush : unit -> unit;
  do_close : unit -> unit;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let write t line = locked t (fun () -> t.write_line line)

let flush t = locked t (fun () -> t.do_flush ())

let close t =
  locked t (fun () ->
      t.do_flush ();
      t.do_close ())

let of_channel ?(close_channel = true) oc =
  {
    mutex = Mutex.create ();
    write_line =
      (fun line ->
        output_string oc line;
        output_char oc '\n');
    do_flush = (fun () -> Stdlib.flush oc);
    do_close = (fun () -> if close_channel then close_out_noerr oc);
  }

let file path = of_channel (open_out path)

let stderr_lines () = of_channel ~close_channel:false Stdlib.stderr

let memory () =
  let lines = ref [] in
  let sink =
    {
      mutex = Mutex.create ();
      write_line = (fun line -> lines := line :: !lines);
      do_flush = (fun () -> ());
      do_close = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !lines)
