(** Pluggable line-oriented output sinks for the logger and the span
    tracer. Every sink serializes writes behind an internal mutex, so
    producers on different pool domains never interleave partial lines. *)

type t

val write : t -> string -> unit
(** Append one line (the newline is added by the sink). *)

val flush : t -> unit

val close : t -> unit
(** Flush and release the underlying resource. Closing a memory or
    stderr sink is a flush-only no-op. *)

val of_channel : ?close_channel:bool -> out_channel -> t
(** Wrap an existing channel ([close_channel] defaults to [true]). *)

val file : string -> t
(** Truncate-and-write sink on a fresh file (JSONL conventions are the
    caller's: the tracer writes Chrome trace events, the logger JSON
    records). *)

val stderr_lines : unit -> t
(** Line sink on stderr; {!close} leaves the channel open. *)

val memory : unit -> t * (unit -> string list)
(** In-memory sink for tests; the closure returns the lines written so
    far, in write order. *)
