(** Post-hoc telemetry report: one operator-readable page from the raw
    files the pipeline writes.

    [render] takes the {e contents} (not paths) of any subset of the
    four telemetry outputs and returns the formatted page:

    - a per-phase wall-time + allocation profile (recorder [span_end]
      events; trace ["X"] events as the alloc-less fallback),
    - the top-N slowest individual spans,
    - a convergence summary table — one row per iterative solve with
      phase/preconditioner/warm context, iteration count, final relative
      residual, and convergence verdict — plus the residual tail of the
      first non-converged solve (or the last solve when all converged),
    - the health verdict(s) with quarantine and non-convergence counts
      (recorder [verdict]/[quarantine] events, Prometheus counters as
      fallback).

    Sections render independently from whichever inputs carry their
    data; with no recognizable telemetry at all the result says so
    rather than printing an empty page. Run-to-run varying numbers
    (wall ms, alloc words) sit in their own columns, so the
    deterministic ones (names, iteration counts, residuals, verdicts)
    are stable to select in tests. *)

val render :
  ?recorder:string ->
  ?trace:string ->
  ?metrics:string ->
  ?convergence:string ->
  ?top:int ->
  ?tail:int ->
  unit ->
  string
(** [render ~recorder ~trace ~metrics ~convergence ~top ~tail ()] —
    every input optional; [top] (default 5) bounds the slow-span list,
    [tail] (default 8) the residual tail. Malformed lines are skipped,
    never fatal. *)
