type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok None
  | "debug" -> Ok (Some Debug)
  | "info" -> Ok (Some Info)
  | "warn" | "warning" -> Ok (Some Warn)
  | "error" -> Ok (Some Error)
  | _ -> Error (Printf.sprintf "unknown log level %S (off|debug|info|warn|error)" s)

type format = Pretty | Json

type t = {
  mutable level : level option; (* None = disabled *)
  mutable sink : Sink.t option; (* None = pretty stderr, opened lazily *)
  mutable format : format;
}

let create () = { level = None; sink = None; format = Pretty }

let default = create ()

let set_level t level = t.level <- level

let level t = t.level

let set_sink t ?(format = Json) sink =
  t.sink <- sink;
  t.format <- (match sink with None -> Pretty | Some _ -> format)

let enabled_at t lvl =
  match t.level with
  | None -> false
  | Some min -> level_rank lvl >= level_rank min

(* the fallback stderr sink is shared so concurrent lines don't shear *)
let stderr_sink = lazy (Sink.stderr_lines ())

let render t lvl fields msg =
  match t.format with
  | Json ->
      let base =
        [
          ("ts", Field.Float (Clock.wall_s ()));
          ("level", Field.Str (level_name lvl));
          ("msg", Field.Str msg);
        ]
      in
      Field.assoc_json (base @ fields)
  | Pretty ->
      (* timestamp-free so cram tests and log-diffing stay deterministic;
         the JSON format carries the wall clock *)
      let b = Buffer.create 96 in
      Printf.bprintf b "[%-5s] %s" (level_name lvl) msg;
      List.iter
        (fun (k, v) -> Printf.bprintf b " %s=%s" k (Field.to_text v))
        fields;
      Buffer.contents b

let log ?(fields = []) t lvl msg =
  if enabled_at t lvl then begin
    let sink =
      match t.sink with Some s -> s | None -> Lazy.force stderr_sink
    in
    Sink.write sink (render t lvl fields msg);
    Sink.flush sink
  end

let debug ?fields t msg = log ?fields t Debug msg

let info ?fields t msg = log ?fields t Info msg

let warn ?fields t msg = log ?fields t Warn msg

let error ?fields t msg = log ?fields t Error msg
