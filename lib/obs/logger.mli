(** Leveled structured logger.

    A record is a level, a message, and optional {!Field.t} fields. With
    no sink installed, records go to a shared stderr sink in the pretty
    format; a JSONL file sink gets one JSON object per line carrying a
    wall-clock [ts]. A logger whose level is [None] is disabled: {!log}
    is one branch. The pretty format is deliberately timestamp-free so
    cram tests and diff-based triage stay deterministic. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> (level option, string) result
(** Accepts [off|none|debug|info|warn|warning|error] (case-insensitive);
    [Ok None] means disabled. *)

type format = Pretty | Json

type t

val default : t
(** The process-wide logger. Starts disabled (level [None]). *)

val create : unit -> t

val set_level : t -> level option -> unit

val level : t -> level option

val set_sink : t -> ?format:format -> Sink.t option -> unit
(** Install an output sink ([format] defaults to [Json]); [None] reverts
    to pretty stderr. *)

val log : ?fields:(string * Field.t) list -> t -> level -> string -> unit
(** Emit if the record's level is at or above the logger's level. *)

val debug : ?fields:(string * Field.t) list -> t -> string -> unit
val info : ?fields:(string * Field.t) list -> t -> string -> unit
val warn : ?fields:(string * Field.t) list -> t -> string -> unit
val error : ?fields:(string * Field.t) list -> t -> string -> unit
