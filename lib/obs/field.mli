(** Structured values attached to log records and trace-span arguments,
    with the JSON fragments the sinks need to serialize them. *)

type t = Str of string | Int of int | Float of float | Bool of bool

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters). *)

val json_string : string -> string
(** [escape] wrapped in double quotes. *)

val json_float : float -> string
(** Shortest faithful decimal; non-finite values become [null] (JSON has
    no inf/nan literals). *)

val to_json : t -> string

val to_text : t -> string
(** Unquoted rendering for the pretty sink. *)

val assoc_json : (string * t) list -> string
(** [{"k": v, ...}] in list order. *)
