let kernel ?(args = []) ~hist name f =
  Trace.with_span ~args Trace.default name (fun () -> Metrics.time hist f)
