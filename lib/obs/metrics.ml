(* Metrics registry with per-domain sharded accumulators.

   Probes must be cheap enough to leave compiled into the hot layers:

   - every metric carries the owning registry's [on] flag, so a probe on
     a disabled registry is one load + one branch and touches no shared
     cache line;
   - counter and histogram-bucket cells are integers sharded by domain id,
     so concurrent increments rarely contend and the merged total is a sum
     of integers — exact, hence independent of which domain ran which
     block and of the merge order;
   - histogram per-shard sums are floats, merged in shard index order, so
     a merge of the same shard contents is deterministic (the shard
     contents themselves depend on domain scheduling; only the integer
     cells are fully order-independent).

   Metric names follow Prometheus conventions ([a-z_] with unit
   suffixes); [dump] emits the text exposition format. *)

let shards = 16 (* power of two, comfortably above the pool's 8-domain cap *)

let shard () = (Domain.self () :> int) land (shards - 1)

type counter = { c_on : bool ref; cells : int Atomic.t array }

type gauge = { g_on : bool ref; value : float Atomic.t }

type histogram = {
  h_on : bool ref;
  edges : float array; (* strictly increasing upper bounds; +inf implicit *)
  buckets : int Atomic.t array array; (* shard -> bucket counts *)
  sums : float Atomic.t array; (* shard -> sum of observations *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  on : bool ref;
  mutex : Mutex.t;
  mutable items : (string * string * metric) list; (* reverse registration order *)
}

let create ?(on = true) () = { on = ref on; mutex = Mutex.create (); items = [] }

let default = create ~on:false ()

let enable t = t.on := true

let disable t = t.on := false

let enabled t = !(t.on)

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let valid_name name =
  name <> ""
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       name

let find t name = List.find_opt (fun (n, _, _) -> n = name) t.items

let register t ~help name make describe =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  Mutex.lock t.mutex;
  let m =
    match find t name with
    | Some (_, _, existing) -> (
        match describe existing with
        | Some m -> m
        | None ->
            Mutex.unlock t.mutex;
            invalid_arg
              (Printf.sprintf "Obs.Metrics: %S registered with another type" name))
    | None ->
        let m = make () in
        t.items <- (name, help, m) :: t.items;
        m
  in
  Mutex.unlock t.mutex;
  m

let counter t ?(help = "") name =
  match
    register t ~help name
      (fun () ->
        Counter { c_on = t.on; cells = Array.init shards (fun _ -> Atomic.make 0) })
      (function Counter _ as m -> Some m | _ -> None)
  with
  | Counter c -> c
  | _ -> assert false

let gauge t ?(help = "") name =
  match
    register t ~help name
      (fun () -> Gauge { g_on = t.on; value = Atomic.make 0. })
      (function Gauge _ as m -> Some m | _ -> None)
  with
  | Gauge g -> g
  | _ -> assert false

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i e -> if i > 0 && e <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Obs.Metrics.histogram: bucket edges must be strictly increasing";
  match
    register t ~help name
      (fun () ->
        Histogram
          {
            h_on = t.on;
            edges = Array.copy buckets;
            buckets =
              Array.init shards (fun _ ->
                  Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0));
            sums = Array.init shards (fun _ -> Atomic.make 0.);
          })
      (function Histogram _ as m -> Some m | _ -> None)
  with
  | Histogram h -> h
  | _ -> assert false

(* --- probes ----------------------------------------------------------- *)

let add c n = if !(c.c_on) then ignore (Atomic.fetch_and_add c.cells.(shard ()) n)

let incr c = add c 1

let set g x = if !(g.g_on) then Atomic.set g.value x

let atomic_float_add cell x =
  let rec go () =
    let prev = Atomic.get cell in
    if not (Atomic.compare_and_set cell prev (prev +. x)) then go ()
  in
  go ()

let bucket_index edges x =
  (* first bucket whose upper edge admits x; Prometheus "le" is inclusive *)
  let n = Array.length edges in
  let rec go i = if i >= n then n else if x <= edges.(i) then i else go (i + 1) in
  go 0

let observe h x =
  if !(h.h_on) then begin
    let s = shard () in
    ignore (Atomic.fetch_and_add h.buckets.(s).(bucket_index h.edges x) 1);
    atomic_float_add h.sums.(s) x
  end

let time h f =
  if not !(h.h_on) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> observe h (Clock.seconds_since t0)) f
  end

(* --- reads and merges -------------------------------------------------- *)

let counter_value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge_value g = Atomic.get g.value

let histogram_buckets h = Array.copy h.edges

let histogram_counts h =
  let out = Array.make (Array.length h.edges + 1) 0 in
  Array.iter
    (fun per_shard ->
      Array.iteri (fun b cell -> out.(b) <- out.(b) + Atomic.get cell) per_shard)
    h.buckets;
  out

let histogram_count h = Array.fold_left ( + ) 0 (histogram_counts h)

let histogram_sum h =
  (* shard index order: deterministic for fixed shard contents *)
  Array.fold_left (fun acc s -> acc +. Atomic.get s) 0. h.sums

let histogram_quantile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Obs.Metrics.histogram_quantile: q outside [0, 1]";
  let counts = histogram_counts h in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else begin
    (* walk the cumulative distribution to the bucket holding rank
       q·total, then interpolate linearly inside it — the Prometheus
       histogram_quantile() estimate. The first bucket's lower edge is
       0 (every recorded value here is a duration); the +Inf bucket has
       no upper edge, so it reports its lower edge (the largest finite
       edge), the same conservative clamp Prometheus applies. *)
    let rank = q *. float_of_int total in
    let n_edges = Array.length h.edges in
    let rec go b cum =
      let cum' = cum +. float_of_int counts.(b) in
      if cum' >= rank || b = n_edges then (b, cum)
      else go (b + 1) cum'
    in
    let b, below = go 0 0. in
    if b >= n_edges then h.edges.(n_edges - 1)
    else begin
      let lower = if b = 0 then 0. else h.edges.(b - 1) in
      let upper = h.edges.(b) in
      let inside = float_of_int counts.(b) in
      if inside <= 0. then upper
      else lower +. ((upper -. lower) *. ((rank -. below) /. inside))
    end
  end

let reset t =
  Mutex.lock t.mutex;
  List.iter
    (fun (_, _, m) ->
      match m with
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | Gauge g -> Atomic.set g.value 0.
      | Histogram h ->
          Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.buckets;
          Array.iter (fun s -> Atomic.set s 0.) h.sums)
    t.items;
  Mutex.unlock t.mutex

let names t =
  Mutex.lock t.mutex;
  let l = List.rev_map (fun (n, _, _) -> n) t.items in
  Mutex.unlock t.mutex;
  l

(* --- Prometheus text exposition ---------------------------------------- *)

let dump t =
  Mutex.lock t.mutex;
  let items = List.rev t.items in
  Mutex.unlock t.mutex;
  let b = Buffer.create 1024 in
  let edge_label e =
    (* shortest decimal that round-trips, matching Prometheus style *)
    Printf.sprintf "%g" e
  in
  List.iter
    (fun (name, help, m) ->
      if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
      match m with
      | Counter c ->
          Printf.bprintf b "# TYPE %s counter\n%s %d\n" name name (counter_value c)
      | Gauge g ->
          Printf.bprintf b "# TYPE %s gauge\n%s %.12g\n" name name (gauge_value g)
      | Histogram h ->
          Printf.bprintf b "# TYPE %s histogram\n" name;
          let counts = histogram_counts h in
          let cum = ref 0 in
          Array.iteri
            (fun i e ->
              cum := !cum + counts.(i);
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name (edge_label e) !cum)
            h.edges;
          cum := !cum + counts.(Array.length h.edges);
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name !cum;
          Printf.bprintf b "%s_sum %.12g\n" name (histogram_sum h);
          Printf.bprintf b "%s_count %d\n" name !cum)
    items;
  Buffer.contents b
