(* Post-hoc report renderer: turns the raw telemetry files the pipeline
   writes (flight-recorder dump, trace JSONL, Prometheus metrics text,
   convergence JSONL) into one operator-readable page — per-phase
   wall/alloc profile, top-N slow spans, a convergence summary table
   with residual tails, and the health verdict with quarantine counts.

   Every section degrades gracefully: inputs are independent and a
   section renders from whichever input carries its data (spans prefer
   the recorder, which has allocation attribution; the trace is the
   fallback). Numbers that vary run-to-run (wall, alloc) are kept in
   their own columns so tests can select the deterministic ones. *)

let ( let* ) = Option.bind

type span = {
  sp_name : string;
  sp_dur_us : float;
  sp_alloc_words : float option;
  sp_domain : int;
}

type iter_point = {
  it_solver : string;
  it_solve : int;
  it_iteration : int;
  it_relres : float;
}

type solve_row = {
  so_solver : string;
  so_solve : int;
  mutable so_phase : string;
  mutable so_precond : string;
  mutable so_warm : bool option;
  mutable so_iterations : int;
  mutable so_relres : float;
  mutable so_converged : bool option; (* None until a solver_done is seen *)
}

type data = {
  mutable spans : span list; (* reverse order of input *)
  mutable iters : iter_point list; (* reverse order of input *)
  solves : (string * int, solve_row) Hashtbl.t;
  mutable verdicts : (string * string) list; (* health, summary *)
  mutable quarantine : int;
  mutable dump_reason : string option;
  mutable dump_dropped : int;
  mutable metrics : (string * float) list;
}

let fresh () =
  {
    spans = [];
    iters = [];
    solves = Hashtbl.create 16;
    verdicts = [];
    quarantine = 0;
    dump_reason = None;
    dump_dropped = 0;
    metrics = [];
  }

let solve_row d ~solver ~solve =
  match Hashtbl.find_opt d.solves (solver, solve) with
  | Some row -> row
  | None ->
      let row =
        {
          so_solver = solver;
          so_solve = solve;
          so_phase = "-";
          so_precond = "-";
          so_warm = None;
          so_iterations = 0;
          so_relres = Float.nan;
          so_converged = None;
        }
      in
      Hashtbl.add d.solves (solver, solve) row;
      row

let context_into row json =
  (match
     let* p = Json.member "phase" json in
     Json.to_string_opt p
   with
  | Some p -> row.so_phase <- p
  | None -> ());
  (match
     let* p = Json.member "precond" json in
     Json.to_string_opt p
   with
  | Some p -> row.so_precond <- p
  | None -> ());
  match
    let* w = Json.member "warm" json in
    Json.to_bool_opt w
  with
  | Some w -> row.so_warm <- Some w
  | None -> ()

let iteration_into d ~solver ~solve json =
  let row = solve_row d ~solver ~solve in
  context_into row json;
  match
    let* i = Json.member "iteration" json in
    let* i = Json.to_int_opt i in
    let* r = Json.member "relres" json in
    let* r = Json.to_float_opt r in
    Some (i, r)
  with
  | None -> ()
  | Some (iteration, relres) ->
      if iteration > row.so_iterations then begin
        row.so_iterations <- iteration;
        row.so_relres <- relres
      end;
      d.iters <-
        {
          it_solver = solver;
          it_solve = solve;
          it_iteration = iteration;
          it_relres = relres;
        }
        :: d.iters

(* one recorder-dump line (header or event) *)
let recorder_line d json =
  let kind =
    Option.value ~default:""
      (let* k = Json.member "kind" json in
       Json.to_string_opt k)
  in
  let name =
    Option.value ~default:""
      (let* n = Json.member "name" json in
       Json.to_string_opt n)
  in
  let args = Option.value ~default:(Json.Obj []) (Json.member "args" json) in
  match kind with
  | "recorder_dump" ->
      d.dump_reason <-
        (let* r = Json.member "reason" json in
         Json.to_string_opt r);
      d.dump_dropped <-
        Option.value ~default:0
          (let* x = Json.member "dropped" json in
           Json.to_int_opt x)
  | "span_end" ->
      let dur =
        let* x = Json.member "dur_us" args in
        Json.to_float_opt x
      in
      let domain =
        Option.value ~default:0
          (let* x = Json.member "domain" json in
           Json.to_int_opt x)
      in
      (match dur with
      | None -> ()
      | Some dur_us ->
          d.spans <-
            {
              sp_name = name;
              sp_dur_us = dur_us;
              sp_alloc_words =
                (let* x = Json.member "alloc_words" args in
                 Json.to_float_opt x);
              sp_domain = domain;
            }
            :: d.spans)
  | "solver_iter" ->
      (match
         let* s = Json.member "solve" args in
         Json.to_int_opt s
       with
      | None -> ()
      | Some solve -> iteration_into d ~solver:name ~solve args)
  | "solver_done" -> (
      match
        let* s = Json.member "solve" args in
        Json.to_int_opt s
      with
      | None -> ()
      | Some solve ->
          let row = solve_row d ~solver:name ~solve in
          context_into row args;
          (match
             let* i = Json.member "iterations" args in
             Json.to_int_opt i
           with
          | Some i -> row.so_iterations <- i
          | None -> ());
          (match
             let* r = Json.member "relres" args in
             Json.to_float_opt r
           with
          | Some r -> row.so_relres <- r
          | None -> ());
          row.so_converged <-
            (let* c = Json.member "converged" args in
             Json.to_bool_opt c))
  | "verdict" ->
      let health =
        Option.value ~default:"?"
          (let* h = Json.member "health" args in
           Json.to_string_opt h)
      in
      let summary =
        Option.value ~default:""
          (let* s = Json.member "summary" args in
           Json.to_string_opt s)
      in
      d.verdicts <- (health, summary) :: d.verdicts
  | "quarantine" -> d.quarantine <- d.quarantine + 1
  | _ -> ()

(* trace JSONL: "X" complete events become spans (no alloc attribution) *)
let trace_line d json =
  match
    let* ph = Json.member "ph" json in
    Json.to_string_opt ph
  with
  | Some "X" ->
      let name =
        Option.value ~default:""
          (let* n = Json.member "name" json in
           Json.to_string_opt n)
      in
      (match
         let* x = Json.member "dur" json in
         Json.to_float_opt x
       with
      | None -> ()
      | Some dur_us ->
          d.spans <-
            {
              sp_name = name;
              sp_dur_us = dur_us;
              sp_alloc_words = None;
              sp_domain =
                Option.value ~default:0
                  (let* x = Json.member "tid" json in
                   Json.to_int_opt x);
            }
            :: d.spans)
  | _ -> ()

let convergence_line d json =
  match
    let* s = Json.member "solver" json in
    let* solver = Json.to_string_opt s in
    let* v = Json.member "solve" json in
    let* solve = Json.to_int_opt v in
    Some (solver, solve)
  with
  | None -> ()
  | Some (solver, solve) -> iteration_into d ~solver ~solve json

let lines content = String.split_on_char '\n' content

let feed_jsonl d per_line content =
  List.iter
    (fun line ->
      let line = String.trim line in
      (* tolerate the trace's array framing: "[" opener, "," separators *)
      let line =
        if String.length line > 0 && line.[String.length line - 1] = ',' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.length line > 0 && line.[0] = '{' then
        match Json.of_string_opt line with
        | Some json -> per_line d json
        | None -> ())
    (lines content)

let feed_metrics d content =
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | None -> ()
        | Some i -> (
            let name = String.sub line 0 i in
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt (String.trim rest) with
            | Some v -> d.metrics <- (name, v) :: d.metrics
            | None -> ()))
    (lines content)

let metric d name = List.assoc_opt name d.metrics

(* ---- rendering ---- *)

let fmt_ms us = Printf.sprintf "%.1f" (us /. 1000.)

let fmt_words = function
  | None -> "-"
  | Some w -> Printf.sprintf "%.0f" w

let fmt_relres r =
  if Float.is_nan r then "-" else Printf.sprintf "%.3e" r

let section b title =
  Printf.bprintf b "%s\n%s\n" title (String.make (String.length title) '-')

let render_phases b d =
  if d.spans <> [] then begin
    section b "Per-phase profile";
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun sp ->
        match Hashtbl.find_opt tbl sp.sp_name with
        | None ->
            Hashtbl.add tbl sp.sp_name
              (ref 1, ref sp.sp_dur_us, ref sp.sp_alloc_words);
            order := sp.sp_name :: !order
        | Some (n, dur, alloc) ->
            incr n;
            dur := !dur +. sp.sp_dur_us;
            alloc :=
              (match (!alloc, sp.sp_alloc_words) with
              | Some a, Some w -> Some (a +. w)
              | got, None -> got
              | None, got -> got))
      (List.rev d.spans);
    let rows =
      List.rev_map
        (fun name ->
          let n, dur, alloc = Hashtbl.find tbl name in
          (name, !n, !dur, !alloc))
        !order
    in
    let rows =
      List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a) rows
    in
    Printf.bprintf b "%-36s %7s %12s %14s\n" "phase" "calls" "wall_ms"
      "alloc_words";
    List.iter
      (fun (name, n, dur, alloc) ->
        Printf.bprintf b "%-36s %7d %12s %14s\n" name n (fmt_ms dur)
          (fmt_words alloc))
      rows;
    Buffer.add_char b '\n'
  end

let render_top b d ~top =
  if d.spans <> [] && top > 0 then begin
    section b (Printf.sprintf "Top %d slow spans" top);
    let sorted =
      List.sort (fun a b -> Float.compare b.sp_dur_us a.sp_dur_us) d.spans
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    Printf.bprintf b "%-36s %12s %7s\n" "span" "wall_ms" "domain";
    List.iter
      (fun sp ->
        Printf.bprintf b "%-36s %12s %7d\n" sp.sp_name (fmt_ms sp.sp_dur_us)
          sp.sp_domain)
      (take top sorted);
    Buffer.add_char b '\n'
  end

let solve_rows d =
  Hashtbl.fold (fun _ row acc -> row :: acc) d.solves []
  |> List.sort (fun a b ->
         match String.compare a.so_solver b.so_solver with
         | 0 -> Int.compare a.so_solve b.so_solve
         | c -> c)

let render_convergence b d ~tail =
  let rows = solve_rows d in
  if rows <> [] then begin
    section b "Convergence";
    Printf.bprintf b "%-6s %-6s %-8s %-13s %-5s %6s %13s %s\n" "solver" "solve"
      "phase" "precond" "warm" "iters" "final_relres" "converged";
    List.iter
      (fun r ->
        Printf.bprintf b "%-6s %-6d %-8s %-13s %-5s %6d %13s %s\n" r.so_solver
          r.so_solve r.so_phase r.so_precond
          (match r.so_warm with
          | Some true -> "warm"
          | Some false -> "cold"
          | None -> "-")
          r.so_iterations (fmt_relres r.so_relres)
          (match r.so_converged with
          | Some true -> "yes"
          | Some false -> "NO"
          | None -> "-"))
      rows;
    Buffer.add_char b '\n';
    (* residual tail of the most interesting solve: the first
       non-converged one, else the last solve seen *)
    let focus =
      match List.find_opt (fun r -> r.so_converged = Some false) rows with
      | Some r -> Some r
      | None -> ( match List.rev rows with r :: _ -> Some r | [] -> None)
    in
    match focus with
    | None -> ()
    | Some r ->
        let points =
          List.filter
            (fun p -> p.it_solver = r.so_solver && p.it_solve = r.so_solve)
            (List.rev d.iters)
          |> List.sort_uniq (fun a b ->
                 Int.compare a.it_iteration b.it_iteration)
        in
        if points <> [] && tail > 0 then begin
          let n = List.length points in
          let tail_points =
            List.filteri (fun i _ -> i >= n - tail) points
          in
          section b
            (Printf.sprintf "Residual tail (%s solve %d, last %d of %d \
                             iterations)"
               r.so_solver r.so_solve
               (List.length tail_points)
               n);
          Printf.bprintf b "%6s %13s\n" "iter" "relres";
          List.iter
            (fun p ->
              Printf.bprintf b "%6d %13s\n" p.it_iteration
                (fmt_relres p.it_relres))
            tail_points;
          Buffer.add_char b '\n'
        end
  end

let render_health b d =
  let have_metrics = d.metrics <> [] in
  if d.verdicts <> [] || d.quarantine > 0 || have_metrics then begin
    section b "Health";
    (match List.rev d.verdicts with
    | [] ->
        (* fall back to the metrics counters *)
        let count n = match metric d n with Some v -> v | None -> 0. in
        if have_metrics then
          let refused = count "lia_refused_total" in
          let degraded = count "lia_degraded_total" in
          let verdict =
            if refused > 0. then "refused"
            else if degraded > 0. then "degraded"
            else "clean"
          in
          Printf.bprintf b "verdict: %s\n" verdict
    | vs ->
        List.iter
          (fun (health, summary) ->
            if summary = "" || summary = health then
              Printf.bprintf b "verdict: %s\n" health
            else Printf.bprintf b "verdict: %s — %s\n" health summary)
          vs);
    if d.quarantine > 0 then
      Printf.bprintf b "quarantined rows (recorder): %d\n" d.quarantine;
    List.iter
      (fun (name, label) ->
        match metric d name with
        | Some v when v > 0. -> Printf.bprintf b "%s: %.0f\n" label v
        | _ -> ())
      [
        ("lia_quarantine_rows_total", "quarantined rows");
        ("lia_quarantine_cells_total", "scrubbed cells");
        ("lia_quarantine_duplicates_total", "duplicate rows");
        ("lia_solver_nonconverged_total", "nonconverged solves");
        ("lia_degraded_total", "degraded runs");
        ("lia_refused_total", "refused runs");
      ];
    Buffer.add_char b '\n'
  end

let render ?recorder ?trace ?metrics ?convergence ?(top = 5) ?(tail = 8) () =
  let d = fresh () in
  Option.iter (feed_jsonl d recorder_line) recorder;
  Option.iter (feed_jsonl d trace_line) trace;
  Option.iter (feed_jsonl d convergence_line) convergence;
  Option.iter (feed_metrics d) metrics;
  let b = Buffer.create 4096 in
  (match d.dump_reason with
  | Some reason ->
      Printf.bprintf b "Flight recorder dump: reason=%s" reason;
      if d.dump_dropped > 0 then
        Printf.bprintf b " (%d events dropped)" d.dump_dropped;
      Buffer.add_string b "\n\n"
  | None -> ());
  render_phases b d;
  render_top b d ~top;
  render_convergence b d ~tail;
  render_health b d;
  let out = Buffer.contents b in
  if out = "" then "report: no telemetry found in the given inputs\n" else out
