(** Minimal JSON reader for the telemetry this library writes.

    Parses RFC 8259 JSON into a plain variant; used by the [report]
    renderer to read back recorder dumps, convergence streams, and trace
    events without an external dependency. Numbers are all [float]s
    (JSON has only one number type); [\u] escapes decode to UTF-8, but
    surrogate pairs are not recombined — the writers never emit them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { offset : int; message : string }

val of_string : string -> t
(** Parse one complete JSON value. Raises {!Parse_error} (with a
    character offset) on anything else, including trailing input. *)

val of_string_opt : string -> t option

(** {2 Accessors} — each returns [None] on a shape mismatch, so lookups
    compose with [Option.bind]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for missing keys and non-objects. *)

val to_string_opt : t -> string option

val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** [Some] only for numbers with integral values. *)

val to_bool_opt : t -> bool option
