(** Per-iteration solver convergence stream (JSONL).

    Each line is one iterative-solver iteration as a flat JSON object:
    [{"solver": "cgls", "solve": 3, "iteration": 17, "relres": 1.2e-7,
    "phase": "phase2", "precond": "block_jacobi", "warm": true}] — the
    trailing fields are the caller-supplied solve context. Iteration
    indices within one [solve] id are strictly increasing from 1.

    The stream is independent of the {!Recorder} and the [lia_cgls_*]
    histograms: solvers feed all three, each behind its own enable
    check, and none of them reads the computation back — estimates are
    bit-for-bit identical with the stream on or off. *)

type t

val default : t
(** The process-wide stream the solvers emit to. Starts with no sink;
    the CLI installs one under [--convergence]. *)

val create : unit -> t

val enabled : t -> bool

val set_sink : t -> Sink.t option -> unit
(** Install (or remove, with [None]) the output sink, closing any
    previous one. *)

val close : t -> unit

val flush : t -> unit

val emit :
  t ->
  solver:string ->
  solve:int ->
  iteration:int ->
  relative_residual:float ->
  context:(string * Field.t) list ->
  unit
(** Write one iteration line. No-op without a sink. *)
