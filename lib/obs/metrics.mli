(** Metrics registry: counters, gauges, and fixed-bucket histograms with
    per-domain sharded accumulators.

    {b Overhead contract.} Every metric carries its registry's enable
    flag: a probe ({!incr}, {!add}, {!set}, {!observe}, {!time}) against
    a disabled registry is one load and one branch — no clock read, no
    shared-cache-line traffic — so instrumentation can stay compiled into
    the hot kernels. {!default} starts disabled; the CLI enables it when
    [--metrics] is given.

    {b Determinism contract.} Counter cells and histogram bucket cells
    are integers sharded by domain id and merged by integer summation, so
    their merged values are independent of domain scheduling and of merge
    order. Histogram sums are floats merged in shard index order; the
    merge is deterministic for fixed shard contents, but which shard an
    observation landed in depends on which domain made it. Probes never
    affect the instrumented computation itself. *)

type t
(** A registry. Metrics are owned by exactly one registry. *)

type counter
type gauge
type histogram

val create : ?on:bool -> unit -> t
(** Fresh registry, enabled unless [~on:false]. *)

val default : t
(** The process-wide registry the library's built-in probes target.
    Starts {e disabled}. *)

val enable : t -> unit

val disable : t -> unit

val enabled : t -> bool

(** {1 Registration}

    Metric names must match [[a-z0-9_]+]. Registering an existing name
    with the same metric type returns the existing metric; with a
    different type it raises [Invalid_argument]. Registration is
    thread-safe. *)

val counter : t -> ?help:string -> string -> counter

val gauge : t -> ?help:string -> string -> gauge

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bucket edges (an implicit
    [+Inf] overflow bucket is always appended). Default: powers of ten
    from [1e-6] to [10] — latency seconds. *)

val default_buckets : float array

(** {1 Probes} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Counters are integer-valued; track elapsed time in integer
    nanoseconds rather than float seconds to keep merges exact. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Adds [x] to the first bucket whose upper edge is [>= x] (Prometheus
    inclusive-["le"] convention) and to the histogram sum. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its duration in seconds; on a disabled
    registry this is the bare thunk call behind one branch. *)

(** {1 Reads} *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val histogram_buckets : histogram -> float array

val histogram_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts, the overflow bucket last. *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([0 ≤ q ≤ 1])
    of the observed distribution from the bucket counts, interpolating
    linearly within the bucket that holds rank [q·count] — the
    Prometheus [histogram_quantile()] estimate, so accuracy is bounded
    by bucket width. The first bucket interpolates from a lower edge of
    0; a quantile landing in the overflow bucket reports the largest
    finite edge (the Prometheus clamp). [nan] when the histogram is
    empty; raises [Invalid_argument] on [q] outside [0, 1]. *)

val names : t -> string list
(** Registered names in registration order. *)

val reset : t -> unit
(** Zero every metric (tests and overhead baselines). *)

val dump : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] comments,
    cumulative [_bucket{le="..."}] lines, [_sum]/[_count] per
    histogram. *)
