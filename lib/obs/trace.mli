(** Nestable spans emitted as Chrome trace-event JSONL.

    Each event is one JSON object on its own line ("X" complete events
    with [ts]/[dur] in microseconds from {!Clock}); the stream opens with
    a ["["] line and omits the closing bracket, which chrome://tracing
    and ui.perfetto.dev both accept and which keeps the file valid after
    a crash. Span nesting needs no bookkeeping: the viewer reconstructs
    it from time-range containment per [tid], and [tid] is the emitting
    domain's id — spans raised inside pool workers therefore appear on
    the worker's own row.

    A tracer with no sink is disabled: {!with_span} costs one branch and
    runs the thunk directly. *)

type t

val default : t
(** The process-wide tracer the library's built-in spans target. Starts
    with no sink (disabled). *)

val create : unit -> t

val enabled : t -> bool

val set_sink : t -> Sink.t option -> unit
(** Install (or remove, with [None]) the output sink; any previous sink
    is closed, and a fresh sink immediately receives the opening ["["]
    line. *)

val with_span : ?args:(string * Field.t) list -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] and emits a complete event covering its
    execution, including when [f] raises. Disabled: exactly [f ()]. *)

val instant : ?args:(string * Field.t) list -> t -> string -> unit
(** A zero-duration instant event (window churn, invalidations). *)

val flush : t -> unit

val close : t -> unit
(** Close and detach the sink; the tracer becomes disabled. *)
