type t = Str of string | Int of int | Float of float | Bool of bool

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ escape s ^ "\""

let json_float x =
  (* JSON has no inf/nan literals *)
  if Float.is_finite x then Printf.sprintf "%.12g" x else "null"

let to_json = function
  | Str s -> json_string s
  | Int i -> string_of_int i
  | Float x -> json_float x
  | Bool b -> if b then "true" else "false"

let to_text = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float x -> Printf.sprintf "%g" x
  | Bool b -> string_of_bool b

let assoc_json fields =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (json_string k);
      Buffer.add_string b ": ";
      Buffer.add_string b (to_json v))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b
