type stats = {
  iterations : int;
  residual_norm : float;
  relative_residual : float;
  converged : bool;
}

let m_nonconverged =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Iterative solves (CG, CGLS) that stopped before reaching tolerance"
    "lia_solver_nonconverged_total"

let m_relres =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Per-iteration relative residuals of the iterative solvers"
    ~buckets:[| 1e-14; 1e-12; 1e-10; 1e-8; 1e-6; 1e-4; 1e-2; 1. |]
    "lia_cgls_relres"

let m_iter_seconds =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Wall seconds per iterative-solver iteration"
    ~buckets:[| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1. |]
    "lia_cgls_iter_seconds"

(* process-wide solve ids so convergence lines from concurrent solves
   can be told apart after the fact *)
let solve_counter = Atomic.make 0

let new_solve_id () = 1 + Atomic.fetch_and_add solve_counter 1

let instrumented () =
  Obs.Metrics.enabled Obs.Metrics.default
  || Obs.Recorder.enabled Obs.Recorder.default
  || Obs.Convergence.enabled Obs.Convergence.default

let note_iteration ~solver ~solve ~iteration ~relative_residual ~iter_seconds
    ~context =
  Obs.Metrics.observe m_relres relative_residual;
  Obs.Metrics.observe m_iter_seconds iter_seconds;
  if Obs.Recorder.enabled Obs.Recorder.default then
    Obs.Recorder.record Obs.Recorder.default ~kind:"solver_iter" solver
      ~fields:
        ([
           ("solve", Obs.Field.Int solve);
           ("iteration", Obs.Field.Int iteration);
           ("relres", Obs.Field.Float relative_residual);
         ]
        @ context);
  Obs.Convergence.emit Obs.Convergence.default ~solver ~solve ~iteration
    ~relative_residual ~context

let note_solve_done ~solver ~solve ~context stats =
  if Obs.Recorder.enabled Obs.Recorder.default then
    Obs.Recorder.record Obs.Recorder.default ~kind:"solver_done" solver
      ~fields:
        ([
           ("solve", Obs.Field.Int solve);
           ("iterations", Obs.Field.Int stats.iterations);
           ("relres", Obs.Field.Float stats.relative_residual);
           ("converged", Obs.Field.Bool stats.converged);
         ]
        @ context)

let note_nonconvergence ~solver ~iterations ~relative_residual =
  Obs.Metrics.incr m_nonconverged;
  Obs.Logger.warn Obs.Logger.default "iterative solver stopped before tolerance"
    ~fields:
      [
        ("solver", Obs.Field.Str solver);
        ("iterations", Obs.Field.Int iterations);
        ("relative_residual", Obs.Field.Float relative_residual);
      ];
  (* a starved or stalled solve is exactly the run the flight recorder
     exists for: dump the tail now in case the process never exits
     cleanly (no-op unless a dump path is configured) *)
  Obs.Recorder.auto_dump Obs.Recorder.default ~reason:"nonconvergence"

let solve_matfree ?(tol = 1e-10) ?max_iter ?(context = []) ~dim ~mul b =
  if Array.length b <> dim then
    invalid_arg "Conjugate_gradient.solve_matfree: dimension mismatch";
  if tol <= 0. then invalid_arg "Conjugate_gradient: non-positive tolerance";
  let max_iter = Option.value max_iter ~default:(max 1 dim) in
  let probes = instrumented () in
  let solve_id = if probes then new_solve_id () else 0 in
  let x = Vector.zeros dim in
  let r = Vector.copy b in
  let p = Vector.copy b in
  let rs = ref (Vector.dot r r) in
  let norm_b = Vector.norm2 b in
  let threshold = tol *. norm_b in
  let iters = ref 0 in
  let continue_ = ref (sqrt !rs > threshold && threshold >= 0.) in
  if norm_b = 0. then continue_ := false;
  while !continue_ && !iters < max_iter do
    incr iters;
    let t0 = if probes then Obs.Clock.now_ns () else 0L in
    let ap = mul p in
    let pap = Vector.dot p ap in
    if pap <= 0. then continue_ := false (* not SPD or converged to noise *)
    else begin
      let alpha = !rs /. pap in
      Vector.axpy alpha p x;
      Vector.axpy (-.alpha) ap r;
      let rs' = Vector.dot r r in
      if sqrt rs' <= threshold then continue_ := false
      else begin
        let beta = rs' /. !rs in
        for i = 0 to dim - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done
      end;
      rs := rs'
    end;
    if probes then
      note_iteration ~solver:"cg" ~solve:solve_id ~iteration:!iters
        ~relative_residual:(if norm_b = 0. then 0. else sqrt !rs /. norm_b)
        ~iter_seconds:(Obs.Clock.seconds_since t0)
        ~context
  done;
  let residual_norm = Vector.norm2 r in
  let relative_residual = if norm_b = 0. then 0. else residual_norm /. norm_b in
  let converged = residual_norm <= threshold in
  let stats = { iterations = !iters; residual_norm; relative_residual; converged } in
  if probes then note_solve_done ~solver:"cg" ~solve:solve_id ~context stats;
  if not converged then
    note_nonconvergence ~solver:"cg" ~iterations:!iters ~relative_residual;
  (x, stats)

let solve ?tol ?max_iter ?context m b =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Conjugate_gradient.solve: not square";
  solve_matfree ?tol ?max_iter ?context ~dim:n ~mul:(fun x -> Matrix.mul_vec m x) b
