type stats = {
  iterations : int;
  residual_norm : float;
  relative_residual : float;
  converged : bool;
}

let m_nonconverged =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Iterative solves (CG, CGLS) that stopped before reaching tolerance"
    "lia_solver_nonconverged_total"

let note_nonconvergence ~solver ~iterations ~relative_residual =
  Obs.Metrics.incr m_nonconverged;
  Obs.Logger.warn Obs.Logger.default "iterative solver stopped before tolerance"
    ~fields:
      [
        ("solver", Obs.Field.Str solver);
        ("iterations", Obs.Field.Int iterations);
        ("relative_residual", Obs.Field.Float relative_residual);
      ]

let solve_matfree ?(tol = 1e-10) ?max_iter ~dim ~mul b =
  if Array.length b <> dim then
    invalid_arg "Conjugate_gradient.solve_matfree: dimension mismatch";
  if tol <= 0. then invalid_arg "Conjugate_gradient: non-positive tolerance";
  let max_iter = Option.value max_iter ~default:(max 1 dim) in
  let x = Vector.zeros dim in
  let r = Vector.copy b in
  let p = Vector.copy b in
  let rs = ref (Vector.dot r r) in
  let norm_b = Vector.norm2 b in
  let threshold = tol *. norm_b in
  let iters = ref 0 in
  let continue_ = ref (sqrt !rs > threshold && threshold >= 0.) in
  if norm_b = 0. then continue_ := false;
  while !continue_ && !iters < max_iter do
    incr iters;
    let ap = mul p in
    let pap = Vector.dot p ap in
    if pap <= 0. then continue_ := false (* not SPD or converged to noise *)
    else begin
      let alpha = !rs /. pap in
      Vector.axpy alpha p x;
      Vector.axpy (-.alpha) ap r;
      let rs' = Vector.dot r r in
      if sqrt rs' <= threshold then continue_ := false
      else begin
        let beta = rs' /. !rs in
        for i = 0 to dim - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done
      end;
      rs := rs'
    end
  done;
  let residual_norm = Vector.norm2 r in
  let relative_residual = if norm_b = 0. then 0. else residual_norm /. norm_b in
  let converged = residual_norm <= threshold in
  if not converged then
    note_nonconvergence ~solver:"cg" ~iterations:!iters ~relative_residual;
  (x, { iterations = !iters; residual_norm; relative_residual; converged })

let solve ?tol ?max_iter m b =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Conjugate_gradient.solve: not square";
  solve_matfree ?tol ?max_iter ~dim:n ~mul:(fun x -> Matrix.mul_vec m x) b
