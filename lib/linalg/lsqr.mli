(** CGLS — conjugate gradient on least squares, matrix-free.

    Solves [min ‖A x − b‖₂] for an operator given only as the pair of
    products [x ↦ A x] and [y ↦ Aᵀ y], without ever forming [A] or
    [AᵀA]. This is the estimator path that breaks the n_p² wall of the
    augmented system (Definition 1): the matrix has n_p(n_p+1)/2 rows —
    5·10⁷ at 10⁴ paths — so materializing it (or its Gram matrix, or a
    dense QR) stops being an option long before the products do. CGLS
    runs the {!Conjugate_gradient} recurrence on the normal equations
    implicitly, with the well-known stabilized form that applies [A] and
    [Aᵀ] once each per iteration and never squares the conditioning.

    In exact arithmetic CGLS and LSQR (Paige–Saunders) produce the same
    iterates; CGLS is the shorter recurrence and is what this module
    implements. For full-column-rank systems the limit is the unique
    least-squares solution; for rank-deficient ones, the minimum-norm
    solution reachable from the zero start. *)

type operator = {
  rows : int;  (** rows of the implicit [A] *)
  cols : int;  (** columns of the implicit [A] *)
  apply : Vector.t -> Vector.t;  (** [x ↦ A x] ([cols] → [rows]) *)
  apply_t : Vector.t -> Vector.t;  (** [y ↦ Aᵀ y] ([rows] → [cols]) *)
}
(** A matrix seen only through its two products. The products must be
    linear and mutually transposed; nothing checks this beyond dimension
    validation. *)

val of_sparse : Sparse.t -> operator
(** The operator of an explicit sparse 0/1 matrix ({!Sparse.mul_vec} /
    {!Sparse.mul_transpose_vec}) — the phase-2 backend that solves
    [Y = R* X*] without densifying [R*]. *)

val of_dense : Matrix.t -> operator
(** The operator of an explicit dense matrix; for tests and small
    systems. *)

val scaled_columns : operator -> Vector.t -> operator
(** [scaled_columns op w] is the operator of [A diag(w)] — the Jacobi
    (column-norm) right preconditioner. Solve with it, then multiply the
    solution element-wise by [w] to recover the unscaled unknowns; the
    minimizer is unchanged in exact arithmetic, but the iteration count
    drops when column norms are uneven (augmented matrices are: a link's
    column count ranges from 1 to the number of path pairs crossing
    it). *)

type stats = Conjugate_gradient.stats
(** For CGLS, [residual_norm] is [‖Aᵀ(b − A x)‖₂] — the normal-equations
    residual that is zero exactly at a least-squares minimizer — and
    [relative_residual] is it divided by [‖Aᵀb‖₂]. *)

val cgls :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vector.t ->
  ?precond:Precond.t ->
  ?context:(string * Obs.Field.t) list ->
  operator ->
  Vector.t ->
  Vector.t * stats
(** [cgls op b] minimizes [‖A x − b‖₂] from [x₀ = 0]. Stops when
    [‖Aᵀ(b − A x)‖ ≤ tol · ‖Aᵀ b‖] (default [tol = 1e-10]) or after
    [max_iter] iterations (default [2 · cols], generous because each
    iteration is one [apply] + one [apply_t]). Non-convergence is
    reported through {!Conjugate_gradient.note_nonconvergence} and the
    returned [stats]. Raises [Invalid_argument] on a length mismatch or
    non-positive [tol]. Deterministic: the same operator, right-hand
    side and options run the same floating-point operations in the same
    order.

    [x0] warm-starts the iteration — snapshot [k+1] of a batch solve
    starting from snapshot [k]'s solution. The stopping reference stays
    [‖Aᵀ b‖] (what the zero start would see), so a warm start can only
    save iterations, never weaken the target; when [‖Aᵀ b‖ = 0] the
    result is [x = 0] with a zero (never NaN) [relative_residual].

    [precond] runs the recurrence on the right-preconditioned operator
    [A C⁻¹] and maps the solution back ([x = C⁻¹ u]); see {!Precond}.
    Without it the recurrence is untouched — bit-for-bit the historical
    arithmetic.

    [context] labels the solve's telemetry — per-iteration relative
    residuals go to the [lia_cgls_relres] / [lia_cgls_iter_seconds]
    histograms, the flight recorder, and the {!Obs.Convergence} stream,
    tagged with the context fields plus a ["warm"] flag derived from
    [x0]. When no telemetry output is enabled the per-iteration probes
    (and their clock reads) are skipped entirely; either way the
    iterates are bit-for-bit unaffected. *)
