(** Householder orthogonal-triangular factorization.

    This is the solver the paper uses for the moment systems (Golub & Van
    Loan): [A = Q R] with [Q] orthogonal and [R] upper triangular. We keep
    the Householder vectors in factored form and never materialize [Q],
    which is all that least-squares solving and rank queries need.

    The factorization is built once and can then serve many right-hand
    sides ({!least_squares}, {!least_squares_batch}) — the serving-path
    pattern of [Core.Plan]. The trailing-matrix update of the
    factorization and the batched solves run on the [Parallel.Pool]
    domain pool; like the rest of the library's parallel kernels they are
    bit-for-bit identical for every [jobs] value, because each column is
    computed by exactly one task with a fixed operation order. *)

type t
(** A factorization of an [m × n] matrix with [m ≥ 0], [n ≥ 0]. *)

val factorize : ?jobs:int -> Matrix.t -> t
(** Householder QR without pivoting. [jobs] (default
    [Parallel.Pool.default_jobs ()]) parallelizes the trailing-matrix
    update over columns; the factors are bit-for-bit identical for every
    value. *)

val factorize_pivoted : ?jobs:int -> Matrix.t -> t
(** QR with column pivoting (greedy largest remaining column norm); required
    for reliable rank decisions on rank-deficient matrices. *)

val pivots : t -> int array
(** [pivots f] maps factored column position to the original column index
    (identity for an unpivoted factorization). *)

val r : t -> Matrix.t
(** The upper-triangular factor (size [min m n × n], in the pivoted column
    order if pivoting was used). *)

val rank : ?rtol:float -> t -> int
(** Numerical rank: the number of diagonal entries of [R] larger than
    [rtol * max_diag] (default [rtol = 1e-10]). Only meaningful on a pivoted
    factorization; on an unpivoted one it is a lower bound. *)

val apply_qt : t -> Vector.t -> Vector.t
(** [apply_qt f b] is [Qᵀ b] (length [m]). *)

val solve_r : ?rtol:float -> t -> Vector.t -> Vector.t
(** Back-substitution on the leading [n × n] block of [R]. Raises [Failure]
    if some diagonal entry of [R] is at most [rtol * max_diag] in magnitude
    (default [rtol = 1e-13] — singular to working precision), sharing the
    relative-tolerance rule of {!rank}. *)

val least_squares : ?rtol:float -> t -> Vector.t -> Vector.t
(** [least_squares f b] minimizes [‖A x - b‖₂]; requires full column rank
    (raises [Failure] otherwise, under the [rtol] rule of {!solve_r}).
    Pivoting is undone, so the solution is in the original column order. *)

val least_squares_batch : ?rtol:float -> ?jobs:int -> t -> Matrix.t -> Matrix.t
(** [least_squares_batch f b] solves one least-squares problem per column
    of the [m × nrhs] matrix [b]: column [c] of the [n × nrhs] result is
    bit-for-bit [least_squares f (Matrix.col b c)]. Each reflector is
    applied across all right-hand sides in one cache-friendly blocked
    pass, pool-parallel over column blocks ([jobs], default
    [Parallel.Pool.default_jobs ()]); the result is identical for every
    [jobs] value. Raises [Failure] once, up front, if [R] is singular to
    [rtol] — the check depends only on the factorization. *)

val matrix_rank : ?rtol:float -> Matrix.t -> int
(** Convenience: rank via pivoted QR. *)

val solve : ?rtol:float -> ?jobs:int -> Matrix.t -> Vector.t -> Vector.t
(** Convenience: factorize then [least_squares]. For square systems this is
    a linear solve; for tall systems the least-squares solution. *)
