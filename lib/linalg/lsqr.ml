type operator = {
  rows : int;
  cols : int;
  apply : Vector.t -> Vector.t;
  apply_t : Vector.t -> Vector.t;
}

type stats = Conjugate_gradient.stats

let of_sparse m =
  {
    rows = Sparse.rows m;
    cols = Sparse.cols m;
    apply = (fun x -> Sparse.mul_vec m x);
    apply_t = (fun y -> Sparse.mul_transpose_vec m y);
  }

let of_dense m =
  {
    rows = Matrix.rows m;
    cols = Matrix.cols m;
    apply = (fun x -> Matrix.mul_vec m x);
    apply_t = (fun y -> Matrix.tmul_vec m y);
  }

let scaled_columns op w =
  if Array.length w <> op.cols then
    invalid_arg "Lsqr.scaled_columns: weight length mismatch";
  {
    op with
    apply = (fun x -> op.apply (Vector.hadamard w x));
    apply_t = (fun y -> Vector.hadamard w (op.apply_t y));
  }

(* CGLS in the stabilized two-term form (Björck): one apply and one
   apply_t per iteration, the normal-equations residual s = Aᵀr carried
   explicitly so the stopping test costs nothing extra.

   With [precond] the recurrence runs on à = A C⁻¹ (right
   preconditioning): every iterate u lives in the preconditioned
   coordinates and the returned solution is x = C⁻¹ u. With [x0] the
   start is u₀ = C x₀ instead of 0; the stopping reference stays
   ‖Ãᵀ b‖ — what the zero start would see — so warming up can only
   save iterations, never tighten the target. *)
let cgls ?(tol = 1e-10) ?max_iter ?x0 ?precond ?(context = []) op b =
  if Array.length b <> op.rows then invalid_arg "Lsqr.cgls: rhs length mismatch";
  if tol <= 0. then invalid_arg "Lsqr.cgls: non-positive tolerance";
  let n = op.cols in
  (match precond with
  | Some p when Precond.cols p <> n ->
      invalid_arg "Lsqr.cgls: preconditioner dimension mismatch"
  | _ -> ());
  let solve_u = match precond with None -> Fun.id | Some p -> Precond.solve p in
  let solve_t = match precond with None -> Fun.id | Some p -> Precond.solve_t p in
  let apply u = op.apply (solve_u u) in
  let apply_t y = solve_t (op.apply_t y) in
  let max_iter = Option.value max_iter ~default:(max 1 (2 * n)) in
  let u, r =
    match x0 with
    | None -> (Vector.zeros n, Vector.copy b)
    | Some x ->
        if Array.length x <> n then invalid_arg "Lsqr.cgls: x0 length mismatch";
        let u0 =
          match precond with None -> Vector.copy x | Some p -> Precond.mul p x
        in
        let u0 = if u0 == x then Vector.copy x else u0 in
        let r = Vector.copy b in
        Vector.axpy (-1.) (op.apply x) r;
        (u0, r)
  in
  let s = apply_t r in
  if Array.length s <> n then invalid_arg "Lsqr.cgls: apply_t dimension mismatch";
  let gamma0 = Vector.dot s s in
  let ref_norm =
    match x0 with None -> sqrt gamma0 | Some _ -> Vector.norm2 (apply_t b)
  in
  let probes = Conjugate_gradient.instrumented () in
  let solve_id = if probes then Conjugate_gradient.new_solve_id () else 0 in
  let context =
    if probes then context @ [ ("warm", Obs.Field.Bool (x0 <> None)) ]
    else context
  in
  let stats_of ~iterations ~residual_norm ~converged =
    (* guard the zero-norm reference: 0/0 must read as "already there",
       never as NaN (pinned by test_linalg's zero-rhs cases) *)
    let relative_residual =
      if ref_norm > 0. then residual_norm /. ref_norm else 0.
    in
    let stats =
      {
        Conjugate_gradient.iterations;
        residual_norm;
        relative_residual;
        converged;
      }
    in
    if probes then
      Conjugate_gradient.note_solve_done ~solver:"cgls" ~solve:solve_id ~context
        stats;
    if not converged then
      Conjugate_gradient.note_nonconvergence ~solver:"cgls" ~iterations
        ~relative_residual;
    stats
  in
  if ref_norm = 0. then
    (* Aᵀb = 0: x = 0 zeroes the normal-equations residual exactly, so it
       is a minimizer no iteration could improve *)
    (Vector.zeros n, stats_of ~iterations:0 ~residual_norm:0. ~converged:true)
  else if gamma0 = 0. then
    (* the start is already a least-squares minimizer (with the zero
       start: b orthogonal to the range) *)
    let x = match x0 with None -> Vector.zeros n | Some x -> Vector.copy x in
    (x, stats_of ~iterations:0 ~residual_norm:0. ~converged:true)
  else begin
    let threshold = tol *. ref_norm in
    let p = Vector.copy s in
    let gamma = ref gamma0 in
    let iters = ref 0 in
    let continue_ = ref (sqrt gamma0 > threshold) in
    while !continue_ && !iters < max_iter do
      incr iters;
      let t0 = if probes then Obs.Clock.now_ns () else 0L in
      let q = apply p in
      let qq = Vector.dot q q in
      if qq <= 0. then
        (* p is in the null space: with the Krylov start this only
           happens at numerical exhaustion — stop where we are *)
        continue_ := false
      else begin
        let alpha = !gamma /. qq in
        Vector.axpy alpha p u;
        Vector.axpy (-.alpha) q r;
        let s = apply_t r in
        let gamma' = Vector.dot s s in
        if sqrt gamma' <= threshold then continue_ := false
        else begin
          let beta = gamma' /. !gamma in
          for i = 0 to n - 1 do
            p.(i) <- s.(i) +. (beta *. p.(i))
          done
        end;
        gamma := gamma'
      end;
      if probes then
        Conjugate_gradient.note_iteration ~solver:"cgls" ~solve:solve_id
          ~iteration:!iters
          ~relative_residual:(sqrt !gamma /. ref_norm)
          ~iter_seconds:(Obs.Clock.seconds_since t0)
          ~context
    done;
    let residual_norm = sqrt !gamma in
    let converged = residual_norm <= threshold in
    (solve_u u, stats_of ~iterations:!iters ~residual_norm ~converged)
  end
