type operator = {
  rows : int;
  cols : int;
  apply : Vector.t -> Vector.t;
  apply_t : Vector.t -> Vector.t;
}

type stats = Conjugate_gradient.stats

let of_sparse m =
  {
    rows = Sparse.rows m;
    cols = Sparse.cols m;
    apply = (fun x -> Sparse.mul_vec m x);
    apply_t = (fun y -> Sparse.mul_transpose_vec m y);
  }

let of_dense m =
  {
    rows = Matrix.rows m;
    cols = Matrix.cols m;
    apply = (fun x -> Matrix.mul_vec m x);
    apply_t = (fun y -> Matrix.tmul_vec m y);
  }

let scaled_columns op w =
  if Array.length w <> op.cols then
    invalid_arg "Lsqr.scaled_columns: weight length mismatch";
  {
    op with
    apply = (fun x -> op.apply (Vector.hadamard w x));
    apply_t = (fun y -> Vector.hadamard w (op.apply_t y));
  }

(* CGLS in the stabilized two-term form (Björck): one apply and one
   apply_t per iteration, the normal-equations residual s = Aᵀr carried
   explicitly so the stopping test costs nothing extra. *)
let cgls ?(tol = 1e-10) ?max_iter op b =
  if Array.length b <> op.rows then invalid_arg "Lsqr.cgls: rhs length mismatch";
  if tol <= 0. then invalid_arg "Lsqr.cgls: non-positive tolerance";
  let n = op.cols in
  let max_iter = Option.value max_iter ~default:(max 1 (2 * n)) in
  let x = Vector.zeros n in
  let s = op.apply_t b in
  if Array.length s <> n then invalid_arg "Lsqr.cgls: apply_t dimension mismatch";
  let gamma0 = Vector.dot s s in
  if gamma0 = 0. then
    (* b orthogonal to the range: x = 0 is already the minimizer *)
    ( x,
      {
        Conjugate_gradient.iterations = 0;
        residual_norm = 0.;
        relative_residual = 0.;
        converged = true;
      } )
  else begin
    let threshold = tol *. sqrt gamma0 in
    let r = Vector.copy b in
    let p = Vector.copy s in
    let gamma = ref gamma0 in
    let iters = ref 0 in
    let continue_ = ref true in
    while !continue_ && !iters < max_iter do
      incr iters;
      let q = op.apply p in
      let qq = Vector.dot q q in
      if qq <= 0. then
        (* p is in the null space: with the Krylov start this only
           happens at numerical exhaustion — stop where we are *)
        continue_ := false
      else begin
        let alpha = !gamma /. qq in
        Vector.axpy alpha p x;
        Vector.axpy (-.alpha) q r;
        let s = op.apply_t r in
        let gamma' = Vector.dot s s in
        if sqrt gamma' <= threshold then continue_ := false
        else begin
          let beta = gamma' /. !gamma in
          for i = 0 to n - 1 do
            p.(i) <- s.(i) +. (beta *. p.(i))
          done
        end;
        gamma := gamma'
      end
    done;
    let residual_norm = sqrt !gamma in
    let relative_residual = residual_norm /. sqrt gamma0 in
    let converged = residual_norm <= threshold in
    if not converged then
      Conjugate_gradient.note_nonconvergence ~solver:"cgls" ~iterations:!iters
        ~relative_residual;
    ( x,
      {
        Conjugate_gradient.iterations = !iters;
        residual_norm;
        relative_residual;
        converged;
      } )
  end
