(** Sparse 0/1 matrices stored by rows.

    Routing matrices [R] and the augmented matrix [A] of the paper are 0/1
    and extremely sparse (a row has one entry per link of a path). A row is
    the strictly increasing array of its nonzero column indices. This
    module provides exactly the operations the tomography pipeline needs:
    row-wise products (the [⊗] of Definition 1), matrix-vector products,
    dense conversion of column subsets, and least squares through the
    normal equations, which keeps the [n_p(n_p+1)/2 × n_c] system of eq. (8)
    tractable. *)

type row = int array
(** Strictly increasing column indices of the 1-entries. *)

type t

val create : cols:int -> row array -> t
(** [create ~cols rows] validates that every row is strictly increasing and
    within [0 .. cols-1]. Raises [Invalid_argument] otherwise. *)

val rows : t -> int

val cols : t -> int

val row : t -> int -> row
(** The row's support (do not mutate). *)

val nnz : t -> int
(** Number of stored ones. *)

val get : t -> int -> int -> bool
(** Membership test by binary search. *)

val row_product : row -> row -> row
(** Sorted intersection: the support of the element-wise product of two 0/1
    rows ([Ri∗ ⊗ Rj∗] in the paper). *)

val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec m x] is [m x]. *)

val tmul_vec : t -> Vector.t -> Vector.t
(** [tmul_vec m x] is [mᵀ x]. *)

val mul_transpose_vec : t -> Vector.t -> Vector.t
(** [mul_transpose_vec m x] is [mᵀ x] — the operator-facing name of
    {!tmul_vec}, paired with {!mul_vec} when a sparse matrix is handed to
    an iterative least-squares solver ({!Lsqr.of_sparse}). *)

type int1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat native-int storage for the packed row representation. *)

type csr = { ptr : int1; idx : int1 }
(** Classic compressed-sparse-row storage of the 0/1 support: row [i]'s
    column indices are [idx.{ptr.{i}} .. idx.{ptr.{i+1}-1}], strictly
    increasing. [ptr] has [rows + 1] entries; [idx] has {!nnz}. One flat
    allocation per array, so a kernel that streams many rows (the
    matrix-free augmented operator sweeps every path pair) walks
    contiguous memory instead of chasing a pointer per row. *)

val to_csr : t -> csr
(** Pack the rows into fresh flat storage, O(nnz). The result does not
    alias the sparse matrix. *)

val column_counts : t -> int array
(** For each column, how many rows contain it. *)

val to_dense : t -> Matrix.t

val dense_cols : t -> int array -> Matrix.t
(** [dense_cols m idx] is the dense [rows × |idx|] matrix of the selected
    columns (in the given order). *)

val select_rows : t -> int array -> t
(** Keeps the given rows in the given order (duplicates allowed). *)

val select_cols : t -> int array -> t
(** Keeps the given columns, renumbering them [0 .. |idx|-1] in order. Rows
    keep only their surviving entries (possibly becoming empty). *)

val permute_cols : t -> int array -> t
(** [permute_cols m order] reorders the columns: new column [k] is old
    column [order.(k)]. [order] must be a permutation of
    [0 .. cols-1] — unlike {!select_cols} nothing is dropped — so the
    result is the same matrix up to column numbering. This is the block
    reordering of the hierarchical solve path: with [order] the
    concatenation of an AS partition's groups, the permuted matrix has
    each group's columns contiguous (doubly-bordered block-diagonal
    form). Raises [Invalid_argument] if [order] is not a
    permutation. *)

val gram_block : t -> int array -> Matrix.t
(** [gram_block m idx] is the dense [|idx| × |idx|] diagonal block
    [(mᵀm)_{idx,idx}] of the Gram matrix — entry [(a,b)] counts the rows
    containing both column [idx.(a)] and column [idx.(b)]. O(nnz) plus
    O(per-row hits²); exact integer counts, deterministic. The
    per-group factor of {!Precond.block_jacobi}. *)

val transpose : t -> t

val cols_index : t -> row array
(** CSC-style column index, built in one O(nnz) pass: entry [j] is the
    strictly increasing array of the rows whose support contains column
    [j] (exactly the rows of {!transpose}). Lets a consumer scatter a
    column densely in O(nnz of the column) instead of probing all rows
    with {!get} — the [Core.Rank_reduction] sweep builds it once per
    scan. Entries are fresh arrays the caller may keep. *)

val normal_matrix : ?jobs:int -> t -> Matrix.t
(** [normal_matrix a] is the dense Gram matrix [aᵀ a], assembled row by row
    in O(nnz per row squared). Row blocks are scattered in parallel over
    [jobs] domains (default [Parallel.Pool.default_jobs ()]); since every
    entry is an exact integer count, the result is bit-for-bit identical
    for every [jobs]. *)

val normal_rhs : t -> Vector.t -> Vector.t
(** [normal_rhs a b] is [aᵀ b]. *)

val least_squares : ?ridge:float -> ?jobs:int -> t -> Vector.t -> Vector.t
(** Minimizes [‖a x − b‖₂] by solving the normal equations with a
    (regularized) Cholesky factorization. Suitable when [a] has full column
    rank, which Theorem 1 guarantees for augmented matrices of valid
    topologies. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
