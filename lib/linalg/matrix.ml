type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.

let init rows cols f =
  let m = zeros rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let rows m = m.rows

let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: index out of bounds";
  m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)

let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: index out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.col: index out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let set_row m i v =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.set_row: index out of bounds";
  if Array.length v <> m.cols then invalid_arg "Matrix.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same "Matrix.add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "Matrix.sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = zeros a.rows b.cols in
  (* k-in-the-middle loop order keeps the inner scan over contiguous rows of
     [b] and [c], which matters for the larger tomography systems. *)
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j)
          <- c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec m x =
  if Array.length x <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let tmul_vec m x =
  if Array.length x <> m.rows then invalid_arg "Matrix.tmul_vec: dimension mismatch";
  let y = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.((i * m.cols) + j) *. xi)
      done
  done;
  y

let gram m =
  let g = zeros m.cols m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      let mij = m.data.(base + j) in
      if mij <> 0. then
        for k = j to m.cols - 1 do
          g.data.((j * m.cols) + k)
          <- g.data.((j * m.cols) + k) +. (mij *. m.data.(base + k))
        done
    done
  done;
  for j = 0 to m.cols - 1 do
    for k = 0 to j - 1 do
      g.data.((j * m.cols) + k) <- g.data.((k * m.cols) + j)
    done
  done;
  g

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let diagonal m = Array.init (min m.rows m.cols) (fun i -> get m i i)

let select_cols m idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= m.cols then invalid_arg "Matrix.select_cols: index out of bounds")
    idx;
  init m.rows (Array.length idx) (fun i k -> get m i idx.(k))

let drop_cols m to_drop =
  let dropped = Array.make m.cols false in
  List.iter
    (fun j ->
      if j < 0 || j >= m.cols then invalid_arg "Matrix.drop_cols: index out of bounds";
      dropped.(j) <- true)
    to_drop;
  let kept = ref [] in
  for j = m.cols - 1 downto 0 do
    if not dropped.(j) then kept := j :: !kept
  done;
  select_cols m (Array.of_list !kept)

let hstack a b =
  if a.rows <> b.rows then invalid_arg "Matrix.hstack: row mismatch";
  init a.rows (a.cols + b.cols) (fun i j ->
      if j < a.cols then get a i j else get b i (j - a.cols))

let vstack a b =
  if a.cols <> b.cols then invalid_arg "Matrix.vstack: column mismatch";
  init (a.rows + b.rows) a.cols (fun i j ->
      if i < a.rows then get a i j else get b (i - a.rows) j)

let map f m = { m with data = Array.map f m.data }

let frobenius m = Vector.norm2 m.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && Vector.approx_equal ~tol a.data b.data

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  && begin
       let ok = ref true in
       for i = 0 to m.rows - 1 do
         for j = i + 1 to m.cols - 1 do
           if Float.abs (get m i j -. get m j i) > tol then ok := false
         done
       done;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.4g" (get m i j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"
