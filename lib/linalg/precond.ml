type block = { idx : int array; lower : Matrix.t }

type kind =
  | Identity
  | Diag of Vector.t (* reciprocal scales: C⁻¹ = diag(w) *)
  | Blocks of { jobs : int option; blocks : block array }

type t = { n : int; kind : kind }

let cols p = p.n

let block_count p =
  match p.kind with
  | Identity -> 0
  | Diag _ -> 1
  | Blocks { blocks; _ } -> Array.length blocks

let identity n =
  if n < 0 then invalid_arg "Precond.identity: negative dimension";
  { n; kind = Identity }

let jacobi d =
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0. then
        invalid_arg "Precond.jacobi: diagonal entries must be finite and >= 0")
    d;
  (* the reciprocal roots are the stored representation so that applying
     the preconditioner multiplies — bit-for-bit the historical
     [Lsqr.scaled_columns] arithmetic *)
  let w = Array.map (fun c -> 1. /. sqrt (Float.max 1. c)) d in
  { n = Array.length d; kind = Diag w }

let block_jacobi ?jobs ~cols blocks =
  if cols < 0 then invalid_arg "Precond.block_jacobi: negative dimension";
  let covered = Array.make cols false in
  Array.iter
    (fun (idx, g) ->
      let s = Array.length idx in
      if s = 0 then invalid_arg "Precond.block_jacobi: empty group";
      if Matrix.rows g <> s || Matrix.cols g <> s then
        invalid_arg "Precond.block_jacobi: block dimension mismatch";
      Array.iteri
        (fun t j ->
          if j < 0 || j >= cols then
            invalid_arg "Precond.block_jacobi: column index out of range";
          if covered.(j) then
            invalid_arg "Precond.block_jacobi: overlapping groups";
          if t > 0 && idx.(t - 1) >= j then
            invalid_arg "Precond.block_jacobi: group indices not increasing";
          covered.(j) <- true)
        idx)
    blocks;
  let out = Array.make (Array.length blocks) { idx = [||]; lower = Matrix.zeros 0 0 } in
  (* each block factors into its own slot: jobs-invariant by construction *)
  Parallel.Pool.parallel_for ?jobs ~min_block:1 ~n:(Array.length blocks)
    (fun bi ->
      let idx, g = blocks.(bi) in
      out.(bi) <- { idx; lower = Cholesky.lower (Cholesky.factorize_regularized g) });
  { n = cols; kind = Blocks { jobs; blocks = out } }

(* Per-block dense triangular kernels over the gathered group entries.
   [L] is the lower Cholesky factor of the block's Gram, C = Lᵀ. *)

(* u = Lᵀ x *)
let block_mul l x =
  let s = Array.length x in
  Array.init s (fun i ->
      let acc = ref 0. in
      for j = i to s - 1 do
        acc := !acc +. (Matrix.unsafe_get l j i *. x.(j))
      done;
      !acc)

(* solve Lᵀ x = u (back substitution) *)
let block_solve l u =
  let s = Array.length u in
  let x = Array.make s 0. in
  for i = s - 1 downto 0 do
    let acc = ref u.(i) in
    for j = i + 1 to s - 1 do
      acc := !acc -. (Matrix.unsafe_get l j i *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.unsafe_get l i i
  done;
  x

(* solve L z = s (forward substitution) *)
let block_solve_t l b =
  let s = Array.length b in
  let z = Array.make s 0. in
  for i = 0 to s - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.unsafe_get l i j *. z.(j))
    done;
    z.(i) <- !acc /. Matrix.unsafe_get l i i
  done;
  z

let on_blocks ~jobs ~blocks kernel v =
  (* uncovered columns pass through; each block overwrites only its own
     indices, so the result is identical for every [jobs] value *)
  let out = Array.copy v in
  Parallel.Pool.parallel_for ?jobs ~min_block:1 ~n:(Array.length blocks)
    (fun bi ->
      let { idx; lower } = blocks.(bi) in
      let g = Array.map (fun j -> v.(j)) idx in
      let r = kernel lower g in
      Array.iteri (fun t j -> out.(j) <- r.(t)) idx);
  out

let check p v name =
  if Array.length v <> p.n then invalid_arg ("Precond." ^ name ^ ": dimension mismatch")

let mul p v =
  check p v "mul";
  match p.kind with
  | Identity -> v
  | Diag w -> Array.mapi (fun e x -> x /. w.(e)) v
  | Blocks { jobs; blocks } -> on_blocks ~jobs ~blocks block_mul v

let solve p v =
  check p v "solve";
  match p.kind with
  | Identity -> v
  | Diag w -> Vector.hadamard w v
  | Blocks { jobs; blocks } -> on_blocks ~jobs ~blocks block_solve v

let solve_t p v =
  check p v "solve_t";
  match p.kind with
  | Identity -> v
  | Diag w -> Vector.hadamard w v
  | Blocks { jobs; blocks } -> on_blocks ~jobs ~blocks block_solve_t v
