module Pool = Parallel.Pool
module Chunk = Parallel.Chunk

type t = {
  m : int;
  n : int;
  a : Matrix.t; (* R in and above the diagonal, Householder vectors below *)
  beta : float array; (* Householder coefficients, one per reflection *)
  piv : int array; (* piv.(j) = original index of factored column j *)
}

(* Build the Householder reflection annihilating a.(k+1..m-1, k); store the
   vector below the diagonal with the implicit convention v.(k) = 1. *)
let house_column a m k =
  let alpha = ref 0. in
  for i = k to m - 1 do
    let x = Matrix.unsafe_get a i k in
    alpha := !alpha +. (x *. x)
  done;
  let alpha = sqrt !alpha in
  if alpha = 0. then 0.
  else begin
    let akk = Matrix.unsafe_get a k k in
    let alpha = if akk > 0. then -.alpha else alpha in
    let v0 = akk -. alpha in
    (* v = x - alpha e1; normalize so v.(k) = 1 *)
    if v0 = 0. then 0.
    else begin
      for i = k + 1 to m - 1 do
        Matrix.unsafe_set a i k (Matrix.unsafe_get a i k /. v0)
      done;
      let vtv = ref 1. in
      for i = k + 1 to m - 1 do
        let v = Matrix.unsafe_get a i k in
        vtv := !vtv +. (v *. v)
      done;
      Matrix.unsafe_set a k k alpha;
      2. /. !vtv
    end
  end

let apply_house_to_col a m k beta j =
  (* column j of the trailing matrix: x <- x - beta v (v' x) *)
  let vtx = ref (Matrix.unsafe_get a k j) in
  for i = k + 1 to m - 1 do
    vtx := !vtx +. (Matrix.unsafe_get a i k *. Matrix.unsafe_get a i j)
  done;
  let s = beta *. !vtx in
  Matrix.unsafe_set a k j (Matrix.unsafe_get a k j -. s);
  for i = k + 1 to m - 1 do
    Matrix.unsafe_set a i j (Matrix.unsafe_get a i j -. (s *. Matrix.unsafe_get a i k))
  done

(* Distinct columns touch disjoint state, so the trailing update can run
   one column per pool task; blocks are sized so each carries a few
   thousand flops whatever the column height. Column j's arithmetic is
   independent of which domain runs it — bit-for-bit jobs-invariant. *)
let update_trailing ?jobs a m n k beta =
  let cols = n - k - 1 in
  if cols > 0 then
    Pool.parallel_for ?jobs
      ~min_block:(max 8 (4096 / (max 1 (m - k))))
      ~n:cols
      (fun t -> apply_house_to_col a m k beta (k + 1 + t))

let factorize_gen ?jobs ~pivot mat =
  let m = Matrix.rows mat and n = Matrix.cols mat in
  let a = Matrix.copy mat in
  let steps = min m n in
  let beta = Array.make (max steps 0) 0. in
  let piv = Array.init n (fun j -> j) in
  let colnorm2 =
    if pivot then Array.init n (fun j -> Vector.dot (Matrix.col a j) (Matrix.col a j))
    else [||]
  in
  let swap_cols j1 j2 =
    if j1 <> j2 then begin
      for i = 0 to m - 1 do
        let x = Matrix.unsafe_get a i j1 in
        Matrix.unsafe_set a i j1 (Matrix.unsafe_get a i j2);
        Matrix.unsafe_set a i j2 x
      done;
      let p = piv.(j1) in
      piv.(j1) <- piv.(j2);
      piv.(j2) <- p;
      let c = colnorm2.(j1) in
      colnorm2.(j1) <- colnorm2.(j2);
      colnorm2.(j2) <- c
    end
  in
  for k = 0 to steps - 1 do
    if pivot then begin
      let best = ref k in
      for j = k + 1 to n - 1 do
        if colnorm2.(j) > colnorm2.(!best) then best := j
      done;
      swap_cols k !best
    end;
    let b = house_column a m k in
    beta.(k) <- b;
    if b <> 0. then update_trailing ?jobs a m n k b;
    if pivot then
      for j = k + 1 to n - 1 do
        let rkj = Matrix.unsafe_get a k j in
        colnorm2.(j) <- Float.max 0. (colnorm2.(j) -. (rkj *. rkj))
      done
  done;
  { m; n; a; beta; piv }

let factorize ?jobs mat = factorize_gen ?jobs ~pivot:false mat

let factorize_pivoted ?jobs mat = factorize_gen ?jobs ~pivot:true mat

let pivots f = Array.copy f.piv

let r f =
  let k = min f.m f.n in
  Matrix.init k f.n (fun i j -> if j >= i then Matrix.get f.a i j else 0.)

(* Every tolerance decision in this module is relative to the largest
   diagonal magnitude of R; [rank] and [solve_r] differ only in their
   default rtol. *)
let max_abs_diag f =
  let k = min f.m f.n in
  let dmax = ref 0. in
  for i = 0 to k - 1 do
    dmax := Float.max !dmax (Float.abs (Matrix.unsafe_get f.a i i))
  done;
  !dmax

let negligible ~rtol ~dmax d = d = 0. || Float.abs d <= rtol *. dmax

let rank ?(rtol = 1e-10) f =
  let k = min f.m f.n in
  let dmax = max_abs_diag f in
  if dmax = 0. then 0
  else begin
    let cnt = ref 0 in
    for i = 0 to k - 1 do
      if not (negligible ~rtol ~dmax (Matrix.unsafe_get f.a i i)) then incr cnt
    done;
    !cnt
  end

let apply_qt f b =
  if Array.length b <> f.m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Array.copy b in
  for k = 0 to Array.length f.beta - 1 do
    let beta = f.beta.(k) in
    if beta <> 0. then begin
      let vty = ref (Array.unsafe_get y k) in
      for i = k + 1 to f.m - 1 do
        vty := !vty +. (Matrix.unsafe_get f.a i k *. Array.unsafe_get y i)
      done;
      let s = beta *. !vty in
      Array.unsafe_set y k (Array.unsafe_get y k -. s);
      for i = k + 1 to f.m - 1 do
        Array.unsafe_set y i
          (Array.unsafe_get y i -. (s *. Matrix.unsafe_get f.a i k))
      done
    end
  done;
  y

let default_solve_rtol = 1e-13

let check_solvable ~rtol f =
  if f.m < f.n then failwith "Qr.solve_r: underdetermined system";
  let dmax = max_abs_diag f in
  for i = 0 to f.n - 1 do
    if negligible ~rtol ~dmax (Matrix.unsafe_get f.a i i) then
      failwith "Qr.solve_r: singular triangular factor"
  done

let solve_r ?(rtol = default_solve_rtol) f c =
  let n = f.n in
  if f.m < n then failwith "Qr.solve_r: underdetermined system";
  if Array.length c < n then invalid_arg "Qr.solve_r: dimension mismatch";
  check_solvable ~rtol f;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let d = Matrix.unsafe_get f.a i i in
    let acc = ref (Array.unsafe_get c i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.unsafe_get f.a i j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!acc /. d)
  done;
  x

let least_squares ?rtol f b =
  let qtb = apply_qt f b in
  let x = solve_r ?rtol f qtb in
  let out = Array.make f.n 0. in
  for j = 0 to f.n - 1 do
    out.(f.piv.(j)) <- x.(j)
  done;
  out

(* Batched right-hand sides. The work matrix keeps one RHS per column, so
   a reflector pass scans contiguous rows once for the whole column slice
   instead of once per RHS; slices of at least 8 columns keep every
   fetched cache line fully used. Per column the arithmetic and its order
   are exactly those of [apply_qt] + [solve_r], and each task owns a
   disjoint column range, so column c of the result is bit-for-bit
   [least_squares f (Matrix.col b c)] for every [jobs] value. *)
let least_squares_batch ?(rtol = default_solve_rtol) ?jobs f b =
  if Matrix.rows b <> f.m then
    invalid_arg "Qr.least_squares_batch: dimension mismatch";
  check_solvable ~rtol f;
  let n = f.n and m = f.m in
  let nrhs = Matrix.cols b in
  let w = Matrix.copy b in
  let x = Matrix.zeros n nrhs in
  let steps = Array.length f.beta in
  let solve_slice clo chi =
    let width = chi - clo in
    let s = Array.make (max width 0) 0. in
    (* Qᵀ applied to every column of the slice, reflector by reflector *)
    for k = 0 to steps - 1 do
      let beta = f.beta.(k) in
      if beta <> 0. then begin
        for c = 0 to width - 1 do
          Array.unsafe_set s c (Matrix.unsafe_get w k (clo + c))
        done;
        for i = k + 1 to m - 1 do
          let v = Matrix.unsafe_get f.a i k in
          for c = 0 to width - 1 do
            Array.unsafe_set s c
              (Array.unsafe_get s c +. (v *. Matrix.unsafe_get w i (clo + c)))
          done
        done;
        for c = 0 to width - 1 do
          let sc = beta *. Array.unsafe_get s c in
          Array.unsafe_set s c sc;
          Matrix.unsafe_set w k (clo + c) (Matrix.unsafe_get w k (clo + c) -. sc)
        done;
        for i = k + 1 to m - 1 do
          let v = Matrix.unsafe_get f.a i k in
          for c = 0 to width - 1 do
            Matrix.unsafe_set w i (clo + c)
              (Matrix.unsafe_get w i (clo + c) -. (Array.unsafe_get s c *. v))
          done
        done
      end
    done;
    (* back-substitution on the leading n×n block of R, per column *)
    for i = n - 1 downto 0 do
      let d = Matrix.unsafe_get f.a i i in
      for c = 0 to width - 1 do
        let acc = ref (Matrix.unsafe_get w i (clo + c)) in
        for j = i + 1 to n - 1 do
          acc :=
            !acc -. (Matrix.unsafe_get f.a i j *. Matrix.unsafe_get x j (clo + c))
        done;
        Matrix.unsafe_set x i (clo + c) (!acc /. d)
      done
    done
  in
  let blocks = Chunk.block_count ~min_block:8 nrhs in
  if blocks > 0 then
    Pool.for_blocks ?jobs blocks (fun bk ->
        let clo, chi = Chunk.range ~blocks ~n:nrhs bk in
        solve_slice clo chi);
  (* undo the column pivoting (identity for unpivoted factorizations) *)
  let out = Matrix.zeros n nrhs in
  for j = 0 to n - 1 do
    let pj = f.piv.(j) in
    for c = 0 to nrhs - 1 do
      Matrix.unsafe_set out pj c (Matrix.unsafe_get x j c)
    done
  done;
  out

let matrix_rank ?rtol mat = rank ?rtol (factorize_pivoted mat)

let solve ?rtol ?jobs mat b = least_squares ?rtol (factorize ?jobs mat) b
