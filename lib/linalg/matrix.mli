(** Dense row-major matrices of floats.

    The representation is a flat [float array] with explicit row and column
    counts, so rows can be scanned without per-row bounds checks and the
    whole payload stays in one allocation. Indices are 0-based. Operations
    raise [Invalid_argument] on dimension mismatches. *)

type t

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows × cols] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val of_arrays : float array array -> t
(** Builds from an array of rows; all rows must have the same length.
    An empty outer array yields the [0 × 0] matrix. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** [get] without bounds checks, for the inner loops of the factorizations
    ([Qr], [Cholesky]) where the enclosing loop already pins the indices.
    Out-of-range indices are undefined behaviour. *)

val unsafe_set : t -> int -> int -> float -> unit
(** [set] without bounds checks; same contract as {!unsafe_get}. *)

val copy : t -> t

val row : t -> int -> Vector.t
(** [row m i] is a fresh copy of row [i]. *)

val col : t -> int -> Vector.t
(** [col m j] is a fresh copy of column [j]. *)

val set_row : t -> int -> Vector.t -> unit

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec m x] is [m x]. *)

val tmul_vec : t -> Vector.t -> Vector.t
(** [tmul_vec m x] is [mᵀ x] without forming the transpose. *)

val gram : t -> t
(** [gram m] is [mᵀ m] (symmetric positive semi-definite). *)

val diag : Vector.t -> t
(** Square matrix with the given diagonal. *)

val diagonal : t -> Vector.t
(** Diagonal of a matrix (length [min rows cols]). *)

val select_cols : t -> int array -> t
(** [select_cols m idx] keeps columns [idx] in the given order. *)

val drop_cols : t -> int list -> t
(** [drop_cols m idx] removes the listed columns (duplicates allowed). *)

val hstack : t -> t -> t
(** Horizontal concatenation (same number of rows). *)

val vstack : t -> t -> t
(** Vertical concatenation (same number of columns). *)

val map : (float -> float) -> t -> t

val frobenius : t -> float
(** Frobenius norm. *)

val approx_equal : ?tol:float -> t -> t -> bool

val is_symmetric : ?tol:float -> t -> bool

val pp : Format.formatter -> t -> unit
