exception Not_positive_definite

type t = { n : int; l : Matrix.t }

(* The factorization works on plain rows: going through Matrix.get in the
   O(n^3) inner loop costs an order of magnitude on the ~1000-link systems
   the tomography solver produces. *)
let factorize m =
  let n = Matrix.rows m in
  if n <> Matrix.cols m then invalid_arg "Cholesky.factorize: not square";
  let l = Array.init n (fun i -> Array.init n (fun j -> Matrix.get m i j)) in
  for j = 0 to n - 1 do
    let lj = l.(j) in
    let s = ref lj.(j) in
    for k = 0 to j - 1 do
      let ljk = lj.(k) in
      s := !s -. (ljk *. ljk)
    done;
    if !s <= 0. || Float.is_nan !s then raise Not_positive_definite;
    let d = sqrt !s in
    lj.(j) <- d;
    for i = j + 1 to n - 1 do
      let li = l.(i) in
      let s = ref li.(j) in
      for k = 0 to j - 1 do
        s := !s -. (li.(k) *. lj.(k))
      done;
      li.(j) <- !s /. d
    done
  done;
  let lower = Matrix.init n n (fun i j -> if j <= i then l.(i).(j) else 0.) in
  { n; l = lower }

let factorize_regularized ?(ridge = 1e-10) m =
  let n = Matrix.rows m in
  let mean_diag =
    if n = 0 then 0.
    else begin
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. Float.abs (Matrix.get m i i)
      done;
      !s /. float_of_int n
    end
  in
  let base = if mean_diag > 0. then mean_diag else 1. in
  let rec attempt r =
    let shifted =
      if r = 0. then m
      else Matrix.init n n (fun i j ->
               if i = j then Matrix.get m i j +. (r *. base) else Matrix.get m i j)
    in
    match factorize shifted with
    | f -> f
    | exception Not_positive_definite ->
        if r = 0. then attempt ridge
        else if r > 1e-2 then raise Not_positive_definite
        else attempt (r *. 10.)
  in
  attempt 0.

let lower f = Matrix.copy f.l

let solve_vec f b =
  if Array.length b <> f.n then invalid_arg "Cholesky.solve_vec: dimension mismatch";
  let y = Array.make f.n 0. in
  for i = 0 to f.n - 1 do
    let s = ref (Array.unsafe_get b i) in
    for k = 0 to i - 1 do
      s := !s -. (Matrix.unsafe_get f.l i k *. Array.unsafe_get y k)
    done;
    Array.unsafe_set y i (!s /. Matrix.unsafe_get f.l i i)
  done;
  let x = Array.make f.n 0. in
  for i = f.n - 1 downto 0 do
    let s = ref (Array.unsafe_get y i) in
    for k = i + 1 to f.n - 1 do
      s := !s -. (Matrix.unsafe_get f.l k i *. Array.unsafe_get x k)
    done;
    Array.unsafe_set x i (!s /. Matrix.unsafe_get f.l i i)
  done;
  x

let solve m b = solve_vec (factorize m) b

let log_det f =
  let acc = ref 0. in
  for i = 0 to f.n - 1 do
    acc := !acc +. log (Matrix.get f.l i i)
  done;
  2. *. !acc
