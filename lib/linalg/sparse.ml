type row = int array

type t = { nrows : int; ncols : int; data : row array }

let validate_row ncols r =
  let ok = ref true in
  Array.iteri
    (fun k j ->
      if j < 0 || j >= ncols then ok := false;
      if k > 0 && r.(k - 1) >= j then ok := false)
    r;
  !ok

let create ~cols data =
  if cols < 0 then invalid_arg "Sparse.create: negative column count";
  Array.iter
    (fun r ->
      if not (validate_row cols r) then
        invalid_arg "Sparse.create: row not strictly increasing or out of range")
    data;
  { nrows = Array.length data; ncols = cols; data }

let rows m = m.nrows

let cols m = m.ncols

let row m i =
  if i < 0 || i >= m.nrows then invalid_arg "Sparse.row: index out of bounds";
  m.data.(i)

let nnz m = Array.fold_left (fun acc r -> acc + Array.length r) 0 m.data

let get m i j =
  let r = row m i in
  if j < 0 || j >= m.ncols then invalid_arg "Sparse.get: index out of bounds";
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if r.(mid) = j then true
      else if r.(mid) < j then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 (Array.length r)

let row_product r1 r2 =
  let n1 = Array.length r1 and n2 = Array.length r2 in
  let out = Array.make (min n1 n2) 0 in
  let k = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let a = r1.(!i) and b = r2.(!j) in
    if a = b then begin
      out.(!k) <- a;
      incr k;
      incr i;
      incr j
    end
    else if a < b then incr i
    else incr j
  done;
  Array.sub out 0 !k

let mul_vec m x =
  if Array.length x <> m.ncols then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Array.map
    (fun r ->
      let acc = ref 0. in
      Array.iter (fun j -> acc := !acc +. x.(j)) r;
      !acc)
    m.data

let tmul_vec m x =
  if Array.length x <> m.nrows then invalid_arg "Sparse.tmul_vec: dimension mismatch";
  let y = Array.make m.ncols 0. in
  Array.iteri
    (fun i r ->
      let xi = x.(i) in
      if xi <> 0. then Array.iter (fun j -> y.(j) <- y.(j) +. xi) r)
    m.data;
  y

let mul_transpose_vec = tmul_vec

type int1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type csr = { ptr : int1; idx : int1 }

let to_csr m =
  let ptr = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (m.nrows + 1) in
  let total = nnz m in
  let idx = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 total) in
  let k = ref 0 in
  Array.iteri
    (fun i r ->
      ptr.{i} <- !k;
      Array.iter
        (fun j ->
          idx.{!k} <- j;
          incr k)
        r)
    m.data;
  ptr.{m.nrows} <- !k;
  { ptr; idx }

let column_counts m =
  let c = Array.make m.ncols 0 in
  Array.iter (fun r -> Array.iter (fun j -> c.(j) <- c.(j) + 1) r) m.data;
  c

let to_dense m =
  let d = Matrix.zeros m.nrows m.ncols in
  Array.iteri (fun i r -> Array.iter (fun j -> Matrix.set d i j 1.) r) m.data;
  d

let dense_cols m idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= m.ncols then invalid_arg "Sparse.dense_cols: index out of bounds")
    idx;
  (* map original column -> position in [idx]; -1 when dropped *)
  let pos = Array.make m.ncols (-1) in
  Array.iteri (fun k j -> pos.(j) <- k) idx;
  let d = Matrix.zeros m.nrows (Array.length idx) in
  Array.iteri
    (fun i r ->
      Array.iter (fun j -> if pos.(j) >= 0 then Matrix.set d i pos.(j) 1.) r)
    m.data;
  d

let select_rows m idx =
  let data = Array.map (fun i -> Array.copy (row m i)) idx in
  { nrows = Array.length idx; ncols = m.ncols; data }

let select_cols m idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= m.ncols then invalid_arg "Sparse.select_cols: index out of bounds")
    idx;
  let pos = Array.make m.ncols (-1) in
  Array.iteri (fun k j -> pos.(j) <- k) idx;
  let remap r =
    let buf = Array.make (Array.length r) 0 in
    let k = ref 0 in
    Array.iter
      (fun j ->
        if pos.(j) >= 0 then begin
          buf.(!k) <- pos.(j);
          incr k
        end)
      r;
    let a = Array.sub buf 0 !k in
    Array.sort Int.compare a;
    a
  in
  { nrows = m.nrows; ncols = Array.length idx; data = Array.map remap m.data }

let permute_cols m order =
  if Array.length order <> m.ncols then
    invalid_arg "Sparse.permute_cols: order length mismatch";
  let seen = Array.make m.ncols false in
  Array.iter
    (fun j ->
      if j < 0 || j >= m.ncols then
        invalid_arg "Sparse.permute_cols: index out of bounds";
      if seen.(j) then invalid_arg "Sparse.permute_cols: duplicate index";
      seen.(j) <- true)
    order;
  select_cols m order

let gram_block m idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= m.ncols then
        invalid_arg "Sparse.gram_block: index out of bounds")
    idx;
  let s = Array.length idx in
  let pos = Array.make m.ncols (-1) in
  Array.iteri (fun t j -> pos.(j) <- t) idx;
  let g = Matrix.zeros s s in
  (* entries are exact integer counts; a sequential sweep is already
     deterministic and the blocks handed here are small *)
  Array.iter
    (fun r ->
      let local = Array.make (Array.length r) 0 in
      let k = ref 0 in
      Array.iter
        (fun j ->
          if pos.(j) >= 0 then begin
            local.(!k) <- pos.(j);
            incr k
          end)
        r;
      for a = 0 to !k - 1 do
        for b = 0 to !k - 1 do
          let i, j = (local.(a), local.(b)) in
          Matrix.set g i j (Matrix.get g i j +. 1.)
        done
      done)
    m.data;
  g

let cols_index m =
  let counts = column_counts m in
  let out = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make m.ncols 0 in
  Array.iteri
    (fun i r ->
      Array.iter
        (fun j ->
          out.(j).(fill.(j)) <- i;
          fill.(j) <- fill.(j) + 1)
        r)
    m.data;
  (* rows were scanned in increasing i, so each out.(j) is already sorted *)
  out

let transpose m = { nrows = m.ncols; ncols = m.nrows; data = cols_index m }

let normal_matrix ?jobs m =
  let nc = m.ncols in
  (* Gram scatter over row blocks. Every entry of G is a count of 1.0
     increments — exact in floating point — so per-domain partial
     accumulators can be merged in any order without changing a bit of
     the result, whatever the jobs value. *)
  let blocks = Parallel.Chunk.block_count ~min_block:512 m.nrows in
  let bufs = Parallel.Pool.Buffers.create (fun () -> Array.make (nc * nc) 0.) in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:m.nrows bk in
      let g = Parallel.Pool.Buffers.borrow bufs in
      for i = lo to hi - 1 do
        let r = m.data.(i) in
        let len = Array.length r in
        for a = 0 to len - 1 do
          let base = r.(a) * nc in
          for b = a to len - 1 do
            let k = base + r.(b) in
            g.(k) <- g.(k) +. 1.
          done
        done
      done;
      Parallel.Pool.Buffers.return bufs g);
  let g =
    match Parallel.Pool.Buffers.all bufs with
    | [] -> Array.make (nc * nc) 0.
    | first :: rest ->
        List.iter
          (fun p ->
            for k = 0 to (nc * nc) - 1 do
              first.(k) <- first.(k) +. p.(k)
            done)
          rest;
        first
  in
  for i = 0 to nc - 1 do
    for j = 0 to i - 1 do
      g.((i * nc) + j) <- g.((j * nc) + i)
    done
  done;
  Matrix.init nc nc (fun i j -> g.((i * nc) + j))

let normal_rhs = tmul_vec

let least_squares ?ridge ?jobs m b =
  let g = normal_matrix ?jobs m in
  let rhs = normal_rhs m b in
  let f = Cholesky.factorize_regularized ?ridge g in
  Cholesky.solve_vec f rhs

let equal m1 m2 =
  m1.nrows = m2.nrows && m1.ncols = m2.ncols
  && Array.for_all2 (fun r1 r2 -> r1 = r2) m1.data m2.data

let pp ppf m =
  Format.fprintf ppf "@[<v>sparse %dx%d:" m.nrows m.ncols;
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "@,%3d: {" i;
      Array.iteri
        (fun k j ->
          if k > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%d" j)
        r;
      Format.fprintf ppf "}")
    m.data;
  Format.fprintf ppf "@]"
