(** Conjugate gradient for symmetric positive-definite systems.

    An iterative alternative to {!Cholesky} for the normal equations
    [AᵀA v = AᵀΣ*]: O(n²) per iteration with early termination, which
    wins when the system is large and well-conditioned (the augmented
    Gram matrices of dense measurement campaigns are). Exposed both as a
    dense-matrix solve and as a matrix-free variant taking the
    matrix-vector product, so callers can keep [AᵀA] implicit. For
    least-squares systems that should never be squared into a Gram
    matrix at all, see {!Lsqr}. *)

type stats = {
  iterations : int;
  residual_norm : float;  (** final [‖b − M x‖₂] *)
  relative_residual : float;
      (** [residual_norm / ‖b‖₂] ([0.] when [b = 0]) — compare against
          the [tol] the solve was asked for *)
  converged : bool;
      (** whether the solve reached [tol] before hitting [max_iter] (or
          stalling on a non-SPD direction). A [false] here has already
          been counted in the [lia_solver_nonconverged_total] metric and
          logged as a warning; callers decide whether to degrade or
          refuse. *)
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  Matrix.t ->
  Vector.t ->
  Vector.t * stats
(** [solve m b] for SPD [m]. Stops when the residual 2-norm falls below
    [tol * norm b] (default [tol = 1e-10]) or after [max_iter] iterations
    (default: dimension of the system). Raises [Invalid_argument] on
    non-square or mismatched inputs. *)

val solve_matfree :
  ?tol:float ->
  ?max_iter:int ->
  dim:int ->
  mul:(Vector.t -> Vector.t) ->
  Vector.t ->
  Vector.t * stats
(** Matrix-free variant: [mul x] must compute [M x] for the implicit SPD
    matrix [M]. *)

val note_nonconvergence :
  solver:string -> iterations:int -> relative_residual:float -> unit
(** Shared non-convergence hook for the iterative solvers ({!Lsqr} uses
    it too): bumps the [lia_solver_nonconverged_total] counter and emits
    an {!Obs.Logger} warning naming the solver, so a production run that
    silently stopped short of tolerance is visible in both the metrics
    dump and the log stream. *)
