(** Conjugate gradient for symmetric positive-definite systems.

    An iterative alternative to {!Cholesky} for the normal equations
    [AᵀA v = AᵀΣ*]: O(n²) per iteration with early termination, which
    wins when the system is large and well-conditioned (the augmented
    Gram matrices of dense measurement campaigns are). Exposed both as a
    dense-matrix solve and as a matrix-free variant taking the
    matrix-vector product, so callers can keep [AᵀA] implicit. For
    least-squares systems that should never be squared into a Gram
    matrix at all, see {!Lsqr}. *)

type stats = {
  iterations : int;
  residual_norm : float;  (** final [‖b − M x‖₂] *)
  relative_residual : float;
      (** [residual_norm / ‖b‖₂] ([0.] when [b = 0]) — compare against
          the [tol] the solve was asked for *)
  converged : bool;
      (** whether the solve reached [tol] before hitting [max_iter] (or
          stalling on a non-SPD direction). A [false] here has already
          been counted in the [lia_solver_nonconverged_total] metric and
          logged as a warning; callers decide whether to degrade or
          refuse. *)
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?context:(string * Obs.Field.t) list ->
  Matrix.t ->
  Vector.t ->
  Vector.t * stats
(** [solve m b] for SPD [m]. Stops when the residual 2-norm falls below
    [tol * norm b] (default [tol = 1e-10]) or after [max_iter] iterations
    (default: dimension of the system). Raises [Invalid_argument] on
    non-square or mismatched inputs. [context] labels the solve's
    telemetry (see {!note_iteration}); it never affects the solution. *)

val solve_matfree :
  ?tol:float ->
  ?max_iter:int ->
  ?context:(string * Obs.Field.t) list ->
  dim:int ->
  mul:(Vector.t -> Vector.t) ->
  Vector.t ->
  Vector.t * stats
(** Matrix-free variant: [mul x] must compute [M x] for the implicit SPD
    matrix [M]. *)

(** {2 Shared telemetry hooks}

    The iterative solvers ({!Lsqr} included) feed three outputs, each
    behind its own enable check: the [lia_cgls_relres] /
    [lia_cgls_iter_seconds] histograms, the flight recorder
    ([solver_iter] / [solver_done] events), and the {!Obs.Convergence}
    JSONL stream. None of them reads the computation back, so estimates
    are bit-for-bit identical instrumented or not. *)

val instrumented : unit -> bool
(** Whether any of the three solver-telemetry outputs is enabled —
    solvers check once per solve and skip per-iteration clock reads and
    probe calls entirely when it is [false]. *)

val new_solve_id : unit -> int
(** Next process-wide solve id (1, 2, ...), so convergence lines from
    interleaved solves can be told apart. *)

val note_iteration :
  solver:string ->
  solve:int ->
  iteration:int ->
  relative_residual:float ->
  iter_seconds:float ->
  context:(string * Obs.Field.t) list ->
  unit
(** Record one solver iteration into histograms, recorder, and the
    convergence stream. [context] is the caller's solve labels
    (["phase"], ["precond"], ["warm"], ...). *)

val note_solve_done :
  solver:string ->
  solve:int ->
  context:(string * Obs.Field.t) list ->
  stats ->
  unit
(** Record a solve's final stats as a [solver_done] recorder event. *)

val note_nonconvergence :
  solver:string -> iterations:int -> relative_residual:float -> unit
(** Shared non-convergence hook for the iterative solvers ({!Lsqr} uses
    it too): bumps the [lia_solver_nonconverged_total] counter, emits an
    {!Obs.Logger} warning naming the solver, and triggers
    {!Obs.Recorder.auto_dump} (reason ["nonconvergence"]) so a starved
    solve leaves a flight-recorder dump behind even if the process dies
    before [at_exit]. *)
