(** Right preconditioners for matrix-free least squares ({!Lsqr.cgls}).

    CGLS on [min ‖A x − b‖] converges at a rate governed by the
    conditioning of [AᵀA]. A right preconditioner picks an invertible
    [C] approximating a factor of [AᵀA] ([CᵀC ≈ AᵀA]), solves the
    better-conditioned problem [min ‖(A C⁻¹) u − b‖], and maps back
    [x = C⁻¹ u]; the minimizer is unchanged in exact arithmetic, only
    the iteration count moves. A preconditioner here is the triple of
    products CGLS needs: [x ↦ C x] (entering the preconditioned space,
    for warm starts), [u ↦ C⁻¹ u], and [s ↦ C⁻ᵀ s].

    Two constructions matter for the augmented systems of this library:

    - {!jacobi} — [C = diag(AᵀA)^{1/2}], plain column equalization. One
      multiply per entry; helps whenever column norms are uneven (a
      backbone link sits in almost every pair row, a leaf link in few).
    - {!block_jacobi} — [C] is a block-diagonal Cholesky factor: the
      columns are partitioned (in this codebase, by AS — intra-AS groups
      plus the inter-AS border group of a doubly-bordered block-diagonal
      form), each small diagonal Gram block [G_g = (AᵀA)_{g,g}] is
      factored [G_g = L_g L_gᵀ], and [C = blockdiag(L_gᵀ)]. Within a
      group the preconditioned Gram is exactly the identity; only the
      dropped inter-group coupling is left to the iteration, which is
      what collapses the count when path-length skew piles wildly
      different column scales {e and} strong intra-AS coupling into one
      system.

    {b Determinism.} Factorization and application fan the blocks over
    {!Parallel.Pool}; every block reads and writes only its own column
    indices, so results are bit-for-bit identical for every [jobs]
    value. *)

type t

val cols : t -> int
(** Dimension [n] of the (square) preconditioner. *)

val block_count : t -> int
(** Diagonal blocks: 0 for {!identity}, 1 for {!jacobi}, the group count
    for {!block_jacobi}. *)

val identity : int -> t
(** [C = I]: {!solve}, {!solve_t} and {!mul} return their argument
    unchanged (same array, not a copy). *)

val jacobi : Vector.t -> t
(** [jacobi d] is [C = diag(max 1 dₑ)^{1/2}] for [d = diag(AᵀA)] (e.g.
    {!Core.Augmented.matfree_column_counts}). Entries below 1 — columns
    in no live row — clamp to 1 so the scale stays finite. Application
    multiplies by the precomputed reciprocal square roots, making
    [jacobi]-preconditioned {!Lsqr.cgls} run bit-for-bit the same
    floating-point operations as the historical
    {!Lsqr.scaled_columns} path. Raises [Invalid_argument] on a
    negative or non-finite entry. *)

val block_jacobi :
  ?jobs:int -> cols:int -> (int array * Matrix.t) array -> t
(** [block_jacobi ~cols blocks] factors each [(idx, g)] pair — [idx] the
    strictly increasing column indices of one group, [g] the symmetric
    positive (semi-)definite [|idx| × |idx|] diagonal Gram block — with
    {!Cholesky.factorize_regularized}, in parallel over [jobs] domains
    (default [Parallel.Pool.default_jobs ()]). Groups must be disjoint;
    columns covered by no group pass through unscaled. Raises
    [Invalid_argument] on overlapping/out-of-range indices or a block
    dimension mismatch, and [Cholesky.Not_positive_definite] if a block
    resists even heavy regularization. *)

val mul : t -> Vector.t -> Vector.t
(** [mul p x] is [C x] — a solution iterate mapped {e into} the
    preconditioned coordinates (what a warm start needs). *)

val solve : t -> Vector.t -> Vector.t
(** [solve p u] is [C⁻¹ u] — preconditioned unknowns mapped back to the
    original ones. *)

val solve_t : t -> Vector.t -> Vector.t
(** [solve_t p s] is [C⁻ᵀ s] — the adjoint solve applied to [Aᵀ y]
    products. *)
