type t = { dimension : int; mutable basis : Vector.t list }

let create ~dim =
  if dim < 0 then invalid_arg "Ortho.create: negative dimension";
  { dimension = dim; basis = [] }

let dim b = b.dimension

let size b = List.length b.basis

(* Project out the span in place; two passes of modified Gram-Schmidt keep
   the residual orthogonal to working precision even for nearly dependent
   inputs. The dot/axpy pair is fused into one unchecked loop body: this
   runs once per (basis vector, candidate column) pair of the rank
   reduction, where the bounds checks alone are measurable. *)
let orthogonalize b v =
  let w = Vector.copy v in
  let n = Array.length w in
  let pass () =
    List.iter
      (fun q ->
        let c = ref 0. in
        for i = 0 to n - 1 do
          c := !c +. (Array.unsafe_get q i *. Array.unsafe_get w i)
        done;
        let c = !c in
        if c <> 0. then
          for i = 0 to n - 1 do
            Array.unsafe_set w i
              ((-.c *. Array.unsafe_get q i) +. Array.unsafe_get w i)
          done)
      b.basis
  in
  pass ();
  pass ();
  w

let residual_norm b v =
  if Array.length v <> b.dimension then invalid_arg "Ortho: dimension mismatch";
  Vector.norm2 (orthogonalize b v)

let independent ?(tol = 1e-8) b v =
  let nv = Vector.norm2 v in
  if nv = 0. then None
  else begin
    let w = orthogonalize b v in
    let nw = Vector.norm2 w in
    if nw > tol *. nv then Some (Vector.scale (1. /. nw) w) else None
  end

let try_add ?tol b v =
  if Array.length v <> b.dimension then invalid_arg "Ortho.try_add: dimension mismatch";
  match independent ?tol b v with
  | Some q ->
      b.basis <- q :: b.basis;
      true
  | None -> false

let in_span ?tol b v =
  if Array.length v <> b.dimension then invalid_arg "Ortho.in_span: dimension mismatch";
  independent ?tol b v = None

let copy b = { b with basis = List.map Vector.copy b.basis }
