module Matrix = Linalg.Matrix

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let mu = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. mu in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let covariance xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Descriptive.covariance: length mismatch";
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0. || sy = 0. then 0. else covariance xs ys /. (sx *. sy)

(* mid-ranks: ties get the average of the ranks they span *)
let midranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let ranks = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      ranks.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  ranks

let spearman xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Descriptive.spearman: length mismatch";
  correlation (midranks xs) (midranks ys)

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.minimum: empty sample";
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.maximum: empty sample";
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let mean_vector obs =
  let m = Matrix.rows obs and p = Matrix.cols obs in
  if m = 0 then invalid_arg "Descriptive.mean_vector: no observations";
  let mu = Array.make p 0. in
  for i = 0 to m - 1 do
    for j = 0 to p - 1 do
      mu.(j) <- mu.(j) +. Matrix.get obs i j
    done
  done;
  Array.map (fun s -> s /. float_of_int m) mu

let centered_columns ?jobs obs =
  let m = Matrix.rows obs and p = Matrix.cols obs in
  let mu = mean_vector obs in
  let cols = Array.make p [||] in
  Parallel.Pool.parallel_for ?jobs ~min_block:64 ~n:p (fun j ->
      let muj = mu.(j) in
      cols.(j) <- Array.init m (fun i -> Matrix.get obs i j -. muj));
  cols

let covariance_matrix ?jobs obs =
  let m = Matrix.rows obs and p = Matrix.cols obs in
  if m < 2 then invalid_arg "Descriptive.covariance_matrix: need at least 2 rows";
  (* pairwise covariance over centered columns, never materializing the
     dense m×p centered matrix. Each Σ entry is written by exactly one
     block, so the result is bit-for-bit identical for every [jobs]. *)
  let cols = centered_columns ?jobs obs in
  let sigma = Matrix.zeros p p in
  let scale = 1. /. float_of_int (m - 1) in
  let npairs = p * (p + 1) / 2 in
  let blocks = Parallel.Chunk.block_count npairs in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:npairs bk in
      Parallel.Chunk.iter_pairs ~np:p ~lo ~hi (fun _ j k ->
          let cj = cols.(j) and ck = cols.(k) in
          let acc = ref 0. in
          for i = 0 to m - 1 do
            acc := !acc +. (cj.(i) *. ck.(i))
          done;
          let v = scale *. !acc in
          Matrix.set sigma j k v;
          if j <> k then Matrix.set sigma k j v));
  sigma
