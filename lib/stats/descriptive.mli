(** Batch descriptive statistics over float arrays and snapshot matrices. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val std : float array -> float

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length samples; 0 for fewer
    than two observations; raises [Invalid_argument] on length mismatch. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when a marginal variance vanishes. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on mid-ranks, so ties are
    handled); the natural check of the monotonicity assumption S.3. *)

val minimum : float array -> float

val maximum : float array -> float

val median : float array -> float
(** Median by sorting a copy; raises [Invalid_argument] on empty input. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], with linear interpolation between
    order statistics (type-7, the numpy default). *)

val covariance_matrix : ?jobs:int -> Linalg.Matrix.t -> Linalg.Matrix.t
(** Rows are observations (snapshots), columns are variables (paths). This
    is the [Σ̂] of eq. (7). Requires at least two rows. Computed as
    pairwise covariances of centered columns — the dense centered matrix
    is never materialized — with the pair triangle cut into blocks run on
    [jobs] domains (default [Parallel.Pool.default_jobs ()]); every entry
    is written by exactly one block, so the result is bit-for-bit
    identical for every [jobs]. *)

val mean_vector : Linalg.Matrix.t -> Linalg.Vector.t
(** Column means of an observation matrix. *)
