module Matrix = Linalg.Matrix

let to_string y =
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Printf.sprintf "netloss-measurements 1 %d %d\n" (Matrix.rows y) (Matrix.cols y));
  for l = 0 to Matrix.rows y - 1 do
    for i = 0 to Matrix.cols y - 1 do
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%.17g" (Matrix.get y l i))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* Parse failures carry the source name and 1-based line number so the
   CLI can turn a ragged file into a one-line diagnostic instead of a
   backtrace. Blank and [#]-comment lines are skipped but still counted. *)
let of_string ?(path = "<string>") ?(strict = true) s =
  let fail_line n fmt =
    Printf.ksprintf (fun msg -> failwith (Printf.sprintf "%s:%d: %s" path n msg)) fmt
  in
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith (Printf.sprintf "%s: empty measurement file" path)
  | (hline, header) :: rows -> (
      match String.split_on_char ' ' header |> List.filter (fun w -> w <> "") with
      | [ "netloss-measurements"; "1"; m; np ] ->
          let parse_int what s =
            match int_of_string_opt s with
            | Some v when v >= 0 -> v
            | _ -> fail_line hline "bad %s %S in header" what s
          in
          let m = parse_int "snapshot count" m
          and np = parse_int "path count" np in
          if List.length rows <> m then
            fail_line hline "header promises %d snapshot rows, file has %d" m
              (List.length rows);
          let parse_row (n, line) =
            let cells =
              String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
            in
            let got = List.length cells in
            if got <> np then fail_line n "expected %d columns, got %d" np got;
            Array.of_list
              (List.map
                 (fun w ->
                   match float_of_string_opt w with
                   | Some x ->
                       (* a measurement is a log success rate: finite and
                          <= 0 (success rate in (0, 1]); anything else is
                          corrupt unless the caller opted into permissive
                          loading for quarantine-aware ingest *)
                       if strict then begin
                         if Float.is_nan x then
                           fail_line n "missing measurement (NaN) %S" w
                         else if not (Float.is_finite x) then
                           fail_line n "non-finite measurement %S" w
                         else if x > 0. then
                           fail_line n
                             "measurement %S is a positive log success rate \
                              (success rate > 1)"
                             w
                       end;
                       x
                   | None -> fail_line n "bad measurement %S" w)
                 cells)
          in
          let data = Array.of_list (List.map parse_row rows) in
          Matrix.init m np (fun l i -> data.(l).(i))
      | _ ->
          fail_line hline
            "missing \"netloss-measurements 1 <snapshots> <paths>\" header")

let save path y =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "measurements" ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_string y)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load ?strict path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string ~path ?strict s
