(** Plain-text serialization of measurement campaigns.

    Format:
    {v
    netloss-measurements 1 <snapshots> <paths>
    <y_0,0> <y_0,1> ... <y_0,np-1>
    ...
    v}
    One row per snapshot of log path transmission rates (or delays, for
    the delay extension — the format is unit-agnostic). Blank lines and
    [#] comments are ignored. *)

val to_string : Linalg.Matrix.t -> string

val of_string : ?path:string -> ?strict:bool -> string -> Linalg.Matrix.t
(** Raises [Failure] on malformed input with a one-line
    ["<path>:<line>: ..."] diagnostic (bad header, ragged row with the
    expected width, unparsable number, row-count mismatch). [path] names
    the source in the message; default ["<string>"]. Line numbers refer
    to the original text, counting skipped blank/comment lines.

    With [strict] (the default) each value must also be a valid log
    success rate — finite and [<= 0] — so NaN, [inf], and positive
    entries (success rate above 1) are rejected with the same
    [file:line] diagnostics. Pass [~strict:false] for quarantine-aware
    ingest paths that repair such cells downstream ({!Core.Quarantine});
    permissive loading still rejects structurally malformed files. *)

val save : string -> Linalg.Matrix.t -> unit

val load : ?strict:bool -> string -> Linalg.Matrix.t
(** {!of_string} on the file's contents, with [~path] set to the file
    name. *)
