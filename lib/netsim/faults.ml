module Matrix = Linalg.Matrix
module Rng = Nstats.Rng

type t = {
  seed : int;
  drop : float;
  miss : float;
  nan_ : float;
  oor : float;
  neg : float;
  dup : float;
  churn : (int * float) option;  (* hosts, window fraction *)
  route_shift : float option;  (* window fraction *)
}

let none =
  {
    seed = 0;
    drop = 0.;
    miss = 0.;
    nan_ = 0.;
    oor = 0.;
    neg = 0.;
    dup = 0.;
    churn = None;
    route_shift = None;
  }

let is_none t = { t with seed = 0 } = none

(* --- DSL ---------------------------------------------------------------- *)

let parse s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob key v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | _ -> err "%s=%s: expected a probability in [0,1]" key v
  in
  let clauses =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  List.fold_left
    (fun acc clause ->
      let* t = acc in
      match String.index_opt clause '=' with
      | None ->
          if clause = "none" then Ok t
          else err "unknown fault clause %S" clause
      | Some i -> (
          let key = String.sub clause 0 i
          and v = String.sub clause (i + 1) (String.length clause - i - 1) in
          match key with
          | "seed" -> (
              match int_of_string_opt v with
              | Some seed -> Ok { t with seed }
              | None -> err "seed=%s: expected an integer" v)
          | "drop" ->
              let* p = prob key v in
              Ok { t with drop = p }
          | "miss" ->
              let* p = prob key v in
              Ok { t with miss = p }
          | "nan" ->
              let* p = prob key v in
              Ok { t with nan_ = p }
          | "oor" ->
              let* p = prob key v in
              Ok { t with oor = p }
          | "neg" ->
              let* p = prob key v in
              Ok { t with neg = p }
          | "dup" ->
              let* p = prob key v in
              Ok { t with dup = p }
          | "churn" -> (
              match String.split_on_char '@' v with
              | [ k; f ] -> (
                  match (int_of_string_opt k, float_of_string_opt f) with
                  | Some k, Some f when k > 0 && f >= 0. && f <= 1. ->
                      Ok { t with churn = Some (k, f) }
                  | _ -> err "churn=%s: expected K@F with K > 0, F in [0,1]" v)
              | _ -> err "churn=%s: expected K@F" v)
          | "route_shift" -> (
              match float_of_string_opt v with
              | Some f when f >= 0. && f <= 1. ->
                  Ok { t with route_shift = Some f }
              | _ -> err "route_shift=%s: expected a fraction in [0,1]" v)
          | _ -> err "unknown fault key %S" key))
    (Ok none) clauses

let to_string t =
  let b = Buffer.create 64 in
  let clause fmt = Printf.ksprintf (fun c ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b c) fmt
  in
  if t.seed <> 0 then clause "seed=%d" t.seed;
  if t.drop > 0. then clause "drop=%g" t.drop;
  if t.miss > 0. then clause "miss=%g" t.miss;
  if t.nan_ > 0. then clause "nan=%g" t.nan_;
  if t.oor > 0. then clause "oor=%g" t.oor;
  if t.neg > 0. then clause "neg=%g" t.neg;
  if t.dup > 0. then clause "dup=%g" t.dup;
  Option.iter (fun (k, f) -> clause "churn=%d@%g" k f) t.churn;
  Option.iter (fun f -> clause "route_shift=%g" f) t.route_shift;
  if Buffer.length b = 0 then "none" else Buffer.contents b

(* --- injection ---------------------------------------------------------- *)

type event =
  | Route_shift of { at : int; a : int; b : int }
  | Churn of { at : int; host : int }
  | Cell of { snapshot : int; path : int; what : string }
  | Duplicated of int
  | Dropped of int

type schedule = event list

let apply t y =
  if is_none t then (Matrix.copy y, [])
  else begin
    let m = Matrix.rows y and np = Matrix.cols y in
    let rng = Rng.create t.seed in
    let out = Matrix.copy y in
    let events = ref [] in
    let record e = events := e :: !events in
    (* 1. route shift: swap two columns from a snapshot onward *)
    Option.iter
      (fun f ->
        if np >= 2 then begin
          let at = min (m - 1) (int_of_float (f *. float_of_int m)) in
          let a = Rng.int rng np in
          let b = (a + 1 + Rng.int rng (np - 1)) mod np in
          let a, b = (min a b, max a b) in
          for l = max 0 at to m - 1 do
            let va = Matrix.get out l a in
            Matrix.set out l a (Matrix.get out l b);
            Matrix.set out l b va
          done;
          record (Route_shift { at; a; b })
        end)
      t.route_shift;
    (* 2. host churn: chosen columns stop reporting from a snapshot onward *)
    Option.iter
      (fun (k, f) ->
        let k = min k np in
        let at = min (m - 1) (int_of_float (f *. float_of_int m)) in
        let hosts = Rng.sample_without_replacement rng k np in
        Array.sort compare hosts;
        Array.iter
          (fun host ->
            for l = max 0 at to m - 1 do
              Matrix.set out l host Float.nan
            done;
            record (Churn { at; host }))
          hosts)
      t.churn;
    (* 3. cell faults, row-major, one draw per active kind per cell *)
    let cell_kinds =
      List.filter
        (fun (_, p, _) -> p > 0.)
        [
          ("miss", t.miss, fun () -> Float.nan);
          ("nan", t.nan_, fun () -> Float.nan);
          ("oor", t.oor, fun () -> Rng.uniform rng 1e-6 0.5);
          ("neg", t.neg, fun () -> Float.neg_infinity);
        ]
    in
    if cell_kinds <> [] then
      for l = 0 to m - 1 do
        for i = 0 to np - 1 do
          List.iter
            (fun (what, p, v) ->
              if Rng.bool rng p then begin
                Matrix.set out l i (v ());
                record (Cell { snapshot = l; path = i; what })
              end)
            cell_kinds
        done
      done;
    (* 4. per-row duplication and dropping *)
    if t.dup > 0. || t.drop > 0. then begin
      let keep_rows = ref [] in
      for l = 0 to m - 1 do
        let dropped = t.drop > 0. && Rng.bool rng t.drop in
        let duplicated = t.dup > 0. && Rng.bool rng t.dup in
        if dropped then record (Dropped l)
        else begin
          keep_rows := l :: !keep_rows;
          if duplicated then begin
            keep_rows := l :: !keep_rows;
            record (Duplicated l)
          end
        end
      done;
      let rows = Array.of_list (List.rev !keep_rows) in
      let out' =
        Matrix.init (Array.length rows) np (fun l i -> Matrix.get out rows.(l) i)
      in
      (out', List.rev !events)
    end
    else (out, List.rev !events)
  end

let summary schedule =
  if schedule = [] then "no faults injected"
  else begin
    let dropped = ref 0
    and duplicated = ref 0
    and churned = ref 0
    and shifts = ref 0 in
    let cells = Hashtbl.create 4 in
    let cells_total = ref 0 in
    List.iter
      (function
        | Dropped _ -> incr dropped
        | Duplicated _ -> incr duplicated
        | Churn _ -> incr churned
        | Route_shift _ -> incr shifts
        | Cell { what; _ } ->
            incr cells_total;
            Hashtbl.replace cells what
              (1 + Option.value ~default:0 (Hashtbl.find_opt cells what)))
      schedule;
    let parts = ref [] in
    let part fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
    if !shifts > 0 then part "route shifts %d" !shifts;
    if !churned > 0 then part "churned hosts %d" !churned;
    if !cells_total > 0 then begin
      let kinds =
        List.filter_map
          (fun what ->
            Option.map
              (Printf.sprintf "%s %d" what)
              (Hashtbl.find_opt cells what))
          [ "miss"; "nan"; "oor"; "neg" ]
      in
      part "cells %d (%s)" !cells_total (String.concat ", " kinds)
    end;
    if !duplicated > 0 then part "duplicated %d" !duplicated;
    if !dropped > 0 then part "dropped %d" !dropped;
    String.concat ", " (List.rev !parts)
  end
