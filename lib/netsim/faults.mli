(** Seeded, deterministic fault injection for the measurement pipeline.

    LIA's identifiability argument (Theorem 1) assumes time-invariant
    routing (T.1), no route fluttering (T.2), and clean, complete
    snapshot files. Production ingest breaks all three: probes get
    dropped, snapshot rows arrive ragged or NaN-laden, hosts churn
    mid-window, and routes silently shift under the estimator. This
    module perturbs a measurement matrix the way a misbehaving
    deployment would, under a seeded spec, so the graceful-degradation
    machinery ({!Core.Quarantine}, the pairwise-complete variance
    estimator, [Core.Lia.infer_checked]) can be chaos-tested
    deterministically.

    {b Determinism contract.} The injected fault schedule is a pure
    function of the spec (including its seed) and the matrix
    dimensions — never of wall-clock, of [jobs], or of the matrix
    values. [apply] with {!none} returns a bit-for-bit copy of its
    input and draws nothing from the PRNG. Applying the same spec to
    the same matrix twice yields bit-identical outputs and identical
    schedules.

    {b Spec DSL} (the CLI's [--fault-spec] argument): comma- or
    semicolon-separated [key=value] clauses.

    - [seed=N] — PRNG seed for the fault stream (default 0);
    - [drop=P] — each snapshot row is dropped with probability [P];
    - [miss=P] — per-host probe loss: each cell goes missing (NaN)
      with probability [P];
    - [nan=P] / [oor=P] / [neg=P] — measurement corruption: each cell
      is overwritten with NaN, an out-of-range positive log rate
      (success rate > 1), or [-infinity] (success rate 0) with
      probability [P];
    - [dup=P] — each snapshot row is emitted twice with probability [P];
    - [churn=K\@F] — host churn: [K] paths stop reporting (NaN) from
      snapshot [floor(F*m)] onward;
    - [route_shift=F] — a T.1/T.2 violation: two deterministic paths
      swap measurement columns from snapshot [floor(F*m)] onward;
    - [none] — the explicit empty spec.

    Faults are applied in a fixed order: route shift, churn, cell
    faults (miss, nan, oor, neg — one PRNG draw each per cell), then
    per-row duplication and dropping. *)

type t
(** A parsed fault spec. *)

val none : t
(** The empty spec: no faults, no PRNG draws. *)

val is_none : t -> bool

val parse : string -> (t, string) result
(** Parse the DSL above. Probabilities must lie in [[0,1]], fractions
    in [[0,1]], churn counts must be positive. Unknown keys and
    malformed clauses are reported in the error string. *)

val to_string : t -> string
(** Canonical round-trippable rendering ([parse (to_string t)] accepts). *)

(** One injected fault, in matrix coordinates {e before} row
    duplication/dropping renumbers snapshots. *)
type event =
  | Route_shift of { at : int; a : int; b : int }
      (** columns [a] and [b] swap from snapshot [at] onward *)
  | Churn of { at : int; host : int }
      (** column [host] reports NaN from snapshot [at] onward *)
  | Cell of { snapshot : int; path : int; what : string }
      (** cell fault; [what] is ["miss"], ["nan"], ["oor"] or ["neg"] *)
  | Duplicated of int  (** snapshot emitted twice *)
  | Dropped of int  (** snapshot removed *)

type schedule = event list
(** Events in application order. *)

val apply : t -> Linalg.Matrix.t -> Linalg.Matrix.t * schedule
(** [apply spec y] is the perturbed copy of [y] plus the schedule of
    injected faults. The output may have fewer or more rows than [y]
    (drops and duplicates); missing measurements are represented as
    NaN. [y] itself is never mutated. *)

val summary : schedule -> string
(** One-line deterministic rendering, e.g.
    ["route shifts 1, churned hosts 2, cells 13 (miss 9, nan 4), duplicated 1, dropped 2"];
    ["no faults injected"] when empty. *)
