(** Fourier-domain variance estimation on tree topologies (Chen, Cao &
    Bu, "Network Tomography: Identifiability and Fourier Domain
    Estimation").

    Like LIA, this is a {e second-order} estimator: it learns per-link
    variances of the log path transmission rates and hands them to the
    shared Phase-2 rank-reduction solve. Unlike LIA it never forms the
    augmented covariance system. Instead it works in the Fourier domain
    of the measurements: for two paths [Y₁ = S + D₁], [Y₂ = S + D₂]
    sharing the root segment [S] of a tree (with [S], [D₁], [D₂]
    independent by the spatial-independence assumption), the empirical
    characteristic functions satisfy

    [φ₁(t) · conj(φ₂(t)) / E e^{it(Y₁-Y₂)} = |φ_S(t)|²]

    — the shared-branch denominator cancels exactly, leaving the modulus
    of the segment's characteristic function, and
    [-log |φ_S(t)|² / t² → σ_S²] as [t → 0]. Evaluating at a few small
    [t] (scaled by the sample spread) gives the variance of every
    root-to-branch-point segment; per-link variances follow by
    differencing along the tree.

    The estimator is defined only on single-beacon tree topologies
    (where every internal node of the reduced virtual-link tree either
    branches or terminates a path — guaranteed by routing reduction).
    Missing measurements (NaN cells) are tolerated pairwise-complete;
    segments whose sample support collapses are counted as [unresolved]
    and inherit their parent's segment variance (link variance 0). *)

val subtree_paths : Netsim.Multicast.tree -> int array array
(** Per virtual link: the paths (rows) whose destination lies in its
    subtree, ascending. Every entry is non-empty on a covered tree. *)

val variances :
  ?t_scale:float ->
  ?grid:int ->
  tree:Netsim.Multicast.tree ->
  y_learn:Linalg.Matrix.t ->
  unit ->
  Linalg.Vector.t * int
(** [(v, unresolved)]: the per-link variance estimates (clamped at 0)
    and the number of tree nodes whose segment variance could not be
    estimated (fewer than 2 usable samples, or a degenerate empirical
    characteristic function) and fell back to the parent's. The
    characteristic functions are evaluated at [grid] (default 4) points
    [t_j] with [t_j · sd] spanning up to [t_scale] (default 1.0), [sd]
    the pooled sample spread of the two representative paths. Raises
    [Invalid_argument] when [y_learn] has fewer than 2 rows, [grid < 1],
    or [t_scale <= 0]. Deterministic: a pure function of the inputs. *)

type result = {
  result : Plan.result;
      (** the Phase-2 solve over the Fourier-learnt variances — same
          record as {!Lia.infer} *)
  unresolved : int;  (** nodes that fell back to the parent segment *)
}

val infer :
  ?t_scale:float ->
  ?grid:int ->
  routing:Topology.Routing.reduced ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  unit ->
  result
(** End-to-end: derive the virtual-link tree ([Invalid_argument] when
    the routing is not a single-beacon tree — same contract as
    {!Netsim.Multicast.tree_of_routing}), estimate variances in the
    Fourier domain, and solve Phase 2 through {!Plan}. Non-finite
    entries of [y_now] are excluded and the solve restricted to the
    valid paths (the quarantine-aware convention of
    {!Lia.infer_checked}); raises [Invalid_argument] when none
    remain. *)
