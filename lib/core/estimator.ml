module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

type capabilities = {
  tree_only : bool;
  needs_snapshots : bool;
  needs_variances : bool;
  boolean_verdicts : bool;
}

type golden_bound =
  | Abs_err of float
  | Detection of { min_dr : float; max_fpr : float }

type output = {
  loss_rates : float array option;
  verdicts : bool array option;
  health : string;
  note : string;
}

type t = {
  name : string;
  descr : string;
  caps : capabilities;
  golden : golden_bound;
  estimate : threshold:float -> Measurement.t -> (output, string) result;
}

let no_caps =
  {
    tree_only = false;
    needs_snapshots = false;
    needs_variances = false;
    boolean_verdicts = false;
  }

(* ---- shared plumbing ------------------------------------------------- *)

let tree_of (input : Measurement.t) =
  match input.Measurement.routing with
  | None -> Error "skipped(no routing topology attached)"
  | Some routing -> (
      try Ok (routing, Netsim.Multicast.tree_of_routing routing)
      with Invalid_argument _ -> Error "skipped(not a single-beacon tree)")

let check e (input : Measurement.t) =
  let tree =
    if not e.caps.tree_only then Ok ()
    else match tree_of input with Error r -> Error r | Ok _ -> Ok ()
  in
  match tree with
  | Error _ as err -> err
  | Ok () ->
      if e.caps.needs_snapshots && Matrix.rows input.Measurement.y_learn < 2
      then Error "skipped(needs a learning window of >= 2 snapshots)"
      else if e.caps.needs_variances && input.Measurement.variances = None then
        Error "skipped(needs caller-supplied link variances)"
      else Ok ()

let verdicts_of_rates ~threshold rates = Array.map (fun l -> l > threshold) rates

(* data faults become a typed refusal, never an exception escape *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Ok { loss_rates = None; verdicts = None; health = "refused"; note = msg }

let rate_output ?(health = "clean") ?(note = "") ~threshold rates =
  let rates = Array.map (fun l -> if Float.is_finite l then l else 0.) rates in
  Ok
    {
      loss_rates = Some rates;
      verdicts = Some (verdicts_of_rates ~threshold rates);
      health;
      note;
    }

(* excluded-target accounting shared by the adapters that restrict to the
   finitely measured paths *)
let target_health (input : Measurement.t) valid =
  let missing = Array.length input.Measurement.y_now - Array.length valid in
  if missing = 0 then ("clean", "")
  else ("degraded", Printf.sprintf "target: %d invalid paths excluded" missing)

(* ---- MINC (multicast gold standard, unicast-approximated gammas) ----- *)

(* Subtree reception fractions reconstructed from unicast snapshots under
   cross-path independence: gamma_v = 1 - prod_{p in subtree(v)} (1 - phi_p)
   with phi_p = exp y. Exact gammas need joint multicast receptions, which
   unicast measurements cannot carry; the approximation keeps MINC on the
   identical faulted data path as every other backend. A non-finite
   measurement is an absent receiver, not a total loss: each node's gamma
   averages only over the snapshots in which its subtree was observed at
   all (nodes never observed keep gamma 0 and degrade to transmission 0,
   MINC's own degenerate-node convention). *)
let unicast_gammas tree y =
  let sub = Fourier.subtree_paths tree in
  let m = Matrix.rows y in
  Array.map
    (fun paths ->
      let sum = ref 0. and seen = ref 0 in
      for l = 0 to m - 1 do
        let miss = ref 1. and observed = ref false in
        Array.iter
          (fun p ->
            let v = Matrix.get y l p in
            if Float.is_finite v then begin
              observed := true;
              let phi = Float.max 0. (Float.min 1. (exp v)) in
              miss := !miss *. (1. -. phi)
            end)
          paths;
        if !observed then begin
          incr seen;
          sum := !sum +. (1. -. !miss)
        end
      done;
      if !seen = 0 then 0. else !sum /. float_of_int !seen)
    sub

let minc =
  let caps = { no_caps with tree_only = true; needs_snapshots = true } in
  let estimate ~threshold (input : Measurement.t) =
    match tree_of input with
    | Error r -> Error r
    | Ok (_, tree) ->
        if Matrix.rows input.Measurement.y_learn < 2 then
          Error "skipped(needs a learning window of >= 2 snapshots)"
        else
          guard (fun () ->
              let gamma = unicast_gammas tree input.Measurement.y_learn in
              let r = Minc.infer tree ~gamma in
              let rates = Array.map (fun t -> 1. -. t) r.Minc.transmission in
              rate_output ~threshold
                ~note:"gammas approximated from unicast snapshots" rates)
  in
  {
    name = "minc";
    descr = "MINC multicast tree estimator (Caceres et al. 1999)";
    caps;
    golden = Abs_err 0.05;
    estimate;
  }

(* ---- unicast maximum likelihood (coordinate ascent) ------------------ *)

let em =
  let estimate ~threshold (input : Measurement.t) =
    guard (fun () ->
        let valid = Measurement.valid_target input in
        if Array.length valid = 0 then
          Ok
            {
              loss_rates = None;
              verdicts = None;
              health = "refused";
              note = "no finite target measurements";
            }
        else
          let res =
            if Array.length valid = Array.length input.Measurement.y_now then
              Em_tomography.estimate_input input
            else
              let r_sub = Sparse.select_rows input.Measurement.r valid in
              let all = Measurement.delivered input in
              let delivered = Array.map (fun i -> all.(i)) valid in
              Em_tomography.estimate r_sub ~delivered
                ~probes:input.Measurement.probes
          in
          let health, note = target_health input valid in
          let note =
            let sweeps = Printf.sprintf "%d sweeps" res.Em_tomography.sweeps in
            if note = "" then sweeps else note ^ "; " ^ sweeps
          in
          let rates =
            Array.map (fun t -> 1. -. t) res.Em_tomography.transmission
          in
          rate_output ~health ~note ~threshold rates)
  in
  {
    name = "em";
    descr = "unicast max-likelihood coordinate ascent (refs [12, 29])";
    caps = no_caps;
    golden = Abs_err 0.1;
    estimate;
  }

(* ---- MILS ------------------------------------------------------------ *)

let mils =
  let estimate ~threshold (input : Measurement.t) =
    guard (fun () ->
        let est = Mils.estimate input in
        let valid = Measurement.valid_target input in
        let health, note = target_health input valid in
        let note =
          let g =
            Printf.sprintf "granularity %.2f" est.Mils.mean_segment_length
          in
          if note = "" then g else note ^ "; " ^ g
        in
        rate_output ~health ~note ~threshold est.Mils.loss_rates)
  in
  {
    name = "mils";
    descr = "minimal identifiable link sequences (Zhao et al. 2006, [36])";
    caps = no_caps;
    golden = Abs_err 0.1;
    estimate;
  }

(* ---- SCFS / CLINK (boolean diagnosis) -------------------------------- *)

let restrict_target (input : Measurement.t) =
  let valid = Measurement.valid_target input in
  if Array.length valid = 0 then None
  else if Array.length valid = Array.length input.Measurement.y_now then
    Some (input.Measurement.r, input.Measurement.y_now, valid)
  else
    Some
      ( Sparse.select_rows input.Measurement.r valid,
        Array.map (fun i -> input.Measurement.y_now.(i)) valid,
        valid )

let scfs =
  let caps = { no_caps with boolean_verdicts = true } in
  let estimate ~threshold (input : Measurement.t) =
    guard (fun () ->
        match restrict_target input with
        | None ->
            Ok
              {
                loss_rates = None;
                verdicts = None;
                health = "refused";
                note = "no finite target measurements";
              }
        | Some (r, y_now, valid) ->
            let bad = Scfs.classify_paths r ~y_now ~threshold in
            let verdicts = Scfs.infer r ~bad_paths:bad in
            let health, note = target_health input valid in
            Ok { loss_rates = None; verdicts = Some verdicts; health; note })
  in
  {
    name = "scfs";
    descr = "smallest consistent failure set diagnosis (Duffield 2006)";
    caps;
    golden = Detection { min_dr = 0.3; max_fpr = 0.5 };
    estimate;
  }

let clink =
  let caps = { no_caps with needs_snapshots = true; boolean_verdicts = true } in
  let estimate ~threshold (input : Measurement.t) =
    if Matrix.rows input.Measurement.y_learn < 2 then
      Error "skipped(needs a learning window of >= 2 snapshots)"
    else
      guard (fun () ->
          match restrict_target input with
          | None ->
              Ok
                {
                  loss_rates = None;
                  verdicts = None;
                  health = "refused";
                  note = "no finite target measurements";
                }
          | Some (r, y_now, valid) ->
              let gf =
                Clink.good_fractions input.Measurement.y_learn
                  ~r:input.Measurement.r ~threshold
              in
              let model = Clink.learn ~r:input.Measurement.r ~good_fraction:gf in
              let bad = Scfs.classify_paths r ~y_now ~threshold in
              let verdicts = Clink.infer model r ~bad_paths:bad in
              let health, note = target_health input valid in
              Ok { loss_rates = None; verdicts = Some verdicts; health; note })
  in
  {
    name = "clink";
    descr = "prior-weighted failure-set diagnosis (Nguyen & Thiran 2007)";
    caps;
    golden = Detection { min_dr = 0.3; max_fpr = 0.5 };
    estimate;
  }

(* ---- Fourier-domain segment variances (Chen, Cao & Bu) --------------- *)

let fourier =
  let caps = { no_caps with tree_only = true; needs_snapshots = true } in
  let estimate ~threshold (input : Measurement.t) =
    match tree_of input with
    | Error r -> Error r
    | Ok (routing, _) ->
        if Matrix.rows input.Measurement.y_learn < 2 then
          Error "skipped(needs a learning window of >= 2 snapshots)"
        else
          guard (fun () ->
              let res =
                Fourier.infer ~routing ~y_learn:input.Measurement.y_learn
                  ~y_now:input.Measurement.y_now ()
              in
              let health, note =
                if res.Fourier.unresolved = 0 then ("clean", "")
                else
                  ( "degraded",
                    Printf.sprintf "%d unresolved segment variances"
                      res.Fourier.unresolved )
              in
              rate_output ~health ~note ~threshold
                res.Fourier.result.Plan.loss_rates)
  in
  {
    name = "fourier";
    descr = "ECF segment-variance estimation on trees (Chen, Cao & Bu)";
    caps;
    golden = Abs_err 0.08;
    estimate;
  }

(* ---- Phase-2-only serving plan (caller-supplied variances) ----------- *)

let plan =
  let caps = { no_caps with needs_variances = true } in
  let estimate ~threshold (input : Measurement.t) =
    match input.Measurement.variances with
    | None -> Error "skipped(needs caller-supplied link variances)"
    | Some variances ->
        guard (fun () ->
            match restrict_target input with
            | None ->
                Ok
                  {
                    loss_rates = None;
                    verdicts = None;
                    health = "refused";
                    note = "no finite target measurements";
                  }
            | Some (r, y_now, valid) ->
                let res = Lia.infer_with_variances ~r ~variances ~y_now in
                let health, note = target_health input valid in
                rate_output ~health ~note ~threshold res.Lia.loss_rates)
  in
  {
    name = "plan";
    descr = "LIA Phase 2 on caller-supplied variances (factor-once serving)";
    caps;
    golden = Abs_err 0.05;
    estimate;
  }

(* ---- LIA ------------------------------------------------------------- *)

let lia_adapter ~name ~descr ~solver ~golden =
  let caps = { no_caps with needs_snapshots = true } in
  let estimate ~threshold (input : Measurement.t) =
    if Matrix.rows input.Measurement.y_learn < 2 then
      Error "skipped(needs a learning window of >= 2 snapshots)"
    else
      guard (fun () ->
          let checked =
            Lia.infer_checked ~solver ~r:input.Measurement.r
              ~y_learn:input.Measurement.y_learn
              ~y_now:input.Measurement.y_now ()
          in
          let health = Lia.health_label checked.Lia.health in
          let note =
            match checked.Lia.health with
            | Lia.Clean -> ""
            | h -> Lia.health_summary h
          in
          match checked.Lia.result with
          | None -> Ok { loss_rates = None; verdicts = None; health; note }
          | Some res -> rate_output ~health ~note ~threshold res.Lia.loss_rates)
  in
  { name; descr; caps; golden; estimate }

let lia_dense =
  lia_adapter ~name:"lia-dense"
    ~descr:"LIA two-phase inference, dense QR solvers (the paper, Sec. 5.3)"
    ~solver:Lia.Dense ~golden:(Abs_err 0.02)

let lia_cgls =
  lia_adapter ~name:"lia-cgls"
    ~descr:"LIA two-phase inference, matrix-free preconditioned CGLS"
    ~solver:Lia.default_cgls ~golden:(Abs_err 0.02)

(* ---- registry -------------------------------------------------------- *)

let all = [ minc; em; mils; scfs; clink; fourier; plan; lia_dense; lia_cgls ]
let names = List.map (fun e -> e.name) all
let find name = List.find_opt (fun e -> e.name = name) all
