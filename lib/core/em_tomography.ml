module Sparse = Linalg.Sparse

type result = { transmission : float array; log_likelihood : float; sweeps : int }

let log_likelihood r ~delivered ~probes t =
  let np = Sparse.rows r in
  if Array.length delivered <> np then
    invalid_arg "Em_tomography.log_likelihood: delivery length mismatch";
  if Array.length t <> Sparse.cols r then
    invalid_arg "Em_tomography.log_likelihood: rate length mismatch";
  let acc = ref 0. in
  for i = 0 to np - 1 do
    let p =
      Array.fold_left (fun acc j -> acc *. t.(j)) 1. (Sparse.row r i)
    in
    let p = Float.max 1e-12 (Float.min (1. -. 1e-12) p) in
    let k = float_of_int delivered.(i) and s = float_of_int probes in
    acc := !acc +. (k *. log p) +. ((s -. k) *. log (1. -. p))
  done;
  !acc

(* the whole coordinate-ascent pipeline; [estimate] and the
   record-shaped [estimate_input] are both thin wrappers over this *)
let estimate_core ~max_sweeps ~tol ~init r ~delivered ~probes =
  let np = Sparse.rows r and nc = Sparse.cols r in
  if Array.length delivered <> np then
    invalid_arg "Em_tomography.estimate: delivery length mismatch";
  if probes <= 0 then invalid_arg "Em_tomography.estimate: probes <= 0";
  Array.iter
    (fun k ->
      if k < 0 || k > probes then
        invalid_arg "Em_tomography.estimate: delivery count out of range")
    delivered;
  if init <= 0. || init >= 1. then invalid_arg "Em_tomography.estimate: bad init";
  let t = Array.make nc init in
  let cols = Sparse.transpose r in
  (* per-path product of current rates, maintained incrementally *)
  let prod = Array.make np 1. in
  for i = 0 to np - 1 do
    Array.iter (fun j -> prod.(i) <- prod.(i) *. t.(j)) (Sparse.row r i)
  done;
  let s = float_of_int probes in
  (* derivative of the likelihood in t_j at value x, given leave-one-out
     coefficients c_i for the paths through j *)
  let derivative paths_through c x =
    let acc = ref 0. in
    Array.iteri
      (fun idx i ->
        let k = float_of_int delivered.(i) in
        let ci = c.(idx) in
        let denom = Float.max 1e-12 (1. -. (x *. ci)) in
        acc := !acc +. (k /. x) -. ((s -. k) *. ci /. denom))
      paths_through;
    !acc
  in
  let sweeps = ref 0 in
  let ll = ref (log_likelihood r ~delivered ~probes t) in
  let continue_ = ref true in
  while !continue_ && !sweeps < max_sweeps do
    incr sweeps;
    for j = 0 to nc - 1 do
      let paths_through = Sparse.row cols j in
      if Array.length paths_through > 0 then begin
        let c =
          Array.map (fun i -> prod.(i) /. Float.max 1e-12 t.(j)) paths_through
        in
        let cmax = Array.fold_left Float.max 0. c in
        let hi = Float.min (1. -. 1e-9) (if cmax > 0. then 1. /. cmax -. 1e-9 else 1.) in
        let lo = 1e-6 in
        let x =
          if derivative paths_through c hi >= 0. then hi
          else if derivative paths_through c lo <= 0. then lo
          else begin
            (* bisection on the concave derivative *)
            let a = ref lo and b = ref hi in
            for _ = 1 to 50 do
              let mid = 0.5 *. (!a +. !b) in
              if derivative paths_through c mid > 0. then a := mid else b := mid
            done;
            0.5 *. (!a +. !b)
          end
        in
        (* update the cached products *)
        Array.iteri
          (fun idx i -> prod.(i) <- c.(idx) *. x)
          paths_through;
        t.(j) <- x
      end
    done;
    let ll' = log_likelihood r ~delivered ~probes t in
    if ll' -. !ll < tol *. (1. +. Float.abs !ll) then continue_ := false;
    ll := ll'
  done;
  { transmission = t; log_likelihood = !ll; sweeps = !sweeps }

let estimate ?(max_sweeps = 200) ?(tol = 1e-7) ?(init = 0.99) r ~delivered ~probes =
  estimate_core ~max_sweeps ~tol ~init r ~delivered ~probes

let estimate_input ?(max_sweeps = 200) ?(tol = 1e-7) ?(init = 0.99)
    (input : Measurement.t) =
  estimate_core ~max_sweeps ~tol ~init input.Measurement.r
    ~delivered:(Measurement.delivered input) ~probes:input.Measurement.probes

