module Sparse = Linalg.Sparse

let row_count ~np = np * (np + 1) / 2

let row_index ~np ~i ~j =
  if i < 0 || j < i || j >= np then invalid_arg "Augmented.row_index: bad pair";
  (* rows for pairs with i = 0 first: i full blocks of decreasing size *)
  (i * np) - (i * (i - 1) / 2) + (j - i)

let row_pair ~np k =
  if k < 0 || k >= row_count ~np then invalid_arg "Augmented.row_pair: bad row";
  let rec find i k =
    let block = np - i in
    if k < block then (i, i + k) else find (i + 1) (k - block)
  in
  find 0 k

let m_build =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per augmented-matrix assembly (Definition 1)"
    "lia_augmented_build_seconds"

let build ?jobs r =
  let np = Sparse.rows r in
  let nc = Sparse.cols r in
  let total = row_count ~np in
  Obs.Probe.kernel ~hist:m_build
    ~args:[ ("np", Obs.Field.Int np); ("rows", Obs.Field.Int total) ]
    "augmented.build"
  @@ fun () ->
  let rows = Array.make total [||] in
  (* each augmented row is written by exactly one block, so the result is
     independent of the jobs value *)
  let blocks = Parallel.Chunk.block_count total in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:total bk in
      Parallel.Chunk.iter_pairs ~np ~lo ~hi (fun k i j ->
          rows.(k) <-
            (if i = j then Sparse.row r i
             else Sparse.row_product (Sparse.row r i) (Sparse.row r j))));
  Sparse.create ~cols:nc rows

let update_rows r ~rows:changed a =
  let np = Sparse.rows r in
  if Sparse.rows a <> row_count ~np || Sparse.cols a <> Sparse.cols r then
    invalid_arg "Augmented.update_rows: dimension mismatch";
  let is_changed = Array.make np false in
  List.iter
    (fun i ->
      if i < 0 || i >= np then invalid_arg "Augmented.update_rows: bad row";
      is_changed.(i) <- true)
    changed;
  let out = Array.init (Sparse.rows a) (fun k -> Sparse.row a k) in
  for i = 0 to np - 1 do
    let ri = Sparse.row r i in
    for j = i to np - 1 do
      if is_changed.(i) || is_changed.(j) then begin
        let row =
          if i = j then ri else Sparse.row_product ri (Sparse.row r j)
        in
        out.(row_index ~np ~i ~j) <- row
      end
    done
  done;
  Sparse.create ~cols:(Sparse.cols r) out
