module Sparse = Linalg.Sparse

let row_count ~np = np * (np + 1) / 2

let row_index ~np ~i ~j =
  if i < 0 || j < i || j >= np then invalid_arg "Augmented.row_index: bad pair";
  (* rows for pairs with i = 0 first: i full blocks of decreasing size *)
  (i * np) - (i * (i - 1) / 2) + (j - i)

let row_pair ~np k =
  if k < 0 || k >= row_count ~np then invalid_arg "Augmented.row_pair: bad row";
  let rec find i k =
    let block = np - i in
    if k < block then (i, i + k) else find (i + 1) (k - block)
  in
  find 0 k

let m_build =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per augmented-matrix assembly (Definition 1)"
    "lia_augmented_build_seconds"

let build ?jobs r =
  let np = Sparse.rows r in
  let nc = Sparse.cols r in
  let total = row_count ~np in
  Obs.Probe.kernel ~hist:m_build
    ~args:[ ("np", Obs.Field.Int np); ("rows", Obs.Field.Int total) ]
    "augmented.build"
  @@ fun () ->
  let rows = Array.make total [||] in
  (* each augmented row is written by exactly one block, so the result is
     independent of the jobs value *)
  let blocks = Parallel.Chunk.block_count total in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:total bk in
      Parallel.Chunk.iter_pairs ~np ~lo ~hi (fun k i j ->
          rows.(k) <-
            (if i = j then Sparse.row r i
             else Sparse.row_product (Sparse.row r i) (Sparse.row r j))));
  Sparse.create ~cols:nc rows

(* --- matrix-free operator ----------------------------------------------- *)

(* Band width of the 2-D pair tiles: a band of CSR rows is a few KB, so a
   tile's j-band stays hot in cache while i walks its own band instead of
   re-streaming the whole matrix once per i as the flat pair order does. *)
let tile_rows = 256

let matfree ?jobs ?mask r =
  let np = Sparse.rows r in
  let nc = Sparse.cols r in
  let nrows = row_count ~np in
  (match mask with
  | Some m when Bytes.length m <> nrows ->
      invalid_arg "Augmented.matfree: mask length mismatch"
  | _ -> ());
  let csr = Sparse.to_csr r in
  let ptr = csr.Sparse.ptr and idx = csr.Sparse.idx in
  let live =
    match mask with
    | None -> fun _ -> true
    | Some m -> fun k -> Bytes.unsafe_get m k <> '\000'
  in
  let ntiles = Parallel.Chunk.tile_count ~tile:tile_rows ~np in
  let blocks = Parallel.Chunk.block_count ~min_block:1 ntiles in
  (* Both products visit each tile's pairs as (i, j) with j inner; the
     flat row index k advances by one as j does, so row_index runs once
     per (tile, i). Every k belongs to exactly one tile, hence exactly
     one block: apply is trivially jobs-invariant, and apply_t merges
     its per-block partials in block index order below. *)
  let apply v =
    if Array.length v <> nc then
      invalid_arg "Augmented.matfree: apply dimension mismatch";
    let y = Array.make nrows 0. in
    Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
        let tlo, thi = Parallel.Chunk.range ~blocks ~n:ntiles bk in
        for t = tlo to thi - 1 do
          let (ilo, ihi), (jlo, jhi) =
            Parallel.Chunk.tile_bounds ~tile:tile_rows ~np t
          in
          for i = ilo to ihi - 1 do
            let si = Bigarray.Array1.unsafe_get ptr i in
            let ei = Bigarray.Array1.unsafe_get ptr (i + 1) in
            let j0 = if jlo <= i then i else jlo in
            let k = ref (row_index ~np ~i ~j:j0) in
            for j = j0 to jhi - 1 do
              (if live !k then begin
                 let acc = ref 0. in
                 if j = i then
                   for a = si to ei - 1 do
                     acc :=
                       !acc
                       +. Array.unsafe_get v (Bigarray.Array1.unsafe_get idx a)
                   done
                 else begin
                   let a = ref si in
                   let b = ref (Bigarray.Array1.unsafe_get ptr j) in
                   let eb = Bigarray.Array1.unsafe_get ptr (j + 1) in
                   while !a < ei && !b < eb do
                     let ca = Bigarray.Array1.unsafe_get idx !a in
                     let cb = Bigarray.Array1.unsafe_get idx !b in
                     if ca = cb then begin
                       acc := !acc +. Array.unsafe_get v ca;
                       incr a;
                       incr b
                     end
                     else if ca < cb then incr a
                     else incr b
                   done
                 end;
                 Array.unsafe_set y !k !acc
               end);
              incr k
            done
          done
        done);
    y
  in
  let apply_t w =
    if Array.length w <> nrows then
      invalid_arg "Augmented.matfree: apply_t dimension mismatch";
    let partials = Array.init blocks (fun _ -> Array.make nc 0.) in
    Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
        let p = partials.(bk) in
        let tlo, thi = Parallel.Chunk.range ~blocks ~n:ntiles bk in
        for t = tlo to thi - 1 do
          let (ilo, ihi), (jlo, jhi) =
            Parallel.Chunk.tile_bounds ~tile:tile_rows ~np t
          in
          for i = ilo to ihi - 1 do
            let si = Bigarray.Array1.unsafe_get ptr i in
            let ei = Bigarray.Array1.unsafe_get ptr (i + 1) in
            let j0 = if jlo <= i then i else jlo in
            let k = ref (row_index ~np ~i ~j:j0) in
            for j = j0 to jhi - 1 do
              (if live !k then begin
                 let wk = Array.unsafe_get w !k in
                 if wk <> 0. then
                   if j = i then
                     for a = si to ei - 1 do
                       let c = Bigarray.Array1.unsafe_get idx a in
                       Array.unsafe_set p c (Array.unsafe_get p c +. wk)
                     done
                   else begin
                     let a = ref si in
                     let b = ref (Bigarray.Array1.unsafe_get ptr j) in
                     let eb = Bigarray.Array1.unsafe_get ptr (j + 1) in
                     while !a < ei && !b < eb do
                       let ca = Bigarray.Array1.unsafe_get idx !a in
                       let cb = Bigarray.Array1.unsafe_get idx !b in
                       if ca = cb then begin
                         Array.unsafe_set p ca (Array.unsafe_get p ca +. wk);
                         incr a;
                         incr b
                       end
                       else if ca < cb then incr a
                       else incr b
                     done
                   end
               end);
              incr k
            done
          done
        done);
    let x = Array.make nc 0. in
    Array.iter
      (fun p ->
        for e = 0 to nc - 1 do
          x.(e) <- x.(e) +. p.(e)
        done)
      partials;
    x
  in
  { Linalg.Lsqr.rows = nrows; cols = nc; apply; apply_t }

let matfree_column_counts ?jobs ?mask r =
  (* 0/1 entries make diag(AᵀA) the live-row count per column, which is
     exactly Aᵀ applied to the all-ones vector *)
  let op = matfree ?jobs ?mask r in
  op.Linalg.Lsqr.apply_t (Array.make op.Linalg.Lsqr.rows 1.)

let gram_blocks ?jobs ?mask r ~groups =
  let np = Sparse.rows r in
  let nc = Sparse.cols r in
  let nrows = row_count ~np in
  (match mask with
  | Some m when Bytes.length m <> nrows ->
      invalid_arg "Augmented.gram_blocks: mask length mismatch"
  | _ -> ());
  Array.iter
    (Array.iter (fun j ->
         if j < 0 || j >= nc then
           invalid_arg "Augmented.gram_blocks: column index out of bounds"))
    groups;
  let live =
    match mask with
    | None -> fun _ -> true
    | Some m -> fun k -> Bytes.unsafe_get m k <> '\000'
  in
  let out = Array.make (Array.length groups) (Linalg.Matrix.zeros 0 0) in
  (* Restricting a pair row to a column group commutes with the ⊗ of
     Definition 1: (Ri∗ ⊗ Rj∗)|g = Ri∗|g ⊗ Rj∗|g. So each diagonal Gram
     block needs only the group-restricted routing rows, and only the
     paths whose restriction is nonempty can contribute. Every group
     fills its own matrix from exact integer counts: jobs-invariant. *)
  Parallel.Pool.parallel_for ?jobs ~min_block:1 ~n:(Array.length groups)
    (fun gi ->
      let idx = groups.(gi) in
      let s = Array.length idx in
      let rr = Sparse.select_cols r idx in
      let touch = ref [] in
      for i = np - 1 downto 0 do
        if Array.length (Sparse.row rr i) > 0 then touch := i :: !touch
      done;
      let touch = Array.of_list !touch in
      let nt = Array.length touch in
      let g = Linalg.Matrix.zeros s s in
      for a = 0 to nt - 1 do
        let i = touch.(a) in
        let ri = Sparse.row rr i in
        for b = a to nt - 1 do
          let j = touch.(b) in
          let supp =
            if i = j then ri else Sparse.row_product ri (Sparse.row rr j)
          in
          if Array.length supp > 0 && live (row_index ~np ~i ~j) then
            Array.iter
              (fun x ->
                Array.iter
                  (fun y ->
                    Linalg.Matrix.set g x y (Linalg.Matrix.get g x y +. 1.))
                  supp)
              supp
        done
      done;
      out.(gi) <- g);
  out

let sample_mask ~np ~fraction ~seed =
  if not (fraction >= 0. && fraction <= 1.) then
    invalid_arg "Augmented.sample_mask: fraction outside [0, 1]";
  let n = row_count ~np in
  let b = Bytes.make n '\000' in
  (* SplitMix64 of (seed, k): platform-independent, so the same sketch is
     drawn everywhere and resampling a row never depends on jobs *)
  let golden = 0x9e3779b97f4a7c15L in
  let base = Int64.mul (Int64.of_int seed) 0xbf58476d1ce4e5b9L in
  let scale = Int64.to_float (Int64.shift_left 1L 53) in
  for k = 0 to n - 1 do
    let z = Int64.add base (Int64.mul (Int64.of_int (k + 1)) golden) in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11) /. scale
    in
    if u < fraction then Bytes.unsafe_set b k '\001'
  done;
  b

let update_rows r ~rows:changed a =
  let np = Sparse.rows r in
  if Sparse.rows a <> row_count ~np || Sparse.cols a <> Sparse.cols r then
    invalid_arg "Augmented.update_rows: dimension mismatch";
  let is_changed = Array.make np false in
  List.iter
    (fun i ->
      if i < 0 || i >= np then invalid_arg "Augmented.update_rows: bad row";
      is_changed.(i) <- true)
    changed;
  let out = Array.init (Sparse.rows a) (fun k -> Sparse.row a k) in
  for i = 0 to np - 1 do
    let ri = Sparse.row r i in
    for j = i to np - 1 do
      if is_changed.(i) || is_changed.(j) then begin
        let row =
          if i = j then ri else Sparse.row_product ri (Sparse.row r j)
        in
        out.(row_index ~np ~i ~j) <- row
      end
    done
  done;
  Sparse.create ~cols:(Sparse.cols r) out
