module Matrix = Linalg.Matrix

let m_rows =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshot rows quarantined at ingest" "lia_quarantine_rows_total"

let m_cells =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Out-of-range measurement cells neutralized at ingest"
    "lia_quarantine_cells_total"

let m_duplicates =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Duplicate snapshot rows dropped at ingest"
    "lia_quarantine_duplicates_total"

let g_dropped =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Snapshots quarantined by the most recent ingest scrub"
    "lia_ingest_dropped_snapshots"

type reason =
  | All_missing
  | Excess_missing of { missing : int; total : int }
  | Duplicate_of of int

type report = {
  total : int;
  kept : int array;
  quarantined : (int * reason) list;
  missing_cells : int;
  corrupt_cells : int;
}

let reason_to_string = function
  | All_missing -> "all measurements missing"
  | Excess_missing { missing; total } ->
      Printf.sprintf "%d/%d measurements missing" missing total
  | Duplicate_of l -> Printf.sprintf "duplicate of snapshot %d" l

let clean r =
  r.quarantined = [] && r.missing_cells = 0 && r.corrupt_cells = 0

let summary r =
  if clean r then
    Printf.sprintf "clean: kept %d/%d snapshots" (Array.length r.kept) r.total
  else begin
    let all = ref 0 and excess = ref 0 and dup = ref 0 in
    List.iter
      (fun (_, reason) ->
        match reason with
        | All_missing -> incr all
        | Excess_missing _ -> incr excess
        | Duplicate_of _ -> incr dup)
      r.quarantined;
    let reasons =
      List.filter_map
        (fun (n, label) ->
          if !n > 0 then Some (Printf.sprintf "%d %s" !n label) else None)
        [ (all, "all-missing"); (excess, "excess-missing"); (dup, "duplicate") ]
    in
    Printf.sprintf
      "kept %d/%d snapshots%s; %d missing cells, %d corrupt cells"
      (Array.length r.kept) r.total
      (if reasons = [] then ""
       else
         Printf.sprintf " (quarantined %d: %s)"
           (List.length r.quarantined)
           (String.concat ", " reasons))
      r.missing_cells r.corrupt_cells
  end

(* A valid measurement is a finite log success rate <= 0. NaN is a
   missing measurement; everything else is corrupt and downgraded to
   missing after being counted. *)
let cell_valid x = Float.is_finite x && x <= 0.

let row_key row =
  let b = Bytes.create (8 * Array.length row) in
  Array.iteri (fun i x -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float x)) row;
  Bytes.unsafe_to_string b

let scrub ?(max_missing_fraction = 0.5) y =
  let m = Matrix.rows y and np = Matrix.cols y in
  let corrupt_cells = ref 0 and missing_cells = ref 0 in
  let kept = ref [] and quarantined = ref [] and n_dup = ref 0 in
  let seen = Hashtbl.create (2 * m) in
  let rows = Array.make m [||] in
  for l = 0 to m - 1 do
    let row = Array.init np (fun i -> Matrix.get y l i) in
    let missing = ref 0 in
    Array.iteri
      (fun i x ->
        if not (cell_valid x) then begin
          if not (Float.is_nan x) then incr corrupt_cells;
          row.(i) <- Float.nan;
          incr missing
        end)
      row;
    rows.(l) <- row;
    if !missing = np && np > 0 then
      quarantined := (l, All_missing) :: !quarantined
    else if
      float_of_int !missing
      > max_missing_fraction *. float_of_int (max 1 np)
    then
      quarantined := (l, Excess_missing { missing = !missing; total = np })
        :: !quarantined
    else begin
      let key = row_key row in
      match Hashtbl.find_opt seen key with
      | Some first ->
          incr n_dup;
          quarantined := (l, Duplicate_of first) :: !quarantined
      | None ->
          Hashtbl.add seen key l;
          missing_cells := !missing_cells + !missing;
          kept := l :: !kept
    end
  done;
  let kept = Array.of_list (List.rev !kept) in
  let report =
    {
      total = m;
      kept;
      quarantined = List.rev !quarantined;
      missing_cells = !missing_cells;
      corrupt_cells = !corrupt_cells;
    }
  in
  Obs.Metrics.add m_rows (List.length report.quarantined);
  Obs.Metrics.add m_cells report.corrupt_cells;
  Obs.Metrics.add m_duplicates !n_dup;
  Obs.Metrics.set g_dropped (float_of_int (List.length report.quarantined));
  if Obs.Recorder.enabled Obs.Recorder.default then
    List.iter
      (fun (l, reason) ->
        Obs.Recorder.record Obs.Recorder.default ~kind:"quarantine"
          "quarantine.row"
          ~fields:
            [
              ("row", Obs.Field.Int l);
              ("reason", Obs.Field.Str (reason_to_string reason));
            ])
      report.quarantined;
  if List.length report.quarantined > 0 then
    Obs.Trace.instant Obs.Trace.default "quarantine.rows"
      ~args:
        [
          ("quarantined", Obs.Field.Int (List.length report.quarantined));
          ("total", Obs.Field.Int m);
        ];
  let out = Matrix.init (Array.length kept) np (fun l i -> rows.(kept.(l)).(i)) in
  (out, report)

type vector_report = {
  valid : int array;
  v_missing : int;
  v_corrupt : int;
}

let scrub_vector v =
  let out = Array.copy v in
  let valid = ref [] and missing = ref 0 and corrupt = ref 0 in
  Array.iteri
    (fun i x ->
      if cell_valid x then valid := i :: !valid
      else begin
        if Float.is_nan x then incr missing else incr corrupt;
        out.(i) <- Float.nan
      end)
    v;
  Obs.Metrics.add m_cells !corrupt;
  (out, { valid = Array.of_list (List.rev !valid); v_missing = !missing;
          v_corrupt = !corrupt })
