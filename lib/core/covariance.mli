(** Sample second moments of the snapshot measurements (eq. 7).

    Given the [m × n_p] matrix of log path transmission rates, produces
    the vector [Σ̂*] of sample covariances aligned with the rows of the
    augmented matrix: entry [row_index ~np ~i ~j] holds [côv(Y_i, Y_j)]. *)

val sigma_star : ?jobs:int -> Linalg.Matrix.t -> Linalg.Vector.t
(** Raises [Invalid_argument] with fewer than two snapshots (rows).
    [jobs] (default [Parallel.Pool.default_jobs ()]) parallelizes the
    underlying covariance matrix; the result is bit-for-bit identical
    for every value. *)

val of_sigma_matrix : Linalg.Matrix.t -> Linalg.Vector.t
(** Flattens an explicit [n_p × n_p] covariance matrix into the same
    upper-triangular order (useful in tests, where [Σ] is exact). *)
