module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Plan = Plan

type result = Plan.result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

let infer_with_variances ~r ~variances ~y_now =
  Plan.solve (Plan.make ~r ~variances ()) y_now

let infer ?estimator ?jobs ~r ~y_learn ~y_now () =
  if Matrix.cols y_learn <> Sparse.rows r then
    invalid_arg "Lia: learning matrix width mismatch";
  Obs.Trace.with_span
    ~args:
      [
        ("paths", Obs.Field.Int (Sparse.rows r));
        ("links", Obs.Field.Int (Sparse.cols r));
        ("m", Obs.Field.Int (Matrix.rows y_learn));
      ]
    Obs.Trace.default "lia.infer"
  @@ fun () ->
  let variances =
    Variance_estimator.estimate ?options:estimator ?jobs ~r ~y:y_learn ()
  in
  Plan.solve (Plan.make ?jobs ~r ~variances ()) y_now

let congested result ~threshold =
  Array.map (fun l -> l > threshold) result.loss_rates
