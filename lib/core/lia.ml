module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

let infer_with_variances ~r ~variances ~y_now =
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length variances <> nc then
    invalid_arg "Lia: variance length mismatch";
  if Array.length y_now <> np then invalid_arg "Lia: measurement length mismatch";
  let { Rank_reduction.kept; removed } = Rank_reduction.eliminate r variances in
  let r_star = Sparse.dense_cols r kept in
  let x_star = Qr.solve r_star y_now in
  let transmission = Array.make nc 1. in
  Array.iteri
    (fun k j ->
      (* x is a log transmission rate; numerical noise can push it above 0 *)
      transmission.(j) <- Float.min 1. (exp x_star.(k)))
    kept;
  let loss_rates = Array.map (fun t -> 1. -. t) transmission in
  { variances = Array.copy variances; transmission; loss_rates; kept; removed }

let infer ?estimator ?jobs ~r ~y_learn ~y_now () =
  if Matrix.cols y_learn <> Sparse.rows r then
    invalid_arg "Lia: learning matrix width mismatch";
  let variances =
    Variance_estimator.estimate ?options:estimator ?jobs ~r ~y:y_learn ()
  in
  infer_with_variances ~r ~variances ~y_now

let congested result ~threshold =
  Array.map (fun l -> l > threshold) result.loss_rates
