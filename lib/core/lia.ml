module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Plan = Plan

type result = Plan.result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

let infer_with_variances ~r ~variances ~y_now =
  Plan.solve (Plan.make ~r ~variances ()) y_now

let m_checked =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Health-checked inferences served" "lia_checked_total"

let m_degraded =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Health-checked inferences served in degraded mode"
    "lia_degraded_total"

let m_refused =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Health-checked inferences refused" "lia_refused_total"

type solver =
  | Dense
  | Cgls of {
      tol : float;
      max_iter : int option;
      sample : (float * int) option;
      precond : Variance_estimator.precond_spec;
    }

let default_cgls =
  Cgls
    {
      tol = 1e-10;
      max_iter = None;
      sample = None;
      precond = Variance_estimator.Pc_jacobi;
    }

(* translate a Lia-level solver choice into estimator options + plan
   backend, folding in the drop-negative/clamp toggles of [?estimator] *)
let matfree_options_of ?estimator ~tol ~max_iter ~sample ~precond () =
  let base = Variance_estimator.default_matfree_options in
  let base =
    match estimator with
    | None -> base
    | Some o ->
        {
          base with
          Variance_estimator.mf_drop_negative = o.Variance_estimator.drop_negative;
          mf_clamp = o.Variance_estimator.clamp;
        }
  in
  { base with Variance_estimator.tol; max_iter; sample; mf_precond = precond }

(* phase 2 historically ran raw CGLS; only the hierarchical block
   preconditioner carries over to it (Jacobi would change the bits of
   every existing cgls run for no structural gain on the small reduced
   system) *)
let plan_precond = function
  | Variance_estimator.Pc_block_jacobi _ as p -> p
  | Variance_estimator.Pc_none | Variance_estimator.Pc_jacobi ->
      Variance_estimator.Pc_none

let infer ?estimator ?(solver = Dense) ?jobs ~r ~y_learn ~y_now () =
  if Matrix.cols y_learn <> Sparse.rows r then
    invalid_arg "Lia: learning matrix width mismatch";
  Obs.Trace.with_span
    ~args:
      [
        ("paths", Obs.Field.Int (Sparse.rows r));
        ("links", Obs.Field.Int (Sparse.cols r));
        ("m", Obs.Field.Int (Matrix.rows y_learn));
      ]
    Obs.Trace.default "lia.infer"
  @@ fun () ->
  match solver with
  | Dense ->
      let variances =
        Variance_estimator.estimate ?options:estimator ?jobs ~r ~y:y_learn ()
      in
      Plan.solve (Plan.make ?jobs ~r ~variances ()) y_now
  | Cgls { tol; max_iter; sample; precond } ->
      let options =
        matfree_options_of ?estimator ~tol ~max_iter ~sample ~precond ()
      in
      let variances, _, _ =
        Variance_estimator.estimate_matfree_ess ~options ?jobs ~r ~y:y_learn ()
      in
      Plan.solve
        (Plan.make ?jobs
           ~backend:
             (Plan.Cgls { tol; max_iter; precond = plan_precond precond })
           ~r ~variances ())
        y_now

let congested result ~threshold =
  Array.map (fun l -> l > threshold) result.loss_rates

(* --- health-checked inference (graceful degradation) ------------------- *)

type degradation = {
  quarantine : Quarantine.report;
  ess : Variance_estimator.ess;
  target_missing : int;
  target_corrupt : int;
}

type health = Clean | Degraded of degradation | Refused of string

type checked = { health : health; result : result option }

let health_label = function
  | Clean -> "clean"
  | Degraded _ -> "degraded"
  | Refused _ -> "refused"

let health_summary = function
  | Clean -> "clean"
  | Degraded d ->
      Printf.sprintf
        "degraded (%s; pairs used %d/%d, min overlap %d; target: %d missing, \
         %d corrupt)"
        (Quarantine.summary d.quarantine)
        d.ess.Variance_estimator.pairs_used d.ess.Variance_estimator.pairs_total
        d.ess.Variance_estimator.samples_min d.target_missing d.target_corrupt
  | Refused reason -> Printf.sprintf "refused (%s)" reason

let infer_checked ?(solver = Dense) ?jobs ?(min_pair_samples = 2)
    ?(max_missing_fraction = 0.5) ?(max_skipped_pair_fraction = 0.5) ~r
    ~y_learn ~y_now () =
  if Matrix.cols y_learn <> Sparse.rows r then
    invalid_arg "Lia.infer_checked: learning matrix width mismatch";
  if Array.length y_now <> Sparse.rows r then
    invalid_arg "Lia.infer_checked: measurement length mismatch";
  Obs.Metrics.incr m_checked;
  Obs.Trace.with_span
    ~args:
      [
        ("paths", Obs.Field.Int (Sparse.rows r));
        ("links", Obs.Field.Int (Sparse.cols r));
        ("m", Obs.Field.Int (Matrix.rows y_learn));
      ]
    Obs.Trace.default "lia.infer_checked"
  @@ fun () ->
  let finish health result =
    (match health with
    | Clean -> ()
    | Degraded _ -> Obs.Metrics.incr m_degraded
    | Refused _ -> Obs.Metrics.incr m_refused);
    if Obs.Recorder.enabled Obs.Recorder.default then
      Obs.Recorder.record Obs.Recorder.default ~kind:"verdict" "lia.verdict"
        ~fields:
          [
            ("health", Obs.Field.Str (health_label health));
            ("summary", Obs.Field.Str (health_summary health));
          ];
    Obs.Trace.instant Obs.Trace.default "lia.verdict"
      ~args:[ ("health", Obs.Field.Str (health_label health)) ];
    (* a refusal is terminal for this run: flush the recorder tail now so
       the dump survives even an abrupt exit-3 path *)
    (match health with
    | Refused _ -> Obs.Recorder.auto_dump Obs.Recorder.default ~reason:"refused"
    | Clean | Degraded _ -> ());
    { health; result }
  in
  let refuse fmt = Printf.ksprintf (fun s -> finish (Refused s) None) fmt in
  let scrubbed, q = Quarantine.scrub ~max_missing_fraction y_learn in
  if Matrix.rows scrubbed < 2 then
    refuse "%d usable learning snapshots after quarantine (need at least 2)"
      (Matrix.rows scrubbed)
  else begin
    let y_target, tq = Quarantine.scrub_vector y_now in
    if Array.length tq.Quarantine.valid = 0 then
      refuse "target snapshot has no usable measurements"
    else begin
      let estimate () =
        match solver with
        | Dense ->
            Variance_estimator.estimate_streaming_ess ?jobs ~min_pair_samples
              ~r ~y:scrubbed ()
        | Cgls { tol; max_iter; sample; precond } ->
            let options =
              {
                (matfree_options_of ~tol ~max_iter ~sample ~precond ()) with
                Variance_estimator.mf_min_pair_samples = min_pair_samples;
              }
            in
            let v, ess, _ =
              Variance_estimator.estimate_matfree_ess ~options ?jobs ~r
                ~y:scrubbed ()
            in
            (v, ess)
      in
      match estimate () with
      | exception Failure msg -> refuse "variance estimation failed: %s" msg
      | variances, ess ->
          let open Variance_estimator in
          if
            ess.pairs_total > 0
            && float_of_int (ess.pairs_total - ess.pairs_used)
               > max_skipped_pair_fraction *. float_of_int ess.pairs_total
          then
            refuse
              "only %d/%d path pairs have %d overlapping snapshots \
               (allowed skip fraction %g)"
              ess.pairs_used ess.pairs_total min_pair_samples
              max_skipped_pair_fraction
          else begin
            let target_clean = Array.length tq.Quarantine.valid = Sparse.rows r in
            let backend =
              match solver with
              | Dense -> Plan.Dense_qr
              | Cgls { tol; max_iter; precond; _ } ->
                  Plan.Cgls { tol; max_iter; precond = plan_precond precond }
            in
            let solve () =
              if target_clean then
                Plan.solve (Plan.make ?jobs ~backend ~r ~variances ()) y_now
              else begin
                (* solve Y = R* X* over the valid target paths only; the
                   plan's rank reduction works in the full column space,
                   so results scatter back to all links *)
                let rows = tq.Quarantine.valid in
                let r_sub = Sparse.select_rows r rows in
                let y_sub = Array.map (fun i -> y_target.(i)) rows in
                Plan.solve (Plan.make ?jobs ~backend ~r:r_sub ~variances ()) y_sub
              end
            in
            match solve () with
            | exception Failure msg -> refuse "phase-2 solve failed: %s" msg
            | result ->
                if
                  not
                    (Array.for_all Float.is_finite result.loss_rates
                    && Array.for_all Float.is_finite result.variances)
                then refuse "non-finite estimates survived the solve"
                else begin
                  let degraded =
                    (not (Quarantine.clean q))
                    || (not target_clean)
                    || ess.pairs_used < ess.pairs_total
                  in
                  if degraded then
                    finish
                      (Degraded
                         {
                           quarantine = q;
                           ess;
                           target_missing = tq.Quarantine.v_missing;
                           target_corrupt = tq.Quarantine.v_corrupt;
                         })
                      (Some result)
                  else finish Clean (Some result)
                end
          end
    end
  end
