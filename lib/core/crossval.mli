(** Deterministic cross-validation of the estimator zoo over a scenario
    matrix.

    A {!grid} spans four axes — topology family × size × loss model ×
    fault spec — and a seed set turns each grid point into concrete
    {!scenario}s. The runner regenerates every scenario's measurement
    campaign from its seed (topology, {!Netsim.Simulator} snapshots
    under [Static] dynamics, {!Netsim.Faults} injection), hands the
    {e identical} bundle to every requested backend of the
    {!Estimator} registry, and scores the results against the final
    snapshot's realized per-link loss rates: mean/max absolute error
    and median error factor for rate estimators, detection and
    false-positive rate at the congestion threshold for everyone.

    {b Determinism contract.} Cells are evaluated through
    {!Parallel.Pool} but each cell regenerates its own data from the
    scenario seed and writes its own result slot, so the cell array —
    and therefore {!render} and {!to_jsonl} minus their timing fields —
    is bit-for-bit identical for every [jobs] value and across reruns
    of the same grid, seeds, and estimator list. Wall time and
    allocation are telemetry only: {!render} omits them unless asked,
    and the cram suite diffs the default rendering.

    Fault outcomes are typed, never exception escapes: a backend that
    cannot run a scenario at all reports [Skipped reason] (capability
    mismatch), one that inspects the data and declines reports
    [Refused reason], and degraded-but-successful runs carry their
    health label into the grid. *)

type grid = {
  families : string list;  (** topology families, {!known_families} *)
  sizes : int list;  (** end-host count (tree: node count) *)
  models : string list;  (** loss model names, {!known_models} *)
  faults : Netsim.Faults.t list;
}

val known_families : string list
(** [tree], [waxman], [ba], [hier-td], [hier-bu], [planetlab], [dimes],
    [transit-stub] — the [gen] command's families. Only [tree] produces
    the single-beacon trees the multicast-family backends require. *)

val known_models : string list
(** [llrd1], [llrd1-calibrated], [llrd2], [internet]. *)

val default_grid : grid
(** [family=tree,planetlab; size=15; model=llrd1-calibrated; fault=none]. *)

val parse_grid : string -> (grid, string) result
(** DSL: semicolon-separated axes, comma-separated values —
    [family=tree,planetlab;size=15,30;model=llrd1;fault=none|drop=0.2,seed=7].
    Fault alternatives are [|]-separated because specs contain commas.
    Omitted axes keep their {!default_grid} value; unknown families,
    models, axis keys, and malformed specs are reported in the error. *)

type scenario = {
  family : string;
  size : int;
  model : string;
  fault : Netsim.Faults.t;
  seed : int;
}

val scenarios : grid -> seeds:int list -> scenario list
(** The grid unrolled in fixed nesting order (family, size, model,
    fault, seed) — the order cells are reported in. *)

val scenario_label : scenario -> string
(** Without the seed: ["tree/15 llrd1 fault=none"]. *)

type score = {
  abs_mean : float option;  (** mean per-link |q̂ - q|; rate backends *)
  abs_max : float option;
  err_factor_median : float option;  (** Bu et al. f_δ, median link *)
  dr : float;  (** detection rate at the threshold *)
  fpr : float;  (** false-positive rate at the threshold *)
}

type outcome =
  | Scored of { score : score; health : string; note : string }
  | Refused of string  (** ran, but declined or died on the data *)
  | Skipped of string  (** capability mismatch; never ran *)

type cell = {
  scenario : scenario;
  estimator : string;
  outcome : outcome;
  wall_s : float;  (** estimate call only, not data generation *)
  alloc_words : float;  (** GC-allocated words during the call *)
}

val run :
  ?jobs:int ->
  ?threshold:float ->
  ?snapshots:int ->
  ?probes:int ->
  estimators:Estimator.t list ->
  scenarios:scenario list ->
  unit ->
  cell array
(** Every (scenario, estimator) pair, in [scenarios] × [estimators]
    order. [threshold] (default 0.01, the paper's 1% lossy-link bar)
    classifies both truth and estimates; [snapshots] (default 40) is
    the campaign length including the target; [probes] defaults
    to 1000. [jobs] only controls cell dispatch concurrency. *)

val render : ?timing:bool -> cell array -> string
(** The Table-1-style grid, one block per scenario point with seeds
    aggregated (means of scores, health label counts). Deterministic;
    [timing] (default false) appends wall-time and allocation columns
    for human profiling at the cost of byte-stability. *)

val to_jsonl : cell array -> string
(** One JSON object per cell — scenario coordinates, outcome, scores,
    and always the wall/alloc telemetry. *)
