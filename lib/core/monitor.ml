module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

let m_observations =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshots pushed into monitor windows" "lia_monitor_observations_total"

let m_evictions =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshots evicted from full monitor windows (window churn)"
    "lia_monitor_evictions_total"

let m_invalidations =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Cached variance vectors invalidated by new observations"
    "lia_monitor_cache_invalidations_total"

let m_relearns =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Variance re-estimations over the monitor window"
    "lia_monitor_variance_relearns_total"

let m_quarantined =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshots rejected by monitor ingest validation"
    "lia_monitor_quarantined_total"

let g_window_fill =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Snapshots currently buffered by the most recent monitor"
    "lia_monitor_window_fill"

type t = {
  r : Sparse.t;
  window : int;
  buffer : Linalg.Vector.t Queue.t;
  mutable cached_variances : Linalg.Vector.t option;
}

let create ~r ~window =
  if window < 2 then invalid_arg "Monitor.create: window < 2";
  { r; window; buffer = Queue.create (); cached_variances = None }

(* [push] takes ownership of [y]; every path into the window goes
   through it, so eviction and cache invalidation can never get out of
   sync with ingest (a stale cached variance vector after host churn
   would silently poison every subsequent inference). *)
let push t y =
  Obs.Metrics.incr m_observations;
  Queue.add y t.buffer;
  if Queue.length t.buffer > t.window then begin
    ignore (Queue.pop t.buffer);
    Obs.Metrics.incr m_evictions
  end;
  if t.cached_variances <> None then begin
    Obs.Metrics.incr m_invalidations;
    Obs.Trace.instant Obs.Trace.default "monitor.invalidate"
  end;
  Obs.Metrics.set g_window_fill (float_of_int (Queue.length t.buffer));
  t.cached_variances <- None

let observe t y =
  if Array.length y <> Sparse.rows t.r then
    invalid_arg "Monitor.observe: measurement length mismatch";
  push t (Array.copy y)

type observation =
  | Accepted
  | Accepted_degraded of { missing : int; corrupt : int }
  | Rejected of Quarantine.reason

let observation_to_string = function
  | Accepted -> "accepted"
  | Accepted_degraded { missing; corrupt } ->
      Printf.sprintf "accepted degraded (%d missing, %d corrupt)" missing
        corrupt
  | Rejected reason ->
      Printf.sprintf "rejected (%s)" (Quarantine.reason_to_string reason)

let observe_checked ?(max_missing_fraction = 0.5) t y =
  if Array.length y <> Sparse.rows t.r then
    invalid_arg "Monitor.observe_checked: measurement length mismatch";
  let scrubbed, rep = Quarantine.scrub_vector y in
  let np = Array.length y in
  let invalid = np - Array.length rep.Quarantine.valid in
  if invalid = np && np > 0 then begin
    Obs.Metrics.incr m_quarantined;
    Rejected Quarantine.All_missing
  end
  else if float_of_int invalid > max_missing_fraction *. float_of_int (max 1 np)
  then begin
    Obs.Metrics.incr m_quarantined;
    Rejected (Quarantine.Excess_missing { missing = invalid; total = np })
  end
  else begin
    push t scrubbed;
    if invalid = 0 then Accepted
    else
      Accepted_degraded
        { missing = rep.Quarantine.v_missing; corrupt = rep.Quarantine.v_corrupt }
  end

let size t = Queue.length t.buffer

let ready t = size t >= t.window

let window_matrix t =
  let n = size t in
  let rows = Array.make n [||] in
  let k = ref 0 in
  Queue.iter
    (fun y ->
      rows.(!k) <- y;
      incr k)
    t.buffer;
  Matrix.init n (Sparse.rows t.r) (fun l i -> rows.(l).(i))

let variances t =
  match t.cached_variances with
  | Some v -> v
  | None ->
      if size t < 2 then failwith "Monitor.variances: fewer than 2 snapshots";
      Obs.Metrics.incr m_relearns;
      Obs.Trace.with_span
        ~args:[ ("window", Obs.Field.Int (size t)) ]
        Obs.Trace.default "monitor.relearn"
      @@ fun () ->
      let v = Variance_estimator.estimate_streaming ~r:t.r ~y:(window_matrix t) () in
      t.cached_variances <- Some v;
      v

let infer t ~y_now = Lia.infer_with_variances ~r:t.r ~variances:(variances t) ~y_now

let infer_checked ?min_pair_samples ?max_missing_fraction
    ?max_skipped_pair_fraction t ~y_now =
  if size t < 2 then
    {
      Lia.health =
        Lia.Refused
          (Printf.sprintf "monitor window holds %d snapshots (need at least 2)"
             (size t));
      result = None;
    }
  else
    Lia.infer_checked ?min_pair_samples ?max_missing_fraction
      ?max_skipped_pair_fraction ~r:t.r ~y_learn:(window_matrix t) ~y_now ()

let anomaly_model t = Anomaly.learn (window_matrix t)
