module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

let m_observations =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshots pushed into monitor windows" "monitor_observations_total"

let m_evictions =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Snapshots evicted from full monitor windows (window churn)"
    "monitor_evictions_total"

let m_invalidations =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Cached variance vectors invalidated by new observations"
    "monitor_cache_invalidations_total"

let m_relearns =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Variance re-estimations over the monitor window"
    "monitor_variance_relearns_total"

let g_window_fill =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Snapshots currently buffered by the most recent monitor"
    "monitor_window_fill"

type t = {
  r : Sparse.t;
  window : int;
  buffer : Linalg.Vector.t Queue.t;
  mutable cached_variances : Linalg.Vector.t option;
}

let create ~r ~window =
  if window < 2 then invalid_arg "Monitor.create: window < 2";
  { r; window; buffer = Queue.create (); cached_variances = None }

let observe t y =
  if Array.length y <> Sparse.rows t.r then
    invalid_arg "Monitor.observe: measurement length mismatch";
  Obs.Metrics.incr m_observations;
  Queue.add (Array.copy y) t.buffer;
  if Queue.length t.buffer > t.window then begin
    ignore (Queue.pop t.buffer);
    Obs.Metrics.incr m_evictions
  end;
  if t.cached_variances <> None then begin
    Obs.Metrics.incr m_invalidations;
    Obs.Trace.instant Obs.Trace.default "monitor.invalidate"
  end;
  Obs.Metrics.set g_window_fill (float_of_int (Queue.length t.buffer));
  t.cached_variances <- None

let size t = Queue.length t.buffer

let ready t = size t >= t.window

let window_matrix t =
  let n = size t in
  let rows = Array.make n [||] in
  let k = ref 0 in
  Queue.iter
    (fun y ->
      rows.(!k) <- y;
      incr k)
    t.buffer;
  Matrix.init n (Sparse.rows t.r) (fun l i -> rows.(l).(i))

let variances t =
  match t.cached_variances with
  | Some v -> v
  | None ->
      if size t < 2 then failwith "Monitor.variances: fewer than 2 snapshots";
      Obs.Metrics.incr m_relearns;
      Obs.Trace.with_span
        ~args:[ ("window", Obs.Field.Int (size t)) ]
        Obs.Trace.default "monitor.relearn"
      @@ fun () ->
      let v = Variance_estimator.estimate_streaming ~r:t.r ~y:(window_matrix t) () in
      t.cached_variances <- Some v;
      v

let infer t ~y_now = Lia.infer_with_variances ~r:t.r ~variances:(variances t) ~y_now

let anomaly_model t = Anomaly.learn (window_matrix t)
