module Sparse = Linalg.Sparse
module Vector = Linalg.Vector
module Ortho = Linalg.Ortho

type result = { kept : int array; removed : int array }

(* Scatter column j through a CSC-style index (one Sparse.cols_index pass
   per scan): O(nnz of the column) instead of n_p binary searches. *)
let dense_column ~np index j =
  let col = Array.make np 0. in
  Array.iter (fun i -> col.(i) <- 1.) index.(j);
  col

(* Columns in descending variance order; index ties broken towards higher
   ids first so that the ascending removal order of the paper (stable sort,
   remove from the front) is mirrored exactly. *)
let descending_order r v =
  if Array.length v <> Sparse.cols r then
    invalid_arg "Rank_reduction: variance length mismatch";
  let asc = Vector.sort_indices v in
  let n = Array.length asc in
  Array.init n (fun k -> asc.(n - 1 - k))

let scan ~stop_at_first_dependent r v =
  let order = descending_order r v in
  let np = Sparse.rows r in
  let index = Sparse.cols_index r in
  let basis = Ortho.create ~dim:np in
  let kept = ref [] and removed = ref [] in
  let stopped = ref false in
  Array.iter
    (fun j ->
      if !stopped then removed := j :: !removed
      else if Ortho.try_add basis (dense_column ~np index j) then kept := j :: !kept
      else begin
        removed := j :: !removed;
        if stop_at_first_dependent then stopped := true
      end)
    order;
  { kept = Array.of_list (List.rev !kept); removed = Array.of_list (List.rev !removed) }

let eliminate r v = scan ~stop_at_first_dependent:true r v

let eliminate_greedy r v = scan ~stop_at_first_dependent:false r v

let is_full_column_rank r =
  let np = Sparse.rows r in
  let index = Sparse.cols_index r in
  let basis = Ortho.create ~dim:np in
  let ok = ref true in
  for j = 0 to Sparse.cols r - 1 do
    if !ok && not (Ortho.try_add basis (dense_column ~np index j)) then ok := false
  done;
  !ok
